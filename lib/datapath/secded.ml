open Elastic_kernel
open Elastic_netlist

type codeword = { data : int64; check : int }

(* Codeword positions 1..71: powers of two hold check bits c0..c6, the
   remaining 64 positions hold data bits in increasing order. *)
let is_power_of_two p = p land (p - 1) = 0

let data_positions =
  let rec build pos acc =
    if pos > 71 then List.rev acc
    else if is_power_of_two pos then build (pos + 1) acc
    else build (pos + 1) (pos :: acc)
  in
  Array.of_list (build 1 [])

let () = assert (Array.length data_positions = 64)

(* position -> data bit index, or -1 for check positions *)
let data_index_of_position =
  let t = Array.make 72 (-1) in
  Array.iteri (fun i p -> t.(p) <- i) data_positions;
  t

(* The classical Hamming identity: the recomputed check vector is the
   XOR of the codeword positions of the set data bits.  The per-byte
   table below packs, for byte [b] at data bits [8k..8k+7], that
   position-XOR (low 7 bits — positions are < 128) together with the
   byte's popcount parity at bit 7; XOR distributes over both packed
   fields, so folding eight table entries yields the full check vector
   and the data parity in one pass.  The decoder sits on the
   simulator's per-token datapath (every E6 token crosses it), which
   is why this replaces the original 64x7 per-bit loop. *)
let syndrome_tab =
  let t = Array.make (8 * 256) 0 in
  for k = 0 to 7 do
    for b = 0 to 255 do
      let acc = ref 0 in
      for bit = 0 to 7 do
        if b land (1 lsl bit) <> 0 then
          acc := !acc lxor data_positions.((8 * k) + bit) lxor 0x80
      done;
      t.((k lsl 8) lor b) <- !acc
    done
  done;
  t

(* Low 7 bits: recomputed Hamming checks; bit 7: data parity. *)
let fold_syndrome data =
  let lo = Int64.to_int (Int64.logand data 0xFFFF_FFFFL)
  and hi = Int64.to_int (Int64.shift_right_logical data 32) in
  let acc = ref 0 in
  for k = 0 to 3 do
    acc :=
      !acc
      lxor Array.unsafe_get syndrome_tab
             ((k lsl 8) lor ((lo lsr (8 * k)) land 0xff))
      lxor Array.unsafe_get syndrome_tab
             (((k + 4) lsl 8) lor ((hi lsr (8 * k)) land 0xff))
  done;
  !acc

let parity8 x =
  let x = x lxor (x lsr 4) in
  let x = x lxor (x lsr 2) in
  let x = x lxor (x lsr 1) in
  x land 1

let encode data =
  let acc = fold_syndrome data in
  let hamming = acc land 0x7f in
  (* Overall parity covers all 71 positions (data + hamming checks). *)
  let parity = (acc lsr 7) lxor parity8 hamming in
  { data; check = hamming lor (parity lsl 7) }

type verdict = No_error | Corrected of int64 | Double_error

let decode cw =
  let acc = fold_syndrome cw.data in
  (* Syndrome: recomputed check vector vs received checks; parity folds
     the data bits with all eight received check bits. *)
  let syndrome = (acc land 0x7f) lxor (cw.check land 0x7f) in
  let parity = (acc lsr 7) lxor parity8 (cw.check land 0xff) in
  match syndrome, parity with
  | 0, 0 -> No_error
  | 0, _ ->
    (* Error in the overall parity bit itself: data is intact. *)
    Corrected cw.data
  | s, 1 ->
    if s > 71 then Double_error
    else begin
      let di = data_index_of_position.(s) in
      if di < 0 then Corrected cw.data (* a check bit was hit *)
      else Corrected (Int64.logxor cw.data (Int64.shift_left 1L di))
    end
  | _, _ -> Double_error

let flip_bit cw i =
  if i < 0 || i > 71 then invalid_arg "Secded.flip_bit: index out of range";
  if i < 64 then
    { cw with data = Int64.logxor cw.data (Int64.shift_left 1L i) }
  else { cw with check = cw.check lxor (1 lsl (i - 64)) }

let equal_codeword a b = Int64.equal a.data b.data && a.check = b.check

let pp_codeword ppf cw = Fmt.pf ppf "{0x%Lx|%02x}" cw.data cw.check

let codeword_value cw = Value.Tuple [ Value.Word cw.data; Value.Int cw.check ]

let codeword_of_value v =
  match v with
  | Value.Tuple [ Value.Word data; Value.Int check ] -> { data; check }
  | Value.Unit | Value.Bool _ | Value.Int _ | Value.Word _ | Value.Str _
  | Value.Tuple _ ->
    invalid_arg (Fmt.str "Secded: not a codeword: %a" Value.pp v)

let encoder_func () =
  Func.make ~name:"secded_enc" ~arity:1 ~delay:6.0 ~area:260.0 (function
    | [ v ] -> codeword_value (encode (Value.to_word v))
    | _ -> assert false)

let corrector_func () =
  Func.make ~name:"secded_cor" ~arity:1 ~delay:7.0 ~area:320.0 (function
    | [ v ] ->
      let cw = codeword_of_value v in
      let corrected, err =
        match decode cw with
        | No_error -> (cw.data, 0)
        | Corrected d -> (d, 1)
        | Double_error -> (cw.data, 2)
      in
      Value.Tuple [ Value.Word corrected; Value.Int err ]
    | _ -> assert false)
