open Elastic_netlist

type cycle = {
  ratio : float;
  tokens : int;
  latency : int;
  nodes : string list;
}

let pp_cycle ppf c =
  Fmt.pf ppf "%d token(s) / %d EB(s) = %.3f via [%a]" c.tokens c.latency
    c.ratio
    Fmt.(list ~sep:(any " -> ") string)
    c.nodes

type edge = { u : int; v : int; tokens : int; latency : int }

(* Dense vertex numbering and one edge per channel.  A channel leaving a
   buffer carries the buffer's tokens and one cycle of forward latency;
   all other channels are instantaneous. *)
let graph_of net =
  let nodes = Netlist.nodes net in
  let index = Hashtbl.create 32 in
  List.iteri
    (fun i (n : Netlist.node) -> Hashtbl.replace index n.Netlist.id i)
    nodes;
  let edge (c : Netlist.channel) =
    let src = Netlist.node net c.Netlist.src.ep_node in
    let tokens, latency =
      match src.Netlist.kind with
      | Netlist.Buffer { init; _ } -> (List.length init, 1)
      | Netlist.Varlat _ -> (0, 1)
      | Netlist.Source _ | Netlist.Sink _ | Netlist.Func _ | Netlist.Fork _
      | Netlist.Mux _ | Netlist.Shared _ -> (0, 0)
    in
    { u = Hashtbl.find index c.Netlist.src.ep_node;
      v = Hashtbl.find index c.Netlist.dst.ep_node; tokens; latency }
  in
  (Array.of_list nodes, List.map edge (Netlist.channels net))

(* Bellman-Ford negative-cycle detection for weights tokens - lambda *
   latency.  Returns the cycle's vertices when one exists. *)
let negative_cycle n edges lambda =
  let dist = Array.make n 0.0 in
  let pred = Array.make n (-1) in
  let weight e = float_of_int e.tokens -. (lambda *. float_of_int e.latency) in
  let updated = ref (-1) in
  for _ = 1 to n do
    updated := -1;
    List.iter
      (fun e ->
         let w = dist.(e.u) +. weight e in
         if w < dist.(e.v) -. 1e-12 then begin
           dist.(e.v) <- w;
           pred.(e.v) <- e.u;
           updated := e.v
         end)
      edges
  done;
  if !updated < 0 then None
  else begin
    (* Walk back n steps to land inside the cycle, then collect it. *)
    let v = ref !updated in
    for _ = 1 to n do
      v := pred.(!v)
    done;
    let start = !v in
    let rec follow acc u =
      if u = start && acc <> [] then acc else follow (u :: acc) pred.(u)
    in
    Some (follow [] start)
  end

let cycle_metrics net (vertices : int list) (nodes : Netlist.node array)
    edges =
  (* Vertices are in reverse traversal order; compute token/latency sums
     over the cycle's edges. *)
  let in_cycle = Array.make (Array.length nodes) false in
  List.iter (fun v -> in_cycle.(v) <- true) vertices;
  let tokens, latency =
    List.fold_left
      (fun (t, l) e ->
         if in_cycle.(e.u) && in_cycle.(e.v) then (t + e.tokens, l + e.latency)
         else (t, l))
      (0, 0) edges
  in
  ignore net;
  { ratio =
      (if latency = 0 then 0.0
       else float_of_int tokens /. float_of_int latency);
    tokens; latency;
    nodes = List.map (fun v -> nodes.(v).Netlist.name) vertices }

let has_cycle n edges =
  (* Any cycle at all: lambda so large every latency edge is very
     negative; a cycle without latency is combinational and will be found
     with tokens-only weights below. *)
  negative_cycle n edges 1e9 <> None

let combinational_cycle n edges =
  (* A cycle with zero latency shows as a negative cycle for weights
     -latency... instead: drop latency edges and look for any cycle among
     zero-latency edges using DFS.  Returns a vertex on the cycle so the
     diagnostic can name it. *)
  let adj = Array.make n [] in
  List.iter
    (fun e -> if e.latency = 0 then adj.(e.u) <- e.v :: adj.(e.u))
    edges;
  let color = Array.make n 0 in
  let witness = ref None in
  let rec dfs u =
    color.(u) <- 1;
    let hit =
      List.exists
        (fun v ->
           if color.(v) = 1 then begin
             if !witness = None then witness := Some v;
             true
           end
           else color.(v) = 0 && dfs v)
        adj.(u)
    in
    if not hit then color.(u) <- 2;
    hit
  in
  let rec any i = i < n && ((color.(i) = 0 && dfs i) || any (i + 1)) in
  if any 0 then !witness else None

(* The zero-latency cycle is the same defect lint reports as E102
   (comb-cycle): no EB registers the loop.  Raising the typed diagnostic
   keeps provenance consistent between the lint engine and the analytic
   bounds. *)
let reject_comb_cycle ~what (nodes : Netlist.node array) v =
  let n = nodes.(v) in
  Diagnostic.reject
    (Diagnostic.make ~code:"E102" ~rule:"comb-cycle"
       ~severity:Diagnostic.Error ~node:n.Netlist.id
       ~node_name:n.Netlist.name
       (Fmt.str
          "Marked_graph.%s: zero-latency cycle through %s (no EB \
           registers the loop, so the token/EB ratio is undefined)"
          what n.Netlist.name))

let throughput_bound net =
  let nodes, edges = graph_of net in
  let n = Array.length nodes in
  (match combinational_cycle n edges with
   | Some v -> reject_comb_cycle ~what:"throughput_bound" nodes v
   | None -> ());
  if not (has_cycle n edges) then 1.0
  else begin
    (* Largest lambda in [0, 1] admitting no negative cycle. *)
    let lo = ref 0.0 and hi = ref 1.0 in
    if negative_cycle n edges 1.0 = None then 1.0
    else begin
      for _ = 1 to 50 do
        let mid = 0.5 *. (!lo +. !hi) in
        if negative_cycle n edges mid = None then lo := mid else hi := mid
      done;
      !lo
    end
  end

let critical_cycle net =
  let nodes, edges = graph_of net in
  let n = Array.length nodes in
  (match combinational_cycle n edges with
   | Some v -> reject_comb_cycle ~what:"critical_cycle" nodes v
   | None -> ());
  if not (has_cycle n edges) then None
  else begin
    let bound = throughput_bound net in
    (* Slightly above the bound, the critical cycle goes negative. *)
    match negative_cycle n edges (bound +. 1e-6) with
    | Some vs -> Some (cycle_metrics net vs nodes edges)
    | None ->
      (* Bound is exactly 1.0 and achieved; surface any cycle. *)
      (match negative_cycle n edges (1.0 +. 1e-6) with
       | Some vs -> Some (cycle_metrics net vs nodes edges)
       | None -> None)
  end

let effective_cycle_time ?timing net =
  let ct =
    match Timing.analyze ?params:timing net with
    | Ok r -> r.Timing.cycle_time
    | Error msg ->
      invalid_arg ("Marked_graph.effective_cycle_time: " ^ msg)
  in
  ct /. throughput_bound net
