open Elastic_netlist

(** Analytic throughput bounds via the marked-graph abstraction.

    Abstracting choice away (multiplexors and shared modules treated as
    plain joins), an elastic netlist is a marked graph whose throughput is
    bounded by the minimum cycle ratio

    {v    theta  <=  min over directed cycles C  (tokens in C / EBs in C)   v}

    — e.g. the bubble-inserted loop of Fig. 1(b) has one token and two
    EBs, hence throughput 1/2.  The bound is exact for live, choice-free
    nets; with early evaluation the simulator can beat it (that is the
    point of the paper), so treat it as the {e non-speculative} baseline.

    The minimum ratio is found by binary search over a parametric negative
    -cycle test (Bellman-Ford), which is robust and fast at these sizes. *)

type cycle = {
  ratio : float;  (** tokens / latency of the critical cycle. *)
  tokens : int;
  latency : int;  (** Number of EBs around the cycle. *)
  nodes : string list;  (** Node names around the cycle. *)
}

val pp_cycle : Format.formatter -> cycle -> unit

(** [throughput_bound net] is the minimum cycle ratio, or [1.0] when the
    netlist has no token-bearing cycles (feed-forward pipelines).
    @raise Diagnostic.Reject on a zero-latency cycle (combinational
    loop): a typed diagnostic carrying the lint engine's E102
    (comb-cycle) code and naming a node on the cycle. *)
val throughput_bound : Netlist.t -> float

(** The cycle attaining the bound, when any directed cycle exists.
    @raise Diagnostic.Reject (E102) on a zero-latency cycle, as
    {!throughput_bound}. *)
val critical_cycle : Netlist.t -> cycle option

(** [effective_cycle_time net] is cycle time divided by the throughput
    bound — the paper's figure of merit for comparing design points. *)
val effective_cycle_time : ?timing:Timing.params -> Netlist.t -> float
