type severity = Error | Warning | Info

type fixit =
  | Insert_bubble of { channel : int }
  | Convert_buffer of { node : int; buffer : string }
  | Set_init of { node : int; tokens : int }
  | Note of string

type t = {
  code : string;
  rule : string;
  severity : severity;
  node : int option;
  node_name : string option;
  channel : int option;
  channel_name : string option;
  message : string;
  fixit : fixit option;
}

exception Reject of t

let make ~code ~rule ~severity ?node ?node_name ?channel ?channel_name
    ?fixit message =
  { code; rule; severity; node; node_name; channel; channel_name; message;
    fixit }

let reject d = raise (Reject d)

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let is_error d = d.severity = Error

let pp_fixit ppf = function
  | Insert_bubble { channel } ->
    Fmt.pf ppf "insert an empty EB on channel %d" channel
  | Convert_buffer { node; buffer } ->
    Fmt.pf ppf "convert buffer %d to %s" node buffer
  | Set_init { node; tokens } ->
    Fmt.pf ppf "give buffer %d %d initial token(s)" node tokens
  | Note s -> Fmt.string ppf s

let pp_provenance ppf d =
  let item what id name =
    Fmt.pf ppf " [%s %d%a]" what id
      Fmt.(option (fmt " %s"))
      name
  in
  Option.iter (fun id -> item "node" id d.node_name) d.node;
  Option.iter (fun id -> item "channel" id d.channel_name) d.channel

let pp ppf d =
  Fmt.pf ppf "%s %s%a: %s%a" d.code (severity_name d.severity)
    pp_provenance d d.message
    Fmt.(option (fun ppf f -> pf ppf " (fix: %a)" pp_fixit f))
    d.fixit

let to_string d = Fmt.str "%a" pp d

(* Register the rejection exception with a readable rendering, so an
   uncaught precheck failure prints the diagnostic, not just "Reject _". *)
let () =
  Printexc.register_printer (function
    | Reject d -> Some (Fmt.str "Diagnostic.Reject (%a)" pp d)
    | _ -> None)
