(** Typed diagnostics for static analysis of elastic netlists.

    Every finding of the lint engine ({!module:Elastic_lint}) and of the
    structural checks in {!Netlist.diagnostics} is one of these records: a
    stable rule code ([E102], [W104], ...), a severity, provenance (the
    node and/or channel the finding is about, by id and name) and a human
    message, optionally with a machine-applicable fix-it.

    The module lives in [elastic_netlist] (below the lint library) so
    that the netlist's own structural validation, the simulator's error
    records and the transformation prechecks can all share the type
    without a dependency cycle.  Node and channel ids are plain [int]s
    for the same reason — they are {!Netlist.node_id} /
    {!Netlist.channel_id} values. *)

type severity = Error | Warning | Info

(** Machine-applicable repairs, interpreted by [Lint.apply_fixes]. *)
type fixit =
  | Insert_bubble of { channel : int }
      (** Insert an empty EB on the channel (breaks a combinational
          cycle; always transfer-preserving, §2). *)
  | Convert_buffer of { node : int; buffer : string }
      (** Swap the buffer implementation (["eb"] or ["eb0"], Fig. 5). *)
  | Set_init of { node : int; tokens : int }
      (** Give the buffer [tokens] initial tokens (value [Int 0]) —
          changes the computation; offered only where the alternative is
          a statically dead design. *)
  | Note of string  (** Human advice; not machine-applicable. *)

type t = {
  code : string;  (** Stable rule code, e.g. ["E102"]. *)
  rule : string;  (** Rule slug, e.g. ["comb-cycle"]. *)
  severity : severity;
  node : int option;
  node_name : string option;
  channel : int option;
  channel_name : string option;
  message : string;
  fixit : fixit option;
}

(** Raised by transformation prechecks ([Lint.Precheck]) when an illegal
    application is rejected: the typed alternative to the bare
    [Invalid_argument] the transformations used to raise. *)
exception Reject of t

val make :
  code:string -> rule:string -> severity:severity -> ?node:int ->
  ?node_name:string -> ?channel:int -> ?channel_name:string ->
  ?fixit:fixit -> string -> t

(** [reject d] raises {!Reject}. *)
val reject : t -> 'a

val severity_name : severity -> string

val is_error : t -> bool

val pp_fixit : Format.formatter -> fixit -> unit

(** ["E102 error [node 3 mux_3]: message (fix: ...)"] *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
