(* Bring the SELF kernel modules (Value, Signal, ...) into scope. *)
open Elastic_kernel
open Elastic_sched

(** Structural representation of an elastic system.

    An elastic system is a collection of blocks and buffers connected by
    elastic channels (§3).  The netlist is a purely functional graph so
    that transformations produce new netlists cheaply and the exploration
    shell can keep undo/redo histories. *)

type node_id = int

type channel_id = int

(** Connection points of a node.  [Sel] is the select input of a
    multiplexor; data inputs and outputs are numbered from 0. *)
type port = Sel | In of int | Out of int

val pp_port : Format.formatter -> port -> unit

val port_equal : port -> port -> bool

(** Elastic buffer implementations available to the designer.

    - [Eb]: the standard latch-based EB of Fig. 2(a), forward latency 1,
      backward latency 1, capacity 2.
    - [Eb0]: the flip-flop EB of Fig. 5, forward latency 1, backward
      latency 0, capacity 1 — stop and kill traverse it combinationally,
      speeding up anti-token propagation (§4.3). *)
type buffer_kind = Eb | Eb0

val buffer_kind_name : buffer_kind -> string

(** Token capacity [C = Lf + Lb]: 2 for [Eb], 1 for [Eb0]. *)
val buffer_capacity : buffer_kind -> int

(** Token sources (environment inputs). *)
type source_spec =
  | Stream of Value.t list  (** Finite scripted stream, then silence. *)
  | Counter of { start : int; step : int }  (** Infinite integer stream. *)
  | Random_rate of { pct : int; seed : int }
      (** Counter data offered with probability [pct]/100 each cycle. *)
  | Nondet of Value.t list
      (** Offers nondeterministically (externally controlled during model
          checking, 50/50 otherwise), cycling over a finite value list —
          keeps the state space finite for {!section-exploration}
          exhaustive verification. *)

(** Token sinks (environment outputs). *)
type sink_spec =
  | Always_ready
  | Stall_pattern of bool array
      (** Cyclic pattern; [true] = assert stop that cycle. *)
  | Random_stall of { pct : int; seed : int }

type kind =
  | Source of source_spec
  | Sink of sink_spec
  | Buffer of { buffer : buffer_kind; init : Value.t list }
      (** [init] are the tokens initially stored (oldest first); an empty
          list is a bubble. *)
  | Func of Func.t
      (** Lazy-join block: waits for all [arity] inputs, produces one
          output. *)
  | Fork of int  (** Eager fork to [n] outputs. *)
  | Mux of { ways : int; early : bool }
      (** Multiplexor with a select input and [ways] data inputs.  When
          [early] is set it performs early evaluation and emits
          anti-tokens into the non-selected channels (§2, §4.1). *)
  | Shared of {
      ways : int;
      f : Func.t;
      sched : Scheduler.spec;
      hinted : bool;
    }
      (** Shared elastic module of Fig. 4: [ways] input/output channel
          pairs around a single copy of [f], arbitrated by a speculation
          scheduler.  When [hinted], the module has an extra [Sel] input
          carrying one hint token per operation served on channel 0 (the
          speculative home); the hint value is delivered to the scheduler
          — the wiring §5 uses to let the error detector drive
          speculation. *)
  | Varlat of { fast : Func.t; slow : Func.t; err : Func.t }
      (** Stalling variable-latency unit of Fig. 6(a): a registered stage
          that computes [fast v] in one cycle when [err v = Int 0] and
          otherwise stalls the sender one extra cycle and emits [slow v].
          The error detector feeds the stage controller, so it sits on the
          stage's critical path (which is what speculation removes). *)

val kind_name : kind -> string

type node = { id : node_id; name : string; kind : kind }

type endpoint = { ep_node : node_id; ep_port : port }

type channel = {
  ch_id : channel_id;
  ch_name : string;
  src : endpoint;  (** Must be an output-capable port. *)
  dst : endpoint;  (** Must be an input-capable port. *)
  width : int;  (** Datapath width in bits (for the area model). *)
}

type t

val empty : t

(** {1 Construction} *)

(** [add_node t kind] returns the extended netlist and the fresh node id.
    A default name is derived from the kind when [name] is omitted. *)
val add_node : ?name:string -> t -> kind -> t * node_id

(** [connect t (n1, p1) (n2, p2)] adds a channel from output port [p1] of
    [n1] to input port [p2] of [n2].
    @raise Invalid_argument if a port is already connected, does not exist
    on the node, or has the wrong direction. *)
val connect :
  ?name:string -> ?width:int -> t -> node_id * port -> node_id * port ->
  t * channel_id

(** [unsafe_connect] adds a channel {e without any} direction, arity or
    occupancy checks, and accepts endpoints naming nodes that do not
    exist.  It exists for the lint test harness (the mutation generator
    must be able to build the malformed netlists that [connect] refuses);
    production construction code must use {!connect}. *)
val unsafe_connect :
  ?name:string -> ?width:int -> t -> node_id * port -> node_id * port ->
  t * channel_id

(** {1 Modification (used by transformations)} *)

val remove_node : t -> node_id -> t
(** Removes the node; its channels must have been removed first.
    @raise Invalid_argument otherwise. *)

val remove_channel : t -> channel_id -> t

val replace_kind : t -> node_id -> kind -> t

val rename_node : t -> node_id -> string -> t

(** [set_dst t c ep] / [set_src t c ep] re-points one end of channel [c].
    @raise Invalid_argument if the new port is occupied or invalid. *)
val set_dst : t -> channel_id -> node_id * port -> t

val set_src : t -> channel_id -> node_id * port -> t

(** {1 Queries} *)

val node : t -> node_id -> node

val channel : t -> channel_id -> channel

val nodes : t -> node list

val channels : t -> channel list

val node_count : t -> int

val channel_count : t -> int

val find_node : t -> string -> node option

(** Channels whose destination is the given node. *)
val incoming : t -> node_id -> channel list

(** Channels whose source is the given node. *)
val outgoing : t -> node_id -> channel list

(** The channel attached to a specific port of a node, if any. *)
val channel_at : t -> node_id -> port -> channel option

(** Input ports a node of this kind must have connected. *)
val required_inputs : kind -> port list

(** Output ports a node of this kind must have connected. *)
val required_outputs : kind -> port list

(** {1 Validation} *)

(** Structural well-formedness as typed diagnostics: every required port
    connected exactly once (E001/E002), no dangling channel endpoints
    (E003), positive channel widths (E004).  The lint engine
    ({!module:Elastic_lint}) registers these as its structural rules and
    layers the graph-level SELF and speculation rules on top. *)
val diagnostics : t -> Diagnostic.t list

(** [validate t] checks that every required port of every node is
    connected exactly once and that endpoint directions are consistent.
    Returns the list of problems, empty when the netlist is well formed.
    (The historical string API: exactly the messages of
    {!diagnostics}.) *)
val validate : t -> string list

(** [validate_exn t] raises [Invalid_argument] with the concatenated
    problems if the netlist is not well formed. *)
val validate_exn : t -> unit

val pp : Format.formatter -> t -> unit
