(* Bring the SELF kernel modules (Value, Signal, ...) into scope. *)
open Elastic_kernel
open Elastic_sched

module IntMap = Map.Make (Int)

type node_id = int

type channel_id = int

type port = Sel | In of int | Out of int

let pp_port ppf = function
  | Sel -> Fmt.string ppf "sel"
  | In i -> Fmt.pf ppf "in%d" i
  | Out i -> Fmt.pf ppf "out%d" i

let port_equal a b =
  match a, b with
  | Sel, Sel -> true
  | In i, In j | Out i, Out j -> i = j
  | (Sel | In _ | Out _), _ -> false

type buffer_kind = Eb | Eb0

let buffer_kind_name = function Eb -> "eb" | Eb0 -> "eb0"

(* C = Lf + Lb: Eb is (1,1), Eb0 the Fig. 5 (1,0) implementation. *)
let buffer_capacity = function Eb -> 2 | Eb0 -> 1

type source_spec =
  | Stream of Value.t list
  | Counter of { start : int; step : int }
  | Random_rate of { pct : int; seed : int }
  | Nondet of Value.t list

type sink_spec =
  | Always_ready
  | Stall_pattern of bool array
  | Random_stall of { pct : int; seed : int }

type kind =
  | Source of source_spec
  | Sink of sink_spec
  | Buffer of { buffer : buffer_kind; init : Value.t list }
  | Func of Func.t
  | Fork of int
  | Mux of { ways : int; early : bool }
  | Shared of {
      ways : int;
      f : Func.t;
      sched : Scheduler.spec;
      hinted : bool;
    }
  | Varlat of { fast : Func.t; slow : Func.t; err : Func.t }

let kind_name = function
  | Source _ -> "source"
  | Sink _ -> "sink"
  | Buffer { buffer; init } ->
    Fmt.str "%s[%d]" (buffer_kind_name buffer) (List.length init)
  | Func f -> f.Func.name
  | Fork n -> Fmt.str "fork%d" n
  | Mux { ways; early } ->
    Fmt.str "%smux%d" (if early then "e" else "") ways
  | Shared { ways; f; sched; hinted } ->
    Fmt.str "shared%d%s(%s,%s)" ways
      (if hinted then "h" else "")
      f.Func.name (Scheduler.spec_name sched)
  | Varlat { fast; slow; _ } ->
    Fmt.str "varlat(%s|%s)" fast.Func.name slow.Func.name

type node = { id : node_id; name : string; kind : kind }

type endpoint = { ep_node : node_id; ep_port : port }

type channel = {
  ch_id : channel_id;
  ch_name : string;
  src : endpoint;
  dst : endpoint;
  width : int;
}

type t = {
  node_map : node IntMap.t;
  channel_map : channel IntMap.t;
  next_node : int;
  next_channel : int;
}

let empty =
  { node_map = IntMap.empty; channel_map = IntMap.empty; next_node = 0;
    next_channel = 0 }

let required_inputs = function
  | Source _ -> []
  | Sink _ -> [ In 0 ]
  | Buffer _ -> [ In 0 ]
  | Func f -> List.init f.Func.arity (fun i -> In i)
  | Fork _ -> [ In 0 ]
  | Mux { ways; _ } -> Sel :: List.init ways (fun i -> In i)
  | Shared { ways; hinted; _ } ->
    let ins = List.init ways (fun i -> In i) in
    if hinted then Sel :: ins else ins
  | Varlat _ -> [ In 0 ]

let required_outputs = function
  | Source _ -> [ Out 0 ]
  | Sink _ -> []
  | Buffer _ -> [ Out 0 ]
  | Func _ -> [ Out 0 ]
  | Fork n -> List.init n (fun i -> Out i)
  | Mux _ -> [ Out 0 ]
  | Shared { ways; _ } -> List.init ways (fun i -> Out i)
  | Varlat _ -> [ Out 0 ]

let is_output_port = function Out _ -> true | In _ | Sel -> false

let add_node ?name t kind =
  let id = t.next_node in
  let name =
    match name with Some n -> n | None -> Fmt.str "%s_%d" (kind_name kind) id
  in
  let node = { id; name; kind } in
  ({ t with node_map = IntMap.add id node t.node_map; next_node = id + 1 },
   id)

let node t id =
  match IntMap.find_opt id t.node_map with
  | Some n -> n
  | None -> invalid_arg (Fmt.str "Netlist.node: no node %d" id)

let channel t id =
  match IntMap.find_opt id t.channel_map with
  | Some c -> c
  | None -> invalid_arg (Fmt.str "Netlist.channel: no channel %d" id)

let nodes t = IntMap.fold (fun _ n acc -> n :: acc) t.node_map [] |> List.rev

let channels t =
  IntMap.fold (fun _ c acc -> c :: acc) t.channel_map [] |> List.rev

let node_count t = IntMap.cardinal t.node_map

let channel_count t = IntMap.cardinal t.channel_map

let find_node t name =
  IntMap.fold
    (fun _ n acc -> if acc = None && String.equal n.name name then Some n
      else acc)
    t.node_map None

let incoming t id =
  List.filter (fun c -> c.dst.ep_node = id) (channels t)

let outgoing t id =
  List.filter (fun c -> c.src.ep_node = id) (channels t)

let channel_at t id port =
  List.find_opt
    (fun c ->
       (c.src.ep_node = id && port_equal c.src.ep_port port)
       || (c.dst.ep_node = id && port_equal c.dst.ep_port port))
    (channels t)

let port_exists kind port ~as_output =
  let valid =
    if as_output then required_outputs kind else required_inputs kind
  in
  List.exists (port_equal port) valid

let check_port_free t id port ~as_output =
  match channel_at t id port with
  | Some c ->
    let n = node t id in
    invalid_arg
      (Fmt.str "Netlist.connect: port %a of %s already used by channel %s"
         pp_port port n.name c.ch_name)
  | None ->
    let n = node t id in
    if not (port_exists n.kind port ~as_output) then
      invalid_arg
        (Fmt.str "Netlist.connect: node %s (%s) has no %s port %a" n.name
           (kind_name n.kind)
           (if as_output then "output" else "input")
           pp_port port)

let connect ?name ?(width = 8) t (n1, p1) (n2, p2) =
  if not (is_output_port p1) then
    invalid_arg "Netlist.connect: source endpoint must be an output port";
  if is_output_port p2 then
    invalid_arg "Netlist.connect: destination endpoint must be an input port";
  check_port_free t n1 p1 ~as_output:true;
  check_port_free t n2 p2 ~as_output:false;
  let id = t.next_channel in
  let ch_name =
    match name with
    | Some n -> n
    | None ->
      Fmt.str "%s.%a->%s.%a" (node t n1).name pp_port p1 (node t n2).name
        pp_port p2
  in
  let c =
    { ch_id = id; ch_name; src = { ep_node = n1; ep_port = p1 };
      dst = { ep_node = n2; ep_port = p2 }; width }
  in
  ({ t with channel_map = IntMap.add id c t.channel_map;
            next_channel = id + 1 },
   id)

(* Raw channel insertion with no direction, arity or occupancy checks —
   the lint mutation generator uses it to build the broken netlists the
   safe [connect] refuses to create (multiply-driven ports, dangling
   endpoints, zero widths). *)
let unsafe_connect ?name ?(width = 8) t (n1, p1) (n2, p2) =
  let id = t.next_channel in
  let ep_name nid p =
    match IntMap.find_opt nid t.node_map with
    | Some n -> Fmt.str "%s.%a" n.name pp_port p
    | None -> Fmt.str "n%d.%a" nid pp_port p
  in
  let ch_name =
    match name with
    | Some n -> n
    | None -> Fmt.str "%s->%s" (ep_name n1 p1) (ep_name n2 p2)
  in
  let c =
    { ch_id = id; ch_name; src = { ep_node = n1; ep_port = p1 };
      dst = { ep_node = n2; ep_port = p2 }; width }
  in
  ({ t with channel_map = IntMap.add id c t.channel_map;
            next_channel = id + 1 },
   id)

let remove_channel t id =
  let _ = channel t id in
  { t with channel_map = IntMap.remove id t.channel_map }

let remove_node t id =
  let n = node t id in
  let attached =
    List.filter
      (fun c -> c.src.ep_node = id || c.dst.ep_node = id)
      (channels t)
  in
  (match attached with
   | [] -> ()
   | c :: _ ->
     invalid_arg
       (Fmt.str "Netlist.remove_node: %s still attached to channel %s"
          n.name c.ch_name));
  { t with node_map = IntMap.remove id t.node_map }

let replace_kind t id kind =
  let n = node t id in
  { t with node_map = IntMap.add id { n with kind } t.node_map }

let rename_node t id name =
  let n = node t id in
  { t with node_map = IntMap.add id { n with name } t.node_map }

let set_end t cid (nid, port) ~src =
  let c = channel t cid in
  if src then begin
    if not (is_output_port port) then
      invalid_arg "Netlist.set_src: must be an output port"
  end
  else if is_output_port port then
    invalid_arg "Netlist.set_dst: must be an input port";
  (* The port must be free (ignoring this very channel). *)
  (match channel_at t nid port with
   | Some c' when c'.ch_id <> cid ->
     invalid_arg
       (Fmt.str "Netlist.set_%s: port %a of %s already used"
          (if src then "src" else "dst") pp_port port (node t nid).name)
   | Some _ | None -> ());
  let n = node t nid in
  if not (port_exists n.kind port ~as_output:src) then
    invalid_arg
      (Fmt.str "Netlist.set_%s: node %s has no port %a"
         (if src then "src" else "dst") n.name pp_port port);
  let ep = { ep_node = nid; ep_port = port } in
  let c' = if src then { c with src = ep } else { c with dst = ep } in
  { t with channel_map = IntMap.add cid c' t.channel_map }

let set_src t cid ep = set_end t cid ep ~src:true

let set_dst t cid ep = set_end t cid ep ~src:false

(* Structural well-formedness, reported as typed diagnostics: the lint
   engine registers these checks as rules E001-E004, and [validate]
   below (the historical string-list API) delegates here. *)
let diagnostics t =
  let problems = ref [] in
  let add p = problems := p :: !problems in
  IntMap.iter
    (fun _ n ->
       let check_port ~as_output port =
         let uses =
           List.filter
             (fun c ->
                if as_output then
                  c.src.ep_node = n.id && port_equal c.src.ep_port port
                else c.dst.ep_node = n.id && port_equal c.dst.ep_port port)
             (channels t)
         in
         match uses with
         | [ _ ] -> ()
         | [] ->
           add
             (Diagnostic.make ~code:"E001" ~rule:"unconnected-port"
                ~severity:Diagnostic.Error ~node:n.id ~node_name:n.name
                (Fmt.str "node %s (%s): %s port %a is unconnected" n.name
                   (kind_name n.kind)
                   (if as_output then "output" else "input")
                   pp_port port))
         | _ :: c :: _ ->
           add
             (Diagnostic.make ~code:"E002" ~rule:"multi-connected-port"
                ~severity:Diagnostic.Error ~node:n.id ~node_name:n.name
                ~channel:c.ch_id ~channel_name:c.ch_name
                (Fmt.str "node %s: port %a connected more than once" n.name
                   pp_port port))
       in
       List.iter (check_port ~as_output:false) (required_inputs n.kind);
       List.iter (check_port ~as_output:true) (required_outputs n.kind))
    t.node_map;
  IntMap.iter
    (fun _ c ->
       let dangling which nid =
         if not (IntMap.mem nid t.node_map) then
           add
             (Diagnostic.make ~code:"E003" ~rule:"dangling-endpoint"
                ~severity:Diagnostic.Error ~channel:c.ch_id
                ~channel_name:c.ch_name
                (Fmt.str "channel %s: dangling %s node" c.ch_name which))
       in
       dangling "source" c.src.ep_node;
       dangling "destination" c.dst.ep_node;
       if c.width < 1 then
         add
           (Diagnostic.make ~code:"E004" ~rule:"bad-width"
              ~severity:Diagnostic.Error ~channel:c.ch_id
              ~channel_name:c.ch_name
              (Fmt.str "channel %s: width %d < 1" c.ch_name c.width)))
    t.channel_map;
  List.rev !problems

let validate t =
  List.map (fun (d : Diagnostic.t) -> d.Diagnostic.message) (diagnostics t)

let validate_exn t =
  match validate t with
  | [] -> ()
  | ps -> invalid_arg ("Netlist.validate: " ^ String.concat "; " ps)

let pp ppf t =
  Fmt.pf ppf "netlist: %d nodes, %d channels@." (node_count t)
    (channel_count t);
  List.iter
    (fun n -> Fmt.pf ppf "  node %d %s : %s@." n.id n.name (kind_name n.kind))
    (nodes t);
  List.iter
    (fun c ->
       Fmt.pf ppf "  chan %d %s : %s.%a -> %s.%a (w%d)@." c.ch_id c.ch_name
         (node t c.src.ep_node).name pp_port c.src.ep_port
         (node t c.dst.ep_node).name pp_port c.dst.ep_port c.width)
    (channels t)
