open Elastic_kernel
open Elastic_netlist

(** Recovery verification: run a faulted and an unfaulted engine in
    lockstep and classify the outcome by transfer-stream
    equivalence-modulo-delay (values must match in order; cycle stamps
    may lag — the recovery penalty).

    Classification precedence: [Crashed] (the faulted engine raised) >
    [Detected] (a protocol monitor, the starvation watchdog, or a
    user-declared alarm sink flagged the fault) > [Silent_corruption]
    (a data sink delivered a wrong value) > [Deadlock] (transfers
    missing after the settle window) > [Corrected] (equivalent modulo a
    positive delay) > [Masked] (streams identical including stamps). *)

type classification =
  | Masked
  | Corrected of int  (** Max extra delay, in cycles, at any data sink. *)
  | Detected of string  (** Provenance of the first detection. *)
  | Silent_corruption of string
  | Deadlock of string
  | Crashed of string

type report = {
  classification : classification;
  fault_desc : string list;  (** One line per injected fault. *)
  ref_transfers : int;  (** Data-sink transfers in the reference run. *)
  faulted_transfers : int;
  fresh_violations : (string * Protocol.violation) list;
      (** Monitor violations present in the faulted run only. *)
}

val classification_label : classification -> string

val pp_classification : Format.formatter -> classification -> unit

val pp_report : Format.formatter -> report -> unit

(** [check net ~faults] simulates [cycles] lockstep cycles, then lets the
    faulted engine drain for [settle] more cycles, and classifies.
    The checker assumes a {e finite} workload that the reference run
    drains within [cycles]: transfers beyond the reference stream are
    reported as spurious (corruption), not run-ahead.

    @param alarms sink nodes that are error {e detectors} rather than
    data outputs: their streams are excluded from equivalence checking
    and the fault counts as [Detected] when the predicate holds for more
    faulted-run values than reference-run values.
    @param mode engine evaluation strategy for both runs (default
    {!Engine.Levelized}); exposed for differential tests.
    @param observer called once with the {e faulted} engine before the
    first cycle, so a tracer (e.g. [Elastic_trace.Tracer.attach]) can be
    installed and the injected fault's propagation recorded; the
    reference engine stays unobserved. *)
val check :
  ?cycles:int ->
  ?settle:int ->
  ?alarms:(Netlist.node_id * (Value.t -> bool)) list ->
  ?mode:Elastic_sim.Engine.eval_mode ->
  ?observer:(Elastic_sim.Engine.t -> unit) ->
  Netlist.t ->
  faults:Fault.t list ->
  report
