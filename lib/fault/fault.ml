open Elastic_kernel
open Elastic_netlist
open Elastic_sim

type kind =
  | Flip_bits of int list
  | Force_valid of bool
  | Force_stop of bool
  | Force_kill of bool
  | Duplicate_token
  | Mispredict of int

type target = Channel of Netlist.channel_id | Node of Netlist.node_id

type t = { target : target; kind : kind; cycle : int; duration : int }

let make ?(duration = 1) target kind cycle =
  if duration < 1 then invalid_arg "Fault: duration must be >= 1";
  { target; kind; cycle; duration }

let flip_bit ~channel ~cycle bit =
  make (Channel channel) (Flip_bits [ bit ]) cycle

let flip_bits ~channel ~cycle bits =
  make (Channel channel) (Flip_bits bits) cycle

let drop_token ~channel ~cycle = make (Channel channel) (Force_valid false) cycle

let duplicate_token ~channel ~cycle =
  make (Channel channel) Duplicate_token cycle

let stuck_stall ~channel ~cycle ~duration =
  make ~duration (Channel channel) (Force_stop true) cycle

let glitch_valid ~channel ~cycle level =
  make (Channel channel) (Force_valid level) cycle

let glitch_kill ~channel ~cycle level =
  make (Channel channel) (Force_kill level) cycle

let control_glitch ~channel ~cycle =
  [ stuck_stall ~channel ~cycle ~duration:1;
    drop_token ~channel ~cycle:(cycle + 1) ]

let mispredict ~node ~cycle way = make (Node node) (Mispredict way) cycle

let active f ~cycle = cycle >= f.cycle && cycle < f.cycle + f.duration

let rec value_width = function
  | Value.Unit | Value.Str _ -> 0
  | Value.Bool _ -> 1
  | Value.Int _ -> 8
  | Value.Word _ -> 64
  | Value.Tuple vs -> List.fold_left (fun a v -> a + value_width v) 0 vs

let flip_value bits v =
  let rec go off v =
    match v with
    | Value.Unit | Value.Str _ -> (v, off)
    | Value.Bool b ->
      let v' = if List.mem off bits then Value.Bool (not b) else v in
      (v', off + 1)
    | Value.Int n ->
      let n' =
        List.fold_left
          (fun n b ->
             if b >= off && b < off + 8 then n lxor (1 lsl (b - off))
             else n)
          n bits
      in
      (Value.Int n', off + 8)
    | Value.Word w ->
      let w' =
        List.fold_left
          (fun w b ->
             if b >= off && b < off + 64 then
               Int64.logxor w (Int64.shift_left 1L (b - off))
             else w)
          w bits
      in
      (Value.Word w', off + 64)
    | Value.Tuple vs ->
      let off, rev =
        List.fold_left
          (fun (off, acc) v ->
             let v', off' = go off v in
             (off', v' :: acc))
          (off, []) vs
      in
      (Value.Tuple (List.rev rev), off)
  in
  fst (go 0 v)

let describe net f =
  let where =
    match f.target with
    | Channel cid ->
      let c = Netlist.channel net cid in
      Fmt.str "channel %s (id %d, node %d -> node %d)" c.Netlist.ch_name
        c.Netlist.ch_id c.Netlist.src.Netlist.ep_node
        c.Netlist.dst.Netlist.ep_node
    | Node nid ->
      let n = Netlist.node net nid in
      Fmt.str "node %s (id %d)" n.Netlist.name nid
  in
  let what =
    match f.kind with
    | Flip_bits [ b ] -> Fmt.str "flip payload bit %d" b
    | Flip_bits bs ->
      Fmt.str "flip payload bits {%s}"
        (String.concat "," (List.map string_of_int bs))
    | Force_valid true -> "forge valid (V+ stuck high)"
    | Force_valid false -> "drop token (V+ stuck low)"
    | Force_stop true -> "stuck-at stall (S+ high)"
    | Force_stop false -> "suppress stall (S+ low)"
    | Force_kill true -> "forge anti-token (V- stuck high)"
    | Force_kill false -> "suppress anti-token (V- stuck low)"
    | Duplicate_token -> "duplicate last token"
    | Mispredict way -> Fmt.str "force scheduler to way %d" way
  in
  let window =
    if f.duration = 1 then Fmt.str "at cycle %d" f.cycle
    else Fmt.str "during cycles %d..%d" f.cycle (f.cycle + f.duration - 1)
  in
  Fmt.str "%s on %s %s" what where window

type plan = {
  p_faults : t list;
  last_data : (Netlist.channel_id, Value.t) Hashtbl.t;
  dup_channels : Netlist.channel_id list;
}

let plan _net faults =
  let dup_channels =
    List.filter_map
      (fun f ->
         match (f.target, f.kind) with
         | Channel cid, Duplicate_token -> Some cid
         | _ -> None)
      faults
    |> List.sort_uniq compare
  in
  { p_faults = faults; last_data = Hashtbl.create 4; dup_channels }

let faults p = p.p_faults

let horizon p =
  List.fold_left (fun a f -> max a (f.cycle + f.duration)) 0 p.p_faults

let merge_override p cid ov f =
  match f.kind with
  | Flip_bits bits ->
    let flip = flip_value bits in
    let map_data =
      match ov.Wires.map_data with
      | None -> Some flip
      | Some g -> Some (fun v -> flip (g v))
    in
    { ov with Wires.map_data }
  | Force_valid b -> { ov with Wires.force_v_plus = Some b }
  | Force_stop b -> { ov with Wires.force_s_plus = Some b }
  | Force_kill b -> { ov with Wires.force_v_minus = Some b }
  | Duplicate_token ->
    let subst =
      match Hashtbl.find_opt p.last_data cid with
      | Some v -> v
      | None -> Value.Int 0
    in
    { ov with Wires.force_v_plus = Some true; subst_data = Some subst }
  | Mispredict _ -> ov

let injector p : Engine.injector =
 fun ~cycle cid ->
  let applicable =
    List.filter
      (fun f ->
         match f.target with
         | Channel c -> c = cid && active f ~cycle
         | Node _ -> false)
      p.p_faults
  in
  match applicable with
  | [] -> None
  | fs ->
    Some (List.fold_left (fun ov f -> merge_override p cid ov f)
            Wires.no_override fs)

let choices p ~cycle nid =
  List.find_map
    (fun f ->
       match (f.target, f.kind) with
       | Node n, Mispredict way when n = nid && active f ~cycle ->
         Some (Instance.Predict way)
       | _ -> None)
    p.p_faults

let observe p eng =
  List.iter
    (fun cid ->
       match (Engine.signal eng cid).Signal.data with
       | Some v -> Hashtbl.replace p.last_data cid v
       | None -> ())
    p.dup_channels
