open Elastic_netlist
open Elastic_sim

type outcome = { faults : Fault.t list; report : Recovery.report }

type summary = {
  total : int;
  histogram : (string * int) list;
  outcomes : outcome list;
}

let all_benign ?(max_penalty = 1) s =
  List.for_all
    (fun o ->
       match o.report.Recovery.classification with
       | Recovery.Masked -> true
       | Recovery.Corrected p -> p <= max_penalty
       | _ -> false)
    s.outcomes

let count s label =
  match List.assoc_opt label s.histogram with Some n -> n | None -> 0

let pp_summary ppf s =
  Fmt.pf ppf "@[<v>%d fault scenario%s:@,%a@]" s.total
    (if s.total = 1 then "" else "s")
    Fmt.(
      list ~sep:cut (fun ppf (label, n) ->
          pf ppf "  %-18s %d" label n))
    s.histogram

let run ?cycles ?settle ?alarms net ~scenarios =
  let outcomes =
    List.map
      (fun faults ->
         { faults;
           report = Recovery.check ?cycles ?settle ?alarms net ~faults })
      scenarios
  in
  let histogram =
    List.fold_left
      (fun acc o ->
         let l =
           Recovery.classification_label o.report.Recovery.classification
         in
         let n = match List.assoc_opt l acc with Some n -> n | None -> 0 in
         (l, n + 1) :: List.remove_assoc l acc)
      [] outcomes
    |> List.sort compare
  in
  { total = List.length outcomes; histogram; outcomes }

(* Explicit recursion: the draw order must be deterministic (List.init
   does not specify its evaluation order). *)
let generate count f =
  let rec go i acc = if i = count then List.rev acc else go (i + 1) (f i :: acc) in
  go 0 []

let draw_cycle rng ~from_cycle ~to_cycle =
  if to_cycle <= from_cycle then invalid_arg "Campaign: empty cycle window";
  from_cycle + Rng.int rng (to_cycle - from_cycle)

let bit_range net ~channel ~bit_lo ~bit_hi =
  let c = Netlist.channel net channel in
  let hi = match bit_hi with Some h -> h | None -> c.Netlist.width in
  if hi <= bit_lo then invalid_arg "Campaign: empty bit range";
  (bit_lo, hi)

let random_bitflips ~net ~channel ~seed ~count ~from_cycle ~to_cycle
    ?(bit_lo = 0) ?bit_hi () =
  let lo, hi = bit_range net ~channel ~bit_lo ~bit_hi in
  let rng = Rng.create ~seed in
  generate count (fun _ ->
      let cycle = draw_cycle rng ~from_cycle ~to_cycle in
      let bit = lo + Rng.int rng (hi - lo) in
      [ Fault.flip_bit ~channel ~cycle bit ])

let random_double_flips ~net ~channel ~seed ~count ~from_cycle ~to_cycle
    ?(bit_lo = 0) ?bit_hi () =
  let lo, hi = bit_range net ~channel ~bit_lo ~bit_hi in
  if hi - lo < 2 then invalid_arg "Campaign: bit range too narrow";
  let rng = Rng.create ~seed in
  generate count (fun _ ->
      let cycle = draw_cycle rng ~from_cycle ~to_cycle in
      let b1 = lo + Rng.int rng (hi - lo) in
      let rec distinct () =
        let b = lo + Rng.int rng (hi - lo) in
        if b = b1 then distinct () else b
      in
      let b2 = distinct () in
      [ Fault.flip_bits ~channel ~cycle [ b1; b2 ] ])

let random_storm ~net ~seed ~count ~from_cycle ~to_cycle =
  let data_chans =
    List.filter
      (fun (c : Netlist.channel) -> c.Netlist.width > 0)
      (Netlist.channels net)
    |> Array.of_list
  in
  if Array.length data_chans = 0 then
    invalid_arg "Campaign: netlist has no data channels";
  let rng = Rng.create ~seed in
  generate count (fun _ ->
      let c = data_chans.(Rng.int rng (Array.length data_chans)) in
      let cycle = draw_cycle rng ~from_cycle ~to_cycle in
      let bit = Rng.int rng (max 1 c.Netlist.width) in
      [ Fault.flip_bit ~channel:c.Netlist.ch_id ~cycle bit ])
