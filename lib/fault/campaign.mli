open Elastic_kernel
open Elastic_netlist

(** Deterministic seeded fault campaigns.

    A campaign is a list of fault scenarios (each a list of simultaneous
    or staged faults) checked independently by {!Recovery.check} against
    a fresh engine pair; the same seed always generates the same
    scenarios and hence the same report. *)

type outcome = { faults : Fault.t list; report : Recovery.report }

type summary = {
  total : int;
  histogram : (string * int) list;
      (** Classification label -> count, sorted by label. *)
  outcomes : outcome list;
}

(** All outcomes classified [Masked] or [Corrected] with penalty
    [<= max_penalty] (default 1)? *)
val all_benign : ?max_penalty:int -> summary -> bool

(** Count of outcomes with the given classification label. *)
val count : summary -> string -> int

val pp_summary : Format.formatter -> summary -> unit

val run :
  ?cycles:int ->
  ?settle:int ->
  ?alarms:(Netlist.node_id * (Value.t -> bool)) list ->
  Netlist.t ->
  scenarios:Fault.t list list ->
  summary

(** {1 Seeded scenario generators}

    All draw from {!Elastic_sim.Rng}; bit positions refer to the
    flattened payload image (see {!Fault}). *)

(** [count] single-bit flips on [channel], each at a random cycle in
    [\[from_cycle, to_cycle)] and a random bit in [\[bit_lo, bit_hi)]
    (default: the channel's declared width). *)
val random_bitflips :
  net:Netlist.t ->
  channel:Netlist.channel_id ->
  seed:int ->
  count:int ->
  from_cycle:int ->
  to_cycle:int ->
  ?bit_lo:int ->
  ?bit_hi:int ->
  unit ->
  Fault.t list list

(** Like {!random_bitflips} but two distinct bits per scenario, flipped
    on the same cycle — the SECDED double-error case. *)
val random_double_flips :
  net:Netlist.t ->
  channel:Netlist.channel_id ->
  seed:int ->
  count:int ->
  from_cycle:int ->
  to_cycle:int ->
  ?bit_lo:int ->
  ?bit_hi:int ->
  unit ->
  Fault.t list list

(** [count] single-bit flips spread over all channels of the netlist
    that carry data (width > 0), for whole-design storms. *)
val random_storm :
  net:Netlist.t ->
  seed:int ->
  count:int ->
  from_cycle:int ->
  to_cycle:int ->
  Fault.t list list
