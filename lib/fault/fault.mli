open Elastic_kernel
open Elastic_netlist
open Elastic_sim

(** Fault models for adversarial robustness testing (§5.2 and beyond).

    A fault perturbs one channel wire (or one scheduler decision) during
    a window of cycles.  Faults are pure descriptions; {!plan} compiles a
    list of them into the hooks the engine consumes: an
    {!Engine.injector} for wire-level perturbations and a [choices]
    function for forced mispredictions.  Datapath corruption operates on
    the {e flattened bit image} of the payload: scalars are concatenated
    depth-first with [Bool] = 1 bit, [Int] = 8 bits and [Word] = 64
    bits, which matches the SECDED(72,64) layout used by the resilient
    designs ([Tuple [Word data; Int check]] = bits 0..63 data, 64..71
    check). *)

type kind =
  | Flip_bits of int list
      (** XOR the given flattened payload bits of any token on the wire. *)
  | Force_valid of bool
      (** Pin V+: [false] drops in-flight tokens, [true] forges one. *)
  | Force_stop of bool  (** Pin S+ (stuck-at stall / stall removal). *)
  | Force_kill of bool  (** Pin V- (forged / suppressed anti-token). *)
  | Duplicate_token
      (** Force V+ high and replay the last payload observed on the
          channel — the classic re-execution duplicate. *)
  | Mispredict of int
      (** Force the node's speculation scheduler to the given way. *)

type target = Channel of Netlist.channel_id | Node of Netlist.node_id

type t = {
  target : target;
  kind : kind;
  cycle : int;  (** First faulty cycle. *)
  duration : int;  (** Number of consecutive faulty cycles, [>= 1]. *)
}

(** {1 Constructors} *)

val flip_bit : channel:Netlist.channel_id -> cycle:int -> int -> t

val flip_bits : channel:Netlist.channel_id -> cycle:int -> int list -> t

val drop_token : channel:Netlist.channel_id -> cycle:int -> t

val duplicate_token : channel:Netlist.channel_id -> cycle:int -> t

val stuck_stall :
  channel:Netlist.channel_id -> cycle:int -> duration:int -> t

val glitch_valid : channel:Netlist.channel_id -> cycle:int -> bool -> t

val glitch_kill : channel:Netlist.channel_id -> cycle:int -> bool -> t

(** A two-cycle control-wire glitch that provably violates the SELF
    Retry+ persistence property on the channel: force a stall (creating
    a retry state) then force V+ low on the following cycle. *)
val control_glitch : channel:Netlist.channel_id -> cycle:int -> t list

val mispredict : node:Netlist.node_id -> cycle:int -> int -> t

(** {1 Inspection} *)

(** Is the fault active on the given cycle? *)
val active : t -> cycle:int -> bool

(** Flattened payload width of a value in bits (see module header). *)
val value_width : Value.t -> int

(** [flip_value bits v] XORs the given flattened bits of [v]; bits
    beyond the value's width are ignored. *)
val flip_value : int list -> Value.t -> Value.t

(** Human-readable description with node/channel provenance. *)
val describe : Netlist.t -> t -> string

(** {1 Compilation} *)

type plan

val plan : Netlist.t -> t list -> plan

val faults : plan -> t list

(** Wire-level injector to install with {!Engine.set_injector}. *)
val injector : plan -> Engine.injector

(** Forced-misprediction choices for {!Engine.step}'s [~choices]. *)
val choices :
  plan -> cycle:int -> Netlist.node_id -> Instance.choice option

(** Call after every {!Engine.step} on the faulted engine: tracks the
    last payload seen per channel so [Duplicate_token] can replay it. *)
val observe : plan -> Engine.t -> unit

(** First cycle by which every fault window has closed. *)
val horizon : plan -> int
