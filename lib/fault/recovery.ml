open Elastic_kernel
open Elastic_netlist
open Elastic_sim

type classification =
  | Masked
  | Corrected of int
  | Detected of string
  | Silent_corruption of string
  | Deadlock of string
  | Crashed of string

type report = {
  classification : classification;
  fault_desc : string list;
  ref_transfers : int;
  faulted_transfers : int;
  fresh_violations : (string * Protocol.violation) list;
}

let classification_label = function
  | Masked -> "masked"
  | Corrected _ -> "corrected"
  | Detected _ -> "detected"
  | Silent_corruption _ -> "silent-corruption"
  | Deadlock _ -> "deadlock"
  | Crashed _ -> "crashed"

let pp_classification ppf = function
  | Masked -> Fmt.pf ppf "masked"
  | Corrected p -> Fmt.pf ppf "corrected (penalty %d cycle%s)" p
                     (if p = 1 then "" else "s")
  | Detected why -> Fmt.pf ppf "detected: %s" why
  | Silent_corruption why -> Fmt.pf ppf "SILENT CORRUPTION: %s" why
  | Deadlock why -> Fmt.pf ppf "deadlock: %s" why
  | Crashed why -> Fmt.pf ppf "crashed: %s" why

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%a@,faults:@,%a@,transfers: %d reference, %d faulted"
    pp_classification r.classification
    Fmt.(list ~sep:cut (fmt "  %s"))
    r.fault_desc r.ref_transfers r.faulted_transfers;
  if r.fresh_violations <> [] then
    Fmt.pf ppf "@,monitor violations:@,%a"
      Fmt.(
        list ~sep:cut (fun ppf (name, v) ->
            pf ppf "  channel %s: %a" name Protocol.pp_violation v))
      r.fresh_violations;
  Fmt.pf ppf "@]"

(* Violations introduced by the fault: present in the faulted run but not
   (same channel, same property) in the reference run.  Designs are
   normally monitor-clean, but this keeps the checker usable on ones with
   pre-existing noise. *)
let fresh_violations ~ref_viols ~flt_viols =
  let key (name, (v : Protocol.violation)) = (name, v.Protocol.property) in
  List.filter
    (fun fv -> not (List.exists (fun rv -> key rv = key fv) ref_viols))
    flt_viols

let check ?(cycles = 300) ?(settle = 60) ?(alarms = []) ?mode ?observer net
    ~faults =
  let plan = Fault.plan net faults in
  let refe = Engine.create ~monitor:true ?mode net in
  let flt = Engine.create ~monitor:true ?mode net in
  Engine.set_injector flt (Some (Fault.injector plan));
  (match observer with
   | None -> ()
   | Some attach -> attach flt);
  let crash = ref None in
  let step_faulted () =
    if !crash = None then
      try
        Engine.step
          ~choices:(fun nid ->
              Fault.choices plan ~cycle:(Engine.cycle flt) nid)
          flt;
        Fault.observe plan flt
      with
      | Engine.Simulation_error e ->
        crash := Some (Engine.error_to_string e)
      | e -> crash := Some (Printexc.to_string e)
  in
  for _ = 1 to cycles do
    Engine.step refe;
    step_faulted ()
  done;
  (* Let the faulted engine drain: a replayed token arrives late, so give
     it a settle window before declaring transfers lost. *)
  for _ = 1 to settle do
    step_faulted ()
  done;
  let alarm_ids = List.map fst alarms in
  let sinks =
    List.filter
      (fun (n : Netlist.node) ->
         match n.Netlist.kind with
         | Netlist.Sink _ -> true
         | _ -> false)
      (Netlist.nodes net)
  in
  let data_sinks =
    List.filter
      (fun (n : Netlist.node) -> not (List.mem n.Netlist.id alarm_ids))
      sinks
  in
  let stream_len eng nid = Transfer.length (Engine.sink_stream eng nid) in
  let ref_transfers =
    List.fold_left
      (fun a (n : Netlist.node) -> a + stream_len refe n.Netlist.id)
      0 data_sinks
  in
  let faulted_transfers =
    List.fold_left
      (fun a (n : Netlist.node) -> a + stream_len flt n.Netlist.id)
      0 data_sinks
  in
  let fresh =
    fresh_violations ~ref_viols:(Engine.violations refe)
      ~flt_viols:(Engine.violations flt)
  in
  let fresh_starvation =
    List.filter
      (fun s -> not (List.mem s (Engine.starvation_violations refe)))
      (Engine.starvation_violations flt)
  in
  let alarm_trips eng =
    List.fold_left
      (fun acc (nid, pred) ->
         let entries = Transfer.entries (Engine.sink_stream eng nid) in
         acc
         + List.length
             (List.filter (fun e -> pred e.Transfer.value) entries))
      0 alarms
  in
  let monitor_detection () =
    match fresh with
    | (name, v) :: _ ->
      let endpoints =
        List.find_opt
          (fun (c : Netlist.channel) -> c.Netlist.ch_name = name)
          (Netlist.channels net)
      in
      let prov =
        match endpoints with
        | Some c ->
          Fmt.str " (channel id %d, node %d -> node %d)" c.Netlist.ch_id
            c.Netlist.src.Netlist.ep_node c.Netlist.dst.Netlist.ep_node
        | None -> ""
      in
      Some
        (Fmt.str "protocol monitor on channel %s%s: %s at cycle %d" name
           prov v.Protocol.property v.Protocol.cycle)
    | [] ->
      (match fresh_starvation with
       | s :: _ -> Some (Fmt.str "starvation watchdog: %s" s)
       | [] ->
         let ref_trips = alarm_trips refe and flt_trips = alarm_trips flt in
         if flt_trips > ref_trips then
           Some
             (Fmt.str "alarm sink tripped %d time%s" (flt_trips - ref_trips)
                (if flt_trips - ref_trips = 1 then "" else "s"))
         else None)
  in
  let compare_sink (n : Netlist.node) =
    let re = Transfer.entries (Engine.sink_stream refe n.Netlist.id) in
    let fe = Transfer.entries (Engine.sink_stream flt n.Netlist.id) in
    let rec go i lag rs fs =
      match (rs, fs) with
      | [], [] -> `Lag lag
      (* Example workloads are finite streams, so once the reference has
         drained, anything extra the faulted run delivered is a spurious
         (duplicated or forged) token. *)
      | [], (_ :: _ as extra) ->
        let k = List.length extra in
        `Mismatch
          (Fmt.str "sink %s: %d spurious extra transfer%s" n.Netlist.name k
             (if k = 1 then "" else "s"))
      | _ :: _, [] -> `Short (List.length rs)
      | r :: rs', f :: fs' ->
        if not (Value.equal r.Transfer.value f.Transfer.value) then
          `Mismatch
            (Fmt.str "sink %s transfer %d: expected %s, got %s"
               n.Netlist.name i
               (Value.to_string r.Transfer.value)
               (Value.to_string f.Transfer.value))
        else go (i + 1) (max lag (f.Transfer.cycle - r.Transfer.cycle)) rs'
               fs'
    in
    go 0 0 re fe
  in
  let classification =
    match !crash with
    | Some why -> Crashed why
    | None ->
      (match monitor_detection () with
       | Some why -> Detected why
       | None ->
         let results = List.map compare_sink data_sinks in
         let mismatch =
           List.find_map
             (function `Mismatch m -> Some m | _ -> None)
             results
         in
         (match mismatch with
          | Some m -> Silent_corruption m
          | None ->
            let short =
              List.find_map
                (function `Short k -> Some k | _ -> None)
                results
            in
            (match short with
             | Some k ->
               Deadlock
                 (Fmt.str
                    "%d transfer%s still missing %d cycles after the \
                     fault window"
                    k
                    (if k = 1 then "" else "s")
                    settle)
             | None ->
               let lag =
                 List.fold_left
                   (fun a -> function `Lag l -> max a l | _ -> a)
                   0 results
               in
               if lag = 0 then Masked else Corrected lag)))
  in
  { classification;
    fault_desc = List.map (Fault.describe net) faults;
    ref_transfers;
    faulted_transfers;
    fresh_violations = fresh }
