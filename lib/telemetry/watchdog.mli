(** Campaign heartbeat watchdog.

    Self-detection of stalled progress in bounded time, in the spirit
    of the self-stabilizing speculation line (Dubois & Guerraoui): a
    {e running} shard whose last heartbeat is older than the deadline
    is stalled — a hung worker, a deadlocked engine, a killed domain —
    and the system should say so itself rather than wait for the
    campaign to (never) finish.

    The watchdog is pure polling state over an
    {!Elastic_runner.Progress} plane: {!check} performs one pass —
    exactly one reading of the {e progress plane's} clock, compared
    against each running shard's last heartbeat — flips {!healthy} and
    moves the [elastic_watchdog_stalls_total] counter once per
    transition into the stalled state (an episode, not a poll).  A
    shard that beats again, completes or fails clears its flag, so
    health recovers without restart.  The telemetry server calls
    {!check} from its poll loop and on every [/healthz] and [/status]
    request; tests drive it deterministically with [Clock.ticker]. *)

type t

(** @param deadline_s heartbeat budget in seconds (default [5.0]).
    @param registry where [elastic_watchdog_stalls_total] registers.
    @raise Invalid_argument on a non-positive deadline. *)
val create :
  ?deadline_s:float ->
  registry:Elastic_metrics.Metrics.t ->
  Elastic_runner.Progress.t ->
  t

val deadline_s : t -> float

(** One pass over all shards; updates {!healthy} and the counter. *)
val check : t -> unit

(** Verdict of the most recent {!check} ([true] before the first). *)
val healthy : t -> bool

(** Stall episodes so far (the counter's value). *)
val stalls : t -> int
