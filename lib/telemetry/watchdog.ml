module Progress = Elastic_runner.Progress
module Metrics = Elastic_metrics.Metrics
module Clock = Elastic_sim.Clock

type t = {
  wd_progress : Progress.t;
  wd_deadline_ns : int64;
  wd_flagged : bool array;
  wd_counter : Metrics.Counter.t;
  mutable wd_healthy : bool;
}

let create ?(deadline_s = 5.0) ~registry progress =
  if deadline_s <= 0.0 then
    invalid_arg "Watchdog.create: deadline_s must be > 0";
  { wd_progress = progress;
    wd_deadline_ns = Int64.of_float (deadline_s *. 1e9);
    wd_flagged = Array.make (Progress.shards progress) false;
    wd_counter =
      Metrics.counter registry
        ~help:"running shards that missed their heartbeat deadline"
        "elastic_watchdog_stalls_total";
    wd_healthy = true }

let deadline_s t = Int64.to_float t.wd_deadline_ns *. 1e-9

let check t =
  (* One clock read per pass, on the progress plane's clock — under
     [Clock.ticker] every call advances deterministic time by one
     step, which is what the stall/recover tests and scrape_check
     lean on. *)
  let now = Progress.clock t.wd_progress () in
  let healthy = ref true in
  for i = 0 to Progress.shards t.wd_progress - 1 do
    let stalled =
      match Progress.state t.wd_progress i with
      | Progress.Running ->
        let beat = Progress.last_beat_ns t.wd_progress i in
        Int64.compare (Int64.sub now beat) t.wd_deadline_ns > 0
      | Progress.Pending | Progress.Completed | Progress.Failed -> false
    in
    if stalled then begin
      (* Count stall *episodes*, not passes: the counter moves once
         per transition into the stalled state. *)
      if not t.wd_flagged.(i) then begin
        t.wd_flagged.(i) <- true;
        Metrics.Counter.inc t.wd_counter
      end;
      healthy := false
    end
    else t.wd_flagged.(i) <- false
  done;
  t.wd_healthy <- !healthy

let healthy t = t.wd_healthy

let stalls t = Metrics.Counter.value t.wd_counter
