(** Minimal HTTP/1.1 request parsing and response rendering.

    Dependency-free (no cohttp in the container) and deliberately tiny:
    the telemetry server only ever answers [GET] with
    [Connection: close], so all it needs from HTTP is a total,
    crash-free parse of an accumulating receive buffer — torn reads
    come back {!Incomplete}, junk comes back {!Malformed} the moment
    the request line is in hand (no need to wait for the rest), and a
    header block that never ends hits {!Too_long} at
    {!max_head_bytes}.  The parser is pure and fuzzed (qcheck): no
    input raises. *)

type request = {
  meth : string;  (** e.g. ["GET"] — token-validated, case preserved *)
  target : string;  (** e.g. ["/metrics"] — always starts with ['/'] *)
}

type error =
  | Incomplete  (** keep reading: no terminator yet *)
  | Too_long  (** header block exceeds {!max_head_bytes}: answer 413 *)
  | Malformed of string  (** protocol garbage: answer 400 *)

(** Cap on the request head (request line + headers): 8192 bytes. *)
val max_head_bytes : int

(** [parse buf] over the bytes received so far.  [Ok] only once the
    blank line ending the header block has arrived (headers themselves
    are ignored); bare-LF line endings are tolerated. *)
val parse : string -> (request, error) result

(** [response ~status ~content_type body] renders a complete
    [Connection: close] response with [Content-Length]. *)
val response : ?status:int -> ?content_type:string -> string -> string

val status_reason : int -> string
