type request = {
  meth : string;
  target : string;
}

type error =
  | Incomplete
  | Too_long
  | Malformed of string

let max_head_bytes = 8192

(* Index just past the first line terminator ("\r\n" or bare "\n"), or
   None.  Scanning for '\n' covers both forms. *)
let line_end buf =
  String.index_opt buf '\n'

let head_complete buf =
  (* End of the header block: an empty line.  Tolerate bare-LF clients
     (netcat, hand-typed requests) alongside strict CRLF. *)
  let n = String.length buf in
  let rec scan i =
    if i + 1 >= n then false
    else if buf.[i] = '\n' && buf.[i + 1] = '\n' then true
    else if
      i + 3 < n
      && buf.[i] = '\r' && buf.[i + 1] = '\n'
      && buf.[i + 2] = '\r' && buf.[i + 3] = '\n'
    then true
    else scan (i + 1)
  in
  (* A request whose very first line is empty is malformed, caught by
     the request-line parse below; completeness only needs the blank
     separator line to exist somewhere. *)
  scan 0

let is_token_char c =
  (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || c = '-'

let validate_request_line line =
  (* "<METHOD> <target> HTTP/1.x", single spaces, no control bytes. *)
  let line =
    (* Strip the \r of a CRLF terminator. *)
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  if String.exists (fun c -> Char.code c < 0x20 || Char.code c = 0x7f) line
  then Error (Malformed "control byte in request line")
  else
    match String.split_on_char ' ' line with
    | [ meth; target; version ] ->
      if meth = "" || not (String.for_all is_token_char meth) then
        Error (Malformed "bad method token")
      else if String.length target = 0 || target.[0] <> '/' then
        Error (Malformed "request target must start with '/'")
      else if
        not
          (String.length version >= 7
           && String.equal (String.sub version 0 7) "HTTP/1.")
      then Error (Malformed "unsupported protocol version")
      else Ok { meth; target }
    | _ -> Error (Malformed "request line is not <method> <target> <version>")

let parse buf =
  match line_end buf with
  | None ->
    if String.length buf > max_head_bytes then Error Too_long
    else Error Incomplete
  | Some eol -> (
      (* The request line is in hand: reject garbage immediately (the
         server answers 400 without waiting for more bytes), otherwise
         wait for the blank line ending the header block. *)
      match validate_request_line (String.sub buf 0 eol) with
      | Error _ as e -> e
      | Ok req ->
        if head_complete buf then Ok req
        else if String.length buf > max_head_bytes then Error Too_long
        else Error Incomplete)

let status_reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 413 -> "Content Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let response ?(status = 200) ?(content_type = "text/plain; charset=utf-8")
    body =
  Fmt.str
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
     Connection: close\r\n\r\n%s"
    status (status_reason status) content_type (String.length body) body
