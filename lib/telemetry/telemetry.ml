module Metrics = Elastic_metrics.Metrics
module Prometheus = Elastic_metrics.Prometheus
module Json = Elastic_metrics.Json
module Clock = Elastic_sim.Clock
module Progress = Elastic_runner.Progress
module Status = Elastic_runner.Status
module Collector = Elastic_obs.Collector
module Export = Elastic_obs.Export

let version = "1.0"

let default_eval_mode () =
  Elastic_sim.Engine.mode_name
    (Elastic_sim.Engine.mode
       (Elastic_sim.Engine.create Elastic_netlist.Netlist.empty))

let build_info ?(version = version) reg =
  (* Standard Prometheus practice: a constant-1 gauge whose labels
     identify the binary behind the scrape. *)
  Metrics.Gauge.set
    (Metrics.gauge reg
       ~help:"constant 1; labels identify the serving binary"
       ~labels:
         [ ("version", version);
           ("pool",
            if Elastic_runner.Pool_backend.parallel then "domains"
            else "seq");
           ("eval_mode", default_eval_mode ()) ]
       "elastic_build_info")
    1.0

(* ------------------------------------------------------------------ *)
(* The hub: swappable telemetry sources behind one handler.            *)

type server = {
  sv_sock : Unix.file_descr;
  sv_port : int;
  mutable sv_thread : Thread.t option;
}

type t = {
  t_registry : Metrics.t;
  t_clock : Clock.t;
  t_started_ns : int64;
  t_deadline_s : float;
  t_lock : Mutex.t;
  mutable t_progress : Progress.t option;
  mutable t_watchdog : Watchdog.t option;
  mutable t_collector : Collector.t option;
  mutable t_server : server option;
  mutable t_stop : bool;
}

let endpoints = [ "/"; "/metrics"; "/status"; "/spans.jsonl"; "/healthz" ]

let create ?(clock = Clock.monotonic) ?(deadline_s = 5.0)
    ?(registry = Metrics.create ()) () =
  if deadline_s <= 0.0 then
    invalid_arg "Telemetry.create: deadline_s must be > 0";
  build_info registry;
  { t_registry = registry;
    t_clock = clock;
    t_started_ns = clock ();
    t_deadline_s = deadline_s;
    t_lock = Mutex.create ();
    t_progress = None;
    t_watchdog = None;
    t_collector = None;
    t_server = None;
    t_stop = false }

let locked t f =
  Mutex.lock t.t_lock;
  match f () with
  | v ->
    Mutex.unlock t.t_lock;
    v
  | exception e ->
    Mutex.unlock t.t_lock;
    raise e

let registry t = t.t_registry

let set_progress t p =
  locked t (fun () ->
      t.t_progress <- p;
      t.t_watchdog <-
        (match p with
         | Some p ->
           Some
             (Watchdog.create ~deadline_s:t.t_deadline_s
                ~registry:t.t_registry p)
         | None -> None))

let set_collector t c = locked t (fun () -> t.t_collector <- c)

let watchdog t = locked t (fun () -> t.t_watchdog)

(* ------------------------------------------------------------------ *)
(* Request handling (pure of sockets: also driven directly by tests).  *)

let count_request t target =
  let path = if List.mem target endpoints then target else "other" in
  Metrics.Counter.inc
    (Metrics.counter t.t_registry
       ~help:"telemetry requests served, by endpoint"
       ~labels:[ ("path", path) ]
       "elastic_telemetry_requests_total")

let wd_check t =
  match t.t_watchdog with None -> () | Some w -> Watchdog.check w

let health t =
  match t.t_watchdog with
  | None -> (true, 0)
  | Some w -> (Watchdog.healthy w, Watchdog.stalls w)

let index_body =
  "elastic-speculation live telemetry\n\
   endpoints:\n\
  \  /metrics     Prometheus text exposition (merged live snapshot)\n\
  \  /status      campaign status JSON (elastic-speculation/status/v1)\n\
  \  /spans.jsonl span ledger JSONL (elastic-speculation/spans/v1)\n\
  \  /healthz     200 while every running shard beats, 503 on a stall\n"

let metrics_body t =
  Metrics.Gauge.set
    (Metrics.gauge t.t_registry
       ~help:"seconds since the telemetry hub was created"
       "elastic_telemetry_uptime_seconds")
    (Clock.seconds_between t.t_started_ns (t.t_clock ()));
  let merged =
    match t.t_progress with
    | Some p -> Metrics.merge (Progress.merged p) (Metrics.snapshot t.t_registry)
    | None -> Metrics.snapshot t.t_registry
  in
  Prometheus.render merged

let status_body t =
  let healthy, stalls = health t in
  let utilization =
    match (t.t_progress, t.t_collector) with
    | Some p, Some c ->
      Collector.utilization c ~wall_seconds:(Progress.elapsed_seconds p)
    | _ -> []
  in
  Json.to_string (Status.of_progress ~healthy ~stalls ~utilization t.t_progress)
  ^ "\n"

let spans_body t =
  let campaign =
    match t.t_progress with Some p -> Some (Progress.name p) | None -> None
  in
  let spans =
    match t.t_collector with Some c -> Collector.spans c | None -> []
  in
  Export.jsonl ?campaign spans

(* [(status, content-type, body)] for one request target. *)
let handle t ~meth ~target =
  locked t (fun () ->
      (* Strip any query string: /status?x=y addresses /status. *)
      let target =
        match String.index_opt target '?' with
        | Some q -> String.sub target 0 q
        | None -> target
      in
      count_request t target;
      if not (String.equal meth "GET") then
        (405, "text/plain; charset=utf-8",
         Fmt.str "method %s not allowed (GET only)\n" meth)
      else
        match target with
        | "/" -> (200, "text/plain; charset=utf-8", index_body)
        | "/metrics" ->
          wd_check t;
          (200, "text/plain; version=0.0.4; charset=utf-8", metrics_body t)
        | "/status" ->
          wd_check t;
          (200, "application/json; charset=utf-8", status_body t)
        | "/spans.jsonl" ->
          (200, "application/x-ndjson; charset=utf-8", spans_body t)
        | "/healthz" ->
          wd_check t;
          let healthy, stalls = health t in
          if healthy then (200, "text/plain; charset=utf-8", "ok\n")
          else
            (503, "text/plain; charset=utf-8",
             Fmt.str "stalled: %d heartbeat deadline miss(es)\n" stalls)
        | _ ->
          (404, "text/plain; charset=utf-8",
           Fmt.str "no such endpoint %s (try /)\n" target))

(* ------------------------------------------------------------------ *)
(* The socket server: one accept thread, connections handled inline.   *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let k = Unix.write fd b off (n - off) in
      if k > 0 then go (off + k)
  in
  go 0

let serve_connection t fd =
  (* A stuck or byte-at-a-time client must not wedge the scrape plane:
     bound every read. *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let respond status content_type body =
    write_all fd (Http.response ~status ~content_type body)
  in
  let rec read_loop () =
    match Http.parse (Buffer.contents buf) with
    | Ok req ->
      let status, content_type, body =
        handle t ~meth:req.Http.meth ~target:req.Http.target
      in
      respond status content_type body
    | Error (Http.Malformed m) -> respond 400 "text/plain" (m ^ "\n")
    | Error Http.Too_long ->
      respond 413 "text/plain" "request head too large\n"
    | Error Http.Incomplete ->
      let k = Unix.read fd chunk 0 (Bytes.length chunk) in
      if k > 0 then begin
        Buffer.add_subbytes buf chunk 0 k;
        read_loop ()
      end
      (* k = 0: client closed before completing the request — drop. *)
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> try read_loop () with Unix.Unix_error _ -> ())

let accept_loop t sv =
  while not t.t_stop do
    (* The watchdog must notice a stall even when nobody scrapes. *)
    (try locked t (fun () -> wd_check t) with _ -> ());
    match Unix.select [ sv.sv_sock ] [] [] 0.05 with
    | [ _ ], _, _ -> (
        match Unix.accept sv.sv_sock with
        | fd, _ -> (try serve_connection t fd with _ -> ())
        | exception Unix.Unix_error _ -> ())
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  done

let start ?(host = "127.0.0.1") ~port t =
  locked t (fun () ->
      match t.t_server with
      | Some sv -> Error (Fmt.str "already serving on port %d" sv.sv_port)
      | None -> (
          match
            let addr =
              try Unix.inet_addr_of_string host
              with Failure _ -> raise (Invalid_argument host)
            in
            let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            (try
               Unix.setsockopt sock Unix.SO_REUSEADDR true;
               Unix.bind sock (Unix.ADDR_INET (addr, port));
               Unix.listen sock 16
             with e ->
               (try Unix.close sock with Unix.Unix_error _ -> ());
               raise e);
            let bound_port =
              match Unix.getsockname sock with
              | Unix.ADDR_INET (_, p) -> p
              | Unix.ADDR_UNIX _ -> port
            in
            (sock, bound_port)
          with
          | sock, bound_port ->
            let sv = { sv_sock = sock; sv_port = bound_port;
                       sv_thread = None } in
            t.t_stop <- false;
            t.t_server <- Some sv;
            sv.sv_thread <- Some (Thread.create (accept_loop t) sv);
            Ok bound_port
          | exception Unix.Unix_error (e, _, _) ->
            Error
              (Fmt.str "cannot bind %s:%d: %s" host port
                 (Unix.error_message e))
          | exception Invalid_argument h ->
            Error (Fmt.str "bad listen address %S" h)))

let port t =
  locked t (fun () ->
      match t.t_server with Some sv -> Some sv.sv_port | None -> None)

let stop t =
  let sv =
    locked t (fun () ->
        let sv = t.t_server in
        t.t_server <- None;
        t.t_stop <- true;
        sv)
  in
  match sv with
  | None -> ()
  | Some sv ->
    (* Graceful: the accept thread notices the flag within one select
       timeout, finishes any in-flight response first, and only then
       does the listening socket close. *)
    (match sv.sv_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close sv.sv_sock with Unix.Unix_error _ -> ())
