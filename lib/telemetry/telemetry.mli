(** Live telemetry hub and HTTP server.

    One {!t} owns the scrape surface of a process: a metrics registry
    (seeded with [elastic_build_info]), an optional live
    {!Elastic_runner.Progress} plane with its heartbeat {!Watchdog},
    and an optional {!Elastic_obs.Collector} span source.  {!handle}
    answers a request target with [(status, content-type, body)] — it
    is independent of sockets, so tests and the shell can drive it
    directly — and {!start} puts a real HTTP/1.1 listener in front of
    it on a background thread (stdlib [Unix] + [Thread] only; binds
    localhost by default; [Connection: close] per request).

    Endpoints:
    - [/metrics] — Prometheus text exposition of the registry merged
      with the campaign's incremental snapshot ({!Progress.merged});
    - [/status] — campaign status JSON,
      schema [elastic-speculation/status/v1];
    - [/spans.jsonl] — span ledger JSONL,
      schema [elastic-speculation/spans/v1];
    - [/healthz] — [200 ok] while every running shard beats within the
      watchdog deadline, [503] otherwise (recovers when beats resume).

    Sources are swappable mid-flight ({!set_progress},
    {!set_collector}): a long-lived [serve] session in the shell keeps
    one hub across successive campaigns. *)

type t

(** Version string stamped into [elastic_build_info]. *)
val version : string

(** [build_info registry] registers and sets the constant-1
    [elastic_build_info] gauge with [version], [pool]
    ([domains]/[seq]) and [eval_mode] labels.  Idempotent. *)
val build_info : ?version:string -> Elastic_metrics.Metrics.t -> unit

(** [create ()] — a hub with no progress plane and no collector.
    @param clock used for the uptime gauge (default
      [Clock.monotonic]); the watchdog runs on the {e progress
      plane's} clock.
    @param deadline_s heartbeat budget handed to watchdogs armed by
      {!set_progress} (default [5.0]).
    @param registry scrape registry (default: fresh).  Seeded with
      [elastic_build_info] either way.
    @raise Invalid_argument on a non-positive deadline. *)
val create :
  ?clock:Elastic_sim.Clock.t ->
  ?deadline_s:float ->
  ?registry:Elastic_metrics.Metrics.t ->
  unit ->
  t

val registry : t -> Elastic_metrics.Metrics.t

(** Attach (or detach, with [None]) the live progress plane.  Arms a
    fresh watchdog over it with the hub's deadline. *)
val set_progress : t -> Elastic_runner.Progress.t option -> unit

val set_collector : t -> Elastic_obs.Collector.t option -> unit

(** The watchdog armed by the last {!set_progress}, if any. *)
val watchdog : t -> Watchdog.t option

(** [handle t ~meth ~target] answers one request:
    [(status code, content type, body)].  Non-[GET] methods get 405,
    unknown targets 404; query strings are ignored.  Thread-safe. *)
val handle : t -> meth:string -> target:string -> int * string * string

(** [start ~port t] binds [host:port] (default host [127.0.0.1];
    [port = 0] picks an ephemeral port) and serves on a background
    thread.  Returns the bound port, or [Error] if already serving or
    the bind fails. *)
val start : ?host:string -> port:int -> t -> (int, string) result

(** Bound port while serving. *)
val port : t -> int option

(** Graceful shutdown: idempotent; joins the server thread (in-flight
    response finishes first), then closes the listener. *)
val stop : t -> unit
