open Elastic_netlist

(** Static flow-equivalence proofs (ROADMAP item 5, after "Formal
    Verification of Flow Equivalence in Desynchronized Designs").

    Two modes, neither of which runs a single engine cycle:

    {b Certificate checking} ({!verify}).  A {!Cert.t} produced by the
    transformations is an alleged derivation [source -> derived] by
    flow-preserving rewrites.  The verifier re-validates every step's
    side conditions {e purely structurally} on the channel graph
    (buffer occupancy, block arities, connectivity — the machinery of
    {!Elastic_lint.Rules} and {!Elastic_perf.Marked_graph}), replays the
    rewrite with raw netlist operations — an implementation independent
    of [Elastic_core.Transform], which cannot even be called from here —
    and checks the replay reproduces the recorded result.  After each
    step it also re-checks the structural liveness invariants (E101
    buffer capacity, E102 combinational cycles, E103 token-free cycles,
    W104 anti-token paths through full-capacity Eb buffers): a rewrite
    that introduces one of those voids its lemma.  If every
    step checks out and the final replica is structurally identical to
    [derived], the composition of the per-step lemmas proves
    [derived ≡ source] (transfer equivalence, §3.1).

    {b Direct structural comparison} ({!equiv_static}).  When no
    certificate is available, both netlists are normalized by the
    confluent empty-buffer rewriting system — splicing out every
    token-free buffer, which by the bubble lemma (read backwards)
    preserves flows — and the canonical forms are compared.  This
    decides equivalence for designs differing by buffer/FIFO insertion
    only; richer rewrites (Shannon, sharing) need a certificate.

    Rejections are typed diagnostics with dedicated E4xx codes naming
    the first failing step and node:
    - [E401] certificate-chain mismatch: the chain does not start at the
      claimed source, or a step's recorded [before] is not the previous
      step's result;
    - [E402] a step's side condition fails on the replica;
    - [E403] replaying a step does not reproduce its recorded result, or
      the final replica differs from the claimed derived netlist;
    - [E404] canonical forms differ in direct structural mode;
    - [E405] a step breaks a structural liveness invariant
      (E101/E102/E103/W104), voiding its lemma. *)

(** What a successful check proves, plus cheap static context: the
    marked-graph throughput bounds of the two systems ([None] when
    undefined, e.g. refuted by an E102 zero-latency cycle). *)
type proof = {
  p_design : string;
  p_mode : [ `Certificate | `Structural ];
  p_steps : int;
      (** Certificate steps checked, or buffers spliced out during
          normalization. *)
  p_lemmas : string list;  (** One lemma name per step, in order. *)
  p_source_nodes : int;
  p_source_channels : int;
  p_derived_nodes : int;
  p_derived_channels : int;
  p_throughput_source : float option;
  p_throughput_derived : float option;
}

val pp_proof : Format.formatter -> proof -> unit

(** Structural identity: same node ids, names and kinds, same channels
    (endpoints, ports, widths).  Function blocks compare by signature
    (name, arity, delay, area) — the evaluation closure is not
    comparable.  This is the relation the replayer must reproduce. *)
val structural_equal : Netlist.t -> Netlist.t -> bool

(** [verify ~source ~derived cert] checks the certificate derivation as
    described above.  Zero engine cycles are run.  An empty certificate
    proves equivalence only when [source] and [derived] are structurally
    identical. *)
val verify :
  ?design:string -> source:Netlist.t -> derived:Netlist.t -> Cert.t ->
  (proof, Diagnostic.t) result

(** [equiv_static a b] — direct structural mode: normalize by the
    confluent empty-buffer rewriting and compare canonical forms.
    Nodes are matched by name, so it decides designs that differ by
    inserted (empty) buffers, not renamings. *)
val equiv_static :
  ?design:string -> Netlist.t -> Netlist.t -> (proof, Diagnostic.t) result

(** The normalized form used by {!equiv_static}: every token-free
    buffer with both endpoints connected spliced out. *)
val normalize : Netlist.t -> Netlist.t

(** JSONL report, schema [elastic-speculation/proof/v1]: a header line
    with the verdict (["proved"] / ["refuted"] plus the refuting
    diagnostic), then one line per certificate step with its lemma,
    parameters, recorded side conditions and node deltas.  See
    EXPERIMENTS.md for the schema and the rule-to-lemma table. *)
val jsonl :
  design:string -> ?cert:Cert.t -> (proof, Diagnostic.t) result -> string
