open Elastic_kernel
open Elastic_sched
open Elastic_netlist
open Elastic_sim

type config = { max_states : int; max_choice_combinations : int }

let default_config = { max_states = 20_000; max_choice_combinations = 64 }

type outcome = {
  explored : int;
  transitions : int;
  complete : bool;
  protocol_violations : string list;
  deadlock_states : string list;
  starving_channels : string list;
  counterexample : string list;
  static_hints : string list;
}

let pp_outcome ppf o =
  Fmt.pf ppf
    "@[<v>states %d, transitions %d%s@,protocol violations: %d@,deadlocks: \
     %d@,starving channels: %d%a@]"
    o.explored o.transitions
    (if o.complete then "" else " (incomplete)")
    (List.length o.protocol_violations)
    (List.length o.deadlock_states)
    (List.length o.starving_channels)
    Fmt.(list ~sep:nop (fmt "@,static hint: %s"))
    o.static_hints

let clean o =
  o.complete && o.protocol_violations = [] && o.deadlock_states = []
  && o.starving_channels = []

(* Per-step nondeterministic alternatives of one node. *)
let node_choices (n : Netlist.node) =
  match n.Netlist.kind with
  | Netlist.Source (Netlist.Random_rate _ | Netlist.Nondet _) ->
    [ Instance.Offer true; Instance.Offer false ]
  | Netlist.Sink (Netlist.Random_stall _) ->
    [ Instance.Stall false; Instance.Stall true ]
  | Netlist.Shared { ways; sched = Scheduler.External; _ } ->
    List.init ways (fun i -> Instance.Predict i)
  | Netlist.Source _ | Netlist.Sink _ | Netlist.Buffer _ | Netlist.Func _
  | Netlist.Fork _ | Netlist.Mux _ | Netlist.Shared _ | Netlist.Varlat _ ->
    []

let cartesian lists =
  List.fold_right
    (fun options acc ->
       List.concat_map (fun o -> List.map (fun rest -> o :: rest) acc) options)
    lists [ [] ]

(* Small growable bitset over channel indices. *)
module Bits = struct
  type t = int array

  let create n = Array.make ((n / 62) + 1) 0

  let set t i = t.(i / 62) <- t.(i / 62) lor (1 lsl (i mod 62))

  let mem t i = t.(i / 62) land (1 lsl (i mod 62)) <> 0

  let any t = Array.exists (fun w -> w <> 0) t
end

type state_info = {
  id : int;
  snap : Engine.snap;
  key : string;
  mutable parent : (state_info * Signal.t array) option;
      (** How this state was first reached (for counterexamples). *)
  mutable in_sigs : Signal.t array list;
  mutable out_sigs : Signal.t array list;
  mutable succs : (int * Bits.t * Bits.t) list;
      (** destination, per-channel progress, per-channel pending. *)
}

let explore ?(config = default_config) ?mode net =
  let eng = Engine.create ~monitor:false ?mode net in
  (* Static context for the dynamic verdict: when exploration finds a
     deadlock or violation, a lint error/warning usually names the
     structural cause.  Infos are omitted — they are opportunities, not
     problems. *)
  let static_hints =
    let report = Elastic_lint.Lint.run net in
    List.map Diagnostic.to_string
      (Elastic_lint.Lint.errors report @ Elastic_lint.Lint.warnings report)
  in
  let chans = Array.of_list (Netlist.channels net) in
  let nchan = Array.length chans in
  (* Shared-module outputs are exempt from forward persistence (§4.2). *)
  let persistent =
    Array.map
      (fun (c : Netlist.channel) ->
         match (Netlist.node net c.Netlist.src.ep_node).Netlist.kind with
         | Netlist.Shared _ -> false
         | Netlist.Source _ | Netlist.Sink _ | Netlist.Buffer _
         | Netlist.Func _ | Netlist.Fork _ | Netlist.Mux _
         | Netlist.Varlat _ -> true)
      chans
  in
  let nondet = Engine.nondet_nodes eng in
  let combos =
    cartesian
      (List.map
         (fun (n : Netlist.node) ->
            List.map (fun c -> (n.Netlist.id, c)) (node_choices n))
         nondet)
  in
  if List.length combos > config.max_choice_combinations then
    invalid_arg
      (Fmt.str "Explore: %d choice combinations exceed the cap of %d"
         (List.length combos) config.max_choice_combinations);
  let states : (string, state_info) Hashtbl.t = Hashtbl.create 1024 in
  let rev_states : state_info list ref = ref [] in
  let violations = ref [] in
  let transitions = ref 0 in
  let complete = ref true in
  let report msg = violations := msg :: !violations in
  (* Retry persistence between one incoming and one outgoing transition of
     the same state. *)
  let check_retry_pair (inc : Signal.t array) (out : Signal.t array) =
    for i = 0 to nchan - 1 do
      let si = Signal.resolve inc.(i) and so = Signal.resolve out.(i) in
      if persistent.(i) && si.Signal.v_plus && si.Signal.s_plus then begin
        if not so.Signal.v_plus then
          report
            (Fmt.str "retry+: token withdrawn on %s"
               chans.(i).Netlist.ch_name)
        else if not (Option.equal Value.equal si.Signal.data so.Signal.data)
        then
          report
            (Fmt.str "retry+: data changed during retry on %s"
               chans.(i).Netlist.ch_name)
      end;
      if si.Signal.v_minus && si.Signal.s_minus && not so.Signal.v_minus
      then
        report
          (Fmt.str "retry-: anti-token withdrawn on %s"
             chans.(i).Netlist.ch_name)
    done
  in
  let check_invariant (sigs : Signal.t array) =
    Array.iteri
      (fun i s ->
         if not (s.Signal.v_plus && s.Signal.v_minus) then begin
           if s.Signal.v_plus && s.Signal.s_minus then
             report
               (Fmt.str "invariant: S- with token in flight on %s"
                  chans.(i).Netlist.ch_name);
           if s.Signal.v_minus && s.Signal.s_plus then
             report
               (Fmt.str "invariant: S+ with anti-token in flight on %s"
                  chans.(i).Netlist.ch_name)
         end)
      sigs
  in
  let register snap key =
    match Hashtbl.find_opt states key with
    | Some info -> (info, false)
    | None ->
      let info =
        { id = Hashtbl.length states; snap; key; parent = None;
          in_sigs = []; out_sigs = []; succs = [] }
      in
      Hashtbl.replace states key info;
      rev_states := info :: !rev_states;
      (info, true)
  in
  let initial_snap = Engine.snapshot eng in
  let init, _ = register initial_snap (Engine.state_key eng) in
  let queue = Queue.create () in
  Queue.push init queue;
  while not (Queue.is_empty queue) do
    let src = Queue.pop queue in
    if Hashtbl.length states <= config.max_states then begin
      List.iter
        (fun combo ->
           let choice_for id =
             List.assoc_opt id combo
           in
           Engine.restore eng src.snap;
           Engine.step ~choices:choice_for eng;
           incr transitions;
           let sigs =
             Array.map
               (fun (c : Netlist.channel) -> Engine.signal eng c.Netlist.ch_id)
               chans
           in
           let progress = Bits.create nchan in
           let pending = Bits.create nchan in
           Array.iteri
             (fun i (c : Netlist.channel) ->
                let ev = Engine.events eng c.Netlist.ch_id in
                if ev.Signal.token_out || ev.Signal.anti_out then
                  Bits.set progress i;
                let s = Signal.resolve sigs.(i) in
                if s.Signal.v_plus || s.Signal.v_minus then Bits.set pending i)
             chans;
           check_invariant sigs;
           List.iter (fun inc -> check_retry_pair inc sigs) src.in_sigs;
           src.out_sigs <- sigs :: src.out_sigs;
           let key = Engine.state_key eng in
           let dst, fresh = register (Engine.snapshot eng) key in
           if fresh then dst.parent <- Some (src, sigs);
           List.iter (fun out -> check_retry_pair sigs out) dst.out_sigs;
           dst.in_sigs <- sigs :: dst.in_sigs;
           src.succs <- (dst.id, progress, pending) :: src.succs;
           if fresh then
             if Hashtbl.length states <= config.max_states then
               Queue.push dst queue
             else complete := false)
        combos
    end
    else complete := false
  done;
  let all = Array.of_list (List.rev !rev_states) in
  let deadlocks =
    if not !complete then []
    else
      Array.to_list all
      |> List.filter_map (fun s ->
          let stuck =
            s.succs <> []
            && List.for_all
                 (fun (d, prog, _) -> d = s.id && not (Bits.any prog))
                 s.succs
            && List.exists (fun (_, _, pend) -> Bits.any pend) s.succs
          in
          if stuck then Some s.key else None)
  in
  (* Starvation: channel i is starving if some reachable state has a
     successor evaluation offering a token/anti-token on i, yet no
     sequence of choices from that state ever makes progress on i. *)
  let starving =
    if not !complete then []
    else begin
      let n = Array.length all in
      List.filteri
        (fun i _ ->
           let can_progress = Array.make n false in
           (* Fixed point of backward reachability to a progress(i) edge. *)
           let changed = ref true in
           while !changed do
             changed := false;
             Array.iter
               (fun s ->
                  if not can_progress.(s.id) then begin
                    let ok =
                      List.exists
                        (fun (d, prog, _) ->
                           Bits.mem prog i || can_progress.(d))
                        s.succs
                    in
                    if ok then begin
                      can_progress.(s.id) <- true;
                      changed := true
                    end
                  end)
               all
           done;
           Array.exists
             (fun s ->
                (not can_progress.(s.id))
                && List.exists (fun (_, _, pend) -> Bits.mem pend i) s.succs)
             all)
        (Array.to_list chans)
      |> List.map (fun (c : Netlist.channel) -> c.Netlist.ch_name)
    end
  in
  (* Render the path to the first problematic state, Table-1 style. *)
  let render_trace (target : state_info) =
    let rec collect acc s =
      match s.parent with
      | None -> acc
      | Some (p, sigs) -> collect (sigs :: acc) p
    in
    let steps = collect [] target in
    if steps = [] then []
    else
      let cell (sig_ : Signal.t) =
        let s = Signal.resolve sig_ in
        if s.Signal.v_plus && s.Signal.v_minus then "X"
        else if s.Signal.v_plus then if s.Signal.s_plus then "R" else "T"
        else if s.Signal.v_minus then "-"
        else "."
      in
      List.mapi
        (fun i (c : Netlist.channel) ->
           Fmt.str "%-28s %s" c.Netlist.ch_name
             (String.concat " "
                (List.map (fun sigs -> cell sigs.(i)) steps)))
        (Array.to_list chans)
  in
  let counterexample =
    match deadlocks with
    | _ :: _ ->
      (* First deadlock state. *)
      (match
         Array.find_opt
           (fun s -> List.mem s.key deadlocks)
           (Array.of_list (List.rev !rev_states))
       with
       | Some s ->
         "path to the deadlock (T=transfer R=retry -=anti X=cancel .=idle):"
         :: render_trace s
       | None -> [])
    | [] -> []
  in
  { explored = Hashtbl.length states;
    transitions = !transitions;
    complete = !complete;
    protocol_violations = List.rev !violations;
    deadlock_states = deadlocks;
    starving_channels = starving;
    counterexample;
    static_hints }
