open Elastic_netlist

(** Explicit-state verification of elastic controllers (§4.2).

    The paper verifies its controllers with NuSMV; this module performs
    the equivalent finite-state check directly on the simulation
    semantics.  Starting from the initial register state it enumerates
    every resolution of the nondeterministic environment — [Random_rate]
    sources (offer or stay idle), [Random_stall] sinks (accept or stop)
    and [External] schedulers (any prediction) — and explores the
    reachable state graph, checking:

    - the {b SELF protocol} on every channel: the kill/stop invariant on
      each transition, and Retry+/Retry- persistence across each pair of
      consecutive transitions (shared-module outputs are exempt from
      forward persistence, as §4.2 allows);
    - {b deadlock}: a state with tokens in flight whose every successor is
      itself with no transfer;
    - {b liveness / leads-to}: for every channel, a state in which the
      channel persistently offers a token that can never transfer or be
      killed under any future resolution is a starvation violation —
      property (1) of §4.1.1 when the channel feeds a shared module. *)

type config = {
  max_states : int;  (** Exploration cap (default 20000). *)
  max_choice_combinations : int;
      (** Cap on per-step nondeterminism (default 64). *)
}

val default_config : config

type outcome = {
  explored : int;  (** Distinct states visited. *)
  transitions : int;
  complete : bool;  (** False when [max_states] was hit. *)
  protocol_violations : string list;
  deadlock_states : string list;  (** Pretty-printed state keys. *)
  starving_channels : string list;
      (** Channels with a reachable state from which they can never make
          progress while offering a token. *)
  counterexample : string list;
      (** For the first protocol violation or deadlock: the channel
          activity along a path from the initial state, rendered like
          Table 1 (one row per channel, one column per cycle). *)
  static_hints : string list;
      (** Rendered error/warning diagnostics from {!Elastic_lint.Lint}
          on the explored netlist — when exploration finds a dynamic
          failure, the static rule naming its cause (e.g. E103 for a
          token-free cycle deadlocking) is usually here.  Does not affect
          {!clean}. *)
}

val pp_outcome : Format.formatter -> outcome -> unit

(** True when the outcome shows a fully explored, violation-free system. *)
val clean : outcome -> bool

(** [explore net] runs the exhaustive check.
    @param mode engine evaluation strategy (default {!Engine.Levelized});
    the outcome is identical either way — exposed for differential tests.
    @raise Invalid_argument when a single step has more nondeterministic
    combinations than the configured cap. *)
val explore :
  ?config:config -> ?mode:Elastic_sim.Engine.eval_mode -> Netlist.t ->
  outcome
