open Elastic_sched
open Elastic_netlist

(** Proof certificates for flow-preserving netlist transformations.

    Every entry point of [Elastic_core.Transform] is
    certificate-producing: when handed a {!builder} it appends one typed
    {!step} per successful application, recording {e which} lemma of the
    paper justifies the rewrite (bubble insertion, Shannon decomposition,
    early evaluation, sharing, retiming, buffer conversion), the side
    conditions that held when it fired, and the netlist delta (nodes
    added and removed plus full before/after snapshots — snapshots are
    cheap because netlists are persistent maps).

    A finished certificate is a checkable derivation
    [source -> step 1 -> ... -> step n -> derived]: {!Flow.verify}
    re-validates every step's side conditions purely structurally and
    replays the rewrite with raw netlist operations, independently of the
    transformation code that produced it.  Rejected applications
    (diagnostics E301-E308) never reach the builder, so an exception
    leaves the chain exactly as it was.

    The module lives in [elastic_check], {e below} [elastic_core], so the
    verifier cannot accidentally call the transformations it is supposed
    to check. *)

(** One rewrite, identified by the parameters the transformation was
    called with (node and channel ids refer to the [before] netlist). *)
type step_kind =
  | Bubble of { channel : Netlist.channel_id }
      (** Empty-EB insertion on a channel (§2). *)
  | Fifo of { channel : Netlist.channel_id; depth : int }
      (** A chain of [depth] empty EBs (§3). *)
  | Remove_buffer of { node : Netlist.node_id }
      (** Splicing an {e empty} buffer out. *)
  | Convert of { node : Netlist.node_id; buffer : Netlist.buffer_kind }
      (** Swapping the buffer implementation (Fig. 5). *)
  | Retime_fwd of { through : Netlist.node_id }
      (** Moving one token from every input buffer across a function
          block, recomputing the stored value. *)
  | Retime_bwd of { through : Netlist.node_id }
      (** Moving an empty output buffer onto every input. *)
  | Shannon of { mux : Netlist.node_id }
      (** Shannon decomposition / multiplexor retiming (§2). *)
  | Early_eval of { mux : Netlist.node_id }
      (** Switching a multiplexor to early (anti-token) evaluation. *)
  | Share of { blocks : Netlist.node_id list; sched : Scheduler.spec }
      (** Merging identical unary blocks into a shared module (Fig. 4). *)

(** Stable machine name of the step, e.g. ["shannon"]. *)
val kind_name : step_kind -> string

(** The flow-equivalence lemma the step instantiates, e.g.
    ["shannon-decomposition"]; the rule-to-lemma table lives in
    EXPERIMENTS.md. *)
val lemma_of : step_kind -> string

type step = {
  kind : step_kind;
  lemma : string;  (** {!lemma_of} of [kind]. *)
  conditions : string list;
      (** The lemma's side conditions, rendered as the facts that held on
          [before] when the transformation fired (re-validated from
          scratch by {!Flow.verify}; recorded here for reports). *)
  added_nodes : Netlist.node_id list;
  removed_nodes : Netlist.node_id list;
  before : Netlist.t;
  after : Netlist.t;
}

(** A derivation: steps in application order.  The empty certificate
    claims [source = derived]. *)
type t = { steps : step list }

val length : t -> int

(** Mutable accumulator threaded through transformation calls via their
    [?cert] argument. *)
type builder

val create : unit -> builder

(** [record b ~before ~after kind] appends one step; called by the
    transformations {e after} the rewrite succeeded. *)
val record : builder -> before:Netlist.t -> after:Netlist.t ->
  step_kind -> unit

(** Steps recorded so far (application order); [create] starts at 0. *)
val recorded : builder -> int

(** Freeze the builder into a checkable certificate.  The builder stays
    usable: later steps extend later certificates. *)
val certificate : builder -> t

val pp_step : Format.formatter -> step -> unit

val pp : Format.formatter -> t -> unit
