(* Static flow-equivalence verification: certificate replay and the
   direct canonical-form comparison.  Everything here is structural —
   channel-graph reasoning in the style of [Elastic_lint.Rules] plus the
   marked-graph token counts of [Elastic_perf.Marked_graph]; no engine
   is ever created.

   The replayer deliberately re-implements every rewrite with raw
   [Netlist] operations instead of calling [Elastic_core.Transform] (it
   cannot: this library sits below elastic_core).  Node and channel id
   allocation is deterministic, so a faithful replay of an honest
   certificate reproduces the transformation's result exactly; any
   divergence — forged steps, tampered snapshots, a buggy transform —
   surfaces as a typed E40x diagnostic. *)

open Elastic_kernel
open Elastic_sched
open Elastic_netlist

module Rules = Elastic_lint.Rules
module Json = Elastic_metrics.Json

(* ------------------------------------------------------------------ *)
(* Structural signatures.  Function blocks carry evaluation closures,
   so polymorphic equality is unusable; render every kind to a string
   that captures exactly the structurally observable fields. *)

let func_sig (f : Func.t) =
  Fmt.str "%s/%d~%g~%g" f.Func.name f.Func.arity f.Func.delay f.Func.area

let int_array_sig a =
  String.concat "," (List.map string_of_int (Array.to_list a))

let sched_sig = function
  | Scheduler.Scripted a -> Fmt.str "scripted[%s]" (int_array_sig a)
  | Scheduler.Noisy_oracle { sel; accuracy_pct; seed } ->
    Fmt.str "oracle[%s]~%d~%d" (int_array_sig sel) accuracy_pct seed
  | (Scheduler.Static _ | Scheduler.Toggle | Scheduler.Sticky
    | Scheduler.Two_bit | Scheduler.Round_robin | Scheduler.External
    | Scheduler.Prefer _ | Scheduler.Hinted_replay | Scheduler.Gshare _)
    as s -> Scheduler.spec_name s

let values_sig vs = String.concat ";" (List.map Value.to_string vs)

let source_sig = function
  | Netlist.Stream vs -> Fmt.str "stream[%s]" (values_sig vs)
  | Netlist.Counter { start; step } -> Fmt.str "counter%d+%d" start step
  | Netlist.Random_rate { pct; seed } -> Fmt.str "rate%d~%d" pct seed
  | Netlist.Nondet vs -> Fmt.str "nondet[%s]" (values_sig vs)

let sink_sig = function
  | Netlist.Always_ready -> "ready"
  | Netlist.Stall_pattern p ->
    Fmt.str "stall[%s]"
      (String.concat ""
         (List.map (fun b -> if b then "1" else "0") (Array.to_list p)))
  | Netlist.Random_stall { pct; seed } -> Fmt.str "rstall%d~%d" pct seed

let kind_sig = function
  | Netlist.Source s -> Fmt.str "source(%s)" (source_sig s)
  | Netlist.Sink s -> Fmt.str "sink(%s)" (sink_sig s)
  | Netlist.Buffer { buffer; init } ->
    Fmt.str "%s[%s]" (Netlist.buffer_kind_name buffer) (values_sig init)
  | Netlist.Func f -> Fmt.str "func(%s)" (func_sig f)
  | Netlist.Fork n -> Fmt.str "fork%d" n
  | Netlist.Mux { ways; early } ->
    Fmt.str "%smux%d" (if early then "e" else "") ways
  | Netlist.Shared { ways; f; sched; hinted } ->
    Fmt.str "shared%d%s(%s,%s)" ways
      (if hinted then "h" else "")
      (func_sig f) (sched_sig sched)
  | Netlist.Varlat { fast; slow; err } ->
    Fmt.str "varlat(%s|%s|%s)" (func_sig fast) (func_sig slow)
      (func_sig err)

let port_sig p = Fmt.str "%a" Netlist.pp_port p

let node_entry (n : Netlist.node) =
  Fmt.str "%d|%s|%s" n.Netlist.id n.Netlist.name (kind_sig n.Netlist.kind)

let channel_entry (c : Netlist.channel) =
  Fmt.str "%d|%s|%d.%s->%d.%s|w%d" c.Netlist.ch_id c.Netlist.ch_name
    c.Netlist.src.Netlist.ep_node
    (port_sig c.Netlist.src.Netlist.ep_port)
    c.Netlist.dst.Netlist.ep_node
    (port_sig c.Netlist.dst.Netlist.ep_port)
    c.Netlist.width

let entries net =
  ( List.sort compare (List.map node_entry (Netlist.nodes net)),
    List.sort compare (List.map channel_entry (Netlist.channels net)) )

let structural_equal a b = entries a = entries b

(* First element in one sorted list but not the other — the witness the
   mismatch diagnostics name. *)
let first_diff (la, ca) (lb, cb) =
  let only xs ys = List.find_opt (fun x -> not (List.mem x ys)) xs in
  match only la lb, only lb la with
  | Some e, _ -> Fmt.str "left-only node %s" e
  | None, Some e -> Fmt.str "right-only node %s" e
  | None, None -> (
      match only ca cb, only cb ca with
      | Some e, _ -> Fmt.str "left-only channel %s" e
      | None, Some e -> Fmt.str "right-only channel %s" e
      | None, None -> "identical")

let diff_message a b = first_diff (entries a) (entries b)

(* ------------------------------------------------------------------ *)
(* Side conditions, re-validated from scratch on the verified replica. *)

type cond_fail = {
  cf_msg : string;
  cf_node : int option;
  cf_node_name : string option;
  cf_channel : int option;
}

exception Cond of cond_fail

let cond ?node ?node_name ?channel msg =
  raise
    (Cond
       { cf_msg = msg; cf_node = node; cf_node_name = node_name;
         cf_channel = channel })

let find_node net id =
  List.find_opt (fun (n : Netlist.node) -> n.Netlist.id = id)
    (Netlist.nodes net)

let find_channel net id =
  List.find_opt (fun (c : Netlist.channel) -> c.Netlist.ch_id = id)
    (Netlist.channels net)

let the_node net id =
  match find_node net id with
  | Some n -> n
  | None -> cond ~node:id (Fmt.str "node %d does not exist" id)

let the_channel net id =
  match find_channel net id with
  | Some c -> c
  | None -> cond ~channel:id (Fmt.str "channel %d does not exist" id)

let buffer_at net id =
  let n = the_node net id in
  match n.Netlist.kind with
  | Netlist.Buffer { buffer; init } -> (n, buffer, init)
  | k ->
    cond ~node:id ~node_name:n.Netlist.name
      (Fmt.str "node %s is a %s, not a buffer" n.Netlist.name
         (Netlist.kind_name k))

let func_at net id =
  let n = the_node net id in
  match n.Netlist.kind with
  | Netlist.Func f -> (n, f)
  | k ->
    cond ~node:id ~node_name:n.Netlist.name
      (Fmt.str "node %s is a %s, not a function block" n.Netlist.name
         (Netlist.kind_name k))

let mux_at net id =
  let n = the_node net id in
  match n.Netlist.kind with
  | Netlist.Mux { ways; early } -> (n, ways, early)
  | k ->
    cond ~node:id ~node_name:n.Netlist.name
      (Fmt.str "node %s is a %s, not a multiplexor" n.Netlist.name
         (Netlist.kind_name k))

let channel_on net (n : Netlist.node) port =
  match Netlist.channel_at net n.Netlist.id port with
  | Some c -> c
  | None ->
    cond ~node:n.Netlist.id ~node_name:n.Netlist.name
      (Fmt.str "node %s has no channel at %s" n.Netlist.name
         (port_sig port))

let check_conditions net (kind : Cert.step_kind) =
  match kind with
  | Cert.Bubble { channel } -> ignore (the_channel net channel)
  | Cert.Fifo { channel; depth } ->
    if depth < 1 then cond (Fmt.str "fifo depth %d < 1" depth);
    ignore (the_channel net channel)
  | Cert.Remove_buffer { node } ->
    let n, _, init = buffer_at net node in
    if init <> [] then
      cond ~node ~node_name:n.Netlist.name
        (Fmt.str "buffer %s holds %d token(s); splicing it out would \
                  drop them" n.Netlist.name (List.length init));
    ignore (channel_on net n (Netlist.In 0));
    ignore (channel_on net n (Netlist.Out 0))
  | Cert.Convert { node; buffer } ->
    let n, _, init = buffer_at net node in
    if List.length init > Netlist.buffer_capacity buffer then
      cond ~node ~node_name:n.Netlist.name
        (Fmt.str "%d token(s) in %s exceed capacity %d of %s"
           (List.length init) n.Netlist.name
           (Netlist.buffer_capacity buffer)
           (Netlist.buffer_kind_name buffer))
  | Cert.Retime_fwd { through } ->
    let n, f = func_at net through in
    List.iter
      (fun i ->
         let c = channel_on net n (Netlist.In i) in
         let _, _, init =
           buffer_at net c.Netlist.src.Netlist.ep_node
         in
         if init = [] then
           cond ~node:c.Netlist.src.Netlist.ep_node
             (Fmt.str "input %d of %s comes from an empty buffer \
                       (forward retiming consumes one token per input)"
                i n.Netlist.name))
      (List.init f.Func.arity (fun i -> i))
  | Cert.Retime_bwd { through } ->
    let n, _ = func_at net through in
    let out_ch = channel_on net n (Netlist.Out 0) in
    let b, _, init = buffer_at net out_ch.Netlist.dst.Netlist.ep_node in
    if init <> [] then
      cond ~node:b.Netlist.id ~node_name:b.Netlist.name
        (Fmt.str "output buffer %s of %s is not empty" b.Netlist.name
           n.Netlist.name);
    ignore (channel_on net b (Netlist.Out 0))
  | Cert.Shannon { mux } ->
    let n, ways, _ = mux_at net mux in
    let out_ch = channel_on net n (Netlist.Out 0) in
    let block, f = func_at net out_ch.Netlist.dst.Netlist.ep_node in
    if f.Func.arity <> 1 then
      cond ~node:block.Netlist.id ~node_name:block.Netlist.name
        (Fmt.str "block %s after mux %s has arity %d (must be unary to \
                  commute with the select)" block.Netlist.name
           n.Netlist.name f.Func.arity);
    ignore (channel_on net block (Netlist.Out 0));
    List.iter
      (fun i -> ignore (channel_on net n (Netlist.In i)))
      (List.init ways (fun i -> i))
  | Cert.Early_eval { mux } -> ignore (mux_at net mux)
  | Cert.Share { blocks; sched = _ } ->
    (match blocks with
     | [] | [ _ ] ->
       cond
         (Fmt.str "share needs at least two blocks, got %d"
            (List.length blocks))
     | _ :: _ :: _ -> ());
    let sigs =
      List.map
        (fun id ->
           let n, f = func_at net id in
           if f.Func.arity <> 1 then
             cond ~node:id ~node_name:n.Netlist.name
               (Fmt.str "shared block %s has arity %d (must be unary)"
                  n.Netlist.name f.Func.arity);
           ignore (channel_on net n (Netlist.In 0));
           ignore (channel_on net n (Netlist.Out 0));
           (n, func_sig f))
        blocks
    in
    match sigs with
    | (_, s0) :: rest ->
      List.iter
        (fun ((n : Netlist.node), s) ->
           if not (String.equal s s0) then
             cond ~node:n.Netlist.id ~node_name:n.Netlist.name
               (Fmt.str "shared blocks compute different functions (%s \
                         vs %s)" s0 s))
        rest
    | [] -> ()

(* ------------------------------------------------------------------ *)
(* Independent replay with raw netlist operations.  Mirrors the rewrite
   semantics exactly (including default names and the order of node and
   channel allocations, which is what makes the replay reproduce the
   transformation's ids). *)

let splice_in_buffer net ~channel ~buffer ~init =
  let c = Netlist.channel net channel in
  let net, b = Netlist.add_node net (Netlist.Buffer { buffer; init }) in
  let old_dst = c.Netlist.dst in
  let net = Netlist.set_dst net channel (b, Netlist.In 0) in
  let net, _ =
    Netlist.connect ~width:c.Netlist.width net (b, Netlist.Out 0)
      (old_dst.Netlist.ep_node, old_dst.Netlist.ep_port)
  in
  (net, b)

let splice_out_buffer net b =
  let in_ch =
    match Netlist.channel_at net b (Netlist.In 0) with
    | Some c -> c
    | None -> invalid_arg "Flow: buffer has no input channel"
  in
  let out_ch =
    match Netlist.channel_at net b (Netlist.Out 0) with
    | Some c -> c
    | None -> invalid_arg "Flow: buffer has no output channel"
  in
  let dst = out_ch.Netlist.dst in
  let net = Netlist.remove_channel net out_ch.Netlist.ch_id in
  let net =
    Netlist.set_dst net in_ch.Netlist.ch_id
      (dst.Netlist.ep_node, dst.Netlist.ep_port)
  in
  Netlist.remove_node net b

let replay net (kind : Cert.step_kind) =
  match kind with
  | Cert.Bubble { channel } ->
    fst (splice_in_buffer net ~channel ~buffer:Netlist.Eb ~init:[])
  | Cert.Fifo { channel; depth } ->
    let rec go net channel k =
      if k = 0 then net
      else begin
        let net, b =
          splice_in_buffer net ~channel ~buffer:Netlist.Eb ~init:[]
        in
        let next =
          match Netlist.channel_at net b (Netlist.Out 0) with
          | Some c -> c.Netlist.ch_id
          | None -> invalid_arg "Flow: fifo lost its output channel"
        in
        go net next (k - 1)
      end
    in
    go net channel depth
  | Cert.Remove_buffer { node } -> splice_out_buffer net node
  | Cert.Convert { node; buffer } ->
    let init =
      match (Netlist.node net node).Netlist.kind with
      | Netlist.Buffer { init; _ } -> init
      | _ -> invalid_arg "Flow: convert target is not a buffer"
    in
    Netlist.replace_kind net node (Netlist.Buffer { buffer; init })
  | Cert.Retime_fwd { through } ->
    let f =
      match (Netlist.node net through).Netlist.kind with
      | Netlist.Func f -> f
      | _ -> invalid_arg "Flow: retime target is not a function block"
    in
    let input_buffers =
      List.init f.Func.arity (fun i ->
          match Netlist.channel_at net through (Netlist.In i) with
          | None -> invalid_arg "Flow: retime input channel missing"
          | Some c -> (
              let src = c.Netlist.src.Netlist.ep_node in
              match (Netlist.node net src).Netlist.kind with
              | Netlist.Buffer { buffer; init } -> (src, buffer, init)
              | _ -> invalid_arg "Flow: retime input is not a buffer"))
    in
    let heads =
      List.map
        (fun (_, _, init) ->
           match init with
           | v :: _ -> v
           | [] -> invalid_arg "Flow: retime input buffer is empty")
        input_buffers
    in
    let moved = Func.apply f heads in
    let net =
      List.fold_left
        (fun net (src, buffer, init) ->
           Netlist.replace_kind net src
             (Netlist.Buffer { buffer; init = List.tl init }))
        net input_buffers
    in
    let out_ch =
      match Netlist.channel_at net through (Netlist.Out 0) with
      | Some c -> c
      | None -> invalid_arg "Flow: retime output channel missing"
    in
    fst
      (splice_in_buffer net ~channel:out_ch.Netlist.ch_id
         ~buffer:Netlist.Eb ~init:[ moved ])
  | Cert.Retime_bwd { through } ->
    let f =
      match (Netlist.node net through).Netlist.kind with
      | Netlist.Func f -> f
      | _ -> invalid_arg "Flow: retime target is not a function block"
    in
    let out_ch =
      match Netlist.channel_at net through (Netlist.Out 0) with
      | Some c -> c
      | None -> invalid_arg "Flow: retime output channel missing"
    in
    let b = out_ch.Netlist.dst.Netlist.ep_node in
    let buffer =
      match (Netlist.node net b).Netlist.kind with
      | Netlist.Buffer { buffer; _ } -> buffer
      | _ -> invalid_arg "Flow: retime output is not a buffer"
    in
    let net = splice_out_buffer net b in
    List.fold_left
      (fun net i ->
         match Netlist.channel_at net through (Netlist.In i) with
         | None -> invalid_arg "Flow: retime input channel missing"
         | Some c ->
           fst
             (splice_in_buffer net ~channel:c.Netlist.ch_id ~buffer
                ~init:[]))
      net
      (List.init f.Func.arity (fun i -> i))
  | Cert.Shannon { mux } ->
    let ways =
      match (Netlist.node net mux).Netlist.kind with
      | Netlist.Mux { ways; _ } -> ways
      | _ -> invalid_arg "Flow: shannon target is not a multiplexor"
    in
    let out_ch =
      match Netlist.channel_at net mux (Netlist.Out 0) with
      | Some c -> c
      | None -> invalid_arg "Flow: mux output channel missing"
    in
    let block = out_ch.Netlist.dst.Netlist.ep_node in
    let f =
      match (Netlist.node net block).Netlist.kind with
      | Netlist.Func f -> f
      | _ -> invalid_arg "Flow: block after mux is not a function block"
    in
    let block_out =
      match Netlist.channel_at net block (Netlist.Out 0) with
      | Some c -> c
      | None -> invalid_arg "Flow: block output channel missing"
    in
    let net = Netlist.remove_channel net out_ch.Netlist.ch_id in
    let net =
      Netlist.set_src net block_out.Netlist.ch_id (mux, Netlist.Out 0)
    in
    let net = Netlist.remove_node net block in
    let base = (Netlist.node net mux).Netlist.name in
    List.fold_left
      (fun net i ->
         match Netlist.channel_at net mux (Netlist.In i) with
         | None -> invalid_arg "Flow: mux data channel missing"
         | Some d ->
           let net, fi =
             Netlist.add_node
               ~name:(Fmt.str "%s_%s%d" base f.Func.name i)
               net (Netlist.Func f)
           in
           let net =
             Netlist.set_dst net d.Netlist.ch_id (fi, Netlist.In 0)
           in
           fst
             (Netlist.connect ~width:d.Netlist.width net
                (fi, Netlist.Out 0) (mux, Netlist.In i)))
      net
      (List.init ways (fun i -> i))
  | Cert.Early_eval { mux } ->
    let ways =
      match (Netlist.node net mux).Netlist.kind with
      | Netlist.Mux { ways; _ } -> ways
      | _ -> invalid_arg "Flow: early-eval target is not a multiplexor"
    in
    Netlist.replace_kind net mux (Netlist.Mux { ways; early = true })
  | Cert.Share { blocks; sched } ->
    let f =
      match blocks with
      | b :: _ -> (
          match (Netlist.node net b).Netlist.kind with
          | Netlist.Func f -> f
          | _ -> invalid_arg "Flow: shared block is not a function block")
      | [] -> invalid_arg "Flow: share with no blocks"
    in
    let ways = List.length blocks in
    let net, sh =
      Netlist.add_node net
        (Netlist.Shared { ways; f; sched; hinted = false })
    in
    List.fold_left
      (fun net (i, b) ->
         match
           ( Netlist.channel_at net b (Netlist.In 0),
             Netlist.channel_at net b (Netlist.Out 0) )
         with
         | Some in_ch, Some out_ch ->
           let net =
             Netlist.set_dst net in_ch.Netlist.ch_id (sh, Netlist.In i)
           in
           let net =
             Netlist.set_src net out_ch.Netlist.ch_id (sh, Netlist.Out i)
           in
           Netlist.remove_node net b
         | _ -> invalid_arg "Flow: shared block channels missing")
      net
      (List.mapi (fun i b -> (i, b)) blocks)

(* ------------------------------------------------------------------ *)
(* Structural liveness invariants: a rewrite that overfills a buffer,
   leaves a cycle unregistered (E102) or drains a cycle of its last
   token (E103) is outside its lemma even if the splice itself was
   well-formed.  Counted per code so pre-existing findings in the
   source are not blamed on a step. *)

let liveness_counts net =
  try
    ( List.length (Rules.buffer_overfilled net),
      List.length (Rules.combinational_cycle net),
      List.length (Rules.token_free_cycle net),
      List.length (Rules.antitoken_through_eb net) )
  with Invalid_argument _ | Failure _ ->
    (max_int, max_int, max_int, max_int)

let worsened (a1, a2, a3, a4) (b1, b2, b3, b4) =
  let worse =
    List.concat
      (List.map
         (fun (code, x, y) ->
            if (y : int) > x then [ Fmt.str "%s (%d -> %d)" code x y ]
            else [])
         [ ("E101", a1, b1); ("E102", a2, b2); ("E103", a3, b3);
           ("W104", a4, b4) ])
  in
  if worse = [] then None else Some (String.concat ", " worse)

(* ------------------------------------------------------------------ *)

type proof = {
  p_design : string;
  p_mode : [ `Certificate | `Structural ];
  p_steps : int;
  p_lemmas : string list;
  p_source_nodes : int;
  p_source_channels : int;
  p_derived_nodes : int;
  p_derived_channels : int;
  p_throughput_source : float option;
  p_throughput_derived : float option;
}

let pp_proof ppf p =
  Fmt.pf ppf
    "%s: PROVED derived ≡ source (%s, %d step(s)%s; source %d nodes / \
     %d channels, derived %d / %d%a)"
    p.p_design
    (match p.p_mode with
     | `Certificate -> "certificate"
     | `Structural -> "canonical forms")
    p.p_steps
    (if p.p_lemmas = [] then ""
     else Fmt.str ": %s" (String.concat "; " p.p_lemmas))
    p.p_source_nodes p.p_source_channels p.p_derived_nodes
    p.p_derived_channels
    (fun ppf -> function
       | Some a, Some b -> Fmt.pf ppf "; throughput bounds %.3f / %.3f" a b
       | _ -> ())
    (p.p_throughput_source, p.p_throughput_derived)

let throughput net =
  try Some (Elastic_perf.Marked_graph.throughput_bound net)
  with Diagnostic.Reject _ | Invalid_argument _ -> None

let make_proof ~design ~mode ~steps ~lemmas source derived =
  { p_design = design; p_mode = mode; p_steps = steps; p_lemmas = lemmas;
    p_source_nodes = Netlist.node_count source;
    p_source_channels = Netlist.channel_count source;
    p_derived_nodes = Netlist.node_count derived;
    p_derived_channels = Netlist.channel_count derived;
    p_throughput_source = throughput source;
    p_throughput_derived = throughput derived }

let refute ~code ~rule ?node ?node_name ?channel msg =
  Error
    (Diagnostic.make ~code ~rule ~severity:Diagnostic.Error ?node
       ?node_name ?channel msg)

let verify ?(design = "netlist") ~source ~derived (cert : Cert.t) =
  let step_tag i (s : Cert.step) =
    Fmt.str "step %d (%s, lemma %s)" (i + 1) (Cert.kind_name s.Cert.kind)
      s.Cert.lemma
  in
  let rec go i replica = function
    | [] ->
      if structural_equal replica derived then
        Ok
          (make_proof ~design ~mode:`Certificate
             ~steps:(List.length cert.Cert.steps)
             ~lemmas:
               (List.map (fun (s : Cert.step) -> s.Cert.lemma)
                  cert.Cert.steps)
             source derived)
      else if i = 0 then
        refute ~code:"E401" ~rule:"cert-chain"
          (Fmt.str
             "%s: empty certificate, but source and derived netlists \
              differ (%s)" design (diff_message replica derived))
      else
        refute ~code:"E403" ~rule:"cert-replay"
          (Fmt.str
             "%s: replaying all %d step(s) does not yield the claimed \
              derived netlist (%s)" design i
             (diff_message replica derived))
    | (s : Cert.step) :: rest ->
      if not (structural_equal replica s.Cert.before) then
        refute ~code:"E401" ~rule:"cert-chain"
          (Fmt.str
             "%s: %s: recorded pre-state does not match the verified \
              prefix (%s)" design (step_tag i s)
             (diff_message s.Cert.before replica))
      else begin
        match check_conditions replica s.Cert.kind with
        | exception Cond c ->
          refute ~code:"E402" ~rule:"cert-side-condition" ?node:c.cf_node
            ?node_name:c.cf_node_name ?channel:c.cf_channel
            (Fmt.str "%s: %s: side condition failed: %s" design
               (step_tag i s) c.cf_msg)
        | () -> (
            match replay replica s.Cert.kind with
            | exception (Invalid_argument m | Failure m) ->
              refute ~code:"E403" ~rule:"cert-replay"
                (Fmt.str "%s: %s: replay failed: %s" design
                   (step_tag i s) m)
            | replica' ->
              (match
                 worsened (liveness_counts replica)
                   (liveness_counts replica')
               with
               | Some w ->
                 refute ~code:"E405" ~rule:"cert-liveness"
                   (Fmt.str
                      "%s: %s: rewrite breaks a structural liveness \
                       invariant: %s" design (step_tag i s) w)
               | None ->
                 if not (structural_equal replica' s.Cert.after) then
                   refute ~code:"E403" ~rule:"cert-replay"
                     (Fmt.str
                        "%s: %s: independent replay does not reproduce \
                         the recorded result (%s)" design (step_tag i s)
                        (diff_message replica' s.Cert.after))
                 else go (i + 1) replica' rest))
      end
  in
  go 0 source cert.Cert.steps

(* ------------------------------------------------------------------ *)
(* Direct structural mode: confluent empty-buffer elimination.  Each
   rewrite splices out one token-free buffer whose both endpoints are
   connected; distinct redexes never overlap destructively (removing one
   empty buffer cannot un-empty or disconnect another), so the rewriting
   is confluent and the normal form canonical. *)

let normalize net =
  let rec fix net =
    let redex =
      List.find_opt
        (fun (n : Netlist.node) ->
           match n.Netlist.kind with
           | Netlist.Buffer { init = []; _ } ->
             Netlist.channel_at net n.Netlist.id (Netlist.In 0) <> None
             && Netlist.channel_at net n.Netlist.id (Netlist.Out 0)
                <> None
           | _ -> false)
        (Netlist.nodes net)
    in
    match redex with
    | None -> net
    | Some n -> fix (splice_out_buffer net n.Netlist.id)
  in
  fix net

(* Canonical entries are name-keyed (ids differ across independently
   built netlists): nodes as name|kind, channels as endpoint names and
   ports.  Buffer-free normal forms of bundled designs have unique,
   meaningful node names; a design that reuses names is out of scope for
   the direct mode (use a certificate). *)
let canonical_entries net =
  let name id = (Netlist.node net id).Netlist.name in
  ( List.sort compare
      (List.map
         (fun (n : Netlist.node) ->
            Fmt.str "%s|%s" n.Netlist.name (kind_sig n.Netlist.kind))
         (Netlist.nodes net)),
    List.sort compare
      (List.map
         (fun (c : Netlist.channel) ->
            Fmt.str "%s.%s->%s.%s|w%d"
              (name c.Netlist.src.Netlist.ep_node)
              (port_sig c.Netlist.src.Netlist.ep_port)
              (name c.Netlist.dst.Netlist.ep_node)
              (port_sig c.Netlist.dst.Netlist.ep_port)
              c.Netlist.width)
         (Netlist.channels net)) )

let equiv_static ?(design = "netlist") a b =
  let na = normalize a and nb = normalize b in
  let ea = canonical_entries na and eb = canonical_entries nb in
  if ea = eb then begin
    let spliced =
      Netlist.node_count a - Netlist.node_count na
      + (Netlist.node_count b - Netlist.node_count nb)
    in
    Ok
      (make_proof ~design ~mode:`Structural ~steps:spliced
         ~lemmas:(List.init spliced (fun _ -> "empty-buffer-removal"))
         a b)
  end
  else
    refute ~code:"E404" ~rule:"canon-mismatch"
      (Fmt.str
         "%s: canonical forms differ after empty-buffer elimination \
          (%s); the designs are not related by buffer insertion alone — \
          a certificate is required to prove richer rewrites"
         design (first_diff ea eb))

(* ------------------------------------------------------------------ *)
(* JSONL export, schema elastic-speculation/proof/v1. *)

let json_of_params : Cert.step_kind -> (string * Json.t) list = function
  | Cert.Bubble { channel } -> [ ("channel", Json.Int channel) ]
  | Cert.Fifo { channel; depth } ->
    [ ("channel", Json.Int channel); ("depth", Json.Int depth) ]
  | Cert.Remove_buffer { node } -> [ ("node", Json.Int node) ]
  | Cert.Convert { node; buffer } ->
    [ ("node", Json.Int node);
      ("buffer", Json.Str (Netlist.buffer_kind_name buffer)) ]
  | Cert.Retime_fwd { through } | Cert.Retime_bwd { through } ->
    [ ("through", Json.Int through) ]
  | Cert.Shannon { mux } | Cert.Early_eval { mux } ->
    [ ("mux", Json.Int mux) ]
  | Cert.Share { blocks; sched } ->
    [ ("blocks", Json.List (List.map (fun b -> Json.Int b) blocks));
      ("sched", Json.Str (sched_sig sched)) ]

let json_of_step i (s : Cert.step) =
  Json.Obj
    [ ("type", Json.Str "step"); ("index", Json.Int (i + 1));
      ("kind", Json.Str (Cert.kind_name s.Cert.kind));
      ("lemma", Json.Str s.Cert.lemma);
      ("params", Json.Obj (json_of_params s.Cert.kind));
      ("conditions",
       Json.List (List.map (fun c -> Json.Str c) s.Cert.conditions));
      ("added_nodes",
       Json.List (List.map (fun n -> Json.Int n) s.Cert.added_nodes));
      ("removed_nodes",
       Json.List (List.map (fun n -> Json.Int n) s.Cert.removed_nodes));
      ("nodes_before", Json.Int (Netlist.node_count s.Cert.before));
      ("channels_before",
       Json.Int (Netlist.channel_count s.Cert.before));
      ("nodes_after", Json.Int (Netlist.node_count s.Cert.after));
      ("channels_after", Json.Int (Netlist.channel_count s.Cert.after)) ]

let opt_float = function Some f -> Json.Float f | None -> Json.Null

let jsonl ~design ?cert result =
  let header =
    match result with
    | Ok p ->
      Json.Obj
        [ ("schema", Json.Str "elastic-speculation/proof/v1");
          ("design", Json.Str design);
          ("mode",
           Json.Str
             (match p.p_mode with
              | `Certificate -> "certificate"
              | `Structural -> "structural"));
          ("verdict", Json.Str "proved");
          ("steps", Json.Int p.p_steps);
          ("lemmas",
           Json.List (List.map (fun l -> Json.Str l) p.p_lemmas));
          ("source",
           Json.Obj
             [ ("nodes", Json.Int p.p_source_nodes);
               ("channels", Json.Int p.p_source_channels) ]);
          ("derived",
           Json.Obj
             [ ("nodes", Json.Int p.p_derived_nodes);
               ("channels", Json.Int p.p_derived_channels) ]);
          ("throughput_source", opt_float p.p_throughput_source);
          ("throughput_derived", opt_float p.p_throughput_derived) ]
    | Error (d : Diagnostic.t) ->
      let opt name = function
        | Some v -> [ (name, Json.Int v) ]
        | None -> []
      in
      let opts name = function
        | Some v -> [ (name, Json.Str v) ]
        | None -> []
      in
      Json.Obj
        ([ ("schema", Json.Str "elastic-speculation/proof/v1");
           ("design", Json.Str design);
           ("mode",
            Json.Str
              (match cert with Some _ -> "certificate" | None -> "structural"));
           ("verdict", Json.Str "refuted");
           ("code", Json.Str d.Diagnostic.code);
           ("rule", Json.Str d.Diagnostic.rule) ]
         @ opt "node" d.Diagnostic.node
         @ opts "node_name" d.Diagnostic.node_name
         @ opt "channel" d.Diagnostic.channel
         @ [ ("message", Json.Str d.Diagnostic.message) ])
  in
  let steps =
    match cert with
    | None -> []
    | Some c -> List.mapi json_of_step c.Cert.steps
  in
  String.concat "\n" (List.map Json.to_string (header :: steps)) ^ "\n"
