open Elastic_sched
open Elastic_netlist

type step_kind =
  | Bubble of { channel : Netlist.channel_id }
  | Fifo of { channel : Netlist.channel_id; depth : int }
  | Remove_buffer of { node : Netlist.node_id }
  | Convert of { node : Netlist.node_id; buffer : Netlist.buffer_kind }
  | Retime_fwd of { through : Netlist.node_id }
  | Retime_bwd of { through : Netlist.node_id }
  | Shannon of { mux : Netlist.node_id }
  | Early_eval of { mux : Netlist.node_id }
  | Share of { blocks : Netlist.node_id list; sched : Scheduler.spec }

let kind_name = function
  | Bubble _ -> "bubble"
  | Fifo _ -> "fifo"
  | Remove_buffer _ -> "remove-buffer"
  | Convert _ -> "convert"
  | Retime_fwd _ -> "retime-fwd"
  | Retime_bwd _ -> "retime-bwd"
  | Shannon _ -> "shannon"
  | Early_eval _ -> "early-eval"
  | Share _ -> "share"

let lemma_of = function
  | Bubble _ -> "bubble-insertion"
  | Fifo _ -> "fifo-insertion"
  | Remove_buffer _ -> "empty-buffer-removal"
  | Convert _ -> "buffer-implementation"
  | Retime_fwd _ -> "forward-retiming"
  | Retime_bwd _ -> "backward-retiming"
  | Shannon _ -> "shannon-decomposition"
  | Early_eval _ -> "early-evaluation"
  | Share _ -> "module-sharing"

type step = {
  kind : step_kind;
  lemma : string;
  conditions : string list;
  added_nodes : Netlist.node_id list;
  removed_nodes : Netlist.node_id list;
  before : Netlist.t;
  after : Netlist.t;
}

type t = { steps : step list }

let length t = List.length t.steps

(* ------------------------------------------------------------------ *)
(* Side-condition rendering: the facts on [before] that make the lemma
   applicable, phrased as the verifier re-checks them.  Lookups are
   guarded — [record] runs after the transformation succeeded, but a
   hand-forged step must not crash the renderer. *)

let node_desc net id =
  match
    List.find_opt (fun (n : Netlist.node) -> n.Netlist.id = id)
      (Netlist.nodes net)
  with
  | Some n ->
    Fmt.str "node %d %s (%s)" id n.Netlist.name
      (Netlist.kind_name n.Netlist.kind)
  | None -> Fmt.str "node %d (missing)" id

let channel_desc net id =
  match
    List.find_opt (fun (c : Netlist.channel) -> c.Netlist.ch_id = id)
      (Netlist.channels net)
  with
  | Some c -> Fmt.str "channel %d %s" id c.Netlist.ch_name
  | None -> Fmt.str "channel %d (missing)" id

let conditions_of net = function
  | Bubble { channel } ->
    [ Fmt.str "%s exists (an empty EB preserves transfer streams on any \
               channel)" (channel_desc net channel) ]
  | Fifo { channel; depth } ->
    [ Fmt.str "depth %d >= 1" depth;
      Fmt.str "%s exists" (channel_desc net channel) ]
  | Remove_buffer { node } ->
    [ Fmt.str "%s is a buffer holding no tokens" (node_desc net node);
      Fmt.str "%s has both an input and an output channel"
        (node_desc net node);
      "removal keeps every cycle registered and token-bearing" ]
  | Convert { node; buffer } ->
    [ Fmt.str "%s is a buffer whose tokens fit capacity C = Lf + Lb = %d \
               of %s"
        (node_desc net node)
        (Netlist.buffer_capacity buffer)
        (Netlist.buffer_kind_name buffer);
      "conversion keeps every cycle registered" ]
  | Retime_fwd { through } ->
    [ Fmt.str "%s is a function block" (node_desc net through);
      "every input is fed by a buffer holding at least one token" ]
  | Retime_bwd { through } ->
    [ Fmt.str "%s is a function block" (node_desc net through);
      "the output feeds an empty buffer with a downstream channel" ]
  | Shannon { mux } ->
    [ Fmt.str "%s is a multiplexor whose output feeds a unary function \
               block" (node_desc net mux);
      "the block and every data input have channels to rewire" ]
  | Early_eval { mux } ->
    [ Fmt.str "%s is a multiplexor (anti-tokens implement the algebra of \
               discarded operands)" (node_desc net mux) ]
  | Share { blocks; sched } ->
    [ Fmt.str "%d blocks, all unary function blocks computing the same \
               function" (List.length blocks);
      Fmt.str "scheduler %s only reorders service, never values"
        (Scheduler.spec_name sched) ]

(* ------------------------------------------------------------------ *)

type builder = { mutable rev_steps : step list }

let create () = { rev_steps = [] }

let ids_of net =
  List.map (fun (n : Netlist.node) -> n.Netlist.id) (Netlist.nodes net)

let record b ~before ~after kind =
  let ib = ids_of before and ia = ids_of after in
  let added = List.filter (fun id -> not (List.mem id ib)) ia in
  let removed = List.filter (fun id -> not (List.mem id ia)) ib in
  let step =
    { kind; lemma = lemma_of kind; conditions = conditions_of before kind;
      added_nodes = added; removed_nodes = removed; before; after }
  in
  b.rev_steps <- step :: b.rev_steps

let recorded b = List.length b.rev_steps

let certificate b = { steps = List.rev b.rev_steps }

let pp_step ppf s =
  Fmt.pf ppf "%-13s lemma %-22s +%d -%d node(s)" (kind_name s.kind)
    s.lemma
    (List.length s.added_nodes)
    (List.length s.removed_nodes)

let pp ppf t =
  Fmt.pf ppf "certificate: %d step(s)@." (length t);
  List.iteri (fun i s -> Fmt.pf ppf "  %2d. %a@." (i + 1) pp_step s) t.steps
