open Elastic_kernel
open Elastic_sched
open Elastic_netlist
open Elastic_datapath

type design = {
  d_net : Netlist.t;
  d_sink : Netlist.node_id;
  d_name : string;
}

(* ------------------------------------------------------------------ *)
(* The generic speculative replay stage (shared by §5.1 and §5.2):      *)
(*                                                                      *)
(*            +-- fast ----------------> sh.in0 --+                     *)
(*   src -> fork-- slow --> [EB] ------> sh.in1   sh(f) => [EB] x2      *)
(*            +-- err --> fork+-> [EB] -> mux.sel     => early mux      *)
(*                            +--------> sh.hint      => sink           *)
(* ------------------------------------------------------------------ *)

let replay_stage_alarmed ?(recovery = Netlist.Eb0) ?alarm ~name ~source
    ~fast ~slow ~err ~stage_f ~width ~out_width () =
  let net = Netlist.empty in
  let add ?name net kind = Netlist.add_node ?name net kind in
  let net, src = add ~name:"src" net (Netlist.Source source) in
  let fork_ways = match alarm with None -> 3 | Some _ -> 4 in
  let net, fork = add ~name:"op_fork" net (Netlist.Fork fork_ways) in
  let net, ffast = add ~name:"fast" net (Netlist.Func fast) in
  let net, fslow = add ~name:"slow" net (Netlist.Func slow) in
  let net, ferr = add ~name:"err" net (Netlist.Func err) in
  let net, err_fork = add ~name:"err_fork" net (Netlist.Fork 2) in
  let net, ebx =
    add ~name:"EBx" net (Netlist.Buffer { buffer = Netlist.Eb; init = [] })
  in
  let net, ebe =
    add ~name:"EBe" net (Netlist.Buffer { buffer = Netlist.Eb; init = [] })
  in
  let net, sh =
    add ~name:"stage" net
      (Netlist.Shared
         { ways = 2; f = stage_f; sched = Scheduler.Hinted_replay;
           hinted = true })
  in
  (* Recovery buffers use the zero-backward-latency EB of Fig. 5: the
     anti-token of a correct prediction must rush back through them to the
     shared module, otherwise the doomed slow-path token delays its
     successors and throughput drops below 1 (§4.1, §4.3). *)
  let net, eb0r =
    add ~name:"EB0r" net (Netlist.Buffer { buffer = recovery; init = [] })
  in
  let net, eb1r =
    add ~name:"EB1r" net (Netlist.Buffer { buffer = recovery; init = [] })
  in
  let net, mux =
    add ~name:"mux" net (Netlist.Mux { ways = 2; early = true })
  in
  let net, sink = add ~name:"out" net (Netlist.Sink Netlist.Always_ready) in
  let c ?(w = width) net a b = fst (Netlist.connect ~width:w net a b) in
  let net = c net (src, Netlist.Out 0) (fork, Netlist.In 0) in
  let net = c net (fork, Netlist.Out 0) (ffast, Netlist.In 0) in
  let net = c net (fork, Netlist.Out 1) (fslow, Netlist.In 0) in
  let net = c net (fork, Netlist.Out 2) (ferr, Netlist.In 0) in
  let net = c net (ffast, Netlist.Out 0) (sh, Netlist.In 0) in
  let net = c net (fslow, Netlist.Out 0) (ebx, Netlist.In 0) in
  let net = c net (ebx, Netlist.Out 0) (sh, Netlist.In 1) in
  let net = c ~w:1 net (ferr, Netlist.Out 0) (err_fork, Netlist.In 0) in
  let net = c ~w:1 net (err_fork, Netlist.Out 0) (ebe, Netlist.In 0) in
  let net = c ~w:1 net (ebe, Netlist.Out 0) (mux, Netlist.Sel) in
  let net = c ~w:1 net (err_fork, Netlist.Out 1) (sh, Netlist.Sel) in
  let net = c ~w:out_width net (sh, Netlist.Out 0) (eb0r, Netlist.In 0) in
  let net = c ~w:out_width net (eb0r, Netlist.Out 0) (mux, Netlist.In 0) in
  let net = c ~w:out_width net (sh, Netlist.Out 1) (eb1r, Netlist.In 0) in
  let net = c ~w:out_width net (eb1r, Netlist.Out 0) (mux, Netlist.In 1) in
  let net = c ~w:out_width net (mux, Netlist.Out 0) (sink, Netlist.In 0) in
  (* Optional error-severity tap: a fourth fork way through a severity
     function into a dedicated "alarm" sink, so fault campaigns can tell
     detected-and-reported errors from silent ones. *)
  let net, alarm_sink =
    match alarm with
    | None -> (net, None)
    | Some f ->
      let net, sev = add ~name:"severity" net (Netlist.Func f) in
      let net, asink =
        add ~name:"alarm" net (Netlist.Sink Netlist.Always_ready)
      in
      let net = c net (fork, Netlist.Out 3) (sev, Netlist.In 0) in
      let net = c ~w:2 net (sev, Netlist.Out 0) (asink, Netlist.In 0) in
      (net, Some asink)
  in
  Netlist.validate_exn net;
  ({ d_net = net; d_sink = sink; d_name = name }, alarm_sink)

let replay_stage ?recovery ~name ~source ~fast ~slow ~err ~stage_f ~width
    ~out_width () =
  fst
    (replay_stage_alarmed ?recovery ~name ~source ~fast ~slow ~err ~stage_f
       ~width ~out_width ())

(* ------------------------------------------------------------------ *)
(* §5.1 Variable-latency ALU                                            *)

(* The downstream stage logic that gets shared (the shaded G of
   Fig. 6(b)): a light post-processing block, here result + 1. *)
let vl_g () =
  Func.make ~name:"G" ~arity:1 ~delay:1.5 ~area:40.0 (function
    | [ v ] -> Value.Int ((Value.to_int v + 1) land 0xFF)
    | _ -> assert false)

let vl_stream ops =
  Netlist.Stream (List.map (fun (op, a, b) -> Alu.operand_value op a b) ops)

let vl_stalling ~ops =
  let net = Netlist.empty in
  let net, src = Netlist.add_node ~name:"src" net (Netlist.Source (vl_stream ops)) in
  let net, vl =
    Netlist.add_node ~name:"alu" net
      (Netlist.Varlat
         { fast = Alu.approx_func (); slow = Alu.exact_func ();
           err = Alu.error_func () })
  in
  let net, g = Netlist.add_node ~name:"G" net (Netlist.Func (vl_g ())) in
  let net, sink =
    Netlist.add_node ~name:"out" net (Netlist.Sink Netlist.Always_ready)
  in
  let net, _ = Netlist.connect ~width:8 net (src, Netlist.Out 0) (vl, Netlist.In 0) in
  let net, _ = Netlist.connect ~width:8 net (vl, Netlist.Out 0) (g, Netlist.In 0) in
  let net, _ = Netlist.connect ~width:8 net (g, Netlist.Out 0) (sink, Netlist.In 0) in
  Netlist.validate_exn net;
  { d_net = net; d_sink = sink; d_name = "vl-stalling" }

let vl_speculative_with ~recovery ~ops =
  replay_stage ~recovery ~name:"vl-speculative" ~source:(vl_stream ops)
    ~fast:(Alu.approx_func ()) ~slow:(Alu.exact_func ())
    ~err:(Alu.error_func ()) ~stage_f:(vl_g ()) ~width:8 ~out_width:8 ()

let vl_speculative ~ops = vl_speculative_with ~recovery:Netlist.Eb0 ~ops

let vl_reference ops =
  List.map
    (fun (op, a, b) -> Value.Int ((Alu.exact op a b + 1) land 0xFF))
    ops

(* ------------------------------------------------------------------ *)
(* §5.2 Resilient adder                                                 *)

type rs_op = {
  a : int64;
  b : int64;
  flip_a : int option;
  flip_b : int option;
}

let lcg s = ((s * 1103515245) + 12345) land 0x3FFFFFFF

let rs_ops ~error_rate_pct ~seed n =
  let s = ref (lcg (seed lxor 0x0F1E2D)) in
  let draw bound =
    s := lcg !s;
    !s mod bound
  in
  let word () =
    let hi = Int64.of_int (draw 0x40000000) in
    let lo = Int64.of_int (draw 0x40000000) in
    Int64.logor (Int64.shift_left hi 30) lo
  in
  List.init n (fun _ ->
      let a = word () and b = word () in
      let upset () = if draw 200 < error_rate_pct then Some (draw 72) else None in
      (* error_rate_pct is the chance that the *operation* sees an upset;
         split evenly between the two operands. *)
      match draw 2 with
      | 0 -> { a; b; flip_a = upset (); flip_b = None }
      | _ -> { a; b; flip_a = None; flip_b = upset () })

let corrupted op =
  let flip cw = function Some i -> Secded.flip_bit cw i | None -> cw in
  let cwa = flip (Secded.encode op.a) op.flip_a in
  let cwb = flip (Secded.encode op.b) op.flip_b in
  Value.Tuple
    [ Value.Tuple [ Value.Word cwa.Secded.data; Value.Int cwa.Secded.check ];
      Value.Tuple [ Value.Word cwb.Secded.data; Value.Int cwb.Secded.check ] ]

let rs_stream ops = Netlist.Stream (List.map corrupted ops)

let codeword_of v =
  match v with
  | Value.Tuple [ Value.Word data; Value.Int check ] ->
    { Secded.data; check }
  | Value.Unit | Value.Bool _ | Value.Int _ | Value.Word _ | Value.Str _
  | Value.Tuple _ ->
    invalid_arg "Examples: not a codeword"

let corrected_word v =
  let cw = codeword_of v in
  match Secded.decode cw with
  | Secded.No_error -> cw.Secded.data
  | Secded.Corrected d -> d
  | Secded.Double_error -> cw.Secded.data

(* One SECDED corrector per operand: a whole pipeline stage (§5.2). *)
let rs_correct_pair () =
  Func.make ~name:"secded2" ~arity:1 ~delay:7.0 ~area:640.0 (function
    | [ Value.Tuple [ va; vb ] ] ->
      Value.Tuple [ Value.Word (corrected_word va); Value.Word (corrected_word vb) ]
    | _ -> assert false)

(* Strip the check bits; the raw (possibly corrupted) operands feed the
   speculative addition. *)
let rs_raw_pair () =
  Func.make ~name:"raw2" ~arity:1 ~delay:0.5 ~area:4.0 (function
    | [ Value.Tuple [ va; vb ] ] ->
      Value.Tuple
        [ Value.Word (codeword_of va).Secded.data;
          Value.Word (codeword_of vb).Secded.data ]
    | _ -> assert false)

(* The error flag is a tap off the SECDED syndrome logic (no double
   counting of the corrector's area). *)
let rs_err () =
  Func.make ~name:"secded_err" ~arity:1 ~delay:7.0 ~area:24.0 (function
    | [ Value.Tuple [ va; vb ] ] ->
      let clean v = Secded.decode (codeword_of v) = Secded.No_error in
      Value.Int (if clean va && clean vb then 0 else 1)
    | _ -> assert false)

(* 64-bit prefix adder (§5.2 uses one). *)
let rs_adder () =
  Func.make ~name:"add64" ~arity:1 ~delay:8.0 ~area:900.0 (function
    | [ Value.Tuple [ Value.Word a; Value.Word b ] ] ->
      Value.Word (Int64.add a b)
    | _ -> assert false)

let rs_nonspeculative ~ops =
  let net = Netlist.empty in
  let net, src =
    Netlist.add_node ~name:"src" net (Netlist.Source (rs_stream ops))
  in
  let net, cor =
    Netlist.add_node ~name:"secded" net (Netlist.Func (rs_correct_pair ()))
  in
  let net, stage =
    Netlist.add_node ~name:"stage_eb" net
      (Netlist.Buffer { buffer = Netlist.Eb; init = [] })
  in
  let net, adder =
    Netlist.add_node ~name:"adder" net (Netlist.Func (rs_adder ()))
  in
  (* The adder occupies its own stage, so its result is registered before
     the next stage consumes it — this is the extra pipeline depth the
     speculative version removes. *)
  let net, out_eb =
    Netlist.add_node ~name:"out_eb" net
      (Netlist.Buffer { buffer = Netlist.Eb; init = [] })
  in
  let net, sink =
    Netlist.add_node ~name:"out" net (Netlist.Sink Netlist.Always_ready)
  in
  let net, _ =
    Netlist.connect ~width:144 net (src, Netlist.Out 0) (cor, Netlist.In 0)
  in
  let net, _ =
    Netlist.connect ~width:128 net (cor, Netlist.Out 0) (stage, Netlist.In 0)
  in
  let net, _ =
    Netlist.connect ~width:128 net (stage, Netlist.Out 0) (adder, Netlist.In 0)
  in
  let net, _ =
    Netlist.connect ~width:64 net (adder, Netlist.Out 0) (out_eb, Netlist.In 0)
  in
  let net, _ =
    Netlist.connect ~width:64 net (out_eb, Netlist.Out 0) (sink, Netlist.In 0)
  in
  Netlist.validate_exn net;
  { d_net = net; d_sink = sink; d_name = "rs-nonspeculative" }

let rs_speculative_with ~recovery ~ops =
  replay_stage ~recovery ~name:"rs-speculative" ~source:(rs_stream ops)
    ~fast:(rs_raw_pair ()) ~slow:(rs_correct_pair ()) ~err:(rs_err ())
    ~stage_f:(rs_adder ()) ~width:128 ~out_width:64 ()

let rs_speculative ~ops = rs_speculative_with ~recovery:Netlist.Eb0 ~ops

(* Maximum SECDED decode status over the two operands: 0 = clean,
   1 = single error (corrected), 2 = double error (detected but
   uncorrectable).  A tap off the same syndrome logic as [rs_err]. *)
let rs_severity () =
  Func.make ~name:"secded_sev" ~arity:1 ~delay:7.0 ~area:24.0 (function
    | [ Value.Tuple [ va; vb ] ] ->
      let sev v =
        match Secded.decode (codeword_of v) with
        | Secded.No_error -> 0
        | Secded.Corrected _ -> 1
        | Secded.Double_error -> 2
      in
      Value.Int (max (sev va) (sev vb))
    | _ -> assert false)

let rs_speculative_alarmed ~ops =
  let d, alarm =
    replay_stage_alarmed ~alarm:(rs_severity ())
      ~name:"rs-speculative-alarmed" ~source:(rs_stream ops)
      ~fast:(rs_raw_pair ()) ~slow:(rs_correct_pair ()) ~err:(rs_err ())
      ~stage_f:(rs_adder ()) ~width:128 ~out_width:64 ()
  in
  (d, Option.get alarm)

(* ------------------------------------------------------------------ *)
(* Sec. 1 motivation: a next-PC loop running a 7-instruction program     *)
(* with an inner branch (taken 3 of 4) and an outer branch (monotone).  *)
(* A token is the machine state (step, pc) encoded as step*64 + pc.     *)

type pc_loop = {
  pl_net : Netlist.t;
  pl_mux : Netlist.node_id;
  pl_sink : Netlist.node_id;
}

let pc_of v = v mod 64

let pl_step v = v / 64

let pl_encode ~step ~pc = (step * 64) + pc

let pl_is_branch pc = pc = 3 || pc = 6

let pl_target pc = if pc = 3 then 1 else 0

let pl_taken ~step ~pc =
  match pc with 3 -> step mod 4 <> 3 | 6 -> true | _ -> false

let pl_resolve =
  Func.make ~name:"resolve" ~arity:1 ~delay:6.0 ~area:150.0 (function
    | [ v ] ->
      let v = Value.to_int v in
      Value.Int
        (if pl_is_branch (pc_of v) && pl_taken ~step:(pl_step v) ~pc:(pc_of v)
         then 1
         else 0)
    | _ -> assert false)

let pl_nextpc =
  Func.make ~name:"nextpc" ~arity:1 ~delay:1.0 ~area:20.0 (function
    | [ v ] ->
      let v = Value.to_int v in
      Value.Int (pl_encode ~step:(pl_step v + 1) ~pc:(pc_of v + 1))
    | _ -> assert false)

let pl_tgt =
  Func.make ~name:"target" ~arity:1 ~delay:1.0 ~area:20.0 (function
    | [ v ] ->
      let v = Value.to_int v in
      Value.Int (pl_encode ~step:(pl_step v + 1) ~pc:(pl_target (pc_of v)))
    | _ -> assert false)

let pl_fetch =
  Func.make ~name:"fetch" ~arity:1 ~delay:5.0 ~area:120.0 (function
    | [ v ] -> v
    | _ -> assert false)

let pc_loop () =
  let net = Netlist.empty in
  let net, e =
    Netlist.add_node ~name:"PC" net
      (Netlist.Buffer { buffer = Netlist.Eb; init = [ Value.Int 0 ] })
  in
  let net, fk = Netlist.add_node ~name:"fork" net (Netlist.Fork 4) in
  let net, res = Netlist.add_node ~name:"resolve" net (Netlist.Func pl_resolve) in
  let net, inc = Netlist.add_node ~name:"nextpc" net (Netlist.Func pl_nextpc) in
  let net, tgt = Netlist.add_node ~name:"target" net (Netlist.Func pl_tgt) in
  let net, m =
    Netlist.add_node ~name:"mux" net (Netlist.Mux { ways = 2; early = false })
  in
  let net, f = Netlist.add_node ~name:"fetch" net (Netlist.Func pl_fetch) in
  let net, k =
    Netlist.add_node ~name:"commit" net (Netlist.Sink Netlist.Always_ready)
  in
  let c net a b = fst (Netlist.connect net a b) in
  let net = c net (e, Netlist.Out 0) (fk, Netlist.In 0) in
  let net = c net (fk, Netlist.Out 0) (res, Netlist.In 0) in
  let net = c net (fk, Netlist.Out 1) (inc, Netlist.In 0) in
  let net = c net (fk, Netlist.Out 2) (tgt, Netlist.In 0) in
  let net = c net (fk, Netlist.Out 3) (k, Netlist.In 0) in
  let net = c net (res, Netlist.Out 0) (m, Netlist.Sel) in
  let net = c net (inc, Netlist.Out 0) (m, Netlist.In 0) in
  let net = c net (tgt, Netlist.Out 0) (m, Netlist.In 1) in
  let net = c net (m, Netlist.Out 0) (f, Netlist.In 0) in
  let net = c net (f, Netlist.Out 0) (e, Netlist.In 0) in
  Netlist.validate_exn net;
  { pl_net = net; pl_mux = m; pl_sink = k }

(* Register the Sec. 5 blocks so saved designs can be reloaded. *)
let () =
  Library.register (vl_g ());
  Library.register (Alu.exact_func ());
  Library.register (Alu.approx_func ());
  Library.register (Alu.error_func ());
  Library.register (rs_correct_pair ());
  Library.register (rs_raw_pair ());
  Library.register (rs_err ());
  Library.register (rs_severity ());
  Library.register (rs_adder ());
  Library.register pl_resolve;
  Library.register pl_nextpc;
  Library.register pl_tgt;
  Library.register pl_fetch

let rs_reference ops =
  List.map (fun op -> Value.Word (Int64.add op.a op.b)) ops
