open Elastic_netlist
open Elastic_check

(* Certificate recording.  Every entry point appends its typed step
   AFTER the rewrite succeeded — prechecks raise Diagnostic.Reject
   before any mutation, so a rejected application leaves the builder
   exactly as it was. *)
let record cert ~before ~after kind =
  match cert with
  | None -> ()
  | Some b -> Cert.record b ~before ~after kind

(* The raw splice shared by the public entry point and the retimings
   (which record their own composite step instead). *)
let insert_buffer_raw net ~channel ~buffer ~init =
  let c = Netlist.channel net channel in
  let net, b =
    Netlist.add_node net (Netlist.Buffer { buffer; init })
  in
  let old_dst = c.Netlist.dst in
  let net = Netlist.set_dst net channel (b, Netlist.In 0) in
  let net, _ =
    Netlist.connect ~width:c.Netlist.width net (b, Netlist.Out 0)
      (old_dst.Netlist.ep_node, old_dst.Netlist.ep_port)
  in
  (net, b)

let insert_buffer ?cert net ~channel ~buffer ~init =
  match cert with
  | None -> insert_buffer_raw net ~channel ~buffer ~init
  | Some _ ->
    if init <> [] then
      invalid_arg
        "Transform.insert_buffer: inserting a token-holding buffer \
         changes the transfer streams; no flow-equivalence lemma covers \
         it, so it cannot be recorded in a certificate";
    (* Certified path: an empty EB is the bubble lemma; an empty EB0 is
       bubble insertion followed by buffer conversion, recorded as that
       two-step derivation (the node keeps the bubble's default name). *)
    let net1, b =
      insert_buffer_raw net ~channel ~buffer:Netlist.Eb ~init:[]
    in
    record cert ~before:net ~after:net1 (Cert.Bubble { channel });
    (match buffer with
     | Netlist.Eb -> (net1, b)
     | Netlist.Eb0 ->
       let net2 =
         Netlist.replace_kind net1 b
           (Netlist.Buffer { buffer = Netlist.Eb0; init = [] })
       in
       record cert ~before:net1 ~after:net2
         (Cert.Convert { node = b; buffer = Netlist.Eb0 });
       (net2, b))

let insert_bubble ?cert net ~channel =
  insert_buffer ?cert net ~channel ~buffer:Netlist.Eb ~init:[]

let insert_fifo ?cert net ~channel ~depth =
  Elastic_lint.Precheck.insert_fifo net ~depth;
  (* Each inserted buffer's fresh output channel carries the rest of the
     chain, so we keep splitting the channel we just created.  The whole
     chain is one certificate step (the FIFO-insertion lemma). *)
  let rec go net channel acc k =
    if k = 0 then (net, List.rev acc)
    else begin
      let net, b = insert_buffer_raw net ~channel ~buffer:Netlist.Eb ~init:[] in
      let next =
        match Netlist.channel_at net b (Netlist.Out 0) with
        | Some c -> c.Netlist.ch_id
        | None -> assert false
      in
      go net next (b :: acc) (k - 1)
    end
  in
  let net', ids = go net channel [] depth in
  record cert ~before:net ~after:net' (Cert.Fifo { channel; depth });
  (net', ids)

let buffer_kind_and_init net b =
  match (Netlist.node net b).Netlist.kind with
  | Netlist.Buffer { buffer; init } -> (buffer, init)
  | Netlist.Source _ | Netlist.Sink _ | Netlist.Func _ | Netlist.Fork _
  | Netlist.Mux _ | Netlist.Shared _ | Netlist.Varlat _ ->
    invalid_arg
      (Fmt.str "Transform: node %s is not a buffer"
         (Netlist.node net b).Netlist.name)

let single_channel net node port =
  match Netlist.channel_at net node port with
  | Some c -> c
  | None ->
    invalid_arg
      (Fmt.str "Transform: node %s has no channel at %a"
         (Netlist.node net node).Netlist.name Netlist.pp_port port)

let remove_buffer_raw net b =
  let in_ch = single_channel net b (Netlist.In 0) in
  let out_ch = single_channel net b (Netlist.Out 0) in
  let dst = out_ch.Netlist.dst in
  let net = Netlist.remove_channel net out_ch.Netlist.ch_id in
  let net =
    Netlist.set_dst net in_ch.Netlist.ch_id
      (dst.Netlist.ep_node, dst.Netlist.ep_port)
  in
  Netlist.remove_node net b

let remove_buffer ?cert net b =
  Elastic_lint.Precheck.remove_buffer net b;
  let net' = remove_buffer_raw net b in
  record cert ~before:net ~after:net' (Cert.Remove_buffer { node = b });
  net'

let convert_buffer ?cert net b buffer =
  Elastic_lint.Precheck.convert_buffer net b buffer;
  let _, init = buffer_kind_and_init net b in
  let net' = Netlist.replace_kind net b (Netlist.Buffer { buffer; init }) in
  record cert ~before:net ~after:net' (Cert.Convert { node = b; buffer });
  net'

let func_of net id =
  match (Netlist.node net id).Netlist.kind with
  | Netlist.Func f -> f
  | Netlist.Source _ | Netlist.Sink _ | Netlist.Buffer _ | Netlist.Fork _
  | Netlist.Mux _ | Netlist.Shared _ | Netlist.Varlat _ ->
    invalid_arg
      (Fmt.str "Transform: node %s is not a function block"
         (Netlist.node net id).Netlist.name)

let retime_forward ?cert net ~through =
  Elastic_lint.Precheck.retime_forward net ~through;
  let f = func_of net through in
  (* Every input must come from a buffer holding at least one token. *)
  let input_buffers =
    List.init f.Func.arity (fun i ->
        let c = single_channel net through (Netlist.In i) in
        let src = c.Netlist.src.Netlist.ep_node in
        let buffer, init = buffer_kind_and_init net src in
        (src, buffer, init))
  in
  let heads =
    List.map
      (fun (src, _, init) ->
         match init with
         | v :: _ -> v
         | [] ->
           invalid_arg
             (Fmt.str "Transform.retime_forward: buffer %s is empty"
                (Netlist.node net src).Netlist.name))
      input_buffers
  in
  let moved = Func.apply f heads in
  let net' =
    List.fold_left
      (fun net (src, buffer, init) ->
         Netlist.replace_kind net src
           (Netlist.Buffer { buffer; init = List.tl init }))
      net input_buffers
  in
  let out_ch = single_channel net' through (Netlist.Out 0) in
  let net', b =
    insert_buffer_raw net' ~channel:out_ch.Netlist.ch_id
      ~buffer:Netlist.Eb ~init:[ moved ]
  in
  record cert ~before:net ~after:net' (Cert.Retime_fwd { through });
  (net', b)

let retime_backward ?cert net ~through =
  Elastic_lint.Precheck.retime_backward net ~through;
  let f = func_of net through in
  let out_ch = single_channel net through (Netlist.Out 0) in
  let b = out_ch.Netlist.dst.Netlist.ep_node in
  let buffer, _ = buffer_kind_and_init net b in
  Elastic_lint.Precheck.remove_buffer net b;
  let net' = remove_buffer_raw net b in
  let net', ids =
    List.fold_left
      (fun (net, acc) i ->
         let c = single_channel net through (Netlist.In i) in
         let net, id =
           insert_buffer_raw net ~channel:c.Netlist.ch_id ~buffer ~init:[]
         in
         (net, id :: acc))
      (net', [])
      (List.init f.Func.arity (fun i -> i))
  in
  record cert ~before:net ~after:net' (Cert.Retime_bwd { through });
  (net', List.rev ids)

let mux_ways net mux =
  match (Netlist.node net mux).Netlist.kind with
  | Netlist.Mux { ways; early } -> (ways, early)
  | Netlist.Source _ | Netlist.Sink _ | Netlist.Buffer _ | Netlist.Func _
  | Netlist.Fork _ | Netlist.Shared _ | Netlist.Varlat _ ->
    invalid_arg
      (Fmt.str "Transform: node %s is not a multiplexor"
         (Netlist.node net mux).Netlist.name)

let shannon ?cert net ~mux =
  Elastic_lint.Precheck.shannon net ~mux;
  let ways, _ = mux_ways net mux in
  let out_ch = single_channel net mux (Netlist.Out 0) in
  let block = out_ch.Netlist.dst.Netlist.ep_node in
  let f = func_of net block in
  let block_out = single_channel net block (Netlist.Out 0) in
  (* Splice the block out of the multiplexor's output... *)
  let net' = Netlist.remove_channel net out_ch.Netlist.ch_id in
  let net' =
    Netlist.set_src net' block_out.Netlist.ch_id (mux, Netlist.Out 0)
  in
  let net' = Netlist.remove_node net' block in
  (* ...and duplicate it onto every data input. *)
  let base = (Netlist.node net' mux).Netlist.name in
  let net', copies =
    List.fold_left
      (fun (net, acc) i ->
         let d = single_channel net mux (Netlist.In i) in
         let net, fi =
           Netlist.add_node ~name:(Fmt.str "%s_%s%d" base f.Func.name i)
             net (Netlist.Func f)
         in
         let net = Netlist.set_dst net d.Netlist.ch_id (fi, Netlist.In 0) in
         let net, _ =
           Netlist.connect ~width:d.Netlist.width net (fi, Netlist.Out 0)
             (mux, Netlist.In i)
         in
         (net, fi :: acc))
      (net', [])
      (List.init ways (fun i -> i))
  in
  record cert ~before:net ~after:net' (Cert.Shannon { mux });
  (net', List.rev copies)

let early_evaluation ?cert net ~mux =
  Elastic_lint.Precheck.early_evaluation net ~mux;
  let ways, _ = mux_ways net mux in
  let net' = Netlist.replace_kind net mux (Netlist.Mux { ways; early = true }) in
  record cert ~before:net ~after:net' (Cert.Early_eval { mux });
  net'

let share ?cert net ~blocks ~sched =
  Elastic_lint.Precheck.share net ~blocks;
  let funcs = List.map (func_of net) blocks in
  let f = match funcs with f :: _ -> f | [] -> assert false in
  let ways = List.length blocks in
  let net', sh =
    Netlist.add_node net
      (Netlist.Shared { ways; f; sched; hinted = false })
  in
  let net' =
    List.fold_left
      (fun net (i, b) ->
         let in_ch = single_channel net b (Netlist.In 0) in
         let out_ch = single_channel net b (Netlist.Out 0) in
         let net =
           Netlist.set_dst net in_ch.Netlist.ch_id (sh, Netlist.In i)
         in
         let net =
           Netlist.set_src net out_ch.Netlist.ch_id (sh, Netlist.Out i)
         in
         Netlist.remove_node net b)
      net'
      (List.mapi (fun i b -> (i, b)) blocks)
  in
  record cert ~before:net ~after:net' (Cert.Share { blocks; sched });
  (net', sh)
