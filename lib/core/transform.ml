open Elastic_netlist

let insert_buffer net ~channel ~buffer ~init =
  let c = Netlist.channel net channel in
  let net, b =
    Netlist.add_node net (Netlist.Buffer { buffer; init })
  in
  let old_dst = c.Netlist.dst in
  let net = Netlist.set_dst net channel (b, Netlist.In 0) in
  let net, _ =
    Netlist.connect ~width:c.Netlist.width net (b, Netlist.Out 0)
      (old_dst.Netlist.ep_node, old_dst.Netlist.ep_port)
  in
  (net, b)

let insert_bubble net ~channel =
  insert_buffer net ~channel ~buffer:Netlist.Eb ~init:[]

let insert_fifo net ~channel ~depth =
  Elastic_lint.Precheck.insert_fifo net ~depth;
  (* Each inserted buffer's fresh output channel carries the rest of the
     chain, so we keep splitting the channel we just created. *)
  let rec go net channel acc k =
    if k = 0 then (net, List.rev acc)
    else begin
      let net, b = insert_bubble net ~channel in
      let next =
        match Netlist.channel_at net b (Netlist.Out 0) with
        | Some c -> c.Netlist.ch_id
        | None -> assert false
      in
      go net next (b :: acc) (k - 1)
    end
  in
  go net channel [] depth

let buffer_kind_and_init net b =
  match (Netlist.node net b).Netlist.kind with
  | Netlist.Buffer { buffer; init } -> (buffer, init)
  | Netlist.Source _ | Netlist.Sink _ | Netlist.Func _ | Netlist.Fork _
  | Netlist.Mux _ | Netlist.Shared _ | Netlist.Varlat _ ->
    invalid_arg
      (Fmt.str "Transform: node %s is not a buffer"
         (Netlist.node net b).Netlist.name)

let single_channel net node port =
  match Netlist.channel_at net node port with
  | Some c -> c
  | None ->
    invalid_arg
      (Fmt.str "Transform: node %s has no channel at %a"
         (Netlist.node net node).Netlist.name Netlist.pp_port port)

let remove_buffer net b =
  Elastic_lint.Precheck.remove_buffer net b;
  let in_ch = single_channel net b (Netlist.In 0) in
  let out_ch = single_channel net b (Netlist.Out 0) in
  let dst = out_ch.Netlist.dst in
  let net = Netlist.remove_channel net out_ch.Netlist.ch_id in
  let net =
    Netlist.set_dst net in_ch.Netlist.ch_id
      (dst.Netlist.ep_node, dst.Netlist.ep_port)
  in
  Netlist.remove_node net b

let convert_buffer net b buffer =
  Elastic_lint.Precheck.convert_buffer net b buffer;
  let _, init = buffer_kind_and_init net b in
  Netlist.replace_kind net b (Netlist.Buffer { buffer; init })

let func_of net id =
  match (Netlist.node net id).Netlist.kind with
  | Netlist.Func f -> f
  | Netlist.Source _ | Netlist.Sink _ | Netlist.Buffer _ | Netlist.Fork _
  | Netlist.Mux _ | Netlist.Shared _ | Netlist.Varlat _ ->
    invalid_arg
      (Fmt.str "Transform: node %s is not a function block"
         (Netlist.node net id).Netlist.name)

let retime_forward net ~through =
  Elastic_lint.Precheck.retime_forward net ~through;
  let f = func_of net through in
  (* Every input must come from a buffer holding at least one token. *)
  let input_buffers =
    List.init f.Func.arity (fun i ->
        let c = single_channel net through (Netlist.In i) in
        let src = c.Netlist.src.Netlist.ep_node in
        let buffer, init = buffer_kind_and_init net src in
        (src, buffer, init))
  in
  let heads =
    List.map
      (fun (src, _, init) ->
         match init with
         | v :: _ -> v
         | [] ->
           invalid_arg
             (Fmt.str "Transform.retime_forward: buffer %s is empty"
                (Netlist.node net src).Netlist.name))
      input_buffers
  in
  let moved = Func.apply f heads in
  let net =
    List.fold_left
      (fun net (src, buffer, init) ->
         Netlist.replace_kind net src
           (Netlist.Buffer { buffer; init = List.tl init }))
      net input_buffers
  in
  let out_ch = single_channel net through (Netlist.Out 0) in
  insert_buffer net ~channel:out_ch.Netlist.ch_id ~buffer:Netlist.Eb
    ~init:[ moved ]

let retime_backward net ~through =
  Elastic_lint.Precheck.retime_backward net ~through;
  let f = func_of net through in
  let out_ch = single_channel net through (Netlist.Out 0) in
  let b = out_ch.Netlist.dst.Netlist.ep_node in
  let buffer, _ = buffer_kind_and_init net b in
  let net = remove_buffer net b in
  let net, ids =
    List.fold_left
      (fun (net, acc) i ->
         let c = single_channel net through (Netlist.In i) in
         let net, id =
           insert_buffer net ~channel:c.Netlist.ch_id ~buffer ~init:[]
         in
         (net, id :: acc))
      (net, [])
      (List.init f.Func.arity (fun i -> i))
  in
  (net, List.rev ids)

let mux_ways net mux =
  match (Netlist.node net mux).Netlist.kind with
  | Netlist.Mux { ways; early } -> (ways, early)
  | Netlist.Source _ | Netlist.Sink _ | Netlist.Buffer _ | Netlist.Func _
  | Netlist.Fork _ | Netlist.Shared _ | Netlist.Varlat _ ->
    invalid_arg
      (Fmt.str "Transform: node %s is not a multiplexor"
         (Netlist.node net mux).Netlist.name)

let shannon net ~mux =
  Elastic_lint.Precheck.shannon net ~mux;
  let ways, _ = mux_ways net mux in
  let out_ch = single_channel net mux (Netlist.Out 0) in
  let block = out_ch.Netlist.dst.Netlist.ep_node in
  let f = func_of net block in
  let block_out = single_channel net block (Netlist.Out 0) in
  (* Splice the block out of the multiplexor's output... *)
  let net = Netlist.remove_channel net out_ch.Netlist.ch_id in
  let net =
    Netlist.set_src net block_out.Netlist.ch_id (mux, Netlist.Out 0)
  in
  let net = Netlist.remove_node net block in
  (* ...and duplicate it onto every data input. *)
  let base = (Netlist.node net mux).Netlist.name in
  let net, copies =
    List.fold_left
      (fun (net, acc) i ->
         let d = single_channel net mux (Netlist.In i) in
         let net, fi =
           Netlist.add_node ~name:(Fmt.str "%s_%s%d" base f.Func.name i)
             net (Netlist.Func f)
         in
         let net = Netlist.set_dst net d.Netlist.ch_id (fi, Netlist.In 0) in
         let net, _ =
           Netlist.connect ~width:d.Netlist.width net (fi, Netlist.Out 0)
             (mux, Netlist.In i)
         in
         (net, fi :: acc))
      (net, [])
      (List.init ways (fun i -> i))
  in
  (net, List.rev copies)

let early_evaluation net ~mux =
  Elastic_lint.Precheck.early_evaluation net ~mux;
  let ways, _ = mux_ways net mux in
  Netlist.replace_kind net mux (Netlist.Mux { ways; early = true })

let share net ~blocks ~sched =
  Elastic_lint.Precheck.share net ~blocks;
  let funcs = List.map (func_of net) blocks in
  let f = match funcs with f :: _ -> f | [] -> assert false in
  let ways = List.length blocks in
  let net, sh =
    Netlist.add_node net
      (Netlist.Shared { ways; f; sched; hinted = false })
  in
  let net =
    List.fold_left
      (fun net (i, b) ->
         let in_ch = single_channel net b (Netlist.In 0) in
         let out_ch = single_channel net b (Netlist.Out 0) in
         let net =
           Netlist.set_dst net in_ch.Netlist.ch_id (sh, Netlist.In i)
         in
         let net =
           Netlist.set_src net out_ch.Netlist.ch_id (sh, Netlist.Out i)
         in
         Netlist.remove_node net b)
      net
      (List.mapi (fun i b -> (i, b)) blocks)
  in
  (net, sh)
