open Elastic_sched
open Elastic_netlist
open Elastic_check

(** Builders for the paper's running example (Fig. 1) and the Table 1
    trace.

    The Fig. 1 circuit is a decision loop: an elastic buffer holds the
    loop token, block [G] computes the next select from it, the
    multiplexor picks one of two environment inputs and block [F]
    processes the choice back into the buffer.  Variants (b), (c) and (d)
    are derived from (a) {e by applying the library's transformations},
    exactly as §2 narrates. *)

type params = {
  sel : int array;  (** Select outcome per loop iteration (wraps). *)
  f_delay : float;  (** Delay of block F (on the critical cycle). *)
  f_area : float;
  g_delay : float;  (** Delay of block G (computes the select). *)
  g_area : float;
}

val default_params : params

type handles = {
  net : Netlist.t;
  mux : Netlist.node_id;
  eb : Netlist.node_id;  (** The loop buffer. *)
  sink : Netlist.node_id;  (** Observes the loop stream. *)
  shared : Netlist.node_id option;  (** Present in variant (d). *)
}

(** Fig. 1(a): the non-speculative system; critical cycle
    G -> mux -> F. *)
val fig1a : ?params:params -> unit -> handles

(** Fig. 1(b): bubble inserted in the critical cycle — better cycle time,
    throughput drops to 1/2.  With [?cert], the derivation from (a) is
    recorded for {!Elastic_check.Flow.verify}. *)
val fig1b : ?cert:Cert.builder -> ?params:params -> unit -> handles

(** Fig. 1(c): Shannon decomposition + early evaluation — optimal
    performance, duplicated logic. *)
val fig1c : ?cert:Cert.builder -> ?params:params -> unit -> handles

(** Fig. 1(d): variant (c) with the copies of F shared behind a
    speculation scheduler (default: a perfect oracle over [params.sel]).
    Equals [Speculation.speculate] applied to (a). *)
val fig1d :
  ?cert:Cert.builder -> ?params:params -> ?sched:Scheduler.spec -> unit ->
  handles

(** {1 Table 1} *)

type table1_handles = {
  t1_net : Netlist.t;
  fin0 : Netlist.channel_id;
  fin1 : Netlist.channel_id;
  fout0 : Netlist.channel_id;
  fout1 : Netlist.channel_id;
  sel_ch : Netlist.channel_id;
  ebin : Netlist.channel_id;
  t1_shared : Netlist.node_id;
  t1_sink : Netlist.node_id;
}

(** The exact system traced in Table 1: Fig. 1(d) with streams A..G, a
    toggle scheduler and select outcomes 0,1,1,0,0. *)
val table1 : unit -> table1_handles

type table1_row = {
  label : string;
  cells : string list;  (** One cell per cycle. *)
}

(** [table1_trace ?cycles h] simulates and renders the rows exactly as the
    paper prints them: a letter for a valid token, ['-'] for an anti-token
    in the channel, ['*'] for a bubble. *)
val table1_trace : ?cycles:int -> table1_handles -> table1_row list

val pp_table1 : Format.formatter -> table1_row list -> unit
