open Elastic_datapath
open Elastic_netlist
open Elastic_check

type chain = {
  c_name : string;
  c_describe : string;
  c_source : Netlist.t;
  c_derived : Netlist.t;
  c_cert : Cert.t;
}

let fig_chain ~name ~describe build =
  let src = (Figures.fig1a ()).Figures.net in
  let cert = Cert.create () in
  let h = build ~cert in
  { c_name = name; c_describe = describe; c_source = src;
    c_derived = h.Figures.net; c_cert = Cert.certificate cert }

(* The slack chains pipeline the sink feed of the E5/E6 speculative
   designs: extra {e empty} buffering on the output channel is flow
   preserving (bubble/FIFO lemmas) and the freshly inserted stage is
   then converted to the fast Eb0 implementation of §4.3.  Note the
   rewrites only ever touch buffers the chain itself inserted — the
   recovery buffers inside the speculative stage must stay Eb0, since
   an Eb there makes returning anti-tokens crawl (lint W104) and the
   verifier's E405 invariant would void the step's lemma. *)
let sink_feed (d : Examples.design) =
  match Netlist.channel_at d.Examples.d_net d.Examples.d_sink (Netlist.In 0)
  with
  | Some ch -> ch.Netlist.ch_id
  | None -> invalid_arg "Derivations: speculative design has no sink feed"

let vl_slack_chain ~name ~describe (d : Examples.design) =
  let cert = Cert.create () in
  let net, stages =
    Transform.insert_fifo ~cert d.Examples.d_net ~channel:(sink_feed d)
      ~depth:2
  in
  let last =
    match List.rev stages with
    | b :: _ -> b
    | [] -> invalid_arg "Derivations: empty FIFO"
  in
  let net = Transform.convert_buffer ~cert net last Netlist.Eb0 in
  { c_name = name; c_describe = describe; c_source = d.Examples.d_net;
    c_derived = net; c_cert = Cert.certificate cert }

let rs_slack_chain ~name ~describe (d : Examples.design) =
  let cert = Cert.create () in
  let net, _b =
    Transform.insert_buffer ~cert d.Examples.d_net ~channel:(sink_feed d)
      ~buffer:Netlist.Eb0 ~init:[]
  in
  { c_name = name; c_describe = describe; c_source = d.Examples.d_net;
    c_derived = net; c_cert = Cert.certificate cert }

let default_ops = 12

let all ?(ops = default_ops) () =
  [ fig_chain ~name:"fig1b"
      ~describe:
        "Fig. 1(a) -> 1(b): bubble inserted in the critical cycle"
      (fun ~cert -> Figures.fig1b ~cert ());
    fig_chain ~name:"fig1c"
      ~describe:
        "Fig. 1(a) -> 1(c): Shannon decomposition + early evaluation"
      (fun ~cert -> Figures.fig1c ~cert ());
    fig_chain ~name:"fig1d"
      ~describe:
        "Fig. 1(a) -> 1(d): the full speculation recipe (shannon, \
         early-eval, share)"
      (fun ~cert -> Figures.fig1d ~cert ());
    vl_slack_chain ~name:"vl-slack"
      ~describe:
        "E5 variable-latency ALU: depth-2 FIFO on the sink feed, last \
         stage converted to the fast Eb0 implementation"
      (Examples.vl_speculative
         ~ops:(Alu.operands ~error_rate_pct:25 ~seed:5 ops));
    rs_slack_chain ~name:"rs-slack"
      ~describe:
        "E6 SECDED replay stage: empty Eb0 stage inserted on the sink \
         feed (recorded as bubble insertion + conversion)"
      (Examples.rs_speculative
         ~ops:(Examples.rs_ops ~error_rate_pct:25 ~seed:5 ops)) ]

let find ?ops name =
  List.find_opt (fun c -> String.equal c.c_name name) (all ?ops ())

let verify (c : chain) =
  Flow.verify ~design:c.c_name ~source:c.c_source ~derived:c.c_derived
    c.c_cert
