open Elastic_netlist

(** Command interpreter of the design-exploration shell (§5).

    The paper's toolkit lets the user apply correct-by-construction
    transformations "under the user guidance in the form of command
    scripts within an interactive shell", visualize the graph, undo and
    redo, export Verilog/SMV models and report throughput and cycle time.
    This module is that interpreter; [bin/elastic_shell] wraps it in a
    REPL.  Type [help] for the command list. *)

type session

val create : unit -> session

(** [execute s line] parses and runs one command.  [Ok output] is the text
    to display; [Error message] reports a parse or application failure
    (the design state is unchanged on error).  Never raises: exceptions
    escaping a command — including [Engine.Simulation_error] — are
    rendered into the [Error] message. *)
val execute : session -> string -> (string, string) result

(** Run a whole script.  By default it stops at the first error, with
    the error message prefixed by the 1-based line number of the
    offending command.  After an [on-error continue] directive in the
    script, failing lines are instead reported inline in the output
    (with the same line-number provenance, prefixed ["error:"]) and
    execution continues; [on-error abort] restores the default. *)
val run_script : session -> string list -> (string list, string) result

(** The current design (for tests and embedding). *)
val current : session -> Netlist.t option

val help : string

(** Every first word the interpreter dispatches on, in help order.  The
    help-coverage test checks each appears in {!help} and is accepted by
    {!execute} (i.e. never answers "unknown command"), so the command
    surface and the help text cannot drift apart. *)
val commands : string list
