open Elastic_kernel
open Elastic_sched
open Elastic_netlist

type params = {
  sel : int array;
  f_delay : float;
  f_area : float;
  g_delay : float;
  g_area : float;
}

let default_params =
  { sel = [| 0; 1; 1; 0; 1; 0; 0; 1; 1; 0 |]; f_delay = 5.0; f_area = 80.0;
    g_delay = 4.0; g_area = 60.0 }

type handles = {
  net : Netlist.t;
  mux : Netlist.node_id;
  eb : Netlist.node_id;
  sink : Netlist.node_id;
  shared : Netlist.node_id option;
}

(* Both inputs count in lockstep (one even, one odd), so the loop value v
   encodes the iteration index as [v asr 1] whichever side was selected;
   G maps it to the next iteration's select.  The initial loop token -2
   makes G yield sel.(0) for the first fire. *)
let g_func p =
  let n = Array.length p.sel in
  Func.make ~name:"G" ~arity:1 ~delay:p.g_delay ~area:p.g_area (function
    | [ v ] ->
      let i = (Value.to_int v asr 1) + 1 in
      Value.Int p.sel.(((i mod n) + n) mod n)
    | _ -> assert false)

let f_func p =
  Func.make ~name:"F" ~arity:1 ~delay:p.f_delay ~area:p.f_area (function
    | [ v ] -> v
    | _ -> assert false)

let fig1a ?(params = default_params) () =
  let net = Netlist.empty in
  let net, in0 =
    Netlist.add_node ~name:"in0" net
      (Netlist.Source (Netlist.Counter { start = 0; step = 2 }))
  in
  let net, in1 =
    Netlist.add_node ~name:"in1" net
      (Netlist.Source (Netlist.Counter { start = 1; step = 2 }))
  in
  let net, mux =
    Netlist.add_node ~name:"mux" net
      (Netlist.Mux { ways = 2; early = false })
  in
  let net, f =
    Netlist.add_node ~name:"F" net (Netlist.Func (f_func params))
  in
  let net, eb =
    Netlist.add_node ~name:"EB" net
      (Netlist.Buffer { buffer = Netlist.Eb; init = [ Value.Int (-2) ] })
  in
  let net, fork =
    Netlist.add_node ~name:"loop_fork" net (Netlist.Fork 2)
  in
  let net, g =
    Netlist.add_node ~name:"G" net (Netlist.Func (g_func params))
  in
  let net, sink =
    Netlist.add_node ~name:"out" net (Netlist.Sink Netlist.Always_ready)
  in
  let net, _ = Netlist.connect net (in0, Netlist.Out 0) (mux, Netlist.In 0) in
  let net, _ = Netlist.connect net (in1, Netlist.Out 0) (mux, Netlist.In 1) in
  let net, _ = Netlist.connect net (mux, Netlist.Out 0) (f, Netlist.In 0) in
  let net, _ = Netlist.connect net (f, Netlist.Out 0) (eb, Netlist.In 0) in
  let net, _ = Netlist.connect net (eb, Netlist.Out 0) (fork, Netlist.In 0) in
  let net, _ = Netlist.connect net (fork, Netlist.Out 0) (g, Netlist.In 0) in
  let net, _ = Netlist.connect net (g, Netlist.Out 0) (mux, Netlist.Sel) in
  let net, _ =
    Netlist.connect net (fork, Netlist.Out 1) (sink, Netlist.In 0)
  in
  Netlist.validate_exn net;
  { net; mux; eb; sink; shared = None }

let fig1b ?cert ?params () =
  let h = fig1a ?params () in
  (* Insert the bubble in the critical cycle, on the mux -> F channel. *)
  let f =
    match Netlist.find_node h.net "F" with
    | Some n -> n.Netlist.id
    | None -> assert false
  in
  let c =
    match Netlist.channel_at h.net f (Netlist.In 0) with
    | Some c -> c.Netlist.ch_id
    | None -> assert false
  in
  let net, _ = Transform.insert_bubble ?cert h.net ~channel:c in
  Netlist.validate_exn net;
  { h with net }

let fig1c ?cert ?params () =
  let h = fig1a ?params () in
  let net, _copies = Transform.shannon ?cert h.net ~mux:h.mux in
  let net = Transform.early_evaluation ?cert net ~mux:h.mux in
  Netlist.validate_exn net;
  { h with net }

let fig1d ?cert ?(params = default_params) ?sched () =
  let h = fig1a ~params () in
  let sched =
    match sched with
    | Some s -> s
    | None ->
      Scheduler.Noisy_oracle { sel = params.sel; accuracy_pct = 100; seed = 1 }
  in
  let r = Speculation.speculate ?cert h.net ~mux:h.mux ~sched in
  { h with net = r.Speculation.net; shared = Some r.Speculation.shared }

(* ------------------------------------------------------------------ *)
(* Table 1                                                              *)

type table1_handles = {
  t1_net : Netlist.t;
  fin0 : Netlist.channel_id;
  fin1 : Netlist.channel_id;
  fout0 : Netlist.channel_id;
  fout1 : Netlist.channel_id;
  sel_ch : Netlist.channel_id;
  ebin : Netlist.channel_id;
  t1_shared : Netlist.node_id;
  t1_sink : Netlist.node_id;
}

(* Select outcome after each delivered token: the trace fires A(0), B(1),
   D(1), E(0), F(0), so G(A)=1, G(B)=1, G(D)=0, G(E)=0; the initial loop
   token yields the first select 0. *)
let table1_g =
  Func.make ~name:"G_table1" ~arity:1 ~delay:4.0 ~area:60.0 (function
    | [ Value.Str "A" ] -> Value.Int 1
    | [ Value.Str "B" ] -> Value.Int 1
    | [ Value.Str ("D" | "E" | "F") ] -> Value.Int 0
    | [ _ ] -> Value.Int 0
    | _ -> assert false)

let table1 () =
  let str s = Value.Str s in
  let net = Netlist.empty in
  (* Unnamed tokens x0/x1/x2 are the ones the paper's trace shows only as
     anti-token cancellations. *)
  let net, in0 =
    Netlist.add_node ~name:"in0" net
      (Netlist.Source
         (Netlist.Stream [ str "A"; str "x0"; str "C"; str "E"; str "F" ]))
  in
  let net, in1 =
    Netlist.add_node ~name:"in1" net
      (Netlist.Source
         (Netlist.Stream [ str "x1"; str "B"; str "D"; str "x2"; str "G" ]))
  in
  let f = Func.make ~name:"F" ~arity:1 ~delay:5.0 ~area:80.0 (function
      | [ v ] -> v
      | _ -> assert false)
  in
  let net, sh =
    Netlist.add_node ~name:"sharedF" net
      (Netlist.Shared
         { ways = 2; f; sched = Scheduler.Toggle; hinted = false })
  in
  let net, mux =
    Netlist.add_node ~name:"mux" net (Netlist.Mux { ways = 2; early = true })
  in
  let net, eb =
    Netlist.add_node ~name:"EB" net
      (Netlist.Buffer { buffer = Netlist.Eb; init = [ str "t0" ] })
  in
  let net, fork =
    Netlist.add_node ~name:"loop_fork" net (Netlist.Fork 2)
  in
  let net, g = Netlist.add_node ~name:"G" net (Netlist.Func table1_g) in
  let net, sink =
    Netlist.add_node ~name:"out" net (Netlist.Sink Netlist.Always_ready)
  in
  let net, fin0 = Netlist.connect net (in0, Netlist.Out 0) (sh, Netlist.In 0) in
  let net, fin1 = Netlist.connect net (in1, Netlist.Out 0) (sh, Netlist.In 1) in
  let net, fout0 =
    Netlist.connect net (sh, Netlist.Out 0) (mux, Netlist.In 0)
  in
  let net, fout1 =
    Netlist.connect net (sh, Netlist.Out 1) (mux, Netlist.In 1)
  in
  let net, ebin = Netlist.connect net (mux, Netlist.Out 0) (eb, Netlist.In 0) in
  let net, _ = Netlist.connect net (eb, Netlist.Out 0) (fork, Netlist.In 0) in
  let net, _ = Netlist.connect net (fork, Netlist.Out 0) (g, Netlist.In 0) in
  let net, sel_ch = Netlist.connect net (g, Netlist.Out 0) (mux, Netlist.Sel) in
  let net, _ =
    Netlist.connect net (fork, Netlist.Out 1) (sink, Netlist.In 0)
  in
  Netlist.validate_exn net;
  { t1_net = net; fin0; fin1; fout0; fout1; sel_ch; ebin; t1_shared = sh;
    t1_sink = sink }

type table1_row = { label : string; cells : string list }

(* Make the figure blocks loadable from serialized netlists (Serial);
   the evaluation behavior is that of the default parameters. *)
let () =
  Library.register (f_func default_params);
  Library.register (g_func default_params);
  Library.register table1_g

(* Render a channel state the way Table 1 prints it. *)
let cell (s : Signal.t) =
  if s.Signal.v_minus then "-"
  else if s.Signal.v_plus then
    match s.Signal.data with
    | Some (Value.Str x) -> x
    | Some v -> Value.to_string v
    | None -> "?"
  else "*"

let sel_cell (s : Signal.t) =
  if s.Signal.v_plus then
    match s.Signal.data with Some v -> Value.to_string v | None -> "?"
  else "*"

let table1_trace ?(cycles = 7) h =
  let eng = Elastic_sim.Engine.create h.t1_net in
  let sched =
    match Elastic_sim.Engine.schedulers eng with
    | [ (_, s) ] -> s
    | _ -> assert false
  in
  let columns = ref [] in
  for _ = 1 to cycles do
    let predicted = Scheduler.predict sched in
    Elastic_sim.Engine.step eng;
    let sig_of c = Elastic_sim.Engine.signal eng c in
    columns :=
      [ cell (sig_of h.fin0); cell (sig_of h.fout0); cell (sig_of h.fin1);
        cell (sig_of h.fout1); sel_cell (sig_of h.sel_ch);
        string_of_int predicted; cell (sig_of h.ebin) ]
      :: !columns
  done;
  let columns = List.rev !columns in
  let labels =
    [ "Fin0"; "Fout0"; "Fin1"; "Fout1"; "Sel"; "Sched"; "EBin" ]
  in
  List.mapi
    (fun i label -> { label; cells = List.map (fun c -> List.nth c i) columns })
    labels

let pp_table1 ppf rows =
  let cycles = match rows with r :: _ -> List.length r.cells | [] -> 0 in
  Fmt.pf ppf "%-6s" "Cycle";
  for c = 0 to cycles - 1 do
    Fmt.pf ppf "%3d" c
  done;
  Fmt.pf ppf "@.";
  List.iter
    (fun r ->
       Fmt.pf ppf "%-6s" r.label;
       List.iter (fun c -> Fmt.pf ppf "%3s" c) r.cells;
       Fmt.pf ppf "@.")
    rows
