open Elastic_netlist
open Elastic_check

(** The repo's named certified derivations: each bundled derived design
    paired with its source, plus the certificate recorded while the
    transformations built it.  These are what [shell prove] and the CI
    proof gate check — entirely statically, via
    {!Elastic_check.Flow.verify}; no engine is created. *)

type chain = {
  c_name : string;  (** e.g. ["fig1d"], ["vl-slack"]. *)
  c_describe : string;
  c_source : Netlist.t;
  c_derived : Netlist.t;
      (** For the figure chains, built independently of the certificate
          (directly by the figure builders), so verification also pins
          the builders to the recorded derivation.  The E5/E6 slack
          chains derive it by certified transformation of the source. *)
  c_cert : Cert.t;
}

(** Workload length used by the E5/E6 chains when [?ops] is omitted;
    kept small so the three-way agreement harness can afford exhaustive
    exploration of the same designs. *)
val default_ops : int

(** All five chains: [fig1b], [fig1c], [fig1d] (the Fig. 1 derivation
    steps of §2) and [vl-slack], [rs-slack] (the §5 designs with extra
    certified buffering on the sink feed, the fresh stage converted to
    the Eb0 implementation of §4.3). *)
val all : ?ops:int -> unit -> chain list

val find : ?ops:int -> string -> chain option

(** [verify c] = [Flow.verify ~design:c.c_name ~source:c.c_source
    ~derived:c.c_derived c.c_cert]. *)
val verify : chain -> (Flow.proof, Diagnostic.t) result
