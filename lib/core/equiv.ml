open Elastic_kernel
open Elastic_netlist
open Elastic_sim

type report = {
  cycles : int;
  matched_sinks : string list;
  transfers : (string * int * int) list;
}

let sinks net =
  List.filter_map
    (fun (n : Netlist.node) ->
       match n.Netlist.kind with
       | Netlist.Sink _ -> Some (n.Netlist.name, n.Netlist.id)
       | Netlist.Source _ | Netlist.Buffer _ | Netlist.Func _
       | Netlist.Fork _ | Netlist.Mux _ | Netlist.Shared _
       | Netlist.Varlat _ -> None)
    (Netlist.nodes net)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let check ?(cycles = 300) a b =
  let sa = sinks a and sb = sinks b in
  if List.map fst sa <> List.map fst sb then
    Error
      (Fmt.str "sink sets differ: [%a] vs [%a]"
         Fmt.(list ~sep:comma string)
         (List.map fst sa)
         Fmt.(list ~sep:comma string)
         (List.map fst sb))
  else begin
    let ea = Engine.create a and eb = Engine.create b in
    Engine.run ea cycles;
    Engine.run eb cycles;
    let protocol_problems e tag =
      match Engine.violations e with
      | [] -> None
      | (ch, v) :: _ ->
        Some
          (Fmt.str "%s: protocol violation on %s: %a" tag ch
             Protocol.pp_violation v)
    in
    match protocol_problems ea "left", protocol_problems eb "right" with
    | Some m, _ | _, Some m -> Error m
    | None, None ->
      let rec compare_sinks acc = function
        | [] ->
          let transfers = List.rev acc in
          (* A comparison that observed no traffic proves nothing: empty
             streams are trivially prefix-equivalent.  Refuse to report
             equivalence vacuously. *)
          if
            transfers = []
            || List.for_all (fun (_, na, nb) -> na = 0 && nb = 0) transfers
          then
            Error
              (Fmt.str
                 "vacuous check: %s in %d cycles — the runs prove \
                  nothing (stalled designs are \"equivalent\" to \
                  everything); extend the run or fix the designs"
                 (if transfers = [] then "no sinks matched"
                  else "no sink transferred a single token")
                 cycles)
          else
            Ok { cycles; matched_sinks = List.map fst sa; transfers }
        | ((name, ida), (_, idb)) :: rest ->
          let ta = Engine.sink_stream ea ida in
          let tb = Engine.sink_stream eb idb in
          if Transfer.prefix_equivalent ta tb then
            compare_sinks
              ((name, Transfer.length ta, Transfer.length tb) :: acc)
              rest
          else
            Error
              (Fmt.str
                 "sink %s: streams diverge@.  left:  %a@.  right: %a" name
                 Transfer.pp ta Transfer.pp tb)
      in
      compare_sinks [] (List.combine sa sb)
  end

let check_exn ?cycles a b =
  match check ?cycles a b with
  | Ok r -> r
  | Error m -> failwith ("Equiv.check: " ^ m)
