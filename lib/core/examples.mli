open Elastic_kernel
open Elastic_netlist
open Elastic_datapath

(** The paper's two worked designs (§5), each in a non-speculative and a
    speculative version built from the library's primitives.

    Both speculative versions share the same replay template: the fast
    (speculative) result enters channel 0 of a shared module, the slow
    (authoritative) result enters channel 1 through an empty EB, and the
    error detector drives both the early-evaluation multiplexor's select
    and the shared module's scheduler hint.  A correct speculation costs
    nothing; a misprediction replays through channel 1, losing exactly one
    cycle. *)

type design = {
  d_net : Netlist.t;
  d_sink : Netlist.node_id;
  d_name : string;
}

(** {1 §5.1 — Variable-latency ALU (Fig. 6)} *)

(** Fig. 6(a): the stalling unit — approximate and exact ALU with the
    error detector wired into the stage controller. *)
val vl_stalling : ops:(Alu.op * int * int) list -> design

(** Fig. 6(b): speculation with replay; the critical path no longer runs
    through the error detector and the elastic controller. *)
val vl_speculative : ops:(Alu.op * int * int) list -> design

(** Like {!vl_speculative} but choosing the recovery-buffer
    implementation: with plain [Eb] buffers the anti-tokens of correct
    predictions crawl back one cycle per buffer and throughput drops below
    1 — the bottleneck §4.1 describes and the Fig. 5 EB (§4.3) removes. *)
val vl_speculative_with :
  recovery:Netlist.buffer_kind -> ops:(Alu.op * int * int) list -> design

(** Golden results: [G (exact op)] for each operation. *)
val vl_reference : (Alu.op * int * int) list -> Value.t list

(** {1 §5.2 — Resilient (SECDED-protected) adder (Fig. 7)} *)

type rs_op = {
  a : int64;
  b : int64;
  flip_a : int option;  (** Codeword bit of [a] flipped in flight. *)
  flip_b : int option;
}

(** Workload with single-bit upsets at approximately the given rate. *)
val rs_ops : error_rate_pct:int -> seed:int -> int -> rs_op list

(** Fig. 7(a): SECDED correction as an extra pipeline stage before the
    adder — one cycle deeper, error-rate independent. *)
val rs_nonspeculative : ops:rs_op list -> design

(** Fig. 7(b): the adder starts on unchecked operands; on a detected
    error the addition replays with the corrected values. *)
val rs_speculative : ops:rs_op list -> design

(** Like {!rs_speculative} but choosing the recovery-buffer
    implementation ([Eb0] is the default; with plain [Eb] the returning
    anti-tokens crawl — see {!vl_speculative_with} and lint W104). *)
val rs_speculative_with :
  recovery:Netlist.buffer_kind -> ops:rs_op list -> design

(** {!rs_speculative} plus an error-severity tap: a fourth fork way feeds
    [max] of the two operands' SECDED decode status (0 = clean,
    1 = corrected, 2 = double error detected) into a dedicated "alarm"
    sink, whose node id is returned.  Fault campaigns treat values [>= 2]
    on that sink as detection (see [Elastic_fault.Recovery]). *)
val rs_speculative_alarmed :
  ops:rs_op list -> design * Netlist.node_id

(** Golden sums (errors corrected). *)
val rs_reference : rs_op list -> Value.t list

(** {1 §1 motivation — branch speculation on a next-PC loop}

    A small program with two backward branches of different biases runs
    on an elastic next-PC loop; applying the recipe to the fetch block
    yields the branch-prediction structure of the paper's introduction.
    Used by [examples/processor_pipeline.ml] and the A3 bench section. *)

type pc_loop = {
  pl_net : Netlist.t;
  pl_mux : Netlist.node_id;  (** The next-PC multiplexor to speculate on. *)
  pl_sink : Netlist.node_id;  (** The committed instruction stream. *)
}

val pc_loop : unit -> pc_loop

(** Program counter / iteration step of a committed loop token. *)
val pc_of : int -> int
