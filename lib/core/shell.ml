open Elastic_kernel
open Elastic_sched
open Elastic_netlist

type session = {
  mutable net : Netlist.t option;
  mutable design : string;
      (* Name of the loaded design, for lint report headers. *)
  mutable undo : Netlist.t list;
  mutable redo : Netlist.t list;
  mutable trace_capacity : int option;
      (* [Some capacity] while [trace on] is in effect. *)
  mutable tracer : Elastic_trace.Tracer.t option;
      (* Tracer of the most recent traced simulation command, kept for
         [trace dump] and for enriching simulation-error reports. *)
  mutable on_error_continue : bool;
      (* Script mode: keep executing after a failing line. *)
  mutable pending_resume : Elastic_runner.Checkpoint.t option;
      (* Set by [runner resume] for the campaign command it re-executes;
         consumed by the next [campaign --par] run. *)
  mutable eval_mode : Elastic_sim.Engine.eval_mode option;
      (* [mode] command override for simulation engines; [None] defers
         to the engine's default (the ELASTIC_EVAL_MODE environment). *)
  mutable spans_capacity : int option;
      (* [Some per-worker ring capacity] while [spans on] is in effect:
         the next [campaign --par] records a span ledger. *)
  mutable collector : Elastic_obs.Collector.t option;
      (* Span ledger of the most recent instrumented campaign, kept for
         [spans dump] and the export commands. *)
  mutable telemetry : Elastic_telemetry.Telemetry.t option;
      (* Live telemetry hub while [serve] is in effect: campaigns
         attach their progress plane to it so /metrics, /status and
         /healthz track the run as it happens. *)
}

let create () =
  { net = None; design = "netlist"; undo = []; redo = [];
    trace_capacity = None; tracer = None; on_error_continue = false;
    pending_resume = None; eval_mode = None; spans_capacity = None;
    collector = None; telemetry = None }

let current s = s.net

let help =
  {|Commands (the paper's exploration toolkit):
  load <design>            load a predefined design:
                           fig1a fig1b fig1c fig1d table1
                           vl-stalling vl-speculative rs-nonspec rs-spec
                           rs-alarmed
  show                     print nodes and channels
  candidates               list speculation candidates (critical cycles
                           through a multiplexor select)
  bubble <channel>         insert an empty EB on a channel
  buffer <channel> eb|eb0  insert a buffer of the given kind
  remove-buffer <node>     splice an empty buffer out
  convert <node> eb|eb0    change a buffer implementation (Fig. 5)
  fifo <channel> <depth>   insert a chain of empty EBs
  retime-fwd <node>        move input-buffer tokens across a block
  retime-bwd <node>        move an empty output buffer to the inputs
  shannon <mux>            Shannon decomposition of the block after <mux>
  early <mux>              switch <mux> to early evaluation
  share <n1> <n2> [sched]  share two identical blocks (sched: sticky,
                           toggle, two-bit, round-robin, static0, static1)
  speculate [mux] [sched]  the full recipe of Section 4 (steps 2-4)
  save <file> / open <file>  netlist files (.enl); custom blocks must be
                           registered with Library.register before open
  throughput [cycles]      simulate and report per-sink throughput
  stats [cycles]           per-channel utilization and stall ratios
  trace [cycles]           Table-1-style trace of every channel
  trace on [capacity]      record typed events (transfers, stalls, anti-
                           tokens, predictions, squashes, replays) during
                           subsequent simulation commands
  trace off                stop recording (the last trace stays dumpable)
  trace dump [n]           print the last n recorded events
  vcd <file> [cycles]      simulate and write a VCD waveform (handshake
                           wires + channel state + data, GTKWave-ready)
  timeline [cycles]        per-scheduler speculation timeline: accuracy,
                           squash-penalty distribution, commit intervals
  attribute [cycles]       simulate, walk the backpressure chain to the
                           bottleneck channel, and cross-check it against
                           the marked-graph critical cycle
  profile [cycles]         evaluation schedule and per-node settle cost
                           (fresh engine per call: the report covers this
                           invocation only, not previous runs)
  metrics [cycles]         simulate and print the metrics registry in
                           Prometheus text-exposition format (counters,
                           gauges, histograms over engine / channels /
                           schedulers / faults)
  metrics prom <file> [cycles]   write the Prometheus snapshot to a file
  metrics jsonl <file> [cycles] [window]  windowed JSONL time series
                           (one cumulative snapshot line per window)
  watch [cycles] [every]   live dashboard: simulate and render a frame
                           every [every] cycles (throughput, prediction
                           accuracy, replay penalties, stalls, occupancy)
  mode [levelized|reference|arena]
                           show or pick the evaluation backend used by
                           simulation commands (default: levelized, or
                           the ELASTIC_EVAL_MODE environment variable)
  cycletime                static cycle-time analysis
  area                     gate-equivalent area
  bound                    marked-graph throughput bound
  critical                 critical cycle of the marked graph
  verify                   exhaustive state exploration (protocol,
                           deadlock, starvation)
  prove [chain]            statically check the bundled certificate
                           chains (fig1b fig1c fig1d vl-slack
                           rs-slack): re-validate every recorded
                           step's side conditions and replay it on the
                           channel graph — zero engine cycles; E4xx
                           diagnostics name the first failing step
  prove jsonl <file>       write every chain's proof as JSONL
                           (schema elastic-speculation/proof/v1)
  equiv <design> [cycles]  co-simulate the loaded netlist against a
                           predefined design and compare sink streams
                           (transfer equivalence, Section 3.1)
  equiv <design> --static  static mode instead: normalize both netlists
                           by confluent empty-buffer removal and compare
                           canonical forms (decides buffer-insertion
                           differences without simulating)
  lint                     static analysis: structural, SELF-invariant
                           and speculation rules (E/W/I codes); fails on
                           error findings (script exit code 1)
  lint <code|slug>         run a single rule (e.g. lint E102, lint
                           comb-cycle)
  lint --fix               apply the machine-applicable fix-its from the
                           report (insert bubble, convert buffer, seed a
                           token); undoable
  lint jsonl <file>        write the report as JSONL
                           (schema elastic-speculation/lint/v1)
  inject <ch> flip <cycle> <bit>       single fault-injection experiments:
  inject <ch> drop|dup|glitch <cycle>  run a faulted and a clean engine in
  inject <ch> stall <cycle> [dur]      lockstep and classify the outcome
  inject <node> mispredict <cycle> <way>
  campaign flips <ch> <n> <seed> [cycles]  seeded single-bit-flip campaign
  campaign storm <n> <seed> [cycles]       flips spread over all channels
                           (sinks named "alarm" act as error detectors:
                           a value >= 2 counts as detection)
  campaign ... --par <n> [--checkpoint <file>] [--serve <port>]
                           shard the campaign over n workers under the
                           supervised runner: crashing shards are
                           isolated with provenance, transient failures
                           retry with seeded backoff, completed shards
                           checkpoint to <file> for resume; --serve
                           exposes live telemetry for this run (or use
                           the serve command for a persistent server)
  serve [port]             start the live telemetry HTTP server on
                           localhost (default port 8080; port 0 picks
                           an ephemeral port): /metrics /status
                           /spans.jsonl /healthz; subsequent campaign
                           --par runs publish progress + heartbeats to
                           it, and a watchdog flips /healthz to 503
                           when a running shard stalls
  serve stop               stop the telemetry server
  runner status <file> [--json]
                           completeness of a campaign checkpoint, plus a
                           per-shard outcome digest (retries, slowest
                           shard, total attempt seconds); --json emits
                           the elastic-speculation/status/v1 document
                           the live /status endpoint also serves
  runner resume <file>     re-run the campaign command stored in the
                           checkpoint, adopting completed shards instead
                           of recomputing them
  spans on [capacity]      record structured spans (campaign -> shard ->
                           attempt -> compile/settle/checkpoint-write/
                           backoff-sleep) during subsequent campaign
                           --par runs, one ring per worker
  spans off                stop recording (the last ledger stays
                           dumpable and exportable)
  spans dump [n]           print the last n recorded spans
  spans jsonl <file>       export the ledger as JSONL
                           (schema elastic-speculation/spans/v1)
  spans chrome <file>      export Chrome trace-event JSON (load in
                           Perfetto / chrome://tracing; one track per
                           worker)
  spans folded <file>      export collapsed stacks for flamegraph.pl
  on-error continue|abort  script mode: report failing lines (with their
                           line numbers) and keep going, or stop at the
                           first error (the default)
  dot <file>               export Graphviz
  verilog <file>           export the elastic controller as Verilog
  blif <file>              export the control network for SIS/ABC
  smv <file>               export a NuSMV control model
  undo / redo              navigate the transformation history
  help                     this text
  quit (or exit)           leave the shell|}

(* Every word [execute_cmd] dispatches on, in help order; the
   help-coverage test keeps this list, the dispatcher and the help text
   consistent. *)
let commands =
  [ "load"; "show"; "candidates"; "bubble"; "buffer"; "remove-buffer";
    "convert"; "fifo"; "retime-fwd"; "retime-bwd"; "shannon"; "early";
    "share"; "speculate"; "save"; "open"; "throughput"; "stats"; "trace";
    "vcd"; "timeline"; "attribute"; "profile"; "metrics"; "watch"; "mode";
    "cycletime"; "area"; "bound"; "critical"; "verify"; "prove"; "equiv";
    "lint"; "inject";
    "campaign"; "serve"; "runner"; "spans"; "on-error"; "dot"; "verilog";
    "blif";
    "smv";
    "undo"; "redo"; "help"; "quit"; "exit" ]

let designs =
  [ ("fig1a", fun () -> (Figures.fig1a ()).Figures.net);
    ("fig1b", fun () -> (Figures.fig1b ()).Figures.net);
    ("fig1c", fun () -> (Figures.fig1c ()).Figures.net);
    ("fig1d", fun () -> (Figures.fig1d ()).Figures.net);
    ("table1", fun () -> (Figures.table1 ()).Figures.t1_net);
    ("vl-stalling",
     fun () ->
       (Examples.vl_stalling
          ~ops:(Elastic_datapath.Alu.operands ~error_rate_pct:10 ~seed:1 200))
         .Examples.d_net);
    ("vl-speculative",
     fun () ->
       (Examples.vl_speculative
          ~ops:(Elastic_datapath.Alu.operands ~error_rate_pct:10 ~seed:1 200))
         .Examples.d_net);
    ("rs-nonspec",
     fun () ->
       (Examples.rs_nonspeculative
          ~ops:(Examples.rs_ops ~error_rate_pct:10 ~seed:1 200))
         .Examples.d_net);
    ("rs-spec",
     fun () ->
       (Examples.rs_speculative
          ~ops:(Examples.rs_ops ~error_rate_pct:10 ~seed:1 200))
         .Examples.d_net);
    ("rs-alarmed",
     fun () ->
       (fst
          (Examples.rs_speculative_alarmed
             ~ops:(Examples.rs_ops ~error_rate_pct:0 ~seed:1 200)))
         .Examples.d_net) ]

let sched_of_string = function
  | "sticky" -> Some Scheduler.Sticky
  | "toggle" -> Some Scheduler.Toggle
  | "two-bit" -> Some Scheduler.Two_bit
  | "round-robin" -> Some Scheduler.Round_robin
  | "static0" -> Some (Scheduler.Static 0)
  | "static1" -> Some (Scheduler.Static 1)
  | "hinted-replay" -> Some Scheduler.Hinted_replay
  | _ -> None

(* Resolve a node argument: numeric id or node name. *)
let node_arg net s =
  match int_of_string_opt s with
  | Some id ->
    (try Ok (Netlist.node net id).Netlist.id
     with Invalid_argument m -> Error m)
  | None -> (
      match Netlist.find_node net s with
      | Some n -> Ok n.Netlist.id
      | None -> Error (Fmt.str "no node called %S" s))

let channel_arg net s =
  match int_of_string_opt s with
  | Some id ->
    (try Ok (Netlist.channel net id).Netlist.ch_id
     with Invalid_argument m -> Error m)
  | None -> (
      match
        List.find_opt
          (fun (c : Netlist.channel) -> String.equal c.Netlist.ch_name s)
          (Netlist.channels net)
      with
      | Some c -> Ok c.Netlist.ch_id
      | None -> Error (Fmt.str "no channel called %S" s))

let buffer_kind_arg = function
  | "eb" -> Ok Netlist.Eb
  | "eb0" -> Ok Netlist.Eb0
  | s -> Error (Fmt.str "unknown buffer kind %S (eb or eb0)" s)

let with_net s f =
  match s.net with
  | None -> Error "no design loaded (use: load <design>)"
  | Some net -> f net

(* Apply a transformation: push the old design on the undo stack. *)
let transform s f =
  with_net s (fun net ->
      match f net with
      | Ok (net', msg) ->
        s.undo <- net :: s.undo;
        s.redo <- [];
        s.net <- Some net';
        Ok msg
      | Error m -> Error m)

let catch f =
  try f () with
  | Invalid_argument m | Failure m -> Error m
  | Diagnostic.Reject d -> Error (Diagnostic.to_string d)

(* Engines for simulation commands are created fresh per invocation, so
   every report (including [profile]) covers exactly one window.  When
   [trace on] is in effect a tracer rides along on the observer hook and
   is kept for [trace dump] and error reports. *)
let sim_engine s net =
  let eng = Elastic_sim.Engine.create ?mode:s.eval_mode net in
  (match s.trace_capacity with
   | None -> ()
   | Some capacity ->
     s.tracer <- Some (Elastic_trace.Tracer.attach ~capacity eng));
  eng

module Metr = Elastic_metrics

(* Simulate [cycles] with a metrics sampler attached, composing with a
   tracer when [trace on] is in effect (single observer slot). *)
let sampled_run s net ?window ?on_window cycles =
  let eng = Elastic_sim.Engine.create ?mode:s.eval_mode net in
  let sampler = Metr.Sampler.create ?window ?on_window eng in
  let tr =
    match s.trace_capacity with
    | None -> None
    | Some capacity ->
      let tr = Elastic_trace.Tracer.create ~capacity eng in
      s.tracer <- Some tr;
      Some tr
  in
  Elastic_sim.Engine.set_observer eng
    (Some
       (fun e ->
          (match tr with
           | None -> ()
           | Some tr -> Elastic_trace.Tracer.observe tr e);
          Metr.Sampler.observe sampler e));
  Elastic_sim.Engine.run eng cycles;
  (eng, sampler)

(* One dashboard frame: headline rates from the engine, replay-penalty
   quantiles from the metrics snapshot. *)
let watch_frame net eng samples cyc =
  let b = Buffer.create 256 in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "-- cycle %d %s" cyc (String.make (max 1 (40 - 12)) '-');
  List.iter
    (fun (n : Netlist.node) ->
       match n.Netlist.kind with
       | Netlist.Sink _ ->
         line "  sink %-12s %.3f tok/cyc (%d transfers)" n.Netlist.name
           (Elastic_sim.Engine.throughput eng n.Netlist.id)
           (Elastic_kernel.Transfer.length
              (Elastic_sim.Engine.sink_stream eng n.Netlist.id))
       | Netlist.Source _ | Netlist.Buffer _ | Netlist.Func _
       | Netlist.Fork _ | Netlist.Mux _ | Netlist.Shared _
       | Netlist.Varlat _ -> ())
    (Netlist.nodes net);
  List.iter
    (fun (nid, sched) ->
       let name = (Netlist.node net nid).Netlist.name in
       let serves = Scheduler.serves sched in
       let mispred = Scheduler.mispredictions sched in
       let accuracy =
         if serves = 0 then 1.0
         else
           Float.max 0.0
             (1.0 -. (float_of_int mispred /. float_of_int serves))
       in
       let penalty =
         match
           Metr.Metrics.find samples
             ~labels:[ ("node", name) ]
             "elastic_sched_replay_penalty_cycles"
         with
         | Some (Metr.Metrics.Histogram h)
           when Metr.Histogram.s_count h > 0 ->
           Fmt.str "replay p50/p99 %d/%d"
             (Metr.Histogram.s_quantile h 0.5)
             (Metr.Histogram.s_quantile h 0.99)
         | _ -> "no replays"
       in
       line "  sched %-11s accuracy %.2f  serves %d  squashes %d  %s" name
         accuracy serves mispred penalty)
    (Elastic_sim.Engine.schedulers eng);
  let stalled =
    List.filter_map
      (fun (c : Netlist.channel) ->
         let valid, retry, _ =
           Elastic_sim.Engine.activity eng c.Netlist.ch_id
         in
         if retry = 0 then None
         else
           Some
             (c.Netlist.ch_name,
              float_of_int retry /. float_of_int (max valid 1)))
      (Netlist.channels net)
    |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
    |> List.filteri (fun i _ -> i < 3)
  in
  (match stalled with
   | [] -> line "  stalls: none"
   | l ->
     line "  stalls: %s"
       (String.concat "  "
          (List.map (fun (n, r) -> Fmt.str "%s %.3f" n r) l)));
  line "  stored tokens: %d" (Elastic_sim.Engine.stored_tokens eng);
  Buffer.contents b

let throughput_report s net cycles =
  let eng = sim_engine s net in
  Elastic_sim.Engine.run eng cycles;
  let sinks =
    List.filter_map
      (fun (n : Netlist.node) ->
         match n.Netlist.kind with
         | Netlist.Sink _ ->
           Some
             (Fmt.str "  %s: %.3f tokens/cycle (%d transfers)"
                n.Netlist.name
                (Elastic_sim.Engine.throughput eng n.Netlist.id)
                (Transfer.length
                   (Elastic_sim.Engine.sink_stream eng n.Netlist.id)))
         | Netlist.Source _ | Netlist.Buffer _ | Netlist.Func _
         | Netlist.Fork _ | Netlist.Mux _ | Netlist.Shared _
         | Netlist.Varlat _ -> None)
      (Netlist.nodes net)
  in
  let violations = Elastic_sim.Engine.violations eng in
  let extra =
    if violations = [] then []
    else
      Fmt.str "  !! %d protocol violations" (List.length violations)
      :: List.map
           (fun (ch, v) -> Fmt.str "     %s: %a" ch Protocol.pp_violation v)
           (List.filteri (fun i _ -> i < 5) violations)
  in
  String.concat "\n"
    ((Fmt.str "simulated %d cycles" cycles :: sinks) @ extra)

(* Sinks named "alarm" are error detectors by convention (see
   [Examples.rs_speculative_alarmed]): a delivered value >= 2 counts as
   the design reporting the fault. *)
let alarms_of net =
  List.filter_map
    (fun (n : Netlist.node) ->
       match n.Netlist.kind with
       | Netlist.Sink _ when String.equal n.Netlist.name "alarm" ->
         Some
           (n.Netlist.id,
            fun v -> (try Value.to_int v >= 2 with Invalid_argument _ -> false))
       | _ -> None)
    (Netlist.nodes net)

let int_arg what v =
  match int_of_string_opt v with
  | Some i -> Ok i
  | None -> Error (Fmt.str "%s must be an integer, got %S" what v)

let inject_usage =
  "usage: inject <channel> flip <cycle> <bit> | inject <channel> \
   drop|dup|glitch <cycle> | inject <channel> stall <cycle> [duration] | \
   inject <node> mispredict <cycle> <way>"

let inject_cmd net target kind rest =
  let open Elastic_fault in
  let ( let* ) = Result.bind in
  let* faults =
    match kind, rest with
    | "flip", [ cy; bit ] ->
      let* channel = channel_arg net target in
      let* cycle = int_arg "cycle" cy in
      let* bit = int_arg "bit" bit in
      Ok [ Fault.flip_bit ~channel ~cycle bit ]
    | "drop", [ cy ] ->
      let* channel = channel_arg net target in
      let* cycle = int_arg "cycle" cy in
      Ok [ Fault.drop_token ~channel ~cycle ]
    | "dup", [ cy ] ->
      let* channel = channel_arg net target in
      let* cycle = int_arg "cycle" cy in
      Ok [ Fault.duplicate_token ~channel ~cycle ]
    | "glitch", [ cy ] ->
      let* channel = channel_arg net target in
      let* cycle = int_arg "cycle" cy in
      Ok (Fault.control_glitch ~channel ~cycle)
    | "stall", ([ _ ] | [ _; _ ]) ->
      let* channel = channel_arg net target in
      let* cycle = int_arg "cycle" (List.hd rest) in
      let* duration =
        match rest with
        | [ _; d ] -> int_arg "duration" d
        | _ -> Ok 1
      in
      Ok [ Fault.stuck_stall ~channel ~cycle ~duration ]
    | "mispredict", [ cy; way ] ->
      let* node = node_arg net target in
      let* cycle = int_arg "cycle" cy in
      let* way = int_arg "way" way in
      Ok [ Fault.mispredict ~node ~cycle way ]
    | _ -> Error inject_usage
  in
  let report =
    Recovery.check ~cycles:300 ~settle:60 ~alarms:(alarms_of net) net
      ~faults
  in
  Ok (Fmt.str "%a" Recovery.pp_report report)

let campaign_summary net summary =
  let open Elastic_fault in
  let bad =
    List.filter
      (fun (o : Campaign.outcome) ->
         match o.Campaign.report.Recovery.classification with
         | Recovery.Masked | Recovery.Corrected _ -> false
         | _ -> true)
      summary.Campaign.outcomes
  in
  let detail =
    List.filteri (fun i _ -> i < 5) bad
    |> List.map (fun (o : Campaign.outcome) ->
        Fmt.str "  %a <- %s" Recovery.pp_classification
          o.Campaign.report.Recovery.classification
          (String.concat " + "
             (List.map (Fault.describe net) o.Campaign.faults)))
  in
  let more =
    if List.length bad > 5 then
      [ Fmt.str "  ... and %d more non-benign outcomes"
          (List.length bad - 5) ]
    else []
  in
  String.concat "\n"
    ((Fmt.str "%a" Campaign.pp_summary summary :: detail) @ more)

let campaign_usage =
  "usage: campaign flips <channel> <count> <seed> [cycles] | campaign \
   storm <count> <seed> [cycles] — append --par <workers> \
   [--checkpoint <file>] [--serve <port>] to shard under the \
   supervised runner (with live telemetry)"

(* Split "campaign flips a 20 7 --par 4 --checkpoint f --serve 0" into
   the positional arguments and the runner options (options may appear
   in any order after the positionals they follow). *)
let campaign_options rest =
  let ( let* ) = Result.bind in
  let rec split pos par ckpt serve = function
    | [] -> Ok (List.rev pos, par, ckpt, serve)
    | "--par" :: n :: tail ->
      let* p = int_arg "--par" n in
      if p < 1 then Error "--par must be >= 1"
      else split pos (Some p) ckpt serve tail
    | "--checkpoint" :: f :: tail -> split pos par (Some f) serve tail
    | "--serve" :: p :: tail ->
      let* port = int_arg "--serve" p in
      if port < 0 || port > 65535 then
        Error "--serve port must be in 0..65535 (0 picks an ephemeral \
               port)"
      else split pos par ckpt (Some port) tail
    | ("--par" | "--checkpoint" | "--serve") :: [] -> Error campaign_usage
    | w :: tail -> split (w :: pos) par ckpt serve tail
  in
  split [] None None None rest

(* A sharded campaign under the supervised runner: one task per
   scenario, merged in shard-index order (so the histogram is identical
   to the sequential campaign's at any worker count), with a
   completeness report instead of a silent partial answer. *)
let campaign_par_run s net ~kind ~rest ~par ~ckpt ~serve ~cycles scenarios =
  let module Runner = Elastic_runner.Runner in
  let module Workload = Elastic_runner.Workload in
  let module Telemetry = Elastic_telemetry.Telemetry in
  let ( let* ) = Result.bind in
  let name = Fmt.str "campaign-%s" kind in
  let command = String.concat " " ("campaign" :: kind :: rest) in
  let resume = s.pending_resume in
  s.pending_resume <- None;
  let tasks =
    Workload.of_campaign ~cycles ~settle:60 ~alarms:(alarms_of net) ~name
      net ~scenarios
  in
  let obs =
    Option.map
      (fun capacity_per_track ->
         Elastic_obs.Collector.create ~capacity_per_track ())
      s.spans_capacity
  in
  (* Live telemetry: attach the run to the session's [serve] hub if one
     is up, or stand up an ephemeral server for just this run when
     [--serve] asked for one. *)
  let* hub, ephemeral =
    match serve, s.telemetry with
    | Some _, Some hub ->
      Error
        (Fmt.str
           "telemetry server already on port %d — drop --serve (the \
            campaign publishes there) or serve stop first"
           (Option.value ~default:0 (Telemetry.port hub)))
    | Some port, None -> (
        let hub = Telemetry.create () in
        match Telemetry.start ~port hub with
        | Ok _ -> Ok (Some hub, true)
        | Error m -> Error m)
    | None, Some hub -> Ok (Some hub, false)
    | None, None -> Ok (None, false)
  in
  let progress =
    match hub with
    | None -> None
    | Some hub ->
      let ids =
        Array.of_list
          (List.map (fun (t : Runner.task) -> t.Runner.id) tasks)
      in
      let p = Elastic_runner.Progress.create ~name ~ids () in
      Telemetry.set_progress hub (Some p);
      (match obs with
       | Some c -> Telemetry.set_collector hub (Some c)
       | None -> ());
      Some p
  in
  let serve_lines =
    match hub with
    | Some h when ephemeral ->
      [ Fmt.str "telemetry: served http://127.0.0.1:%d during the run"
          (Option.value ~default:0 (Telemetry.port h)) ]
    | _ -> []
  in
  let clock = Elastic_sim.Clock.monotonic in
  let t0 = clock () in
  let r =
    Fun.protect
      ~finally:(fun () ->
          if ephemeral then Option.iter Telemetry.stop hub)
      (fun () ->
         Runner.run ~workers:par ?checkpoint:ckpt ?resume ?obs
           ?registry:(Option.map Telemetry.registry hub)
           ?progress ~command ~name tasks)
  in
  let wall_seconds = Elastic_sim.Clock.seconds_between t0 (clock ()) in
  let histogram = Workload.classification_histogram r.Runner.r_merged in
  let hist_lines =
    List.map (fun (label, n) -> Fmt.str "  %-20s %d" label n) histogram
  in
  let span_lines =
    match obs with
    | None -> []
    | Some c ->
      s.collector <- Some c;
      let util = Elastic_obs.Collector.utilization c ~wall_seconds in
      Fmt.str "spans: %d recorded (%d dropped) in %.3fs"
        (Elastic_obs.Collector.recorded c)
        (Elastic_obs.Collector.dropped c)
        wall_seconds
      :: List.map
           (fun (w, u) ->
              Fmt.str "  worker %d utilization %5.1f%%" w (100.0 *. u))
           util
  in
  let body =
    (Fmt.str "@[<v>%a@]" Runner.pp_report r :: "classification histogram:"
     :: hist_lines)
    @ span_lines @ serve_lines
    @
    match ckpt with
    | Some f -> [ Fmt.str "checkpoint: %s" f ]
    | None -> []
  in
  Ok (String.concat "\n" body)

let campaign_cmd s net kind rest =
  let open Elastic_fault in
  let ( let* ) = Result.bind in
  let usage = campaign_usage in
  let* positional, par, ckpt, serve = campaign_options rest in
  let* scenarios, cycles =
    match kind, positional with
    | "flips", (ch :: cnt :: seed :: tail) when List.length tail <= 1 ->
      let* channel = channel_arg net ch in
      let* count = int_arg "count" cnt in
      let* seed = int_arg "seed" seed in
      let* cycles =
        match tail with [ c ] -> int_arg "cycles" c | _ -> Ok 300
      in
      Ok
        (Campaign.random_bitflips ~net ~channel ~seed ~count ~from_cycle:2
           ~to_cycle:(max 3 (cycles / 2)) (),
         cycles)
    | "storm", (cnt :: seed :: tail) when List.length tail <= 1 ->
      let* count = int_arg "count" cnt in
      let* seed = int_arg "seed" seed in
      let* cycles =
        match tail with [ c ] -> int_arg "cycles" c | _ -> Ok 300
      in
      Ok
        (Campaign.random_storm ~net ~seed ~count ~from_cycle:2
           ~to_cycle:(max 3 (cycles / 2)),
         cycles)
    | _ -> Error usage
  in
  match par with
  | Some par ->
    campaign_par_run s net ~kind ~rest ~par ~ckpt ~serve ~cycles scenarios
  | None when ckpt <> None ->
    Error "--checkpoint requires --par (the supervised runner)"
  | None when serve <> None ->
    Error "--serve requires --par (the supervised runner)"
  | None ->
    let summary =
      Campaign.run ~cycles ~settle:60 ~alarms:(alarms_of net) net
        ~scenarios
    in
    Ok (campaign_summary net summary)

let rec execute_cmd s line =
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [] | "#" :: _ -> Ok ""
  | [ "help" ] -> Ok help
  | [ "mode" ] ->
    let current =
      match s.eval_mode with
      | Some m -> Elastic_sim.Engine.mode_name m
      | None ->
        (* Mirror the default an engine created right now would pick. *)
        Elastic_sim.Engine.mode_name
          (Elastic_sim.Engine.mode (Elastic_sim.Engine.create Elastic_netlist.Netlist.empty))
    in
    Ok (Printf.sprintf "mode: %s" current)
  | [ "mode"; name ] -> (
      match Elastic_sim.Engine.mode_of_string name with
      | Some m ->
        s.eval_mode <- Some m;
        Ok (Printf.sprintf "mode set to %s" (Elastic_sim.Engine.mode_name m))
      | None ->
        Error
          (Printf.sprintf
             "unknown mode %S (expected levelized, reference or arena)" name))
  | [ "load"; name ] -> (
      match List.assoc_opt name designs with
      | Some mk ->
        catch (fun () ->
            s.net <- Some (mk ());
            s.design <- name;
            s.undo <- [];
            s.redo <- [];
            Ok (Fmt.str "loaded %s" name))
      | None ->
        Error
          (Fmt.str "unknown design %S (available: %s)" name
             (String.concat ", " (List.map fst designs))))
  | [ "show" ] -> with_net s (fun net -> Ok (Fmt.str "%a" Netlist.pp net))
  | [ "candidates" ] ->
    with_net s (fun net ->
        match Speculation.candidates net with
        | [] -> Ok "no speculation candidates"
        | cs ->
          Ok
            (String.concat "\n"
               (List.map (Fmt.str "  %a" Speculation.pp_candidate) cs)))
  | [ "bubble"; ch ] ->
    transform s (fun net ->
        match channel_arg net ch with
        | Error m -> Error m
        | Ok channel ->
          catch (fun () ->
              let net', b = Transform.insert_bubble net ~channel in
              Ok (net', Fmt.str "inserted bubble node %d" b)))
  | [ "buffer"; ch; kind ] ->
    transform s (fun net ->
        match channel_arg net ch, buffer_kind_arg kind with
        | Error m, _ | _, Error m -> Error m
        | Ok channel, Ok buffer ->
          catch (fun () ->
              let net', b =
                Transform.insert_buffer net ~channel ~buffer ~init:[]
              in
              Ok (net', Fmt.str "inserted %s node %d" kind b)))
  | [ "remove-buffer"; node ] ->
    transform s (fun net ->
        match node_arg net node with
        | Error m -> Error m
        | Ok b ->
          catch (fun () -> Ok (Transform.remove_buffer net b, "removed")))
  | [ "convert"; node; kind ] ->
    transform s (fun net ->
        match node_arg net node, buffer_kind_arg kind with
        | Error m, _ | _, Error m -> Error m
        | Ok b, Ok buffer ->
          catch (fun () ->
              Ok (Transform.convert_buffer net b buffer,
                  Fmt.str "converted node %d to %s" b kind)))
  | [ "retime-fwd"; node ] ->
    transform s (fun net ->
        match node_arg net node with
        | Error m -> Error m
        | Ok f ->
          catch (fun () ->
              let net', b = Transform.retime_forward net ~through:f in
              Ok (net', Fmt.str "moved tokens to new buffer %d" b)))
  | [ "retime-bwd"; node ] ->
    transform s (fun net ->
        match node_arg net node with
        | Error m -> Error m
        | Ok f ->
          catch (fun () ->
              let net', bs = Transform.retime_backward net ~through:f in
              Ok
                (net',
                 Fmt.str "moved empty buffer to inputs [%a]"
                   Fmt.(list ~sep:comma int)
                   bs)))
  | [ "fifo"; ch; depth ] ->
    transform s (fun net ->
        match channel_arg net ch, int_of_string_opt depth with
        | Error m, _ -> Error m
        | _, None -> Error "usage: fifo <channel> <depth>"
        | Ok channel, Some depth ->
          catch (fun () ->
              let net', bs = Transform.insert_fifo net ~channel ~depth in
              Ok (net', Fmt.str "inserted %d buffers" (List.length bs))))
  | [ "shannon"; mux ] ->
    transform s (fun net ->
        match node_arg net mux with
        | Error m -> Error m
        | Ok mux ->
          catch (fun () ->
              let net', copies = Transform.shannon net ~mux in
              Ok
                (net',
                 Fmt.str "duplicated the block into nodes [%a]"
                   Fmt.(list ~sep:comma int)
                   copies)))
  | [ "early"; mux ] ->
    transform s (fun net ->
        match node_arg net mux with
        | Error m -> Error m
        | Ok mux ->
          catch (fun () ->
              Ok (Transform.early_evaluation net ~mux, "early evaluation on")))
  | "share" :: n1 :: n2 :: rest ->
    transform s (fun net ->
        let sched =
          match rest with
          | [] -> Ok Scheduler.Sticky
          | [ sc ] -> (
              match sched_of_string sc with
              | Some sp -> Ok sp
              | None -> Error (Fmt.str "unknown scheduler %S" sc))
          | _ -> Error "usage: share <n1> <n2> [sched]"
        in
        match node_arg net n1, node_arg net n2, sched with
        | Error m, _, _ | _, Error m, _ | _, _, Error m -> Error m
        | Ok a, Ok b, Ok sched ->
          catch (fun () ->
              let net', sh = Transform.share net ~blocks:[ a; b ] ~sched in
              Ok (net', Fmt.str "shared into node %d" sh)))
  | "speculate" :: rest ->
    transform s (fun net ->
        let mux, sched =
          match rest with
          | [] -> (None, Scheduler.Sticky)
          | [ m ] -> (
              match sched_of_string m with
              | Some sp -> (None, sp)
              | None -> (Some m, Scheduler.Sticky))
          | [ m; sc ] ->
            (Some m,
             Option.value (sched_of_string sc) ~default:Scheduler.Sticky)
          | _ -> (None, Scheduler.Sticky)
        in
        catch (fun () ->
            let r =
              match mux with
              | None -> Speculation.speculate_auto net ~sched
              | Some m -> (
                  match node_arg net m with
                  | Ok mux -> Speculation.speculate net ~mux ~sched
                  | Error msg -> invalid_arg msg)
            in
            Ok
              (r.Speculation.net,
               Fmt.str "speculation applied: shared module %d, mux %d"
                 r.Speculation.shared r.Speculation.mux)))
  | "stats" :: rest ->
    with_net s (fun net ->
        let cycles =
          match rest with
          | [ n ] -> Option.value (int_of_string_opt n) ~default:200
          | _ -> 200
        in
        catch (fun () ->
            let eng = sim_engine s net in
            Elastic_sim.Engine.run eng cycles;
            Ok (Fmt.str "%a" Elastic_sim.Stats.pp
                  (Elastic_sim.Stats.collect eng))))
  | "profile" :: rest ->
    with_net s (fun net ->
        let cycles =
          match rest with
          | [ n ] -> Option.value (int_of_string_opt n) ~default:200
          | _ -> 200
        in
        catch (fun () ->
            let eng = sim_engine s net in
            Elastic_sim.Engine.run eng cycles;
            let names =
              Array.of_list
                (List.map
                   (fun (n : Netlist.node) -> n.Netlist.name)
                   (Netlist.nodes net))
            in
            (* The engine (and its profile) is fresh per invocation:
               counters and wall clock cover this window only. *)
            Ok
              (Fmt.str "@[<v>window: this invocation only (%d cycles)@,\
                        schedule: %a@,%a@]"
                 cycles Elastic_sim.Schedule.pp_stats
                 (Elastic_sim.Engine.schedule eng)
                 (Elastic_sim.Profile.pp ~name:(fun i -> names.(i)))
                 (Elastic_sim.Engine.profile eng))))
  | "metrics" :: "prom" :: file :: rest ->
    with_net s (fun net ->
        let cycles =
          match rest with
          | [] -> Ok 200
          | [ n ] -> int_arg "cycles" n
          | _ -> Error "usage: metrics prom <file> [cycles]"
        in
        match cycles with
        | Error m -> Error m
        | Ok cycles ->
          catch (fun () ->
              let eng, sampler = sampled_run s net cycles in
              let text =
                Metr.Prometheus.render (Metr.Sampler.sample sampler eng)
              in
              let oc = open_out file in
              output_string oc text;
              close_out oc;
              Ok (Fmt.str "wrote %s (%d cycles)" file cycles)))
  | "metrics" :: "jsonl" :: file :: rest ->
    with_net s (fun net ->
        let args =
          match rest with
          | [] -> Ok (200, 50)
          | [ n ] ->
            Result.map (fun c -> (c, 50)) (int_arg "cycles" n)
          | [ n; w ] ->
            Result.bind (int_arg "cycles" n) (fun c ->
                Result.map (fun w -> (c, w)) (int_arg "window" w))
          | _ -> Error "usage: metrics jsonl <file> [cycles] [window]"
        in
        match args with
        | Error m -> Error m
        | Ok (_, w) when w < 1 -> Error "window must be >= 1"
        | Ok (cycles, window) ->
          catch (fun () ->
              let buf = Buffer.create 4096 in
              let rows = ref 0 in
              let on_window r =
                incr rows;
                Buffer.add_string buf (Metr.Sampler.jsonl_of_row r);
                Buffer.add_char buf '\n'
              in
              let _eng, _sampler =
                sampled_run s net ~window ~on_window cycles
              in
              let oc = open_out file in
              Buffer.output_buffer oc buf;
              close_out oc;
              Ok
                (Fmt.str "wrote %s (%d cycles, %d windows of %d)" file
                   cycles !rows window)))
  | "metrics" :: rest ->
    with_net s (fun net ->
        let cycles =
          match rest with
          | [] -> Ok 200
          | [ n ] -> int_arg "cycles" n
          | _ -> Error "usage: metrics [cycles]"
        in
        match cycles with
        | Error m -> Error m
        | Ok cycles ->
          catch (fun () ->
              let eng, sampler = sampled_run s net cycles in
              Ok
                (Fmt.str "# simulated %d cycles@.%s" cycles
                   (Metr.Prometheus.render
                      (Metr.Sampler.sample sampler eng)))))
  | "watch" :: rest ->
    with_net s (fun net ->
        let args =
          match rest with
          | [] -> Ok (200, 50)
          | [ n ] ->
            Result.map (fun c -> (c, 50)) (int_arg "cycles" n)
          | [ n; w ] ->
            Result.bind (int_arg "cycles" n) (fun c ->
                Result.map (fun w -> (c, w)) (int_arg "every" w))
          | _ -> Error "usage: watch [cycles] [every]"
        in
        match args with
        | Error m -> Error m
        | Ok (_, every) when every < 1 -> Error "every must be >= 1"
        | Ok (cycles, every) ->
          catch (fun () ->
              let frames = Buffer.create 1024 in
              let eng_slot = ref None in
              let on_window (r : Metr.Sampler.row) =
                match !eng_slot with
                | None -> ()
                | Some eng ->
                  Buffer.add_string frames
                    (watch_frame net eng r.Metr.Sampler.r_samples
                       r.Metr.Sampler.r_cycle)
              in
              let eng = Elastic_sim.Engine.create ?mode:s.eval_mode net in
              eng_slot := Some eng;
              let sampler =
                Metr.Sampler.create ~window:every ~on_window eng
              in
              Elastic_sim.Engine.set_observer eng
                (Some (Metr.Sampler.observe sampler));
              Elastic_sim.Engine.run eng cycles;
              Ok
                (Fmt.str "%swatched %d cycles (frame every %d)"
                   (Buffer.contents frames) cycles every)))
  | "trace" :: "on" :: rest -> (
      let capacity =
        match rest with
        | [] -> Ok 65536
        | [ c ] -> int_arg "capacity" c
        | _ -> Error "usage: trace on [capacity]"
      in
      match capacity with
      | Error m -> Error m
      | Ok c when c < 1 -> Error "capacity must be >= 1"
      | Ok capacity ->
        s.trace_capacity <- Some capacity;
        Ok
          (Fmt.str
             "tracing on (ring capacity %d events); simulation commands \
              now record events (dump with: trace dump)"
             capacity))
  | [ "trace"; "off" ] ->
    s.trace_capacity <- None;
    Ok "tracing off (the last recorded trace is still dumpable)"
  | "trace" :: "dump" :: rest ->
    with_net s (fun net ->
        let limit =
          match rest with
          | [] -> Ok 40
          | [ n ] -> int_arg "count" n
          | _ -> Error "usage: trace dump [n]"
        in
        match limit, s.tracer with
        | Error m, _ -> Error m
        | Ok _, None ->
          Error
            "no trace recorded (use: trace on, then a simulation command \
             such as throughput, stats or timeline)"
        | Ok limit, Some tr ->
          catch (fun () ->
              let evs = Elastic_trace.Tracer.recent ~limit tr in
              let head =
                Fmt.str "%d events recorded (%d dropped), last %d:"
                  (Elastic_trace.Tracer.recorded tr)
                  (Elastic_trace.Tracer.dropped tr)
                  (List.length evs)
              in
              Ok
                (String.concat "\n"
                   (head
                    :: List.map
                         (Fmt.str "  %a" (Elastic_trace.Event.pp net))
                         evs))))
  | "spans" :: "on" :: rest -> (
      let capacity =
        match rest with
        | [] -> Ok 8192
        | [ c ] -> int_arg "capacity" c
        | _ -> Error "usage: spans on [capacity]"
      in
      match capacity with
      | Error m -> Error m
      | Ok c when c < 1 -> Error "capacity must be >= 1"
      | Ok capacity ->
        s.spans_capacity <- Some capacity;
        Ok
          (Fmt.str
             "spans on (per-worker ring capacity %d); campaign --par \
              runs now record a span ledger (dump with: spans dump)"
             capacity))
  | [ "spans"; "off" ] ->
    s.spans_capacity <- None;
    Ok "spans off (the last recorded ledger is still exportable)"
  | "spans" :: "dump" :: rest -> (
      let limit =
        match rest with
        | [] -> Ok 40
        | [ n ] -> int_arg "count" n
        | _ -> Error "usage: spans dump [n]"
      in
      match limit, s.collector with
      | Error m, _ -> Error m
      | Ok _, None ->
        Error
          "no spans recorded (use: spans on, then campaign ... --par)"
      | Ok limit, Some c ->
        catch (fun () ->
            let spans = Elastic_obs.Collector.spans c in
            let total = List.length spans in
            let skip = max 0 (total - limit) in
            let tail = List.filteri (fun i _ -> i >= skip) spans in
            let base_ns = Elastic_obs.Export.base_ns spans in
            let head =
              Fmt.str "%d spans recorded (%d dropped), last %d:"
                (Elastic_obs.Collector.recorded c)
                (Elastic_obs.Collector.dropped c)
                (List.length tail)
            in
            Ok
              (String.concat "\n"
                 (head
                  :: List.map
                       (Fmt.str "  %a" (Elastic_obs.Span.pp ~base_ns))
                       tail))))
  | [ "spans"; ("jsonl" | "chrome" | "folded") as fmt; file ] -> (
      match s.collector with
      | None ->
        Error
          "no spans recorded (use: spans on, then campaign ... --par)"
      | Some c ->
        catch (fun () ->
            let spans = Elastic_obs.Collector.spans c in
            (match fmt with
             | "jsonl" ->
               Elastic_obs.Export.write_jsonl ~path:file
                 ~campaign:s.design spans
             | "chrome" ->
               Elastic_obs.Export.write_chrome ~path:file spans
             | _ -> Elastic_obs.Export.write_folded ~path:file spans);
            Ok
              (Fmt.str "wrote %d spans to %s (%s)" (List.length spans)
                 file fmt)))
  | "spans" :: _ ->
    Error
      "usage: spans on [capacity] | spans off | spans dump [n] | spans \
       jsonl <file> | spans chrome <file> | spans folded <file>"
  | "vcd" :: file :: rest ->
    with_net s (fun net ->
        let cycles =
          match rest with
          | [] -> Ok 200
          | [ n ] -> int_arg "cycles" n
          | _ -> Error "usage: vcd <file> [cycles]"
        in
        match cycles with
        | Error m -> Error m
        | Ok cycles ->
          catch (fun () ->
              let eng = Elastic_sim.Engine.create ?mode:s.eval_mode net in
              let rc = Elastic_trace.Vcd.create net in
              (* Compose the VCD recorder with a tracer when tracing is
                 on — the engine has a single observer slot. *)
              let tr =
                match s.trace_capacity with
                | None -> None
                | Some capacity ->
                  let tr = Elastic_trace.Tracer.create ~capacity eng in
                  s.tracer <- Some tr;
                  Some tr
              in
              Elastic_sim.Engine.set_observer eng
                (Some
                   (fun e ->
                      (match tr with
                       | None -> ()
                       | Some tr -> Elastic_trace.Tracer.observe tr e);
                      Elastic_trace.Vcd.observe rc e));
              Elastic_sim.Engine.run eng cycles;
              Elastic_trace.Vcd.save file rc;
              Ok
                (Fmt.str "wrote %s (%d cycles, %d channels)" file cycles
                   (List.length (Netlist.channels net)))))
  | [ "vcd" ] -> Error "usage: vcd <file> [cycles]"
  | "timeline" :: rest ->
    with_net s (fun net ->
        let cycles =
          match rest with
          | [] -> Ok 200
          | [ n ] -> int_arg "cycles" n
          | _ -> Error "usage: timeline [cycles]"
        in
        match cycles with
        | Error m -> Error m
        | Ok cycles ->
          catch (fun () ->
              let eng = Elastic_sim.Engine.create ?mode:s.eval_mode net in
              let tr = Elastic_trace.Tracer.attach eng in
              s.tracer <- Some tr;
              Elastic_sim.Engine.run eng cycles;
              match
                Elastic_trace.Timeline.analyze
                  (Elastic_trace.Tracer.events tr)
              with
              | [] -> Ok "no speculation schedulers in the design"
              | tls ->
                Ok (Fmt.str "%a" (Elastic_trace.Timeline.pp net) tls)))
  | "attribute" :: rest ->
    with_net s (fun net ->
        let cycles =
          match rest with
          | [] -> Ok 200
          | [ n ] -> int_arg "cycles" n
          | _ -> Error "usage: attribute [cycles]"
        in
        match cycles with
        | Error m -> Error m
        | Ok cycles ->
          catch (fun () ->
              let eng = sim_engine s net in
              Elastic_sim.Engine.run eng cycles;
              Ok
                (Fmt.str "%a" Elastic_trace.Attribution.pp
                   (Elastic_trace.Attribution.analyze eng))))
  | "trace" :: rest ->
    with_net s (fun net ->
        let cycles =
          match rest with
          | [ n ] -> Option.value (int_of_string_opt n) ~default:8
          | _ -> 8
        in
        catch (fun () ->
            let eng = sim_engine s net in
            let cell (sg : Signal.t) =
              if sg.Signal.v_minus then "  -"
              else if sg.Signal.v_plus then
                (match sg.Signal.data with
                 | Some v ->
                   let t = Value.to_string v in
                   if String.length t > 3 then
                     " " ^ String.sub t 0 2
                   else Fmt.str "%3s" t
                 | None -> "  ?")
              else "  *"
            in
            let rows =
              List.map
                (fun (c : Netlist.channel) -> (c.Netlist.ch_name, ref []))
                (Netlist.channels net)
            in
            for _ = 1 to cycles do
              Elastic_sim.Engine.step eng;
              List.iter2
                (fun (c : Netlist.channel) (_, cells) ->
                   cells :=
                     cell (Elastic_sim.Engine.signal eng c.Netlist.ch_id)
                     :: !cells)
                (Netlist.channels net) rows
            done;
            Ok
              (String.concat "\n"
                 (List.map
                    (fun (name, cells) ->
                       Fmt.str "%-30s%s" name
                         (String.concat "" (List.rev !cells)))
                    rows))))
  | "throughput" :: rest ->
    with_net s (fun net ->
        let cycles =
          match rest with
          | [ n ] -> Option.value (int_of_string_opt n) ~default:200
          | _ -> 200
        in
        catch (fun () -> Ok (throughput_report s net cycles)))
  | [ "cycletime" ] ->
    with_net s (fun net ->
        match Timing.analyze net with
        | Ok r -> Ok (Fmt.str "%a" Timing.pp_report r)
        | Error m -> Error m)
  | [ "area" ] ->
    with_net s (fun net ->
        Ok (Fmt.str "total area: %.1f gate equivalents" (Area.total net)))
  | [ "bound" ] ->
    with_net s (fun net ->
        catch (fun () ->
            Ok
              (Fmt.str "marked-graph throughput bound: %.3f"
                 (Elastic_perf.Marked_graph.throughput_bound net))))
  | [ "critical" ] ->
    with_net s (fun net ->
        catch (fun () ->
            match Elastic_perf.Marked_graph.critical_cycle net with
            | Some c ->
              Ok (Fmt.str "%a" Elastic_perf.Marked_graph.pp_cycle c)
            | None -> Ok "no token-bearing cycle (feed-forward design)"))
  | [ "verify" ] ->
    with_net s (fun net ->
        catch (fun () ->
            let o = Elastic_check.Explore.explore net in
            let verdict =
              if Elastic_check.Explore.clean o then "VERIFIED"
              else if
                o.Elastic_check.Explore.protocol_violations = []
                && o.Elastic_check.Explore.deadlock_states = []
                && o.Elastic_check.Explore.starving_channels = []
              then
                "BOUNDED: state cap reached with no violations (the design \
                 has unbounded sources; use Nondet sources for an \
                 exhaustive check)"
              else "PROBLEMS FOUND"
            in
            Ok
              (Fmt.str "%a@.%s" Elastic_check.Explore.pp_outcome o verdict)))
  | [ "prove" ] ->
    catch (fun () ->
        let results =
          List.map (fun c -> (c, Derivations.verify c)) (Derivations.all ())
        in
        let render ((c : Derivations.chain), r) =
          match r with
          | Ok p -> Fmt.str "%a" Elastic_check.Flow.pp_proof p
          | Error d ->
            Fmt.str "%s: REFUTED %s" c.Derivations.c_name
              (Diagnostic.to_string d)
        in
        let text = String.concat "\n" (List.map render results) in
        if List.for_all (fun (_, r) -> Result.is_ok r) results then Ok text
        else Error text)
  | [ "prove"; "jsonl"; file ] ->
    catch (fun () ->
        let chains = Derivations.all () in
        let oc = open_out file in
        List.iter
          (fun (c : Derivations.chain) ->
             output_string oc
               (Elastic_check.Flow.jsonl ~design:c.Derivations.c_name
                  ~cert:c.Derivations.c_cert (Derivations.verify c)))
          chains;
        close_out oc;
        Ok (Fmt.str "wrote %s (%d chains)" file (List.length chains)))
  | [ "prove"; name ] ->
    catch (fun () ->
        match Derivations.find name with
        | None ->
          Error
            (Fmt.str "unknown chain %S (available: %s)" name
               (String.concat ", "
                  (List.map
                     (fun (c : Derivations.chain) -> c.Derivations.c_name)
                     (Derivations.all ()))))
        | Some c -> (
            match Derivations.verify c with
            | Ok p ->
              Ok
                (Fmt.str "%s@.%a" c.Derivations.c_describe
                   Elastic_check.Flow.pp_proof p)
            | Error d -> Error (Diagnostic.to_string d)))
  | [ "equiv" ] -> Error "usage: equiv <design> [--static|cycles]"
  | "equiv" :: design :: rest ->
    with_net s (fun net ->
        match List.assoc_opt design designs with
        | None ->
          Error
            (Fmt.str "unknown design %S (available: %s)" design
               (String.concat ", " (List.map fst designs)))
        | Some build ->
          catch (fun () ->
              let other = build () in
              let tag = Fmt.str "%s-vs-%s" s.design design in
              match rest with
              | [ "--static" ] -> (
                  match
                    Elastic_check.Flow.equiv_static ~design:tag net other
                  with
                  | Ok p -> Ok (Fmt.str "%a" Elastic_check.Flow.pp_proof p)
                  | Error d -> Error (Diagnostic.to_string d))
              | [] | [ _ ] -> (
                  match
                    match rest with
                    | [] -> Some 300
                    | [ c ] -> int_of_string_opt c
                    | _ -> None
                  with
                  | None -> Error "usage: equiv <design> [--static|cycles]"
                  | Some cycles -> (
                      match Equiv.check ~cycles net other with
                      | Ok r ->
                        Ok
                          (Fmt.str
                             "transfer equivalent over %d cycles: %s"
                             r.Equiv.cycles
                             (String.concat ", "
                                (List.map
                                   (fun (n, a, b) ->
                                      Fmt.str "%s %d/%d" n a b)
                                   r.Equiv.transfers)))
                      | Error m -> Error m))
              | _ -> Error "usage: equiv <design> [--static|cycles]"))
  | [ "lint" ] ->
    with_net s (fun net ->
        let report = Elastic_lint.Lint.run net in
        let text = Elastic_lint.Lint.render report in
        (* Error findings fail the command, so scripts (and the CI lint
           gate) exit nonzero on a broken design. *)
        if Elastic_lint.Lint.clean report then Ok text else Error text)
  | [ "lint"; "--fix" ] ->
    transform s (fun net ->
        let report = Elastic_lint.Lint.run net in
        let net', n = Elastic_lint.Lint.apply_fixes net report in
        if n = 0 then Error "no machine-applicable fixes in the lint report"
        else
          Ok (net', Fmt.str "applied %d fix(es); lint again to re-check" n))
  | [ "lint"; "jsonl"; file ] ->
    with_net s (fun net ->
        catch (fun () ->
            let report = Elastic_lint.Lint.run net in
            let oc = open_out file in
            output_string oc
              (Elastic_lint.Lint.jsonl ~design:s.design net report);
            close_out oc;
            Ok
              (Fmt.str "wrote %s (%d diagnostics)" file
                 (List.length report.Elastic_lint.Lint.diags))))
  | [ "lint"; rule ] ->
    with_net s (fun net ->
        match Elastic_lint.Lint.find_rule rule with
        | None ->
          Error
            (Fmt.str "unknown lint rule %S (a code such as E102 or a slug \
                      such as comb-cycle)"
               rule)
        | Some _ ->
          let report = Elastic_lint.Lint.run ~only:[ rule ] net in
          let text = Elastic_lint.Lint.render report in
          if Elastic_lint.Lint.clean report then Ok text else Error text)
  | [ "save"; file ] ->
    with_net s (fun net ->
        catch (fun () ->
            Serial.save file net;
            Ok (Fmt.str "wrote %s" file)))
  | [ "open"; file ] -> (
      match Serial.load file with
      | Ok net ->
        s.net <- Some net;
        s.design <- Filename.remove_extension (Filename.basename file);
        s.undo <- [];
        s.redo <- [];
        Ok (Fmt.str "opened %s" file)
      | Error m -> Error m)
  | [ "dot"; file ] ->
    with_net s (fun net ->
        catch (fun () ->
            Dot.save file net;
            Ok (Fmt.str "wrote %s" file)))
  | [ "verilog"; file ] ->
    with_net s (fun net ->
        catch (fun () ->
            Verilog.save file ~top:"elastic_top" net;
            Ok (Fmt.str "wrote %s" file)))
  | [ "blif"; file ] ->
    with_net s (fun net ->
        catch (fun () ->
            Blif.save file ~model:"elastic_ctrl" net;
            Ok (Fmt.str "wrote %s" file)))
  | [ "smv"; file ] ->
    with_net s (fun net ->
        catch (fun () ->
            Smv.save file net;
            Ok (Fmt.str "wrote %s" file)))
  | [ "undo" ] -> (
      match s.undo, s.net with
      | prev :: rest, Some cur ->
        s.undo <- rest;
        s.redo <- cur :: s.redo;
        s.net <- Some prev;
        Ok "undone"
      | _, _ -> Error "nothing to undo")
  | [ "redo" ] -> (
      match s.redo, s.net with
      | next :: rest, Some cur ->
        s.redo <- rest;
        s.undo <- cur :: s.undo;
        s.net <- Some next;
        Ok "redone"
      | _, _ -> Error "nothing to redo")
  | "inject" :: target :: kind :: rest ->
    with_net s (fun net -> inject_cmd net target kind rest)
  | [ "inject" ] | [ "inject"; _ ] -> Error inject_usage
  | "campaign" :: kind :: rest ->
    with_net s (fun net -> campaign_cmd s net kind rest)
  | [ "campaign" ] -> Error campaign_usage
  | [ "serve"; "stop" ] -> (
      match s.telemetry with
      | None -> Error "no telemetry server running"
      | Some hub ->
        Elastic_telemetry.Telemetry.stop hub;
        s.telemetry <- None;
        Ok "telemetry server stopped")
  | [ "serve" ] | [ "serve"; _ ] -> (
      let module Telemetry = Elastic_telemetry.Telemetry in
      match
        match words with
        | [ _; p ] -> int_arg "port" p
        | _ -> Ok 8080
      with
      | Error m -> Error m
      | Ok port when port < 0 || port > 65535 ->
        Error "port must be in 0..65535 (0 picks an ephemeral port)"
      | Ok port -> (
          match s.telemetry with
          | Some hub ->
            Error
              (Fmt.str "telemetry server already on port %d (serve stop \
                        first)"
                 (Option.value ~default:0 (Telemetry.port hub)))
          | None -> (
              let hub = Telemetry.create () in
              (* Expose whatever span ledger the session already has. *)
              (match s.collector with
               | Some c -> Telemetry.set_collector hub (Some c)
               | None -> ());
              match Telemetry.start ~port hub with
              | Error m -> Error m
              | Ok bound ->
                s.telemetry <- Some hub;
                Ok
                  (Fmt.str
                     "telemetry server on http://127.0.0.1:%d — \
                      /metrics /status /spans.jsonl /healthz (campaign \
                      --par runs publish live progress here)"
                     bound))))
  | [ "runner"; "status"; file ] -> (
      match Elastic_runner.Checkpoint.load file with
      | Ok cp -> Ok (Fmt.str "%a" Elastic_runner.Checkpoint.pp_status cp)
      | Error m -> Error (Fmt.str "%s: %s" file m))
  | [ "runner"; "status"; file; "--json" ] -> (
      (* The same elastic-speculation/status/v1 document the live
         /status endpoint serves, derived from the checkpoint. *)
      match Elastic_runner.Checkpoint.load file with
      | Ok cp ->
        Ok
          (Elastic_metrics.Json.to_string
             (Elastic_runner.Status.of_checkpoint cp))
      | Error m -> Error (Fmt.str "%s: %s" file m))
  | [ "runner"; "resume"; file ] -> (
      match Elastic_runner.Checkpoint.load file with
      | Error m -> Error (Fmt.str "%s: %s" file m)
      | Ok cp -> (
          match cp.Elastic_runner.Checkpoint.header.command with
          | None ->
            Error
              (Fmt.str
                 "%s records no command to resume (it was written by an \
                  embedding, not the shell)"
                 file)
          | Some cmd ->
            s.pending_resume <- Some cp;
            Fun.protect
              ~finally:(fun () -> s.pending_resume <- None)
              (fun () -> execute_cmd s cmd)))
  | "runner" :: _ ->
    Error
      "usage: runner status <checkpoint> [--json] | runner resume \
       <checkpoint>"
  | [ "on-error"; "continue" ] ->
    s.on_error_continue <- true;
    Ok "scripts now continue past failing lines (reported per line)"
  | [ "on-error"; "abort" ] ->
    s.on_error_continue <- false;
    Ok "scripts now stop at the first failing line"
  | "on-error" :: _ -> Error "usage: on-error continue|abort"
  | [ "quit" ] | [ "exit" ] -> Ok "bye"
  | w :: _ when List.mem w commands ->
    (* a known command that fell through its argument patterns *)
    Error (Fmt.str "command %S: bad or missing arguments (try: help)" w)
  | w :: _ -> Error (Fmt.str "unknown command %S (try: help)" w)

(* A structured simulation error, enriched — when a trace was being
   recorded — with the last events seen on the offending channels (the
   named channel, or the channels incident to the named node), so
   deadlock diagnosis doesn't require a rerun. *)
let simulation_error_report s (e : Elastic_sim.Engine.error) =
  let base = Elastic_sim.Engine.error_to_string e in
  match s.tracer, s.net with
  | Some tr, Some net -> (
      try
        let channels =
          match
            e.Elastic_sim.Engine.err_channel, e.Elastic_sim.Engine.err_node
          with
          | Some channel, _ -> [ channel ]
          | None, Some node ->
            List.map
              (fun (c : Netlist.channel) -> c.Netlist.ch_id)
              (Netlist.incoming net node @ Netlist.outgoing net node)
          | None, None -> []
        in
        let evs =
          List.concat_map
            (fun channel ->
               Elastic_trace.Tracer.recent ~limit:4 ~channel tr)
            channels
          |> List.sort (fun (a : Elastic_trace.Event.t) b ->
              compare a.Elastic_trace.Event.ev_cycle
                b.Elastic_trace.Event.ev_cycle)
        in
        match evs with
        | [] -> base
        | evs ->
          Fmt.str "%s@.last traced events on the offending channels:@.%a"
            base
            Fmt.(
              list ~sep:cut (fun ppf ev ->
                  pf ppf "  %a" (Elastic_trace.Event.pp net) ev))
            evs
      with Invalid_argument _ -> base)
  | _, _ -> base

(* The interpreter is an interactive trust boundary: whatever a command
   raises — including structured simulation errors from a fault
   experiment gone wrong — must come back as [Error], never kill the
   session. *)
let execute s line =
  try execute_cmd s line with
  | Invalid_argument m | Failure m -> Error m
  | Diagnostic.Reject d -> Error (Diagnostic.to_string d)
  | Elastic_sim.Engine.Simulation_error e ->
    Error (simulation_error_report s e)
  | Out_of_memory | Stack_overflow as e -> raise e
  | e -> Error (Printexc.to_string e)

let run_script s lines =
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match execute s line with
        | Ok out ->
          go (if out = "" then acc else out :: acc) (lineno + 1) rest
        | Error m when s.on_error_continue ->
          (* Same line-number provenance as abort mode, but the script
             keeps going and the failure becomes part of the output. *)
          go
            (Fmt.str "error: line %d: %S: %s" lineno line m :: acc)
            (lineno + 1) rest
        | Error m -> Error (Fmt.str "line %d: %S: %s" lineno line m))
  in
  go [] 1 lines
