open Elastic_netlist

type candidate = {
  mux : Netlist.node_id;
  block : Netlist.node_id;
  cycle_nodes : string list;
  cycle_delay : float;
}

let pp_candidate ppf c =
  Fmt.pf ppf "mux %d via block %d, cycle delay %.1f: [%a]" c.mux c.block
    c.cycle_delay
    Fmt.(list ~sep:(any " -> ") string)
    c.cycle_nodes

(* Depth-first search for a path from [start] back to port [Sel] of
   [mux], accumulating node delays.  Elastic buffers are traversed (they
   are part of the cycle, contributing latency not delay). *)
let find_sel_path net ~mux ~start =
  let visited = Hashtbl.create 16 in
  let node_delay (n : Netlist.node) =
    match n.Netlist.kind with
    | Netlist.Func f -> f.Func.delay
    | Netlist.Shared { f; _ } -> f.Func.delay
    | Netlist.Mux _ -> 1.0
    | Netlist.Source _ | Netlist.Sink _ | Netlist.Buffer _
    | Netlist.Fork _ | Netlist.Varlat _ -> 0.0
  in
  let rec go node acc_delay acc_path =
    if Hashtbl.mem visited node then None
    else begin
      Hashtbl.add visited node ();
      let outs = Netlist.outgoing net node in
      let hit =
        List.find_opt
          (fun (c : Netlist.channel) ->
             c.Netlist.dst.Netlist.ep_node = mux
             && Netlist.port_equal c.Netlist.dst.Netlist.ep_port Netlist.Sel)
          outs
      in
      match hit with
      | Some _ ->
        Some (acc_delay, List.rev ((Netlist.node net node).Netlist.name :: acc_path))
      | None ->
        List.fold_left
          (fun found (c : Netlist.channel) ->
             match found with
             | Some _ -> found
             | None ->
               let next = c.Netlist.dst.Netlist.ep_node in
               let d = node_delay (Netlist.node net next) in
               go next (acc_delay +. d)
                 ((Netlist.node net node).Netlist.name :: acc_path))
          None outs
    end
  in
  go start 0.0 []

let candidates net =
  List.filter_map
    (fun (n : Netlist.node) ->
       match n.Netlist.kind with
       | Netlist.Mux _ ->
         let mux = n.Netlist.id in
         (match Netlist.channel_at net mux (Netlist.Out 0) with
          | None -> None
          | Some out_ch ->
            let block = out_ch.Netlist.dst.Netlist.ep_node in
            (match (Netlist.node net block).Netlist.kind with
             | Netlist.Func f when f.Func.arity = 1 ->
               (match find_sel_path net ~mux ~start:block with
                | Some (delay, path) ->
                  Some
                    { mux; block; cycle_nodes = path;
                      cycle_delay = delay +. f.Func.delay }
                | None -> None)
             | Netlist.Func _ | Netlist.Source _ | Netlist.Sink _
             | Netlist.Buffer _ | Netlist.Fork _ | Netlist.Mux _
             | Netlist.Shared _ | Netlist.Varlat _ -> None))
       | Netlist.Source _ | Netlist.Sink _ | Netlist.Buffer _
       | Netlist.Func _ | Netlist.Fork _ | Netlist.Shared _
       | Netlist.Varlat _ -> None)
    (Netlist.nodes net)

type result = {
  net : Netlist.t;
  shared : Netlist.node_id;
  mux : Netlist.node_id;
}

let speculate ?cert net ~mux ~sched =
  let net, copies = Transform.shannon ?cert net ~mux in
  let net = Transform.early_evaluation ?cert net ~mux in
  let net, shared = Transform.share ?cert net ~blocks:copies ~sched in
  Netlist.validate_exn net;
  { net; shared; mux }

let speculate_auto ?cert net ~sched =
  match
    List.sort
      (fun a b -> Float.compare b.cycle_delay a.cycle_delay)
      (candidates net)
  with
  | [] -> invalid_arg "Speculation.speculate_auto: no candidate found"
  | c :: _ -> speculate ?cert net ~mux:c.mux ~sched
