open Elastic_kernel
open Elastic_sched
open Elastic_netlist
open Elastic_check

(** Correct-by-construction transformations on elastic netlists (§3.3,
    §4).

    Every function returns a new netlist (the input is unchanged), so an
    exploration shell can keep undo/redo histories.  Preconditions are
    checked by {!Elastic_lint.Precheck} before any mutation: an illegal
    application raises [Diagnostic.Reject] carrying a typed diagnostic
    (codes E301-E308) naming the rule and the offending node; they never
    produce a netlist that fails validation.  ([Invalid_argument] still
    escapes for malformed references, e.g. an unknown node id.)

    {b Certificates.}  Every entry point takes an optional
    [?cert:Cert.builder].  When present, each successful application
    appends one typed {!Elastic_check.Cert.step} naming the
    flow-equivalence lemma it instantiates, the side conditions that
    held, and the netlist delta.  {!Elastic_check.Flow.verify} then
    re-checks the whole derivation purely structurally, independently of
    this module.  Steps are recorded {e after} the rewrite succeeds:
    a rejected application (E301-E308) leaves both the netlist and the
    certificate chain untouched. *)

(** {1 Buffer transformations} *)

(** [insert_buffer net ~channel ~buffer ~init] splits the channel with a
    new elastic buffer and returns its node id.

    With a certificate builder, only empty buffers can be inserted
    (token-holding insertion changes the transfer streams and has no
    lemma; [Invalid_argument] is raised before any mutation).  An empty
    [Eb] records one bubble-insertion step; an empty [Eb0] is recorded —
    and performed — as bubble insertion followed by buffer conversion,
    so the node carries the bubble's default name. *)
val insert_buffer :
  ?cert:Cert.builder ->
  Netlist.t -> channel:Netlist.channel_id -> buffer:Netlist.buffer_kind ->
  init:Value.t list -> Netlist.t * Netlist.node_id

(** Bubble insertion (§2): an empty EB on any channel preserves transfer
    equivalence. *)
val insert_bubble :
  ?cert:Cert.builder ->
  Netlist.t -> channel:Netlist.channel_id -> Netlist.t * Netlist.node_id

(** [insert_fifo net ~channel ~depth] chains [depth] empty EBs on the
    channel — a FIFO of capacity [2 * depth] (elastic systems are "a
    collection of blocks and FIFOs", §3); preserves transfer equivalence
    and adds [depth] cycles of forward latency.  Recorded as a single
    FIFO-insertion certificate step.
    @raise Diagnostic.Reject (E301) when [depth < 1]. *)
val insert_fifo :
  ?cert:Cert.builder ->
  Netlist.t -> channel:Netlist.channel_id -> depth:int ->
  Netlist.t * Netlist.node_id list

(** [remove_buffer net b] splices an {e empty} buffer out.
    @raise Diagnostic.Reject (E302) if the buffer holds tokens. *)
val remove_buffer :
  ?cert:Cert.builder -> Netlist.t -> Netlist.node_id -> Netlist.t

(** [convert_buffer net b kind] swaps the buffer implementation, e.g. to
    the zero-backward-latency EB of §4.3 for fast anti-token return.
    @raise Diagnostic.Reject (E303) if the stored tokens exceed the new
    capacity [C = Lf + Lb]. *)
val convert_buffer :
  ?cert:Cert.builder ->
  Netlist.t -> Netlist.node_id -> Netlist.buffer_kind -> Netlist.t

(** {1 Retiming} *)

(** [retime_forward net ~through] moves one token from a buffer on every
    input of the function block [through] to a fresh buffer on its output,
    recomputing the stored value as [f] of the moved tokens. *)
val retime_forward :
  ?cert:Cert.builder ->
  Netlist.t -> through:Netlist.node_id -> Netlist.t * Netlist.node_id

(** [retime_backward net ~through] moves an {e empty} buffer from the
    output of [through] to fresh empty buffers on every input. *)
val retime_backward :
  ?cert:Cert.builder ->
  Netlist.t -> through:Netlist.node_id -> Netlist.t * Netlist.node_id list

(** {1 The speculation pipeline (§4, steps 2-4)} *)

(** Shannon decomposition / multiplexor retiming (§2): the unary function
    block fed by the multiplexor's output is duplicated onto every data
    input.  Returns the copies, input order. *)
val shannon :
  ?cert:Cert.builder ->
  Netlist.t -> mux:Netlist.node_id -> Netlist.t * Netlist.node_id list

(** Switch a multiplexor to early evaluation (anti-token emitting). *)
val early_evaluation :
  ?cert:Cert.builder -> Netlist.t -> mux:Netlist.node_id -> Netlist.t

(** [share net ~blocks ~sched] merges identical unary function blocks into
    one shared module arbitrated by [sched] (Fig. 4). *)
val share :
  ?cert:Cert.builder ->
  Netlist.t -> blocks:Netlist.node_id list -> sched:Scheduler.spec ->
  Netlist.t * Netlist.node_id
