open Elastic_kernel
open Elastic_sched
open Elastic_netlist

(** Correct-by-construction transformations on elastic netlists (§3.3,
    §4).

    Every function returns a new netlist (the input is unchanged), so an
    exploration shell can keep undo/redo histories.  Preconditions are
    checked by {!Elastic_lint.Precheck} before any mutation: an illegal
    application raises [Diagnostic.Reject] carrying a typed diagnostic
    (codes E301-E308) naming the rule and the offending node; they never
    produce a netlist that fails validation.  ([Invalid_argument] still
    escapes for malformed references, e.g. an unknown node id.) *)

(** {1 Buffer transformations} *)

(** [insert_buffer net ~channel ~buffer ~init] splits the channel with a
    new elastic buffer and returns its node id. *)
val insert_buffer :
  Netlist.t -> channel:Netlist.channel_id -> buffer:Netlist.buffer_kind ->
  init:Value.t list -> Netlist.t * Netlist.node_id

(** Bubble insertion (§2): an empty EB on any channel preserves transfer
    equivalence. *)
val insert_bubble :
  Netlist.t -> channel:Netlist.channel_id -> Netlist.t * Netlist.node_id

(** [insert_fifo net ~channel ~depth] chains [depth] empty EBs on the
    channel — a FIFO of capacity [2 * depth] (elastic systems are "a
    collection of blocks and FIFOs", §3); preserves transfer equivalence
    and adds [depth] cycles of forward latency.
    @raise Diagnostic.Reject (E301) when [depth < 1]. *)
val insert_fifo :
  Netlist.t -> channel:Netlist.channel_id -> depth:int ->
  Netlist.t * Netlist.node_id list

(** [remove_buffer net b] splices an {e empty} buffer out.
    @raise Diagnostic.Reject (E302) if the buffer holds tokens. *)
val remove_buffer : Netlist.t -> Netlist.node_id -> Netlist.t

(** [convert_buffer net b kind] swaps the buffer implementation, e.g. to
    the zero-backward-latency EB of §4.3 for fast anti-token return.
    @raise Diagnostic.Reject (E303) if the stored tokens exceed the new
    capacity [C = Lf + Lb]. *)
val convert_buffer :
  Netlist.t -> Netlist.node_id -> Netlist.buffer_kind -> Netlist.t

(** {1 Retiming} *)

(** [retime_forward net ~through] moves one token from a buffer on every
    input of the function block [through] to a fresh buffer on its output,
    recomputing the stored value as [f] of the moved tokens. *)
val retime_forward :
  Netlist.t -> through:Netlist.node_id -> Netlist.t * Netlist.node_id

(** [retime_backward net ~through] moves an {e empty} buffer from the
    output of [through] to fresh empty buffers on every input. *)
val retime_backward :
  Netlist.t -> through:Netlist.node_id -> Netlist.t * Netlist.node_id list

(** {1 The speculation pipeline (§4, steps 2-4)} *)

(** Shannon decomposition / multiplexor retiming (§2): the unary function
    block fed by the multiplexor's output is duplicated onto every data
    input.  Returns the copies, input order. *)
val shannon :
  Netlist.t -> mux:Netlist.node_id -> Netlist.t * Netlist.node_id list

(** Switch a multiplexor to early evaluation (anti-token emitting). *)
val early_evaluation : Netlist.t -> mux:Netlist.node_id -> Netlist.t

(** [share net ~blocks ~sched] merges identical unary function blocks into
    one shared module arbitrated by [sched] (Fig. 4). *)
val share :
  Netlist.t -> blocks:Netlist.node_id list -> sched:Scheduler.spec ->
  Netlist.t * Netlist.node_id
