open Elastic_sched
open Elastic_netlist
open Elastic_check

(** The complete speculation recipe of §4:

    + find a critical cycle from the output of a multiplexor to its select
      input ({!candidates});
    + Shannon-decompose the block out of the cycle;
    + make the multiplexor early-evaluating;
    + share the duplicated blocks behind a speculation scheduler.

    Steps 2-4 are {!speculate}; equivalence of the result follows from the
    individual transformations being correct by construction (and can be
    re-checked by co-simulation with {!Equiv.check}). *)

type candidate = {
  mux : Netlist.node_id;
  block : Netlist.node_id;
      (** The unary block at the mux output, to be moved and shared. *)
  cycle_nodes : string list;
      (** Nodes on the mux-output -> select-input cycle. *)
  cycle_delay : float;
      (** Combinational delay accumulated around that cycle — the profit
          ceiling of the transformation. *)
}

val pp_candidate : Format.formatter -> candidate -> unit

(** Multiplexors whose select input closes a cycle through their own
    output via a movable unary block — the situations where §4 declares
    speculation "the transformation of choice". *)
val candidates : Netlist.t -> candidate list

(** The outcome of applying the recipe. *)
type result = {
  net : Netlist.t;
  shared : Netlist.node_id;  (** The new shared module. *)
  mux : Netlist.node_id;  (** The (now early-evaluating) multiplexor. *)
}

(** [speculate net ~mux ~sched] applies steps 2-4 to the given
    multiplexor.  With [?cert], the underlying transformations append
    their certificate steps (shannon, early-eval, share) for
    {!Elastic_check.Flow.verify}.  @raise Invalid_argument if the block
    after the mux is not a movable unary function. *)
val speculate :
  ?cert:Cert.builder ->
  Netlist.t -> mux:Netlist.node_id -> sched:Scheduler.spec -> result

(** [speculate_auto net ~sched] picks the candidate with the largest cycle
    delay.  @raise Invalid_argument when there is no candidate. *)
val speculate_auto :
  ?cert:Cert.builder -> Netlist.t -> sched:Scheduler.spec -> result
