open Elastic_netlist

(** Transfer-equivalence checking by co-simulation (§3.1).

    Two elastic systems are transfer equivalent when, fed identical input
    streams, their sinks observe the same value streams (cycle stamps
    ignored).  [check] simulates both netlists and compares the streams of
    sinks {e matched by node name}; because latencies may differ, the
    shorter stream must be a prefix of the longer one. *)

type report = {
  cycles : int;
  matched_sinks : string list;
  transfers : (string * int * int) list;
      (** sink name, transfers in [a], transfers in [b]. *)
}

(** [check ?cycles a b] co-simulates for [cycles] (default 300) cycles.
    Returns [Error message] when a sink pair disagrees, when sink names do
    not match up, or when either run reports protocol violations.  A
    {e vacuous} run — no sinks matched, or every matched sink observed
    zero transfers on both sides — is also an error: empty streams are
    trivially prefix-equivalent and prove nothing. *)
val check : ?cycles:int -> Netlist.t -> Netlist.t -> (report, string) result

(** Like {!check} but raises [Failure] with the message. *)
val check_exn : ?cycles:int -> Netlist.t -> Netlist.t -> report
