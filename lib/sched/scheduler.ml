type observation = {
  in_valid : bool array;
  out_valid : bool array;
  out_stop : bool array;
  out_kill : bool array;
  served : int option;
  hint : int option;
}

type spec =
  | Static of int
  | Toggle
  | Sticky
  | Two_bit
  | Round_robin
  | Scripted of int array
  | Noisy_oracle of { sel : int array; accuracy_pct : int; seed : int }
  | External
  | Prefer of int
  | Hinted_replay
  | Gshare of { history_bits : int }

let spec_name = function
  | Static i -> Fmt.str "static%d" i
  | Toggle -> "toggle"
  | Sticky -> "sticky"
  | Two_bit -> "two-bit"
  | Round_robin -> "round-robin"
  | Scripted _ -> "scripted"
  | Noisy_oracle { accuracy_pct; _ } -> Fmt.str "oracle%d%%" accuracy_pct
  | External -> "external"
  | Prefer i -> Fmt.str "prefer%d" i
  | Hinted_replay -> "hinted-replay"
  | Gshare { history_bits } -> Fmt.str "gshare%d" history_bits

let pp_spec ppf s = Fmt.string ppf (spec_name s)

type t = {
  spec : spec;
  ways : int;
  mutable pred : int;
  mutable cycle : int;
  mutable transfers : int;
      (* oracle script index — wraps, see [observe]; not a statistic *)
  mutable served_total : int;
  mutable miss : int;
  mutable counter : int;  (* two-bit saturating counter *)
  mutable rng : int;  (* LCG state for the noisy oracle *)
  mutable committed : int;  (* committed prediction index, -1 if stale *)
  mutable hist : int;  (* gshare global history register *)
  table : int array;  (* gshare two-bit counters *)
  mutable in_miss : bool;
      (* a misprediction retry is in progress (so learning schedulers
         train once per event, not once per stalled cycle) *)
}

let lcg_next s = ((s * 1103515245) + 12345) land 0x3FFFFFFF

(* Committed prediction of the noisy oracle for the next transfer: roll
   the dice once per transfer index, not once per cycle. *)
let oracle_commit t sel accuracy_pct =
  let truth =
    if Array.length sel = 0 then 0
    else sel.(t.transfers mod Array.length sel)
  in
  t.rng <- lcg_next t.rng;
  let hit = t.rng mod 100 < accuracy_pct in
  if hit || t.ways < 2 then truth
  else begin
    (* Pick a wrong channel deterministically from the RNG. *)
    t.rng <- lcg_next t.rng;
    let other = t.rng mod (t.ways - 1) in
    if other >= truth then other + 1 else other
  end

let initial_pred ~ways spec =
  match spec with
  | Static i ->
    if i < 0 || i >= ways then
      invalid_arg (Fmt.str "Scheduler.make: Static %d with %d ways" i ways);
    i
  | Toggle | Sticky | Two_bit | Round_robin | External | Hinted_replay
  | Gshare _ -> 0
  | Prefer i ->
    if i < 0 || i >= ways then
      invalid_arg (Fmt.str "Scheduler.make: Prefer %d with %d ways" i ways);
    i
  | Scripted a -> if Array.length a = 0 then 0 else a.(0)
  | Noisy_oracle _ -> 0

let make ~ways spec =
  if ways < 1 then invalid_arg "Scheduler.make: ways < 1";
  (match spec with
   | Two_bit when ways <> 2 ->
     invalid_arg "Scheduler.make: Two_bit requires exactly 2 ways"
   | Gshare _ when ways <> 2 ->
     invalid_arg "Scheduler.make: Gshare requires exactly 2 ways"
   | Gshare { history_bits } when history_bits < 1 || history_bits > 10 ->
     invalid_arg "Scheduler.make: Gshare history_bits out of [1, 10]"
   | Static _ | Toggle | Sticky | Two_bit | Round_robin | Scripted _
   | Noisy_oracle _ | External | Prefer _ | Hinted_replay | Gshare _ -> ());
  let table_size =
    match spec with Gshare { history_bits } -> 1 lsl history_bits | _ -> 0
  in
  let t =
    { spec; ways; pred = initial_pred ~ways spec; cycle = 0; transfers = 0;
      served_total = 0; miss = 0; counter = 1; rng = 0; committed = -1; hist = 0;
      table = Array.make table_size 1; in_miss = false }
  in
  (match spec with
   | Noisy_oracle { seed; sel; accuracy_pct } ->
     t.rng <- lcg_next (seed land 0x3FFFFFFF);
     t.pred <- oracle_commit t sel accuracy_pct;
     t.committed <- 0
   | Static _ | Toggle | Sticky | Two_bit | Round_robin | Scripted _
   | External | Prefer _ | Hinted_replay | Gshare _ -> ());
  t

let predict t = t.pred

let retry_on_predicted t obs =
  t.pred < Array.length obs.out_valid
  && obs.out_valid.(t.pred) && obs.out_stop.(t.pred) && obs.served = None

let observe t obs =
  let mispredicted = retry_on_predicted t obs in
  (* Rising edge: a new misprediction event (a stall can last several
     cycles, but it is one mistake). *)
  let miss_edge = mispredicted && not t.in_miss in
  if miss_edge then t.miss <- t.miss + 1;
  (match obs.served with
   | Some _ ->
     (* Wrap so that exhaustive state exploration stays finite; only the
        oracle reads this counter, modulo its script length. *)
     let modulus =
       match t.spec with
       | Noisy_oracle { sel; _ } -> max 1 (Array.length sel)
       | Static _ | Toggle | Sticky | Two_bit | Round_robin | Scripted _
       | External | Prefer _ | Hinted_replay | Gshare _ -> 1 lsl 30
     in
     t.transfers <- (t.transfers + 1) mod modulus;
     t.served_total <- t.served_total + 1
   | None -> ());
  let finish () = t.in_miss <- mispredicted in
  (* The cycle counter is behavioural only for Toggle and Scripted. *)
  (match t.spec with
   | Toggle -> t.cycle <- (t.cycle + 1) mod t.ways
   | Scripted a -> t.cycle <- (t.cycle + 1) mod (max 1 (Array.length a))
   | Static _ | Sticky | Two_bit | Round_robin | Noisy_oracle _ | External
   | Prefer _ | Hinted_replay | Gshare _ -> ());
  (match t.spec with
  | Static i -> t.pred <- i
  | Toggle -> t.pred <- t.cycle mod t.ways
  | Scripted a ->
    if Array.length a > 0 then t.pred <- a.(t.cycle mod Array.length a)
  | Sticky -> if mispredicted then t.pred <- (t.pred + 1) mod t.ways
  | Round_robin ->
    (match obs.served with
     | Some _ -> t.pred <- (t.pred + 1) mod t.ways
     | None -> if mispredicted then t.pred <- (t.pred + 1) mod t.ways)
  | Two_bit ->
    (* Train toward the channel that turned out to be needed: the served
       channel on a hit, the other channel on a detected miss. *)
    let toward c =
      if c = 1 then t.counter <- min 3 (t.counter + 1)
      else t.counter <- max 0 (t.counter - 1)
    in
    (match obs.served with
     | Some s -> toward s
     | None ->
       (* Keep pressing while the retry persists: leads-to requires the
          prediction to flip eventually. *)
       if mispredicted then toward (1 - t.pred));
    t.pred <- (if t.counter >= 2 then 1 else 0)
  | Noisy_oracle { sel; accuracy_pct; _ } ->
    if mispredicted then begin
      (* The retry reveals the truth for the pending transfer. *)
      let truth =
        if Array.length sel = 0 then 0
        else sel.(t.transfers mod Array.length sel)
      in
      t.pred <- truth
    end
    else if t.committed <> t.transfers then begin
      t.pred <- oracle_commit t sel accuracy_pct;
      t.committed <- t.transfers
    end
  | External -> ()
  | Prefer home ->
    if mispredicted then t.pred <- (t.pred + 1) mod t.ways
    else if t.pred <> home && obs.served <> None then t.pred <- home
  | Hinted_replay ->
    (* The hint is authoritative: a stopped output is ordinary
       back-pressure here, not a misprediction, so there is no
       retry-based deviation. *)
    (match obs.hint with
     | Some h when h <> 0 ->
       t.miss <- t.miss + (if mispredicted then 0 else 1);
       t.pred <- 1
     | Some _ | None ->
       if t.pred <> 0 && obs.served <> None then t.pred <- 0)
  | Gshare _ ->
    (* Each serve is one consumed select: train the indexed counter and
       shift the outcome into the global history exactly once.  While a
       misprediction retry persists, keep pressing the current entry
       toward the needed channel (leads-to) without touching history. *)
    let mask = Array.length t.table - 1 in
    let train o =
      let idx = t.hist land mask in
      let c = t.table.(idx) in
      t.table.(idx) <- (if o = 1 then min 3 (c + 1) else max 0 (c - 1))
    in
    (match obs.served with
     | Some s ->
       train s;
       t.hist <- ((t.hist lsl 1) lor s) land mask
     | None -> if mispredicted then train (1 - t.pred));
    t.pred <- (if t.table.(t.hist land mask) >= 2 then 1 else 0));
  finish ()

let force t c =
  if c < 0 || c >= t.ways then invalid_arg "Scheduler.force: bad channel";
  t.pred <- c

let mispredictions t = t.miss

let serves t = t.served_total

let state t =
  [ t.pred; t.cycle; t.transfers; t.miss; t.counter; t.rng; t.committed;
    t.hist; Bool.to_int t.in_miss; t.served_total ]
  @ Array.to_list t.table

(* Behaviourally relevant state only — statistics excluded so that the
   model checker's state keys merge states that differ only in counts. *)
let key t =
  match t.spec with
  | Static _ | External -> []
  | Toggle | Scripted _ -> [ t.cycle ]
  | Sticky | Round_robin | Prefer _ | Hinted_replay -> [ t.pred ]
  | Two_bit -> [ t.counter; Bool.to_int t.in_miss ]
  | Noisy_oracle _ -> [ t.pred; t.transfers; t.rng; t.committed ]
  | Gshare _ ->
    t.pred :: t.hist :: Bool.to_int t.in_miss :: Array.to_list t.table

let set_state t = function
  | pred :: cycle :: transfers :: miss :: counter :: rng :: committed
    :: hist :: in_miss :: served_total :: table
    when List.length table = Array.length t.table ->
    t.pred <- pred;
    t.cycle <- cycle;
    t.transfers <- transfers;
    t.miss <- miss;
    t.counter <- counter;
    t.rng <- rng;
    t.committed <- committed;
    t.hist <- hist;
    t.in_miss <- in_miss <> 0;
    t.served_total <- served_total;
    List.iteri (fun i v -> t.table.(i) <- v) table
  | _ -> invalid_arg "Scheduler.set_state: bad encoding"

let spec t = t.spec

let ways t = t.ways
