open Elastic_kernel
open Elastic_netlist

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | '\r' -> Buffer.add_string b "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_line b net (e : Event.t) =
  let field_str k v = Printf.sprintf "\"%s\":\"%s\"" k (escape v) in
  let field_int k v = Printf.sprintf "\"%s\":%d" k v in
  let subject_fields =
    match e.Event.ev_subject with
    | Event.Chan cid ->
      [ field_int "ch" cid;
        field_str "at" (Netlist.channel net cid).Netlist.ch_name ]
    | Event.Node nid ->
      [ field_int "n" nid;
        field_str "at" (Netlist.node net nid).Netlist.name ]
  in
  let kind_fields =
    match e.Event.ev_kind with
    | Event.Transfer (Some v) -> [ field_str "v" (Value.to_string v) ]
    | Event.Transfer None -> []
    | Event.Stall | Event.Anti | Event.Cancel | Event.Inject -> []
    | Event.Occupancy { before; after } ->
      [ field_int "before" before; field_int "after" after ]
    | Event.Predict { way } | Event.Serve { way }
    | Event.Mispredict { way } ->
      [ field_int "way" way ]
    | Event.Replay { penalty } -> [ field_int "penalty" penalty ]
    | Event.Violation { property } -> [ field_str "prop" property ]
  in
  Buffer.add_char b '{';
  Buffer.add_string b
    (String.concat ","
       (field_int "c" e.Event.ev_cycle
        :: field_str "k" (Event.kind_label e.Event.ev_kind)
        :: subject_fields
        @ kind_fields));
  Buffer.add_string b "}\n"

let to_string net evs =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":\"elastic-speculation/trace/v1\",\"events\":%d}\n"
       (List.length evs));
  List.iter (add_line b net) evs;
  Buffer.contents b

let save path net evs =
  let oc = open_out path in
  output_string oc (to_string net evs);
  close_out oc
