open Elastic_netlist
open Elastic_sim

(** Ring-buffered cycle-accurate event tracer.

    A tracer attaches to an {!Engine.t} through the engine's end-of-cycle
    observer hook ({!Engine.set_observer}, the observation twin of
    [Engine.set_injector]) and derives typed {!Event.t}s from the elapsed
    cycle: channel transfers / stalls / anti-tokens / cancellations,
    buffer occupancy changes, scheduler predictions / serves / squashes /
    replay completions, injected faults and protocol violations.

    Events are kept in a bounded ring so that tracing an arbitrarily long
    run costs constant memory: once [capacity] events have been recorded
    the oldest are dropped (and counted in {!dropped}).  With no tracer
    attached the engine's hot path is untouched. *)

type t

(** [create ?capacity eng] snapshots the engine's current scheduler and
    occupancy state and returns a detached tracer (install it with
    {!attach} or manually via [Engine.set_observer eng (Some (observe
    tr))]).  Default capacity: 65536 events. *)
val create : ?capacity:int -> Engine.t -> t

(** [attach ?capacity eng] creates a tracer and installs it as the
    engine's observer. *)
val attach : ?capacity:int -> Engine.t -> t

(** The observer body: derive and record the elapsed cycle's events.
    Exposed so that a tracer can be composed with other observers (the
    shell composes it with the VCD recorder). *)
val observe : t -> Engine.t -> unit

(** Recorded events, oldest first (at most [capacity] of them). *)
val events : t -> Event.t list

(** Events dropped because the ring was full. *)
val dropped : t -> int

(** Total events recorded since creation, including dropped ones. *)
val recorded : t -> int

val capacity : t -> int

(** [recent ?limit ?channel tr] returns the most recent events, oldest
    first; [channel] restricts to one channel's events ([Chan] subjects),
    [limit] bounds the count (default 10). *)
val recent : ?limit:int -> ?channel:Netlist.channel_id -> t -> Event.t list
