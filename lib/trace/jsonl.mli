open Elastic_netlist

(** JSONL (one JSON object per line) export of an event stream, in the
    same hand-rolled-emitter style as the bench's [BENCH_*.json] records
    (the image has no JSON library).

    Line 1 is a meta object:
    {v {"schema":"elastic-speculation/trace/v1","events":N} v}
    followed by one object per event.  Field schema (documented in
    EXPERIMENTS.md): [c] cycle, [k] kind label, [ch]/[n] channel or node
    id, [at] resolved name, plus kind-specific fields [v] (payload,
    rendered with [Value.to_string]), [way], [penalty], [before]/[after],
    [prop]. *)

val to_string : Netlist.t -> Event.t list -> string

val save : string -> Netlist.t -> Event.t list -> unit
