open Elastic_kernel
open Elastic_netlist

type subject =
  | Chan of Netlist.channel_id
  | Node of Netlist.node_id

type kind =
  | Transfer of Value.t option
  | Stall
  | Anti
  | Cancel
  | Occupancy of { before : int; after : int }
  | Predict of { way : int }
  | Serve of { way : int }
  | Mispredict of { way : int }
  | Replay of { penalty : int }
  | Inject
  | Violation of { property : string }

type t = {
  ev_cycle : int;
  ev_subject : subject;
  ev_kind : kind;
}

let kind_label = function
  | Transfer _ -> "transfer"
  | Stall -> "stall"
  | Anti -> "anti"
  | Cancel -> "cancel"
  | Occupancy _ -> "occupancy"
  | Predict _ -> "predict"
  | Serve _ -> "serve"
  | Mispredict _ -> "mispredict"
  | Replay _ -> "replay"
  | Inject -> "inject"
  | Violation _ -> "violation"

let subject_name net = function
  | Chan cid -> (Netlist.channel net cid).Netlist.ch_name
  | Node nid -> (Netlist.node net nid).Netlist.name

let pp net ppf e =
  let where = subject_name net e.ev_subject in
  match e.ev_kind with
  | Transfer (Some v) ->
    Fmt.pf ppf "cycle %4d  %-24s transfer %s" e.ev_cycle where
      (Value.to_string v)
  | Transfer None ->
    Fmt.pf ppf "cycle %4d  %-24s transfer" e.ev_cycle where
  | Stall -> Fmt.pf ppf "cycle %4d  %-24s stall (retry)" e.ev_cycle where
  | Anti -> Fmt.pf ppf "cycle %4d  %-24s anti-token" e.ev_cycle where
  | Cancel -> Fmt.pf ppf "cycle %4d  %-24s cancellation" e.ev_cycle where
  | Occupancy { before; after } ->
    Fmt.pf ppf "cycle %4d  %-24s occupancy %d -> %d" e.ev_cycle where
      before after
  | Predict { way } ->
    Fmt.pf ppf "cycle %4d  %-24s predict way %d" e.ev_cycle where way
  | Serve { way } ->
    Fmt.pf ppf "cycle %4d  %-24s serve way %d" e.ev_cycle where way
  | Mispredict { way } ->
    Fmt.pf ppf "cycle %4d  %-24s squash (mispredicted way %d)" e.ev_cycle
      where way
  | Replay { penalty } ->
    Fmt.pf ppf "cycle %4d  %-24s replay complete (penalty %d)" e.ev_cycle
      where penalty
  | Inject -> Fmt.pf ppf "cycle %4d  %-24s fault injected" e.ev_cycle where
  | Violation { property } ->
    Fmt.pf ppf "cycle %4d  %-24s protocol violation (%s)" e.ev_cycle where
      property

type counts = {
  c_delivered : (int, int) Hashtbl.t;
  c_killed : (int, int) Hashtbl.t;
  c_retries : (int, int) Hashtbl.t;
  c_antis : (int, int) Hashtbl.t;
  c_serves : (int, int) Hashtbl.t;
  c_mispred : (int, int) Hashtbl.t;
}

let bump tbl k =
  Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let counts evs =
  let c =
    { c_delivered = Hashtbl.create 16;
      c_killed = Hashtbl.create 16;
      c_retries = Hashtbl.create 16;
      c_antis = Hashtbl.create 16;
      c_serves = Hashtbl.create 4;
      c_mispred = Hashtbl.create 4 }
  in
  List.iter
    (fun e ->
       match e.ev_subject, e.ev_kind with
       | Chan cid, Transfer _ -> bump c.c_delivered cid
       | Chan cid, Cancel -> bump c.c_killed cid
       | Chan cid, Stall -> bump c.c_retries cid
       | Chan cid, Anti -> bump c.c_antis cid
       | Node nid, Serve _ -> bump c.c_serves nid
       | Node nid, Mispredict _ -> bump c.c_mispred nid
       | _, _ -> ())
    evs;
  c

let get tbl k = Option.value ~default:0 (Hashtbl.find_opt tbl k)

let delivered c = get c.c_delivered

let killed c = get c.c_killed

let retries c = get c.c_retries

let antis c = get c.c_antis

let serves c = get c.c_serves

let mispredictions c = get c.c_mispred
