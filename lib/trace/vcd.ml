open Elastic_kernel
open Elastic_netlist
open Elastic_sim

let data_bits = 64

(* VCD identifier codes: printable ASCII '!'..'~', little-endian base 94. *)
let id_code n =
  let b = Buffer.create 2 in
  let rec go n =
    Buffer.add_char b (Char.chr (33 + (n mod 94)));
    if n >= 94 then go ((n / 94) - 1)
  in
  go n;
  Buffer.contents b

let sanitize name =
  String.map
    (fun c ->
       match c with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> c
       | _ -> '_')
    name

(* Flattened 64-bit payload image: Bool 1 bit, Int 8 bits, Word 64 bits,
   Str 8 bits per character, tuples depth-first (the lib/fault layout,
   plus character bytes for Str so scripted letter streams are legible
   in the viewer).  Truncated to the low 64 bits. *)
let data_image v =
  let bits = ref 0L and off = ref 0 in
  let add width x =
    if !off < data_bits then begin
      let x =
        if width >= 64 then x
        else Int64.logand x (Int64.sub (Int64.shift_left 1L width) 1L)
      in
      bits := Int64.logor !bits (Int64.shift_left x !off);
      off := !off + width
    end
  in
  let rec go = function
    | Value.Unit -> ()
    | Value.Bool b -> add 1 (if b then 1L else 0L)
    | Value.Int n -> add 8 (Int64.of_int n)
    | Value.Word w -> add 64 w
    | Value.Str s -> String.iter (fun c -> add 8 (Int64.of_int (Char.code c))) s
    | Value.Tuple vs -> List.iter go vs
  in
  go v;
  !bits

let bin64 x =
  let b = Bytes.create data_bits in
  for i = 0 to data_bits - 1 do
    Bytes.set b i
      (if Int64.equal
            (Int64.logand (Int64.shift_right_logical x (data_bits - 1 - i)) 1L)
            1L
       then '1'
       else '0')
  done;
  Bytes.to_string b

type var = { code : string; width : int; mutable prev : string }

type chan_vars = {
  cv_channel : Netlist.channel_id;
  vp : var;
  sp : var;
  vm : var;
  sm : var;
  state : var;
  data : var;
}

type recorder = {
  buf : Buffer.t;
  vars : chan_vars array;
  mutable n_cycles : int;
}

let scalar_vars (c : Netlist.channel) next =
  let mk width =
    let v = { code = id_code !next; width; prev = "" } in
    incr next;
    v
  in
  { cv_channel = c.Netlist.ch_id;
    vp = mk 1;
    sp = mk 1;
    vm = mk 1;
    sm = mk 1;
    state = mk 2;
    data = mk data_bits }

let build_vars net =
  let next = ref 0 in
  List.map (fun c -> scalar_vars c next) (Netlist.channels net)
  |> Array.of_list

let header_into buf net vars =
  Buffer.add_string buf "$date\n  (deterministic)\n$end\n";
  Buffer.add_string buf
    "$version\n  elastic-speculation Elastic_trace.Vcd\n$end\n";
  Buffer.add_string buf "$timescale\n  1ns\n$end\n";
  Buffer.add_string buf "$scope module elastic $end\n";
  List.iteri
    (fun i (c : Netlist.channel) ->
       let cv = vars.(i) in
       let name = sanitize c.Netlist.ch_name in
       Buffer.add_string buf (Fmt.str "$scope module %s $end\n" name);
       List.iter
         (fun (v, field) ->
            Buffer.add_string buf
              (Fmt.str "$var wire %d %s %s $end\n" v.width v.code field))
         [ (cv.vp, "vp"); (cv.sp, "sp"); (cv.vm, "vm"); (cv.sm, "sm");
           (cv.state, "state"); (cv.data, "data") ];
       Buffer.add_string buf "$upscope $end\n")
    (Netlist.channels net);
  Buffer.add_string buf "$upscope $end\n";
  Buffer.add_string buf "$enddefinitions $end\n"

let dump_initial buf vars =
  Buffer.add_string buf "$dumpvars\n";
  Array.iter
    (fun cv ->
       List.iter
         (fun v ->
            if v.width = 1 then begin
              v.prev <- "x";
              Buffer.add_string buf (Fmt.str "x%s\n" v.code)
            end
            else begin
              v.prev <- "x";
              Buffer.add_string buf (Fmt.str "bx %s\n" v.code)
            end)
         [ cv.vp; cv.sp; cv.vm; cv.sm; cv.state; cv.data ])
    vars;
  Buffer.add_string buf "$end\n"

let create net =
  let vars = build_vars net in
  let buf = Buffer.create 4096 in
  header_into buf net vars;
  dump_initial buf vars;
  { buf; vars; n_cycles = 0 }

(* Strip leading zeros as VCD vector dumps conventionally do (keep one
   digit); "x" stays as is. *)
let compress_vec s =
  let n = String.length s in
  let rec first i = if i < n - 1 && s.[i] = '0' then first (i + 1) else i in
  let i = first 0 in
  if i = 0 then s else String.sub s i (n - i)

let change buf v value =
  if not (String.equal v.prev value) then begin
    v.prev <- value;
    if v.width = 1 then Buffer.add_string buf (Fmt.str "%s%s\n" value v.code)
    else
      Buffer.add_string buf (Fmt.str "b%s %s\n" (compress_vec value) v.code)
  end

let observe r eng =
  let cyc = Engine.cycle eng in
  let changes = Buffer.create 256 in
  Array.iter
    (fun cv ->
       let sg = Engine.signal eng cv.cv_channel in
       let rs = Signal.resolve sg in
       let bit b = if b then "1" else "0" in
       change changes cv.vp (bit sg.Signal.v_plus);
       change changes cv.sp (bit sg.Signal.s_plus);
       change changes cv.vm (bit sg.Signal.v_minus);
       change changes cv.sm (bit sg.Signal.s_minus);
       let st =
         if rs.Signal.v_minus then "11"
         else if rs.Signal.v_plus && rs.Signal.s_plus then "10"
         else if rs.Signal.v_plus then "01"
         else "00"
       in
       change changes cv.state st;
       match sg.Signal.data with
       | Some v when sg.Signal.v_plus ->
         change changes cv.data (bin64 (data_image v))
       | Some _ | None -> change changes cv.data (bin64 0L))
    r.vars;
  if Buffer.length changes > 0 then begin
    Buffer.add_string r.buf (Fmt.str "#%d\n" cyc);
    Buffer.add_buffer r.buf changes
  end;
  r.n_cycles <- r.n_cycles + 1

let cycles r = r.n_cycles

let contents r =
  (* Close the waveform at the final time so viewers show the last
     cycle's extent; emitted on read, not accumulated. *)
  Buffer.contents r.buf ^ Fmt.str "#%d\n" r.n_cycles

let save path r =
  let oc = open_out path in
  output_string oc (contents r);
  close_out oc

let header net =
  let vars = build_vars net in
  let buf = Buffer.create 1024 in
  header_into buf net vars;
  Buffer.contents buf
