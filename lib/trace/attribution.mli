open Elastic_netlist
open Elastic_sim

(** Stall attribution: name the channel (and loop) that bounds
    throughput.

    In a SELF system backpressure flows upstream: a channel shows Retry
    cycles ([V+ /\ S+]) because its receiver could not accept, which in
    turn is caused by a stall further {e downstream} — or by the receiver
    itself (a stalling sink, a shared module arbitrating away, a
    variable-latency stage).  {!analyze} starts from the most-stalled
    channel of a finished run and walks the backpressure chain backwards
    (i.e. downstream, toward the cause), at each node following the
    outgoing channel with the most Retry cycles, until it reaches an
    intrinsic staller or closes a loop.  The last channel reached is the
    {e root}: the channel bounding throughput.

    The result is cross-checked against the static analysis: when the
    marked graph has a token-bearing critical cycle
    ({!Elastic_perf.Marked_graph.critical_cycle}), a root attributed to
    backpressure should lie on it — the dynamic trace and the analytic
    bound naming the same bottleneck is the paper's §3/§5 reading of
    where time goes. *)

type link = {
  al_channel : Netlist.channel;
  al_retry : int;  (** Retry cycles observed on the channel. *)
  al_stall_ratio : float;  (** Retry cycles per valid cycle. *)
}

(** Why the walk stopped at the root. *)
type cause =
  | Intrinsic of string
      (** The receiver stalls by itself; the string names its kind
          (e.g. "sink", "shared", "varlat"). *)
  | Loop
      (** The chain closed on itself: a token-starved or
          buffer-limited loop bounds throughput. *)
  | No_stall  (** No channel ever stalled: throughput is source-limited. *)

type t = {
  at_cycles : int;  (** Cycles the engine had simulated. *)
  at_chain : link list;
      (** The walked chain, most-stalled channel first, root last. *)
  at_root : link option;  (** The attributed bottleneck channel. *)
  at_cause : cause;
  at_critical : Elastic_perf.Marked_graph.cycle option;
      (** The marked graph's critical cycle, for cross-checking. *)
  at_root_on_critical : bool;
      (** Both endpoints of the root channel lie on the critical cycle. *)
}

(** Analyze a finished (or at least warmed-up) engine run. *)
val analyze : Engine.t -> t

val pp : Format.formatter -> t -> unit
