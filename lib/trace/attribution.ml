open Elastic_netlist
open Elastic_sim

type link = {
  al_channel : Netlist.channel;
  al_retry : int;
  al_stall_ratio : float;
}

type cause =
  | Intrinsic of string
  | Loop
  | No_stall

type t = {
  at_cycles : int;
  at_chain : link list;
  at_root : link option;
  at_cause : cause;
  at_critical : Elastic_perf.Marked_graph.cycle option;
  at_root_on_critical : bool;
}

let link_of eng (c : Netlist.channel) =
  let valid, retry, _ = Engine.activity eng c.Netlist.ch_id in
  { al_channel = c;
    al_retry = retry;
    al_stall_ratio =
      (if valid = 0 then 0.0
       else float_of_int retry /. float_of_int valid) }

(* The node kinds that stall their inputs for reasons of their own, not
   because of downstream backpressure. *)
let intrinsic_staller (n : Netlist.node) =
  match n.Netlist.kind with
  | Netlist.Sink _ -> Some "sink"
  | Netlist.Shared _ -> Some "shared-module arbitration"
  | Netlist.Varlat _ -> Some "variable-latency stage"
  | Netlist.Source _ | Netlist.Buffer _ | Netlist.Func _ | Netlist.Fork _
  | Netlist.Mux _ -> None

let analyze eng =
  let net = Engine.netlist eng in
  let critical =
    try Elastic_perf.Marked_graph.critical_cycle net
    with Invalid_argument _ | Elastic_netlist.Diagnostic.Reject _ -> None
  in
  let links = List.map (link_of eng) (Netlist.channels net) in
  let best = function
    | [] -> None
    | ls ->
      Some
        (List.fold_left
           (fun acc l -> if l.al_retry > acc.al_retry then l else acc)
           (List.hd ls) (List.tl ls))
  in
  let start =
    match best links with
    | Some l when l.al_retry > 0 -> Some l
    | Some _ | None -> None
  in
  match start with
  | None ->
    { at_cycles = Engine.cycle eng;
      at_chain = [];
      at_root = None;
      at_cause = No_stall;
      at_critical = critical;
      at_root_on_critical = false }
  | Some start ->
    let visited = Hashtbl.create 8 in
    let rec walk chain l =
      Hashtbl.replace visited l.al_channel.Netlist.ch_id ();
      let chain = l :: chain in
      let dst = Netlist.node net l.al_channel.Netlist.dst.Netlist.ep_node in
      match intrinsic_staller dst with
      | Some what -> (List.rev chain, l, Intrinsic what)
      | None -> (
          let next =
            best
              (List.map (link_of eng) (Netlist.outgoing net dst.Netlist.id))
          in
          match next with
          | Some n when n.al_retry > 0 ->
            if Hashtbl.mem visited n.al_channel.Netlist.ch_id then
              (* Closed a backpressure loop: the loop bounds throughput;
                 keep the loop's most-stalled channel as the root. *)
              (List.rev chain, l, Loop)
            else walk chain n
          | Some _ | None ->
            (* Outputs never stall, yet the input does: the node itself
               is the limiter (e.g. a join waiting for its other input,
               which shows up as no-stall on this path). *)
            (List.rev chain, l, Intrinsic (Netlist.kind_name dst.Netlist.kind)))
    in
    let chain, root, cause = walk [] start in
    let on_critical =
      match critical with
      | None -> false
      | Some c ->
        let name nid = (Netlist.node net nid).Netlist.name in
        List.mem (name root.al_channel.Netlist.src.Netlist.ep_node)
          c.Elastic_perf.Marked_graph.nodes
        && List.mem (name root.al_channel.Netlist.dst.Netlist.ep_node)
             c.Elastic_perf.Marked_graph.nodes
    in
    { at_cycles = Engine.cycle eng;
      at_chain = chain;
      at_root = Some root;
      at_cause = cause;
      at_critical = critical;
      at_root_on_critical = on_critical }

let pp_link ppf l =
  Fmt.pf ppf "%s (%d retry cycles, stall ratio %.3f)"
    l.al_channel.Netlist.ch_name l.al_retry l.al_stall_ratio

let pp ppf t =
  match t.at_root with
  | None ->
    Fmt.pf ppf
      "no stalled channels in %d cycles: throughput is source-limited"
      t.at_cycles
  | Some root ->
    Fmt.pf ppf "@[<v>bottleneck: %a@,cause: %s@,backpressure chain: %a@]"
      pp_link root
      (match t.at_cause with
       | Intrinsic what -> "intrinsic stall at " ^ what
       | Loop -> "backpressure loop"
       | No_stall -> "none")
      Fmt.(list ~sep:(any " <- ") string)
      (List.map (fun l -> l.al_channel.Netlist.ch_name) t.at_chain);
    (match t.at_critical with
     | Some c ->
       Fmt.pf ppf "@.critical cycle (marked graph): %a@.%s"
         Elastic_perf.Marked_graph.pp_cycle c
         (if t.at_root_on_critical then
            "-> the attributed bottleneck lies on the critical cycle"
          else
            "-> the attributed bottleneck is off the critical cycle \
             (early evaluation or an environment limiter)")
     | None ->
       Fmt.pf ppf "@.no token-bearing cycle (feed-forward design)")
