open Elastic_netlist

type sched_timeline = {
  tl_node : Netlist.node_id;
  tl_serves : int;
  tl_squashes : int;
  tl_replays : int;
  tl_predict_flips : int;
  tl_accuracy : float;
  tl_mean_serve_interval : float;
  tl_mean_squash_interval : float;
  tl_penalties : int list;
  tl_mean_penalty : float;
  tl_max_penalty : int;
  tl_accuracy_over_time : (int * float) list;
}

type acc = {
  mutable serves : int;
  mutable squashes : int;
  mutable replays : int;
  mutable flips : int;
  mutable serve_cycles_rev : int list;
  mutable squash_cycles_rev : int list;
  mutable penalties_rev : int list;
}

let analyze ?(window = 100) evs =
  if window < 1 then invalid_arg "Timeline.analyze: window must be >= 1";
  let tbl = Hashtbl.create 4 in
  let order = ref [] in
  let acc nid =
    match Hashtbl.find_opt tbl nid with
    | Some a -> a
    | None ->
      let a =
        { serves = 0; squashes = 0; replays = 0; flips = 0;
          serve_cycles_rev = []; squash_cycles_rev = [];
          penalties_rev = [] }
      in
      Hashtbl.replace tbl nid a;
      order := nid :: !order;
      a
  in
  List.iter
    (fun (e : Event.t) ->
       match e.Event.ev_subject, e.Event.ev_kind with
       | Event.Node nid, Event.Serve _ ->
         let a = acc nid in
         a.serves <- a.serves + 1;
         a.serve_cycles_rev <- e.Event.ev_cycle :: a.serve_cycles_rev
       | Event.Node nid, Event.Mispredict _ ->
         let a = acc nid in
         a.squashes <- a.squashes + 1;
         a.squash_cycles_rev <- e.Event.ev_cycle :: a.squash_cycles_rev
       | Event.Node nid, Event.Replay { penalty } ->
         let a = acc nid in
         a.replays <- a.replays + 1;
         a.penalties_rev <- penalty :: a.penalties_rev
       | Event.Node nid, Event.Predict _ ->
         let a = acc nid in
         a.flips <- a.flips + 1
       | _, _ -> ())
    evs;
  let mean_interval = function
    | [] | [ _ ] -> 0.0
    | first :: _ :: _ as cycles ->
      let last = List.fold_left (fun _ c -> c) first cycles in
      float_of_int (last - first) /. float_of_int (List.length cycles - 1)
  in
  List.rev !order
  |> List.map (fun nid ->
      let a = Hashtbl.find tbl nid in
      let serve_cycles = List.rev a.serve_cycles_rev in
      let squash_cycles = List.rev a.squash_cycles_rev in
      let penalties = List.rev a.penalties_rev in
      let windows =
        let tbl = Hashtbl.create 8 in
        let note cycles which =
          List.iter
            (fun c ->
               let w = c / window in
               let s, q =
                 Option.value ~default:(0, 0) (Hashtbl.find_opt tbl w)
               in
               Hashtbl.replace tbl w
                 (if which then (s + 1, q) else (s, q + 1)))
            cycles
        in
        note serve_cycles true;
        note squash_cycles false;
        Hashtbl.fold (fun w (s, q) l -> (w, s, q) :: l) tbl []
        |> List.sort compare
        |> List.filter_map (fun (w, s, q) ->
            if s = 0 then None
            else
              Some
                (((w + 1) * window) - 1,
                 1.0 -. (float_of_int q /. float_of_int s)))
      in
      { tl_node = nid;
        tl_serves = a.serves;
        tl_squashes = a.squashes;
        tl_replays = a.replays;
        tl_predict_flips = a.flips;
        tl_accuracy =
          (if a.serves = 0 then 1.0
           else 1.0 -. (float_of_int a.squashes /. float_of_int a.serves));
        tl_mean_serve_interval = mean_interval serve_cycles;
        tl_mean_squash_interval = mean_interval squash_cycles;
        tl_penalties = penalties;
        tl_mean_penalty =
          (match penalties with
           | [] -> 0.0
           | ps ->
             float_of_int (List.fold_left ( + ) 0 ps)
             /. float_of_int (List.length ps));
        tl_max_penalty = List.fold_left max 0 penalties;
        tl_accuracy_over_time = windows })

let pp net ppf tls =
  List.iter
    (fun tl ->
       Fmt.pf ppf
         "@[<v>scheduler %s: %d serves, %d squashes (accuracy %.3f), %d \
          prediction flips@,\
         \  commit interval %.2f cycles, squash interval %.2f cycles@,\
         \  replay penalty: %d replays, mean %.2f, max %d@,\
         \  accuracy over time:%a@]@."
         (Netlist.node net tl.tl_node).Netlist.name
         tl.tl_serves tl.tl_squashes tl.tl_accuracy tl.tl_predict_flips
         tl.tl_mean_serve_interval tl.tl_mean_squash_interval
         tl.tl_replays tl.tl_mean_penalty tl.tl_max_penalty
         Fmt.(
           list ~sep:nop (fun ppf (c, a) ->
               Fmt.pf ppf "@,    up to cycle %4d: %.3f" c a))
         tl.tl_accuracy_over_time)
    tls
