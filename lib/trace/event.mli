open Elastic_kernel
open Elastic_netlist

(** Typed cycle-accurate trace events.

    Every event is stamped with the cycle it happened on and the channel
    or node it happened at.  The event vocabulary covers exactly the
    phenomena the paper reasons about: token transfers and retries on
    SELF channels, anti-token traffic and cancellations (§2, §4.1),
    buffer occupancy changes, speculation-scheduler predictions, squashes
    and replays (§4.1.1), injected faults (lib/fault) and protocol
    monitor violations (§3.1).

    Events are produced by {!Tracer} and consumed by the exporters
    ({!Vcd}, {!Jsonl}), the analyses ({!Timeline}, and {!counts} below)
    and the shell's [trace dump]. *)

type subject =
  | Chan of Netlist.channel_id
  | Node of Netlist.node_id

type kind =
  | Transfer of Value.t option
      (** A token was delivered into the receiver ([T+]); carries the
          payload when one was driven. *)
  | Stall  (** A valid token was offered and stalled ([V+ /\ S+]). *)
  | Anti  (** An anti-token was present on the channel ([V-]). *)
  | Cancel  (** A token/anti-token pair annihilated on the channel. *)
  | Occupancy of { before : int; after : int }
      (** A buffer node's signed occupancy changed at the clock edge. *)
  | Predict of { way : int }
      (** A speculation scheduler changed its prediction to [way]
          (taking effect the following cycle). *)
  | Serve of { way : int }
      (** A shared module served (committed) a token on [way]. *)
  | Mispredict of { way : int }
      (** A squash: the prediction [way] was revealed wrong by a retry
          on the predicted output. *)
  | Replay of { penalty : int }
      (** The first serve after a squash, [penalty] cycles later — the
          squash penalty of the paper's replay recipe. *)
  | Inject
      (** The fault injector perturbed this channel's wire this cycle. *)
  | Violation of { property : string }
      (** A SELF protocol monitor flagged this channel. *)

type t = {
  ev_cycle : int;
  ev_subject : subject;
  ev_kind : kind;
}

(** Short stable label of the event kind ("transfer", "stall", ...),
    used by the JSONL schema. *)
val kind_label : kind -> string

(** Render with node/channel names resolved against the netlist. *)
val pp : Netlist.t -> Format.formatter -> t -> unit

(** {1 Counter reconstruction}

    Folding a complete event stream must reproduce the engine's
    statistics exactly ([Stats.collect]); the property is locked by a
    qcheck test. *)

type counts

val counts : t list -> counts

(** Tokens delivered on a channel ([Transfer] events). *)
val delivered : counts -> Netlist.channel_id -> int

(** Token/anti-token annihilations on a channel ([Cancel] events). *)
val killed : counts -> Netlist.channel_id -> int

(** Stalled-token cycles of a channel ([Stall] events). *)
val retries : counts -> Netlist.channel_id -> int

(** Anti-token cycles of a channel ([Anti] events). *)
val antis : counts -> Netlist.channel_id -> int

(** Serves of a shared module's scheduler ([Serve] events). *)
val serves : counts -> Netlist.node_id -> int

(** Squashes of a shared module's scheduler ([Mispredict] events). *)
val mispredictions : counts -> Netlist.node_id -> int
