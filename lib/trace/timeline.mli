open Elastic_netlist

(** Speculation timelines: per-scheduler prediction-quality metrics
    derived from an event stream.

    For each shared-module scheduler seen in the events, {!analyze}
    computes commit/squash interval statistics, the squash-penalty
    distribution (from [Replay] events — the cycles between a squash and
    the serve that completes its replay), overall prediction accuracy and
    accuracy over time in fixed cycle windows.  These are the §5.1/§5.2
    numbers behind "one cycle lost per misprediction", surfaced per run
    instead of per paper table. *)

type sched_timeline = {
  tl_node : Netlist.node_id;
  tl_serves : int;
  tl_squashes : int;
  tl_replays : int;
  tl_predict_flips : int;  (** [Predict] (prediction-changed) events. *)
  tl_accuracy : float;  (** [1 - squashes/serves] ([1.0] with no serves). *)
  tl_mean_serve_interval : float;
      (** Mean cycles between consecutive serves (commit interval). *)
  tl_mean_squash_interval : float;
      (** Mean cycles between consecutive squashes; [0.0] under two. *)
  tl_penalties : int list;  (** Squash penalties, chronological. *)
  tl_mean_penalty : float;
  tl_max_penalty : int;
  tl_accuracy_over_time : (int * float) list;
      (** [(window_end_cycle, accuracy_in_window)] for windows with at
          least one serve. *)
}

(** [analyze ?window evs] — [window] is the accuracy-over-time window in
    cycles (default 100). *)
val analyze : ?window:int -> Event.t list -> sched_timeline list

val pp : Netlist.t -> Format.formatter -> sched_timeline list -> unit
