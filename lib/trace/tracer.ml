open Elastic_kernel
open Elastic_sched
open Elastic_netlist
open Elastic_sim

type sched_state = {
  sn_node : Netlist.node_id;
  sn_sched : Scheduler.t;  (* live reference into the engine *)
  mutable sn_serves : int;
  mutable sn_mispred : int;
  mutable sn_predict : int;  (* prediction in effect for the next cycle *)
  mutable sn_squash : int option;  (* cycle of the unreplayed squash *)
}

type t = {
  ring : Event.t array;
  cap : int;
  mutable next : int;  (* write position *)
  mutable total : int;  (* events ever recorded *)
  channels : Netlist.channel array;
  scheds : sched_state array;
  occ : (Netlist.node_id, int) Hashtbl.t;
  mutable violations_seen : int;
}

let dummy =
  { Event.ev_cycle = -1; ev_subject = Event.Chan (-1); ev_kind = Event.Stall }

let create ?(capacity = 65536) eng =
  if capacity < 1 then invalid_arg "Tracer.create: capacity must be >= 1";
  let net = Engine.netlist eng in
  let scheds =
    Engine.schedulers eng
    |> List.map (fun (nid, sched) ->
        { sn_node = nid;
          sn_sched = sched;
          sn_serves = Scheduler.serves sched;
          sn_mispred = Scheduler.mispredictions sched;
          sn_predict = Scheduler.predict sched;
          sn_squash = None })
    |> Array.of_list
  in
  let occ = Hashtbl.create 8 in
  List.iter (fun (nid, n) -> Hashtbl.replace occ nid n)
    (Engine.occupancies eng);
  { ring = Array.make capacity dummy;
    cap = capacity;
    next = 0;
    total = 0;
    channels = Array.of_list (Netlist.channels net);
    scheds;
    occ;
    violations_seen = List.length (Engine.violations eng) }

let push t ev =
  t.ring.(t.next) <- ev;
  t.next <- (t.next + 1) mod t.cap;
  t.total <- t.total + 1

let observe t eng =
  let cyc = Engine.cycle eng in
  let ev ~subject kind =
    push t { Event.ev_cycle = cyc; ev_subject = subject; ev_kind = kind }
  in
  (* Injected faults first: causes before consequences. *)
  List.iter (fun cid -> ev ~subject:(Event.Chan cid) Event.Inject)
    (Engine.injected eng);
  (* Channel handshake events, in dense channel order. *)
  Array.iter
    (fun (c : Netlist.channel) ->
       let cid = c.Netlist.ch_id in
       let bev = Engine.events eng cid in
       let sg = Signal.resolve (Engine.signal eng cid) in
       if bev.Signal.token_in then
         ev ~subject:(Event.Chan cid) (Event.Transfer sg.Signal.data);
       if bev.Signal.cancelled then ev ~subject:(Event.Chan cid) Event.Cancel;
       if sg.Signal.v_plus && sg.Signal.s_plus then
         ev ~subject:(Event.Chan cid) Event.Stall;
       if sg.Signal.v_minus then ev ~subject:(Event.Chan cid) Event.Anti)
    t.channels;
  (* Buffer occupancy changes (clock edge already happened). *)
  List.iter
    (fun (nid, after) ->
       let before = Option.value ~default:0 (Hashtbl.find_opt t.occ nid) in
       if before <> after then begin
         ev ~subject:(Event.Node nid) (Event.Occupancy { before; after });
         Hashtbl.replace t.occ nid after
       end)
    (Engine.occupancies eng);
  (* Scheduler activity, from the counter deltas of the clock edge.  The
     way served (or squashed) is the prediction that was in effect
     during the elapsed cycle, i.e. the one captured before this clock
     edge (see Instance.shared_clock).  Serves are processed before the
     squash so a replay only completes on a later cycle's serve. *)
  Array.iter
    (fun s ->
       let serves = Scheduler.serves s.sn_sched in
       let mispred = Scheduler.mispredictions s.sn_sched in
       for _ = 1 to serves - s.sn_serves do
         ev ~subject:(Event.Node s.sn_node)
           (Event.Serve { way = s.sn_predict });
         match s.sn_squash with
         | Some c0 when c0 < cyc ->
           ev ~subject:(Event.Node s.sn_node)
             (Event.Replay { penalty = cyc - c0 });
           s.sn_squash <- None
         | Some _ | None -> ()
       done;
       s.sn_serves <- serves;
       if mispred > s.sn_mispred then begin
         for _ = 1 to mispred - s.sn_mispred do
           ev ~subject:(Event.Node s.sn_node)
             (Event.Mispredict { way = s.sn_predict })
         done;
         s.sn_mispred <- mispred;
         s.sn_squash <- Some cyc
       end;
       let p = Scheduler.predict s.sn_sched in
       if p <> s.sn_predict then begin
         ev ~subject:(Event.Node s.sn_node) (Event.Predict { way = p });
         s.sn_predict <- p
       end)
    t.scheds;
  (* Fresh monitor violations: the monitors stamp them with the elapsed
     cycle, so anything beyond the count seen so far is new. *)
  let violations = Engine.violations eng in
  let n = List.length violations in
  if n > t.violations_seen then begin
    List.iter
      (fun (name, (v : Protocol.violation)) ->
         if v.Protocol.cycle = cyc then
           match
             Array.find_opt
               (fun (c : Netlist.channel) ->
                  String.equal c.Netlist.ch_name name)
               t.channels
           with
           | Some c ->
             ev ~subject:(Event.Chan c.Netlist.ch_id)
               (Event.Violation { property = v.Protocol.property })
           | None -> ())
      violations;
    t.violations_seen <- n
  end

let attach ?capacity eng =
  let t = create ?capacity eng in
  Engine.set_observer eng (Some (observe t));
  t

let events t =
  if t.total <= t.cap then
    List.init t.next (fun i -> t.ring.(i))
  else
    List.init t.cap (fun i -> t.ring.((t.next + i) mod t.cap))

let dropped t = max 0 (t.total - t.cap)

let recorded t = t.total

let capacity t = t.cap

let recent ?(limit = 10) ?channel t =
  let evs = events t in
  let evs =
    match channel with
    | None -> evs
    | Some cid ->
      List.filter
        (fun (e : Event.t) ->
           match e.Event.ev_subject with
           | Event.Chan c -> c = cid
           | Event.Node _ -> false)
        evs
  in
  let n = List.length evs in
  if n <= limit then evs else List.filteri (fun i _ -> i >= n - limit) evs
