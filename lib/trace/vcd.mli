open Elastic_netlist
open Elastic_sim

(** VCD (IEEE 1364 value-change dump) export of a traced run.

    Every elastic channel contributes six variables under one scope:

    - [vp], [sp], [vm], [sm] — the raw SELF handshake wires
      (V+, S+, V-, S-), 1 bit each;
    - [state] — the derived channel state, 2 bits:
      [00] Idle, [01] Transfer, [10] Retry, [11] Anti;
    - [data] — a 64-bit flattened image of the token payload
      ([Bool] 1 bit, [Int] 8 bits, [Word] 64 bits, [Str] 8 bits per
      character, tuples concatenated depth-first, truncated to 64 bits),
      meaningful while [vp] is high.

    One VCD time unit is one simulated cycle.  The header is fully
    deterministic (no wall-clock date), so golden tests can lock it
    byte-exactly.  The output parses in standard viewers; see README for
    a GTKWave recipe. *)

type recorder

(** [create net] prepares a recorder for the netlist's channels.
    Install it with [Engine.set_observer eng (Some (observe r))] — or
    compose it with a {!Tracer} in a single observer closure. *)
val create : Netlist.t -> recorder

(** Observer body: dump the elapsed cycle's value changes. *)
val observe : recorder -> Engine.t -> unit

(** Cycles recorded so far. *)
val cycles : recorder -> int

(** The complete VCD document (header + change dump so far). *)
val contents : recorder -> string

val save : string -> recorder -> unit

(** The deterministic header (through [$enddefinitions]) the recorder
    will emit for this netlist — exposed for golden tests. *)
val header : Netlist.t -> string
