open Elastic_kernel
open Elastic_sched
open Elastic_netlist

(** Runtime semantics of one netlist node.

    Each node is evaluated as a monotone function over partially-known
    channel wires ({!eval} may be called repeatedly within a cycle until a
    fixed point is reached) and then clocked once with the resolved
    signals and the channel boundary events of the cycle ({!clock}).

    The implemented controllers follow the paper:
    - standard EB: Fig. 2(a)/Fig. 3 with [Lf = 1], [Lb = 1], [C = 2];
    - zero-backward-latency EB: Fig. 5 with [Lf = 1], [Lb = 0], [C = 1];
    - early-evaluation multiplexor with anti-token emission (§2, §4.1);
    - shared module with speculation scheduler: Fig. 4(b);
    - eager fork, lazy join, environment sources/sinks. *)

(** External resolution of one nondeterministic decision (used by the
    model checker to replace random sources/sinks/schedulers). *)
type choice =
  | Offer of bool  (** Source: offer a token this cycle? *)
  | Stall of bool  (** Sink: assert stop this cycle? *)
  | Predict of int  (** Shared-module scheduler decision. *)

(** {1 Register state}

    The clocked state of each node kind, exposed so the flat-arena
    evaluator ({!Arena}) can re-implement the eval equations over packed
    integer wire codes while sharing the node registers with this
    module.  By convention only {!begin_cycle}, {!clock} and {!restore}
    mutate these records; evaluators treat them as read-only. *)

type source_state = {
  sspec : Netlist.source_spec;
  svals : Value.t array;  (** [Stream] payloads, for O(1) peeking. *)
  srng : Rng.t;
  mutable idx : int;
  mutable pending_kill : int;
  mutable retry : bool;
  mutable offering : bool;
}

type sink_state = {
  kspec : Netlist.sink_spec;
  krng : Rng.t;
  mutable cyc : int;
  mutable stalling : bool;
}

type eb_state = { mutable n : int; mutable queue : Value.t list }

type eb0_state = { mutable full : bool; mutable stored : Value.t }

type fork_state = { done_ : bool array; pend : int array }

type emux_state = { q : int array }

type varlat_state = { mutable pipe : (Value.t * int) option }

type state =
  | S_stateless
  | S_source of source_state
  | S_sink of sink_state
  | S_eb of eb_state
  | S_eb0 of eb0_state
  | S_fork of fork_state
  | S_emux of emux_state
  | S_shared of Scheduler.t
  | S_varlat of varlat_state

type t

(** [create node ~ins ~sel ~outs] builds the runtime instance; wire arrays
    must follow port numbering ([ins.(i)] is port [In i], etc.). *)
val create :
  Netlist.node -> ins:Wires.wire array -> sel:Wires.wire option ->
  outs:Wires.wire array -> t

val node : t -> Netlist.node

(** The node's register state (shared with the arena evaluator). *)
val state : t -> state

(** Next value a source would offer (its stream head), if any. *)
val source_peek : source_state -> Value.t option

(** Does this instance consume a nondeterministic choice each cycle? *)
val is_nondet : t -> bool

(** The shared-module scheduler, if this node has one. *)
val scheduler : t -> Scheduler.t option

(** Start-of-cycle hook: environment nodes decide what to offer/accept.
    [choice] overrides the node's own (pseudo-random or scripted)
    behaviour. *)
val begin_cycle : t -> choice:choice option -> unit

(** One monotone evaluation pass; writes whatever wire values have become
    determined. *)
val eval : Wires.t -> t -> unit

(** Clock edge.  [ins]/[sel]/[outs] carry, per port, the resolved channel
    signals and the boundary events of the elapsed cycle. *)
val clock :
  t ->
  ins:(Signal.t * Signal.events) array ->
  sel:(Signal.t * Signal.events) option ->
  outs:(Signal.t * Signal.events) array ->
  unit

(** {1 State snapshots (for the model checker)} *)

(** Marshalable register state of a node. *)
type snap

val snapshot : t -> snap

val restore : t -> snap -> unit

val snap_equal : snap -> snap -> bool

val pp_snap : Format.formatter -> snap -> unit

(** {1 Introspection} *)

(** Signed token count of a buffer node ([tokens >= 0], anti-tokens
    [< 0]); [None] for non-buffer nodes. *)
val buffer_occupancy : t -> int option

(** Tokens currently stored anywhere in the node (buffers only). *)
val stored_values : t -> Value.t list
