(** Monotonic, injectable time source for wall-clock profiling.

    The engine's settle-phase timing used to read [Unix.gettimeofday],
    which jumps under NTP steps and cannot be mocked.  A {!t} is any
    nanosecond counter that never decreases; {!monotonic} is the
    system's monotonic clock (CLOCK_MONOTONIC via the bechamel stubs),
    and {!ticker} builds a deterministic mock for tests. *)

(** A clock: returns a monotonically non-decreasing timestamp in
    nanoseconds.  Only differences of readings are meaningful. *)
type t = unit -> int64

(** The system monotonic clock — immune to wall-time steps. *)
val monotonic : t

(** [ticker ~step_ns] returns a deterministic clock advancing by
    [step_ns] nanoseconds per reading, starting at 0 (the first reading
    returns [step_ns]). *)
val ticker : step_ns:int64 -> t

(** Seconds between two readings ([Int64] nanosecond stamps). *)
val seconds_between : int64 -> int64 -> float
