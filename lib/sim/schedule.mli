open Elastic_netlist

(** Static evaluation schedule for the combinational phase of a cycle.

    The channel wires of an elastic netlist have single-writer field
    groups: the forward group [F(c)] ([V+], data, [S-]) is written by
    [c]'s source node and the backward group [B(c)] ([S+], [V-]) by its
    destination.  A node {e depends} on another when its
    {!Instance.eval} reads a group the other writes; the per-kind read
    sets mirror the eval equations (an [Eb] reads nothing — its outputs
    are pure register functions — which is what keeps most of the graph
    acyclic).

    {!build} condenses the strongly connected components of this graph
    and orders the condensation topologically.  Evaluating in that order,
    an acyclic node settles in exactly one evaluation; only the cyclic
    combinational regions (zero-latency elastic control clusters around
    [Eb0]s, early muxes, forks and shared modules) iterate locally, and
    within them a node is re-evaluated only when a wire it reads has
    actually changed. *)

type component =
  | Single of int  (** Acyclic node: one evaluation settles it. *)
  | Scc of int array  (** Cyclic region: iterate members to fixpoint. *)

type t = {
  order : component array;  (** Topological order of the condensation. *)
  comp_of : int array;  (** Node index -> component index. *)
  readers_f : int array array;
      (** Channel index -> nodes whose eval reads [F(c)]. *)
  readers_b : int array array;
      (** Channel index -> nodes whose eval reads [B(c)]. *)
  src_of : int array;  (** Channel index -> writer node of [F(c)]. *)
  dst_of : int array;  (** Channel index -> writer node of [B(c)]. *)
}

(** [build net] computes the schedule.  Node index [i] refers to the
    [i]-th element of [Netlist.nodes net] and channel index [j] to the
    [j]-th element of [Netlist.channels net] — the same dense numbering
    the engine uses.  The netlist must be valid. *)
val build : Netlist.t -> t

(** {1 Statistics (for profiling reports)} *)

val components : t -> int

(** Number of cyclic (iterating) components. *)
val scc_count : t -> int

(** Size of the largest cyclic component. *)
val largest_scc : t -> int

(** Total nodes inside cyclic components. *)
val scc_nodes : t -> int

val pp_stats : Format.formatter -> t -> unit
