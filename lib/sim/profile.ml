(* Evaluation-cost observability for the engine: how much combinational
   work each cycle takes, where it goes, and how long it lasts. *)

type t = {
  n_nodes : int;
  per_node : int array;  (* cumulative eval calls per dense node index *)
  mutable cycles : int;
  mutable evals : int;
  mutable settle_seconds : float;
  mutable compile_seconds : float;
      (* engine-construction cost (schedule build, arena compile);
         survives [reset] — compilation happened once, before any
         window *)
  hist : (int, int) Hashtbl.t;  (* settle passes -> number of cycles *)
  mutable max_passes : int;
  mutable last_passes : int;
}

let create ~n_nodes =
  { n_nodes;
    per_node = Array.make (max n_nodes 1) 0;
    cycles = 0;
    evals = 0;
    settle_seconds = 0.0;
    compile_seconds = 0.0;
    hist = Hashtbl.create 8;
    max_passes = 0;
    last_passes = 0 }

let reset t =
  Array.fill t.per_node 0 (Array.length t.per_node) 0;
  t.cycles <- 0;
  t.evals <- 0;
  t.settle_seconds <- 0.0;
  Hashtbl.reset t.hist;
  t.max_passes <- 0;
  t.last_passes <- 0

let note_eval t i =
  t.per_node.(i) <- t.per_node.(i) + 1;
  t.evals <- t.evals + 1

(* Batched accounting for the flat-arena settle loop: it bumps the
   per-node counters in place and folds the eval total in once per
   settle, keeping [evals] = sum of [per_node] at every observation
   point outside the loop. *)
let per_node_array t = t.per_node

let add_evals t n = t.evals <- t.evals + n

let record_cycle t ~passes ~seconds =
  t.cycles <- t.cycles + 1;
  t.settle_seconds <- t.settle_seconds +. seconds;
  t.max_passes <- max t.max_passes passes;
  t.last_passes <- passes;
  let prev = Option.value ~default:0 (Hashtbl.find_opt t.hist passes) in
  Hashtbl.replace t.hist passes (prev + 1)

let set_compile_seconds t s = t.compile_seconds <- s

let cycles t = t.cycles

let evals t = t.evals

let settle_seconds t = t.settle_seconds

let compile_seconds t = t.compile_seconds

(* Deprecated alias: the name suggested whole-run wall time, but it
   always returned settle-only time. *)
let wall_seconds t = t.settle_seconds

let evals_per_cycle t =
  if t.cycles = 0 then 0.0
  else float_of_int t.evals /. float_of_int t.cycles

let max_passes t = t.max_passes

let last_passes t = t.last_passes

let node_evals t i = t.per_node.(i)

(* Settle-pass histogram, ascending by pass count. *)
let pass_histogram t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.hist []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* The [n] nodes with the most eval calls, descending. *)
let top_nodes t n =
  Array.to_list (Array.mapi (fun i c -> (i, c)) t.per_node)
  |> List.filter (fun (_, c) -> c > 0)
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < n)

let pp ?(name = string_of_int) ppf t =
  Fmt.pf ppf
    "@[<v>%d cycles, %d node evaluations (%.2f evals/cycle, %d nodes)@,\
     compile phase %.3f ms, settle phase %.3f ms (%.2f us/cycle)@,\
     settle passes per cycle (max %d):"
    t.cycles t.evals (evals_per_cycle t) t.n_nodes
    (t.compile_seconds *. 1e3)
    (t.settle_seconds *. 1e3)
    (if t.cycles = 0 then 0.0
     else t.settle_seconds *. 1e6 /. float_of_int t.cycles)
    t.max_passes;
  List.iter
    (fun (p, n) -> Fmt.pf ppf "@,  %3d pass%s: %d cycles" p
        (if p = 1 then " " else "es") n)
    (pass_histogram t);
  Fmt.pf ppf "@,busiest nodes:";
  List.iter
    (fun (i, c) -> Fmt.pf ppf "@,  %-24s %d evals" (name i) c)
    (top_nodes t 5);
  Fmt.pf ppf "@]"
