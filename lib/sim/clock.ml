type t = unit -> int64

let monotonic : t = Monotonic_clock.now

let ticker ~step_ns =
  let now = ref 0L in
  fun () ->
    now := Int64.add !now step_ns;
    !now

let seconds_between t0 t1 = Int64.to_float (Int64.sub t1 t0) *. 1e-9
