open Elastic_kernel
open Elastic_sched
open Elastic_netlist

(** Cycle-accurate simulator for elastic netlists.

    Each cycle proceeds in three phases:
    + environment nodes decide what they offer/accept ({!Instance.begin_cycle});
    + all nodes are evaluated to a combinational fixed point over the
      channel wires — control bits start unknown and node equations are
      monotone, so the fixed point is unique; if bits remain unknown the
      netlist has a true combinational cycle and {!step} raises;
    + channel boundary events are derived (including token/anti-token
      cancellation), protocol monitors run, statistics are updated, and
      every node is clocked.

    The engine also runs the paper's verification conditions online: the
    SELF protocol monitors of §3.1 on every channel and a starvation
    watchdog for the leads-to constraint (1) on shared-module inputs. *)

(** Structured simulation failure: the cycle it occurred on and, when
    known, the offending node and channel, so shells and fault-campaign
    reports can render provenance instead of an opaque string. *)
type error = {
  err_cycle : int;
  err_node : Netlist.node_id option;
  err_channel : Netlist.channel_id option;
  err_code : string option;
      (** Lint rule code when the failure has a known static cause — the
          structural code (E001-E004) that made [create] refuse the
          netlist, or ["E102"] when the combinational phase found an
          unbroken cycle at runtime — or the runtime diagnostic code
          ["E110"] when a budget watchdog fired: the settle loop
          exceeded its pass budget without converging, or the engine's
          cycle budget ([max_cycles]) was exhausted.  Campaign runners
          key retry/permanent-failure classification on this code. *)
  err_msg : string;
}

exception Simulation_error of error

val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string

(** Fault-injection hook: called once per channel per cycle (before the
    combinational phase); returning an override perturbs that channel's
    wire for the cycle.  See {!Wires.override}. *)
type injector = cycle:int -> Netlist.channel_id -> Wires.override option

type t

(** How the combinational phase of each cycle is evaluated.

    [Levelized] (the default) evaluates nodes in the topological order of
    the condensed dependency graph computed by {!Schedule.build}: acyclic
    nodes settle in a single evaluation and only cyclic elastic-control
    regions iterate locally, driven by a dirty set of changed wires.

    [Reference] is the original blind fixpoint — every node is
    re-evaluated in every pass until no wire changes.  It is kept as the
    oracle for differential testing; both modes reach the same unique
    fixed point (node equations are monotone over the 3-valued wires).

    [Arena] runs the levelized algorithm on the flat preallocated
    arena backend ({!Arena}): packed integer wire codes, Bigarray data
    buses and flat instruction arrays instead of per-channel records
    and closures.  It is byte-identical to [Levelized] in traces,
    metrics, eval counts and error behaviour (the three-way
    differential suite enforces this), and is the fast path for large
    designs. *)
type eval_mode = Levelized | Reference | Arena

(** Lowercase backend name: ["levelized"], ["reference"], ["arena"]. *)
val mode_name : eval_mode -> string

(** Inverse of {!mode_name} (case-insensitive); [None] on anything
    else. *)
val mode_of_string : string -> eval_mode option

(** [create netlist] compiles and validates the netlist.

    @param monitor enable protocol monitors (default [true]).
    @param liveness_bound watchdog threshold in cycles (default [64]).
    @param mode combinational evaluation strategy.  When omitted, the
    [ELASTIC_EVAL_MODE] environment variable picks the default
    ([levelized], [reference] or [arena] — the CI matrix uses this to
    force the arena backend over the whole test tree); unset or
    unrecognised, the default is [Levelized].
    @param max_passes cap on global fixpoint passes in [Reference] mode
    before {!step} raises the non-convergence error (code ["E110"])
    naming the channels that were still changing (default
    [5 * channels + 16], which monotone evaluation can never exceed).
    @param max_cycles hard cycle budget: {!step} beyond it raises a
    typed ["E110"] timeout instead of letting a pathological workload
    (runaway replay storm, non-draining settle loop) hang the caller
    forever.  Default: unlimited.
    @raise Invalid_argument on a negative [max_cycles].
    @param clock time source for settle-phase wall-clock profiling
    (default {!Clock.monotonic}); inject {!Clock.ticker} in tests for
    deterministic timings. *)
val create :
  ?monitor:bool -> ?liveness_bound:int -> ?mode:eval_mode ->
  ?max_passes:int -> ?max_cycles:int -> ?clock:Clock.t -> Netlist.t -> t

val netlist : t -> Netlist.t

(** Cycles simulated so far. *)
val cycle : t -> int

val mode : t -> eval_mode

(** Evaluation-cost counters accumulated since creation. *)
val profile : t -> Profile.t

(** The static evaluation schedule (also built in [Reference] mode, for
    its statistics). *)
val schedule : t -> Schedule.t

(** Install (or remove, with [None]) the fault injector consulted at the
    start of every subsequent {!step}.  The engine itself is unchanged:
    with no injector the wire store carries no overrides. *)
val set_injector : t -> injector option -> unit

(** Install (or remove, with [None]) the per-cycle observer, mirroring
    {!set_injector}.  The observer is invoked at the very end of every
    {!step} — after monitors, statistics and the clock edge, while
    {!cycle} still names the elapsed cycle — so it can read the elapsed
    cycle's {!signal}s, {!events}, counters and {!injected} channels.
    The observability layer ([Elastic_trace.Tracer]) attaches here.
    With no observer installed the hook costs one branch and allocates
    nothing. *)
val set_observer : t -> (t -> unit) option -> unit

(** Channels perturbed by the injector during the elapsed cycle.  Only
    tracked while an observer is installed (always [[]] otherwise). *)
val injected : t -> Netlist.channel_id list

(** Simulate one cycle.  [choices] overrides nondeterministic decisions of
    environment nodes and [External] schedulers, keyed by node id.
    @raise Simulation_error on combinational cycles. *)
val step : ?choices:(Netlist.node_id -> Instance.choice option) -> t -> unit

(** [run t n] simulates [n] cycles; [on_cycle] is called after each cycle
    (signals of the elapsed cycle are inspectable). *)
val run :
  ?choices:(Netlist.node_id -> Instance.choice option) ->
  ?on_cycle:(t -> unit) -> t -> int -> unit

(** {1 Observation} *)

(** Resolved signals of a channel during the last simulated cycle. *)
val signal : t -> Netlist.channel_id -> Signal.t

(** Boundary events of a channel during the last simulated cycle. *)
val events : t -> Netlist.channel_id -> Signal.events

(** Transfer stream recorded at a sink node. *)
val sink_stream : t -> Netlist.node_id -> Transfer.t

(** Tokens delivered on a channel since creation. *)
val delivered : t -> Netlist.channel_id -> int

(** Tokens annihilated by anti-tokens on a channel since creation. *)
val killed : t -> Netlist.channel_id -> int

(** [(valid, retry, anti)] cycle counts of a channel: cycles with a token
    offered, with a token stalled, and with an anti-token present. *)
val activity : t -> Netlist.channel_id -> int * int * int

(** Delivered tokens per cycle at the sink's input channel. *)
val throughput : t -> Netlist.node_id -> float

(** Delivered tokens per cycle between the first and last delivery — the
    steady-state rate, free of warm-up and drain artifacts on finite
    workloads. *)
val windowed_throughput : t -> Netlist.node_id -> float

(** Signed occupancy of every buffer node. *)
val occupancies : t -> (Netlist.node_id * int) list

(** Net token count currently stored in buffers (tokens minus
    anti-tokens) — used by conservation tests. *)
val stored_tokens : t -> int

(** Protocol violations accumulated by the channel monitors, tagged with
    the channel name. *)
val violations : t -> (string * Protocol.violation) list

(** Leads-to (starvation) violations observed at shared-module inputs. *)
val starvation_violations : t -> string list

(** Shared-module schedulers, for misprediction statistics. *)
val schedulers : t -> (Netlist.node_id * Scheduler.t) list

(** Nodes that consume a nondeterministic choice each cycle. *)
val nondet_nodes : t -> Netlist.node list

(** {1 State snapshots (model checking)} *)

type snap

val snapshot : t -> snap

val restore : t -> snap -> unit

(** Stable key identifying the register state (cycle counters of
    environment pattern nodes included). *)
val state_key : t -> string

val pp_snap : Format.formatter -> snap -> unit
