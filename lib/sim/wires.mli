open Elastic_kernel

(** Per-cycle channel wire values with three-valued (unknown) logic.

    During the combinational phase of a cycle each control bit of each
    channel starts unknown and is written at most once by the driving
    node.  The fixed-point engine repeatedly evaluates nodes until no new
    wire becomes known; writing two different values to one wire is a
    simulator bug and raises {!Conflict}.

    Wires additionally support per-cycle {e overrides} — the
    fault-injection hook.  An override pins control bits to a forced
    level and/or corrupts the data payload; the driving node's write is
    silently reconciled against the forced value so the fixed point stays
    monotone and conflict-free while the rest of the circuit observes the
    perturbed wire. *)

(** A fault overlay for one channel wire during one cycle.  [force_*]
    pin a control bit; [map_data] transforms the payload the driver
    writes; [subst_data] supplies a payload when the wire is forced
    valid but carries no driven data (token forgery / duplication). *)
type override = {
  force_v_plus : bool option;
  force_s_plus : bool option;
  force_v_minus : bool option;
  force_s_minus : bool option;
  map_data : (Value.t -> Value.t) option;
  subst_data : Value.t option;
}

val no_override : override

(** Raised on conflicting writes to one wire — a simulator bug (or an
    injected fault that broke write-once discipline).  The engine wraps
    this with channel provenance. *)
exception Conflict of { wire : int; field : string }

type wire

type t

(** [create n] makes a store for [n] channels (dense indices). *)
val create : int -> t

val wire : t -> int -> wire

(** Forget all values (start of a new cycle).  Overrides are kept. *)
val reset : t -> unit

(** [set_override t i ov] installs [ov] on wire [i] and immediately seeds
    any forced control bits, so call it after {!reset} and before node
    evaluation. *)
val set_override : t -> int -> override -> unit

(** Remove all installed overrides. *)
val clear_overrides : t -> unit

(** Has any wire been written since the flag was last cleared? *)
val progress : t -> bool

val clear_progress : t -> unit

(** Indices of the wires written since {!clear_progress} (most recent
    first, possibly with duplicates).  The levelized scheduler uses this
    to wake only the readers of wires that actually changed, and the
    reference fixpoint uses it to name the still-changing channels when
    it fails to converge. *)
val written : t -> int list

(** Number of control bits still unknown (data excluded). *)
val unknown_count : t -> int

(** {1 Reading} *)

val v_plus : wire -> bool option

val s_plus : wire -> bool option

val v_minus : wire -> bool option

val s_minus : wire -> bool option

(** Data is meaningful only when [v_plus = Some true]. *)
val data : wire -> Value.t option

(** {1 Writing}  @raise Conflict on conflicting writes. *)

val set_v_plus : t -> wire -> bool -> unit

val set_s_plus : t -> wire -> bool -> unit

val set_v_minus : t -> wire -> bool -> unit

val set_s_minus : t -> wire -> bool -> unit

val set_data : t -> wire -> Value.t -> unit

(** Fully-resolved signals of a wire after the fixed point; unknown bits
    default to false (they can only remain unknown if the engine already
    reported an error). *)
val to_signal : wire -> Signal.t
