open Elastic_kernel

(** Flat-arena evaluator for the combinational phase of a cycle.

    Channel state lives in preallocated flat arrays — four 2-bit Kleene
    codes packed per channel into an [int] control word, data split into
    an unboxed int array, an [int64] {!Bigarray} for word buses and a
    boxed [Value.t] spill array — and the levelized schedule is
    compiled to flat index arrays walked by a tight loop.

    The arena executes the {e identical} algorithm as the record
    engine's [Levelized] mode (same evaluation order, dirty-set
    propagation and budgets), so eval counts, settle passes, traces and
    metrics are byte-identical across the two backends; the speedup
    comes from removing allocation and indirection.  [Engine] owns the
    mode dispatch, error rendering and everything outside the settle
    loop; node register state stays in {!Instance} and is shared. *)

type t

(** Raised when a cyclic region exhausts its iteration budget; the
    engine converts it into the same E110 error [Levelized] raises. *)
exception Did_not_converge

(** [create ~schedule ~profile ~cycle_evals ~nchan specs] compiles the
    arena.  [specs] lists, per dense node index, the instance and its
    dense input/sel/output channel indices (the engine's compiled
    order); [profile] and [cycle_evals] are the engine's counters,
    updated exactly as the record backends update them. *)
val create :
  schedule:Schedule.t ->
  profile:Profile.t ->
  cycle_evals:int array ->
  nchan:int ->
  (Instance.t * int array * int option * int array) array ->
  t

(** Clear all wire codes and data tags for a new cycle (overrides
    persist, mirroring [Wires.reset]). *)
val reset : t -> unit

(** Install a fault-injection override on a dense channel index, seeding
    forced bits (mirrors [Wires.set_override]). *)
val set_override : t -> int -> Wires.override -> unit

val clear_overrides : t -> unit

(** Run the combinational phase to its fixed point.
    @raise Wires.Conflict on a contradictory wire write.
    @raise Did_not_converge when an SCC budget is exhausted. *)
val settle : t -> unit

(** Control bits still unknown after [settle] (combinational cycle). *)
val unknown_count : t -> int

(** Does the channel have an undetermined control field? *)
val undetermined : t -> int -> bool

(** Channels written during the last evaluation, most-recent-first —
    the non-convergence provenance set (error paths only). *)
val written_channels : t -> int list

(** Dense index of the node whose evaluation raised (error paths). *)
val last_eval : t -> int

(** Resolved signal of a dense channel index, mirroring
    [Wires.to_signal] (including the substitute-payload fallback). *)
val to_signal : t -> int -> Signal.t
