open Elastic_kernel
open Elastic_netlist

type error = {
  err_cycle : int;
  err_node : Netlist.node_id option;
  err_channel : Netlist.channel_id option;
  err_code : string option;
  err_msg : string;
}

exception Simulation_error of error

let error ?code ?node ?channel ~cycle msg =
  { err_cycle = cycle; err_node = node; err_channel = channel;
    err_code = code; err_msg = msg }

let fail ?code ?node ?channel ~cycle msg =
  raise (Simulation_error (error ?code ?node ?channel ~cycle msg))

let pp_error ppf e =
  Fmt.pf ppf "cycle %d%a%a%a: %s" e.err_cycle
    Fmt.(option (fmt " [%s]"))
    e.err_code
    Fmt.(option (fmt ", node %d"))
    e.err_node
    Fmt.(option (fmt ", channel %d"))
    e.err_channel e.err_msg

let error_to_string e = Fmt.str "%a" pp_error e

type injector = cycle:int -> Netlist.channel_id -> Wires.override option

type eval_mode = Levelized | Reference | Arena

let mode_name = function
  | Levelized -> "levelized"
  | Reference -> "reference"
  | Arena -> "arena"

let mode_of_string s =
  match String.lowercase_ascii s with
  | "levelized" -> Some Levelized
  | "reference" -> Some Reference
  | "arena" -> Some Arena
  | _ -> None

(* The CI matrix forces the arena backend over the whole test tree by
   exporting ELASTIC_EVAL_MODE=arena; an unrecognised value falls back
   to the default rather than failing every engine creation. *)
let default_mode () =
  match Sys.getenv_opt "ELASTIC_EVAL_MODE" with
  | None -> Levelized
  | Some s -> Option.value (mode_of_string s) ~default:Levelized

type compiled = {
  inst : Instance.t;
  in_ch : int array;  (* dense wire index per In port *)
  sel_ch : int option;
  out_ch : int array;
}

type t = {
  net : Netlist.t;
  ws : Wires.t;
  compiled : compiled array;
  chans : Netlist.channel array;  (* dense order *)
  ch_index : (Netlist.channel_id, int) Hashtbl.t;
  monitors : Protocol.monitor array;  (* empty if monitoring disabled *)
  liveness_bound : int;
  mode : eval_mode;
  schedule : Schedule.t;
  profile : Profile.t;
  max_passes : int;
  max_cycles : int option;
  cycle_evals : int array;  (* per-node eval calls within this cycle *)
  dirty : bool array;  (* scratch for local SCC iteration *)
  mutable cycle : int;
  mutable last_signals : Signal.t array;
  mutable last_events : Signal.events array;
  delivered : int array;
  killed : int array;
  valid_cycles : int array;  (* cycles with V+ asserted *)
  retry_cycles : int array;  (* cycles with V+ & S+ (resolved) *)
  anti_cycles : int array;  (* cycles with V- asserted *)
  sink_streams : (Netlist.node_id, Transfer.t ref) Hashtbl.t;
  starve_wait : int array;  (* per channel, for shared-module inputs *)
  shared_input : bool array;  (* channel feeds a shared module *)
  mutable starvation : string list;
  mutable injector : injector option;
  mutable overrides_active : bool;
  mutable observer : (t -> unit) option;
  mutable injected_rev : int list;  (* dense indices overridden this cycle
                                       (tracked only while observed) *)
  clock : Clock.t;
  arena : Arena.t option;  (* flat settle backend ([mode = Arena] only) *)
}

let dense_index t cid =
  match Hashtbl.find_opt t.ch_index cid with
  | Some i -> i
  | None ->
    fail ~cycle:t.cycle ~channel:cid (Fmt.str "unknown channel id %d" cid)

let create ?(monitor = true) ?(liveness_bound = 64) ?mode ?max_passes
    ?max_cycles ?(clock = Clock.monotonic) net =
  let mode = match mode with Some m -> m | None -> default_mode () in
  let compile_t0 = clock () in
  (match max_cycles with
   | Some n when n < 0 -> invalid_arg "Engine.create: negative max_cycles"
   | Some _ | None -> ());
  (match Netlist.diagnostics net with
   | [] -> ()
   | d :: _ as ds ->
     (* Same message as the historical string API, but the first
        diagnostic lends its lint rule code and provenance. *)
     fail ~cycle:0 ~code:d.Diagnostic.code ?node:d.Diagnostic.node
       ?channel:d.Diagnostic.channel
       ("invalid netlist: "
        ^ String.concat "; "
            (List.map
               (fun (d : Diagnostic.t) -> d.Diagnostic.message)
               ds)));
  let chans = Array.of_list (Netlist.channels net) in
  let ch_index = Hashtbl.create 64 in
  Array.iteri
    (fun i (c : Netlist.channel) -> Hashtbl.add ch_index c.Netlist.ch_id i)
    chans;
  let ws = Wires.create (Array.length chans) in
  let wire_of cid = Wires.wire ws (Hashtbl.find ch_index cid) in
  let compile (n : Netlist.node) =
    let port_wire p =
      match Netlist.channel_at net n.Netlist.id p with
      | Some c -> c.Netlist.ch_id
      | None -> assert false (* validate guarantees connectivity *)
    in
    let ins_ports =
      List.filter
        (fun p -> match p with Netlist.In _ -> true | _ -> false)
        (Netlist.required_inputs n.Netlist.kind)
    in
    let has_sel =
      List.exists
        (fun p -> Netlist.port_equal p Netlist.Sel)
        (Netlist.required_inputs n.Netlist.kind)
    in
    let outs_ports = Netlist.required_outputs n.Netlist.kind in
    let in_ids = List.map port_wire ins_ports in
    let out_ids = List.map port_wire outs_ports in
    let sel_id = if has_sel then Some (port_wire Netlist.Sel) else None in
    let inst =
      Instance.create n
        ~ins:(Array.of_list (List.map wire_of in_ids))
        ~sel:(Option.map wire_of sel_id)
        ~outs:(Array.of_list (List.map wire_of out_ids))
    in
    { inst;
      in_ch = Array.of_list (List.map (Hashtbl.find ch_index) in_ids);
      sel_ch = Option.map (Hashtbl.find ch_index) sel_id;
      out_ch = Array.of_list (List.map (Hashtbl.find ch_index) out_ids) }
  in
  let compiled =
    Array.of_list (List.map compile (Netlist.nodes net))
  in
  let monitors =
    if not monitor then [||]
    else
      Array.map
        (fun (c : Netlist.channel) ->
           (* §4.2: shared-module outputs need not be persistent. *)
           let src_kind =
             (Netlist.node net c.Netlist.src.ep_node).Netlist.kind
           in
           let persistent =
             match src_kind with
             | Netlist.Shared _ -> false
             | Netlist.Source _ | Netlist.Sink _ | Netlist.Buffer _
             | Netlist.Func _ | Netlist.Fork _ | Netlist.Mux _
             | Netlist.Varlat _ -> true
           in
           Protocol.create ~check_forward_persistence:persistent
             ~liveness_bound ~name:c.Netlist.ch_name ())
        chans
  in
  let sink_streams = Hashtbl.create 8 in
  List.iter
    (fun (n : Netlist.node) ->
       match n.Netlist.kind with
       | Netlist.Sink _ ->
         Hashtbl.replace sink_streams n.Netlist.id (ref Transfer.empty)
       | Netlist.Source _ | Netlist.Buffer _ | Netlist.Func _
       | Netlist.Fork _ | Netlist.Mux _ | Netlist.Shared _
       | Netlist.Varlat _ -> ())
    (Netlist.nodes net);
  (* Monotone evaluation writes each of a channel's five fields at most
     once, so [5 * nchan] passes always suffice; the slack covers the
     final no-progress pass on tiny netlists. *)
  let default_max_passes = (5 * Array.length chans) + 16 in
  let schedule = Schedule.build net in
  let profile = Profile.create ~n_nodes:(Array.length compiled) in
  let cycle_evals = Array.make (max (Array.length compiled) 1) 0 in
  let arena =
    match mode with
    | Arena ->
      Some
        (Arena.create ~schedule ~profile ~cycle_evals
           ~nchan:(Array.length chans)
           (Array.map
              (fun c -> (c.inst, c.in_ch, c.sel_ch, c.out_ch))
              compiled))
    | Levelized | Reference -> None
  in
  (* Everything above — diagnostics, node compilation, schedule build,
     arena packing — is the compile phase of this engine's ledger. *)
  Profile.set_compile_seconds profile
    (Clock.seconds_between compile_t0 (clock ()));
  { net; ws; compiled; chans; ch_index; monitors; liveness_bound;
    mode;
    schedule;
    profile;
    max_passes = Option.value max_passes ~default:default_max_passes;
    max_cycles;
    cycle_evals;
    dirty = Array.make (max (Array.length compiled) 1) false;
    cycle = 0;
    last_signals = Array.make (Array.length chans) Signal.idle;
    last_events =
      Array.make (Array.length chans) (Signal.events Signal.idle);
    delivered = Array.make (Array.length chans) 0;
    killed = Array.make (Array.length chans) 0;
    valid_cycles = Array.make (Array.length chans) 0;
    retry_cycles = Array.make (Array.length chans) 0;
    anti_cycles = Array.make (Array.length chans) 0;
    sink_streams;
    injector = None;
    overrides_active = false;
    observer = None;
    injected_rev = [];
    clock;
    starve_wait = Array.make (Array.length chans) 0;
    shared_input =
      Array.map
        (fun (c : Netlist.channel) ->
           match (Netlist.node net c.Netlist.dst.ep_node).Netlist.kind with
           | Netlist.Shared _ -> true
           | Netlist.Source _ | Netlist.Sink _ | Netlist.Buffer _
           | Netlist.Func _ | Netlist.Fork _ | Netlist.Mux _
           | Netlist.Varlat _ -> false)
        chans;
    starvation = [];
    arena }

let netlist t = t.net

let cycle t = t.cycle

let mode t = t.mode

let profile t = t.profile

let schedule t = t.schedule

let conflict_error t ~wire ~field =
  let ch = t.chans.(wire) in
  fail ~cycle:t.cycle ~node:ch.Netlist.src.Netlist.ep_node
    ~channel:ch.Netlist.ch_id
    (Fmt.str "conflicting write to %s of channel %s" field
       ch.Netlist.ch_name)

let invariant_error t ~node e =
  (* Internal node invariants can only break under injected faults;
     report them with provenance instead of a bare backtrace. *)
  fail ~cycle:t.cycle ~node
    (Fmt.str "node invariant violated during evaluation: %s"
       (Printexc.to_string e))

let eval_node t i =
  let c = t.compiled.(i) in
  Profile.note_eval t.profile i;
  t.cycle_evals.(i) <- t.cycle_evals.(i) + 1;
  try Instance.eval t.ws c.inst with
  | Wires.Conflict { wire; field } -> conflict_error t ~wire ~field
  | (Assert_failure _ | Invalid_argument _) as e ->
    invariant_error t ~node:(Instance.node c.inst).Netlist.id e

(* Name the channels whose wires changed during the final pass — the
   diff of the last two passes is exactly the non-converging set.
   "E110" is the settle/cycle-budget timeout code (see check_determined
   for the E102 convention on quoting lint codes here). *)
let non_convergence_error t ~passes =
  let written =
    match t.arena with
    | Some ar -> Arena.written_channels ar
    | None -> Wires.written t.ws
  in
  let changing = List.sort_uniq compare written in
  let names =
    List.map (fun i -> t.chans.(i).Netlist.ch_name) changing
  in
  let node, channel =
    match changing with
    | [] -> (None, None)
    | i :: _ ->
      (Some t.chans.(i).Netlist.src.Netlist.ep_node,
       Some t.chans.(i).Netlist.ch_id)
  in
  raise
    (Simulation_error
       (error ~code:"E110" ?node ?channel ~cycle:t.cycle
          (Fmt.str
             "combinational evaluation did not converge after %d passes; \
              channels still changing between the last two passes: %s"
             passes
             (String.concat ", " names))))

let fixpoint t =
  let rec go pass =
    Wires.clear_progress t.ws;
    for i = 0 to Array.length t.compiled - 1 do
      eval_node t i
    done;
    if Wires.progress t.ws then
      if pass >= t.max_passes then
        non_convergence_error t ~passes:(pass + 1)
      else go (pass + 1)
  in
  go 0

(* Evaluate components in topological order: an acyclic node settles in
   one pass; inside a cyclic region a node re-evaluates only when a wire
   it reads was actually written since its last evaluation. *)
let settle_levelized t =
  let sched = t.schedule in
  Array.iter
    (function
      | Schedule.Single i ->
        Wires.clear_progress t.ws;
        eval_node t i
      | Schedule.Scc members ->
        let comp = sched.Schedule.comp_of.(members.(0)) in
        let q = Queue.create () in
        Array.iter
          (fun i ->
             t.dirty.(i) <- true;
             Queue.push i q)
          members;
        (* Monotone write-once wires bound the iteration; the budget is a
           safety valve against a non-monotone eval bug. *)
        let budget =
          ref ((Array.length members * ((5 * Array.length t.chans) + 2)) + 16)
        in
        while not (Queue.is_empty q) do
          decr budget;
          if !budget < 0 then non_convergence_error t ~passes:t.max_passes;
          let i = Queue.pop q in
          t.dirty.(i) <- false;
          Wires.clear_progress t.ws;
          eval_node t i;
          if Wires.progress t.ws then
            List.iter
              (fun c ->
                 let readers =
                   if sched.Schedule.src_of.(c) = i then
                     sched.Schedule.readers_f.(c)
                   else sched.Schedule.readers_b.(c)
                 in
                 Array.iter
                   (fun r ->
                      if
                        sched.Schedule.comp_of.(r) = comp
                        && (not t.dirty.(r))
                        && r <> i
                      then begin
                        t.dirty.(r) <- true;
                        Queue.push r q
                      end)
                   readers)
              (Wires.written t.ws)
        done)
    sched.Schedule.order

let check_determined t =
  let unknown =
    match t.arena with
    | Some ar -> Arena.unknown_count ar
    | None -> Wires.unknown_count t.ws
  in
  if unknown > 0 then begin
    let undetermined =
      Array.to_list t.chans
      |> List.filteri (fun i _ ->
          match t.arena with
          | Some ar -> Arena.undetermined ar i
          | None ->
            let w = Wires.wire t.ws i in
            Wires.v_plus w = None || Wires.s_plus w = None
            || Wires.v_minus w = None || Wires.s_minus w = None)
    in
    let names =
      List.map (fun (c : Netlist.channel) -> c.Netlist.ch_name) undetermined
    in
    let node, channel =
      match undetermined with
      | [] -> (None, None)
      | c :: _ ->
        (Some c.Netlist.src.Netlist.ep_node, Some c.Netlist.ch_id)
    in
    (* "E102" is Elastic_lint's comb-cycle rule: the static analogue of
       this dynamic failure (the sim layer cannot depend on the lint
       library, so the code is quoted; a registry test keeps it honest). *)
    raise
      (Simulation_error
         (error ~code:"E102" ?node ?channel ~cycle:t.cycle
            (Fmt.str "combinational cycle, undetermined channels: %s"
               (String.concat ", " names))))
  end

let set_injector t inj = t.injector <- inj

let set_observer t obs = t.observer <- obs

let injected t =
  List.rev_map (fun i -> t.chans.(i).Netlist.ch_id) t.injected_rev

let install_overrides t =
  if t.overrides_active then begin
    (match t.arena with
     | Some ar -> Arena.clear_overrides ar
     | None -> Wires.clear_overrides t.ws);
    t.overrides_active <- false
  end;
  match t.injector with
  | None -> ()
  | Some f ->
    (* The injected-channel log is consumed by the end-of-cycle observer;
       without one, skip the bookkeeping so injection stays allocation-
       neutral on the hot path. *)
    let log = match t.observer with None -> false | Some _ -> true in
    Array.iteri
      (fun i (c : Netlist.channel) ->
         match f ~cycle:t.cycle c.Netlist.ch_id with
         | Some ov ->
           (match t.arena with
            | Some ar -> Arena.set_override ar i ov
            | None -> Wires.set_override t.ws i ov);
           t.overrides_active <- true;
           if log then t.injected_rev <- i :: t.injected_rev
         | None -> ())
      t.chans

(* The cycle-budget watchdog: a task that keeps stepping a pathological
   netlist (runaway replay storm, non-draining workload) hits a typed
   E110 timeout instead of hanging its worker forever.  Checked before
   the cycle runs, so an engine created with [max_cycles:n] simulates
   exactly [n] cycles and the error is raised by step [n+1]. *)
let check_cycle_budget t =
  match t.max_cycles with
  | Some budget when t.cycle >= budget ->
    fail ~code:"E110" ~cycle:t.cycle
      (Fmt.str
         "cycle budget exhausted: %d cycles simulated (max_cycles %d)"
         t.cycle budget)
  | Some _ | None -> ()

(* Arena settle: the same exceptions as the record backends, mapped to
   the same errors ([eval_node] catches per node; here the evaluating
   node is recovered from the arena's last-eval cursor). *)
let settle_arena t ar =
  try Arena.settle ar with
  | Wires.Conflict { wire; field } -> conflict_error t ~wire ~field
  | Arena.Did_not_converge -> non_convergence_error t ~passes:t.max_passes
  | (Assert_failure _ | Invalid_argument _) as e ->
    invariant_error t
      ~node:(Instance.node t.compiled.(Arena.last_eval ar).inst).Netlist.id
      e

let step ?(choices = fun _ -> None) t =
  check_cycle_budget t;
  (match t.arena with
   | Some ar -> Arena.reset ar
   | None -> Wires.reset t.ws);
  t.injected_rev <- [];
  install_overrides t;
  Array.iter
    (fun c ->
       Instance.begin_cycle c.inst
         ~choice:(choices (Instance.node c.inst).Netlist.id))
    t.compiled;
  Array.fill t.cycle_evals 0 (Array.length t.cycle_evals) 0;
  let t0 = t.clock () in
  (match t.arena with
   | Some ar -> settle_arena t ar
   | None ->
     (match t.mode with
      | Levelized -> settle_levelized t
      | Reference -> fixpoint t
      | Arena -> assert false));
  (* Stop the settle timer before the determinism check and pass fold so
     the recorded seconds cover only the settle phase itself — the E9
     speedup record compares backends on this number. *)
  let settle_seconds = Clock.seconds_between t0 (t.clock ()) in
  check_determined t;
  let passes = Array.fold_left max 0 t.cycle_evals in
  Profile.record_cycle t.profile ~passes ~seconds:settle_seconds;
  let n = Array.length t.chans in
  let signals =
    match t.arena with
    | Some ar -> Array.init n (fun i -> Arena.to_signal ar i)
    | None ->
      Array.init n (fun i -> Wires.to_signal (Wires.wire t.ws i))
  in
  let events = Array.map Signal.events signals in
  t.last_signals <- signals;
  t.last_events <- events;
  Array.iteri
    (fun i m -> Protocol.step m ~cycle:t.cycle signals.(i))
    t.monitors;
  for i = 0 to n - 1 do
    if events.(i).Signal.token_in then
      t.delivered.(i) <- t.delivered.(i) + 1;
    if events.(i).Signal.cancelled then t.killed.(i) <- t.killed.(i) + 1;
    (let r = Signal.resolve signals.(i) in
     if r.Signal.v_plus then
       t.valid_cycles.(i) <- t.valid_cycles.(i) + 1;
     if r.Signal.v_plus && r.Signal.s_plus then
       t.retry_cycles.(i) <- t.retry_cycles.(i) + 1;
     if r.Signal.v_minus then
       t.anti_cycles.(i) <- t.anti_cycles.(i) + 1);
    (* Leads-to watchdog on shared-module inputs: a waiting token must
       eventually be served or killed. *)
    if t.shared_input.(i) then begin
      let s = Signal.resolve signals.(i) in
      if s.Signal.v_plus && not events.(i).Signal.token_out then begin
        t.starve_wait.(i) <- t.starve_wait.(i) + 1;
        if t.starve_wait.(i) = t.liveness_bound then
          t.starvation <-
            Fmt.str
              "cycle %d: token starved for %d cycles at shared input %s"
              t.cycle t.liveness_bound t.chans.(i).Netlist.ch_name
            :: t.starvation
      end
      else t.starve_wait.(i) <- 0
    end
  done;
  (* Record sink transfer streams. *)
  Array.iter
    (fun c ->
       match (Instance.node c.inst).Netlist.kind with
       | Netlist.Sink _ ->
         let i = c.in_ch.(0) in
         if events.(i).Signal.token_in then begin
           let stream =
             Hashtbl.find t.sink_streams (Instance.node c.inst).Netlist.id
           in
           match signals.(i).Signal.data with
           | Some v -> stream := Transfer.record !stream ~cycle:t.cycle v
           | None ->
             (* Unreachable in a healthy run; reachable when a fault
                forges a valid bit without a payload. *)
             fail ~cycle:t.cycle
               ~node:(Instance.node c.inst).Netlist.id
               ~channel:t.chans.(i).Netlist.ch_id
               "token delivered at sink with no data payload"
         end
       | Netlist.Source _ | Netlist.Buffer _ | Netlist.Func _
       | Netlist.Fork _ | Netlist.Mux _ | Netlist.Shared _
       | Netlist.Varlat _ -> ())
    t.compiled;
  (* Clock edge. *)
  Array.iter
    (fun c ->
       let pair i = (signals.(i), events.(i)) in
       try
         Instance.clock c.inst
           ~ins:(Array.map pair c.in_ch)
           ~sel:(Option.map pair c.sel_ch)
           ~outs:(Array.map pair c.out_ch)
       with (Assert_failure _ | Invalid_argument _) as e ->
         fail ~cycle:t.cycle ~node:(Instance.node c.inst).Netlist.id
           (Fmt.str "node invariant violated at the clock edge: %s"
              (Printexc.to_string e)))
    t.compiled;
  (* End-of-cycle observer: the elapsed cycle's signals, events and
     counters are all readable, and [cycle t] still names the elapsed
     cycle.  The [None] branch must stay allocation-free — it is on the
     hot settle path and guarded by a test. *)
  (match t.observer with None -> () | Some f -> f t);
  t.cycle <- t.cycle + 1

let run ?choices ?(on_cycle = fun _ -> ()) t n =
  for _ = 1 to n do
    step ?choices t;
    on_cycle t
  done

let signal t cid = t.last_signals.(dense_index t cid)

let events t cid = t.last_events.(dense_index t cid)

let sink_stream t nid =
  match Hashtbl.find_opt t.sink_streams nid with
  | Some s -> !s
  | None ->
    fail ~cycle:t.cycle ~node:nid (Fmt.str "node %d is not a sink" nid)

let delivered t cid = t.delivered.(dense_index t cid)

let killed t cid = t.killed.(dense_index t cid)

let throughput t nid =
  if t.cycle = 0 then 0.0
  else
    float_of_int (Transfer.length (sink_stream t nid))
    /. float_of_int t.cycle

let activity t cid =
  let i = dense_index t cid in
  (t.valid_cycles.(i), t.retry_cycles.(i), t.anti_cycles.(i))

let windowed_throughput t nid =
  match Transfer.entries (sink_stream t nid) with
  | [] | [ _ ] -> throughput t nid
  | first :: _ :: _ as entries ->
    let last = List.nth entries (List.length entries - 1) in
    let span = last.Transfer.cycle - first.Transfer.cycle in
    if span <= 0 then throughput t nid
    else float_of_int (List.length entries - 1) /. float_of_int span

let occupancies t =
  Array.to_list t.compiled
  |> List.filter_map (fun c ->
      match Instance.buffer_occupancy c.inst with
      | Some n -> Some ((Instance.node c.inst).Netlist.id, n)
      | None -> None)

let stored_tokens t =
  List.fold_left (fun acc (_, n) -> acc + n) 0 (occupancies t)

let violations t =
  Array.to_list t.monitors
  |> List.concat_map (fun m ->
      List.map (fun v -> (Protocol.name m, v)) (Protocol.violations m))

let starvation_violations t = List.rev t.starvation

let schedulers t =
  Array.to_list t.compiled
  |> List.filter_map (fun c ->
      match Instance.scheduler c.inst with
      | Some s -> Some ((Instance.node c.inst).Netlist.id, s)
      | None -> None)

let nondet_nodes t =
  Array.to_list t.compiled
  |> List.filter_map (fun c ->
      if Instance.is_nondet c.inst then Some (Instance.node c.inst)
      else None)

type snap = Instance.snap array

let snapshot t = Array.map (fun c -> Instance.snapshot c.inst) t.compiled

let restore t snap =
  if Array.length snap <> Array.length t.compiled then
    invalid_arg "Engine.restore: snapshot size mismatch";
  Array.iteri (fun i s -> Instance.restore t.compiled.(i).inst s) snap

let state_key t =
  Fmt.str "%a"
    Fmt.(array ~sep:(any "|") Instance.pp_snap)
    (snapshot t)

let pp_snap ppf (s : snap) =
  Fmt.pf ppf "%a" Fmt.(array ~sep:(any "|") Instance.pp_snap) s
