open Elastic_kernel
open Elastic_sched
open Elastic_netlist

type choice = Offer of bool | Stall of bool | Predict of int

(* Kleene three-valued logic over [bool option]: a bit is [None] until the
   fixed point determines it.  All node equations below are monotone in
   this logic, which guarantees the engine's fixed point exists. *)
let k_not = Option.map not

let k_and a b =
  match a, b with
  | Some false, _ | _, Some false -> Some false
  | Some true, Some true -> Some true
  | (None | Some true), (None | Some true) -> None

let k_or a b =
  match a, b with
  | Some true, _ | _, Some true -> Some true
  | Some false, Some false -> Some false
  | (None | Some false), (None | Some false) -> None

let k_and_array = Array.fold_left k_and (Some true)

(* Write a wire bit once its value is determined. *)
let put setter ws w = function Some b -> setter ws w b | None -> ()

type source_state = {
  sspec : Netlist.source_spec;
  svals : Value.t array;
      (* [Stream] payloads as an array: [source_peek] runs every cycle
         (and on every settle evaluation), so the list's O(idx) nth is
         a hot-path cost shared by every backend.  Empty otherwise. *)
  srng : Rng.t;
  mutable idx : int;
  mutable pending_kill : int;
  mutable retry : bool;
  mutable offering : bool;
}

type sink_state = {
  kspec : Netlist.sink_spec;
  krng : Rng.t;
  mutable cyc : int;
  mutable stalling : bool;
}

type eb_state = { mutable n : int; mutable queue : Value.t list }

type eb0_state = { mutable full : bool; mutable stored : Value.t }

type fork_state = { done_ : bool array; pend : int array }

type emux_state = { q : int array }

(* One in-flight token: the precomputed result and the cycles left before
   it becomes visible at the output. *)
type varlat_state = { mutable pipe : (Value.t * int) option }

type state =
  | S_stateless
  | S_source of source_state
  | S_sink of sink_state
  | S_eb of eb_state
  | S_eb0 of eb0_state
  | S_fork of fork_state
  | S_emux of emux_state
  | S_shared of Scheduler.t
  | S_varlat of varlat_state

type t = {
  node : Netlist.node;
  ins : Wires.wire array;
  sel : Wires.wire option;
  outs : Wires.wire array;
  state : state;
}

let node t = t.node

let state t = t.state

let make_state (n : Netlist.node) =
  match n.Netlist.kind with
  | Netlist.Source sspec ->
    let seed =
      match sspec with
      | Netlist.Random_rate { seed; _ } -> seed
      | Netlist.Stream _ | Netlist.Counter _ | Netlist.Nondet _ -> 1
    in
    let svals =
      match sspec with
      | Netlist.Stream l -> Array.of_list l
      | Netlist.Counter _ | Netlist.Random_rate _ | Netlist.Nondet _ ->
        [||]
    in
    S_source
      { sspec; svals; srng = Rng.create ~seed; idx = 0; pending_kill = 0;
        retry = false; offering = false }
  | Netlist.Sink kspec ->
    let seed =
      match kspec with Netlist.Random_stall { seed; _ } -> seed | _ -> 1
    in
    S_sink { kspec; krng = Rng.create ~seed; cyc = 0; stalling = false }
  | Netlist.Buffer { buffer = Netlist.Eb; init } ->
    if List.length init > 2 then
      invalid_arg
        (Fmt.str "Instance: EB %s has capacity 2 but %d initial tokens"
           n.Netlist.name (List.length init));
    S_eb { n = List.length init; queue = init }
  | Netlist.Buffer { buffer = Netlist.Eb0; init } ->
    (match init with
     | [] -> S_eb0 { full = false; stored = Value.Unit }
     | [ v ] -> S_eb0 { full = true; stored = v }
     | _ :: _ :: _ ->
       invalid_arg
         (Fmt.str "Instance: EB0 %s has capacity 1 but %d initial tokens"
            n.Netlist.name (List.length init)))
  | Netlist.Func _ -> S_stateless
  | Netlist.Fork k ->
    S_fork { done_ = Array.make k false; pend = Array.make k 0 }
  | Netlist.Mux { ways; early } ->
    if early then S_emux { q = Array.make ways 0 } else S_stateless
  | Netlist.Shared { ways; sched; _ } ->
    S_shared (Scheduler.make ~ways sched)
  | Netlist.Varlat _ -> S_varlat { pipe = None }

let create node ~ins ~sel ~outs = { node; ins; sel; outs; state = make_state node }

let is_nondet t =
  match t.node.Netlist.kind with
  | Netlist.Source (Netlist.Random_rate _ | Netlist.Nondet _) -> true
  | Netlist.Sink (Netlist.Random_stall _) -> true
  | Netlist.Shared { sched = Scheduler.External; _ } -> true
  | Netlist.Source _ | Netlist.Sink _ | Netlist.Buffer _ | Netlist.Func _
  | Netlist.Fork _ | Netlist.Mux _ | Netlist.Shared _ | Netlist.Varlat _ ->
    false

let scheduler t =
  match t.state with S_shared s -> Some s | _ -> None

(* ------------------------------------------------------------------ *)
(* Sources                                                             *)

let source_peek st =
  match st.sspec with
  | Netlist.Stream _ ->
    if st.idx < Array.length st.svals then Some st.svals.(st.idx)
    else None
  | Netlist.Counter { start; step } ->
    Some (Value.Int (start + (step * st.idx)))
  | Netlist.Random_rate _ -> Some (Value.Int st.idx)
  | Netlist.Nondet vs ->
    (match vs with
     | [] -> None
     | _ :: _ -> Some (List.nth vs (st.idx mod List.length vs)))

let source_begin st ~choice =
  (* Pending anti-tokens kill the items the source would offer next. *)
  let rec drain () =
    if st.pending_kill > 0 && source_peek st <> None then begin
      (match st.sspec with
       | Netlist.Nondet vs -> st.idx <- (st.idx + 1) mod max 1 (List.length vs)
       | Netlist.Stream _ | Netlist.Counter _ | Netlist.Random_rate _ ->
         st.idx <- st.idx + 1);
      st.pending_kill <- st.pending_kill - 1;
      drain ()
    end
  in
  drain ();
  let have = source_peek st <> None in
  let fresh_offer =
    match choice with
    | Some (Offer b) -> b
    | Some (Stall _ | Predict _) | None -> (
        match st.sspec with
        | Netlist.Stream _ | Netlist.Counter _ -> true
        | Netlist.Random_rate { pct; _ } -> Rng.percent st.srng pct
        | Netlist.Nondet _ -> Rng.percent st.srng 50)
  in
  (* Retry+ persistence: a stalled token must stay offered. *)
  st.offering <- have && (st.retry || fresh_offer)

let source_eval ws t st =
  let out = t.outs.(0) in
  Wires.set_v_plus ws out st.offering;
  if st.offering then (
    match source_peek st with
    | Some v -> Wires.set_data ws out v
    | None -> assert false);
  Wires.set_s_minus ws out false

let source_clock t st ~outs =
  let sig_, ev = outs.(0) in
  ignore sig_;
  if ev.Signal.token_out then begin
    (let bump = st.idx + 1 in
     match st.sspec with
     | Netlist.Nondet vs -> st.idx <- bump mod max 1 (List.length vs)
     | Netlist.Stream _ | Netlist.Counter _ | Netlist.Random_rate _ ->
       st.idx <- bump);
    st.retry <- false
  end
  else st.retry <- st.offering;
  if ev.Signal.anti_in then st.pending_kill <- st.pending_kill + 1;
  ignore t

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)

let sink_begin st ~choice =
  st.stalling <-
    (match choice with
     | Some (Stall b) -> b
     | Some (Offer _ | Predict _) | None -> (
         match st.kspec with
         | Netlist.Always_ready -> false
         | Netlist.Stall_pattern p ->
           Array.length p > 0 && p.(st.cyc mod Array.length p)
         | Netlist.Random_stall { pct; _ } -> Rng.percent st.krng pct))

let sink_eval ws t st =
  let inw = t.ins.(0) in
  Wires.set_s_plus ws inw st.stalling;
  Wires.set_v_minus ws inw false

let sink_clock st =
  match st.kspec with
  | Netlist.Stall_pattern p ->
    st.cyc <- (st.cyc + 1) mod max 1 (Array.length p)
  | Netlist.Always_ready | Netlist.Random_stall _ -> ()

(* ------------------------------------------------------------------ *)
(* Standard elastic buffer: Lf = 1, Lb = 1, C = 2 (Fig. 2(a)/Fig. 3).  *)
(* State is a signed count [n]: n > 0 stores tokens (with data), n < 0 *)
(* stores anti-tokens.  All outputs are functions of registers only.   *)

let eb_eval ws t st =
  let inw = t.ins.(0) and out = t.outs.(0) in
  Wires.set_s_plus ws inw (st.n >= 2);
  Wires.set_v_minus ws inw (st.n < 0);
  Wires.set_v_plus ws out (st.n > 0);
  (match st.queue with
   | v :: _ when st.n > 0 -> Wires.set_data ws out v
   | _ :: _ | [] -> ());
  Wires.set_s_minus ws out (st.n <= -2)

let eb_clock t st ~ins ~outs =
  let in_sig, in_ev = ins.(0) and _, out_ev = outs.(0) in
  (* Pop before push so a full buffer can stream through. *)
  if out_ev.Signal.token_out then
    (match st.queue with
     | _ :: rest -> st.queue <- rest
     | [] -> assert false);
  if in_ev.Signal.token_in then (
    match in_sig.Signal.data with
    | Some v -> st.queue <- st.queue @ [ v ]
    | None -> assert false);
  (* An anti-token reaching the output kills the oldest stored token
     (Fig. 3: the rd pointer advances). *)
  if out_ev.Signal.anti_in then
    (match st.queue with v :: rest -> ignore v; st.queue <- rest | [] -> ());
  let incr_in = Bool.to_int in_ev.Signal.token_in in
  let incr_ain = Bool.to_int in_ev.Signal.anti_out in
  let decr_out = Bool.to_int out_ev.Signal.token_out in
  let decr_aout = Bool.to_int out_ev.Signal.anti_in in
  st.n <- st.n + incr_in + incr_ain - decr_out - decr_aout;
  assert (st.n >= -2 && st.n <= 2);
  assert (List.length st.queue = max st.n 0);
  ignore t

(* ------------------------------------------------------------------ *)
(* Zero-backward-latency EB: Lf = 1, Lb = 0, C = 1 (Fig. 5).  Stop and *)
(* kill traverse the controller combinationally.                      *)

let eb0_eval ws t st =
  let inw = t.ins.(0) and out = t.outs.(0) in
  Wires.set_v_plus ws out st.full;
  if st.full then Wires.set_data ws out st.stored;
  if st.full then begin
    Wires.set_s_minus ws out false;
    Wires.set_v_minus ws inw false;
    (* Accept a new token exactly when the stored one is leaving. *)
    let leaving = k_or (k_not (Wires.s_plus out)) (Wires.v_minus out) in
    put Wires.set_s_plus ws inw (k_not leaving)
  end
  else begin
    Wires.set_s_plus ws inw false;
    put Wires.set_v_minus ws inw (Wires.v_minus out);
    put Wires.set_s_minus ws out (Wires.s_minus inw)
  end

let eb0_clock t st ~ins ~outs =
  let in_sig, in_ev = ins.(0) and _, out_ev = outs.(0) in
  let tin = in_ev.Signal.token_in and tout = out_ev.Signal.token_out in
  assert (not (tin && st.full && not tout));
  if tin then (
    match in_sig.Signal.data with
    | Some v ->
      st.stored <- v;
      st.full <- true
    | None -> assert false)
  else if tout then st.full <- false;
  ignore t

(* ------------------------------------------------------------------ *)
(* Lazy join with a combinational function: used for [Func] nodes and  *)
(* for plain (non-early) multiplexors.  Anti-tokens arriving at the    *)
(* output fork backwards into every input, all-or-nothing.             *)

let eval_join ws ~ins ~out ~data_fn =
  let valids = Array.map Wires.v_plus ins in
  let all_valid = k_and_array valids in
  put Wires.set_v_plus ws out all_valid;
  if all_valid = Some true then begin
    let datas = Array.map Wires.data ins in
    if Array.for_all Option.is_some datas then
      Wires.set_data ws out
        (data_fn (Array.to_list (Array.map Option.get datas)))
  end;
  let s_eff = k_and (Wires.s_plus out) (k_not (Wires.v_minus out)) in
  let n = Array.length ins in
  for i = 0 to n - 1 do
    (* Stop input i unless every other input is valid and the output is
       not (effectively) stopped. *)
    let others = ref (Some true) in
    for j = 0 to n - 1 do
      if j <> i then others := k_and !others valids.(j)
    done;
    put Wires.set_s_plus ws ins.(i)
      (k_not (k_and !others (k_not s_eff)))
  done;
  (* Backward anti-token fork: fires only when every input can consume
     its copy in the same cycle (cancel against a waiting token, or pass
     into an upstream that accepts it). *)
  let consumable = ref (Some true) in
  for i = 0 to n - 1 do
    consumable :=
      k_and !consumable
        (k_or valids.(i) (k_not (Wires.s_minus ins.(i))))
  done;
  let anti_backward =
    k_and
      (k_and (Wires.v_minus out) (k_not (Wires.v_plus out)))
      !consumable
  in
  for i = 0 to n - 1 do
    put Wires.set_v_minus ws ins.(i) anti_backward
  done;
  put Wires.set_s_minus ws out
    (k_and (k_not (Wires.v_plus out)) (k_not !consumable))

(* ------------------------------------------------------------------ *)
(* Eager fork with anti-token join.                                    *)

let fork_eval ws t st =
  let inw = t.ins.(0) in
  let vin = Wires.v_plus inw in
  let k = Array.length t.outs in
  let completions = Array.make k (Some true) in
  for i = 0 to k - 1 do
    let out = t.outs.(i) in
    let active = (not st.done_.(i)) && st.pend.(i) = 0 in
    let v_out = if active then vin else Some false in
    put Wires.set_v_plus ws out v_out;
    if v_out = Some true then
      (match Wires.data inw with
       | Some v -> Wires.set_data ws out v
       | None -> ());
    Wires.set_s_minus ws out (st.pend.(i) >= 2);
    let t_out =
      k_and v_out (k_or (k_not (Wires.s_plus out)) (Wires.v_minus out))
    in
    completions.(i) <-
      (if st.done_.(i) || st.pend.(i) > 0 then Some true else t_out)
  done;
  put Wires.set_s_plus ws inw (k_not (k_and_array completions));
  let all_pending = Array.for_all (fun p -> p > 0) st.pend in
  put Wires.set_v_minus ws inw (k_and (k_not vin) (Some all_pending))

let fork_clock t st ~ins ~outs =
  let _, in_ev = ins.(0) in
  let k = Array.length t.outs in
  for i = 0 to k - 1 do
    let _, ev = outs.(i) in
    if ev.Signal.anti_in then st.pend.(i) <- st.pend.(i) + 1;
    if ev.Signal.token_out then st.done_.(i) <- true
  done;
  if in_ev.Signal.token_in then begin
    (* The input token is fully distributed: branches not served by a
       transfer were cancelled by a stored anti-token. *)
    for i = 0 to k - 1 do
      if not st.done_.(i) then begin
        assert (st.pend.(i) > 0);
        st.pend.(i) <- st.pend.(i) - 1
      end;
      st.done_.(i) <- false
    done
  end;
  if in_ev.Signal.anti_out then
    for i = 0 to k - 1 do
      assert (st.pend.(i) > 0);
      st.pend.(i) <- st.pend.(i) - 1
    done

(* ------------------------------------------------------------------ *)
(* Early-evaluation multiplexor (§2, §4.1): fires on select + selected *)
(* data, emitting one anti-token into every non-selected input per     *)
(* transfer.  [q] holds the kills not yet delivered; it is unbounded   *)
(* in this model (a physical controller would stop firing at some      *)
(* queue depth), which over-approximates the paper's behavior and only *)
(* matters if an upstream refuses anti-tokens indefinitely.            *)

let emux_eval ws t st =
  let sel = Option.get t.sel and out = t.outs.(0) in
  let sel_v = Wires.v_plus sel in
  let sv =
    match sel_v, Wires.data sel with
    | Some true, Some v -> Some (Value.to_int v)
    | _ -> None
  in
  let v_out =
    match sel_v, sv with
    | Some false, _ -> Some false
    | _, Some s -> if st.q.(s) > 0 then Some false else Wires.v_plus t.ins.(s)
    | _, None -> None
  in
  put Wires.set_v_plus ws out v_out;
  (match v_out, sv with
   | Some true, Some s ->
     (match Wires.data t.ins.(s) with
      | Some v -> Wires.set_data ws out v
      | None -> ())
   | _ -> ());
  let fire =
    k_and v_out (k_or (k_not (Wires.s_plus out)) (Wires.v_minus out))
  in
  put Wires.set_s_plus ws sel (k_not fire);
  (* The mux never kills its select stream. *)
  Wires.set_v_minus ws sel false;
  Array.iteri
    (fun i inw ->
       if st.q.(i) > 0 then begin
         Wires.set_v_minus ws inw true;
         Wires.set_s_plus ws inw false
       end
       else begin
         let fresh_kill =
           match sel_v, sv with
           | Some false, _ -> Some false
           | _, Some s -> if i = s then Some false else fire
           | _, None -> None
         in
         put Wires.set_v_minus ws inw fresh_kill;
         match sv with
         | Some s when i = s -> put Wires.set_s_plus ws inw (k_not fire)
         | Some _ | None -> put Wires.set_s_plus ws inw (k_not fresh_kill)
       end)
    t.ins;
  (* Anti-tokens reaching the mux output wait for a token to cancel. *)
  put Wires.set_s_minus ws out (k_not v_out)

let emux_clock t st ~ins ~sel ~outs =
  let sel_sig, _ = Option.get sel in
  let _, out_ev = outs.(0) in
  if out_ev.Signal.token_out then begin
    let s =
      match sel_sig.Signal.data with
      | Some v -> Value.to_int v
      | None -> assert false
    in
    Array.iteri (fun i _ -> if i <> s then st.q.(i) <- st.q.(i) + 1) t.ins
  end;
  Array.iteri
    (fun i (_, ev) ->
       if ev.Signal.anti_out then begin
         assert (st.q.(i) > 0);
         st.q.(i) <- st.q.(i) - 1
       end)
    ins

(* ------------------------------------------------------------------ *)
(* Shared elastic module with speculation scheduler (Fig. 4).          *)

let shared_eval ws t sched f =
  let g = Scheduler.predict sched in
  let k = Array.length t.ins in
  for i = 0 to k - 1 do
    if i <> g then Wires.set_v_plus ws t.outs.(i) false
  done;
  let in_g = t.ins.(g) and out_g = t.outs.(g) in
  (* A hinted module joins channel 0 (the speculative home) with its hint
     stream: one hint token per operation, delivered to the scheduler. *)
  let hint_v =
    match t.sel with
    | Some h when g = 0 -> Wires.v_plus h
    | Some _ | None -> Some true
  in
  put Wires.set_v_plus ws out_g (k_and (Wires.v_plus in_g) hint_v);
  (match Wires.v_plus in_g, Wires.data in_g with
   | Some true, Some v -> Wires.set_data ws out_g (Func.apply f [ v ])
   | _ -> ());
  let fire =
    k_and (Wires.v_plus out_g)
      (k_or (k_not (Wires.s_plus out_g)) (Wires.v_minus out_g))
  in
  put Wires.set_s_plus ws in_g (k_not fire);
  (match t.sel with
   | Some h ->
     Wires.set_v_minus ws h false;
     if g = 0 then put Wires.set_s_plus ws h (k_not fire)
     else Wires.set_s_plus ws h true
   | None -> ());
  for i = 0 to k - 1 do
    let inw = t.ins.(i) and out = t.outs.(i) in
    if i = g then
      put Wires.set_v_minus ws inw
        (k_and (Wires.v_minus out) (k_not (Wires.v_plus out)))
    else begin
      put Wires.set_v_minus ws inw (Wires.v_minus out);
      put Wires.set_s_plus ws inw (k_not (Wires.v_minus out))
    end;
    (* An anti-token passing backwards through the module retries only if
       the upstream cannot absorb it (no waiting token, upstream stop). *)
    put Wires.set_s_minus ws out
      (k_and (k_not (Wires.v_plus out))
         (k_and (Wires.s_minus inw) (k_not (Wires.v_plus inw))))
  done

let shared_clock t sched ~ins ~sel ~outs =
  let g = Scheduler.predict sched in
  let nth_sig arr i = fst arr.(i) and nth_ev arr i = snd arr.(i) in
  let hint =
    match sel with
    | Some ((hsig : Signal.t), (hev : Signal.events)) ->
      if hev.Signal.token_out then Option.map Value.to_int hsig.Signal.data
      else None
    | None -> None
  in
  let obs =
    { Scheduler.in_valid =
        Array.init (Array.length ins) (fun i ->
            (nth_sig ins i).Signal.v_plus);
      out_valid =
        Array.init (Array.length outs) (fun i ->
            (nth_sig outs i).Signal.v_plus);
      out_stop =
        Array.init (Array.length outs) (fun i ->
            (nth_sig outs i).Signal.s_plus);
      out_kill =
        Array.init (Array.length outs) (fun i ->
            (nth_sig outs i).Signal.v_minus);
      served =
        (if (nth_ev outs g).Signal.token_out then Some g else None);
      hint }
  in
  Scheduler.observe sched obs;
  ignore t

(* ------------------------------------------------------------------ *)
(* Stalling variable-latency unit (Fig. 6(a)).  A token is served in one *)
(* cycle when the approximation is correct, two otherwise; the sender is *)
(* stalled while the slow path completes.  The unit neither emits nor    *)
(* accepts anti-tokens (the non-speculative design has none).           *)

let varlat_eval ws t st =
  let inw = t.ins.(0) and out = t.outs.(0) in
  Wires.set_v_minus ws inw false;
  (* Anti-tokens are stalled unless they can cancel the ready result; the
     invariant forbids stopping an anti while a token is offered. *)
  Wires.set_s_minus ws out
    (match st.pipe with Some (_, 0) -> false | Some (_, _) | None -> true);
  (match st.pipe with
   | Some (v, 0) ->
     Wires.set_v_plus ws out true;
     Wires.set_data ws out v;
     (* Accept a new token exactly when the result leaves. *)
     let leaving = k_and (Some true) (k_not (Wires.s_plus out)) in
     put Wires.set_s_plus ws inw (k_not leaving)
   | Some (_, _) ->
     Wires.set_v_plus ws out false;
     Wires.set_s_plus ws inw true
   | None ->
     Wires.set_v_plus ws out false;
     Wires.set_s_plus ws inw false)

let varlat_clock t st ~ins ~outs ~fast ~slow ~err =
  let in_sig, in_ev = ins.(0) and _, out_ev = outs.(0) in
  if out_ev.Signal.token_out then st.pipe <- None;
  if in_ev.Signal.token_in then (
    match in_sig.Signal.data with
    | Some v ->
      let wrong = Value.to_int (Func.apply err [ v ]) <> 0 in
      let result = Func.apply (if wrong then slow else fast) [ v ] in
      st.pipe <- Some (result, if wrong then 2 else 1)
    | None -> assert false);
  (match st.pipe with
   | Some (v, c) when c > 0 -> st.pipe <- Some (v, c - 1)
   | Some _ | None -> ());
  ignore t

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)

let begin_cycle t ~choice =
  match t.state with
  | S_source st -> source_begin st ~choice
  | S_sink st -> sink_begin st ~choice
  | S_shared sched ->
    (match choice with
     | Some (Predict c) -> Scheduler.force sched c
     | Some (Offer _ | Stall _) | None -> ())
  | S_stateless | S_eb _ | S_eb0 _ | S_fork _ | S_emux _ | S_varlat _ -> ()

let eval ws t =
  match t.state with
  | S_source st -> source_eval ws t st
  | S_sink st -> sink_eval ws t st
  | S_eb st -> eb_eval ws t st
  | S_eb0 st -> eb0_eval ws t st
  | S_fork st -> fork_eval ws t st
  | S_emux st -> emux_eval ws t st
  | S_shared sched ->
    (match t.node.Netlist.kind with
     | Netlist.Shared { f; _ } -> shared_eval ws t sched f
     | _ -> assert false)
  | S_varlat st -> varlat_eval ws t st
  | S_stateless ->
    (match t.node.Netlist.kind with
     | Netlist.Func f ->
       eval_join ws ~ins:t.ins ~out:t.outs.(0) ~data_fn:(Func.apply f)
     | Netlist.Mux { ways; early = false } ->
       let all = Array.append [| Option.get t.sel |] t.ins in
       let select = Func.select ~ways () in
       eval_join ws ~ins:all ~out:t.outs.(0) ~data_fn:(Func.apply select)
     | _ -> assert false)

let clock t ~ins ~sel ~outs =
  match t.state with
  | S_source st -> source_clock t st ~outs
  | S_sink st -> sink_clock st
  | S_eb st -> eb_clock t st ~ins ~outs
  | S_eb0 st -> eb0_clock t st ~ins ~outs
  | S_fork st -> fork_clock t st ~ins ~outs
  | S_emux st -> emux_clock t st ~ins ~sel ~outs
  | S_shared sched -> shared_clock t sched ~ins ~sel ~outs
  | S_varlat st ->
    (match t.node.Netlist.kind with
     | Netlist.Varlat { fast; slow; err } ->
       varlat_clock t st ~ins ~outs ~fast ~slow ~err
     | _ -> assert false)
  | S_stateless -> ()

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

type snap =
  | Sn_none
  | Sn_source of int * int * bool * int
  | Sn_sink of int * int
  | Sn_eb of int * Value.t list
  | Sn_eb0 of Value.t option
  | Sn_fork of bool list * int list
  | Sn_emux of int list
  | Sn_shared of int list * int list  (* full state, behavioural key *)
  | Sn_varlat of (Value.t * int) option

let snapshot t =
  match t.state with
  | S_stateless -> Sn_none
  | S_source st ->
    Sn_source (st.idx, st.pending_kill, st.retry, Rng.state st.srng)
  | S_sink st -> Sn_sink (st.cyc, Rng.state st.krng)
  | S_eb st -> Sn_eb (st.n, st.queue)
  | S_eb0 st -> Sn_eb0 (if st.full then Some st.stored else None)
  | S_fork st -> Sn_fork (Array.to_list st.done_, Array.to_list st.pend)
  | S_emux st -> Sn_emux (Array.to_list st.q)
  | S_shared sched ->
    Sn_shared (Scheduler.state sched, Scheduler.key sched)
  | S_varlat st -> Sn_varlat st.pipe

let restore t snap =
  match t.state, snap with
  | S_stateless, Sn_none -> ()
  | S_source st, Sn_source (idx, pk, retry, rng) ->
    st.idx <- idx;
    st.pending_kill <- pk;
    st.retry <- retry;
    Rng.set_state st.srng rng
  | S_sink st, Sn_sink (cyc, rng) ->
    st.cyc <- cyc;
    Rng.set_state st.krng rng
  | S_eb st, Sn_eb (n, queue) ->
    st.n <- n;
    st.queue <- queue
  | S_eb0 st, Sn_eb0 stored ->
    (match stored with
     | Some v ->
       st.full <- true;
       st.stored <- v
     | None ->
       st.full <- false;
       st.stored <- Value.Unit)
  | S_fork st, Sn_fork (d, p) ->
    List.iteri (fun i b -> st.done_.(i) <- b) d;
    List.iteri (fun i v -> st.pend.(i) <- v) p
  | S_emux st, Sn_emux q -> List.iteri (fun i v -> st.q.(i) <- v) q
  | S_shared sched, Sn_shared (s, _) -> Scheduler.set_state sched s
  | S_varlat st, Sn_varlat p -> st.pipe <- p
  | ( S_stateless | S_source _ | S_sink _ | S_eb _ | S_eb0 _ | S_fork _
    | S_emux _ | S_shared _ | S_varlat _ ),
    _ ->
    invalid_arg "Instance.restore: snapshot kind mismatch"

let snap_equal a b =
  match a, b with
  | Sn_none, Sn_none -> true
  | Sn_source (a1, a2, a3, a4), Sn_source (b1, b2, b3, b4) ->
    a1 = b1 && a2 = b2 && a3 = b3 && a4 = b4
  | Sn_sink (a1, a2), Sn_sink (b1, b2) -> a1 = b1 && a2 = b2
  | Sn_eb (n1, q1), Sn_eb (n2, q2) ->
    n1 = n2 && List.equal Value.equal q1 q2
  | Sn_eb0 v1, Sn_eb0 v2 -> Option.equal Value.equal v1 v2
  | Sn_fork (d1, p1), Sn_fork (d2, p2) -> d1 = d2 && p1 = p2
  | Sn_emux q1, Sn_emux q2 -> q1 = q2
  | Sn_shared (s1, _), Sn_shared (s2, _) -> s1 = s2
  | Sn_varlat p1, Sn_varlat p2 ->
    Option.equal
      (fun (v1, c1) (v2, c2) -> Value.equal v1 v2 && c1 = c2)
      p1 p2
  | ( Sn_none | Sn_source _ | Sn_sink _ | Sn_eb _ | Sn_eb0 _ | Sn_fork _
    | Sn_emux _ | Sn_shared _ | Sn_varlat _ ),
    _ ->
    false

let pp_snap ppf = function
  | Sn_none -> Fmt.string ppf "-"
  | Sn_source (idx, pk, retry, _) ->
    Fmt.pf ppf "src(idx=%d,kill=%d,retry=%b)" idx pk retry
  | Sn_sink (cyc, _) -> Fmt.pf ppf "sink(cyc=%d)" cyc
  | Sn_eb (n, q) ->
    Fmt.pf ppf "eb(n=%d,[%a])" n Fmt.(list ~sep:(any ";") Value.pp) q
  | Sn_eb0 v ->
    Fmt.pf ppf "eb0(%a)" Fmt.(option ~none:(any "empty") Value.pp) v
  | Sn_fork (d, p) ->
    Fmt.pf ppf "fork(done=[%a],pend=[%a])"
      Fmt.(list ~sep:(any ";") bool)
      d
      Fmt.(list ~sep:(any ";") int)
      p
  | Sn_emux q -> Fmt.pf ppf "emux(q=[%a])" Fmt.(list ~sep:(any ";") int) q
  | Sn_shared (_, k) ->
    Fmt.pf ppf "sched([%a])" Fmt.(list ~sep:(any ";") int) k
  | Sn_varlat None -> Fmt.string ppf "varlat(empty)"
  | Sn_varlat (Some (v, c)) -> Fmt.pf ppf "varlat(%a,%d)" Value.pp v c

let buffer_occupancy t =
  match t.state with
  | S_eb st -> Some st.n
  | S_eb0 st -> Some (if st.full then 1 else 0)
  | S_varlat st -> Some (if st.pipe = None then 0 else 1)
  | S_stateless | S_source _ | S_sink _ | S_fork _ | S_emux _ | S_shared _
    ->
    None

let stored_values t =
  match t.state with
  | S_eb st -> if st.n > 0 then st.queue else []
  | S_eb0 st -> if st.full then [ st.stored ] else []
  | S_varlat st ->
    (match st.pipe with Some (v, _) -> [ v ] | None -> [])
  | S_stateless | S_source _ | S_sink _ | S_fork _ | S_emux _ | S_shared _
    ->
    []
