open Elastic_kernel

type override = {
  force_v_plus : bool option;
  force_s_plus : bool option;
  force_v_minus : bool option;
  force_s_minus : bool option;
  map_data : (Value.t -> Value.t) option;
  subst_data : Value.t option;
}

let no_override =
  { force_v_plus = None; force_s_plus = None; force_v_minus = None;
    force_s_minus = None; map_data = None; subst_data = None }

exception Conflict of { wire : int; field : string }

type wire = {
  mutable v_plus : bool option;
  mutable s_plus : bool option;
  mutable v_minus : bool option;
  mutable s_minus : bool option;
  mutable data : Value.t option;
  mutable ov : override;
  id : int;
}

type t = {
  wires : wire array;
  mutable progress : bool;
  mutable written : int list;  (* wires written since [clear_progress] *)
}

let create n =
  { wires =
      Array.init n (fun id ->
          { v_plus = None; s_plus = None; v_minus = None; s_minus = None;
            data = None; ov = no_override; id });
    progress = false;
    written = [] }

let wire t i = t.wires.(i)

let reset t =
  Array.iter
    (fun w ->
       w.v_plus <- None;
       w.s_plus <- None;
       w.v_minus <- None;
       w.s_minus <- None;
       w.data <- None)
    t.wires;
  t.progress <- false;
  t.written <- []

let progress t = t.progress

let clear_progress t =
  t.progress <- false;
  t.written <- []

let written t = t.written

let unknown_count t =
  Array.fold_left
    (fun acc w ->
       let u o = if o = None then 1 else 0 in
       acc + u w.v_plus + u w.s_plus + u w.v_minus + u w.s_minus)
    0 t.wires

(* Forced bits are seeded into the wire at install time so that readers see
   them before (and regardless of) the driving node's write; the matching
   [set_*] call is then reconciled against the forced value instead of
   raising a conflict. *)
let set_override t i ov =
  let w = t.wires.(i) in
  w.ov <- ov;
  let seed get set = function
    | None -> ()
    | Some b -> if get w = None then set w (Some b)
  in
  seed (fun w -> w.v_plus) (fun w v -> w.v_plus <- v) ov.force_v_plus;
  seed (fun w -> w.s_plus) (fun w v -> w.s_plus <- v) ov.force_s_plus;
  seed (fun w -> w.v_minus) (fun w v -> w.v_minus <- v) ov.force_v_minus;
  seed (fun w -> w.s_minus) (fun w v -> w.s_minus <- v) ov.force_s_minus

let clear_overrides t =
  Array.iter (fun w -> w.ov <- no_override) t.wires

let v_plus w = w.v_plus

let s_plus w = w.s_plus

let v_minus w = w.v_minus

let s_minus w = w.s_minus

let data w =
  match w.data with
  | Some _ as d -> d
  | None ->
    (* A forced-valid wire with no driven data yields the substitute
       payload (token duplication / forgery faults). *)
    if w.ov.force_v_plus = Some true then w.ov.subst_data else None

let set_bit t w field_name force get set b =
  let b = Option.value force ~default:b in
  match get w with
  | None ->
    set w (Some b);
    t.progress <- true;
    t.written <- w.id :: t.written
  | Some b' ->
    if b' <> b then raise (Conflict { wire = w.id; field = field_name })

let set_v_plus t w b =
  set_bit t w "V+" w.ov.force_v_plus
    (fun w -> w.v_plus) (fun w v -> w.v_plus <- v) b

let set_s_plus t w b =
  set_bit t w "S+" w.ov.force_s_plus
    (fun w -> w.s_plus) (fun w v -> w.s_plus <- v) b

let set_v_minus t w b =
  set_bit t w "V-" w.ov.force_v_minus
    (fun w -> w.v_minus) (fun w v -> w.v_minus <- v) b

let set_s_minus t w b =
  set_bit t w "S-" w.ov.force_s_minus
    (fun w -> w.s_minus) (fun w v -> w.s_minus <- v) b

let set_data t w v =
  let v = match w.ov.map_data with None -> v | Some f -> f v in
  match w.data with
  | None ->
    w.data <- Some v;
    t.progress <- true;
    t.written <- w.id :: t.written
  | Some v' ->
    if not (Value.equal v v') then
      raise (Conflict { wire = w.id; field = "data" })

let to_signal w =
  let b o = Option.value o ~default:false in
  let v_plus = b w.v_plus in
  { Signal.v_plus; s_plus = b w.s_plus; v_minus = b w.v_minus;
    s_minus = b w.s_minus; data = (if v_plus then data w else None) }
