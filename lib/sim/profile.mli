(** Evaluation-cost observability for the engine.

    Every {!Engine.step} records how many node evaluations the
    combinational settle phase took, how those evaluations distribute
    over nodes, how many passes the slowest region needed, and the wall
    clock spent settling.  The shell's [profile] command and the bench's
    [--json] trajectory records are rendered from this. *)

type t

(** [create ~n_nodes] starts an empty profile over [n_nodes] dense node
    indices. *)
val create : n_nodes:int -> t

val reset : t -> unit

(** {1 Recording (called by the engine)} *)

(** One evaluation of node [i]. *)
val note_eval : t -> int -> unit

(** Batched recording for the flat-arena settle loop: the per-node
    counter array, updated in place by the caller, paired with a bulk
    fold into the eval total once per settle.  Callers must keep
    [evals] equal to the sum of the per-node counters at every
    observation point outside the loop. *)
val per_node_array : t -> int array

val add_evals : t -> int -> unit

(** End of one settle phase: the cycle's pass count (the most times any
    single node was evaluated) and its wall-clock duration. *)
val record_cycle : t -> passes:int -> seconds:float -> unit

(** Engine-construction cost (netlist compile, schedule build, arena
    packing), stamped once by [Engine.create].  Unlike the per-cycle
    counters it survives {!reset}: compilation happened once, before
    any observation window. *)
val set_compile_seconds : t -> float -> unit

(** {1 Reading} *)

val cycles : t -> int

(** Total node evaluations across all cycles. *)
val evals : t -> int

val evals_per_cycle : t -> float

(** Accumulated wall-clock seconds spent in settle phases. *)
val settle_seconds : t -> float

(** Wall-clock seconds [Engine.create] spent compiling (0 until the
    engine stamps it). *)
val compile_seconds : t -> float

val wall_seconds : t -> float
[@@ocaml.deprecated
  "misnomer: returns settle-only time; use settle_seconds (or \
   compile_seconds for the construction phase)"]

(** Worst settle pass count over all cycles. *)
val max_passes : t -> int

(** Pass count of the most recent cycle (0 before the first cycle) —
    read by per-cycle observers such as [Elastic_metrics.Sampler]. *)
val last_passes : t -> int

(** Cumulative eval calls of one dense node index. *)
val node_evals : t -> int -> int

(** [(passes, cycles)] pairs, ascending: how many cycles needed each
    pass count. *)
val pass_histogram : t -> (int * int) list

(** The [n] most-evaluated nodes as [(dense index, eval count)],
    descending. *)
val top_nodes : t -> int -> (int * int) list

(** [pp ~name] renders a report; [name] maps dense node indices to
    display names. *)
val pp : ?name:(int -> string) -> Format.formatter -> t -> unit
