(* Flat-arena evaluator for the combinational phase of a cycle.

   The record engine ([Wires] + [Instance.eval]) walks per-channel
   records of [bool option] fields and allocates options/arrays on the
   hot settle path.  This module compiles the same levelized schedule
   (PR 2) onto preallocated flat arrays: channel ids index packed
   integer control words, node ids index flat port/instruction arrays,
   and the settle loop is a tight int loop with no per-field closures
   or record allocation.

   Correctness contract (enforced by the three-way differential suite):
   the arena executes the *identical* algorithm as [settle_levelized] —
   same evaluation order, same dirty-set propagation (written wires
   walked most-recent-first, readers queued in array order), same
   budgets — so eval counts, settle passes, traces and metrics are
   byte-identical to [Levelized] mode.  Speedup comes from removing
   allocation and indirection, not from evaluating less.

   Memory layout (see DESIGN.md §5e):
   - [ctrl.(c)]: four 2-bit Kleene codes packed per channel —
     V+ at bit 0, S+ at bit 2, V- at bit 4, S- at bit 6.
     Code 0 = unknown, 2 = known-false, 3 = known-true, so
     "known" is bit 1 and negation is [lxor 1] on known codes.
   - [force.(c)]: override codes in the same packing (0 = unforced).
   - data is split by tag ([dtag]): unboxed ints in [dint], 64-bit
     words in the [dbig] Bigarray, everything else as a [Value.t]
     pointer in [dval].
   - [written]/[written_n]: bump-allocated write log replacing the
     [Wires.written] cons list (iterated top-down = most-recent-first).
   - node "instructions" are index arrays into the shared [ports]
     pool: per node a slice of input wires, output wires and (for
     joins) the data-function argument list. *)

open Elastic_kernel
open Elastic_sched
open Elastic_netlist

(* Raised when an SCC iteration exhausts its safety budget; the engine
   converts it into the same E110 error Levelized mode raises. *)
exception Did_not_converge

(* 2-bit Kleene codes over ints, as 16-entry truth tables indexed by
   [(a lsl 2) lor b].  The settle loop's Kleene operands are
   data-dependent, so table lookups (always L1-hot) beat the
   mispredict-prone compare chains; rows for the invalid code 1 are
   don't-cares. *)
let kand_tab = [| 0; 0; 2; 0; 0; 0; 0; 0; 2; 2; 2; 2; 0; 0; 2; 3 |]

let kor_tab = [| 0; 0; 0; 3; 0; 0; 0; 0; 0; 0; 2; 3; 3; 3; 3; 3 |]

let knot_tab = [| 0; 0; 3; 2 |]

let[@inline] knot x = Array.unsafe_get knot_tab x

let[@inline] kand a b = Array.unsafe_get kand_tab ((a lsl 2) lor b)

(* Fused forms of the recurring [knot] compositions, one lookup each:
   [kandn a b] = a AND NOT b, [korn a b] = a OR NOT b,
   [knor a b] = NOT (a OR b). *)
let fuse2 f =
  Array.init 16 (fun x -> f (x lsr 2) (x land 3))

let kandn_tab = fuse2 (fun a b -> Array.unsafe_get kand_tab ((a lsl 2) lor Array.unsafe_get knot_tab b))

let korn_tab = fuse2 (fun a b -> Array.unsafe_get kor_tab ((a lsl 2) lor Array.unsafe_get knot_tab b))

let knor_tab = fuse2 (fun a b -> Array.unsafe_get knot_tab (Array.unsafe_get kor_tab ((a lsl 2) lor b)))

let[@inline] kandn a b = Array.unsafe_get kandn_tab ((a lsl 2) lor b)

let[@inline] korn a b = Array.unsafe_get korn_tab ((a lsl 2) lor b)

let[@inline] knor a b = Array.unsafe_get knor_tab ((a lsl 2) lor b)

let[@inline] code_of_bool b = 2 lor Bool.to_int b

(* Field offsets inside a packed control word. *)
let vp = 0

let sp = 2

let vm = 4

let sm = 6

type t = {
  nchan : int;
  (* Per-channel packed state. *)
  ctrl : int array;
  force : int array;
  dtag : int array;  (* 0 none / 1 int / 2 word / 3 boxed *)
  dint : int array;
  dbig : (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t;
  dval : Value.t array;
  ov_map : (Value.t -> Value.t) option array;
  ov_subst : Value.t option array;
  (* Write log since the last [clear_progress]; a non-empty log is the
     progress signal. *)
  written : int array;
  mutable written_n : int;
  (* Flat node table. *)
  states : Instance.state array;
  ins_base : int array;
  ins_n : int array;
  outs_base : int array;
  outs_n : int array;
  selw : int array;  (* sel wire index, -1 when absent *)
  jbase : int array;  (* join argument list (sel-prefixed for late mux) *)
  jn : int array;
  ports : int array;  (* shared index pool for all the slices above *)
  fns : (Value.t list -> Value.t) array;  (* join / shared data function *)
  (* Settle machinery (preallocated). *)
  schedule : Schedule.t;
  dirty : bool array;
  queue : int array;  (* ring buffer of dirty SCC members *)
  mutable qh : int;
  mutable qt : int;
  scratch : int array;  (* per-port Kleene codes (valids / completions) *)
  profile : Profile.t;
  pn : int array;  (* [profile]'s per-node counters, bumped in place *)
  mutable pending_evals : int;  (* folded into [profile] per settle *)
  cycle_evals : int array;
  mutable last_eval : int;  (* node evaluating when an exception escaped *)
  (* Any control-field force installed?  [set_code] skips the per-write
     force lookup in the (benchmarked) fault-free case. *)
  mutable forced_any : bool;
}

let create ~schedule ~profile ~cycle_evals ~nchan specs =
  let n_nodes = Array.length specs in
  let sz = max n_nodes 1 in
  let ins_base = Array.make sz 0 in
  let ins_n = Array.make sz 0 in
  let outs_base = Array.make sz 0 in
  let outs_n = Array.make sz 0 in
  let selw = Array.make sz (-1) in
  let jbase = Array.make sz 0 in
  let jn = Array.make sz 0 in
  let states = Array.make sz Instance.S_stateless in
  let fns = Array.make sz (fun _ -> (assert false : Value.t)) in
  let chunks = ref [] in
  let pos = ref 0 in
  let alloc arr =
    let b = !pos in
    pos := !pos + Array.length arr;
    chunks := (b, arr) :: !chunks;
    b
  in
  let max_fan = ref 1 in
  Array.iteri
    (fun i (inst, in_ch, sel_ch, out_ch) ->
       states.(i) <- Instance.state inst;
       ins_base.(i) <- alloc in_ch;
       ins_n.(i) <- Array.length in_ch;
       outs_base.(i) <- alloc out_ch;
       outs_n.(i) <- Array.length out_ch;
       (match sel_ch with Some s -> selw.(i) <- s | None -> ());
       max_fan :=
         max !max_fan (max (Array.length in_ch) (Array.length out_ch));
       match (Instance.node inst).Netlist.kind with
       | Netlist.Func f ->
         jbase.(i) <- ins_base.(i);
         jn.(i) <- Array.length in_ch;
         fns.(i) <- Func.apply f
       | Netlist.Mux { ways; early = false } ->
         (* The late mux is a join over [sel :: ins] with a select
            data function — both precomputed here, where the record
            engine rebuilds them on every evaluation. *)
         let all = Array.append [| Option.get sel_ch |] in_ch in
         jbase.(i) <- alloc all;
         jn.(i) <- Array.length all;
         max_fan := max !max_fan jn.(i);
         fns.(i) <- Func.apply (Func.select ~ways ())
       | Netlist.Shared { f; _ } -> fns.(i) <- Func.apply f
       | Netlist.Source _ | Netlist.Sink _ | Netlist.Buffer _
       | Netlist.Fork _ | Netlist.Mux _ | Netlist.Varlat _ -> ())
    specs;
  let ports = Array.make (max !pos 1) 0 in
  List.iter
    (fun (b, arr) -> Array.blit arr 0 ports b (Array.length arr))
    !chunks;
  (* Power-of-two ring capacity so the settle loop wraps with [land]
     instead of an integer division. *)
  let qcap = ref 1 in
  while !qcap < n_nodes + 1 do
    qcap := !qcap * 2
  done;
  let csz = max nchan 1 in
  { nchan;
    ctrl = Array.make csz 0;
    force = Array.make csz 0;
    dtag = Array.make csz 0;
    dint = Array.make csz 0;
    dbig = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout csz;
    dval = Array.make csz Value.Unit;
    ov_map = Array.make csz None;
    ov_subst = Array.make csz None;
    written = Array.make ((5 * nchan) + 8) 0;
    written_n = 0;
    states; ins_base; ins_n; outs_base; outs_n; selw; jbase; jn; ports;
    fns;
    schedule;
    dirty = Array.make sz false;
    queue = Array.make !qcap 0;
    qh = 0;
    qt = 0;
    scratch = Array.make !max_fan 0;
    profile;
    pn = Profile.per_node_array profile;
    pending_evals = 0;
    cycle_evals;
    last_eval = 0;
    forced_any = false }

(* ------------------------------------------------------------------ *)
(* Wire access                                                         *)

(* Hot-path indices below are structural — compiled from the schedule
   at [create] and bounded by construction — so the accessors skip the
   bounds checks.  The one data-dependent index in the evaluator (the
   mux select in [eval_emux]) keeps its check: the [Invalid_argument]
   it raises on an out-of-range select is part of the error contract
   shared with the record engine.  The write log cannot overflow: every
   entry is guarded by a write-once test, so at most five writes per
   channel fit the [5 * nchan + 8] buffer. *)

let[@inline] get t c off = (Array.unsafe_get t.ctrl c lsr off) land 3

let[@inline] in_w t i j =
  Array.unsafe_get t.ports (Array.unsafe_get t.ins_base i + j)

let[@inline] out_w t i j =
  Array.unsafe_get t.ports (Array.unsafe_get t.outs_base i + j)

let[@inline] push_written t c =
  Array.unsafe_set t.written t.written_n c;
  t.written_n <- t.written_n + 1

(* Write-once semantics of [Wires.set_bit]: an override replaces the
   written value; a first write logs progress; a contradicting re-write
   raises the same [Wires.Conflict] the record engine raises (the field
   names must match for identical error rendering). *)
let set_code t c off field code =
  let code =
    if not t.forced_any then code
    else begin
      let f = (Array.unsafe_get t.force c lsr off) land 3 in
      if f <> 0 then f else code
    end
  in
  let w = Array.unsafe_get t.ctrl c in
  let cur = (w lsr off) land 3 in
  if cur = 0 then begin
    Array.unsafe_set t.ctrl c (w lor (code lsl off));
    push_written t c
  end
  else if cur <> code then raise (Wires.Conflict { wire = c; field })

let[@inline] set_bool t c off field b =
  set_code t c off field (code_of_bool b)

(* Combined write of two control fields of one wire: one ctrl load and
   store, one write-log entry.  Only for nonzero codes (unconditional
   writes).  Equivalent to two [set_code] calls: the write log dedups
   through the dirty flags, so one entry propagates exactly like two,
   and conflict precedence follows field order.  Overrides fall back to
   the per-field path. *)
let set_code2 t c off1 field1 code1 off2 field2 code2 =
  if t.forced_any then begin
    set_code t c off1 field1 code1;
    set_code t c off2 field2 code2
  end
  else begin
    let w = Array.unsafe_get t.ctrl c in
    let cur1 = (w lsr off1) land 3 in
    let add =
      if cur1 = 0 then code1 lsl off1
      else if cur1 <> code1 then
        raise (Wires.Conflict { wire = c; field = field1 })
      else 0
    in
    let cur2 = (w lsr off2) land 3 in
    let add =
      if cur2 = 0 then add lor (code2 lsl off2)
      else if cur2 <> code2 then
        raise (Wires.Conflict { wire = c; field = field2 })
      else add
    in
    if add <> 0 then begin
      Array.unsafe_set t.ctrl c (w lor add);
      push_written t c
    end
  end

let[@inline] set_bool2 t c off1 f1 b1 off2 f2 b2 =
  set_code2 t c off1 f1 (code_of_bool b1) off2 f2 (code_of_bool b2)

(* [put setter] of the record engine: write only once determined. *)
let[@inline] kput t c off field code =
  if code <> 0 then set_code t c off field code

let materialize t c =
  match Array.unsafe_get t.dtag c with
  | 1 -> Value.Int (Array.unsafe_get t.dint c)
  | 2 -> Value.Word (Bigarray.Array1.unsafe_get t.dbig c)
  | _ -> Array.unsafe_get t.dval c

(* Mirrors [Wires.data]: a forced-valid wire with no driven data yields
   the substitute payload (token duplication / forgery faults). *)
let data_opt t c =
  if Array.unsafe_get t.dtag c = 0 then
    if Array.unsafe_get t.force c land 3 = 3 then t.ov_subst.(c)
    else None
  else Some (materialize t c)

let[@inline] has_data t c =
  Array.unsafe_get t.dtag c <> 0
  || (Array.unsafe_get t.force c land 3 = 3 && t.ov_subst.(c) <> None)

let set_data t c v =
  let v =
    match Array.unsafe_get t.ov_map c with None -> v | Some f -> f v
  in
  if Array.unsafe_get t.dtag c = 0 then begin
    (match v with
     | Value.Int n ->
       Array.unsafe_set t.dtag c 1;
       Array.unsafe_set t.dint c n
     | Value.Word w ->
       Array.unsafe_set t.dtag c 2;
       Bigarray.Array1.unsafe_set t.dbig c w
     | v ->
       Array.unsafe_set t.dtag c 3;
       Array.unsafe_set t.dval c v);
    push_written t c
  end
  else begin
    let eq =
      match v with
      | Value.Int n ->
        Array.unsafe_get t.dtag c = 1 && n = Array.unsafe_get t.dint c
      | Value.Word w ->
        Array.unsafe_get t.dtag c = 2
        && Int64.equal w (Bigarray.Array1.unsafe_get t.dbig c)
      | v ->
        Array.unsafe_get t.dtag c = 3
        && Value.equal v (Array.unsafe_get t.dval c)
    in
    if not eq then raise (Wires.Conflict { wire = c; field = "data" })
  end

(* Verbatim data move (fork / mux): copy by tag so the int fast path
   never materializes a [Value.t].  Falls back to [set_data] when the
   destination has a map-data override or the source only has a
   substitute payload. *)
let copy_data t src dst =
  let stag = Array.unsafe_get t.dtag src in
  if stag = 0 then begin
    if Array.unsafe_get t.force src land 3 = 3 then
      match t.ov_subst.(src) with
      | Some v -> set_data t dst v
      | None -> ()
  end
  else if Array.unsafe_get t.ov_map dst <> None then
    set_data t dst (materialize t src)
  else if Array.unsafe_get t.dtag dst = 0 then begin
    Array.unsafe_set t.dtag dst stag;
    (match stag with
     | 1 -> Array.unsafe_set t.dint dst (Array.unsafe_get t.dint src)
     | 2 ->
       Bigarray.Array1.unsafe_set t.dbig dst
         (Bigarray.Array1.unsafe_get t.dbig src)
     | _ -> Array.unsafe_set t.dval dst (Array.unsafe_get t.dval src));
    push_written t dst
  end
  else begin
    let eq =
      Array.unsafe_get t.dtag dst = stag
      && (match stag with
          | 1 ->
            Array.unsafe_get t.dint dst = Array.unsafe_get t.dint src
          | 2 ->
            Int64.equal
              (Bigarray.Array1.unsafe_get t.dbig dst)
              (Bigarray.Array1.unsafe_get t.dbig src)
          | _ ->
            Value.equal
              (Array.unsafe_get t.dval dst)
              (Array.unsafe_get t.dval src))
    in
    if not eq then raise (Wires.Conflict { wire = dst; field = "data" })
  end

(* ------------------------------------------------------------------ *)
(* Node evaluation: line-for-line transcriptions of the [Instance]
   eval equations onto packed codes.  Write order is preserved — it
   drives the written log, hence dirty propagation, hence eval counts. *)

(* The paired writes below reorder only writes of the same wire (the
   log dedups per wire, so propagation is unchanged) and never writes
   a field another statement of the same body reads. *)

let eval_source t i (st : Instance.source_state) =
  let out = out_w t i 0 in
  set_bool2 t out vp "V+" st.Instance.offering sm "S-" false;
  if st.Instance.offering then
    (match Instance.source_peek st with
     | Some v -> set_data t out v
     | None -> assert false)

let eval_sink t i (st : Instance.sink_state) =
  let inw = in_w t i 0 in
  set_bool2 t inw sp "S+" st.Instance.stalling vm "V-" false

let eval_eb t i (st : Instance.eb_state) =
  let inw = in_w t i 0 and out = out_w t i 0 in
  set_bool2 t inw sp "S+" (st.Instance.n >= 2) vm "V-" (st.Instance.n < 0);
  set_bool2 t out vp "V+" (st.Instance.n > 0) sm "S-" (st.Instance.n <= -2);
  (match st.Instance.queue with
   | v :: _ when st.Instance.n > 0 -> set_data t out v
   | _ :: _ | [] -> ())

let eval_eb0 t i (st : Instance.eb0_state) =
  let inw = in_w t i 0 and out = out_w t i 0 in
  if st.Instance.full then begin
    set_bool2 t out vp "V+" true sm "S-" false;
    set_data t out st.Instance.stored;
    set_bool t inw vm "V-" false;
    let leaving = korn (get t out vm) (get t out sp) in
    kput t inw sp "S+" (knot leaving)
  end
  else begin
    set_bool t out vp "V+" false;
    set_bool t inw sp "S+" false;
    kput t inw vm "V-" (get t out vm);
    kput t out sm "S-" (get t inw sm)
  end

(* Arity-1 joins (unary [Func] stages — the common datapath case)
   collapse the generic join equations: the lone input's "other
   members" conjunction is vacuous, so the stall passthrough is just
   the effective output stall.  Same writes in the same order as
   [eval_join] at [n = 1]. *)
let eval_join1 t i =
  let inw = Array.unsafe_get t.ports (Array.unsafe_get t.jbase i) in
  let out = out_w t i 0 in
  let v = get t inw vp in
  kput t out vp "V+" v;
  if v = 3 && Array.unsafe_get t.dtag out = 0 && has_data t inw then
    (match data_opt t inw with
     | Some d -> set_data t out (Array.unsafe_get t.fns i [ d ])
     | None -> assert false);
  let s_eff = kandn (get t out sp) (get t out vm) in
  kput t inw sp "S+" s_eff;
  let consumable = korn v (get t inw sm) in
  let anti_backward =
    kand (kandn (get t out vm) (get t out vp)) consumable
  in
  kput t inw vm "V-" anti_backward;
  kput t out sm "S-" (knor (get t out vp) consumable)

let eval_join t i =
  let base = Array.unsafe_get t.jbase i
  and n = Array.unsafe_get t.jn i in
  let ports = t.ports in
  let out = out_w t i 0 in
  let valids = t.scratch in
  let all_valid = ref 3 in
  for j = 0 to n - 1 do
    let v = get t (Array.unsafe_get ports (base + j)) vp in
    Array.unsafe_set valids j v;
    all_valid := kand !all_valid v
  done;
  kput t out vp "V+" !all_valid;
  (* Data functions are pure combinational maps, so once the output
     payload is driven a re-evaluation inside an SCC would recompute
     the same value ([set_data] would compare equal) — skip the
     argument-list build and application entirely. *)
  if !all_valid = 3 && Array.unsafe_get t.dtag out = 0 then begin
    let all_data = ref true in
    for j = 0 to n - 1 do
      if not (has_data t (Array.unsafe_get ports (base + j))) then
        all_data := false
    done;
    if !all_data then begin
      let rec datas j =
        if j >= n then []
        else
          (match data_opt t (Array.unsafe_get ports (base + j)) with
           | Some v -> v
           | None -> assert false)
          :: datas (j + 1)
      in
      set_data t out (Array.unsafe_get t.fns i (datas 0))
    end
  end;
  let s_eff = kandn (get t out sp) (get t out vm) in
  for j = 0 to n - 1 do
    let others = ref 3 in
    for l = 0 to n - 1 do
      if l <> j then others := kand !others (Array.unsafe_get valids l)
    done;
    kput t (Array.unsafe_get ports (base + j)) sp "S+"
      (knot (kandn !others s_eff))
  done;
  let consumable = ref 3 in
  for j = 0 to n - 1 do
    consumable :=
      kand !consumable
        (korn
           (Array.unsafe_get valids j)
           (get t (Array.unsafe_get ports (base + j)) sm))
  done;
  let anti_backward =
    kand (kandn (get t out vm) (get t out vp)) !consumable
  in
  for j = 0 to n - 1 do
    kput t (Array.unsafe_get ports (base + j)) vm "V-" anti_backward
  done;
  kput t out sm "S-" (knor (get t out vp) !consumable)

let eval_fork t i (st : Instance.fork_state) =
  let inw = in_w t i 0 in
  let vin = get t inw vp in
  let k = t.outs_n.(i) in
  let done_ = st.Instance.done_ and pend = st.Instance.pend in
  let completions = t.scratch in
  for j = 0 to k - 1 do
    let out = out_w t i j in
    let dj = Array.unsafe_get done_ j and pj = Array.unsafe_get pend j in
    let active = (not dj) && pj = 0 in
    let v_out = if active then vin else 2 in
    kput t out vp "V+" v_out;
    if v_out = 3 then copy_data t inw out;
    set_bool t out sm "S-" (pj >= 2);
    let t_out = kand v_out (korn (get t out vm) (get t out sp)) in
    Array.unsafe_set completions j (if dj || pj > 0 then 3 else t_out)
  done;
  let all_c = ref 3 in
  for j = 0 to k - 1 do
    all_c := kand !all_c (Array.unsafe_get completions j)
  done;
  kput t inw sp "S+" (knot !all_c);
  let all_pending = ref true in
  for j = 0 to Array.length pend - 1 do
    if Array.unsafe_get pend j <= 0 then all_pending := false
  done;
  kput t inw vm "V-" (kandn (code_of_bool !all_pending) vin)

let eval_emux t i (st : Instance.emux_state) =
  let selw = Array.unsafe_get t.selw i and out = out_w t i 0 in
  let sel_v = get t selw vp in
  let sv_known, sv =
    if sel_v = 3 then
      if Array.unsafe_get t.dtag selw = 1 then
        (true, Array.unsafe_get t.dint selw)
      else
        match data_opt t selw with
        | Some v -> (true, Value.to_int v)
        | None -> (false, 0)
    else (false, 0)
  in
  let q = st.Instance.q in
  let v_out =
    if sel_v = 2 then 2
    else if sv_known then
      (if q.(sv) > 0 then 2 else get t (in_w t i sv) vp)
    else 0
  in
  kput t out vp "V+" v_out;
  if v_out = 3 && sv_known then copy_data t (in_w t i sv) out;
  let fire = kand v_out (korn (get t out vm) (get t out sp)) in
  kput t selw sp "S+" (knot fire);
  (* The mux never kills its select stream. *)
  set_bool t selw vm "V-" false;
  let n = Array.unsafe_get t.ins_n i in
  for j = 0 to n - 1 do
    let inw = in_w t i j in
    if q.(j) > 0 then begin
      set_bool t inw vm "V-" true;
      set_bool t inw sp "S+" false
    end
    else begin
      let fresh_kill =
        if sel_v = 2 then 2
        else if sv_known then (if j = sv then 2 else fire)
        else 0
      in
      kput t inw vm "V-" fresh_kill;
      if sv_known && j = sv then kput t inw sp "S+" (knot fire)
      else kput t inw sp "S+" (knot fresh_kill)
    end
  done;
  (* Anti-tokens reaching the mux output wait for a token to cancel. *)
  kput t out sm "S-" (knot v_out)

let eval_shared t i sched =
  let g = Scheduler.predict sched in
  let k = Array.unsafe_get t.ins_n i in
  for j = 0 to k - 1 do
    if j <> g then set_bool t (out_w t i j) vp "V+" false
  done;
  let in_g = in_w t i g and out_g = out_w t i g in
  let hint = Array.unsafe_get t.selw i in
  let hint_v = if hint >= 0 && g = 0 then get t hint vp else 3 in
  kput t out_g vp "V+" (kand (get t in_g vp) hint_v);
  (* Same pure-function skip as [eval_join]: once driven, a re-eval
     would recompute the identical payload. *)
  if get t in_g vp = 3 && Array.unsafe_get t.dtag out_g = 0 then
    (match data_opt t in_g with
     | Some v -> set_data t out_g (t.fns.(i) [ v ])
     | None -> ());
  let fire = kand (get t out_g vp) (korn (get t out_g vm) (get t out_g sp)) in
  kput t in_g sp "S+" (knot fire);
  if hint >= 0 then begin
    set_bool t hint vm "V-" false;
    if g = 0 then kput t hint sp "S+" (knot fire)
    else set_bool t hint sp "S+" true
  end;
  for j = 0 to k - 1 do
    let inw = in_w t i j and out = out_w t i j in
    if j = g then
      kput t inw vm "V-" (kandn (get t out vm) (get t out vp))
    else begin
      kput t inw vm "V-" (get t out vm);
      kput t inw sp "S+" (knot (get t out vm))
    end;
    kput t out sm "S-"
      (kand (knot (get t out vp)) (kandn (get t inw sm) (get t inw vp)))
  done

(* Pairing note: in the busy/empty branches the last write of the
   original sequence was [inw.sp], so the reverse-order walk touched
   [inw] before [out] — the pair order below keeps that. *)
let eval_varlat t i (st : Instance.varlat_state) =
  let inw = in_w t i 0 and out = out_w t i 0 in
  match st.Instance.pipe with
  | Some (v, 0) ->
    set_bool t inw vm "V-" false;
    set_bool2 t out sm "S-" false vp "V+" true;
    set_data t out v;
    kput t inw sp "S+" (get t out sp)
  | Some (_, _) ->
    set_bool2 t out sm "S-" true vp "V+" false;
    set_bool2 t inw vm "V-" false sp "S+" true
  | None ->
    set_bool2 t out sm "S-" true vp "V+" false;
    set_bool2 t inw vm "V-" false sp "S+" false

let eval_node t i =
  Array.unsafe_set t.pn i (Array.unsafe_get t.pn i + 1);
  t.pending_evals <- t.pending_evals + 1;
  Array.unsafe_set t.cycle_evals i (Array.unsafe_get t.cycle_evals i + 1);
  t.last_eval <- i;
  match t.states.(i) with
  | Instance.S_source st -> eval_source t i st
  | Instance.S_sink st -> eval_sink t i st
  | Instance.S_eb st -> eval_eb t i st
  | Instance.S_eb0 st -> eval_eb0 t i st
  | Instance.S_fork st -> eval_fork t i st
  | Instance.S_emux st -> eval_emux t i st
  | Instance.S_shared sched -> eval_shared t i sched
  | Instance.S_varlat st -> eval_varlat t i st
  | Instance.S_stateless ->
    if Array.unsafe_get t.jn i = 1 then eval_join1 t i else eval_join t i

(* ------------------------------------------------------------------ *)
(* Settle driver: the exact [settle_levelized] algorithm on the flat
   state — an acyclic node settles in one evaluation; inside a cyclic
   region a node re-evaluates only when a wire it reads was written
   since its last evaluation.                                          *)

let clear_progress t = t.written_n <- 0

let settle_loop t =
  let sched = t.schedule in
  let order = sched.Schedule.order in
  let comp_of = sched.Schedule.comp_of
  and src_of = sched.Schedule.src_of
  and readers_f = sched.Schedule.readers_f
  and readers_b = sched.Schedule.readers_b in
  let queue = t.queue and dirty = t.dirty and written = t.written in
  let qmask = Array.length queue - 1 in
  for oi = 0 to Array.length order - 1 do
    match Array.unsafe_get order oi with
    | Schedule.Single i ->
      clear_progress t;
      eval_node t i
    | Schedule.Scc members ->
      let comp = comp_of.(members.(0)) in
      t.qh <- 0;
      t.qt <- 0;
      Array.iter
        (fun i ->
           dirty.(i) <- true;
           queue.(t.qt) <- i;
           t.qt <- (t.qt + 1) land qmask)
        members;
      (* Monotone write-once wires bound the iteration; the budget is a
         safety valve against a non-monotone eval bug. *)
      let budget =
        ref ((Array.length members * ((5 * t.nchan) + 2)) + 16)
      in
      while t.qh <> t.qt do
        decr budget;
        if !budget < 0 then raise Did_not_converge;
        let i = Array.unsafe_get queue t.qh in
        t.qh <- (t.qh + 1) land qmask;
        Array.unsafe_set dirty i false;
        clear_progress t;
        eval_node t i;
        if t.written_n > 0 then
          (* Most-recent-first, like the [Wires.written] cons list. *)
          for wi = t.written_n - 1 downto 0 do
            let c = Array.unsafe_get written wi in
            let readers =
              if Array.unsafe_get src_of c = i then
                Array.unsafe_get readers_f c
              else Array.unsafe_get readers_b c
            in
            for ri = 0 to Array.length readers - 1 do
              let r = Array.unsafe_get readers ri in
              if
                Array.unsafe_get comp_of r = comp
                && (not (Array.unsafe_get dirty r))
                && r <> i
              then begin
                Array.unsafe_set dirty r true;
                Array.unsafe_set queue t.qt r;
                t.qt <- (t.qt + 1) land qmask
              end
            done
          done
      done
  done

(* The eval total is folded into the profile once per settle — on both
   the normal and the exceptional exit, so error-path metrics match the
   record backends' per-eval accounting. *)
let settle t =
  t.pending_evals <- 0;
  match settle_loop t with
  | () ->
    Profile.add_evals t.profile t.pending_evals;
    t.pending_evals <- 0
  | exception e ->
    Profile.add_evals t.profile t.pending_evals;
    t.pending_evals <- 0;
    raise e

(* ------------------------------------------------------------------ *)
(* Cycle bookkeeping and observation                                   *)

let reset t =
  Array.fill t.ctrl 0 (Array.length t.ctrl) 0;
  Array.fill t.dtag 0 (Array.length t.dtag) 0;
  t.written_n <- 0

let clear_overrides t =
  t.forced_any <- false;
  Array.fill t.force 0 (Array.length t.force) 0;
  Array.fill t.ov_map 0 (Array.length t.ov_map) None;
  Array.fill t.ov_subst 0 (Array.length t.ov_subst) None

let set_override t c (ov : Wires.override) =
  let pack o off acc =
    match o with
    | None -> acc
    | Some b -> acc lor ((if b then 3 else 2) lsl off)
  in
  let f =
    pack ov.Wires.force_v_plus vp 0
    |> pack ov.Wires.force_s_plus sp
    |> pack ov.Wires.force_v_minus vm
    |> pack ov.Wires.force_s_minus sm
  in
  t.force.(c) <- f;
  if f <> 0 then t.forced_any <- true;
  t.ov_map.(c) <- ov.Wires.map_data;
  t.ov_subst.(c) <- ov.Wires.subst_data;
  (* Seed forced bits so readers see them before (and regardless of) the
     driving node's write — mirrors [Wires.set_override]: no progress or
     written-log bookkeeping. *)
  let seed off =
    let fc = (f lsr off) land 3 in
    if fc <> 0 && (t.ctrl.(c) lsr off) land 3 = 0 then
      t.ctrl.(c) <- t.ctrl.(c) lor (fc lsl off)
  in
  seed vp;
  seed sp;
  seed vm;
  seed sm

let unknown_count t =
  let n = ref 0 in
  for c = 0 to t.nchan - 1 do
    let x = t.ctrl.(c) in
    if (x lsr vp) land 2 = 0 then incr n;
    if (x lsr sp) land 2 = 0 then incr n;
    if (x lsr vm) land 2 = 0 then incr n;
    if (x lsr sm) land 2 = 0 then incr n
  done;
  !n

let undetermined t c =
  let x = t.ctrl.(c) in
  (x lsr vp) land 2 = 0
  || (x lsr sp) land 2 = 0
  || (x lsr vm) land 2 = 0
  || (x lsr sm) land 2 = 0

(* Channels in the write log, most-recent-first (error paths only). *)
let written_channels t =
  let rec go wi acc =
    if wi >= t.written_n then acc
    else go (wi + 1) (t.written.(wi) :: acc)
  in
  go 0 []

let last_eval t = t.last_eval

let to_signal t c =
  let x = t.ctrl.(c) in
  let v_plus = (x lsr vp) land 3 = 3 in
  { Signal.v_plus;
    s_plus = (x lsr sp) land 3 = 3;
    v_minus = (x lsr vm) land 3 = 3;
    s_minus = (x lsr sm) land 3 = 3;
    data = (if v_plus then data_opt t c else None) }
