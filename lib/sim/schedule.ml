open Elastic_netlist

(* Static evaluation schedule for the combinational phase of a cycle.

   Each channel wire is split into two write groups with a single owner
   each: the forward group F(c) = {V+, data, S-} written by the channel's
   source node, and the backward group B(c) = {S+, V-} written by its
   destination node.  A node depends on another when its [Instance.eval]
   reads a group the other writes; the read sets below mirror the eval
   functions in instance.ml kind by kind.  Condensing the strongly
   connected components of that graph and ordering the condensation
   topologically yields a schedule in which every acyclic node settles in
   one evaluation and only the cyclic elastic-control regions iterate. *)

type component = Single of int | Scc of int array

type t = {
  order : component array;
  comp_of : int array;
  readers_f : int array array;
  readers_b : int array array;
  src_of : int array;
  dst_of : int array;
}

(* Channels whose forward / backward groups the node's eval reads.
   [Eb] is fully registered (reads nothing), which is what breaks the
   src->dst / dst->src cycles every channel would otherwise induce. *)
let read_sets net (n : Netlist.node) ~ch_index =
  let ch p =
    match Netlist.channel_at net n.Netlist.id p with
    | Some c -> ch_index c.Netlist.ch_id
    | None -> assert false (* the engine validates before scheduling *)
  in
  let in_chs =
    List.filter_map
      (fun p -> match p with Netlist.In _ -> Some (ch p) | _ -> None)
      (Netlist.required_inputs n.Netlist.kind)
  in
  let sel_ch =
    if
      List.exists
        (fun p -> Netlist.port_equal p Netlist.Sel)
        (Netlist.required_inputs n.Netlist.kind)
    then [ ch Netlist.Sel ]
    else []
  in
  let out_chs = List.map ch (Netlist.required_outputs n.Netlist.kind) in
  match n.Netlist.kind with
  | Netlist.Source _ | Netlist.Sink _
  | Netlist.Buffer { buffer = Netlist.Eb; _ } ->
    ([], [])
  | Netlist.Buffer { buffer = Netlist.Eb0; _ } -> (in_chs, out_chs)
  | Netlist.Func _ | Netlist.Mux _ -> (in_chs @ sel_ch, out_chs)
  | Netlist.Fork _ -> (in_chs, out_chs)
  | Netlist.Shared _ -> (in_chs @ sel_ch, out_chs)
  | Netlist.Varlat _ -> ([], out_chs)

let build net =
  let chans = Array.of_list (Netlist.channels net) in
  let nodes = Array.of_list (Netlist.nodes net) in
  let nchan = Array.length chans and nnode = Array.length nodes in
  let ch_tbl = Hashtbl.create 64 and nd_tbl = Hashtbl.create 64 in
  Array.iteri
    (fun i (c : Netlist.channel) -> Hashtbl.add ch_tbl c.Netlist.ch_id i)
    chans;
  Array.iteri
    (fun i (n : Netlist.node) -> Hashtbl.add nd_tbl n.Netlist.id i)
    nodes;
  let src_of =
    Array.map
      (fun (c : Netlist.channel) ->
         Hashtbl.find nd_tbl c.Netlist.src.Netlist.ep_node)
      chans
  in
  let dst_of =
    Array.map
      (fun (c : Netlist.channel) ->
         Hashtbl.find nd_tbl c.Netlist.dst.Netlist.ep_node)
      chans
  in
  let reads =
    Array.map
      (fun n -> read_sets net n ~ch_index:(Hashtbl.find ch_tbl))
      nodes
  in
  let readers_f = Array.make nchan [] and readers_b = Array.make nchan [] in
  Array.iteri
    (fun v (rf, rb) ->
       List.iter (fun c -> readers_f.(c) <- v :: readers_f.(c)) rf;
       List.iter (fun c -> readers_b.(c) <- v :: readers_b.(c)) rb)
    reads;
  (* Edges writer -> reader, self-edges dropped (an eval call reads its
     own writes consistently within the call). *)
  let succs = Array.make nnode [] in
  Array.iteri
    (fun v (rf, rb) ->
       let edge u = if u <> v then succs.(u) <- v :: succs.(u) in
       List.iter (fun c -> edge src_of.(c)) rf;
       List.iter (fun c -> edge dst_of.(c)) rb)
    reads;
  (* Tarjan; SCCs complete in reverse topological order (readers before
     the writers they depend on), so the list is reversed at the end. *)
  let index = Array.make nnode (-1) in
  let lowlink = Array.make nnode 0 in
  let on_stack = Array.make nnode false in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
         if index.(w) < 0 then begin
           strongconnect w;
           lowlink.(v) <- min lowlink.(v) lowlink.(w)
         end
         else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      succs.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> assert false
      in
      sccs := pop [] :: !sccs
    end
  in
  for v = 0 to nnode - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  let order =
    Array.of_list
      (List.map
         (function
           | [ v ] -> Single v
           | members -> Scc (Array.of_list members))
         !sccs)
  in
  let comp_of = Array.make nnode 0 in
  Array.iteri
    (fun i comp ->
       match comp with
       | Single v -> comp_of.(v) <- i
       | Scc ms -> Array.iter (fun v -> comp_of.(v) <- i) ms)
    order;
  { order;
    comp_of;
    readers_f = Array.map Array.of_list readers_f;
    readers_b = Array.map Array.of_list readers_b;
    src_of;
    dst_of }

let components t = Array.length t.order

let scc_count t =
  Array.fold_left
    (fun acc c -> match c with Scc _ -> acc + 1 | Single _ -> acc)
    0 t.order

let largest_scc t =
  Array.fold_left
    (fun acc c ->
       match c with Scc ms -> max acc (Array.length ms) | Single _ -> acc)
    0 t.order

let scc_nodes t =
  Array.fold_left
    (fun acc c ->
       match c with Scc ms -> acc + Array.length ms | Single _ -> acc)
    0 t.order

let pp_stats ppf t =
  Fmt.pf ppf
    "%d components (%d cyclic, %d nodes in cycles, largest region %d)"
    (components t) (scc_count t) (scc_nodes t) (largest_scc t)
