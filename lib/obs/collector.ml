open Elastic_sim
module Metrics = Elastic_metrics.Metrics

type t = {
  cap : int;
  clk : Clock.t;
  trace : int;
  mutable recs : Recorder.t array;
}

(* Disjoint id ranges per track keep merged ids unique; a track would
   need a billion spans to collide. *)
let ids_per_track = 1_000_000_000

let create ?(capacity_per_track = 8192) ?(clock = Clock.monotonic) ?trace
    () =
  let trace =
    match trace with
    | Some tr -> tr
    | None -> Int64.to_int (Int64.logand (clock ()) 0x3FFFFFFFFFFFFFL)
  in
  { cap = capacity_per_track; clk = clock; trace; recs = [||] }

let trace_id t = t.trace

let clock t = t.clk

let prepare t ~tracks =
  let have = Array.length t.recs in
  if tracks > have then
    t.recs <-
      Array.init tracks (fun k ->
          if k < have then t.recs.(k)
          else
            Recorder.create ~capacity:t.cap ~clock:t.clk ~trace:t.trace
              ~track:k
              ~first_id:(1 + (k * ids_per_track))
              ())

let track t k =
  if k < 0 || k >= Array.length t.recs then
    invalid_arg
      (Fmt.str "Collector.track: track %d not prepared (%d tracks)" k
         (Array.length t.recs));
  t.recs.(k)

let tracks t = Array.length t.recs

let spans t =
  Array.to_list t.recs
  |> List.concat_map Recorder.spans
  |> List.sort (fun (a : Span.t) (b : Span.t) ->
      match Int64.compare a.Span.sp_start_ns b.Span.sp_start_ns with
      | 0 -> compare a.Span.sp_id b.Span.sp_id
      | c -> c)

let recorded t =
  Array.fold_left (fun acc r -> acc + Recorder.recorded r) 0 t.recs

let dropped t =
  Array.fold_left (fun acc r -> acc + Recorder.dropped r) 0 t.recs

let busy_seconds t =
  Array.to_list t.recs
  |> List.map (fun r ->
      let busy =
        List.fold_left
          (fun acc (s : Span.t) ->
             match s.Span.sp_kind with
             | Span.Shard -> acc +. Span.duration_seconds s
             | _ -> acc)
          0.0 (Recorder.spans r)
      in
      (Recorder.track r, busy))

let utilization t ~wall_seconds =
  List.map
    (fun (w, busy) ->
       let u = if wall_seconds <= 0.0 then 0.0 else busy /. wall_seconds in
       (w, Float.min 1.0 (Float.max 0.0 u)))
    (busy_seconds t)

let note_gauges t ~wall_seconds reg =
  List.iter
    (fun (w, busy) ->
       let labels = [ ("worker", string_of_int w) ] in
       Metrics.Gauge.set
         (Metrics.gauge reg ~labels
            ~help:"busy fraction of the campaign wall time"
            "elastic_obs_worker_utilization")
         (if wall_seconds <= 0.0 then 0.0
          else Float.min 1.0 (busy /. wall_seconds));
       Metrics.Gauge.set
         (Metrics.gauge reg ~labels
            ~help:"campaign wall time the worker spent without a shard"
            "elastic_obs_queue_wait_seconds")
         (Float.max 0.0 (wall_seconds -. busy)))
    (busy_seconds t);
  Metrics.Counter.add
    (Metrics.counter reg ~help:"spans recorded across all workers"
       "elastic_obs_spans_total")
    (recorded t);
  Metrics.Counter.add
    (Metrics.counter reg ~help:"spans lost to ring wraparound"
       "elastic_obs_spans_dropped_total")
    (dropped t);
  Metrics.Gauge.set
    (Metrics.gauge reg ~help:"span production rate over the campaign"
       "elastic_obs_spans_per_second")
    (if wall_seconds <= 0.0 then 0.0
     else float_of_int (recorded t) /. wall_seconds)
