(** Structured spans: the unit of the campaign run ledger.

    A span is one finished, named interval on the injectable monotonic
    {!Elastic_sim.Clock} — a campaign, a shard, one attempt at a shard,
    or a phase inside an attempt (compile, settle, checkpoint write,
    backoff sleep).  Spans carry a trace id shared by every span of one
    run, their own id, a parent id forming the
    [campaign -> shard -> attempt -> phase] hierarchy, a track (the
    worker/domain that produced them) and typed attributes (worker id,
    retry count, failure classification, deadline margin, ...).

    Spans are plain immutable records: the recording side
    ({!Recorder}) keeps them in a preallocated ring, the export side
    ({!Export}) renders them to JSONL, Chrome trace-event JSON and
    collapsed flamegraph stacks. *)

type kind =
  | Campaign
  | Shard
  | Attempt
  | Compile  (** engine construction: netlist -> schedule/arena *)
  | Settle  (** combinational settle phases of a simulation window *)
  | Checkpoint_write
  | Backoff_sleep

(** Stable lowercase label ([campaign], [checkpoint-write], ...) used by
    every export format. *)
val kind_name : kind -> string

type attr =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type t = {
  sp_trace : int;  (** shared by all spans of one collector/run *)
  sp_id : int;  (** unique within the trace *)
  sp_parent : int;  (** {!no_parent} for roots *)
  sp_kind : kind;
  sp_name : string;
  sp_track : int;  (** worker/domain id; one export track per value *)
  sp_start_ns : int64;  (** monotonic clock reading *)
  sp_end_ns : int64;
  sp_attrs : (string * attr) list;
}

val no_parent : int

(** Duration in nanoseconds, never negative. *)
val duration_ns : t -> int64

val duration_seconds : t -> float

val attr_to_json : attr -> Elastic_metrics.Json.t

(** One span as a JSON object ([id], [parent], [track], [kind], [name],
    [start_ns], [dur_ns], [attrs]); [start_ns] is made relative to
    [base_ns] so exported ledgers start near zero. *)
val to_json : base_ns:int64 -> t -> Elastic_metrics.Json.t

(** One-line human rendering for [spans dump]. *)
val pp : base_ns:int64 -> Format.formatter -> t -> unit
