(** Allocation-conscious single-writer span recorder.

    One recorder belongs to one track (worker/domain): all writes come
    from that worker, so no locking is needed — the parallel runner
    gives each worker its own recorder and the {!Collector} merges them
    after the run (the same split the per-worker stats accounting
    uses).

    Finished spans land in a preallocated ring ({!Elastic_trace.Tracer}
    discipline): pushing never allocates ring cells, and once the ring
    is full the oldest spans are overwritten and counted as
    {!dropped}.  Open spans are small scope records ({!enter} allocates
    one); the settle loop itself is never instrumented — phase spans
    are synthesized from {!Elastic_sim.Profile} totals with {!emit},
    which reads no clock — so a disabled recorder costs the engine
    nothing (guarded by a test). *)

type t

(** [create ()] starts an empty recorder.

    @param capacity ring size in spans (default 8192).
    @param clock injectable time source (default
      [Elastic_sim.Clock.monotonic]).
    @param trace trace id stamped on every span (default 0).
    @param track worker id stamped on every span (default 0).
    @param first_id ids are allocated sequentially from here — give each
      worker a disjoint range so ids stay unique across a merge
      (default 1). *)
val create :
  ?capacity:int ->
  ?clock:Elastic_sim.Clock.t ->
  ?trace:int ->
  ?track:int ->
  ?first_id:int ->
  unit ->
  t

val track : t -> int

(** One clock reading (the recorder's own clock). *)
val now : t -> int64

(** An entered-but-not-finished span. *)
type scope

(** Id of an open span, for parenting children across recorders. *)
val id : scope -> int

(** Clock reading taken when the scope was entered. *)
val start_ns : scope -> int64

(** [enter t kind name] opens a span starting now (one clock read).
    [parent] is the enclosing span's id ({!Span.no_parent} for a
    root). *)
val enter :
  t ->
  ?parent:int ->
  ?attrs:(string * Span.attr) list ->
  Span.kind ->
  string ->
  scope

(** Attach an attribute to a still-open span. *)
val add_attr : scope -> string -> Span.attr -> unit

(** [leave t sc] finishes the span now (one clock read) and pushes it
    into the ring. *)
val leave : t -> scope -> unit

(** [emit t kind name ~start_ns ~end_ns] records a pre-timed span
    without reading the clock — used to synthesize compile/settle phase
    spans from {!Elastic_sim.Profile} totals. *)
val emit :
  t ->
  ?parent:int ->
  ?attrs:(string * Span.attr) list ->
  Span.kind ->
  string ->
  start_ns:int64 ->
  end_ns:int64 ->
  unit

(** Finished spans surviving in the ring, oldest first. *)
val spans : t -> Span.t list

(** Total finished spans, including overwritten ones. *)
val recorded : t -> int

(** Finished spans lost to ring wraparound. *)
val dropped : t -> int
