module Json = Elastic_metrics.Json

type kind =
  | Campaign
  | Shard
  | Attempt
  | Compile
  | Settle
  | Checkpoint_write
  | Backoff_sleep

let kind_name = function
  | Campaign -> "campaign"
  | Shard -> "shard"
  | Attempt -> "attempt"
  | Compile -> "compile"
  | Settle -> "settle"
  | Checkpoint_write -> "checkpoint-write"
  | Backoff_sleep -> "backoff-sleep"

type attr =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type t = {
  sp_trace : int;
  sp_id : int;
  sp_parent : int;
  sp_kind : kind;
  sp_name : string;
  sp_track : int;
  sp_start_ns : int64;
  sp_end_ns : int64;
  sp_attrs : (string * attr) list;
}

let no_parent = -1

let duration_ns t =
  let d = Int64.sub t.sp_end_ns t.sp_start_ns in
  if Int64.compare d 0L < 0 then 0L else d

let duration_seconds t = Int64.to_float (duration_ns t) *. 1e-9

let attr_to_json = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

let to_json ~base_ns t =
  Json.Obj
    [ ("id", Json.Int t.sp_id);
      ("parent", Json.Int t.sp_parent);
      ("track", Json.Int t.sp_track);
      ("kind", Json.Str (kind_name t.sp_kind));
      ("name", Json.Str t.sp_name);
      ("start_ns", Json.Int (Int64.to_int (Int64.sub t.sp_start_ns base_ns)));
      ("dur_ns", Json.Int (Int64.to_int (duration_ns t)));
      ("attrs",
       Json.Obj (List.map (fun (k, v) -> (k, attr_to_json v)) t.sp_attrs)) ]

let pp ~base_ns ppf t =
  let start_us =
    Int64.to_float (Int64.sub t.sp_start_ns base_ns) /. 1e3
  in
  Fmt.pf ppf "[w%d] %-16s %-24s +%.1fus %.1fus (id %d <- %d)%s" t.sp_track
    (kind_name t.sp_kind) t.sp_name start_us
    (Int64.to_float (duration_ns t) /. 1e3)
    t.sp_id t.sp_parent
    (match t.sp_attrs with
     | [] -> ""
     | attrs ->
       " "
       ^ String.concat " "
           (List.map
              (fun (k, v) ->
                 Fmt.str "%s=%s" k
                   (match v with
                    | Int i -> string_of_int i
                    | Float f -> Fmt.str "%g" f
                    | Str s -> s
                    | Bool b -> string_of_bool b))
              attrs))
