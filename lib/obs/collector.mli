(** Multi-track span collection for one campaign run.

    The parallel runner gives every worker its own single-writer
    {!Recorder} (disjoint span-id ranges, shared trace id and clock);
    the collector owns those recorders, merges their rings after the
    run, and derives the scheduling gauges — per-worker utilization,
    queue wait, spans/sec — that feed the metrics registry. *)

type t

(** @param capacity_per_track ring size of each worker's recorder
      (default 8192).
    @param clock shared time source (default
      [Elastic_sim.Clock.monotonic]).
    @param trace trace id; defaults to a reading of [clock], which is
      unique enough to tell two runs apart in merged ledgers. *)
val create :
  ?capacity_per_track:int -> ?clock:Elastic_sim.Clock.t -> ?trace:int ->
  unit -> t

val trace_id : t -> int

val clock : t -> Elastic_sim.Clock.t

(** Allocate recorders for tracks [0 .. tracks-1].  Must be called
    before workers start (recorder creation is not thread-safe);
    idempotent, only grows. *)
val prepare : t -> tracks:int -> unit

(** The recorder of one track; {!prepare} must have covered it.
    @raise Invalid_argument otherwise. *)
val track : t -> int -> Recorder.t

val tracks : t -> int

(** All tracks merged, sorted by start time (ties by id). *)
val spans : t -> Span.t list

(** Totals across tracks, including ring-overwritten spans. *)
val recorded : t -> int

val dropped : t -> int

(** [(worker, busy_seconds)] per track: summed {!Span.Shard} span
    durations — the time the worker spent executing shards. *)
val busy_seconds : t -> (int * float) list

(** Per-worker busy fraction of [wall_seconds] (clamped to [0, 1]). *)
val utilization : t -> wall_seconds:float -> (int * float) list

(** Post-run derived gauges into a metrics registry:
    [elastic_obs_worker_utilization{worker=...}],
    [elastic_obs_queue_wait_seconds{worker=...}],
    [elastic_obs_spans_per_second], and the
    [elastic_obs_spans_total] / [elastic_obs_spans_dropped_total]
    counters. *)
val note_gauges :
  t -> wall_seconds:float -> Elastic_metrics.Metrics.t -> unit
