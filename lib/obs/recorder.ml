open Elastic_sim

type t = {
  ring : Span.t array;
  cap : int;
  mutable next : int;  (* ring write cursor *)
  mutable total : int;  (* finished spans ever pushed *)
  mutable seq : int;  (* next span id *)
  clock : Clock.t;
  trace : int;
  rec_track : int;
}

(* Ring sentinel; never returned (slots past [total] are skipped). *)
let dummy =
  { Span.sp_trace = 0; sp_id = -1; sp_parent = Span.no_parent;
    sp_kind = Span.Campaign; sp_name = ""; sp_track = 0;
    sp_start_ns = 0L; sp_end_ns = 0L; sp_attrs = [] }

let create ?(capacity = 8192) ?(clock = Clock.monotonic) ?(trace = 0)
    ?(track = 0) ?(first_id = 1) () =
  if capacity < 1 then invalid_arg "Recorder.create: capacity must be >= 1";
  { ring = Array.make capacity dummy;
    cap = capacity;
    next = 0;
    total = 0;
    seq = first_id;
    clock;
    trace;
    rec_track = track }

let track t = t.rec_track

let now t = t.clock ()

type scope = {
  sc_id : int;
  sc_parent : int;
  sc_kind : Span.kind;
  sc_name : string;
  sc_start : int64;
  mutable sc_attrs : (string * Span.attr) list;
}

let id sc = sc.sc_id

let start_ns sc = sc.sc_start

let fresh_id t =
  let i = t.seq in
  t.seq <- t.seq + 1;
  i

let push t span =
  t.ring.(t.next) <- span;
  t.next <- (t.next + 1) mod t.cap;
  t.total <- t.total + 1

let enter t ?(parent = Span.no_parent) ?(attrs = []) kind name =
  { sc_id = fresh_id t;
    sc_parent = parent;
    sc_kind = kind;
    sc_name = name;
    sc_start = t.clock ();
    sc_attrs = attrs }

let add_attr sc key v = sc.sc_attrs <- (key, v) :: sc.sc_attrs

let leave t sc =
  push t
    { Span.sp_trace = t.trace;
      sp_id = sc.sc_id;
      sp_parent = sc.sc_parent;
      sp_kind = sc.sc_kind;
      sp_name = sc.sc_name;
      sp_track = t.rec_track;
      sp_start_ns = sc.sc_start;
      sp_end_ns = t.clock ();
      sp_attrs = List.rev sc.sc_attrs }

let emit t ?(parent = Span.no_parent) ?(attrs = []) kind name ~start_ns
    ~end_ns =
  push t
    { Span.sp_trace = t.trace;
      sp_id = fresh_id t;
      sp_parent = parent;
      sp_kind = kind;
      sp_name = name;
      sp_track = t.rec_track;
      sp_start_ns = start_ns;
      sp_end_ns = end_ns;
      sp_attrs = attrs }

let spans t =
  let kept = min t.total t.cap in
  let first =
    if t.total <= t.cap then 0 else t.next (* oldest surviving slot *)
  in
  List.init kept (fun k -> t.ring.((first + k) mod t.cap))

let recorded t = t.total

let dropped t = max 0 (t.total - t.cap)
