(** Span ledger exports.

    Three renderings of one merged span list:

    - {!jsonl}: the versioned machine-readable ledger
      (schema {!schema} = ["elastic-speculation/spans/v1"]) — a header
      line naming the schema, campaign and time base, then one
      {!Span.to_json} object per line;
    - {!chrome_json}: Chrome trace-event JSON (the ["traceEvents"]
      array form) loadable in Perfetto / [chrome://tracing], one named
      track per worker, ["X"] complete events with microsecond
      timestamps sorted monotonically;
    - {!folded}: collapsed stacks ([campaign;shard;attempt;settle N])
      with self-time values in microseconds, aggregated by kind path,
      ready for [flamegraph.pl] / speedscope. *)

val schema : string

(** Earliest span start, the time base every export subtracts; [0L]
    for an empty list. *)
val base_ns : Span.t list -> int64

val jsonl : ?campaign:string -> Span.t list -> string

val write_jsonl : path:string -> ?campaign:string -> Span.t list -> unit

val chrome_json :
  ?process_name:string -> Span.t list -> Elastic_metrics.Json.t

val write_chrome :
  path:string -> ?process_name:string -> Span.t list -> unit

val folded : Span.t list -> string

val write_folded : path:string -> Span.t list -> unit
