module Json = Elastic_metrics.Json

let schema = "elastic-speculation/spans/v1"

let base_ns spans =
  List.fold_left
    (fun acc (s : Span.t) ->
       if Int64.compare s.Span.sp_start_ns acc < 0 then s.Span.sp_start_ns
       else acc)
    (match spans with
     | [] -> 0L
     | s :: _ -> s.Span.sp_start_ns)
    spans

let write_file path text =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc text)

let jsonl ?(campaign = "") spans =
  let base = base_ns spans in
  let buf = Buffer.create 4096 in
  let line j =
    Buffer.add_string buf (Json.to_string j);
    Buffer.add_char buf '\n'
  in
  line
    (Json.Obj
       [ ("schema", Json.Str schema);
         ("campaign", Json.Str campaign);
         ("trace",
          Json.Int
            (match spans with
             | [] -> 0
             | s :: _ -> s.Span.sp_trace));
         ("spans", Json.Int (List.length spans)) ]);
  List.iter (fun s -> line (Span.to_json ~base_ns:base s)) spans;
  Buffer.contents buf

let write_jsonl ~path ?campaign spans =
  write_file path (jsonl ?campaign spans)

(* Chrome trace-event JSON: integer microsecond [ts]/[dur] (the shared
   Json printer renders floats with 6 significant digits, far too
   coarse for timestamps), one [tid] per worker track named by an [M]
   metadata event, [X] events sorted by start so timestamps are
   monotone in file order — the CI validator asserts exactly that. *)
let chrome_json ?(process_name = "elastic-speculation") spans =
  let spans =
    List.sort
      (fun (a : Span.t) (b : Span.t) ->
         match Int64.compare a.Span.sp_start_ns b.Span.sp_start_ns with
         | 0 -> compare a.Span.sp_id b.Span.sp_id
         | c -> c)
      spans
  in
  let base = base_ns spans in
  let us ns = Int64.to_int (Int64.div ns 1000L) in
  let tracks =
    List.sort_uniq compare
      (List.map (fun (s : Span.t) -> s.Span.sp_track) spans)
  in
  let meta =
    Json.Obj
      [ ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.Str process_name) ]) ]
    :: List.map
         (fun tid ->
            Json.Obj
              [ ("name", Json.Str "thread_name");
                ("ph", Json.Str "M");
                ("pid", Json.Int 1);
                ("tid", Json.Int tid);
                ("args",
                 Json.Obj
                   [ ("name", Json.Str (Fmt.str "worker %d" tid)) ]) ])
         tracks
  in
  let events =
    List.map
      (fun (s : Span.t) ->
         Json.Obj
           [ ("name", Json.Str s.Span.sp_name);
             ("cat", Json.Str (Span.kind_name s.Span.sp_kind));
             ("ph", Json.Str "X");
             ("ts", Json.Int (us (Int64.sub s.Span.sp_start_ns base)));
             ("dur", Json.Int (us (Span.duration_ns s)));
             ("pid", Json.Int 1);
             ("tid", Json.Int s.Span.sp_track);
             ("args",
              Json.Obj
                (("id", Json.Int s.Span.sp_id)
                 :: ("parent", Json.Int s.Span.sp_parent)
                 :: List.map
                      (fun (k, v) -> (k, Span.attr_to_json v))
                      s.Span.sp_attrs)) ])
      spans
  in
  Json.Obj
    [ ("traceEvents", Json.List (meta @ events));
      ("displayTimeUnit", Json.Str "ms") ]

let write_chrome ~path ?process_name spans =
  write_file path (Json.to_string ~indent:1 (chrome_json ?process_name spans) ^ "\n")

(* Collapsed stacks aggregate by the kind path (campaign;shard;attempt;
   settle), not by span name: a flamegraph over thousands of shards
   should show where campaign time goes per phase, not one bar per
   shard.  Values are self time (duration minus instrumented children)
   in microseconds. *)
let folded spans =
  let by_id = Hashtbl.create (List.length spans) in
  List.iter
    (fun (s : Span.t) -> Hashtbl.replace by_id s.Span.sp_id s)
    spans;
  let child_ns = Hashtbl.create (List.length spans) in
  List.iter
    (fun (s : Span.t) ->
       if Hashtbl.mem by_id s.Span.sp_parent then
         Hashtbl.replace child_ns s.Span.sp_parent
           (Int64.add
              (Option.value ~default:0L
                 (Hashtbl.find_opt child_ns s.Span.sp_parent))
              (Span.duration_ns s)))
    spans;
  let rec path (s : Span.t) acc =
    let acc = Span.kind_name s.Span.sp_kind :: acc in
    match Hashtbl.find_opt by_id s.Span.sp_parent with
    | Some p -> path p acc
    | None -> acc
  in
  let stacks = Hashtbl.create 64 in
  List.iter
    (fun (s : Span.t) ->
       let self =
         Int64.sub (Span.duration_ns s)
           (Option.value ~default:0L
              (Hashtbl.find_opt child_ns s.Span.sp_id))
       in
       let self_us =
         Int64.to_int (Int64.div (Int64.max 0L self) 1000L)
       in
       let key = String.concat ";" (path s []) in
       Hashtbl.replace stacks key
         (Option.value ~default:0 (Hashtbl.find_opt stacks key) + self_us))
    spans;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) stacks []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (k, v) -> Fmt.str "%s %d" k v)
  |> fun lines -> String.concat "\n" lines ^ if lines = [] then "" else "\n"

let write_folded ~path spans = write_file path (folded spans)
