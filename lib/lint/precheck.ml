(* Transform precondition checkers.

   Each transformation in [Elastic_core.Transform] consults the matching
   checker before touching the netlist; an illegal application fails with
   a typed {!Elastic_netlist.Diagnostic.t} (raised as [Diagnostic.Reject])
   instead of a bare [Invalid_argument] string, so shells and CI can
   report the rule code and the offending node.  The checkers are pure:
   they never modify the netlist and raise on the {e first} violated
   precondition. *)

open Elastic_netlist

let fail ~code ~rule ?node ?node_name ?channel ?channel_name ?fixit msg =
  Diagnostic.reject
    (Diagnostic.make ~code ~rule ~severity:Diagnostic.Error ?node ?node_name
       ?channel ?channel_name ?fixit msg)

let fail_node ~code ~rule (n : Netlist.node) msg =
  fail ~code ~rule ~node:n.Netlist.id ~node_name:n.Netlist.name msg

(* E301 *)
let insert_fifo _net ~depth =
  if depth < 1 then
    fail ~code:"E301" ~rule:"fifo-depth"
      (Fmt.str "insert_fifo: depth %d < 1 (a FIFO needs at least one EB)"
         depth)

let buffer_of ~code ~rule net b =
  let n = Netlist.node net b in
  match n.Netlist.kind with
  | Netlist.Buffer { buffer; init } -> (n, buffer, init)
  | _ ->
    fail_node ~code ~rule n
      (Fmt.str "node %s (%s) is not a buffer" n.Netlist.name
         (Netlist.kind_name n.Netlist.kind))

let channel_on ~code ~rule net (n : Netlist.node) port =
  match Netlist.channel_at net n.Netlist.id port with
  | Some c -> c
  | None ->
    fail_node ~code ~rule n
      (Fmt.str "node %s has no channel at %a" n.Netlist.name Netlist.pp_port
         port)

(* E302 *)
let remove_buffer net b =
  let code = "E302" and rule = "remove-buffer" in
  let n, _, init = buffer_of ~code ~rule net b in
  if init <> [] then
    fail_node ~code ~rule n
      (Fmt.str
         "remove_buffer: %s holds %d token(s); removing it would drop them"
         n.Netlist.name (List.length init));
  ignore (channel_on ~code ~rule net n (Netlist.In 0));
  ignore (channel_on ~code ~rule net n (Netlist.Out 0))

(* E303 *)
let convert_buffer net b target =
  let code = "E303" and rule = "convert-buffer" in
  let n, _, init = buffer_of ~code ~rule net b in
  let capacity = Netlist.buffer_capacity target in
  if List.length init > capacity then
    fail_node ~code ~rule n
      (Fmt.str
         "convert_buffer: %d token(s) in %s exceed capacity C = Lf + Lb = \
          %d of %s"
         (List.length init) n.Netlist.name capacity
         (Netlist.buffer_kind_name target))

let func_of ~code ~rule net id =
  let n = Netlist.node net id in
  match n.Netlist.kind with
  | Netlist.Func f -> (n, f)
  | _ ->
    fail_node ~code ~rule n
      (Fmt.str "node %s (%s) is not a function block" n.Netlist.name
         (Netlist.kind_name n.Netlist.kind))

(* E304 *)
let retime_forward net ~through =
  let code = "E304" and rule = "retime-forward" in
  let n, f = func_of ~code ~rule net through in
  List.iter
    (fun i ->
       let c = channel_on ~code ~rule net n (Netlist.In i) in
       let src = Netlist.node net c.Netlist.src.Netlist.ep_node in
       match src.Netlist.kind with
       | Netlist.Buffer { init = []; _ } ->
         fail_node ~code ~rule src
           (Fmt.str
              "retime_forward: buffer %s is empty (moving %s backward \
               needs one token on every input)"
              src.Netlist.name f.Func.name)
       | Netlist.Buffer _ -> ()
       | _ ->
         fail ~code ~rule ~node:src.Netlist.id ~node_name:src.Netlist.name
           ~channel:c.Netlist.ch_id ~channel_name:c.Netlist.ch_name
           (Fmt.str
              "retime_forward: input %d of %s comes from %s (%s), not a \
               buffer"
              i n.Netlist.name src.Netlist.name
              (Netlist.kind_name src.Netlist.kind)))
    (List.init f.Func.arity (fun i -> i))

(* E305 *)
let retime_backward net ~through =
  let code = "E305" and rule = "retime-backward" in
  let n, _ = func_of ~code ~rule net through in
  let out_ch = channel_on ~code ~rule net n (Netlist.Out 0) in
  let b = Netlist.node net out_ch.Netlist.dst.Netlist.ep_node in
  match b.Netlist.kind with
  | Netlist.Buffer { init = _ :: _; _ } ->
    fail_node ~code ~rule b
      (Fmt.str
         "retime_backward: output buffer %s must be empty (its tokens \
          cannot be un-computed through %s)"
         b.Netlist.name n.Netlist.name)
  | Netlist.Buffer _ -> ignore (channel_on ~code ~rule net b (Netlist.Out 0))
  | _ ->
    fail_node ~code ~rule b
      (Fmt.str "retime_backward: %s feeds %s (%s), not a buffer"
         n.Netlist.name b.Netlist.name
         (Netlist.kind_name b.Netlist.kind))

let mux_of ~code ~rule net id =
  let n = Netlist.node net id in
  match n.Netlist.kind with
  | Netlist.Mux { ways; early } -> (n, ways, early)
  | _ ->
    fail_node ~code ~rule n
      (Fmt.str "node %s (%s) is not a multiplexor" n.Netlist.name
         (Netlist.kind_name n.Netlist.kind))

(* E306 *)
let shannon net ~mux =
  let code = "E306" and rule = "shannon" in
  let n, ways, _ = mux_of ~code ~rule net mux in
  let out_ch = channel_on ~code ~rule net n (Netlist.Out 0) in
  let block = Netlist.node net out_ch.Netlist.dst.Netlist.ep_node in
  (match block.Netlist.kind with
   | Netlist.Func f when f.Func.arity = 1 -> ()
   | Netlist.Func f ->
     fail_node ~code ~rule block
       (Fmt.str
          "shannon: block %s after the mux must be unary (arity %d) to \
           commute with the select"
          block.Netlist.name f.Func.arity)
   | _ ->
     fail_node ~code ~rule block
       (Fmt.str "shannon: mux %s feeds %s (%s), not a function block"
          n.Netlist.name block.Netlist.name
          (Netlist.kind_name block.Netlist.kind)));
  ignore (channel_on ~code ~rule net block (Netlist.Out 0));
  List.iter
    (fun i -> ignore (channel_on ~code ~rule net n (Netlist.In i)))
    (List.init ways (fun i -> i))

(* E307 *)
let early_evaluation net ~mux =
  let code = "E307" and rule = "early-evaluation" in
  ignore (mux_of ~code ~rule net mux)

(* E308 *)
let share net ~blocks =
  let code = "E308" and rule = "share" in
  (match blocks with
   | [] | [ _ ] ->
     fail ~code ~rule
       (Fmt.str "share: need at least two blocks, got %d"
          (List.length blocks))
   | _ :: _ :: _ -> ());
  let funcs = List.map (func_of ~code ~rule net) blocks in
  match funcs with
  | (n0, f0) :: rest ->
    List.iter
      (fun ((n, f) : Netlist.node * Func.t) ->
         if f.Func.arity <> 1 || f0.Func.arity <> 1 then
           fail_node ~code ~rule
             (if f.Func.arity <> 1 then n else n0)
             (Fmt.str
                "share: blocks must be unary (%s has arity %d)"
                (if f.Func.arity <> 1 then f.Func.name else f0.Func.name)
                (max f.Func.arity f0.Func.arity));
         if not (String.equal f0.Func.name f.Func.name) then
           fail_node ~code ~rule n
             (Fmt.str
                "share: blocks must compute the same function (%s vs %s)"
                f0.Func.name f.Func.name);
         List.iter
           (fun port -> ignore (channel_on ~code ~rule net n port))
           [ Netlist.In 0; Netlist.Out 0 ])
      ((n0, f0) :: rest)
  | [] -> assert false
