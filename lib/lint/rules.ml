(* Graph analyses behind the lint rules: pure structural reasoning on the
   channel graph, no simulation.

   All analyses run on the same abstraction, a directed graph whose
   vertices are the {e channels}; the edge c1 -> c2 exists when the node
   consuming c1 can produce on c2 (way-wise for shared modules).  This is
   the node-level condensation of the field-group dependency graph that
   [Elastic_sim.Schedule] builds wire-by-wire: cutting the edges that
   cross a buffer of the right kind turns "is there a combinational
   cycle" / "is there a token-free cycle" into plain SCC questions.

   Every analysis assumes a structurally sound netlist (no E001-E004
   findings); [Lint.run] gates on that before calling in here. *)

open Elastic_netlist
open Elastic_sched

let diag = Diagnostic.make

(* {1 The channel graph} *)

(* Successors of a channel, i.e. the output channels of its destination
   node.  The flags remove edge classes:
   - [through_eb]: keep edges across an [Eb] (Lf=1, Lb=1) buffer — the
     only node that registers {e both} handshake directions;
   - [through_tokens]: keep edges across a buffer holding initial tokens;
   - [into_early_data]: keep edges entering an early-evaluation mux via a
     data input (an early mux can fire without that input, emitting an
     anti-token into it, so such a cycle is not statically dead);
   - [shared_sel]: count a shared module's hint input as feeding its
     outputs (true for consumption/reachability questions, false for
     token-path cycles). *)
let successors ?(through_eb = true) ?(through_tokens = true)
    ?(into_early_data = true) ?(shared_sel = false) net
    (c : Netlist.channel) =
  let n = Netlist.node net c.Netlist.dst.Netlist.ep_node in
  let is_data_in =
    match c.Netlist.dst.Netlist.ep_port with
    | Netlist.In _ -> true
    | Netlist.Sel | Netlist.Out _ -> false
  in
  match n.Netlist.kind with
  | Netlist.Source _ | Netlist.Sink _ -> []
  | Netlist.Buffer { buffer = Netlist.Eb; _ } when not through_eb -> []
  | Netlist.Buffer { init = _ :: _; _ } when not through_tokens -> []
  | Netlist.Buffer _ -> Netlist.outgoing net n.Netlist.id
  | Netlist.Mux { early = true; _ }
    when is_data_in && not into_early_data -> []
  | Netlist.Mux _ | Netlist.Func _ | Netlist.Fork _ | Netlist.Varlat _ ->
    Netlist.outgoing net n.Netlist.id
  | Netlist.Shared _ -> (
      match c.Netlist.dst.Netlist.ep_port with
      | Netlist.In i -> (
          match Netlist.channel_at net n.Netlist.id (Netlist.Out i) with
          | Some c' -> [ c' ]
          | None -> [])
      | Netlist.Sel ->
        if shared_sel then Netlist.outgoing net n.Netlist.id else []
      | Netlist.Out _ -> [])

(* Mirror image, for reaches-a-sink questions. *)
let predecessors ?(shared_sel = false) net (c : Netlist.channel) =
  let n = Netlist.node net c.Netlist.src.Netlist.ep_node in
  match n.Netlist.kind with
  | Netlist.Source _ | Netlist.Sink _ -> []
  | Netlist.Shared { hinted; _ } -> (
      match c.Netlist.src.Netlist.ep_port with
      | Netlist.Out i ->
        let way =
          match Netlist.channel_at net n.Netlist.id (Netlist.In i) with
          | Some c' -> [ c' ]
          | None -> []
        in
        let hint =
          if hinted && shared_sel then
            match Netlist.channel_at net n.Netlist.id Netlist.Sel with
            | Some c' -> [ c' ]
            | None -> []
          else []
        in
        way @ hint
      | Netlist.In _ | Netlist.Sel -> [])
  | Netlist.Buffer _ | Netlist.Func _ | Netlist.Fork _ | Netlist.Mux _
  | Netlist.Varlat _ ->
    Netlist.incoming net n.Netlist.id

(* Tarjan over channels; returns only the cyclic components (size >= 2,
   or a single channel that succeeds itself), each sorted by channel id,
   components sorted by their least channel — deterministic output. *)
let cyclic_components net ~succ =
  let index : (Netlist.channel_id, int) Hashtbl.t = Hashtbl.create 64 in
  let lowlink : (Netlist.channel_id, int) Hashtbl.t = Hashtbl.create 64 in
  let onstack : (Netlist.channel_id, unit) Hashtbl.t = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let comps = ref [] in
  let get tbl k = Hashtbl.find tbl k in
  let rec strong (c : Netlist.channel) =
    let cid = c.Netlist.ch_id in
    Hashtbl.replace index cid !counter;
    Hashtbl.replace lowlink cid !counter;
    incr counter;
    stack := cid :: !stack;
    Hashtbl.replace onstack cid ();
    List.iter
      (fun (c' : Netlist.channel) ->
         let cid' = c'.Netlist.ch_id in
         if not (Hashtbl.mem index cid') then begin
           strong c';
           Hashtbl.replace lowlink cid
             (min (get lowlink cid) (get lowlink cid'))
         end
         else if Hashtbl.mem onstack cid' then
           Hashtbl.replace lowlink cid
             (min (get lowlink cid) (get index cid')))
      (succ c);
    if get lowlink cid = get index cid then begin
      let rec pop acc =
        match !stack with
        | x :: rest ->
          stack := rest;
          Hashtbl.remove onstack x;
          if x = cid then x :: acc else pop (x :: acc)
        | [] -> acc
      in
      comps := pop [] :: !comps
    end
  in
  List.iter
    (fun (c : Netlist.channel) ->
       if not (Hashtbl.mem index c.Netlist.ch_id) then strong c)
    (Netlist.channels net);
  !comps
  |> List.filter (fun comp ->
      match comp with
      | [ x ] ->
        List.exists
          (fun (c' : Netlist.channel) -> c'.Netlist.ch_id = x)
          (succ (Netlist.channel net x))
      | _ :: _ :: _ -> true
      | [] -> false)
  |> List.map (List.sort compare)
  |> List.sort compare

(* Buffer nodes crossed by a component (a buffer is "on" the cycle when
   one of the component's channels enters it). *)
let buffers_on net comp =
  List.filter_map
    (fun cid ->
       let c = Netlist.channel net cid in
       let n = Netlist.node net c.Netlist.dst.Netlist.ep_node in
       match n.Netlist.kind with
       | Netlist.Buffer { buffer; init } -> Some (n, buffer, init)
       | Netlist.Source _ | Netlist.Sink _ | Netlist.Func _
       | Netlist.Fork _ | Netlist.Mux _ | Netlist.Shared _
       | Netlist.Varlat _ -> None)
    comp
  |> List.sort_uniq (fun (a, _, _) (b, _, _) ->
      compare a.Netlist.id b.Netlist.id)

let cycle_names ?(limit = 6) net comp =
  let names =
    List.map (fun cid -> (Netlist.channel net cid).Netlist.ch_name) comp
  in
  let shown = List.filteri (fun i _ -> i < limit) names in
  String.concat " -> " shown
  ^ (if List.length names > limit then
       Fmt.str " -> ... (%d channels)" (List.length names)
     else "")

(* {1 Reachability (W005 / W006)} *)

let bfs_channels net ~start ~next =
  let seen : (Netlist.channel_id, unit) Hashtbl.t = Hashtbl.create 64 in
  let q = Queue.create () in
  List.iter
    (fun (c : Netlist.channel) ->
       if not (Hashtbl.mem seen c.Netlist.ch_id) then begin
         Hashtbl.replace seen c.Netlist.ch_id ();
         Queue.push c q
       end)
    start;
  while not (Queue.is_empty q) do
    let c = Queue.pop q in
    List.iter
      (fun (c' : Netlist.channel) ->
         if not (Hashtbl.mem seen c'.Netlist.ch_id) then begin
           Hashtbl.replace seen c'.Netlist.ch_id ();
           Queue.push c' q
         end)
      (next net c)
  done;
  seen

(* W005: node not fed (transitively) by any token source. *)
let unreachable_from_source net =
  let sources =
    List.filter
      (fun (n : Netlist.node) ->
         match n.Netlist.kind with
         | Netlist.Source _ -> true
         | _ -> false)
      (Netlist.nodes net)
  in
  if sources = [] then []
  else begin
    let start =
      List.concat_map
        (fun (n : Netlist.node) -> Netlist.outgoing net n.Netlist.id)
        sources
    in
    let visited =
      bfs_channels net ~start ~next:(successors ~shared_sel:true)
    in
    let reached : (Netlist.node_id, unit) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (n : Netlist.node) -> Hashtbl.replace reached n.Netlist.id ())
      sources;
    Hashtbl.iter
      (fun cid () ->
         Hashtbl.replace reached
           (Netlist.channel net cid).Netlist.dst.Netlist.ep_node ())
      visited;
    List.filter_map
      (fun (n : Netlist.node) ->
         if Hashtbl.mem reached n.Netlist.id then None
         else
           Some
             (diag ~code:"W005" ~rule:"unreachable-from-source"
                ~severity:Diagnostic.Warning ~node:n.Netlist.id
                ~node_name:n.Netlist.name
                (Fmt.str
                   "node %s (%s) is not fed by any source: it can never \
                    receive a token"
                   n.Netlist.name
                   (Netlist.kind_name n.Netlist.kind))))
      (Netlist.nodes net)
  end

(* W006: node whose tokens can never be consumed by any sink. *)
let cannot_reach_sink net =
  let sinks =
    List.filter
      (fun (n : Netlist.node) ->
         match n.Netlist.kind with
         | Netlist.Sink _ -> true
         | _ -> false)
      (Netlist.nodes net)
  in
  if sinks = [] then []
  else begin
    let start =
      List.concat_map
        (fun (n : Netlist.node) -> Netlist.incoming net n.Netlist.id)
        sinks
    in
    let visited =
      bfs_channels net ~start ~next:(predecessors ~shared_sel:true)
    in
    let reaches : (Netlist.node_id, unit) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (n : Netlist.node) -> Hashtbl.replace reaches n.Netlist.id ())
      sinks;
    Hashtbl.iter
      (fun cid () ->
         Hashtbl.replace reaches
           (Netlist.channel net cid).Netlist.src.Netlist.ep_node ())
      visited;
    List.filter_map
      (fun (n : Netlist.node) ->
         if Hashtbl.mem reaches n.Netlist.id then None
         else
           Some
             (diag ~code:"W006" ~rule:"cannot-reach-sink"
                ~severity:Diagnostic.Warning ~node:n.Netlist.id
                ~node_name:n.Netlist.name
                (Fmt.str
                   "node %s (%s) cannot reach any sink: its tokens are \
                    never consumed"
                   n.Netlist.name
                   (Netlist.kind_name n.Netlist.kind))))
      (Netlist.nodes net)
  end

(* {1 SELF invariants (E101 / E102 / E103 / W104)} *)

(* E101: stored tokens must fit C = Lf + Lb. *)
let buffer_overfilled net =
  List.filter_map
    (fun (n : Netlist.node) ->
       match n.Netlist.kind with
       | Netlist.Buffer { buffer; init }
         when List.length init > Netlist.buffer_capacity buffer ->
         let fixit =
           if buffer = Netlist.Eb0 && List.length init <= 2 then
             Diagnostic.Convert_buffer { node = n.Netlist.id; buffer = "eb" }
           else
             Diagnostic.Note "reduce the initial tokens to the capacity"
         in
         Some
           (diag ~code:"E101" ~rule:"buffer-overfilled"
              ~severity:Diagnostic.Error ~node:n.Netlist.id
              ~node_name:n.Netlist.name ~fixit
              (Fmt.str
                 "buffer %s holds %d initial token(s) but %s has capacity \
                  C = Lf + Lb = %d"
                 n.Netlist.name (List.length init)
                 (Netlist.buffer_kind_name buffer)
                 (Netlist.buffer_capacity buffer)))
       | _ -> None)
    (Netlist.nodes net)

(* E102: a cycle crossing no Eb is combinational — either the forward
   path (no buffer at all) or the backward stop path (only Eb0s, whose
   Lb = 0 makes stop/kill traverse them combinationally, Fig. 5). *)
let combinational_cycle net =
  cyclic_components net ~succ:(successors ~through_eb:false net)
  |> List.map (fun comp ->
      let first = List.hd comp in
      let has_eb0 =
        List.exists
          (fun (_, b, _) -> b = Netlist.Eb0)
          (buffers_on net comp)
      in
      diag ~code:"E102" ~rule:"comb-cycle" ~severity:Diagnostic.Error
        ~channel:first
        ~channel_name:(Netlist.channel net first).Netlist.ch_name
        ~fixit:(Diagnostic.Insert_bubble { channel = first })
        (Fmt.str
           "cycle broken by no EB (Lf=1, Lb=1): %s is combinational \
            (%s): %s"
           (if has_eb0 then "the backward stop/kill path" else "the loop")
           (if has_eb0 then
              "eb0 has Lb = 0, so stop traverses it in zero cycles"
            else "no elastic buffer registers it")
           (cycle_names net comp)))

(* E103: a cycle whose buffers are all empty and which no early mux can
   relieve holds no token and never will — a statically dead marked
   graph.  Cycles with no buffer at all are E102's finding, not ours. *)
let token_free_cycle net =
  cyclic_components net
    ~succ:(successors ~through_tokens:false ~into_early_data:false net)
  |> List.filter_map (fun comp ->
      match buffers_on net comp with
      | [] -> None (* combinational: reported as E102 *)
      | (b, _, _) :: _ ->
        Some
          (diag ~code:"E103" ~rule:"token-free-cycle"
             ~severity:Diagnostic.Error ~node:b.Netlist.id
             ~node_name:b.Netlist.name
             ~fixit:(Diagnostic.Set_init { node = b.Netlist.id; tokens = 1 })
             (Fmt.str
                "cycle carries no token and no early-evaluation mux can \
                 break the wait: static deadlock (every cycle of a live \
                 marked graph needs a token): %s"
                (cycle_names net comp))))

(* W104: anti-token counterflow boundedness (§4.1 / §4.3).  An early mux
   pushes anti-tokens backwards into its non-selected inputs; through a
   plain Eb they crawl one cycle per buffer (Lb = 1), so recovery after a
   misprediction is delayed by the whole return path.  The Fig. 5 Eb0
   returns them combinationally. *)
let antitoken_through_eb net =
  List.concat_map
    (fun (n : Netlist.node) ->
       match n.Netlist.kind with
       | Netlist.Mux { ways; early = true } ->
         List.filter_map
           (fun i ->
              match Netlist.channel_at net n.Netlist.id (Netlist.In i) with
              | None -> None
              | Some c -> (
                  let src = Netlist.node net c.Netlist.src.Netlist.ep_node in
                  match src.Netlist.kind with
                  | Netlist.Buffer { buffer = Netlist.Eb; init } ->
                    let fixit =
                      if List.length init <= 1 then
                        Diagnostic.Convert_buffer
                          { node = src.Netlist.id; buffer = "eb0" }
                      else
                        Diagnostic.Note
                          "split the tokens so an eb0 (capacity 1) fits"
                    in
                    Some
                      (diag ~code:"W104" ~rule:"antitoken-through-eb"
                         ~severity:Diagnostic.Warning ~node:src.Netlist.id
                         ~node_name:src.Netlist.name ~channel:c.Netlist.ch_id
                         ~channel_name:c.Netlist.ch_name ~fixit
                         (Fmt.str
                            "early mux %s input %d is fed by plain EB %s: \
                             anti-tokens crawl back 1 cycle per EB (Lb=1); \
                             an eb0 (Fig. 5, Lb=0) returns them \
                             combinationally"
                            n.Netlist.name i src.Netlist.name))
                  | _ -> None))
           (List.init ways (fun i -> i))
       | _ -> [])
    (Netlist.nodes net)

(* {1 Speculation checks (W201 / I200 / I201 / I202)} *)

let external_scheduler net =
  List.filter_map
    (fun (n : Netlist.node) ->
       match n.Netlist.kind with
       | Netlist.Shared { sched = Scheduler.External; _ } ->
         Some
           (diag ~code:"W201" ~rule:"no-scheduler"
              ~severity:Diagnostic.Warning ~node:n.Netlist.id
              ~node_name:n.Netlist.name
              (Fmt.str
                 "speculation controller %s has no scheduler attached \
                  (External predictions come from the environment; fine \
                  for model checking, not for synthesis)"
                 n.Netlist.name))
       | _ -> None)
    (Netlist.nodes net)

(* Muxes whose select is produced on the very cycle the mux feeds — the
   paper's speculation trigger.  Info severity: for a plain mux this is
   the §4 opportunity (I200), for an early mux it marks the speculative
   loop as already transformed (I201). *)
let mux_on_critical_cycle net =
  let comps =
    cyclic_components net ~succ:(successors net)
    |> List.filter (fun comp ->
        List.exists (fun (_, _, init) -> init <> []) (buffers_on net comp))
  in
  let in_same_comp a b =
    List.exists (fun comp -> List.mem a comp && List.mem b comp) comps
  in
  List.filter_map
    (fun (n : Netlist.node) ->
       match n.Netlist.kind with
       | Netlist.Mux { early; _ } -> (
           match
             ( Netlist.channel_at net n.Netlist.id Netlist.Sel,
               Netlist.channel_at net n.Netlist.id (Netlist.Out 0) )
           with
           | Some cs, Some co
             when in_same_comp cs.Netlist.ch_id co.Netlist.ch_id ->
             let code, rule, msg =
               if early then
                 ( "I201", "speculative-select",
                   "early-evaluation mux %s has its select fed from the \
                    token-bearing (critical) cycle through it: a \
                    speculative loop" )
               else
                 ( "I200", "speculation-candidate",
                   "mux %s has its select fed from the token-bearing \
                    (critical) cycle through it: the Section 4 recipe \
                    (shannon; early; share) applies" )
             in
             Some
               (diag ~code ~rule ~severity:Diagnostic.Info
                  ~node:n.Netlist.id ~node_name:n.Netlist.name
                  ~channel:cs.Netlist.ch_id
                  ~channel_name:cs.Netlist.ch_name
                  (Fmt.str (Scanf.format_from_string msg "%s")
                     n.Netlist.name))
           | _ -> None)
       | _ -> None)
    (Netlist.nodes net)

(* I202: a shared block feeding two or more arms of one early mux — the
   Fig. 4 sharing pattern, possibly through recovery buffers. *)
let shared_arms net =
  let rec back_to_shared depth (c : Netlist.channel) =
    if depth > 64 then None
    else
      let n = Netlist.node net c.Netlist.src.Netlist.ep_node in
      match n.Netlist.kind with
      | Netlist.Shared _ -> Some n
      | Netlist.Buffer _ -> (
          match Netlist.channel_at net n.Netlist.id (Netlist.In 0) with
          | Some c' -> back_to_shared (depth + 1) c'
          | None -> None)
      | _ -> None
  in
  List.concat_map
    (fun (n : Netlist.node) ->
       match n.Netlist.kind with
       | Netlist.Mux { ways; early = true } ->
         let arms =
           List.filter_map
             (fun i ->
                match
                  Netlist.channel_at net n.Netlist.id (Netlist.In i)
                with
                | Some c -> (
                    match back_to_shared 0 c with
                    | Some sh -> Some (sh, i)
                    | None -> None)
                | None -> None)
             (List.init ways (fun i -> i))
         in
         let grouped =
           List.sort_uniq compare
             (List.map (fun ((sh : Netlist.node), _) -> sh.Netlist.id) arms)
         in
         List.filter_map
           (fun shid ->
              let ways_of =
                List.filter_map
                  (fun ((sh : Netlist.node), i) ->
                     if sh.Netlist.id = shid then Some i else None)
                  arms
              in
              if List.length ways_of < 2 then None
              else
                let sh = Netlist.node net shid in
                Some
                  (diag ~code:"I202" ~rule:"shared-arms"
                     ~severity:Diagnostic.Info ~node:shid
                     ~node_name:sh.Netlist.name
                     (Fmt.str
                        "shared block %s drives %d speculative arms of \
                         mux %s (inputs %s): the Fig. 4 sharing pattern"
                        sh.Netlist.name (List.length ways_of)
                        n.Netlist.name
                        (String.concat ", "
                           (List.map string_of_int ways_of)))))
           grouped
       | _ -> [])
    (Netlist.nodes net)
