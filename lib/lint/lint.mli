open Elastic_netlist

(** Static analysis over elastic netlists.

    A registry of rules, each a pure function of the netlist graph (no
    simulation), producing typed {!Diagnostic.t} findings: structural
    well-formedness (E001-E004, delegated to {!Netlist.diagnostics}),
    reachability (W005/W006), SELF invariants (E101-E103, W104) and
    speculation-specific checks (W201, I200-I202).  Transform
    preconditions (E301-E308) live in {!module:Precheck} and are raised,
    not collected.  See EXPERIMENTS.md for the full rule catalogue. *)

type rule = {
  code : string;  (** Stable rule code, e.g. ["E102"]. *)
  slug : string;  (** Human-friendly name, e.g. ["comb-cycle"]. *)
  severity : Diagnostic.severity;
  what : string;  (** One-line description of the invariant. *)
  paper : string;  (** Paper section / figure the invariant comes from. *)
  check : Netlist.t -> Diagnostic.t list;
}

(** All registered rules, in code order.  Precheck codes (E3xx) are not
    rules: they guard transformations and never fire on a standing
    netlist. *)
val registry : rule list

(** Find a rule by code or slug (case-insensitive). *)
val find_rule : string -> rule option

type report = {
  diags : Diagnostic.t list;  (** Severity-major, registry order. *)
  rules_run : int;
  gated : bool;
      (** True when structural errors (E001-E004) were found and the
          graph rules were skipped: they assume a well-formed graph. *)
}

(** [run net] executes every enabled rule.  [only] restricts to the given
    codes/slugs; [disable] removes codes/slugs from the enabled set.  If
    any structural error exists (enabled or not) the graph-level rules
    are skipped and [gated] is set. *)
val run : ?only:string list -> ?disable:string list -> Netlist.t -> report

val errors : report -> Diagnostic.t list

val warnings : report -> Diagnostic.t list

val infos : report -> Diagnostic.t list

(** No error-severity findings (warnings and infos allowed). *)
val clean : report -> bool

(** Human-readable report, one line per diagnostic plus a summary. *)
val render : report -> string

(** JSONL report (schema [elastic-speculation/lint/v1]): a header object
    followed by one object per diagnostic, newline-terminated. *)
val jsonl : design:string -> Netlist.t -> report -> string

(** Apply every machine-applicable fix-it in the report (insert-bubble,
    convert-buffer, set-init; [Note]s are skipped).  Returns the patched
    netlist and the number of fixes applied; a fix whose target has
    become stale is skipped. *)
val apply_fixes : Netlist.t -> report -> Netlist.t * int
