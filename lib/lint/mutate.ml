(* Seeded mutation generator for lint validation.

   Each mutation takes a lint-clean base design and breaks exactly one
   invariant, so the test suite can assert a 1:1 mapping between
   mutations and rule codes: linting the mutated netlist must produce
   exactly the target rule's code and nothing else.  This is the static
   analogue of the fault-injection campaigns in [lib/fault]: instead of
   flipping runtime handshakes we graft structural defects, and instead
   of a recovery check the oracle is the rule registry itself. *)

open Elastic_kernel
open Elastic_netlist
open Elastic_sched

type t = {
  m_code : string;  (** The single rule code the mutation must trigger. *)
  m_name : string;
  m_describe : string;
  m_net : unit -> Netlist.t;
}

let ident = Func.identity ()

let token = Value.Int 7

(* Lint-clean base: src -> f -> eb(1 token) -> sink.  No mux, no shared,
   no cycle, so no info-level findings either — the mutated netlist's
   code set minus the base's is exactly the mutation's code. *)
let base () =
  let net = Netlist.empty in
  let net, s =
    Netlist.add_node ~name:"src" net
      (Netlist.Source (Netlist.Counter { start = 0; step = 1 }))
  in
  let net, f = Netlist.add_node ~name:"f" net (Netlist.Func ident) in
  let net, b =
    Netlist.add_node ~name:"eb" net
      (Netlist.Buffer { buffer = Netlist.Eb; init = [ token ] })
  in
  let net, k =
    Netlist.add_node ~name:"out" net (Netlist.Sink Netlist.Always_ready)
  in
  let net, _ = Netlist.connect net (s, Netlist.Out 0) (f, Netlist.In 0) in
  let net, c_fb = Netlist.connect net (f, Netlist.Out 0) (b, Netlist.In 0) in
  let net, _ = Netlist.connect net (b, Netlist.Out 0) (k, Netlist.In 0) in
  (net, s, f, b, k, c_fb)

let connect_exn net a b =
  let net, _ = Netlist.connect net a b in
  net

(* {1 Structural mutations (E001-E004)} *)

let unconnected_port () =
  let net, _, _, _, _, c_fb = base () in
  (* Severing f -> eb leaves f.Out 0 and eb.In 0 unconnected. *)
  Netlist.remove_channel net c_fb

let multi_connected_port () =
  let net, s, f, _, _, _ = base () in
  (* A second src -> f channel double-uses both endpoints. *)
  let net, _ =
    Netlist.unsafe_connect net (s, Netlist.Out 0) (f, Netlist.In 0)
  in
  net

let dangling_channel () =
  let net, _, _, _, _, _ = base () in
  (* Both endpoints name nodes that do not exist, so no real port is
     double-used and only E003 fires. *)
  let net, _ =
    Netlist.unsafe_connect net (9001, Netlist.Out 0) (9002, Netlist.In 0)
  in
  net

let bad_width () =
  let net, f, b =
    let net, _, f, b, _, c_fb = base () in
    (Netlist.remove_channel net c_fb, f, b)
  in
  let net, _ =
    Netlist.unsafe_connect ~width:0 net (f, Netlist.Out 0)
      (b, Netlist.In 0)
  in
  net

(* {1 Reachability mutations (W005/W006)} *)

let unreachable_island () =
  let net, _, _, _, _, _ = base () in
  (* A self-sustaining token loop with a drain, fed by no source. *)
  let net, eb =
    Netlist.add_node ~name:"island_eb" net
      (Netlist.Buffer { buffer = Netlist.Eb; init = [ token ] })
  in
  let net, fk = Netlist.add_node ~name:"island_fork" net (Netlist.Fork 2) in
  let net, sk =
    Netlist.add_node ~name:"island_out" net
      (Netlist.Sink Netlist.Always_ready)
  in
  let net = connect_exn net (eb, Netlist.Out 0) (fk, Netlist.In 0) in
  let net = connect_exn net (fk, Netlist.Out 0) (eb, Netlist.In 0) in
  connect_exn net (fk, Netlist.Out 1) (sk, Netlist.In 0)

let sinkless_loop () =
  let net, _, _, _, _, _ = base () in
  (* src -> join whose output only feeds the loop back: tokens enter but
     can never reach a sink. *)
  let net, s2 =
    Netlist.add_node ~name:"loop_src" net
      (Netlist.Source (Netlist.Counter { start = 0; step = 1 }))
  in
  let net, j =
    Netlist.add_node ~name:"loop_join" net
      (Netlist.Func (Func.add_int ~arity:2 ()))
  in
  let net, eb =
    Netlist.add_node ~name:"loop_eb" net
      (Netlist.Buffer { buffer = Netlist.Eb; init = [ token ] })
  in
  let net = connect_exn net (s2, Netlist.Out 0) (j, Netlist.In 0) in
  let net = connect_exn net (eb, Netlist.Out 0) (j, Netlist.In 1) in
  connect_exn net (j, Netlist.Out 0) (eb, Netlist.In 0)

(* {1 SELF invariant mutations (E101-E103, W104)} *)

let overfilled_buffer () =
  let net, _, _, b, _, _ = base () in
  Netlist.replace_kind net b
    (Netlist.Buffer
       { buffer = Netlist.Eb; init = [ token; token; token ] })

(* A mux-based loop: sel_src -> m.Sel, s1 -> m.In 0, m.Out -> fork,
   fork.Out 0 -> sink, fork.Out 1 -> g -> [optional eb ->] m.In 1. *)
let mux_loop ~with_eb () =
  let net, _, _, _, _, _ = base () in
  let net, sel =
    Netlist.add_node ~name:"sel_src" net
      (Netlist.Source (Netlist.Counter { start = 0; step = 1 }))
  in
  let net, s1 =
    Netlist.add_node ~name:"in_src" net
      (Netlist.Source (Netlist.Counter { start = 0; step = 1 }))
  in
  let net, m =
    Netlist.add_node ~name:"loop_mux" net
      (Netlist.Mux { ways = 2; early = false })
  in
  let net, fk = Netlist.add_node ~name:"loop_fork" net (Netlist.Fork 2) in
  let net, g = Netlist.add_node ~name:"loop_g" net (Netlist.Func ident) in
  let net, sk =
    Netlist.add_node ~name:"loop_out" net
      (Netlist.Sink Netlist.Always_ready)
  in
  let net = connect_exn net (sel, Netlist.Out 0) (m, Netlist.Sel) in
  let net = connect_exn net (s1, Netlist.Out 0) (m, Netlist.In 0) in
  let net = connect_exn net (m, Netlist.Out 0) (fk, Netlist.In 0) in
  let net = connect_exn net (fk, Netlist.Out 0) (sk, Netlist.In 0) in
  let net = connect_exn net (fk, Netlist.Out 1) (g, Netlist.In 0) in
  if not with_eb then
    connect_exn net (g, Netlist.Out 0) (m, Netlist.In 1)
  else begin
    let net, eb =
      Netlist.add_node ~name:"loop_eb" net
        (Netlist.Buffer { buffer = Netlist.Eb; init = [] })
    in
    let net = connect_exn net (g, Netlist.Out 0) (eb, Netlist.In 0) in
    connect_exn net (eb, Netlist.Out 0) (m, Netlist.In 1)
  end

let comb_cycle () = mux_loop ~with_eb:false ()

let token_free_cycle () = mux_loop ~with_eb:true ()

let antitoken_through_eb () =
  let net, _, _, _, _, _ = base () in
  let net, sel =
    Netlist.add_node ~name:"esel" net
      (Netlist.Source (Netlist.Counter { start = 0; step = 1 }))
  in
  let net, s0 =
    Netlist.add_node ~name:"ea" net
      (Netlist.Source (Netlist.Counter { start = 0; step = 1 }))
  in
  let net, s1 =
    Netlist.add_node ~name:"eb_src" net
      (Netlist.Source (Netlist.Counter { start = 0; step = 1 }))
  in
  let net, slow =
    Netlist.add_node ~name:"slow_eb" net
      (Netlist.Buffer { buffer = Netlist.Eb; init = [] })
  in
  let net, m =
    Netlist.add_node ~name:"emux" net
      (Netlist.Mux { ways = 2; early = true })
  in
  let net, sk =
    Netlist.add_node ~name:"eout" net (Netlist.Sink Netlist.Always_ready)
  in
  let net = connect_exn net (sel, Netlist.Out 0) (m, Netlist.Sel) in
  let net = connect_exn net (s0, Netlist.Out 0) (slow, Netlist.In 0) in
  let net = connect_exn net (slow, Netlist.Out 0) (m, Netlist.In 0) in
  let net = connect_exn net (s1, Netlist.Out 0) (m, Netlist.In 1) in
  connect_exn net (m, Netlist.Out 0) (sk, Netlist.In 0)

(* {1 Speculation mutations (W201, I200-I202)} *)

let external_scheduler () =
  let net, _, _, _, _, _ = base () in
  let net, a =
    Netlist.add_node ~name:"sh_a" net
      (Netlist.Source (Netlist.Counter { start = 0; step = 1 }))
  in
  let net, b =
    Netlist.add_node ~name:"sh_b" net
      (Netlist.Source (Netlist.Counter { start = 0; step = 1 }))
  in
  let net, sh =
    Netlist.add_node ~name:"sh" net
      (Netlist.Shared
         { ways = 2; f = ident; sched = Scheduler.External; hinted = false })
  in
  let net, ka =
    Netlist.add_node ~name:"sh_out_a" net
      (Netlist.Sink Netlist.Always_ready)
  in
  let net, kb =
    Netlist.add_node ~name:"sh_out_b" net
      (Netlist.Sink Netlist.Always_ready)
  in
  let net = connect_exn net (a, Netlist.Out 0) (sh, Netlist.In 0) in
  let net = connect_exn net (b, Netlist.Out 0) (sh, Netlist.In 1) in
  let net = connect_exn net (sh, Netlist.Out 0) (ka, Netlist.In 0) in
  connect_exn net (sh, Netlist.Out 1) (kb, Netlist.In 0)

(* Fig. 1(a)-style loop: the mux select is computed from the mux's own
   token-bearing cycle. *)
let select_on_cycle ~early () =
  let net, _, _, _, _, _ = base () in
  let net, s0 =
    Netlist.add_node ~name:"cyc_in" net
      (Netlist.Source (Netlist.Counter { start = 0; step = 1 }))
  in
  let net, m =
    Netlist.add_node ~name:"cyc_mux" net (Netlist.Mux { ways = 2; early })
  in
  let net, f1 = Netlist.add_node ~name:"cyc_f" net (Netlist.Func ident) in
  let net, eb =
    Netlist.add_node ~name:"cyc_eb" net
      (Netlist.Buffer { buffer = Netlist.Eb; init = [ token ] })
  in
  let net, fk = Netlist.add_node ~name:"cyc_fork" net (Netlist.Fork 3) in
  let net, g = Netlist.add_node ~name:"cyc_g" net (Netlist.Func ident) in
  let net, sk =
    Netlist.add_node ~name:"cyc_out" net (Netlist.Sink Netlist.Always_ready)
  in
  let net = connect_exn net (s0, Netlist.Out 0) (m, Netlist.In 0) in
  let net = connect_exn net (m, Netlist.Out 0) (f1, Netlist.In 0) in
  let net = connect_exn net (f1, Netlist.Out 0) (eb, Netlist.In 0) in
  let net = connect_exn net (eb, Netlist.Out 0) (fk, Netlist.In 0) in
  let net = connect_exn net (fk, Netlist.Out 0) (g, Netlist.In 0) in
  let net = connect_exn net (g, Netlist.Out 0) (m, Netlist.Sel) in
  let net = connect_exn net (fk, Netlist.Out 1) (sk, Netlist.In 0) in
  connect_exn net (fk, Netlist.Out 2) (m, Netlist.In 1)

let shared_arms () =
  let net, _, _, _, _, _ = base () in
  let net, a =
    Netlist.add_node ~name:"arm_a" net
      (Netlist.Source (Netlist.Counter { start = 0; step = 1 }))
  in
  let net, b =
    Netlist.add_node ~name:"arm_b" net
      (Netlist.Source (Netlist.Counter { start = 0; step = 1 }))
  in
  let net, sel =
    Netlist.add_node ~name:"arm_sel" net
      (Netlist.Source (Netlist.Counter { start = 0; step = 1 }))
  in
  let net, sh =
    Netlist.add_node ~name:"arm_sh" net
      (Netlist.Shared
         { ways = 2; f = ident; sched = Scheduler.Sticky; hinted = false })
  in
  let net, m =
    Netlist.add_node ~name:"arm_mux" net
      (Netlist.Mux { ways = 2; early = true })
  in
  let net, sk =
    Netlist.add_node ~name:"arm_out" net (Netlist.Sink Netlist.Always_ready)
  in
  let net = connect_exn net (a, Netlist.Out 0) (sh, Netlist.In 0) in
  let net = connect_exn net (b, Netlist.Out 0) (sh, Netlist.In 1) in
  let net = connect_exn net (sh, Netlist.Out 0) (m, Netlist.In 0) in
  let net = connect_exn net (sh, Netlist.Out 1) (m, Netlist.In 1) in
  let net = connect_exn net (sel, Netlist.Out 0) (m, Netlist.Sel) in
  connect_exn net (m, Netlist.Out 0) (sk, Netlist.In 0)

let catalogue =
  [
    { m_code = "E001"; m_name = "sever-channel";
      m_describe = "remove the f -> eb channel, leaving two open ports";
      m_net = unconnected_port };
    { m_code = "E002"; m_name = "duplicate-channel";
      m_describe = "connect src -> f a second time";
      m_net = multi_connected_port };
    { m_code = "E003"; m_name = "ghost-endpoints";
      m_describe = "add a channel between two nonexistent nodes";
      m_net = dangling_channel };
    { m_code = "E004"; m_name = "zero-width";
      m_describe = "rebuild f -> eb with width 0";
      m_net = bad_width };
    { m_code = "W005"; m_name = "sourceless-island";
      m_describe = "graft a token loop fed by no source";
      m_net = unreachable_island };
    { m_code = "W006"; m_name = "sinkless-loop";
      m_describe = "graft a source feeding a loop that reaches no sink";
      m_net = sinkless_loop };
    { m_code = "E101"; m_name = "overfill-eb";
      m_describe = "give the EB three initial tokens (capacity 2)";
      m_net = overfilled_buffer };
    { m_code = "E102"; m_name = "bufferless-loop";
      m_describe = "graft a mux loop crossing no elastic buffer";
      m_net = comb_cycle };
    { m_code = "E103"; m_name = "token-free-loop";
      m_describe = "graft a mux loop whose only buffer is empty";
      m_net = token_free_cycle };
    { m_code = "W104"; m_name = "slow-recovery-eb";
      m_describe = "feed an early mux input through a plain EB";
      m_net = antitoken_through_eb };
    { m_code = "W201"; m_name = "schedulerless-shared";
      m_describe = "graft a shared module with an External scheduler";
      m_net = external_scheduler };
    { m_code = "I200"; m_name = "critical-select";
      m_describe = "graft a plain mux whose select is on its own cycle";
      m_net = select_on_cycle ~early:false };
    { m_code = "I201"; m_name = "speculative-loop";
      m_describe = "graft an early mux whose select is on its own cycle";
      m_net = select_on_cycle ~early:true };
    { m_code = "I202"; m_name = "shared-speculative-arms";
      m_describe = "graft one shared block feeding both arms of a mux";
      m_net = shared_arms };
  ]

(* Campaign-style seeded sampling (same idiom as lib/fault): a
   deterministic pseudo-random pick of [count] mutations. *)
let random ~seed ~count =
  let st = Random.State.make [| seed; 0x11a7 |] in
  let n = List.length catalogue in
  List.init count (fun _ -> List.nth catalogue (Random.State.int st n))

(* ------------------------------------------------------------------ *)
(* Equivalence-breaking grafts.

   Unlike the catalogue above — self-contained netlists violating one
   lint rule — a graft edits an {e arbitrary} well-formed design into a
   flow-INequivalent variant while keeping it lint-clean enough to
   simulate.  They are the negative controls of the equivalence
   checkers: both the static prover and co-simulation must refuse to
   relate a design to its grafted twin.  [g_apply] returns [None] when
   the design has no applicable site. *)

type graft = {
  g_name : string;
  g_describe : string;
  g_apply : Netlist.t -> Netlist.t option;
}

let find_kind net p =
  List.find_opt (fun (n : Netlist.node) -> p n.Netlist.kind)
    (Netlist.nodes net)

let seed_token net =
  match
    find_kind net (function
      | Netlist.Buffer { buffer; init } ->
        List.length init < Netlist.buffer_capacity buffer
      | _ -> false)
  with
  | Some ({ Netlist.kind = Netlist.Buffer { buffer; init }; _ } as n) ->
    Some
      (Netlist.replace_kind net n.Netlist.id
         (Netlist.Buffer { buffer; init = init @ [ Value.Int 9999 ] }))
  | _ -> None

let drop_token net =
  match
    find_kind net (function
      | Netlist.Buffer { init = _ :: _; _ } -> true
      | _ -> false)
  with
  | Some ({ Netlist.kind = Netlist.Buffer { buffer; init = _ :: rest }; _ }
          as n) ->
    Some
      (Netlist.replace_kind net n.Netlist.id
         (Netlist.Buffer { buffer; init = rest }))
  | _ -> None

let swap_mux_inputs net =
  match
    find_kind net (function Netlist.Mux { ways; _ } -> ways >= 2 | _ -> false)
  with
  | Some m -> (
      let id = m.Netlist.id in
      match
        ( Netlist.channel_at net id (Netlist.In 0),
          Netlist.channel_at net id (Netlist.In 1) )
      with
      | Some c0, Some c1 ->
        let s0 = c0.Netlist.src and s1 = c1.Netlist.src in
        let w0 = c0.Netlist.width and w1 = c1.Netlist.width in
        let net = Netlist.remove_channel net c0.Netlist.ch_id in
        let net = Netlist.remove_channel net c1.Netlist.ch_id in
        let net, _ =
          Netlist.connect ~width:w0 net
            (s0.Netlist.ep_node, s0.Netlist.ep_port) (id, Netlist.In 1)
        in
        let net, _ =
          Netlist.connect ~width:w1 net
            (s1.Netlist.ep_node, s1.Netlist.ep_port) (id, Netlist.In 0)
        in
        Some net
      | _ -> None)
  | None -> None

(* Shape-preserving perturbation of one payload inside a value:
   downstream decoders that destructure tuples (opcode tags, codeword
   pairs) keep working, but the data — and hence the flow — changes.
   Words get a double-bit upset (a single flip, or a +1 on a check
   field, is exactly what SECDED-protected designs correct away, which
   would leave the flows equal); plain integers get +1.  The rightmost
   Word wins over any Int so codeword data is hit before check bits. *)
let rec bump_with target v =
  match target, v with
  | `Word, Value.Word w -> Some (Value.Word (Int64.logxor w 3L))
  | `Int, Value.Int i -> Some (Value.Int (i + 1))
  | _, Value.Tuple vs ->
    let rec go = function
      | [] -> None
      | last :: rev_rest -> (
          match bump_with target last with
          | Some last' -> Some (List.rev_append rev_rest [ last' ])
          | None -> (
              match go rev_rest with
              | Some rest' -> Some (rest' @ [ last ])
              | None -> None))
    in
    Option.map (fun vs -> Value.Tuple vs) (go (List.rev vs))
  | _ -> None

let bump_value v =
  match bump_with `Word v with
  | Some v' -> Some v'
  | None -> bump_with `Int v

let tweak_stream net =
  match
    find_kind net (function Netlist.Source _ -> true | _ -> false)
  with
  | Some ({ Netlist.kind = Netlist.Source s; _ } as n) -> (
      let retarget spec =
        Some (Netlist.replace_kind net n.Netlist.id (Netlist.Source spec))
      in
      match s with
      | Netlist.Counter { start; step } ->
        retarget (Netlist.Counter { start = start + 1; step })
      | Netlist.Stream (v :: rest) -> (
          match bump_value v with
          | Some v' -> retarget (Netlist.Stream (v' :: rest))
          | None -> None)
      | Netlist.Nondet (v :: rest) -> (
          match bump_value v with
          | Some v' -> retarget (Netlist.Nondet (v' :: rest))
          | None -> None)
      | Netlist.Stream [] | Netlist.Nondet []
      | Netlist.Random_rate _ -> None)
  | _ -> None

let grafts =
  [ { g_name = "seed-token";
      g_describe = "add a spurious token to a buffer with spare capacity";
      g_apply = seed_token };
    { g_name = "drop-token";
      g_describe = "steal the oldest token from an occupied buffer";
      g_apply = drop_token };
    { g_name = "swap-mux-inputs";
      g_describe = "cross the first two data inputs of a multiplexor";
      g_apply = swap_mux_inputs };
    { g_name = "tweak-stream";
      g_describe = "perturb the first value a source will offer";
      g_apply = tweak_stream } ]
