open Elastic_kernel
open Elastic_netlist

type rule = {
  code : string;
  slug : string;
  severity : Diagnostic.severity;
  what : string;
  paper : string;
  check : Netlist.t -> Diagnostic.t list;
}

let structural_codes = [ "E001"; "E002"; "E003"; "E004" ]

let structural code slug what =
  {
    code;
    slug;
    severity = Diagnostic.Error;
    what;
    paper = "§3";
    check =
      (fun net ->
         List.filter
           (fun (d : Diagnostic.t) -> d.Diagnostic.code = code)
           (Netlist.diagnostics net));
  }

let registry =
  [
    structural "E001" "unconnected-port"
      "every required port of every node is connected";
    structural "E002" "multi-connected-port"
      "no port is connected more than once";
    structural "E003" "dangling-channel"
      "every channel endpoint names an existing node";
    structural "E004" "bad-width" "every channel has a positive width";
    {
      code = "W005";
      slug = "unreachable-from-source";
      severity = Diagnostic.Warning;
      what = "every node is fed (transitively) by a token source";
      paper = "§3";
      check = Rules.unreachable_from_source;
    };
    {
      code = "W006";
      slug = "cannot-reach-sink";
      severity = Diagnostic.Warning;
      what = "every node's tokens can reach a sink";
      paper = "§3";
      check = Rules.cannot_reach_sink;
    };
    {
      code = "E101";
      slug = "buffer-overfilled";
      severity = Diagnostic.Error;
      what = "initial tokens fit the buffer capacity C = Lf + Lb";
      paper = "§3, Fig. 2/5";
      check = Rules.buffer_overfilled;
    };
    {
      code = "E102";
      slug = "comb-cycle";
      severity = Diagnostic.Error;
      what = "every cycle is broken by an EB in both directions";
      paper = "§3, Fig. 5";
      check = Rules.combinational_cycle;
    };
    {
      code = "E103";
      slug = "token-free-cycle";
      severity = Diagnostic.Error;
      what = "every cycle carries a token (liveness of the marked graph)";
      paper = "§3";
      check = Rules.token_free_cycle;
    };
    {
      code = "W104";
      slug = "antitoken-through-eb";
      severity = Diagnostic.Warning;
      what = "anti-tokens into early-mux inputs return through eb0s";
      paper = "§4.1/§4.3, Fig. 5";
      check = Rules.antitoken_through_eb;
    };
    {
      code = "W201";
      slug = "no-scheduler";
      severity = Diagnostic.Warning;
      what = "every speculation controller has a scheduler attached";
      paper = "§4.2";
      check = Rules.external_scheduler;
    };
    {
      code = "I200";
      slug = "speculation-candidate";
      severity = Diagnostic.Info;
      what = "mux select computed on the cycle the mux feeds";
      paper = "§4, Fig. 1";
      check =
        (fun net ->
           List.filter
             (fun (d : Diagnostic.t) -> d.Diagnostic.code = "I200")
             (Rules.mux_on_critical_cycle net));
    };
    {
      code = "I201";
      slug = "speculative-select";
      severity = Diagnostic.Info;
      what = "early-evaluation mux select fed from its critical cycle";
      paper = "§4.1, Fig. 1";
      check =
        (fun net ->
           List.filter
             (fun (d : Diagnostic.t) -> d.Diagnostic.code = "I201")
             (Rules.mux_on_critical_cycle net));
    };
    {
      code = "I202";
      slug = "shared-arms";
      severity = Diagnostic.Info;
      what = "shared block feeding several speculative arms of one mux";
      paper = "§4.2, Fig. 4";
      check = Rules.shared_arms;
    };
  ]

let find_rule key =
  let k = String.lowercase_ascii key in
  List.find_opt
    (fun r -> String.lowercase_ascii r.code = k || r.slug = k)
    registry

type report = {
  diags : Diagnostic.t list;
  rules_run : int;
  gated : bool;
}

let severity_rank = function
  | Diagnostic.Error -> 0
  | Diagnostic.Warning -> 1
  | Diagnostic.Info -> 2

let run ?(only = []) ?(disable = []) net =
  let mem keys r =
    List.exists
      (fun k ->
         let k = String.lowercase_ascii k in
         String.lowercase_ascii r.code = k || r.slug = k)
      keys
  in
  let enabled r = (only = [] || mem only r) && not (mem disable r) in
  (* Graph rules assume a structurally sound netlist; gate on the real
     structural state, not just the enabled subset. *)
  let gate = Netlist.diagnostics net <> [] in
  let ran = ref 0 in
  let diags =
    List.concat_map
      (fun r ->
         if not (enabled r) then []
         else if gate && not (List.mem r.code structural_codes) then []
         else begin
           incr ran;
           r.check net
         end)
      registry
  in
  let diags =
    List.stable_sort
      (fun (a : Diagnostic.t) (b : Diagnostic.t) ->
         compare
           (severity_rank a.Diagnostic.severity)
           (severity_rank b.Diagnostic.severity))
      diags
  in
  { diags; rules_run = !ran; gated = gate }

let by_severity s report =
  List.filter
    (fun (d : Diagnostic.t) -> d.Diagnostic.severity = s)
    report.diags

let errors = by_severity Diagnostic.Error

let warnings = by_severity Diagnostic.Warning

let infos = by_severity Diagnostic.Info

let clean report = errors report = []

let render report =
  let summary =
    Fmt.str "lint: %d error(s), %d warning(s), %d info(s) from %d rule(s)%s"
      (List.length (errors report))
      (List.length (warnings report))
      (List.length (infos report))
      report.rules_run
      (if report.gated then
         " — graph rules skipped until structural errors are fixed"
       else "")
  in
  match report.diags with
  | [] -> Fmt.str "lint: clean (%d rule(s))" report.rules_run
  | diags ->
    String.concat "\n"
      (List.map (fun d -> "  " ^ Diagnostic.to_string d) diags
       @ [ summary ])

(* {1 JSONL export (schema elastic-speculation/lint/v1)} *)

let json_of_fixit : Diagnostic.fixit -> Elastic_metrics.Json.t = function
  | Diagnostic.Insert_bubble { channel } ->
    Obj [ ("kind", Str "insert-bubble"); ("channel", Int channel) ]
  | Diagnostic.Convert_buffer { node; buffer } ->
    Obj
      [ ("kind", Str "convert-buffer"); ("node", Int node);
        ("buffer", Str buffer) ]
  | Diagnostic.Set_init { node; tokens } ->
    Obj [ ("kind", Str "set-init"); ("node", Int node);
          ("tokens", Int tokens) ]
  | Diagnostic.Note note -> Obj [ ("kind", Str "note"); ("note", Str note) ]

let json_of_diag (d : Diagnostic.t) : Elastic_metrics.Json.t =
  let opt name f = function Some v -> [ (name, f v) ] | None -> [] in
  Obj
    ([ ("code", Elastic_metrics.Json.Str d.Diagnostic.code);
       ("rule", Str d.Diagnostic.rule);
       ("severity", Str (Diagnostic.severity_name d.Diagnostic.severity)) ]
     @ opt "node" (fun n -> Elastic_metrics.Json.Int n) d.Diagnostic.node
     @ opt "node_name" (fun s -> Elastic_metrics.Json.Str s)
         d.Diagnostic.node_name
     @ opt "channel" (fun n -> Elastic_metrics.Json.Int n)
         d.Diagnostic.channel
     @ opt "channel_name" (fun s -> Elastic_metrics.Json.Str s)
         d.Diagnostic.channel_name
     @ [ ("message", Elastic_metrics.Json.Str d.Diagnostic.message) ]
     @ opt "fixit" json_of_fixit d.Diagnostic.fixit)

let jsonl ~design net report =
  let header : Elastic_metrics.Json.t =
    Obj
      [ ("schema", Str "elastic-speculation/lint/v1");
        ("design", Str design);
        ("nodes", Int (Netlist.node_count net));
        ("channels", Int (Netlist.channel_count net));
        ("rules_run", Int report.rules_run);
        ("gated", Bool report.gated);
        ("errors", Int (List.length (errors report)));
        ("warnings", Int (List.length (warnings report)));
        ("infos", Int (List.length (infos report))) ]
  in
  String.concat ""
    (List.map
       (fun j -> Elastic_metrics.Json.to_string j ^ "\n")
       (header :: List.map json_of_diag report.diags))

(* {1 Fix-it application} *)

(* Reimplemented on the raw netlist API (lint cannot depend on
   [Elastic_core.Transform] — Transform consults [Precheck]). *)
let insert_bubble net channel =
  let c = Netlist.channel net channel in
  let net, b = Netlist.add_node net (Netlist.Buffer { buffer = Netlist.Eb; init = [] }) in
  let old_dst = c.Netlist.dst in
  let net = Netlist.set_dst net channel (b, Netlist.In 0) in
  let net, _ =
    Netlist.connect ~width:c.Netlist.width net (b, Netlist.Out 0)
      (old_dst.Netlist.ep_node, old_dst.Netlist.ep_port)
  in
  net

let apply_one net : Diagnostic.fixit -> Netlist.t option = function
  | Diagnostic.Note _ -> None
  | Diagnostic.Insert_bubble { channel } ->
    Some (insert_bubble net channel)
  | Diagnostic.Convert_buffer { node; buffer } -> (
      let kind =
        match buffer with
        | "eb" -> Some Netlist.Eb
        | "eb0" -> Some Netlist.Eb0
        | _ -> None
      in
      match (kind, (Netlist.node net node).Netlist.kind) with
      | Some k, Netlist.Buffer { init; _ }
        when List.length init <= Netlist.buffer_capacity k ->
        Some (Netlist.replace_kind net node (Netlist.Buffer { buffer = k; init }))
      | _ -> None)
  | Diagnostic.Set_init { node; tokens } -> (
      match (Netlist.node net node).Netlist.kind with
      | Netlist.Buffer { buffer; _ }
        when tokens <= Netlist.buffer_capacity buffer ->
        Some
          (Netlist.replace_kind net node
             (Netlist.Buffer
                { buffer; init = List.init tokens (fun _ -> Value.Int 0) }))
      | _ -> None)

let apply_fixes net report =
  List.fold_left
    (fun (net, k) (d : Diagnostic.t) ->
       match d.Diagnostic.fixit with
       | None -> (net, k)
       | Some fixit -> (
           match apply_one net fixit with
           | Some net' -> (net', k + 1)
           | None | (exception Invalid_argument _) -> (net, k)))
    (net, 0) report.diags
