(** Low-overhead metrics registry: named counters, gauges and
    log-bucketed histograms.

    Instruments are registered once (by name + label set, Prometheus
    style) and then updated from hot paths: {!Counter.inc},
    {!Gauge.set} and [Histogram.observe] are plain mutable-field /
    array-cell writes that allocate nothing — guarded by a GC test, so
    instrumentation can stay inline in the simulator's per-cycle code.

    {!snapshot} freezes every instrument into an immutable, mergeable
    sample list; exporters ({!Prometheus}, the sampler's JSONL series)
    and the bench regression gate all consume snapshots. *)

module Counter : sig
  (** Monotonically increasing integer. *)
  type t

  val inc : t -> unit

  (** @raise Invalid_argument on negative increments. *)
  val add : t -> int -> unit

  val value : t -> int
end

module Gauge : sig
  (** Instantaneous float value (occupancy, accuracy, rate). *)
  type t

  val set : t -> float -> unit

  val value : t -> float
end

(** The registry. *)
type t

val create : unit -> t

(** [counter t name] registers (or retrieves, when the same [name] +
    [labels] pair was registered before) a counter.  Names must match
    Prometheus conventions: [[a-zA-Z_:][a-zA-Z0-9_:]*].
    @raise Invalid_argument on a malformed name, or when [name] +
    [labels] is already registered as a different instrument kind. *)
val counter :
  t -> ?help:string -> ?labels:(string * string) list -> string -> Counter.t

val gauge :
  t -> ?help:string -> ?labels:(string * string) list -> string -> Gauge.t

val histogram :
  t -> ?help:string -> ?labels:(string * string) list -> string ->
  Histogram.t

(** {1 Snapshots} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of Histogram.snapshot

type sample = {
  m_name : string;
  m_help : string;
  m_labels : (string * string) list;
  m_value : value;
}

(** Immutable samples in registration order (stable across snapshots of
    the same registry). *)
val snapshot : t -> sample list

(** Merge two snapshots (e.g. from shards of a partitioned run):
    counters add, histograms merge, gauges keep the right-hand value;
    samples present on one side only pass through.  The result keeps
    the left operand's order with right-only samples appended. *)
val merge : sample list -> sample list -> sample list

(** Find a sample by name (and labels, default []). *)
val find :
  ?labels:(string * string) list -> sample list -> string -> value option

(** {1 Checkpoint serialization}

    Exact JSON images of samples, used by the runner's checkpoint files.
    Counters and histogram snapshots round-trip bit-for-bit by
    construction; gauges carry the exact bit pattern in a hex-float
    side-channel (the shared emitter prints decimals at 6 significant
    digits, which would silently perturb resumed values).  A snapshot
    rebuilt through [samples_of_json] is structurally equal ([=]) to the
    original, so merged results after a resume stay byte-identical. *)

val sample_to_json : sample -> Json.t

val sample_of_json : Json.t -> (sample, string) result

val samples_to_json : sample list -> Json.t

(** Rejects malformed input with a message naming the offending sample
    index instead of raising. *)
val samples_of_json : Json.t -> (sample list, string) result

(** [valid_name s] — exposed for exporters and tests. *)
val valid_name : string -> bool
