(** Log-bucketed histogram over non-negative integers.

    Built for hot-path instrumentation of cycle counts, penalties and
    latencies: {!observe} touches one array cell and four scalar fields
    and allocates nothing.  The bucket layout is fixed for every
    histogram — values 0..15 get exact unit buckets, larger values fall
    into octaves of 8 geometric sub-buckets (relative error <= 12.5%) —
    so any two snapshots merge exactly and merging is associative and
    commutative (plain element-wise sums).

    Quantiles are estimated from the bucket counts: the reported value
    is the upper bound of the bucket containing the requested rank,
    which makes [quantile] exact for values below 16 (the interesting
    range for replay penalties and settle passes) and monotone in the
    requested rank always. *)

type t

val create : unit -> t

(** Record one observation.  Negative values clamp to 0; values beyond
    the last bucket bound saturate into it. *)
val observe : t -> int -> unit

val count : t -> int

val sum : t -> int

(** Smallest / largest observation so far; 0 when empty. *)
val min_value : t -> int

val max_value : t -> int

val mean : t -> float

(** [quantile t q] for [q] in [0, 1]; 0 when empty.
    @raise Invalid_argument outside [0, 1]. *)
val quantile : t -> float -> int

(** Forget all observations. *)
val reset : t -> unit

(** {1 Mergeable snapshots} *)

(** An immutable copy of the histogram state — unaffected by later
    {!observe} or {!reset} on the source. *)
type snapshot

val snapshot : t -> snapshot

val empty : snapshot

(** Element-wise sum; associative and commutative, [empty] is the
    identity.  Structural equality ([=]) on snapshots is semantic
    equality. *)
val merge : snapshot -> snapshot -> snapshot

val s_count : snapshot -> int

val s_sum : snapshot -> int

val s_min : snapshot -> int

val s_max : snapshot -> int

val s_mean : snapshot -> float

val s_quantile : snapshot -> float -> int

(** Cumulative buckets for exporters: [(upper_bound, cumulative_count)]
    pairs, ascending, restricted to buckets whose cumulative count
    increased (plus the final bucket when non-empty); Prometheus adds
    the implicit [+Inf] bucket from {!s_count}. *)
val s_buckets : snapshot -> (int * int) list

(** Exact JSON image of a snapshot (sparse bucket list), used by the
    runner's checkpoint files; {!s_of_json} inverts it bit-for-bit, so
    snapshots survive a checkpoint/resume round trip with semantic
    equality ([=]) intact. *)
val s_to_json : snapshot -> Json.t

(** Rejects malformed input (bad bucket indices, counts that do not sum
    to [count]) with a message instead of producing a corrupt state. *)
val s_of_json : Json.t -> (snapshot, string) result

val pp : Format.formatter -> t -> unit
