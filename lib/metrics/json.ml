type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | '\r' -> Buffer.add_string b "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_string ?(indent = 0) t =
  let b = Buffer.create 1024 in
  let pad n = Buffer.add_string b (String.make n ' ') in
  let rec emit ~level t =
    match t with
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
      if Float.is_finite f then
        Buffer.add_string b (Printf.sprintf "%.6g" f)
      else Buffer.add_string b "null"
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List items ->
      if indent = 0 then begin
        Buffer.add_char b '[';
        List.iteri
          (fun i item ->
             if i > 0 then Buffer.add_char b ',';
             emit ~level item)
          items;
        Buffer.add_char b ']'
      end
      else begin
        Buffer.add_string b "[\n";
        List.iteri
          (fun i item ->
             if i > 0 then Buffer.add_string b ",\n";
             pad (level + indent);
             emit ~level:(level + indent) item)
          items;
        Buffer.add_char b '\n';
        pad level;
        Buffer.add_char b ']'
      end
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      let field ~level (k, v) =
        Buffer.add_char b '"';
        Buffer.add_string b (escape k);
        Buffer.add_string b (if indent = 0 then "\":" else "\": ");
        emit ~level v
      in
      if indent = 0 then begin
        Buffer.add_char b '{';
        List.iteri
          (fun i kv ->
             if i > 0 then Buffer.add_char b ',';
             field ~level kv)
          fields;
        Buffer.add_char b '}'
      end
      else begin
        Buffer.add_string b "{\n";
        List.iteri
          (fun i kv ->
             if i > 0 then Buffer.add_string b ",\n";
             pad (level + indent);
             field ~level:(level + indent) kv)
          fields;
        Buffer.add_char b '\n';
        pad level;
        Buffer.add_char b '}'
      end
  in
  emit ~level:0 t;
  Buffer.contents b

exception Parse_error of string

(* Corrupt input (a truncated checkpoint, a garbage baseline) must come
   back as [Error] with a byte position, never as an exception — and
   never as a [Stack_overflow], hence the nesting cap: our own emitters
   produce depth <= 6, so 1000 is pure paranoia headroom. *)
let max_depth = 1000

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Fmt.str "at offset %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Fmt.str "expected %C, found %C" c c')
    | None -> fail (Fmt.str "expected %C, found end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.equal (String.sub s !pos l) word then begin
      pos := !pos + l;
      value
    end
    else fail (Fmt.str "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char b '"'; advance ()
         | Some '\\' -> Buffer.add_char b '\\'; advance ()
         | Some '/' -> Buffer.add_char b '/'; advance ()
         | Some 'n' -> Buffer.add_char b '\n'; advance ()
         | Some 't' -> Buffer.add_char b '\t'; advance ()
         | Some 'r' -> Buffer.add_char b '\r'; advance ()
         | Some 'b' -> Buffer.add_char b '\b'; advance ()
         | Some 'f' -> Buffer.add_char b '\012'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           let code =
             try int_of_string ("0x" ^ hex)
             with Failure _ -> fail "invalid \\u escape"
           in
           pos := !pos + 4;
           (* Basic-plane code points only; enough for our own output. *)
           if code < 0x80 then Buffer.add_char b (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char b
               (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
         | _ -> fail "invalid escape");
        go ()
      | Some c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' -> true
      | '.' | 'e' | 'E' ->
        is_float := true;
        true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Fmt.str "invalid number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail (Fmt.str "invalid number %S" text))
  in
  let rec parse_value ~depth () =
    if depth > max_depth then fail "nesting deeper than 1000 levels";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value ~depth:(depth + 1) () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value ~depth:(depth + 1) () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value ~depth:(depth + 1) () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value ~depth:0 () in
    skip_ws ();
    if !pos <> n then Error (Fmt.str "trailing content at offset %d" !pos)
    else Ok v
  with
  | Parse_error msg -> Error msg
  | Failure msg | Invalid_argument msg ->
    (* Integrity backstop: no path above is expected to raise, but a
       parser must never let corrupt input escape as an exception. *)
    Error (Fmt.str "at offset %d: %s" !pos msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Null | Bool _ | Str _ | List _ | Obj _ -> None
