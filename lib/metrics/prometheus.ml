let escape_label s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       match c with
       | '\\' -> Buffer.add_string b "\\\\"
       | '"' -> Buffer.add_string b "\\\""
       | '\n' -> Buffer.add_string b "\\n"
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       match c with
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let labels_text = function
  | [] -> ""
  | labels ->
    Fmt.str "{%s}"
      (String.concat ","
         (List.map
            (fun (k, v) -> Fmt.str "%s=\"%s\"" k (escape_label v))
            labels))

let float_text f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Fmt.str "%.0f" f
  else Fmt.str "%.9g" f

let kind_text (s : Metrics.sample) =
  match s.Metrics.m_value with
  | Metrics.Counter _ -> "counter"
  | Metrics.Gauge _ -> "gauge"
  | Metrics.Histogram _ -> "histogram"

let render samples =
  (* The exposition format requires every series of a family to form
     one contiguous block; a registry can interleave families (a
     labeled child registered after some other family appeared), so
     group by family first, in first-appearance order. *)
  let order = Hashtbl.create 16 in
  let next = ref 0 in
  List.iter
    (fun (s : Metrics.sample) ->
       if not (Hashtbl.mem order s.Metrics.m_name) then begin
         Hashtbl.replace order s.Metrics.m_name !next;
         incr next
       end)
    samples;
  let samples =
    List.stable_sort
      (fun (a : Metrics.sample) (b : Metrics.sample) ->
         compare
           (Hashtbl.find order a.Metrics.m_name)
           (Hashtbl.find order b.Metrics.m_name))
      samples
  in
  let b = Buffer.create 4096 in
  let seen_header = Hashtbl.create 16 in
  List.iter
    (fun (s : Metrics.sample) ->
       let name = s.Metrics.m_name in
       if not (Hashtbl.mem seen_header name) then begin
         Hashtbl.replace seen_header name ();
         if s.Metrics.m_help <> "" then
           Buffer.add_string b
             (Fmt.str "# HELP %s %s\n" name (escape_help s.Metrics.m_help));
         Buffer.add_string b
           (Fmt.str "# TYPE %s %s\n" name (kind_text s))
       end;
       let lbl = labels_text s.Metrics.m_labels in
       match s.Metrics.m_value with
       | Metrics.Counter v ->
         Buffer.add_string b (Fmt.str "%s%s %d\n" name lbl v)
       | Metrics.Gauge v ->
         Buffer.add_string b (Fmt.str "%s%s %s\n" name lbl (float_text v))
       | Metrics.Histogram h ->
         let with_le le =
           labels_text (s.Metrics.m_labels @ [ ("le", le) ])
         in
         List.iter
           (fun (upper, cum) ->
              Buffer.add_string b
                (Fmt.str "%s_bucket%s %d\n" name
                   (with_le (string_of_int upper))
                   cum))
           (Histogram.s_buckets h);
         Buffer.add_string b
           (Fmt.str "%s_bucket%s %d\n" name (with_le "+Inf")
              (Histogram.s_count h));
         Buffer.add_string b
           (Fmt.str "%s_sum%s %d\n" name lbl (Histogram.s_sum h));
         Buffer.add_string b
           (Fmt.str "%s_count%s %d\n" name lbl (Histogram.s_count h)))
    samples;
  Buffer.contents b
