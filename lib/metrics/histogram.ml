(* Fixed layout: exact unit buckets for 0..15, then octaves of 8
   geometric sub-buckets.  Octave [o] (values in [2^o, 2^(o+1))) splits
   at multiples of 2^(o-3), so the relative width of any bucket is at
   most 1/8.  63-bit ints top out in octave 61, whose last bucket ends
   exactly at [max_int]. *)

let first_octave = 4

let last_octave = 61

let n_buckets = 16 + ((last_octave - first_octave + 1) * 8)

let bucket_of v =
  if v < 16 then if v < 0 then 0 else v
  else begin
    let oct = ref 0 in
    let x = ref v in
    while !x > 1 do
      x := !x lsr 1;
      incr oct
    done;
    let idx =
      16 + ((!oct - first_octave) * 8) + ((v lsr (!oct - 3)) land 7)
    in
    if idx >= n_buckets then n_buckets - 1 else idx
  end

let bucket_upper idx =
  if idx < 16 then idx
  else
    let oct = first_octave + ((idx - 16) / 8) in
    let sub = (idx - 16) mod 8 in
    let step = 1 lsl (oct - 3) in
    (1 lsl oct) + ((sub + 1) * step) - 1

type t = {
  counts : int array;
  mutable count : int;
  mutable sum : int;
  mutable min : int;  (* max_int when empty *)
  mutable max : int;  (* -1 when empty *)
}

let create () =
  { counts = Array.make n_buckets 0;
    count = 0;
    sum = 0;
    min = max_int;
    max = -1 }

let observe t v =
  let v = if v < 0 then 0 else v in
  let i = bucket_of v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min then t.min <- v;
  if v > t.max then t.max <- v

let count t = t.count

let sum t = t.sum

let min_value t = if t.count = 0 then 0 else t.min

let max_value t = if t.count = 0 then 0 else t.max

let mean t =
  if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

let quantile_of ~counts ~count q =
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q outside [0, 1]";
  if count = 0 then 0
  else begin
    let target = int_of_float (Float.ceil (q *. float_of_int count)) in
    let target = if target < 1 then 1 else target in
    let cum = ref 0 in
    let idx = ref 0 in
    (try
       for i = 0 to n_buckets - 1 do
         cum := !cum + counts.(i);
         if !cum >= target then begin
           idx := i;
           raise Exit
         end
       done
     with Exit -> ());
    bucket_upper !idx
  end

let quantile t q = quantile_of ~counts:t.counts ~count:t.count q

let reset t =
  Array.fill t.counts 0 n_buckets 0;
  t.count <- 0;
  t.sum <- 0;
  t.min <- max_int;
  t.max <- -1

type snapshot = {
  s_counts : int array;
  sn_count : int;
  sn_sum : int;
  sn_min : int;
  sn_max : int;
}

let snapshot t =
  { s_counts = Array.copy t.counts;
    sn_count = t.count;
    sn_sum = t.sum;
    sn_min = t.min;
    sn_max = t.max }

let empty =
  { s_counts = Array.make n_buckets 0;
    sn_count = 0;
    sn_sum = 0;
    sn_min = max_int;
    sn_max = -1 }

let merge a b =
  { s_counts = Array.init n_buckets (fun i -> a.s_counts.(i) + b.s_counts.(i));
    sn_count = a.sn_count + b.sn_count;
    sn_sum = a.sn_sum + b.sn_sum;
    sn_min = min a.sn_min b.sn_min;
    sn_max = max a.sn_max b.sn_max }

let s_count s = s.sn_count

let s_sum s = s.sn_sum

let s_min s = if s.sn_count = 0 then 0 else s.sn_min

let s_max s = if s.sn_count = 0 then 0 else s.sn_max

let s_mean s =
  if s.sn_count = 0 then 0.0
  else float_of_int s.sn_sum /. float_of_int s.sn_count

let s_quantile s q = quantile_of ~counts:s.s_counts ~count:s.sn_count q

let s_buckets s =
  let acc = ref [] in
  let cum = ref 0 in
  for i = 0 to n_buckets - 1 do
    if s.s_counts.(i) > 0 then begin
      cum := !cum + s.s_counts.(i);
      acc := (bucket_upper i, !cum) :: !acc
    end
  done;
  List.rev !acc

(* Exact snapshot serialization for the runner's checkpoint files: the
   sparse bucket list plus the scalar fields reproduce the snapshot
   bit-for-bit (the empty sentinels min=max_int / max=-1 are carried by
   returning [empty] for a zero count), so a merged snapshot rebuilt
   from a checkpoint renders byte-identically. *)
let s_to_json s =
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    if s.s_counts.(i) > 0 then
      buckets :=
        Json.List [ Json.Int i; Json.Int s.s_counts.(i) ] :: !buckets
  done;
  Json.Obj
    [ ("count", Json.Int s.sn_count);
      ("sum", Json.Int s.sn_sum);
      ("min", Json.Int (if s.sn_count = 0 then 0 else s.sn_min));
      ("max", Json.Int (if s.sn_count = 0 then 0 else s.sn_max));
      ("buckets", Json.List !buckets) ]

let s_of_json j =
  let ( let* ) = Result.bind in
  let int_field name =
    match Json.member name j with
    | Some (Json.Int i) -> Ok i
    | Some _ -> Error (Fmt.str "histogram field %S is not an int" name)
    | None -> Error (Fmt.str "histogram field %S missing" name)
  in
  let* count = int_field "count" in
  if count = 0 then Ok empty
  else
    let* sum = int_field "sum" in
    let* mn = int_field "min" in
    let* mx = int_field "max" in
    let* counts =
      match Json.member "buckets" j with
      | Some (Json.List items) ->
        let counts = Array.make n_buckets 0 in
        let rec fill = function
          | [] -> Ok counts
          | Json.List [ Json.Int i; Json.Int c ] :: rest ->
            if i < 0 || i >= n_buckets then
              Error (Fmt.str "histogram bucket index %d out of range" i)
            else if c < 0 then
              Error (Fmt.str "negative histogram bucket count %d" c)
            else begin
              counts.(i) <- c;
              fill rest
            end
          | _ -> Error "histogram bucket is not an [index, count] pair"
        in
        fill items
      | Some _ -> Error "histogram field \"buckets\" is not a list"
      | None -> Error "histogram field \"buckets\" missing"
    in
    let total = Array.fold_left ( + ) 0 counts in
    if total <> count then
      Error
        (Fmt.str "histogram bucket counts sum to %d, count says %d" total
           count)
    else
      Ok { s_counts = counts; sn_count = count; sn_sum = sum; sn_min = mn;
           sn_max = mx }

let pp ppf t =
  if t.count = 0 then Fmt.pf ppf "empty"
  else
    Fmt.pf ppf "n=%d mean=%.2f min=%d p50=%d p90=%d p99=%d max=%d" t.count
      (mean t) (min_value t) (quantile t 0.5) (quantile t 0.9)
      (quantile t 0.99) (max_value t)
