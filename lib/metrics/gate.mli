(** Baseline comparison for the bench regression gate.

    [bench --check] regenerates the trajectory records and diffs them
    against the committed copies under [bench/baselines/].  The
    simulation is deterministic, so the rules are strict: integers,
    booleans and strings must match exactly, floats within a relative
    tolerance (they round-trip through the 6-significant-digit JSON
    emitter), and a path present on one side only is a failure in
    either direction.  Wall-clock-dependent keys
    ([settle_us_per_cycle], [*_seconds], [*_per_second], [*_speedup],
    [*_utilization], [*_overhead])
    are skipped by default — they measure the machine, not the
    design. *)

type diff = {
  d_path : string;  (** e.g. [points[2].spec_throughput] *)
  d_reason : string;  (** baseline/current values and the delta *)
}

val pp_diff : Format.formatter -> diff -> unit

(** Default [skip] predicate: true on wall-clock-dependent leaf keys. *)
val wall_clock_key : string -> bool

(** [compare ~baseline ~current ()] — [[]] means the gate passes.
    @param rel_tol float tolerance, relative to the larger magnitude
    (absolute below 1.0); default [1e-4].
    @param skip paths to exclude; default {!wall_clock_key}. *)
val compare :
  ?rel_tol:float ->
  ?skip:(string -> bool) ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  diff list
