(** Minimal JSON tree, emitter and recursive-descent parser.

    The container image has no JSON library; the bench harness has
    hand-rolled an {e emitter} since PR 2, but the regression gate
    ([bench --check]) and the metrics JSONL tests also need to {e read}
    records back.  This module is the shared round-trip: the emitted
    grammar (and the subset parsed) is exactly RFC 8259 minus exotic
    number forms — ints, floats, strings with the usual escapes, bools,
    null, arrays, objects. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string

(** Parse a complete JSON document (trailing whitespace allowed).
    Numbers without [.], [e] or [E] parse as [Int].  Never raises:
    truncated or corrupt input — including pathological nesting —
    returns [Error] naming the byte offset of the failure, so consumers
    (the bench gate, the runner's checkpoint loader) can render a clear
    message instead of dying on an exception. *)
val parse : string -> (t, string) result

(** [member key j] — field of an object, [None] otherwise. *)
val member : string -> t -> t option

(** Numeric coercion: [Int] or [Float] as float. *)
val to_float : t -> float option
