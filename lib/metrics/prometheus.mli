(** Prometheus text-exposition rendering of a {!Metrics.snapshot}.

    One [# HELP] / [# TYPE] block per metric name (samples that differ
    only in labels share it), counters and gauges as single samples,
    histograms as cumulative [_bucket{le="..."}] series (sparse — only
    buckets that received observations — plus the mandatory [+Inf]),
    [_sum] and [_count].  Naming conventions (enforced upstream by
    {!Metrics.valid_name} and followed by the {!Sampler}):
    [elastic_<layer>_<what>_<unit-or-total>], e.g.
    [elastic_channel_transfers_total]. *)

val render : Metrics.sample list -> string
