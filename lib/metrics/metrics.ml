module Counter = struct
  type t = { mutable c : int }

  let inc t = t.c <- t.c + 1

  let add t n =
    if n < 0 then invalid_arg "Counter.add: negative increment";
    t.c <- t.c + n

  let value t = t.c
end

module Gauge = struct
  (* Single-float record: unboxed, so [set] does not allocate. *)
  type t = { mutable g : float }

  let set t v = t.g <- v

  let value t = t.g
end

type instrument =
  | I_counter of Counter.t
  | I_gauge of Gauge.t
  | I_histogram of Histogram.t

type registered = {
  r_name : string;
  r_help : string;
  r_labels : (string * string) list;
  r_inst : instrument;
}

type t = {
  mutable regs : registered list;  (* reverse registration order *)
  index : (string * (string * string) list, registered) Hashtbl.t;
}

let create () = { regs = []; index = Hashtbl.create 64 }

let valid_name s =
  let ok_first c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  in
  let ok c = ok_first c || (c >= '0' && c <= '9') in
  String.length s > 0
  && ok_first s.[0]
  && String.for_all ok s

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let kind_name = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_histogram _ -> "histogram"

let register t ~help ~labels name ~kind make =
  if not (valid_name name) then
    invalid_arg (Fmt.str "Metrics: invalid metric name %S" name);
  List.iter
    (fun (k, _) ->
       if not (valid_name k) then
         invalid_arg (Fmt.str "Metrics: invalid label name %S" k))
    labels;
  let labels = normalize_labels labels in
  let key = (name, labels) in
  match Hashtbl.find_opt t.index key with
  | Some r ->
    if not (String.equal (kind_name r.r_inst) kind) then
      invalid_arg
        (Fmt.str "Metrics: %S already registered as a %s" name
           (kind_name r.r_inst));
    r.r_inst
  | None ->
    (* A name must keep one kind across label sets (Prometheus rule). *)
    (match
       List.find_opt (fun r -> String.equal r.r_name name) t.regs
     with
     | Some r when not (String.equal (kind_name r.r_inst) kind) ->
       invalid_arg
         (Fmt.str "Metrics: %S already registered as a %s" name
            (kind_name r.r_inst))
     | Some _ | None -> ());
    let r = { r_name = name; r_help = help; r_labels = labels;
              r_inst = make () }
    in
    t.regs <- r :: t.regs;
    Hashtbl.replace t.index key r;
    r.r_inst

let counter t ?(help = "") ?(labels = []) name =
  match
    register t ~help ~labels name ~kind:"counter" (fun () ->
        I_counter { Counter.c = 0 })
  with
  | I_counter c -> c
  | I_gauge _ | I_histogram _ -> assert false

let gauge t ?(help = "") ?(labels = []) name =
  match
    register t ~help ~labels name ~kind:"gauge" (fun () ->
        I_gauge { Gauge.g = 0.0 })
  with
  | I_gauge g -> g
  | I_counter _ | I_histogram _ -> assert false

let histogram t ?(help = "") ?(labels = []) name =
  match
    register t ~help ~labels name ~kind:"histogram" (fun () ->
        I_histogram (Histogram.create ()))
  with
  | I_histogram h -> h
  | I_counter _ | I_gauge _ -> assert false

type value =
  | Counter of int
  | Gauge of float
  | Histogram of Histogram.snapshot

type sample = {
  m_name : string;
  m_help : string;
  m_labels : (string * string) list;
  m_value : value;
}

let snapshot t =
  List.rev_map
    (fun r ->
       { m_name = r.r_name;
         m_help = r.r_help;
         m_labels = r.r_labels;
         m_value =
           (match r.r_inst with
            | I_counter c -> Counter (Counter.value c)
            | I_gauge g -> Gauge (Gauge.value g)
            | I_histogram h -> Histogram (Histogram.snapshot h)) })
    t.regs

let same_series a b =
  String.equal a.m_name b.m_name && a.m_labels = b.m_labels

let merge_values a b =
  match a, b with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge _, Gauge y -> Gauge y
  | Histogram x, Histogram y -> Histogram (Histogram.merge x y)
  | _, _ ->
    invalid_arg "Metrics.merge: kind mismatch for the same series"

let merge left right =
  let merged =
    List.map
      (fun l ->
         match List.find_opt (same_series l) right with
         | Some r -> { l with m_value = merge_values l.m_value r.m_value }
         | None -> l)
      left
  in
  let right_only =
    List.filter
      (fun r -> not (List.exists (same_series r) left))
      right
  in
  merged @ right_only

(* Checkpoint serialization.  Gauges carry the exact bit pattern in a
   hex-float field alongside the human-readable decimal (the shared
   emitter prints floats at 6 significant digits, which would break the
   byte-identical resume guarantee); counters and histograms are exact
   by construction. *)
let sample_to_json s =
  let labels =
    Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.m_labels)
  in
  let value_fields =
    match s.m_value with
    | Counter c -> [ ("kind", Json.Str "counter"); ("value", Json.Int c) ]
    | Gauge g ->
      [ ("kind", Json.Str "gauge");
        ("value", Json.Float g);
        ("value_hex", Json.Str (Printf.sprintf "%h" g)) ]
    | Histogram h ->
      [ ("kind", Json.Str "histogram"); ("value", Histogram.s_to_json h) ]
  in
  Json.Obj
    (("name", Json.Str s.m_name)
     :: ("help", Json.Str s.m_help)
     :: ("labels", labels)
     :: value_fields)

let sample_of_json j =
  let ( let* ) = Result.bind in
  let str_field name =
    match Json.member name j with
    | Some (Json.Str s) -> Ok s
    | Some _ -> Error (Fmt.str "sample field %S is not a string" name)
    | None -> Error (Fmt.str "sample field %S missing" name)
  in
  let* name = str_field "name" in
  if not (valid_name name) then
    Error (Fmt.str "invalid metric name %S" name)
  else
    let* help = str_field "help" in
    let* labels =
      match Json.member "labels" j with
      | Some (Json.Obj fields) ->
        let rec conv acc = function
          | [] -> Ok (List.rev acc)
          | (k, Json.Str v) :: rest -> conv ((k, v) :: acc) rest
          | (k, _) :: _ -> Error (Fmt.str "label %S is not a string" k)
        in
        conv [] fields
      | Some _ -> Error "sample field \"labels\" is not an object"
      | None -> Error "sample field \"labels\" missing"
    in
    let* value =
      match str_field "kind", Json.member "value" j with
      | Error e, _ -> Error e
      | Ok "counter", Some (Json.Int c) ->
        if c < 0 then Error (Fmt.str "negative counter value %d" c)
        else Ok (Counter c)
      | Ok "gauge", Some v -> (
          match Json.member "value_hex" j with
          | Some (Json.Str hex) -> (
              match float_of_string_opt hex with
              | Some g -> Ok (Gauge g)
              | None -> Error (Fmt.str "bad gauge hex image %S" hex))
          | Some _ -> Error "gauge field \"value_hex\" is not a string"
          | None -> (
              match Json.to_float v with
              | Some g -> Ok (Gauge g)
              | None -> Error "gauge value is not numeric"))
      | Ok "histogram", Some v ->
        Result.map (fun h -> Histogram h) (Histogram.s_of_json v)
      | Ok kind, Some _ -> Error (Fmt.str "unknown sample kind %S" kind)
      | Ok _, None -> Error "sample field \"value\" missing"
    in
    Ok { m_name = name; m_help = help;
         m_labels = normalize_labels labels; m_value = value }

let samples_to_json samples = Json.List (List.map sample_to_json samples)

let samples_of_json = function
  | Json.List items ->
    let rec go acc i = function
      | [] -> Ok (List.rev acc)
      | j :: rest -> (
          match sample_of_json j with
          | Ok s -> go (s :: acc) (i + 1) rest
          | Error e -> Error (Fmt.str "sample %d: %s" i e))
    in
    go [] 0 items
  | _ -> Error "samples image is not a list"

let find ?(labels = []) samples name =
  let labels = normalize_labels labels in
  List.find_opt
    (fun s -> String.equal s.m_name name && s.m_labels = labels)
    samples
  |> Option.map (fun s -> s.m_value)
