module Counter = struct
  type t = { mutable c : int }

  let inc t = t.c <- t.c + 1

  let add t n =
    if n < 0 then invalid_arg "Counter.add: negative increment";
    t.c <- t.c + n

  let value t = t.c
end

module Gauge = struct
  (* Single-float record: unboxed, so [set] does not allocate. *)
  type t = { mutable g : float }

  let set t v = t.g <- v

  let value t = t.g
end

type instrument =
  | I_counter of Counter.t
  | I_gauge of Gauge.t
  | I_histogram of Histogram.t

type registered = {
  r_name : string;
  r_help : string;
  r_labels : (string * string) list;
  r_inst : instrument;
}

type t = {
  mutable regs : registered list;  (* reverse registration order *)
  index : (string * (string * string) list, registered) Hashtbl.t;
}

let create () = { regs = []; index = Hashtbl.create 64 }

let valid_name s =
  let ok_first c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  in
  let ok c = ok_first c || (c >= '0' && c <= '9') in
  String.length s > 0
  && ok_first s.[0]
  && String.for_all ok s

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let kind_name = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_histogram _ -> "histogram"

let register t ~help ~labels name ~kind make =
  if not (valid_name name) then
    invalid_arg (Fmt.str "Metrics: invalid metric name %S" name);
  List.iter
    (fun (k, _) ->
       if not (valid_name k) then
         invalid_arg (Fmt.str "Metrics: invalid label name %S" k))
    labels;
  let labels = normalize_labels labels in
  let key = (name, labels) in
  match Hashtbl.find_opt t.index key with
  | Some r ->
    if not (String.equal (kind_name r.r_inst) kind) then
      invalid_arg
        (Fmt.str "Metrics: %S already registered as a %s" name
           (kind_name r.r_inst));
    r.r_inst
  | None ->
    (* A name must keep one kind across label sets (Prometheus rule). *)
    (match
       List.find_opt (fun r -> String.equal r.r_name name) t.regs
     with
     | Some r when not (String.equal (kind_name r.r_inst) kind) ->
       invalid_arg
         (Fmt.str "Metrics: %S already registered as a %s" name
            (kind_name r.r_inst))
     | Some _ | None -> ());
    let r = { r_name = name; r_help = help; r_labels = labels;
              r_inst = make () }
    in
    t.regs <- r :: t.regs;
    Hashtbl.replace t.index key r;
    r.r_inst

let counter t ?(help = "") ?(labels = []) name =
  match
    register t ~help ~labels name ~kind:"counter" (fun () ->
        I_counter { Counter.c = 0 })
  with
  | I_counter c -> c
  | I_gauge _ | I_histogram _ -> assert false

let gauge t ?(help = "") ?(labels = []) name =
  match
    register t ~help ~labels name ~kind:"gauge" (fun () ->
        I_gauge { Gauge.g = 0.0 })
  with
  | I_gauge g -> g
  | I_counter _ | I_histogram _ -> assert false

let histogram t ?(help = "") ?(labels = []) name =
  match
    register t ~help ~labels name ~kind:"histogram" (fun () ->
        I_histogram (Histogram.create ()))
  with
  | I_histogram h -> h
  | I_counter _ | I_gauge _ -> assert false

type value =
  | Counter of int
  | Gauge of float
  | Histogram of Histogram.snapshot

type sample = {
  m_name : string;
  m_help : string;
  m_labels : (string * string) list;
  m_value : value;
}

let snapshot t =
  List.rev_map
    (fun r ->
       { m_name = r.r_name;
         m_help = r.r_help;
         m_labels = r.r_labels;
         m_value =
           (match r.r_inst with
            | I_counter c -> Counter (Counter.value c)
            | I_gauge g -> Gauge (Gauge.value g)
            | I_histogram h -> Histogram (Histogram.snapshot h)) })
    t.regs

let same_series a b =
  String.equal a.m_name b.m_name && a.m_labels = b.m_labels

let merge_values a b =
  match a, b with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge _, Gauge y -> Gauge y
  | Histogram x, Histogram y -> Histogram (Histogram.merge x y)
  | _, _ ->
    invalid_arg "Metrics.merge: kind mismatch for the same series"

let merge left right =
  let merged =
    List.map
      (fun l ->
         match List.find_opt (same_series l) right with
         | Some r -> { l with m_value = merge_values l.m_value r.m_value }
         | None -> l)
      left
  in
  let right_only =
    List.filter
      (fun r -> not (List.exists (same_series r) left))
      right
  in
  merged @ right_only

let find ?(labels = []) samples name =
  let labels = normalize_labels labels in
  List.find_opt
    (fun s -> String.equal s.m_name name && s.m_labels = labels)
    samples
  |> Option.map (fun s -> s.m_value)
