open Elastic_sim

(** Engine instrumentation: a {!Metrics} registry populated from the
    engine's allocation-free end-of-cycle observer hook
    ({!Engine.set_observer}), plus a windowed JSONL time series.

    Metric families (Prometheus naming, [elastic_] prefix):
    - engine: [elastic_engine_cycles_total], [..._node_evals_total],
      [..._convergence_retry_cycles_total], the [..._settle_passes]
      histogram, [..._settle_seconds] and [..._stored_tokens] gauges,
      [..._protocol_violations_total];
    - per channel ([channel] label): [elastic_channel_transfers_total],
      [..._stall_cycles_total], [..._anti_cycles_total],
      [..._kills_total];
    - per buffer ([node] label): [elastic_buffer_occupancy] gauge;
    - per scheduler ([node] label): [elastic_sched_serves_total],
      [..._mispredictions_total], [..._prediction_changes_total], the
      [..._replay_penalty_cycles] histogram and the [..._accuracy]
      gauge;
    - per sink ([sink] label): [elastic_sink_throughput] gauge
      (tokens/cycle since creation);
    - faults: [elastic_fault_injections_total], and
      [elastic_fault_recovery_total] ([class] label) via
      {!note_recovery}.

    Counters and histograms are updated every cycle with constant work
    per channel/scheduler; gauges (and the optional window callback)
    are refreshed only at window boundaries, so the per-cycle cost
    stays flat.  With no sampler attached the engine hot path is
    untouched — the metrics-off guarantee is the observer-off
    guarantee, and the instrument updates themselves are
    allocation-free (GC-guarded in the test suite). *)

type t

(** One emitted window: the cycle count at emission, the window length
    in cycles, and the {e cumulative} snapshot at that point (rates are
    a consumer-side subtraction, as with Prometheus scrapes). *)
type row = {
  r_cycle : int;
  r_window : int;
  r_samples : Metrics.sample list;
}

(** [create eng] builds a sampler (not yet installed — use {!attach},
    or compose {!observe} into an existing observer).
    @param registry register instruments into an existing registry
    (default: a fresh one).
    @param window emit a {!row} every [window] cycles (default [0]: no
    windowing; gauges then refresh on every cycle).
    @param on_window window callback. *)
val create :
  ?registry:Metrics.t -> ?window:int -> ?on_window:(row -> unit) ->
  Engine.t -> t

(** [attach eng] = {!create} + [Engine.set_observer]. *)
val attach :
  ?registry:Metrics.t -> ?window:int -> ?on_window:(row -> unit) ->
  Engine.t -> t

(** The observer body, exposed for composition with a tracer or VCD
    recorder (the engine has a single observer slot). *)
val observe : t -> Engine.t -> unit

val registry : t -> Metrics.t

(** Snapshot with gauges freshly refreshed from the engine. *)
val sample : t -> Engine.t -> Metrics.sample list

(** One JSONL line (no trailing newline), schema
    [elastic-speculation/metrics/v1]; histograms are summarized as
    count/sum/min/max/p50/p90/p99. *)
val jsonl_of_row : row -> string

(** Count a recovery classification into
    [elastic_fault_recovery_total{class="..."}]. *)
val note_recovery :
  Metrics.t -> Elastic_fault.Recovery.classification -> unit
