open Elastic_kernel
open Elastic_sched
open Elastic_netlist
open Elastic_sim

type chan_insts = {
  ci_id : Netlist.channel_id;
  ci_transfers : Metrics.Counter.t;
  ci_stalls : Metrics.Counter.t;
  ci_antis : Metrics.Counter.t;
  ci_kills : Metrics.Counter.t;
}

type sched_insts = {
  si_node : Netlist.node_id;
  si_sched : Scheduler.t;  (* live reference into the engine *)
  mutable si_serves : int;
  mutable si_mispred : int;
  mutable si_predict : int;
  mutable si_squash : int option;  (* cycle of the unreplayed squash *)
  sc_serves : Metrics.Counter.t;
  sc_mispred : Metrics.Counter.t;
  sc_changes : Metrics.Counter.t;
  sc_penalty : Histogram.t;
  sc_accuracy : Metrics.Gauge.t;
}

type t = {
  reg : Metrics.t;
  window : int;
  on_window : (row -> unit) option;
  chans : chan_insts array;
  scheds : sched_insts array;
  buf_gauges : (Netlist.node_id, Metrics.Gauge.t) Hashtbl.t;
  sink_gauges : (Netlist.node_id * Metrics.Gauge.t) list;
  c_cycles : Metrics.Counter.t;
  c_evals : Metrics.Counter.t;
  c_retries : Metrics.Counter.t;
  c_violations : Metrics.Counter.t;
  c_injections : Metrics.Counter.t;
  h_passes : Histogram.t;
  g_settle_seconds : Metrics.Gauge.t;
  g_stored : Metrics.Gauge.t;
  mutable prev_evals : int;
  mutable prev_violations : int;
}

and row = {
  r_cycle : int;
  r_window : int;
  r_samples : Metrics.sample list;
}

let create ?registry ?(window = 0) ?on_window eng =
  if window < 0 then invalid_arg "Sampler.create: negative window";
  let reg = match registry with Some r -> r | None -> Metrics.create () in
  let net = Engine.netlist eng in
  let chans =
    Netlist.channels net
    |> List.map (fun (c : Netlist.channel) ->
        let labels = [ ("channel", c.Netlist.ch_name) ] in
        { ci_id = c.Netlist.ch_id;
          ci_transfers =
            Metrics.counter reg ~labels
              ~help:"Tokens delivered across the channel"
              "elastic_channel_transfers_total";
          ci_stalls =
            Metrics.counter reg ~labels
              ~help:"Cycles with a valid token stalled (V+ and S+)"
              "elastic_channel_stall_cycles_total";
          ci_antis =
            Metrics.counter reg ~labels
              ~help:"Cycles with an anti-token present (V-)"
              "elastic_channel_anti_cycles_total";
          ci_kills =
            Metrics.counter reg ~labels
              ~help:"Tokens annihilated by anti-tokens"
              "elastic_channel_kills_total" })
    |> Array.of_list
  in
  let scheds =
    Engine.schedulers eng
    |> List.map (fun (nid, sched) ->
        let labels = [ ("node", (Netlist.node net nid).Netlist.name) ] in
        { si_node = nid;
          si_sched = sched;
          si_serves = Scheduler.serves sched;
          si_mispred = Scheduler.mispredictions sched;
          si_predict = Scheduler.predict sched;
          si_squash = None;
          sc_serves =
            Metrics.counter reg ~labels
              ~help:"Tokens served by the shared module"
              "elastic_sched_serves_total";
          sc_mispred =
            Metrics.counter reg ~labels
              ~help:"Detected mispredictions (squashes)"
              "elastic_sched_mispredictions_total";
          sc_changes =
            Metrics.counter reg ~labels
              ~help:"Prediction changes"
              "elastic_sched_prediction_changes_total";
          sc_penalty =
            Metrics.histogram reg ~labels
              ~help:"Cycles from squash to the completed replay serve"
              "elastic_sched_replay_penalty_cycles";
          sc_accuracy =
            Metrics.gauge reg ~labels
              ~help:"1 - mispredictions/serves"
              "elastic_sched_accuracy" })
    |> Array.of_list
  in
  Array.iter
    (fun s -> Metrics.Gauge.set s.sc_accuracy 1.0)
    scheds;
  let buf_gauges = Hashtbl.create 8 in
  List.iter
    (fun (nid, occ) ->
       let g =
         Metrics.gauge reg
           ~labels:[ ("node", (Netlist.node net nid).Netlist.name) ]
           ~help:"Signed token occupancy of the buffer"
           "elastic_buffer_occupancy"
       in
       Metrics.Gauge.set g (float_of_int occ);
       Hashtbl.replace buf_gauges nid g)
    (Engine.occupancies eng);
  let sink_gauges =
    List.filter_map
      (fun (n : Netlist.node) ->
         match n.Netlist.kind with
         | Netlist.Sink _ ->
           Some
             (n.Netlist.id,
              Metrics.gauge reg
                ~labels:[ ("sink", n.Netlist.name) ]
                ~help:"Tokens delivered per cycle since creation"
                "elastic_sink_throughput")
         | Netlist.Source _ | Netlist.Buffer _ | Netlist.Func _
         | Netlist.Fork _ | Netlist.Mux _ | Netlist.Shared _
         | Netlist.Varlat _ -> None)
      (Netlist.nodes net)
  in
  { reg;
    window;
    on_window;
    chans;
    scheds;
    buf_gauges;
    sink_gauges;
    c_cycles =
      Metrics.counter reg ~help:"Simulated cycles"
        "elastic_engine_cycles_total";
    c_evals =
      Metrics.counter reg ~help:"Combinational node evaluations"
        "elastic_engine_node_evals_total";
    c_retries =
      Metrics.counter reg
        ~help:"Cycles whose settle phase needed more than one pass"
        "elastic_engine_convergence_retry_cycles_total";
    c_violations =
      Metrics.counter reg ~help:"Protocol monitor violations"
        "elastic_engine_protocol_violations_total";
    c_injections =
      Metrics.counter reg ~help:"Injected channel faults"
        "elastic_fault_injections_total";
    h_passes =
      Metrics.histogram reg ~help:"Settle passes per cycle"
        "elastic_engine_settle_passes";
    g_settle_seconds =
      Metrics.gauge reg ~help:"Wall-clock seconds spent settling"
        "elastic_engine_settle_seconds";
    g_stored =
      Metrics.gauge reg ~help:"Net tokens stored in buffers"
        "elastic_engine_stored_tokens";
    prev_evals = Profile.evals (Engine.profile eng);
    prev_violations = List.length (Engine.violations eng) }

let registry t = t.reg

(* Gauges involve list walks over engine state, so they are refreshed
   only at window boundaries (or every cycle when no window is set). *)
let refresh_gauges t eng =
  Metrics.Gauge.set t.g_settle_seconds
    (Profile.settle_seconds (Engine.profile eng));
  Metrics.Gauge.set t.g_stored (float_of_int (Engine.stored_tokens eng));
  List.iter
    (fun (nid, occ) ->
       match Hashtbl.find_opt t.buf_gauges nid with
       | Some g -> Metrics.Gauge.set g (float_of_int occ)
       | None -> ())
    (Engine.occupancies eng);
  List.iter
    (fun (nid, g) -> Metrics.Gauge.set g (Engine.throughput eng nid))
    t.sink_gauges;
  Array.iter
    (fun s ->
       let serves = Metrics.Counter.value s.sc_serves in
       let mispred = Metrics.Counter.value s.sc_mispred in
       Metrics.Gauge.set s.sc_accuracy
         (if serves = 0 then 1.0
          else
            Float.max 0.0
              (1.0 -. (float_of_int mispred /. float_of_int serves))))
    t.scheds

let sample t eng =
  refresh_gauges t eng;
  Metrics.snapshot t.reg

let observe t eng =
  let cyc = Engine.cycle eng in
  Metrics.Counter.inc t.c_cycles;
  let prof = Engine.profile eng in
  let evals = Profile.evals prof in
  Metrics.Counter.add t.c_evals (evals - t.prev_evals);
  t.prev_evals <- evals;
  let passes = Profile.last_passes prof in
  Histogram.observe t.h_passes passes;
  if passes > 1 then Metrics.Counter.inc t.c_retries;
  List.iter (fun _ -> Metrics.Counter.inc t.c_injections)
    (Engine.injected eng);
  Array.iter
    (fun c ->
       let bev = Engine.events eng c.ci_id in
       let sg = Signal.resolve (Engine.signal eng c.ci_id) in
       if bev.Signal.token_in then Metrics.Counter.inc c.ci_transfers;
       if bev.Signal.cancelled then Metrics.Counter.inc c.ci_kills;
       if sg.Signal.v_plus && sg.Signal.s_plus then
         Metrics.Counter.inc c.ci_stalls;
       if sg.Signal.v_minus then Metrics.Counter.inc c.ci_antis)
    t.chans;
  (* Scheduler activity from counter deltas, mirroring the tracer: the
     serve is attributed to the prediction in effect during the elapsed
     cycle, and a replay only completes on a later cycle's serve. *)
  Array.iter
    (fun s ->
       let serves = Scheduler.serves s.si_sched in
       let mispred = Scheduler.mispredictions s.si_sched in
       for _ = 1 to serves - s.si_serves do
         Metrics.Counter.inc s.sc_serves;
         match s.si_squash with
         | Some c0 when c0 < cyc ->
           Histogram.observe s.sc_penalty (cyc - c0);
           s.si_squash <- None
         | Some _ | None -> ()
       done;
       s.si_serves <- serves;
       if mispred > s.si_mispred then begin
         Metrics.Counter.add s.sc_mispred (mispred - s.si_mispred);
         s.si_mispred <- mispred;
         s.si_squash <- Some cyc
       end;
       let p = Scheduler.predict s.si_sched in
       if p <> s.si_predict then begin
         Metrics.Counter.inc s.sc_changes;
         s.si_predict <- p
       end)
    t.scheds;
  let violations = List.length (Engine.violations eng) in
  if violations > t.prev_violations then begin
    Metrics.Counter.add t.c_violations (violations - t.prev_violations);
    t.prev_violations <- violations
  end;
  if t.window = 0 then refresh_gauges t eng
  else if (cyc + 1) mod t.window = 0 then begin
    refresh_gauges t eng;
    match t.on_window with
    | None -> ()
    | Some f ->
      f { r_cycle = cyc + 1;
          r_window = t.window;
          r_samples = Metrics.snapshot t.reg }
  end

let attach ?registry ?window ?on_window eng =
  let t = create ?registry ?window ?on_window eng in
  Engine.set_observer eng (Some (observe t));
  t

let jsonl_of_row row =
  let labels_json labels =
    Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)
  in
  let sample_json (s : Metrics.sample) =
    let base =
      [ ("name", Json.Str s.Metrics.m_name);
        ("labels", labels_json s.Metrics.m_labels) ]
    in
    Json.Obj
      (match s.Metrics.m_value with
       | Metrics.Counter v ->
         base @ [ ("kind", Json.Str "counter"); ("value", Json.Int v) ]
       | Metrics.Gauge v ->
         base @ [ ("kind", Json.Str "gauge"); ("value", Json.Float v) ]
       | Metrics.Histogram h ->
         base
         @ [ ("kind", Json.Str "histogram");
             ("count", Json.Int (Histogram.s_count h));
             ("sum", Json.Int (Histogram.s_sum h));
             ("min", Json.Int (Histogram.s_min h));
             ("max", Json.Int (Histogram.s_max h));
             ("p50", Json.Int (Histogram.s_quantile h 0.5));
             ("p90", Json.Int (Histogram.s_quantile h 0.9));
             ("p99", Json.Int (Histogram.s_quantile h 0.99)) ])
  in
  Json.to_string
    (Json.Obj
       [ ("schema", Json.Str "elastic-speculation/metrics/v1");
         ("cycle", Json.Int row.r_cycle);
         ("window", Json.Int row.r_window);
         ("samples", Json.List (List.map sample_json row.r_samples)) ])

let note_recovery reg cls =
  let label =
    String.map
      (fun c -> if c = '-' then '_' else c)
      (Elastic_fault.Recovery.classification_label cls)
  in
  Metrics.Counter.inc
    (Metrics.counter reg
       ~labels:[ ("class", label) ]
       ~help:"Recovery-check outcomes by classification"
       "elastic_fault_recovery_total")
