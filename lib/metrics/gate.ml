type diff = {
  d_path : string;
  d_reason : string;
}

let pp_diff ppf d = Fmt.pf ppf "%s: %s" d.d_path d.d_reason

let wall_clock_key path =
  let last =
    match String.rindex_opt path '.' with
    | Some i -> String.sub path (i + 1) (String.length path - i - 1)
    | None -> path
  in
  let suffixed suf =
    let n = String.length suf in
    String.length last > n
    && String.equal (String.sub last (String.length last - n) n) suf
  in
  String.equal last "settle_us_per_cycle"
  (* Span-ledger coverage (bench E10): a wall-clock ratio; the bench
     gates its >= 0.95 floor via the spans_account_ok bool instead. *)
  || String.equal last "spans_account_ratio"
  || suffixed "_seconds"
  (* Derived rates and ratios are as machine-dependent as the raw
     timings they come from (bench E9). *)
  || suffixed "_per_second"
  || suffixed "_speedup"
  (* Scheduling-overhead ratios (bench E10) are wall-clock-derived
     too: utilization varies with load, overhead with clock
     resolution. *)
  || suffixed "_utilization"
  || suffixed "_overhead"

(* Leaves of a record, as [path -> value] in document order.  Array
   elements are indexed ([points[2].spec_throughput]) so a reordering
   or a change of sweep length shows up as missing/unexpected paths
   rather than being silently paired up wrong. *)
let flatten j =
  let acc = ref [] in
  let rec go path j =
    match (j : Json.t) with
    | Json.Obj fields ->
      List.iter
        (fun (k, v) ->
           go (if String.equal path "" then k else path ^ "." ^ k) v)
        fields
    | Json.List items ->
      List.iteri (fun i v -> go (Fmt.str "%s[%d]" path i) v) items
    | leaf -> acc := (path, leaf) :: !acc
  in
  go "" j;
  List.rev !acc

let leaf_text = function
  | Json.Null -> "null"
  | Json.Bool b -> string_of_bool b
  | Json.Int i -> string_of_int i
  | Json.Float f -> Fmt.str "%.6g" f
  | Json.Str s -> Fmt.str "%S" s
  | Json.List _ | Json.Obj _ -> "<composite>"

let compare_values ~rel_tol path baseline current =
  let mismatch reason = Some { d_path = path; d_reason = reason } in
  match (baseline : Json.t), (current : Json.t) with
  (* Two ints compare exactly: the simulation is deterministic, and a
     count that moved by 1 is a real behaviour change. *)
  | Json.Int b, Json.Int c ->
    if b = c then None
    else
      mismatch (Fmt.str "baseline %d, current %d (delta %+d)" b c (c - b))
  | (Json.Int _ | Json.Float _), (Json.Int _ | Json.Float _) ->
    (* At least one side is a float (integral floats round-trip through
       JSON as ints, so mixed pairs are float fields too). *)
    let b = Option.get (Json.to_float baseline) in
    let c = Option.get (Json.to_float current) in
    let scale = Float.max 1.0 (Float.max (Float.abs b) (Float.abs c)) in
    if Float.abs (c -. b) <= rel_tol *. scale then None
    else
      mismatch
        (Fmt.str "baseline %g, current %g (delta %+g, tolerance %g)" b c
           (c -. b) (rel_tol *. scale))
  | Json.Bool b, Json.Bool c ->
    if Bool.equal b c then None
    else mismatch (Fmt.str "baseline %b, current %b" b c)
  | Json.Str b, Json.Str c ->
    if String.equal b c then None
    else mismatch (Fmt.str "baseline %S, current %S" b c)
  | Json.Null, Json.Null -> None
  | b, c ->
    mismatch
      (Fmt.str "baseline %s, current %s (kind changed)" (leaf_text b)
         (leaf_text c))

let compare ?(rel_tol = 1e-4) ?(skip = wall_clock_key) ~baseline ~current
    () =
  let b = flatten baseline in
  let c = flatten current in
  let current_tbl = Hashtbl.create (List.length c) in
  List.iter (fun (p, v) -> Hashtbl.replace current_tbl p v) c;
  let diffs = ref [] in
  let emit d = diffs := d :: !diffs in
  List.iter
    (fun (path, bv) ->
       if not (skip path) then
         match Hashtbl.find_opt current_tbl path with
         | None ->
           emit { d_path = path; d_reason = "missing from current run" }
         | Some cv ->
           Option.iter emit (compare_values ~rel_tol path bv cv))
    b;
  let baseline_paths = Hashtbl.create (List.length b) in
  List.iter (fun (p, _) -> Hashtbl.replace baseline_paths p ()) b;
  List.iter
    (fun (path, cv) ->
       if (not (skip path)) && not (Hashtbl.mem baseline_paths path) then
         emit
           { d_path = path;
             d_reason =
               Fmt.str "not in baseline (current %s)" (leaf_text cv) })
    c;
  List.rev !diffs
