(* Sequential fallback backend (OCaml 4.14, no Domain).  Copied to
   pool_backend.ml by the dune rule; see pool_backend.mli for the
   contract.  Workers run one after another in index order, so worker 0
   typically drains its own deque and then steals the rest — merged
   results are still identical because the runner merges by shard index,
   not by executing worker. *)

let parallel = false

let recommended () = 1

type lock = unit

let create_lock () = ()

let with_lock () f = f ()

let run_workers n body =
  for i = 0 to n - 1 do
    body i
  done
