(** Supervised parallel campaign runner.

    Shards a list of independent {!task}s (fault scenarios, sweep
    points, lint corpora) across workers — OCaml 5 domains when the
    compiler has them, a sequential in-process pool otherwise (see
    {!Pool_backend}) — with the supervision tree the paper's campaign
    scale demands:

    - {b crash isolation}: any exception escaping a task marks only
      that shard failed, with the exception text as provenance; sibling
      shards and the run keep going.
    - {b deadlines}: per-shard and per-campaign wall-clock budgets
      (cycle budgets live in the engine as [max_cycles] / typed E110).
    - {b retry}: transiently-failed shards retry in-worker with seeded
      exponential {!Backoff}; deterministic failures ([Simulation_error],
      [Diagnostic.Reject], ...) are classified {!Permanent} and never
      retried.
    - {b checkpoint/resume}: completed shards append their exact sample
      snapshot to a {!Checkpoint} file; a resumed run adopts matching
      entries and recomputes nothing.

    Determinism contract: shards merge in {e index} order, so for
    deadline-free workloads the merged snapshot is byte-identical
    across worker counts, interruptions and resumes — the crash-recovery
    equivalence suite asserts exactly this. *)

exception Deadline_exceeded of string

(** Raised by fault-injection hooks in tests/chaos runs to simulate a
    worker being killed mid-shard. *)
exception Killed of string

(** Passed to the task body. *)
type ctx = {
  shard_id : string;
  shard_index : int;
  attempt : int;  (** 1-based *)
  check_deadline : unit -> unit;
      (** call between units of work; raises {!Deadline_exceeded} when
          the shard or campaign wall-clock budget is exhausted *)
  obs : (Elastic_obs.Recorder.t * int) option;
      (** when span collection is on ([run ~obs]): the executing
          worker's recorder and the id of the enclosing attempt span,
          so the task body can record child phase spans (compile,
          settle, ...) under the attempt *)
}

type task = {
  id : string;  (** unique; the checkpoint resume key *)
  work : ctx -> Elastic_metrics.Metrics.sample list;
}

type classification =
  | Transient  (** worth retrying: timeouts, kills, unknown exceptions *)
  | Permanent  (** deterministic: same inputs will fail the same way *)

(** [Simulation_error], [Diagnostic.Reject], [Invalid_argument],
    [Failure] and [Assert_failure] are {!Permanent};
    {!Deadline_exceeded}, {!Killed} and anything else {!Transient}. *)
val default_classify : exn -> classification

type failure = {
  f_exn : string;  (** [Printexc.to_string] of the last attempt *)
  f_class : classification;
}

type status =
  | Completed of Elastic_metrics.Metrics.sample list
  | Failed of failure
  | Not_run  (** campaign deadline / stop signal hit first *)

type shard = {
  sh_id : string;
  sh_index : int;
  sh_status : status;
  sh_attempts : int;  (** 0 when [Not_run] or resumed *)
  sh_worker : int;  (** finishing worker; -1 when not executed here *)
  sh_resumed : bool;  (** adopted from a checkpoint *)
}

type worker_stats = {
  w_tasks : int;  (** attempts started *)
  w_completed : int;
  w_retries : int;
  w_timeouts : int;  (** {!Deadline_exceeded} observations *)
  w_steals : int;  (** tasks taken from a sibling's deque *)
}

type report = {
  r_name : string;
  r_shards : shard list;  (** in index order, one per input task *)
  r_merged : Elastic_metrics.Metrics.sample list;
      (** completed shards folded with [Metrics.merge] in index order *)
  r_completed : int;
  r_failed : int;
  r_not_run : int;
  r_resumed : int;
  r_workers : worker_stats array;
  r_stopped : bool;  (** cut short by [stop_after] or campaign deadline *)
}

(** [run ~name tasks] executes every task and never raises on task
    failure.

    @param workers pool size (default [Pool_backend.recommended ()]);
      shard [i] starts on worker [i mod workers], idle workers steal.
    @param max_attempts per shard, >= 1 (default 3).
    @param backoff retry delay policy (default {!Backoff.default}).
    @param seed drives backoff jitter only (default 2009).
    @param classify failure triage (default {!default_classify}).
    @param shard_deadline wall seconds per {e attempt}.
    @param campaign_deadline wall seconds for the whole run; shards not
      started in time report [Not_run].
    @param clock injectable time source (default [Clock.monotonic]).
    @param sleep injectable backoff sleep (default [Unix.sleepf]).
    @param checkpoint path to write JSONL checkpoints to.
    @param resume adopt [Completed] entries by task id from a loaded
      checkpoint; carried forward into the new checkpoint file.
    @param command stored in the checkpoint header for [runner resume].
    @param stop_after simulate a kill: stop dispatching after this many
      locally-completed shards (deterministic on 1 worker).
    @param registry post-run runner-health metrics
      ([elastic_runner_tasks_total{worker=...}] etc.); with [obs] also
      the derived scheduling gauges
      ([elastic_obs_worker_utilization{worker=...}], queue wait,
      spans/sec).
    @param obs span ledger: one single-writer recorder per worker is
      prepared in the collector, and the run records the
      [campaign -> shard -> attempt -> {checkpoint-write,
      backoff-sleep}] hierarchy (worker id, steal provenance, retry
      counts, failure classification, deadline margins as attributes);
      task bodies add compile/settle phase spans through [ctx.obs].
      Off by default and adds nothing to the hot paths when absent.
    @param progress live progress plane (see {!Progress}): workers
      publish per-shard state transitions and heartbeats as they go —
      attempt starts, every [ctx.check_deadline] call (reusing the
      clock reading the deadline check already made, so no extra clock
      reads), completions and failures — and checkpoint-adopted shards
      appear [Completed] before the workers start.  The telemetry
      server reads it concurrently.  Off by default and adds nothing
      when absent.
    @raise Invalid_argument on non-positive [workers]/[max_attempts],
      duplicate task ids, or a [progress] plane sized for a different
      shard count. *)
val run :
  ?workers:int ->
  ?max_attempts:int ->
  ?backoff:Backoff.policy ->
  ?seed:int ->
  ?classify:(exn -> classification) ->
  ?shard_deadline:float ->
  ?campaign_deadline:float ->
  ?clock:Elastic_sim.Clock.t ->
  ?sleep:(float -> unit) ->
  ?checkpoint:string ->
  ?resume:Checkpoint.t ->
  ?command:string ->
  ?stop_after:int ->
  ?registry:Elastic_metrics.Metrics.t ->
  ?obs:Elastic_obs.Collector.t ->
  ?progress:Progress.t ->
  name:string ->
  task list ->
  report

(** Completeness report: shard totals, failures with provenance,
    worker/steal/retry accounting. *)
val pp_report : Format.formatter -> report -> unit

val report_json : report -> Elastic_metrics.Json.t
