(** Campaign-to-task adapters for the {!Runner}.

    {!Elastic_fault.Campaign.run} checks scenarios one after another in
    one process; [of_campaign] turns the same scenario list into one
    {!Runner.task} per scenario so the runner can shard it.  Each task
    runs {!Elastic_fault.Recovery.check} against the shared (immutable)
    netlist and returns a fresh registry snapshot — counters for
    scenarios, injections and per-class recovery outcomes, plus a
    correction-penalty histogram — so the runner's index-order merge
    reproduces the sequential campaign's histogram exactly, at any
    worker count. *)

(** [of_campaign ~name net ~scenarios] — task ids are
    ["<name>/<index>"] (stable across runs: the checkpoint resume key).
    [cycles], [settle] and [alarms] are passed through to
    [Recovery.check].  The task body calls [ctx.check_deadline] before
    each check, so shard/campaign wall-clock budgets land between
    simulations, never mid-cycle. *)
val of_campaign :
  ?cycles:int ->
  ?settle:int ->
  ?alarms:
    (Elastic_netlist.Netlist.node_id * (Elastic_kernel.Value.t -> bool))
      list ->
  name:string ->
  Elastic_netlist.Netlist.t ->
  scenarios:Elastic_fault.Fault.t list list ->
  Runner.task list

(** Rebuild a {!Elastic_fault.Campaign.summary}-style histogram
    (classification label -> count, sorted by label) from merged runner
    samples — the equivalence suite compares this against the
    sequential campaign's histogram. *)
val classification_histogram :
  Elastic_metrics.Metrics.sample list -> (string * int) list
