module Json = Elastic_metrics.Json

let schema = "elastic-speculation/status/v1"

let doc ~source ~campaign ~shards ~pending ~running ~completed ~failed
    ~resumed ~retried ~attempts ~elapsed ~eta ~healthy ~stalls
    ~utilization ~slowest extra =
  Json.Obj
    ([ ("schema", Json.Str schema);
       ("source", Json.Str source);
       ("campaign", campaign);
       ("shards", Json.Int shards);
       ("pending", Json.Int pending);
       ("running", Json.Int running);
       ("completed", Json.Int completed);
       ("failed", Json.Int failed);
       ("resumed", Json.Int resumed);
       ("retried", Json.Int retried);
       ("attempts", Json.Int attempts);
       ("elapsed_seconds", Json.Float elapsed);
       ("eta_seconds",
        match eta with Some e -> Json.Float e | None -> Json.Null);
       ("healthy", Json.Bool healthy);
       ("stalls", Json.Int stalls);
       ("workers",
        Json.List
          (List.map
             (fun (w, u) ->
                Json.Obj
                  [ ("worker", Json.Int w); ("utilization", Json.Float u) ])
             utilization));
       ("slowest",
        match slowest with
        | Some (id, index, seconds, attempts) ->
          Json.Obj
            [ ("shard", Json.Str id);
              ("index", Json.Int index);
              ("seconds", Json.Float seconds);
              ("attempts", Json.Int attempts) ]
        | None -> Json.Null) ]
     @ extra)

let of_progress ?(healthy = true) ?(stalls = 0) ?(utilization = []) p =
  match p with
  | None ->
    doc ~source:"idle" ~campaign:Json.Null ~shards:0 ~pending:0 ~running:0
      ~completed:0 ~failed:0 ~resumed:0 ~retried:0 ~attempts:0 ~elapsed:0.0
      ~eta:None ~healthy ~stalls ~utilization ~slowest:None []
  | Some p ->
    let c = Progress.counts p in
    doc ~source:"live"
      ~campaign:(Json.Str (Progress.name p))
      ~shards:(Progress.shards p) ~pending:c.Progress.c_pending
      ~running:c.Progress.c_running ~completed:c.Progress.c_completed
      ~failed:c.Progress.c_failed ~resumed:(Progress.resumed p)
      ~retried:(Progress.retried p) ~attempts:(Progress.attempts_total p)
      ~elapsed:(Progress.elapsed_seconds p)
      ~eta:(Progress.eta_seconds p) ~healthy ~stalls ~utilization
      ~slowest:(Progress.slowest p) []

let of_checkpoint (cp : Checkpoint.t) =
  let completed = List.length cp.Checkpoint.entries in
  let shards = max completed cp.Checkpoint.header.Checkpoint.shards in
  let retried =
    List.length
      (List.filter
         (fun (e : Checkpoint.entry) -> e.Checkpoint.e_attempts > 1)
         cp.Checkpoint.entries)
  in
  let attempts =
    List.fold_left
      (fun acc (e : Checkpoint.entry) -> acc + e.Checkpoint.e_attempts)
      0 cp.Checkpoint.entries
  in
  let elapsed =
    List.fold_left
      (fun acc (e : Checkpoint.entry) -> acc +. e.Checkpoint.e_seconds)
      0.0 cp.Checkpoint.entries
  in
  let slowest =
    List.fold_left
      (fun acc (e : Checkpoint.entry) ->
         match acc with
         | Some (_, _, secs, _) when secs >= e.Checkpoint.e_seconds -> acc
         | _ ->
           Some
             (e.Checkpoint.e_id, e.Checkpoint.e_index,
              e.Checkpoint.e_seconds, e.Checkpoint.e_attempts))
      None cp.Checkpoint.entries
  in
  let slowest =
    (* Pre-spans checkpoints carry no per-shard seconds: no slowest. *)
    match slowest with
    | Some (_, _, 0.0, _) -> None
    | s -> s
  in
  doc ~source:"checkpoint"
    ~campaign:(Json.Str cp.Checkpoint.header.Checkpoint.campaign)
    ~shards
    ~pending:(shards - completed)
    ~running:0 ~completed ~failed:0 ~resumed:0 ~retried ~attempts ~elapsed
    ~eta:None ~healthy:true ~stalls:0 ~utilization:[] ~slowest
    [ ("truncated", Json.Bool cp.Checkpoint.truncated);
      ("command",
       match cp.Checkpoint.header.Checkpoint.command with
       | Some c -> Json.Str c
       | None -> Json.Null) ]
