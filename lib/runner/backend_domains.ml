(* Domains backend (OCaml >= 5.0).  Copied to pool_backend.ml by the
   dune rule when the compiler supports it; see pool_backend.mli for the
   contract.  Workers 1..n-1 get their own domain, the calling thread
   doubles as worker 0 so [n = 1] spawns nothing. *)

let parallel = true

let recommended () = max 1 (Domain.recommended_domain_count ())

type lock = Mutex.t

let create_lock () = Mutex.create ()

let with_lock m f =
  Mutex.lock m;
  match f () with
  | v ->
    Mutex.unlock m;
    v
  | exception e ->
    Mutex.unlock m;
    raise e

let run_workers n body =
  if n <= 1 then body 0
  else begin
    let spawned =
      List.init (n - 1) (fun i -> Domain.spawn (fun () -> body (i + 1)))
    in
    body 0;
    List.iter Domain.join spawned
  end
