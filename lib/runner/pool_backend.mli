(** Execution backend for the campaign runner, selected at build time.

    On OCaml >= 5.0 this is [backend_domains.ml] (one {!run_workers}
    body per domain, real mutexes); on 4.14 it is [backend_seq.ml]
    (workers run one after another in-process, locks are no-ops).  The
    runner is written against this signature only, so the same campaign
    code builds and produces identical merged results on both. *)

(** Whether workers actually run concurrently. *)
val parallel : bool

(** A sensible default worker count for this machine (1 when
    [parallel] is false). *)
val recommended : unit -> int

type lock

val create_lock : unit -> lock

(** Run [f] with the lock held; always releases, re-raises [f]'s
    exception. *)
val with_lock : lock -> (unit -> 'a) -> 'a

(** [run_workers n body] runs [body 0] .. [body (n-1)] to completion.
    Concurrently on the domains backend (caller's thread doubles as
    worker 0), sequentially in index order on the fallback.  [body]
    must not raise — worker loops catch everything internally. *)
val run_workers : int -> (int -> unit) -> unit
