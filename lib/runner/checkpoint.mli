(** JSONL checkpoints for resumable campaigns
    (schema ["elastic-speculation/checkpoint/v1"]).

    Line 1 is a header object identifying the campaign (name, shard
    count, seed and — when launched from the shell — the command string
    a [runner resume] re-executes).  Every later line is one completed
    shard: its id, index, attempt count and the exact
    {!Elastic_metrics.Metrics} sample snapshot it produced.  Entries are
    appended (and fsynced per line by the runner's lock discipline) as
    shards finish, so a killed run loses at most the line it was writing
    — {!load} tolerates a truncated final line and reports it, while a
    corrupt {e interior} line is a hard [Error] naming the line number
    and byte offset. *)

val schema : string

type header = {
  campaign : string;
  command : string option;  (** shell command to re-run on resume *)
  shards : int;
  seed : int;
}

type entry = {
  e_id : string;  (** task id — the resume match key *)
  e_index : int;
  e_attempts : int;
  e_seconds : float;
      (** wall seconds of the completing attempt; 0.0 when loaded from
          a pre-spans checkpoint that lacks the field *)
  e_samples : Elastic_metrics.Metrics.sample list;
}

type t = {
  header : header;
  entries : entry list;  (** in file order *)
  truncated : bool;  (** final line was cut off and dropped *)
}

val header_to_json : header -> Elastic_metrics.Json.t

val entry_to_json : entry -> Elastic_metrics.Json.t

val entry_of_json : Elastic_metrics.Json.t -> (entry, string) result

(** Atomically (re)create [path] holding the header plus [entries] —
    used at run start to seed a fresh file or carry adopted entries
    forward. *)
val write : path:string -> header -> entry list -> unit

(** Append one completed-shard line.  The file must exist. *)
val append : path:string -> entry -> unit

(** Never raises on bad content; I/O errors and malformed interior
    lines come back as [Error]. *)
val load : string -> (t, string) result

(** Human completeness summary: shards done / total, truncation flag,
    then a per-shard outcome digest from the entries — completed /
    retried / missing counts, total attempts and wall seconds, and the
    slowest checkpointed shard. *)
val pp_status : Format.formatter -> t -> unit
