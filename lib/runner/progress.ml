module Metrics = Elastic_metrics.Metrics
module Clock = Elastic_sim.Clock

type state =
  | Pending
  | Running
  | Completed
  | Failed

type counts = {
  c_pending : int;
  c_running : int;
  c_completed : int;
  c_failed : int;
}

(* One slot per shard, written only by the worker executing that shard
   (plain stores, no locks — see the .mli for the tearing contract). *)
type slot = {
  mutable s_state : state;
  mutable s_attempts : int;
  mutable s_worker : int;
  mutable s_beat_ns : int64;
  mutable s_seconds : float;
  mutable s_samples : Metrics.sample list;
  mutable s_resumed : bool;
}

type t = {
  p_name : string;
  p_ids : string array;
  p_clock : Clock.t;
  p_started_ns : int64;
  p_slots : slot array;
}

let create ?(clock = Clock.monotonic) ~name ~ids () =
  { p_name = name;
    p_ids = Array.copy ids;
    p_clock = clock;
    p_started_ns = clock ();
    p_slots =
      Array.init (Array.length ids) (fun _ ->
          { s_state = Pending; s_attempts = 0; s_worker = -1;
            s_beat_ns = 0L; s_seconds = 0.0; s_samples = [];
            s_resumed = false }) }

let name t = t.p_name

let shards t = Array.length t.p_slots

let clock t = t.p_clock

let check t shard =
  if shard < 0 || shard >= Array.length t.p_slots then
    invalid_arg
      (Fmt.str "Progress: shard %d out of range [0, %d)" shard
         (Array.length t.p_slots))

let shard_id t i =
  check t i;
  t.p_ids.(i)

let start_shard t ~shard ~worker ~attempt =
  check t shard;
  let s = t.p_slots.(shard) in
  s.s_worker <- worker;
  s.s_attempts <- attempt;
  s.s_beat_ns <- t.p_clock ();
  s.s_state <- Running

let beat_at t ~shard now =
  check t shard;
  t.p_slots.(shard).s_beat_ns <- now

let beat t ~shard = beat_at t ~shard (t.p_clock ())

let complete t ~shard ~seconds samples =
  check t shard;
  let s = t.p_slots.(shard) in
  s.s_samples <- samples;
  s.s_seconds <- seconds;
  s.s_beat_ns <- t.p_clock ();
  s.s_state <- Completed

let fail t ~shard =
  check t shard;
  let s = t.p_slots.(shard) in
  s.s_beat_ns <- t.p_clock ();
  s.s_state <- Failed

let adopt t ~shard samples =
  check t shard;
  let s = t.p_slots.(shard) in
  s.s_samples <- samples;
  s.s_resumed <- true;
  s.s_state <- Completed

let state t i =
  check t i;
  t.p_slots.(i).s_state

let attempts t i =
  check t i;
  t.p_slots.(i).s_attempts

let last_beat_ns t i =
  check t i;
  t.p_slots.(i).s_beat_ns

let counts t =
  Array.fold_left
    (fun c s ->
       match s.s_state with
       | Pending -> { c with c_pending = c.c_pending + 1 }
       | Running -> { c with c_running = c.c_running + 1 }
       | Completed -> { c with c_completed = c.c_completed + 1 }
       | Failed -> { c with c_failed = c.c_failed + 1 })
    { c_pending = 0; c_running = 0; c_completed = 0; c_failed = 0 }
    t.p_slots

let attempts_total t =
  Array.fold_left (fun acc s -> acc + s.s_attempts) 0 t.p_slots

let retried t =
  Array.fold_left
    (fun acc s ->
       if s.s_state = Completed && s.s_attempts > 1 then acc + 1 else acc)
    0 t.p_slots

let resumed t =
  Array.fold_left
    (fun acc s -> if s.s_resumed then acc + 1 else acc)
    0 t.p_slots

let merged t =
  Array.fold_left
    (fun acc s ->
       if s.s_state = Completed then Metrics.merge acc s.s_samples else acc)
    [] t.p_slots

let elapsed_seconds t =
  Clock.seconds_between t.p_started_ns (t.p_clock ())

let eta_seconds t =
  let c = counts t in
  let done_live =
    (* Adopted shards completed instantly and would skew the rate. *)
    c.c_completed - resumed t
  in
  if done_live <= 0 then None
  else
    let remaining = c.c_pending + c.c_running in
    Some (elapsed_seconds t /. float_of_int done_live
          *. float_of_int remaining)

let slowest t =
  let best = ref None in
  Array.iteri
    (fun i s ->
       if s.s_state = Completed then
         match !best with
         | Some (_, _, secs, _) when secs >= s.s_seconds -> ()
         | _ -> best := Some (t.p_ids.(i), i, s.s_seconds, s.s_attempts))
    t.p_slots;
  !best
