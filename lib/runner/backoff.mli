(** Seeded exponential backoff for shard retries.

    Delays are a pure function of (policy, rng state, attempt), so a
    campaign replayed with the same seed retries on exactly the same
    schedule — a property the crash-recovery equivalence suite leans
    on.  Jitter is drawn from the runner's {!Elastic_sim.Rng}, never
    from the global [Random] state. *)

type policy = {
  base : float;  (** seconds before the first retry *)
  factor : float;  (** multiplier per further attempt *)
  max_delay : float;  (** cap on the undithered delay, seconds *)
  jitter_pct : int;  (** dither amplitude, +-percent of the delay *)
}

(** 50 ms doubling up to 2 s, +-25% jitter. *)
val default : policy

(** @raise Invalid_argument on non-positive [base]/[factor], negative
    [max_delay], or [jitter_pct] outside [0, 100]. *)
val v :
  base:float -> factor:float -> max_delay:float -> jitter_pct:int -> policy

(** [delay policy ~rng ~attempt] — seconds to wait before retry number
    [attempt] (1-based: [attempt = 1] is the first retry).  Always
    non-negative; consumes exactly one draw from [rng]. *)
val delay : policy -> rng:Elastic_sim.Rng.t -> attempt:int -> float
