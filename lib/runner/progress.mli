(** Live progress plane for a running campaign.

    The runner's {!Runner.report} is post-hoc: nothing is visible until
    every shard finished.  A {!t} is the live counterpart — a
    preallocated array of per-shard slots that executing workers update
    in place as they go (state, attempt count, heartbeat timestamp,
    completed samples), read concurrently by the telemetry plane
    ([lib/telemetry]'s [/status] and [/metrics] endpoints and the
    heartbeat watchdog).

    Writer discipline mirrors the span recorders: every slot has exactly
    {e one} writer at a time — the worker currently executing that shard
    — and writes are plain mutable-field stores with no locks, so the
    runner's hot path pays one array-indexed store per update and
    nothing when no progress plane is attached.  Readers (the telemetry
    server thread) may observe a slot mid-update; every exported value
    is independently meaningful, so a torn read degrades to a
    momentarily stale snapshot, never to corruption.

    Heartbeats share the runner's injectable {!Elastic_sim.Clock}:
    {!beat_at} stores a timestamp the caller already read (the runner
    reuses the reading its deadline check just made, so attaching a
    progress plane adds zero clock reads to the shard loop), and the
    watchdog compares those stamps against the same clock — which makes
    stall detection deterministic under [Clock.ticker] in tests. *)

type state =
  | Pending  (** not started (or retrying after a failed attempt) *)
  | Running
  | Completed
  | Failed

type counts = {
  c_pending : int;
  c_running : int;
  c_completed : int;
  c_failed : int;
}

type t

(** [create ~name ~ids ()] — one slot per shard, all [Pending].
    @param clock shared time source for heartbeats and elapsed time
      (default [Elastic_sim.Clock.monotonic]); the watchdog must use
      the same clock. *)
val create :
  ?clock:Elastic_sim.Clock.t -> name:string -> ids:string array -> unit -> t

val name : t -> string

val shards : t -> int

val clock : t -> Elastic_sim.Clock.t

val shard_id : t -> int -> string

(** {1 Writer side (the executing worker)} *)

(** Marks the shard [Running], records worker/attempt and beats. *)
val start_shard : t -> shard:int -> worker:int -> attempt:int -> unit

(** Heartbeat with a timestamp the caller already holds. *)
val beat_at : t -> shard:int -> int64 -> unit

(** Heartbeat reading the progress clock. *)
val beat : t -> shard:int -> unit

(** Final states.  [complete] stores the shard's exact sample snapshot
    (merged live by {!merged}) and its attempt wall seconds. *)
val complete :
  t -> shard:int -> seconds:float ->
  Elastic_metrics.Metrics.sample list -> unit

val fail : t -> shard:int -> unit

(** Checkpoint adoption at resume: [Completed] without ever running. *)
val adopt : t -> shard:int -> Elastic_metrics.Metrics.sample list -> unit

(** {1 Reader side (telemetry)} *)

val state : t -> int -> state

val attempts : t -> int -> int

(** Last heartbeat, [0L] before the first. *)
val last_beat_ns : t -> int -> int64

val counts : t -> counts

(** Attempt starts summed over all shards. *)
val attempts_total : t -> int

(** Shards completed after more than one attempt. *)
val retried : t -> int

(** Shards adopted from a checkpoint. *)
val resumed : t -> int

(** Completed shards' samples folded with [Metrics.merge] in index
    order — the same merge the final report performs, over the prefix
    that exists right now. *)
val merged : t -> Elastic_metrics.Metrics.sample list

(** Seconds since {!create} on the progress clock. *)
val elapsed_seconds : t -> float

(** Naive completion-rate extrapolation over the remaining shards;
    [None] until a non-adopted shard completes. *)
val eta_seconds : t -> float option

(** Slowest completed shard as [(id, index, seconds, attempts)]. *)
val slowest : t -> (string * int * float * int) option
