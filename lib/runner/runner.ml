open Elastic_sim
module Metrics = Elastic_metrics.Metrics
module Json = Elastic_metrics.Json
module Span = Elastic_obs.Span
module Recorder = Elastic_obs.Recorder
module Collector = Elastic_obs.Collector

exception Deadline_exceeded of string

exception Killed of string

type ctx = {
  shard_id : string;
  shard_index : int;
  attempt : int;
  check_deadline : unit -> unit;
  obs : (Recorder.t * int) option;
}

type task = {
  id : string;
  work : ctx -> Metrics.sample list;
}

type classification =
  | Transient
  | Permanent

let default_classify = function
  | Engine.Simulation_error _ | Elastic_netlist.Diagnostic.Reject _
  | Invalid_argument _ | Failure _ | Assert_failure _ ->
    Permanent
  | Deadline_exceeded _ | Killed _ | _ -> Transient

type failure = {
  f_exn : string;
  f_class : classification;
}

type status =
  | Completed of Metrics.sample list
  | Failed of failure
  | Not_run

type shard = {
  sh_id : string;
  sh_index : int;
  sh_status : status;
  sh_attempts : int;
  sh_worker : int;
  sh_resumed : bool;
}

type worker_stats = {
  w_tasks : int;
  w_completed : int;
  w_retries : int;
  w_timeouts : int;
  w_steals : int;
}

type report = {
  r_name : string;
  r_shards : shard list;
  r_merged : Metrics.sample list;
  r_completed : int;
  r_failed : int;
  r_not_run : int;
  r_resumed : int;
  r_workers : worker_stats array;
  r_stopped : bool;
}

let class_name = function
  | Transient -> "transient"
  | Permanent -> "permanent"

(* Mutable per-worker accounting, touched only by the owning worker. *)
type w_acc = {
  mutable a_tasks : int;
  mutable a_completed : int;
  mutable a_retries : int;
  mutable a_timeouts : int;
  mutable a_steals : int;
}

let run ?workers ?(max_attempts = 3) ?(backoff = Backoff.default)
    ?(seed = 2009) ?(classify = default_classify) ?shard_deadline
    ?campaign_deadline ?(clock = Clock.monotonic) ?(sleep = Unix.sleepf)
    ?checkpoint ?resume ?command ?stop_after ?registry ?obs ?progress
    ~name tasks =
  let nw =
    match workers with
    | Some w when w <= 0 -> invalid_arg "Runner.run: non-positive workers"
    | Some w -> w
    | None -> Pool_backend.recommended ()
  in
  if max_attempts < 1 then
    invalid_arg "Runner.run: max_attempts must be >= 1";
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  (match progress with
   | Some p when Progress.shards p <> n ->
     invalid_arg
       (Fmt.str "Runner.run: progress plane has %d shards, campaign has %d"
          (Progress.shards p) n)
   | Some _ | None -> ());
  let ids = Hashtbl.create n in
  Array.iter
    (fun t ->
       if Hashtbl.mem ids t.id then
         invalid_arg (Fmt.str "Runner.run: duplicate task id %S" t.id);
       Hashtbl.add ids t.id ())
    tasks;
  let start = clock () in
  (* Adopt checkpointed shards: matched by task id, never re-run. *)
  let adopted = Hashtbl.create 16 in
  (match resume with
   | None -> ()
   | Some (cp : Checkpoint.t) ->
     List.iter
       (fun (e : Checkpoint.entry) ->
          if Hashtbl.mem ids e.e_id then
            Hashtbl.replace adopted e.e_id e)
       cp.entries);
  let statuses = Array.make n Not_run in
  let attempts = Array.make n 0 in
  let finished_by = Array.make n (-1) in
  let resumed = Array.make n false in
  let carried = ref [] in
  Array.iteri
    (fun i t ->
       match Hashtbl.find_opt adopted t.id with
       | Some (e : Checkpoint.entry) ->
         statuses.(i) <- Completed e.e_samples;
         resumed.(i) <- true;
         (match progress with
          | Some p -> Progress.adopt p ~shard:i e.e_samples
          | None -> ());
         carried := { e with Checkpoint.e_index = i } :: !carried
       | None -> ())
    tasks;
  let carried = List.rev !carried in
  (* Seed (or re-seed) the checkpoint file with the header plus carried
     entries, atomically; workers then append one line per shard. *)
  let global = Pool_backend.create_lock () in
  (match checkpoint with
   | None -> ()
   | Some path ->
     Checkpoint.write ~path
       { Checkpoint.campaign = name; command; shards = n; seed }
       carried);
  (* Per-worker deques of shard indices: shard i starts on worker
     [i mod nw]; idle workers steal from siblings. *)
  let deques = Array.make nw [] in
  let deque_locks = Array.init nw (fun _ -> Pool_backend.create_lock ()) in
  for i = n - 1 downto 0 do
    if not resumed.(i) then
      let w = i mod nw in
      deques.(w) <- i :: deques.(w)
  done;
  let stats =
    Array.init nw (fun _ ->
        { a_tasks = 0; a_completed = 0; a_retries = 0; a_timeouts = 0;
          a_steals = 0 })
  in
  let stopped = ref false in
  let completions = ref 0 in
  (* Span ledger: one single-writer recorder per worker, a campaign
     root on track 0 entered before the workers start and left after
     they join (no concurrent writer either side of the run). *)
  (match obs with
   | Some c -> Collector.prepare c ~tracks:nw
   | None -> ());
  let orec w =
    match obs with None -> None | Some c -> Some (Collector.track c w)
  in
  let camp_scope =
    match orec 0 with
    | None -> None
    | Some r0 ->
      Some
        (Recorder.enter r0 Span.Campaign name
           ~attrs:
             [ ("workers", Span.Int nw);
               ("shards", Span.Int n);
               ("resumed", Span.Int (List.length carried)) ])
  in
  let camp_id =
    match camp_scope with
    | Some sc -> Recorder.id sc
    | None -> Span.no_parent
  in
  let note_completion ?ckpt_span e =
    Pool_backend.with_lock global (fun () ->
        incr completions;
        (match checkpoint with
         | Some path -> (
             match ckpt_span with
             | Some (r, parent) ->
               let sc =
                 Recorder.enter r ~parent Span.Checkpoint_write
                   "checkpoint-write"
               in
               Checkpoint.append ~path e;
               Recorder.leave r sc
             | None -> Checkpoint.append ~path e)
         | None -> ());
        match stop_after with
        | Some k when !completions >= k -> stopped := true
        | Some _ | None -> ())
  in
  let campaign_expired now =
    match campaign_deadline with
    | Some d -> Clock.seconds_between start now > d
    | None -> false
  in
  let pop_own w =
    Pool_backend.with_lock deque_locks.(w) (fun () ->
        match deques.(w) with
        | [] -> None
        | i :: rest ->
          deques.(w) <- rest;
          Some i)
  in
  let steal thief =
    let rec try_from k =
      if k >= nw then None
      else
        let victim = (thief + k) mod nw in
        match
          Pool_backend.with_lock deque_locks.(victim) (fun () ->
              match List.rev deques.(victim) with
              | [] -> None
              | i :: rest_rev ->
                deques.(victim) <- List.rev rest_rev;
                Some i)
        with
        | Some i -> Some i
        | None -> try_from (k + 1)
    in
    try_from 1
  in
  let take w =
    if Pool_backend.with_lock global (fun () -> !stopped) then None
    else if campaign_expired (clock ()) then begin
      Pool_backend.with_lock global (fun () -> stopped := true);
      None
    end
    else
      match pop_own w with
      | Some i -> Some (i, false)
      | None -> (
          match steal w with
          | Some i -> Some (i, true)
          | None -> None)
  in
  let run_shard w rng ~stolen i =
    let t = tasks.(i) in
    let r = orec w in
    let shard_scope =
      match r with
      | None -> None
      | Some rc ->
        Some
          (Recorder.enter rc ~parent:camp_id Span.Shard t.id
             ~attrs:
               [ ("worker", Span.Int w);
                 ("index", Span.Int i);
                 ("stolen", Span.Bool stolen) ])
    in
    let shard_id =
      match shard_scope with
      | Some sc -> Recorder.id sc
      | None -> Span.no_parent
    in
    let rec attempt_loop attempt =
      stats.(w).a_tasks <- stats.(w).a_tasks + 1;
      attempts.(i) <- attempt;
      (match progress with
       | Some p -> Progress.start_shard p ~shard:i ~worker:w ~attempt
       | None -> ());
      let attempt_start = clock () in
      let att_scope =
        match r with
        | None -> None
        | Some rc ->
          Some
            (Recorder.enter rc ~parent:shard_id Span.Attempt
               (Fmt.str "attempt-%d" attempt)
               ~attrs:[ ("attempt", Span.Int attempt) ])
      in
      (* Deadline margin at the attempt's end: how much of the shard's
         wall-clock budget was left (negative when it fired). *)
      let leave_attempt () =
        match (r, att_scope) with
        | Some rc, Some sc ->
          (match shard_deadline with
           | Some d ->
             Recorder.add_attr sc "deadline_margin_s"
               (Span.Float
                  (d -. Clock.seconds_between attempt_start (clock ())))
           | None -> ());
          Recorder.leave rc sc
        | _ -> ()
      in
      let check_deadline () =
        let now = clock () in
        (* Heartbeat for the telemetry watchdog, reusing the reading the
           deadline check just made — no extra clock traffic. *)
        (match progress with
         | Some p -> Progress.beat_at p ~shard:i now
         | None -> ());
        if campaign_expired now then
          raise
            (Deadline_exceeded
               (Fmt.str "campaign %S wall-clock deadline exceeded" name));
        match shard_deadline with
        | Some d when Clock.seconds_between attempt_start now > d ->
          raise
            (Deadline_exceeded
               (Fmt.str
                  "shard %S attempt %d exceeded its %gs wall-clock budget"
                  t.id attempt d))
        | Some _ | None -> ()
      in
      let ctx =
        { shard_id = t.id; shard_index = i; attempt; check_deadline;
          obs =
            (match (r, att_scope) with
             | Some rc, Some sc -> Some (rc, Recorder.id sc)
             | _ -> None) }
      in
      match t.work ctx with
      | samples ->
        statuses.(i) <- Completed samples;
        finished_by.(i) <- w;
        stats.(w).a_completed <- stats.(w).a_completed + 1;
        let seconds = Clock.seconds_between attempt_start (clock ()) in
        (match progress with
         | Some p -> Progress.complete p ~shard:i ~seconds samples
         | None -> ());
        Option.iter
          (fun sc -> Recorder.add_attr sc "status" (Span.Str "ok"))
          att_scope;
        note_completion
          ?ckpt_span:
            (match (r, att_scope) with
             | Some rc, Some sc -> Some (rc, Recorder.id sc)
             | _ -> None)
          { Checkpoint.e_id = t.id; e_index = i; e_attempts = attempt;
            e_seconds = seconds;
            e_samples = samples };
        leave_attempt ()
      | exception e ->
        (match e with
         | Deadline_exceeded _ ->
           stats.(w).a_timeouts <- stats.(w).a_timeouts + 1
         | _ -> ());
        let cls = classify e in
        (match att_scope with
         | Some sc ->
           Recorder.add_attr sc "status" (Span.Str "failed");
           Recorder.add_attr sc "class" (Span.Str (class_name cls));
           Recorder.add_attr sc "error" (Span.Str (Printexc.to_string e))
         | None -> ());
        if cls = Transient && attempt < max_attempts then begin
          stats.(w).a_retries <- stats.(w).a_retries + 1;
          let delay = Backoff.delay backoff ~rng ~attempt in
          (match (r, att_scope) with
           | Some rc, Some sc ->
             let bsc =
               Recorder.enter rc ~parent:(Recorder.id sc)
                 Span.Backoff_sleep "backoff-sleep"
                 ~attrs:
                   [ ("delay_s", Span.Float delay);
                     ("attempt", Span.Int attempt) ]
             in
             sleep delay;
             Recorder.leave rc bsc
           | _ -> sleep delay);
          leave_attempt ();
          attempt_loop (attempt + 1)
        end
        else begin
          statuses.(i) <-
            Failed { f_exn = Printexc.to_string e; f_class = cls };
          finished_by.(i) <- w;
          (match progress with
           | Some p -> Progress.fail p ~shard:i
           | None -> ());
          leave_attempt ()
        end
    in
    attempt_loop 1;
    match (r, shard_scope) with
    | Some rc, Some sc ->
      Recorder.add_attr sc "attempts" (Span.Int attempts.(i));
      Recorder.add_attr sc "status"
        (Span.Str
           (match statuses.(i) with
            | Completed _ -> "completed"
            | Failed _ -> "failed"
            | Not_run -> "not-run"));
      Recorder.leave rc sc
    | _ -> ()
  in
  let body w =
    (* Worker-local jitter stream: distinct per worker, reproducible
       from the campaign seed. *)
    let rng = Rng.create ~seed:(seed + (7919 * w)) in
    let rec loop () =
      match take w with
      | None -> ()
      | Some (i, stolen) ->
        if stolen then stats.(w).a_steals <- stats.(w).a_steals + 1;
        run_shard w rng ~stolen i;
        loop ()
    in
    loop ()
  in
  if n > 0 then Pool_backend.run_workers nw body;
  (* Close the campaign root and derive the scheduling gauges while the
     wall time is at hand. *)
  let campaign_wall_seconds =
    match (orec 0, camp_scope) with
    | Some r0, Some sc ->
      let wall =
        Clock.seconds_between (Recorder.start_ns sc) (Recorder.now r0)
      in
      Recorder.leave r0 sc;
      wall
    | _ -> 0.0
  in
  (match (obs, registry) with
   | Some c, Some reg ->
     Collector.note_gauges c ~wall_seconds:campaign_wall_seconds reg
   | _ -> ());
  (* Assemble the report: shards in index order, merge in index order —
     this is what makes merged results worker-count-independent. *)
  let shards =
    List.init n (fun i ->
        { sh_id = tasks.(i).id;
          sh_index = i;
          sh_status = statuses.(i);
          sh_attempts = attempts.(i);
          sh_worker = finished_by.(i);
          sh_resumed = resumed.(i) })
  in
  let merged =
    List.fold_left
      (fun acc sh ->
         match sh.sh_status with
         | Completed samples -> Metrics.merge acc samples
         | Failed _ | Not_run -> acc)
      [] shards
  in
  let count p = List.length (List.filter p shards) in
  let workers_stats =
    Array.map
      (fun a ->
         { w_tasks = a.a_tasks; w_completed = a.a_completed;
           w_retries = a.a_retries; w_timeouts = a.a_timeouts;
           w_steals = a.a_steals })
      stats
  in
  (match registry with
   | None -> ()
   | Some reg ->
     Array.iteri
       (fun w a ->
          let labels = [ ("worker", string_of_int w) ] in
          Metrics.Counter.add
            (Metrics.counter reg ~labels
               ~help:"shard attempts started by this worker"
               "elastic_runner_tasks_total")
            a.a_tasks;
          Metrics.Counter.add
            (Metrics.counter reg ~labels
               ~help:"transient-failure retries by this worker"
               "elastic_runner_retries_total")
            a.a_retries;
          Metrics.Counter.add
            (Metrics.counter reg ~labels
               ~help:"wall-clock deadline hits observed by this worker"
               "elastic_runner_timeouts_total")
            a.a_timeouts;
          Metrics.Counter.add
            (Metrics.counter reg ~labels
               ~help:"tasks stolen from sibling deques"
               "elastic_runner_steals_total")
            a.a_steals)
       stats);
  { r_name = name;
    r_shards = shards;
    r_merged = merged;
    r_completed = count (fun s -> match s.sh_status with
        | Completed _ -> true | _ -> false);
    r_failed = count (fun s -> match s.sh_status with
        | Failed _ -> true | _ -> false);
    r_not_run = count (fun s -> s.sh_status = Not_run);
    r_resumed = count (fun s -> s.sh_resumed);
    r_workers = workers_stats;
    r_stopped = Pool_backend.with_lock global (fun () -> !stopped) }

let pp_report ppf r =
  Fmt.pf ppf "campaign %S: %d shards — %d completed" r.r_name
    (List.length r.r_shards) r.r_completed;
  if r.r_resumed > 0 then Fmt.pf ppf " (%d resumed)" r.r_resumed;
  Fmt.pf ppf ", %d failed, %d not run%s@," r.r_failed r.r_not_run
    (if r.r_stopped then " [stopped early]" else "");
  List.iter
    (fun sh ->
       match sh.sh_status with
       | Failed f ->
         Fmt.pf ppf "  shard %s (index %d): FAILED %s after %d attempt%s: %s@,"
           sh.sh_id sh.sh_index (class_name f.f_class) sh.sh_attempts
           (if sh.sh_attempts = 1 then "" else "s")
           f.f_exn
       | Not_run ->
         Fmt.pf ppf "  shard %s (index %d): not run@," sh.sh_id sh.sh_index
       | Completed _ -> ())
    r.r_shards;
  Array.iteri
    (fun w s ->
       Fmt.pf ppf
         "  worker %d: %d attempts, %d completed, %d retries, %d timeouts, \
          %d steals@,"
         w s.w_tasks s.w_completed s.w_retries s.w_timeouts s.w_steals)
    r.r_workers

let report_json r =
  let shard_json sh =
    let status, extra =
      match sh.sh_status with
      | Completed _ -> ("completed", [])
      | Failed f ->
        ( "failed",
          [ ("error", Json.Str f.f_exn);
            ("class", Json.Str (class_name f.f_class)) ] )
      | Not_run -> ("not_run", [])
    in
    Json.Obj
      (( [ ("id", Json.Str sh.sh_id);
           ("index", Json.Int sh.sh_index);
           ("status", Json.Str status);
           ("attempts", Json.Int sh.sh_attempts);
           ("resumed", Json.Bool sh.sh_resumed) ]
         @ extra ))
  in
  let worker_json w s =
    Json.Obj
      [ ("worker", Json.Int w);
        ("tasks", Json.Int s.w_tasks);
        ("completed", Json.Int s.w_completed);
        ("retries", Json.Int s.w_retries);
        ("timeouts", Json.Int s.w_timeouts);
        ("steals", Json.Int s.w_steals) ]
  in
  Json.Obj
    [ ("campaign", Json.Str r.r_name);
      ("shards", Json.Int (List.length r.r_shards));
      ("completed", Json.Int r.r_completed);
      ("failed", Json.Int r.r_failed);
      ("not_run", Json.Int r.r_not_run);
      ("resumed", Json.Int r.r_resumed);
      ("stopped", Json.Bool r.r_stopped);
      ("shard_detail", Json.List (List.map shard_json r.r_shards));
      ("workers",
       Json.List
         (Array.to_list (Array.mapi worker_json r.r_workers))) ]
