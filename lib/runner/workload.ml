open Elastic_fault
module Metrics = Elastic_metrics.Metrics
module Sampler = Elastic_metrics.Sampler
module Recorder = Elastic_obs.Recorder
module Span = Elastic_obs.Span

(* Phase spans are synthesized after the fact from the engine's own
   Profile totals (captured via Recovery.check ~observer), never by
   timing the hot loop here: with spans off the settle loop sees zero
   extra clock reads and zero extra allocation.  The emitted intervals
   are laid end to end from the observed start and clamped to the
   observed end, so they stay well nested under the attempt span even
   when profile totals and wall time disagree by a rounding error. *)
let emit_phases (rc, attempt_id) ~t0 ~t1 profile =
  let ns s = Int64.of_float (s *. 1e9) in
  let c_end =
    let e = Int64.add t0 (ns (Elastic_sim.Profile.compile_seconds profile)) in
    if Int64.compare e t1 > 0 then t1 else e
  in
  Recorder.emit rc ~parent:attempt_id Span.Compile "compile" ~start_ns:t0
    ~end_ns:c_end;
  let s_end =
    let e =
      Int64.add c_end (ns (Elastic_sim.Profile.settle_seconds profile))
    in
    if Int64.compare e t1 > 0 then t1 else e
  in
  Recorder.emit rc ~parent:attempt_id Span.Settle "settle" ~start_ns:c_end
    ~end_ns:s_end

let of_campaign ?cycles ?settle ?alarms ~name net ~scenarios =
  List.mapi
    (fun i faults ->
       { Runner.id = Fmt.str "%s/%04d" name i;
         work =
           (fun (ctx : Runner.ctx) ->
              ctx.check_deadline ();
              let profile = ref None in
              let observer e =
                profile := Some (Elastic_sim.Engine.profile e)
              in
              let t0 =
                match ctx.obs with
                | Some (rc, _) -> Recorder.now rc
                | None -> 0L
              in
              let report =
                Recovery.check ?cycles ?settle ?alarms ~observer net ~faults
              in
              (match ctx.obs, !profile with
               | Some ((rc, _) as obs), Some p ->
                 emit_phases obs ~t0 ~t1:(Recorder.now rc) p
               | (Some _ | None), _ -> ());
              let reg = Metrics.create () in
              Metrics.Counter.inc
                (Metrics.counter reg
                   ~help:"fault scenarios checked"
                   "elastic_fault_scenarios_total");
              Metrics.Counter.add
                (Metrics.counter reg
                   ~help:"faults injected across scenarios"
                   "elastic_fault_injections_total")
                (List.length faults);
              Sampler.note_recovery reg report.Recovery.classification;
              (match report.Recovery.classification with
               | Recovery.Corrected penalty ->
                 Elastic_metrics.Histogram.observe
                   (Metrics.histogram reg
                      ~help:"extra delay of corrected scenarios, cycles"
                      "elastic_fault_recovery_penalty_cycles")
                   penalty
               | Recovery.Masked | Recovery.Detected _
               | Recovery.Silent_corruption _ | Recovery.Deadlock _
               | Recovery.Crashed _ -> ());
              Metrics.snapshot reg) })
    scenarios

let classification_histogram samples =
  List.filter_map
    (fun (s : Metrics.sample) ->
       if String.equal s.m_name "elastic_fault_recovery_total" then
         match s.m_labels, s.m_value with
         | [ ("class", label) ], Metrics.Counter c -> Some (label, c)
         | _, _ -> None
       else None)
    samples
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
