open Elastic_fault
module Metrics = Elastic_metrics.Metrics
module Sampler = Elastic_metrics.Sampler

let of_campaign ?cycles ?settle ?alarms ~name net ~scenarios =
  List.mapi
    (fun i faults ->
       { Runner.id = Fmt.str "%s/%04d" name i;
         work =
           (fun (ctx : Runner.ctx) ->
              ctx.check_deadline ();
              let report = Recovery.check ?cycles ?settle ?alarms net ~faults in
              let reg = Metrics.create () in
              Metrics.Counter.inc
                (Metrics.counter reg
                   ~help:"fault scenarios checked"
                   "elastic_fault_scenarios_total");
              Metrics.Counter.add
                (Metrics.counter reg
                   ~help:"faults injected across scenarios"
                   "elastic_fault_injections_total")
                (List.length faults);
              Sampler.note_recovery reg report.Recovery.classification;
              (match report.Recovery.classification with
               | Recovery.Corrected penalty ->
                 Elastic_metrics.Histogram.observe
                   (Metrics.histogram reg
                      ~help:"extra delay of corrected scenarios, cycles"
                      "elastic_fault_recovery_penalty_cycles")
                   penalty
               | Recovery.Masked | Recovery.Detected _
               | Recovery.Silent_corruption _ | Recovery.Deadlock _
               | Recovery.Crashed _ -> ());
              Metrics.snapshot reg) })
    scenarios

let classification_histogram samples =
  List.filter_map
    (fun (s : Metrics.sample) ->
       if String.equal s.m_name "elastic_fault_recovery_total" then
         match s.m_labels, s.m_value with
         | [ ("class", label) ], Metrics.Counter c -> Some (label, c)
         | _, _ -> None
       else None)
    samples
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
