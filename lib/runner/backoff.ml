open Elastic_sim

type policy = {
  base : float;
  factor : float;
  max_delay : float;
  jitter_pct : int;
}

let v ~base ~factor ~max_delay ~jitter_pct =
  if base <= 0.0 then invalid_arg "Backoff.v: base must be positive";
  if factor <= 0.0 then invalid_arg "Backoff.v: factor must be positive";
  if max_delay < 0.0 then invalid_arg "Backoff.v: negative max_delay";
  if jitter_pct < 0 || jitter_pct > 100 then
    invalid_arg "Backoff.v: jitter_pct outside [0, 100]";
  { base; factor; max_delay; jitter_pct }

let default = v ~base:0.05 ~factor:2.0 ~max_delay:2.0 ~jitter_pct:25

let delay p ~rng ~attempt =
  let attempt = if attempt < 1 then 1 else attempt in
  let d = p.base *. (p.factor ** float_of_int (attempt - 1)) in
  let d = if d > p.max_delay then p.max_delay else d in
  (* One draw always, so the rng stream stays aligned across replays
     even when jitter is disabled. *)
  let draw = Rng.int rng (2001 * (p.jitter_pct + 1)) in
  if p.jitter_pct = 0 then d
  else begin
    (* Uniform in [-jitter_pct, +jitter_pct] percent, millipercent
       granularity. *)
    let span = 2000 * p.jitter_pct in
    let off = (draw mod (span + 1)) - (1000 * p.jitter_pct) in
    let jittered = d *. (1.0 +. (float_of_int off /. 100_000.0)) in
    if jittered < 0.0 then 0.0 else jittered
  end
