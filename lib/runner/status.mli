(** The campaign status document
    (schema ["elastic-speculation/status/v1"]).

    One JSON shape serves two sources: the telemetry server's live
    [GET /status] (rendered from a {!Progress} plane mid-campaign) and
    the shell's [runner status --json] (rendered from a {!Checkpoint}
    after the fact).  Core fields are identical so dashboards and CI
    validators parse both without caring which side produced them:

    - [schema], [source] ("live" | "checkpoint" | "idle"), [campaign];
    - shard counts: [shards], [pending], [running], [completed],
      [failed] — always summing to [shards] — plus [resumed] and
      [retried];
    - [attempts], [elapsed_seconds], [eta_seconds] (null when unknown);
    - watchdog health: [healthy], [stalls];
    - [workers]: per-worker utilization objects (empty without a span
      collector);
    - [slowest]: the slowest completed shard, or null. *)

val schema : string

(** Live form.  [None] renders an idle document (zero shards, healthy).
    @param healthy watchdog verdict (default [true]).
    @param stalls watchdog stall count (default [0]).
    @param utilization per-worker busy fractions from
      [Elastic_obs.Collector.utilization]. *)
val of_progress :
  ?healthy:bool ->
  ?stalls:int ->
  ?utilization:(int * float) list ->
  Progress.t option ->
  Elastic_metrics.Json.t

(** Post-hoc form from a checkpoint file.  Only completed shards reach
    a checkpoint, so shards absent from it count as [pending] (the
    resume work list) and [running]/[failed] are zero. *)
val of_checkpoint : Checkpoint.t -> Elastic_metrics.Json.t
