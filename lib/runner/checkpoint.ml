module Json = Elastic_metrics.Json
module Metrics = Elastic_metrics.Metrics

let schema = "elastic-speculation/checkpoint/v1"

type header = {
  campaign : string;
  command : string option;
  shards : int;
  seed : int;
}

type entry = {
  e_id : string;
  e_index : int;
  e_attempts : int;
  e_seconds : float;
  e_samples : Metrics.sample list;
}

type t = {
  header : header;
  entries : entry list;
  truncated : bool;
}

let header_to_json h =
  Json.Obj
    [ ("schema", Json.Str schema);
      ("campaign", Json.Str h.campaign);
      ("command",
       match h.command with Some c -> Json.Str c | None -> Json.Null);
      ("shards", Json.Int h.shards);
      ("seed", Json.Int h.seed) ]

let header_of_json j =
  let ( let* ) = Result.bind in
  let* () =
    match Json.member "schema" j with
    | Some (Json.Str s) when String.equal s schema -> Ok ()
    | Some (Json.Str s) ->
      Error (Fmt.str "unsupported checkpoint schema %S (want %S)" s schema)
    | Some _ | None -> Error "checkpoint header has no \"schema\" field"
  in
  let* campaign =
    match Json.member "campaign" j with
    | Some (Json.Str s) -> Ok s
    | Some _ | None -> Error "checkpoint header: bad \"campaign\" field"
  in
  let* command =
    match Json.member "command" j with
    | Some (Json.Str s) -> Ok (Some s)
    | Some Json.Null | None -> Ok None
    | Some _ -> Error "checkpoint header: bad \"command\" field"
  in
  let* shards =
    match Json.member "shards" j with
    | Some (Json.Int i) when i >= 0 -> Ok i
    | Some _ | None -> Error "checkpoint header: bad \"shards\" field"
  in
  let* seed =
    match Json.member "seed" j with
    | Some (Json.Int i) -> Ok i
    | Some _ | None -> Error "checkpoint header: bad \"seed\" field"
  in
  Ok { campaign; command; shards; seed }

let entry_to_json e =
  Json.Obj
    [ ("shard", Json.Str e.e_id);
      ("index", Json.Int e.e_index);
      ("attempts", Json.Int e.e_attempts);
      ("seconds", Json.Float e.e_seconds);
      ("samples", Metrics.samples_to_json e.e_samples) ]

let entry_of_json j =
  let ( let* ) = Result.bind in
  let* id =
    match Json.member "shard" j with
    | Some (Json.Str s) -> Ok s
    | Some _ | None -> Error "entry: bad \"shard\" field"
  in
  let* index =
    match Json.member "index" j with
    | Some (Json.Int i) when i >= 0 -> Ok i
    | Some _ | None -> Error "entry: bad \"index\" field"
  in
  let* attempts =
    match Json.member "attempts" j with
    | Some (Json.Int i) when i >= 1 -> Ok i
    | Some _ | None -> Error "entry: bad \"attempts\" field"
  in
  (* Absent in pre-spans checkpoints: default 0.0, still loadable. *)
  let* seconds =
    match Json.member "seconds" j with
    | Some s -> (
        match Json.to_float s with
        | Some f when f >= 0.0 -> Ok f
        | Some _ | None -> Error "entry: bad \"seconds\" field")
    | None -> Ok 0.0
  in
  let* samples =
    match Json.member "samples" j with
    | Some s -> Metrics.samples_of_json s
    | None -> Error "entry: \"samples\" field missing"
  in
  Ok { e_id = id; e_index = index; e_attempts = attempts;
       e_seconds = seconds; e_samples = samples }

let write ~path header entries =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
       output_string oc (Json.to_string (header_to_json header));
       output_char oc '\n';
       List.iter
         (fun e ->
            output_string oc (Json.to_string (entry_to_json e));
            output_char oc '\n')
         entries;
       flush oc);
  Sys.rename tmp path

let append ~path e =
  let oc =
    open_out_gen [ Open_append; Open_wronly ] 0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
       output_string oc (Json.to_string (entry_to_json e));
       output_char oc '\n';
       flush oc)

let load path =
  let ( let* ) = Result.bind in
  let* contents =
    match In_channel.with_open_bin path In_channel.input_all with
    | s -> Ok s
    | exception Sys_error msg -> Error msg
  in
  (* A file killed mid-append may end without a newline: the final
     fragment is recoverable data loss, not corruption. *)
  let ends_nl =
    String.length contents > 0
    && contents.[String.length contents - 1] = '\n'
  in
  let lines = String.split_on_char '\n' contents in
  let lines = List.filter (fun l -> String.length l > 0) lines in
  match lines with
  | [] -> Error "empty checkpoint file"
  | header_line :: entry_lines ->
    let* header =
      match Json.parse header_line with
      | Ok j -> header_of_json j
      | Error e -> Error (Fmt.str "header line: %s" e)
    in
    let rec go acc lineno = function
      | [] -> Ok (List.rev acc, false)
      | line :: rest -> (
          let last = rest = [] in
          match Json.parse line with
          | Ok j -> (
              match entry_of_json j with
              | Ok e -> go (e :: acc) (lineno + 1) rest
              | Error _ when last && not ends_nl -> Ok (List.rev acc, true)
              | Error e -> Error (Fmt.str "line %d: %s" lineno e))
          | Error _ when last && not ends_nl -> Ok (List.rev acc, true)
          | Error e -> Error (Fmt.str "line %d: %s" lineno e))
    in
    let* entries, truncated = go [] 2 entry_lines in
    Ok { header; entries; truncated }

let pp_status ppf t =
  Fmt.pf ppf "@[<v>";
  Fmt.pf ppf "campaign %S: %d/%d shards checkpointed%s%a" t.header.campaign
    (List.length t.entries) t.header.shards
    (if t.truncated then " (final line truncated, dropped)" else "")
    (fun ppf -> function
       | Some c -> Fmt.pf ppf "; resume command: %S" c
       | None -> ())
    t.header.command;
  (* Per-shard outcomes.  Only completed shards reach the file, so
     "missing" covers both failed and never-started shards — the resume
     work list. *)
  (match t.entries with
  | [] -> ()
  | e0 :: _ ->
    let completed = List.length t.entries in
    let retried =
      List.length (List.filter (fun e -> e.e_attempts > 1) t.entries)
    in
    let missing = max 0 (t.header.shards - completed) in
    let attempts_total =
      List.fold_left (fun acc e -> acc + e.e_attempts) 0 t.entries
    in
    let seconds_total =
      List.fold_left (fun acc e -> acc +. e.e_seconds) 0.0 t.entries
    in
    let slowest =
      List.fold_left
        (fun acc e -> if e.e_seconds > acc.e_seconds then e else acc)
        e0 t.entries
    in
    Fmt.pf ppf
      "@,shards: %d completed (%d after retries), %d failed or not run@,\
       attempts: %d across completed shards, %.3fs total"
      completed retried missing attempts_total seconds_total;
    if slowest.e_seconds > 0.0 then
      Fmt.pf ppf "@,slowest shard: %s (index %d) %.3fs, %d attempt%s"
        slowest.e_id slowest.e_index slowest.e_seconds slowest.e_attempts
        (if slowest.e_attempts = 1 then "" else "s"));
  Fmt.pf ppf "@]"
