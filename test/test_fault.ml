open Elastic_kernel
open Elastic_netlist
open Elastic_sim
open Elastic_core
open Elastic_fault

(* ------------------------------------------------------------------ *)
(* Helpers                                                              *)

let channel_from net node_name =
  let n =
    match Netlist.find_node net node_name with
    | Some n -> n
    | None -> Alcotest.failf "no node named %s" node_name
  in
  match
    List.find_opt
      (fun (c : Netlist.channel) -> c.Netlist.src.Netlist.ep_node = n.Netlist.id)
      (Netlist.channels net)
  with
  | Some c -> c
  | None -> Alcotest.failf "node %s drives no channel" node_name

let channel_into net node_name =
  let n =
    match Netlist.find_node net node_name with
    | Some n -> n
    | None -> Alcotest.failf "no node named %s" node_name
  in
  match
    List.find_opt
      (fun (c : Netlist.channel) -> c.Netlist.dst.Netlist.ep_node = n.Netlist.id)
      (Netlist.channels net)
  with
  | Some c -> c
  | None -> Alcotest.failf "nothing drives node %s" node_name

let alarmed ?(n = 60) () =
  let ops = Examples.rs_ops ~error_rate_pct:0 ~seed:11 n in
  let d, alarm = Examples.rs_speculative_alarmed ~ops in
  (d, alarm)

let rs_alarms alarm = [ (alarm, fun v -> Value.to_int v >= 2) ]

(* ------------------------------------------------------------------ *)
(* Fault model unit tests                                               *)

let test_flip_value () =
  let v =
    Value.Tuple
      [ Value.Tuple [ Value.Word 0L; Value.Int 0 ];
        Value.Tuple [ Value.Word 0L; Value.Int 0 ] ]
  in
  Alcotest.(check int) "width 144" 144 (Fault.value_width v);
  (* Bit 3 lands in operand a's data word. *)
  (match Fault.flip_value [ 3 ] v with
   | Value.Tuple [ Value.Tuple [ Value.Word w; _ ]; _ ] ->
     Alcotest.(check int64) "data bit" 8L w
   | _ -> Alcotest.fail "shape");
  (* Bit 64 lands in operand a's check byte; bit 72 in b's data. *)
  (match Fault.flip_value [ 64; 72 ] v with
   | Value.Tuple
       [ Value.Tuple [ Value.Word 0L; Value.Int c ];
         Value.Tuple [ Value.Word w; Value.Int 0 ] ] ->
     Alcotest.(check int) "check bit" 1 c;
     Alcotest.(check int64) "b data bit" 1L w
   | _ -> Alcotest.fail "shape");
  (* Flipping twice is the identity; out-of-range bits are ignored. *)
  Alcotest.(check bool) "involution" true
    (Value.equal v (Fault.flip_value [ 9 ] (Fault.flip_value [ 9 ] v)));
  Alcotest.(check bool) "out of range" true
    (Value.equal v (Fault.flip_value [ 999 ] v))

let test_describe () =
  let d, _ = alarmed () in
  let ch = channel_from d.Examples.d_net "src" in
  let f = Fault.flip_bit ~channel:ch.Netlist.ch_id ~cycle:7 17 in
  let s = Fault.describe d.Examples.d_net f in
  List.iter
    (fun frag ->
       Alcotest.(check bool) (Fmt.str "mentions %S" frag) true
         (Helpers.contains s frag))
    [ "bit 17"; "cycle 7"; "node" ]

(* ------------------------------------------------------------------ *)
(* Structured engine errors                                             *)

let test_structured_error () =
  let d, _ = alarmed ~n:4 () in
  let eng = Engine.create d.Examples.d_net in
  (match Engine.sink_stream eng 999 with
   | exception Engine.Simulation_error e ->
     Alcotest.(check (option int)) "node id" (Some 999) e.Engine.err_node;
     Alcotest.(check bool) "message rendered" true
       (Helpers.contains (Engine.error_to_string e) "not a sink")
   | _ -> Alcotest.fail "expected Simulation_error");
  match Engine.signal eng 424242 with
  | exception Engine.Simulation_error e ->
    Alcotest.(check (option int)) "channel id" (Some 424242)
      e.Engine.err_channel
  | _ -> Alcotest.fail "expected Simulation_error"

(* ------------------------------------------------------------------ *)
(* Recovery classification on the §5.2 resilient adder                  *)

let test_single_flip_corrected () =
  let d, alarm = alarmed () in
  let net = d.Examples.d_net in
  let ch = channel_from net "src" in
  let r =
    Recovery.check ~cycles:120 net ~alarms:(rs_alarms alarm)
      ~faults:[ Fault.flip_bit ~channel:ch.Netlist.ch_id ~cycle:10 17 ]
  in
  (match r.Recovery.classification with
   | Recovery.Corrected p ->
     Alcotest.(check int) "one-cycle replay penalty" 1 p
   | c ->
     Alcotest.failf "expected corrected, got %a" Recovery.pp_classification
       c);
  Alcotest.(check bool) "no fresh violations" true
    (r.Recovery.fresh_violations = [])

let test_double_flip_detected () =
  let d, alarm = alarmed () in
  let net = d.Examples.d_net in
  let ch = channel_from net "src" in
  let r =
    Recovery.check ~cycles:120 net ~alarms:(rs_alarms alarm)
      ~faults:[ Fault.flip_bits ~channel:ch.Netlist.ch_id ~cycle:12 [ 3; 40 ] ]
  in
  match r.Recovery.classification with
  | Recovery.Detected why ->
    Alcotest.(check bool) "alarm provenance" true
      (Helpers.contains why "alarm")
  | c ->
    Alcotest.failf "expected detected, got %a" Recovery.pp_classification c

let test_control_glitch_detected () =
  let d, alarm = alarmed () in
  let net = d.Examples.d_net in
  let ch = channel_from net "src" in
  let r =
    Recovery.check ~cycles:120 net ~alarms:(rs_alarms alarm)
      ~faults:(Fault.control_glitch ~channel:ch.Netlist.ch_id ~cycle:20)
  in
  match r.Recovery.classification with
  | Recovery.Detected why ->
    Alcotest.(check bool) "monitor provenance" true
      (Helpers.contains why "protocol monitor");
    Alcotest.(check bool) "cycle provenance" true
      (Helpers.contains why "cycle");
    Alcotest.(check bool) "violations recorded" true
      (r.Recovery.fresh_violations <> [])
  | c ->
    Alcotest.failf "expected detected, got %a" Recovery.pp_classification c

let test_crash_has_provenance () =
  (* Dropping the valid of a retried token on the early mux's output
     desynchronizes its anti-token bookkeeping; the engine must surface
     that as a structured error with node provenance, not a bare assert. *)
  let d, alarm = alarmed () in
  let net = d.Examples.d_net in
  let ch = channel_into net "out" in
  let r =
    Recovery.check ~cycles:120 net ~alarms:(rs_alarms alarm)
      ~faults:(Fault.control_glitch ~channel:ch.Netlist.ch_id ~cycle:20)
  in
  match r.Recovery.classification with
  | Recovery.Crashed why ->
    Alcotest.(check bool) "cycle provenance" true
      (Helpers.contains why "cycle");
    Alcotest.(check bool) "node provenance" true
      (Helpers.contains why "node")
  | Recovery.Detected _ -> ()  (* monitors may beat the bookkeeping *)
  | c ->
    Alcotest.failf "expected crash or detection, got %a"
      Recovery.pp_classification c

let test_mispredict_corrected () =
  let d, alarm = alarmed () in
  let net = d.Examples.d_net in
  let stage =
    match Netlist.find_node net "stage" with
    | Some n -> n.Netlist.id
    | None -> Alcotest.fail "no stage node"
  in
  let r =
    Recovery.check ~cycles:120 net ~alarms:(rs_alarms alarm)
      ~faults:[ Fault.mispredict ~node:stage ~cycle:15 1 ]
  in
  match r.Recovery.classification with
  | Recovery.Masked | Recovery.Corrected _ -> ()
  | c ->
    Alcotest.failf "expected benign replay, got %a"
      Recovery.pp_classification c

let test_duplicate_after_drain () =
  (* Forge a token on the drained source channel: the checker must see the
     spurious extra transfer. *)
  let d, alarm = alarmed ~n:20 () in
  let net = d.Examples.d_net in
  let ch = channel_from net "src" in
  let r =
    Recovery.check ~cycles:120 net ~alarms:(rs_alarms alarm)
      ~faults:[ Fault.duplicate_token ~channel:ch.Netlist.ch_id ~cycle:60 ]
  in
  match r.Recovery.classification with
  | Recovery.Silent_corruption why ->
    Alcotest.(check bool) "spurious transfer" true
      (Helpers.contains why "spurious")
  | Recovery.Detected _ -> ()  (* also acceptable: a monitor may fire *)
  | c ->
    Alcotest.failf "expected corruption or detection, got %a"
      Recovery.pp_classification c

(* ------------------------------------------------------------------ *)
(* Campaigns                                                            *)

let test_campaign_deterministic_and_benign () =
  let d, alarm = alarmed () in
  let net = d.Examples.d_net in
  let ch = channel_from net "src" in
  let scenarios () =
    Campaign.random_bitflips ~net ~channel:ch.Netlist.ch_id ~seed:42
      ~count:25 ~from_cycle:2 ~to_cycle:60 ~bit_hi:144 ()
  in
  Alcotest.(check bool) "same seed, same scenarios" true
    (scenarios () = scenarios ());
  let s = Campaign.run ~cycles:120 net ~alarms:(rs_alarms alarm)
      ~scenarios:(scenarios ())
  in
  Alcotest.(check int) "all scenarios ran" 25 s.Campaign.total;
  Alcotest.(check bool) "single-bit faults are benign" true
    (Campaign.all_benign s);
  let s' = Campaign.run ~cycles:120 net ~alarms:(rs_alarms alarm)
      ~scenarios:(scenarios ())
  in
  Alcotest.(check bool) "same seed, same histogram" true
    (s.Campaign.histogram = s'.Campaign.histogram)

let test_campaign_double_flips_detected () =
  let d, alarm = alarmed () in
  let net = d.Examples.d_net in
  let ch = channel_from net "src" in
  let scenarios =
    Campaign.random_double_flips ~net ~channel:ch.Netlist.ch_id ~seed:7
      ~count:8 ~from_cycle:2 ~to_cycle:60 ~bit_lo:0 ~bit_hi:72 ()
  in
  let s =
    Campaign.run ~cycles:120 net ~alarms:(rs_alarms alarm) ~scenarios
  in
  Alcotest.(check int) "all detected" 8 (Campaign.count s "detected")

let suite =
  [ Alcotest.test_case "flip_value flattening" `Quick test_flip_value;
    Alcotest.test_case "describe provenance" `Quick test_describe;
    Alcotest.test_case "structured simulation errors" `Quick
      test_structured_error;
    Alcotest.test_case "single bit flip -> corrected(1)" `Quick
      test_single_flip_corrected;
    Alcotest.test_case "double bit flip -> detected" `Quick
      test_double_flip_detected;
    Alcotest.test_case "control glitch -> monitor detection" `Quick
      test_control_glitch_detected;
    Alcotest.test_case "crash carries node provenance" `Quick
      test_crash_has_provenance;
    Alcotest.test_case "forced mispredict -> benign replay" `Quick
      test_mispredict_corrected;
    Alcotest.test_case "duplicated token -> flagged" `Quick
      test_duplicate_after_drain;
    Alcotest.test_case "seeded campaign: deterministic, benign" `Quick
      test_campaign_deterministic_and_benign;
    Alcotest.test_case "double-flip campaign: all detected" `Quick
      test_campaign_double_flips_detected ]
