open Elastic_kernel
open Elastic_netlist
open Elastic_core
open Elastic_datapath

(* Golden fixtures: the paper-facing headline numbers of the bench
   harness, locked so that an engine or design change that shifts any of
   them is caught here rather than by eyeballing bench output.

   The fixtures were captured from the levelized engine; the
   differential suite (test_engine_equiv.ml) guarantees the reference
   mode produces the same numbers. *)

(* E1: the Table 1 trace of the speculative system of Fig. 1(d),
   cycle-exact (see bench/main.ml for the one deliberate deviation from
   the paper's own inconsistent EBin row). *)
let table1_expected =
  [ ("Fin0", [ "A"; "-"; "C"; "-"; "E"; "F"; "F" ]);
    ("Fout0", [ "A"; "-"; "C"; "-"; "E"; "*"; "F" ]);
    ("Fin1", [ "-"; "B"; "D"; "D"; "-"; "G"; "-" ]);
    ("Fout1", [ "-"; "B"; "*"; "D"; "-"; "G"; "-" ]);
    ("Sel", [ "0"; "1"; "1"; "1"; "0"; "0"; "0" ]);
    ("Sched", [ "0"; "1"; "0"; "1"; "0"; "1"; "0" ]);
    ("EBin", [ "A"; "B"; "*"; "D"; "E"; "*"; "F" ]) ]

let test_table1 () =
  let rows = Figures.table1_trace (Figures.table1 ()) in
  Alcotest.(check int) "row count" (List.length table1_expected)
    (List.length rows);
  List.iter2
    (fun (label, cells) (r : Figures.table1_row) ->
       Alcotest.(check string) "row label" label r.Figures.label;
       Alcotest.(check (list string)) ("cells of " ^ label) cells
         r.Figures.cells)
    table1_expected rows

(* One line per design: delivery cycle counts and protocol retry/kill
   totals, summed over all channels — the numbers behind the E5/E6
   tables. *)
let summary (d : Examples.design) cycles =
  let eng = Elastic_sim.Engine.create d.Examples.d_net in
  Elastic_sim.Engine.run eng cycles;
  let entries =
    Transfer.entries (Elastic_sim.Engine.sink_stream eng d.Examples.d_sink)
  in
  let first =
    match entries with e :: _ -> e.Transfer.cycle | [] -> -1
  in
  let last = List.fold_left (fun _ e -> e.Transfer.cycle) (-1) entries in
  let retries, kills =
    List.fold_left
      (fun (r, k) (c : Netlist.channel) ->
         let _, retry, _ =
           Elastic_sim.Engine.activity eng c.Netlist.ch_id
         in
         (r + retry, k + Elastic_sim.Engine.killed eng c.Netlist.ch_id))
      (0, 0)
      (Netlist.channels d.Examples.d_net)
  in
  Fmt.str "%s: %d transfers, first %d, last %d, %d retry cycles, %d kills"
    d.Examples.d_name (List.length entries) first last retries kills

(* 400 ops at 5% error rate (seed 42): the stalling design retries once
   per slow op; the speculative design kills the doomed slow path of all
   400 predictions and retries only on the ~20 mispredictions' replays. *)
let e5_expected =
  "vl-stalling: 400 transfers, first 1, last 423, 23 retry cycles, 0 kills\n\
   vl-speculative: 400 transfers, first 1, last 423, 207 retry cycles, \
   400 kills"

let test_e5 () =
  let ops = Alu.operands ~error_rate_pct:5 ~seed:42 400 in
  let got =
    String.concat "\n"
      [ summary (Examples.vl_stalling ~ops) 800;
        summary (Examples.vl_speculative ~ops) 800 ]
  in
  Alcotest.(check string) "E5 headline numbers" e5_expected got

(* 400 sums at 5% injected SECDED errors (seed 5): speculation removes
   one pipeline stage of latency (first delivery 1 vs 2) and pays one
   replay cycle per corrected error (last delivery 416 vs 401). *)
let e6_expected =
  "rs-nonspeculative: 400 transfers, first 2, last 401, 0 retry cycles, \
   0 kills\n\
   rs-speculative: 400 transfers, first 1, last 416, 144 retry cycles, \
   400 kills"

let test_e6 () =
  let ops = Examples.rs_ops ~error_rate_pct:5 ~seed:5 400 in
  let dn = Examples.rs_nonspeculative ~ops in
  let dp = Examples.rs_speculative ~ops in
  (* The streams must also be value-correct, not merely stable. *)
  List.iter
    (fun (d : Examples.design) ->
       let eng = Elastic_sim.Engine.create d.Examples.d_net in
       Elastic_sim.Engine.run eng 800;
       Alcotest.(check bool)
         (d.Examples.d_name ^ " computes the reference sums")
         true
         (List.equal Value.equal
            (Transfer.values
               (Elastic_sim.Engine.sink_stream eng d.Examples.d_sink))
            (Examples.rs_reference ops)))
    [ dn; dp ];
  let got = String.concat "\n" [ summary dn 800; summary dp 800 ] in
  Alcotest.(check string) "E6 headline numbers" e6_expected got

let suite =
  [ Alcotest.test_case "Table 1 trace is locked cycle-exactly" `Quick
      test_table1;
    Alcotest.test_case "E5 variable-latency ALU numbers are locked" `Quick
      test_e5;
    Alcotest.test_case "E6 resilient adder numbers are locked" `Quick
      test_e6 ]
