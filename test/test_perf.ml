open Elastic_kernel
open Elastic_netlist
open Elastic_perf
open Helpers

(* A self-loop through [n_ebs] buffers holding [tokens] total, plus an
   observation fork to a sink. *)
let loop ~tokens ~n_ebs =
  assert (n_ebs >= 1 && tokens <= n_ebs * 2);
  let b = builder () in
  let f = add b (Func (Func.inc ~step:1 ())) in
  let fk = add b (Fork 2) in
  let k = sink b () in
  let rec chain prev i remaining =
    if i = n_ebs then prev
    else begin
      let take = min 2 remaining in
      let e =
        eb b ~init:(List.init take (fun j -> Value.Int j)) ()
      in
      let _ = conn b (prev, Out 0) (e, In 0) in
      chain e (i + 1) (remaining - take)
    end
  in
  let last = chain f 0 tokens in
  let _ = conn b (last, Out 0) (fk, In 0) in
  let _ = conn b (fk, Out 0) (f, In 0) in
  let _ = conn b (fk, Out 1) (k, In 0) in
  (b.net, k)

let suite =
  [ Alcotest.test_case "feed-forward pipelines have bound 1" `Quick
      (fun () ->
         let b = builder () in
         let s = src_counter b () in
         let e1 = eb b () in
         let e2 = eb b ~init:[ Value.Int 0 ] () in
         let k = sink b () in
         let _ = conn b (s, Out 0) (e1, In 0) in
         let _ = conn b (e1, Out 0) (e2, In 0) in
         let _ = conn b (e2, Out 0) (k, In 0) in
         Alcotest.(check (float 1e-9)) "bound" 1.0
           (Marked_graph.throughput_bound b.net));
    Alcotest.test_case "bound equals tokens/latency on simple loops"
      `Quick (fun () ->
        List.iter
          (fun (tokens, n_ebs) ->
             let net, _ = loop ~tokens ~n_ebs in
             let expected =
               min 1.0 (float_of_int tokens /. float_of_int n_ebs)
             in
             Alcotest.(check (float 1e-6))
               (Fmt.str "%d tokens / %d EBs" tokens n_ebs)
               expected
               (Marked_graph.throughput_bound net))
          [ (1, 1); (1, 2); (1, 3); (2, 3); (2, 4); (3, 4); (2, 2) ]);
    Alcotest.test_case "simulated throughput matches the bound on loops"
      `Quick (fun () ->
        List.iter
          (fun (tokens, n_ebs) ->
             let net, k = loop ~tokens ~n_ebs in
             let eng = run_net ~cycles:240 net in
             check_no_violations eng;
             let measured = Elastic_sim.Engine.throughput eng k in
             let bound = Marked_graph.throughput_bound net in
             Alcotest.(check bool)
               (Fmt.str "%d/%d: %.3f vs bound %.3f" tokens n_ebs measured
                  bound)
               true
               (abs_float (measured -. bound) < 0.05))
          [ (1, 1); (1, 2); (2, 3); (1, 4) ]);
    Alcotest.test_case "critical cycle reports the right ratio" `Quick
      (fun () ->
        let net, _ = loop ~tokens:1 ~n_ebs:3 in
        match Marked_graph.critical_cycle net with
        | Some c ->
          Alcotest.(check int) "tokens" 1 c.Marked_graph.tokens;
          Alcotest.(check int) "latency" 3 c.Marked_graph.latency;
          Alcotest.(check (float 1e-6)) "ratio" (1.0 /. 3.0)
            c.Marked_graph.ratio
        | None -> Alcotest.fail "no cycle found");
    Alcotest.test_case "zero-latency cycle rejected" `Quick (fun () ->
        (* A purely combinational loop: F -> fork -> F. *)
        let b = builder () in
        let f = add b (Func (Func.add_int ~arity:2 ())) in
        let fk = add b (Fork 2) in
        let s = src_counter b () in
        let k = sink b () in
        let _ = conn b (s, Out 0) (f, In 0) in
        let _ = conn b (f, Out 0) (fk, In 0) in
        let _ = conn b (fk, Out 0) (f, In 1) in
        let _ = conn b (fk, Out 1) (k, In 0) in
        Alcotest.(check bool) "raises typed E102" true
          (try
             ignore (Marked_graph.throughput_bound b.net);
             false
           with Elastic_netlist.Diagnostic.Reject d ->
             String.equal d.Elastic_netlist.Diagnostic.code "E102"));
    Alcotest.test_case "effective cycle time = cycle time / bound" `Quick
      (fun () ->
        let net, _ = loop ~tokens:1 ~n_ebs:2 in
        let ct = Timing.cycle_time net in
        Alcotest.(check (float 1e-6)) "eff" (ct /. 0.5)
          (Marked_graph.effective_cycle_time net));
    Alcotest.test_case "varlat counts as one cycle of latency" `Quick
      (fun () ->
        (* source -> varlat -> sink has no cycle: bound 1. *)
        let b = builder () in
        let s = src_counter b () in
        let v =
          add b
            (Varlat
               { fast = Func.inc ~step:0 (); slow = Func.inc ~step:0 ();
                 err = Func.make ~name:"never" ~arity:1 ~delay:0.1
                     ~area:1.0 (fun _ -> Value.Int 0) })
        in
        let k = sink b () in
        let _ = conn b (s, Out 0) (v, In 0) in
        let _ = conn b (v, Out 0) (k, In 0) in
        Alcotest.(check (float 1e-9)) "bound" 1.0
          (Marked_graph.throughput_bound b.net)) ]
