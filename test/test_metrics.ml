open Elastic_sched
open Elastic_netlist
open Elastic_core
open Elastic_datapath
open Elastic_metrics

(* The metrics subsystem (lib/metrics): histogram bucket mathematics and
   mergeable snapshots (qcheck), the registry contract, the
   allocation-free hot path, Prometheus/JSONL export well-formedness,
   the engine sampler against ground truth from the scheduler state,
   the injectable simulation clock and the bench regression gate. *)

(* --- histograms ---------------------------------------------------- *)

let snap_of xs =
  let h = Histogram.create () in
  List.iter (Histogram.observe h) xs;
  Histogram.snapshot h

let test_histogram_exact_below_16 () =
  let h = Histogram.create () in
  for v = 0 to 15 do
    Histogram.observe h v
  done;
  Alcotest.(check int) "count" 16 (Histogram.count h);
  Alcotest.(check int) "sum" 120 (Histogram.sum h);
  Alcotest.(check int) "min" 0 (Histogram.min_value h);
  Alcotest.(check int) "max" 15 (Histogram.max_value h);
  (* Unit buckets below 16 make small quantiles exact. *)
  Alcotest.(check int) "p50" 7 (Histogram.quantile h 0.5);
  Alcotest.(check int) "p100" 15 (Histogram.quantile h 1.0);
  Alcotest.(check int) "p0" 0 (Histogram.quantile h 0.0)

let test_histogram_negative_clamps () =
  let h = Histogram.create () in
  Histogram.observe h (-5);
  Alcotest.(check int) "clamped to 0" 0 (Histogram.max_value h);
  Alcotest.(check int) "counted" 1 (Histogram.count h);
  Alcotest.check_raises "quantile domain"
    (Invalid_argument "Histogram.quantile: q outside [0, 1]") (fun () ->
      ignore (Histogram.quantile h 2.0))

let test_snapshot_isolation_and_reset () =
  let h = Histogram.create () in
  Histogram.observe h 3;
  Histogram.observe h 100;
  let s = Histogram.snapshot h in
  Histogram.observe h 7;
  Alcotest.(check int) "snapshot unaffected by later observe" 2
    (Histogram.s_count s);
  Histogram.reset h;
  Alcotest.(check int) "reset clears the live histogram" 0
    (Histogram.count h);
  Alcotest.(check int) "reset clears the sum" 0 (Histogram.sum h);
  Alcotest.(check int) "snapshot survives reset" 103 (Histogram.s_sum s);
  Alcotest.(check bool) "empty is the merge identity" true
    (Histogram.merge s Histogram.empty = s
     && Histogram.merge Histogram.empty s = s)

let gen_observations =
  QCheck.make
    ~print:(fun l -> Fmt.str "[%a]" Fmt.(list ~sep:semi int) l)
    QCheck.Gen.(list_size (int_range 0 40) (int_bound 1_000_000))

let qcheck_merge_associative =
  QCheck.Test.make ~count:200
    ~name:"qcheck: snapshot merge is associative and commutative"
    (QCheck.triple gen_observations gen_observations gen_observations)
    (fun (xs, ys, zs) ->
      let a = snap_of xs and b = snap_of ys and c = snap_of zs in
      Histogram.merge a (Histogram.merge b c)
      = Histogram.merge (Histogram.merge a b) c
      && Histogram.merge a b = Histogram.merge b a)

let qcheck_merge_is_union =
  QCheck.Test.make ~count:200
    ~name:"qcheck: merging snapshots = observing the concatenation"
    (QCheck.pair gen_observations gen_observations) (fun (xs, ys) ->
      Histogram.merge (snap_of xs) (snap_of ys) = snap_of (xs @ ys))

let qcheck_quantile_monotone =
  QCheck.Test.make ~count:200
    ~name:"qcheck: quantiles are monotone in the rank and bound the data"
    (QCheck.pair gen_observations
       (QCheck.pair (QCheck.float_range 0.0 1.0)
          (QCheck.float_range 0.0 1.0)))
    (fun (xs, (q1, q2)) ->
      QCheck.assume (xs <> []);
      let s = snap_of xs in
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Histogram.s_quantile s lo <= Histogram.s_quantile s hi
      && Histogram.s_quantile s 1.0 >= List.fold_left max 0 xs
      (* bucket upper bounds over-estimate by at most one sub-bucket
         (12.5%), and are exact below 16 *)
      && float_of_int (Histogram.s_quantile s 1.0)
         <= Float.max 15.0 (1.125 *. float_of_int (List.fold_left max 0 xs))
         +. 1.0)

(* --- registry ------------------------------------------------------ *)

let test_registry_contract () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg ~help:"h" "x_total" in
  Metrics.Counter.inc c;
  Metrics.Counter.add c 4;
  Alcotest.(check int) "counter value" 5 (Metrics.Counter.value c);
  Alcotest.check_raises "counters are monotonic"
    (Invalid_argument "Counter.add: negative increment") (fun () ->
      Metrics.Counter.add c (-1));
  (* re-registration returns the same instrument *)
  Metrics.Counter.inc (Metrics.counter reg "x_total");
  Alcotest.(check int) "same instrument" 6 (Metrics.Counter.value c);
  (* label sets distinguish instruments, in either order *)
  let l1 = Metrics.counter reg ~labels:[ ("a", "1"); ("b", "2") ] "y_total" in
  let l2 = Metrics.counter reg ~labels:[ ("b", "2"); ("a", "1") ] "y_total" in
  Metrics.Counter.inc l1;
  Alcotest.(check int) "label order is normalized" 1
    (Metrics.Counter.value l2);
  Alcotest.(check bool) "name validation" false (Metrics.valid_name "9bad");
  Alcotest.(check bool) "name validation" true
    (Metrics.valid_name "elastic_engine_cycles_total");
  (match Metrics.gauge reg "x_total" with
   | _ -> Alcotest.fail "kind conflict not detected"
   | exception Invalid_argument _ -> ());
  let g = Metrics.gauge reg "occ" in
  Metrics.Gauge.set g 0.75;
  let snap = Metrics.snapshot reg in
  Alcotest.(check bool) "find counter" true
    (Metrics.find snap "x_total" = Some (Metrics.Counter 6));
  Alcotest.(check bool) "find with labels" true
    (Metrics.find ~labels:[ ("a", "1"); ("b", "2") ] snap "y_total"
     = Some (Metrics.Counter 1));
  Alcotest.(check bool) "find gauge" true
    (Metrics.find snap "occ" = Some (Metrics.Gauge 0.75));
  Alcotest.(check bool) "find miss" true (Metrics.find snap "nope" = None)

let test_snapshot_merge () =
  let mk c g =
    let reg = Metrics.create () in
    Metrics.Counter.add (Metrics.counter reg "c_total") c;
    Metrics.Gauge.set (Metrics.gauge reg "g") g;
    reg
  in
  let left = Metrics.snapshot (mk 3 1.0) in
  let reg = mk 4 2.0 in
  Histogram.observe (Metrics.histogram reg "h_cycles") 2;
  let right = Metrics.snapshot reg in
  let m = Metrics.merge left right in
  Alcotest.(check bool) "counters add" true
    (Metrics.find m "c_total" = Some (Metrics.Counter 7));
  Alcotest.(check bool) "gauges keep the right-hand value" true
    (Metrics.find m "g" = Some (Metrics.Gauge 2.0));
  (match Metrics.find m "h_cycles" with
   | Some (Metrics.Histogram s) ->
     Alcotest.(check int) "right-only histogram passes through" 1
       (Histogram.s_count s)
   | _ -> Alcotest.fail "missing merged histogram")

(* --- the hot path allocates nothing -------------------------------- *)

let test_instruments_allocation_free () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "hot_total" in
  let g = Metrics.gauge reg "hot_gauge" in
  let h = Metrics.histogram reg "hot_cycles" in
  let spin n =
    for i = 0 to n - 1 do
      Metrics.Counter.inc c;
      Metrics.Gauge.set g 0.25;
      Histogram.observe h (i land 4095)
    done
  in
  spin 1_000;
  let words n =
    let before = Gc.minor_words () in
    spin n;
    Gc.minor_words () -. before
  in
  (* Zero words per update: the growth from 10k to 1M updates must be
     (almost) nothing.  A real allocation costs >= 2 words per update
     = ~2e6 words here; the tolerance only absorbs the few words of
     ambient noise the linked systhreads tick thread can inject into a
     long measurement window. *)
  let per_update = (words 1_000_000 -. words 10_000) /. 990_000.0 in
  Alcotest.(check (float 0.001)) "counter/gauge/histogram updates are free"
    0.0 per_update

(* --- JSON round-trip ----------------------------------------------- *)

let test_json_roundtrip () =
  let t =
    Json.Obj
      [ ("s", Json.Str "a\"b\\c\nd");
        ("i", Json.Int (-42));
        ("f", Json.Float 0.951923);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Obj []; Json.List [] ]) ]
  in
  (match Json.parse (Json.to_string t) with
   | Ok t' -> Alcotest.(check bool) "compact round-trip" true (t = t')
   | Error m -> Alcotest.failf "parse failed: %s" m);
  (match Json.parse (Json.to_string ~indent:2 t) with
   | Ok t' -> Alcotest.(check bool) "indented round-trip" true (t = t')
   | Error m -> Alcotest.failf "parse failed: %s" m);
  (match Json.parse "{\"a\":1} trailing" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "trailing content accepted");
  (match Json.parse "{\"a\":}" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "malformed object accepted");
  Alcotest.(check bool) "ints parse as ints" true
    (Json.parse "7" = Ok (Json.Int 7));
  Alcotest.(check bool) "exponents parse as floats" true
    (Json.parse "1e2" = Ok (Json.Float 100.0))

(* Random float-free trees round-trip exactly (float emission is 6
   significant digits by design — exact float transport goes through
   the hex side-channel of [Metrics.sample_to_json]). *)
let json_gen =
  let open QCheck.Gen in
  let str_g =
    map
      (fun l -> String.concat "" l)
      (small_list
         (oneof
            [ map (String.make 1) printable; return "\""; return "\\";
              return "\n"; return "\xE2\x82\xAC" ]))
  in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [ return Json.Null; map (fun b -> Json.Bool b) bool;
            map (fun i -> Json.Int i) small_signed_int;
            map (fun s -> Json.Str s) str_g ]
      else
        frequency
          [ (2, map (fun l -> Json.List l) (list_size (0 -- 4) (self (n / 2))));
            (2,
             map
               (fun kvs -> Json.Obj kvs)
               (list_size (0 -- 4) (pair str_g (self (n / 2)))));
            (1, map (fun i -> Json.Int i) small_signed_int) ])

let qcheck_json_roundtrip =
  QCheck.Test.make ~count:200 ~name:"qcheck: json round-trips exactly"
    (QCheck.make json_gen) (fun t ->
        Json.parse (Json.to_string t) = Ok t
        && Json.parse (Json.to_string ~indent:2 t) = Ok t)

(* Corrupt-prefix fuzz: truncating or byte-flipping a valid document
   must come back as [Ok] (when the damage still parses) or an [Error]
   naming the byte offset — never an exception, never a stack
   overflow. *)
let qcheck_json_corrupt_prefix =
  QCheck.Test.make ~count:300
    ~name:"qcheck: truncated/corrupt json never raises, errors name offsets"
    QCheck.(pair (QCheck.make json_gen) (pair small_nat small_nat))
    (fun (t, (cut, flip)) ->
       let s = Json.to_string t in
       let n = String.length s in
       let truncated = String.sub s 0 (min cut n) in
       let flipped =
         if n = 0 then s
         else begin
           let b = Bytes.of_string s in
           let i = flip mod n in
           Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5b));
           Bytes.to_string b
         end
       in
       List.for_all
         (fun doc ->
            match Json.parse doc with
            | Ok _ -> true
            | Error m -> Helpers.contains m "offset"
            | exception e ->
              QCheck.Test.fail_reportf "parse raised %s on %S"
                (Printexc.to_string e) doc)
         [ truncated; flipped ])

let test_json_depth_cap () =
  (* Pathological nesting must be a clean [Error], not Stack_overflow. *)
  match Json.parse (String.make 5000 '[') with
  | Ok _ -> Alcotest.fail "unterminated nesting accepted"
  | Error m ->
    Alcotest.(check bool) "names the cap" true (Helpers.contains m "nesting")

(* --- sample serialization (checkpoint transport) ------------------- *)

let test_sample_json_roundtrip () =
  let reg = Metrics.create () in
  Metrics.Counter.add (Metrics.counter reg ~help:"c" "c_total") 41;
  (* Gauges with no exact 6-digit decimal image: the hex side-channel
     must carry the exact bits. *)
  Metrics.Gauge.set (Metrics.gauge reg "g1") 0.1;
  Metrics.Gauge.set
    (Metrics.gauge reg ~labels:[ ("k", "v w") ] "g2")
    (-1.23456789012345e-17);
  let h = Metrics.histogram reg "h" in
  List.iter (Histogram.observe h) [ 0; 1; 17; 123456 ];
  let samples = Metrics.snapshot reg in
  (match Metrics.samples_of_json (Metrics.samples_to_json samples) with
   | Ok back ->
     Alcotest.(check bool) "bit-exact round-trip" true (back = samples)
   | Error m -> Alcotest.failf "samples_of_json: %s" m);
  (* And through the actual emitted text, as a checkpoint would. *)
  let text = Json.to_string (Metrics.samples_to_json samples) in
  match Json.parse text with
  | Error m -> Alcotest.failf "parse: %s" m
  | Ok j -> (
      match Metrics.samples_of_json j with
      | Ok back ->
        Alcotest.(check bool) "text round-trip still exact" true
          (back = samples)
      | Error m -> Alcotest.failf "samples_of_json after parse: %s" m)

let test_sample_json_rejects_malformed () =
  let reject what j =
    match Metrics.sample_of_json j with
    | Ok _ -> Alcotest.failf "%s accepted" what
    | Error _ -> ()
  in
  reject "not an object" (Json.Int 3);
  reject "bad name"
    (Json.Obj
       [ ("name", Json.Str "0bad"); ("help", Json.Str "");
         ("labels", Json.Obj []); ("kind", Json.Str "counter");
         ("value", Json.Int 1) ]);
  reject "negative counter"
    (Json.Obj
       [ ("name", Json.Str "c"); ("help", Json.Str "");
         ("labels", Json.Obj []); ("kind", Json.Str "counter");
         ("value", Json.Int (-1)) ]);
  reject "unknown kind"
    (Json.Obj
       [ ("name", Json.Str "c"); ("help", Json.Str "");
         ("labels", Json.Obj []); ("kind", Json.Str "meter");
         ("value", Json.Int 1) ]);
  (* Histogram whose bucket counts disagree with its total. *)
  reject "inconsistent histogram"
    (Json.Obj
       [ ("name", Json.Str "h"); ("help", Json.Str "");
         ("labels", Json.Obj []); ("kind", Json.Str "histogram");
         ("value",
          Json.Obj
            [ ("count", Json.Int 5); ("sum", Json.Int 5);
              ("min", Json.Int 1); ("max", Json.Int 1);
              ("buckets",
               Json.List [ Json.List [ Json.Int 1; Json.Int 2 ] ]) ]) ]);
  match
    Metrics.samples_of_json (Json.List [ Json.Int 1 ])
  with
  | Ok _ -> Alcotest.fail "bad element accepted"
  | Error m ->
    Alcotest.(check bool) "names the sample index" true
      (Helpers.contains m "sample 0")

(* --- Prometheus exposition ----------------------------------------- *)

let render_fixture () =
  let reg = Metrics.create () in
  Metrics.Counter.add
    (Metrics.counter reg ~help:"transfers"
       ~labels:[ ("channel", "a->b\n\"x\"") ]
       "elastic_channel_transfers_total")
    19;
  Metrics.Gauge.set (Metrics.gauge reg ~help:"occ" "elastic_buffer_occupancy") 0.5;
  let h =
    Metrics.histogram reg ~help:"penalty"
      "elastic_sched_replay_penalty_cycles"
  in
  List.iter (Histogram.observe h) [ 1; 1; 1; 20 ];
  Prometheus.render (Metrics.snapshot reg)

let test_prometheus_well_formed () =
  let text = render_fixture () in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  List.iter
    (fun line ->
       if String.length line > 0 && line.[0] = '#' then
         Alcotest.(check bool) ("comment: " ^ line) true
           (Helpers.contains line "# HELP " || Helpers.contains line "# TYPE ")
       else begin
         (* <name>{labels} <value> — value must parse as a float and the
            name must be legal *)
         match String.rindex_opt line ' ' with
         | None -> Alcotest.failf "sample line without value: %s" line
         | Some i ->
           let value = String.sub line (i + 1) (String.length line - i - 1) in
           (match float_of_string_opt value with
            | Some _ -> ()
            | None -> Alcotest.failf "unparsable value %S in %s" value line);
           let name =
             match String.index_opt line '{' with
             | Some j -> String.sub line 0 j
             | None -> String.sub line 0 i
           in
           Alcotest.(check bool) ("legal metric name " ^ name) true
             (Metrics.valid_name name)
       end)
    lines;
  (* HELP/TYPE exactly once per family, before its samples *)
  let count needle =
    List.length (List.filter (fun l -> Helpers.contains l needle) lines)
  in
  Alcotest.(check int) "one TYPE per family" 1
    (count "# TYPE elastic_channel_transfers_total ");
  Alcotest.(check int) "one HELP per family" 1
    (count "# HELP elastic_sched_replay_penalty_cycles ");
  (* histogram buckets are cumulative and +Inf equals _count *)
  let bucket le =
    List.find_map
      (fun l ->
         if Helpers.contains l (Fmt.str "le=\"%s\"" le) then
           String.rindex_opt l ' '
           |> Option.map (fun i ->
                  int_of_string
                    (String.sub l (i + 1) (String.length l - i - 1)))
         else None)
      lines
  in
  Alcotest.(check (option int)) "bucket le=1" (Some 3) (bucket "1");
  Alcotest.(check (option int)) "bucket le=+Inf" (Some 4) (bucket "+Inf");
  Alcotest.(check bool) "count line" true
    (List.exists
       (fun l ->
          Helpers.contains l "elastic_sched_replay_penalty_cycles_count 4")
       lines);
  Alcotest.(check bool) "sum line" true
    (List.exists
       (fun l -> Helpers.contains l "elastic_sched_replay_penalty_cycles_sum 23")
       lines);
  Alcotest.(check bool) "label escaping" true
    (Helpers.contains text "a->b\\n\\\"x\\\"")

(* --- the sampler against scheduler ground truth --------------------- *)

let sampled_rs ?(cycles = 200) ?window ?on_window () =
  let ops = Examples.rs_ops ~error_rate_pct:5 ~seed:5 100 in
  let d = Examples.rs_speculative ~ops in
  let eng = Elastic_sim.Engine.create d.Examples.d_net in
  let sampler = Sampler.create ?window ?on_window eng in
  Elastic_sim.Engine.set_observer eng (Some (Sampler.observe sampler));
  Elastic_sim.Engine.run eng cycles;
  (eng, sampler)

let test_sampler_ground_truth () =
  let eng, sampler = sampled_rs () in
  let samples = Sampler.sample sampler eng in
  Alcotest.(check bool) "cycles counter" true
    (Metrics.find samples "elastic_engine_cycles_total"
     = Some (Metrics.Counter 200));
  let prof = Elastic_sim.Engine.profile eng in
  Alcotest.(check bool) "node evals counter" true
    (Metrics.find samples "elastic_engine_node_evals_total"
     = Some (Metrics.Counter (Elastic_sim.Profile.evals prof)));
  let metric name =
    List.fold_left
      (fun acc (s : Metrics.sample) ->
         match s.Metrics.m_value with
         | Metrics.Counter c when String.equal s.Metrics.m_name name ->
           acc + c
         | _ -> acc)
      0 samples
  in
  let truth f =
    List.fold_left
      (fun acc (_, s) -> acc + f s)
      0
      (Elastic_sim.Engine.schedulers eng)
  in
  Alcotest.(check int) "serves match the scheduler state"
    (truth Scheduler.serves)
    (metric "elastic_sched_serves_total");
  let squashes = truth Scheduler.mispredictions in
  Alcotest.(check int) "mispredictions match"
    squashes
    (metric "elastic_sched_mispredictions_total");
  Alcotest.(check bool) "the 5% error workload does squash" true
    (squashes > 0);
  (* Sec. 5.2: the recovery replays every squashed token in exactly one
     cycle — the histogram's whole mass sits in the 1 bucket. *)
  List.iter
    (fun (s : Metrics.sample) ->
       if
         String.equal s.Metrics.m_name "elastic_sched_replay_penalty_cycles"
       then
         match s.Metrics.m_value with
         | Metrics.Histogram snap ->
           Alcotest.(check int) "one replay per squash" squashes
             (Histogram.s_count snap);
           Alcotest.(check int) "p50 = 1 cycle" 1
             (Histogram.s_quantile snap 0.5);
           Alcotest.(check int) "p99 = 1 cycle" 1
             (Histogram.s_quantile snap 0.99);
           Alcotest.(check int) "max = 1 cycle" 1 (Histogram.s_max snap)
         | _ -> Alcotest.fail "penalty family is not a histogram")
    samples;
  (match Metrics.find ~labels:[ ("node", "stage") ] samples "elastic_sched_accuracy" with
   | Some (Metrics.Gauge a) ->
     Alcotest.(check bool) "accuracy in (0, 1]" true (a > 0.0 && a <= 1.0)
   | _ -> Alcotest.fail "missing accuracy gauge");
  (* channel transfers agree with the engine's delivery counters *)
  let total_transfers =
    List.fold_left
      (fun acc (c : Elastic_netlist.Netlist.channel) ->
         acc
         + Elastic_sim.Engine.delivered eng c.Elastic_netlist.Netlist.ch_id)
      0
      (Elastic_netlist.Netlist.channels (Elastic_sim.Engine.netlist eng))
  in
  Alcotest.(check int) "channel transfers total" total_transfers
    (metric "elastic_channel_transfers_total")

let test_sampler_jsonl_windows () =
  let rows = ref [] in
  let _eng, _sampler =
    sampled_rs ~cycles:200 ~window:50 ~on_window:(fun r -> rows := r :: !rows)
      ()
  in
  let rows = List.rev !rows in
  Alcotest.(check int) "4 windows of 50" 4 (List.length rows);
  Alcotest.(check (list int)) "window boundaries"
    [ 50; 100; 150; 200 ]
    (List.map (fun (r : Sampler.row) -> r.Sampler.r_cycle) rows);
  List.iter
    (fun (r : Sampler.row) ->
       let line = Sampler.jsonl_of_row r in
       match Json.parse line with
       | Error m -> Alcotest.failf "JSONL line does not parse: %s" m
       | Ok j ->
         Alcotest.(check bool) "schema tag" true
           (Json.member "schema" j
            = Some (Json.Str "elastic-speculation/metrics/v1"));
         Alcotest.(check bool) "cycle field" true
           (Json.member "cycle" j = Some (Json.Int r.Sampler.r_cycle));
         (match Json.member "samples" j with
          | Some (Json.List (_ :: _)) -> ()
          | _ -> Alcotest.fail "empty samples array"))
    rows

let test_note_recovery () =
  let reg = Metrics.create () in
  Sampler.note_recovery reg (Elastic_fault.Recovery.Corrected 1);
  Sampler.note_recovery reg (Elastic_fault.Recovery.Corrected 1);
  Sampler.note_recovery reg (Elastic_fault.Recovery.Detected "monitor");
  let snap = Metrics.snapshot reg in
  Alcotest.(check bool) "corrected count" true
    (Metrics.find ~labels:[ ("class", "corrected") ] snap
       "elastic_fault_recovery_total"
     = Some (Metrics.Counter 2));
  Alcotest.(check bool) "detected count" true
    (Metrics.find ~labels:[ ("class", "detected") ] snap
       "elastic_fault_recovery_total"
     = Some (Metrics.Counter 1))

(* --- the injectable clock ------------------------------------------ *)

let test_clock_injection () =
  let net = (Figures.table1 ()).Figures.t1_net in
  let eng =
    Elastic_sim.Engine.create
      ~clock:(Elastic_sim.Clock.ticker ~step_ns:1_000L)
      net
  in
  Elastic_sim.Engine.run eng 100;
  let p = Elastic_sim.Engine.profile eng in
  (* 100 cycles x 1000 ns per settle = exactly 100 us, every run. *)
  Alcotest.(check (float 1e-12)) "deterministic settle clock" 1.0e-4
    (Elastic_sim.Profile.settle_seconds p);
  (* Engine.create brackets its construction with exactly two reads of
     the same ticker: the compile phase is one deterministic step. *)
  Alcotest.(check (float 1e-12)) "deterministic compile clock" 1.0e-6
    (Elastic_sim.Profile.compile_seconds p);
  let t = Elastic_sim.Clock.monotonic () in
  let t' = Elastic_sim.Clock.monotonic () in
  Alcotest.(check bool) "monotonic clock does not go back" true
    (Elastic_sim.Clock.seconds_between t t' >= 0.0)

(* --- the regression gate ------------------------------------------- *)

let gate_fixture =
  Json.Obj
    [ ("schema", Json.Str "elastic-speculation/bench/v1");
      ("mode", Json.Str "quick");
      ("points",
       Json.List
         [ Json.Obj
             [ ("error_rate_pct", Json.Int 0);
               ("spec_throughput", Json.Float 0.951923) ] ]);
      ("engine",
       Json.Obj
         [ ("node_evals", Json.Int 5000);
           ("settle_us_per_cycle", Json.Float 6.5) ]) ]

let rec patch path value j =
  match path, j with
  | [ k ], Json.Obj fields ->
    Json.Obj
      (List.map (fun (k', v) -> if k' = k then (k', value) else (k', v)) fields)
  | k :: rest, Json.Obj fields ->
    Json.Obj
      (List.map
         (fun (k', v) -> if k' = k then (k', patch rest value v) else (k', v))
         fields)
  | path, Json.List items -> (
      match items with
      | [ only ] -> Json.List [ patch path value only ]
      | _ -> j)
  | _, _ -> j

(* The E9 timing fields must be exempt from the baseline diff on every
   machine, while the throughput/ratio claims stay compared. *)
let test_gate_wall_clock_suffixes () =
  List.iter
    (fun path ->
       Alcotest.(check bool) ("skipped: " ^ path) true
         (Gate.wall_clock_key path))
    [ "engine.settle_us_per_cycle";
      "designs[0].levelized_settle_seconds";
      "designs[0].arena_settle_seconds";
      "designs[1].arena_cycles_per_second";
      "designs[1].levelized_cycles_per_second";
      "designs[0].arena_speedup" ];
  List.iter
    (fun path ->
       Alcotest.(check bool) ("compared: " ^ path) true
         (not (Gate.wall_clock_key path)))
    [ "points[2].spec_throughput";
      "designs[0].speedup_ok";
      "designs[0].arena_matches_levelized";
      "designs[0].cycles";
      (* the suffix must be a strict suffix of a longer key, not the
         whole key wearing a disguise *)
      "speedup.total" ]

let test_gate_rules () =
  let diffs b c = Gate.compare ~baseline:b ~current:c () in
  Alcotest.(check int) "identical records pass" 0
    (List.length (diffs gate_fixture gate_fixture));
  (* wall-clock keys are exempt *)
  let warm =
    patch [ "engine"; "settle_us_per_cycle" ] (Json.Float 99.0) gate_fixture
  in
  Alcotest.(check int) "wall-clock drift is not a regression" 0
    (List.length (diffs gate_fixture warm));
  (* floats: inside tolerance passes, outside fails with the path *)
  let close =
    patch
      [ "points"; "spec_throughput" ]
      (Json.Float 0.9519231) gate_fixture
  in
  Alcotest.(check int) "sub-tolerance float drift passes" 0
    (List.length (diffs gate_fixture close));
  let off =
    patch [ "points"; "spec_throughput" ] (Json.Float 0.93) gate_fixture
  in
  (match diffs gate_fixture off with
   | [ d ] ->
     Alcotest.(check string) "the diff names the metric"
       "points[0].spec_throughput" d.Gate.d_path;
     Alcotest.(check bool) "the diff carries the delta" true
       (Helpers.contains d.Gate.d_reason "delta")
   | ds -> Alcotest.failf "expected 1 diff, got %d" (List.length ds));
  (* integers are exact *)
  let evals =
    patch [ "engine"; "node_evals" ] (Json.Int 5001) gate_fixture
  in
  (match diffs gate_fixture evals with
   | [ d ] ->
     Alcotest.(check string) "int drift detected" "engine.node_evals"
       d.Gate.d_path
   | ds -> Alcotest.failf "expected 1 diff, got %d" (List.length ds));
  (* integral floats round-trip as ints; mixed pairs still compare *)
  let as_float =
    patch [ "engine"; "node_evals" ] (Json.Float 5000.0) gate_fixture
  in
  Alcotest.(check int) "int/float pairing is tolerant" 0
    (List.length (diffs gate_fixture as_float));
  (* a mode mismatch is one readable string diff *)
  let full = patch [ "mode" ] (Json.Str "full") gate_fixture in
  (match diffs gate_fixture full with
   | [ d ] -> Alcotest.(check string) "mode diff" "mode" d.Gate.d_path
   | ds -> Alcotest.failf "expected 1 diff, got %d" (List.length ds));
  (* paths must match in both directions *)
  let extra =
    match gate_fixture with
    | Json.Obj fields -> Json.Obj (fields @ [ ("new_metric", Json.Int 1) ])
    | _ -> assert false
  in
  (match diffs gate_fixture extra with
   | [ d ] ->
     Alcotest.(check string) "unexpected path" "new_metric" d.Gate.d_path
   | ds -> Alcotest.failf "expected 1 diff, got %d" (List.length ds));
  match diffs extra gate_fixture with
  | [ d ] ->
    Alcotest.(check bool) "missing path" true
      (Helpers.contains d.Gate.d_reason "missing")
  | ds -> Alcotest.failf "expected 1 diff, got %d" (List.length ds)

(* --- the paper's speculation gain, from the metrics view ----------- *)

let test_speculation_gain () =
  let ops = Alu.operands ~error_rate_pct:5 ~seed:42 50 in
  let cs = Timing.cycle_time (Examples.vl_stalling ~ops).Examples.d_net in
  let cp = Timing.cycle_time (Examples.vl_speculative ~ops).Examples.d_net in
  Alcotest.(check bool) "speculation shortens the clock (Sec. 5.1)" true
    (cp < cs)

let suite =
  [ Alcotest.test_case "histogram: exact unit buckets below 16" `Quick
      test_histogram_exact_below_16;
    Alcotest.test_case "histogram: clamping and quantile domain" `Quick
      test_histogram_negative_clamps;
    Alcotest.test_case "histogram: snapshot isolation and reset" `Quick
      test_snapshot_isolation_and_reset;
    QCheck_alcotest.to_alcotest qcheck_merge_associative;
    QCheck_alcotest.to_alcotest qcheck_merge_is_union;
    QCheck_alcotest.to_alcotest qcheck_quantile_monotone;
    Alcotest.test_case "registry: names, labels, kinds, find" `Quick
      test_registry_contract;
    Alcotest.test_case "registry: snapshot merge" `Quick test_snapshot_merge;
    Alcotest.test_case "hot path: updates allocate nothing" `Quick
      test_instruments_allocation_free;
    Alcotest.test_case "json: round-trip and rejection" `Quick
      test_json_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_json_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_json_corrupt_prefix;
    Alcotest.test_case "json: nesting cap instead of stack overflow" `Quick
      test_json_depth_cap;
    Alcotest.test_case "samples: exact json round-trip (hex gauges)" `Quick
      test_sample_json_roundtrip;
    Alcotest.test_case "samples: malformed images are rejected" `Quick
      test_sample_json_rejects_malformed;
    Alcotest.test_case "prometheus: exposition is well-formed" `Quick
      test_prometheus_well_formed;
    Alcotest.test_case "sampler: counters match scheduler ground truth"
      `Quick test_sampler_ground_truth;
    Alcotest.test_case "sampler: JSONL windows parse" `Quick
      test_sampler_jsonl_windows;
    Alcotest.test_case "sampler: recovery classifications" `Quick
      test_note_recovery;
    Alcotest.test_case "clock: injectable and monotonic" `Quick
      test_clock_injection;
    Alcotest.test_case "gate: tolerance and path rules" `Quick
      test_gate_rules;
    Alcotest.test_case "gate: wall-clock suffixes cover the E9 timings"
      `Quick test_gate_wall_clock_suffixes;
    Alcotest.test_case "speculation gain is positive" `Quick
      test_speculation_gain ]
