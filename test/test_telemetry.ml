(* lib/telemetry: HTTP parsing (unit + qcheck fuzz — no input may
   raise), the heartbeat watchdog on a deterministic injected clock
   (stall / recover / episode counting), the hub's endpoint handler,
   the socket server end to end on an ephemeral port, and the shell's
   serve / --serve / runner status --json surface. *)

module Http = Elastic_telemetry.Http
module Watchdog = Elastic_telemetry.Watchdog
module Telemetry = Elastic_telemetry.Telemetry
module Progress = Elastic_runner.Progress
module Runner = Elastic_runner.Runner
module Metrics = Elastic_metrics.Metrics
module Json = Elastic_metrics.Json
module Clock = Elastic_sim.Clock
module Shell = Elastic_core.Shell

let valid_request = "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n"

(* ------------------------------------------------------------------ *)
(* HTTP parsing                                                        *)

let test_http_parse () =
  (match Http.parse valid_request with
   | Ok r ->
     Alcotest.(check string) "meth" "GET" r.Http.meth;
     Alcotest.(check string) "target" "/metrics" r.Http.target
   | Error _ -> Alcotest.fail "valid request rejected");
  (match Http.parse "GET /x HTTP/1.0\n\n" with
   | Ok r -> Alcotest.(check string) "bare-LF target" "/x" r.Http.target
   | Error _ -> Alcotest.fail "bare-LF client rejected");
  let malformed s =
    match Http.parse s with
    | Error (Http.Malformed _) -> ()
    | Ok _ -> Alcotest.failf "%S parsed" s
    | Error _ -> Alcotest.failf "%S not flagged malformed" s
  in
  malformed "BOGUS\r\n\r\n";
  malformed "GET noslash HTTP/1.1\r\n\r\n";
  malformed "GET /x SPDY/3\r\n\r\n";
  malformed "GET  /x HTTP/1.1\r\n\r\n";
  malformed "G@T /x HTTP/1.1\r\n\r\n";
  (* The request line alone is enough to answer 400: no terminator
     needed. *)
  malformed "BOGUS\r\n";
  (match Http.parse "GET /x HTTP/1.1\r\nHost: h\r\n" with
   | Error Http.Incomplete -> ()
   | _ -> Alcotest.fail "unterminated head should be Incomplete");
  (match Http.parse (String.make (Http.max_head_bytes + 1) 'A') with
   | Error Http.Too_long -> ()
   | _ -> Alcotest.fail "oversized head should be Too_long")

let test_http_response () =
  let r = Http.response ~status:503 ~content_type:"text/plain" "nope\n" in
  Alcotest.(check bool) "status line" true
    (Helpers.contains r "HTTP/1.1 503 Service Unavailable");
  Alcotest.(check bool) "length" true
    (Helpers.contains r "Content-Length: 5");
  Alcotest.(check bool) "close" true
    (Helpers.contains r "Connection: close")

let qcheck_http =
  let open QCheck in
  [ QCheck_alcotest.to_alcotest
      (Test.make ~name:"qcheck: no byte soup makes the parser raise"
         ~count:2000
         (string_gen Gen.(map Char.chr (int_bound 255)))
         (fun s ->
            match Http.parse s with
            | Ok _ | Error _ -> true));
    QCheck_alcotest.to_alcotest
      (Test.make
         ~name:"qcheck: torn reads of a valid request are Incomplete"
         ~count:200
         (int_bound (String.length valid_request - 1))
         (fun n ->
            (* Every strict prefix — a partial TCP read — asks for more
               bytes rather than parsing or erroring. *)
            match Http.parse (String.sub valid_request 0 n) with
            | Error Http.Incomplete -> true
            | Ok _ | Error _ -> false));
    QCheck_alcotest.to_alcotest
      (Test.make
         ~name:"qcheck: junk appended to a full head never unparses it"
         ~count:500 (string_gen Gen.printable)
         (fun junk ->
            match Http.parse (valid_request ^ junk) with
            | Ok r -> r.Http.target = "/metrics"
            | Error _ -> false)) ]

(* ------------------------------------------------------------------ *)
(* Watchdog on a deterministic clock                                   *)

(* One ticker reading = one second.  Readings: Progress.create takes
   one, start_shard/beat/complete take one each, every Watchdog.check
   takes exactly one — so stall timing below is exact, not timing
   dependent. *)
let test_watchdog_stall_recover () =
  let clock = Clock.ticker ~step_ns:1_000_000_000L in
  let p = Progress.create ~clock ~name:"wd" ~ids:[| "a"; "b" |] () in
  let reg = Metrics.create () in
  let w = Watchdog.create ~deadline_s:3.0 ~registry:reg p in
  Watchdog.check w;
  Alcotest.(check bool) "idle plane is healthy" true (Watchdog.healthy w);
  Progress.start_shard p ~shard:0 ~worker:0 ~attempt:1;
  (* beat at t=3s; checks read t=4,5,6 (age 1,2,3 <= deadline)... *)
  Watchdog.check w;
  Watchdog.check w;
  Watchdog.check w;
  Alcotest.(check bool) "within deadline" true (Watchdog.healthy w);
  Alcotest.(check int) "no episode yet" 0 (Watchdog.stalls w);
  (* ...and t=7 (age 4 > 3): the stall. *)
  Watchdog.check w;
  Alcotest.(check bool) "stalled" false (Watchdog.healthy w);
  Alcotest.(check int) "one episode" 1 (Watchdog.stalls w);
  (* More polls of the same stall are NOT more episodes. *)
  Watchdog.check w;
  Watchdog.check w;
  Alcotest.(check int) "still one episode" 1 (Watchdog.stalls w);
  (* The worker comes back: one beat and the next check is healthy. *)
  Progress.beat p ~shard:0;
  Watchdog.check w;
  Alcotest.(check bool) "recovered" true (Watchdog.healthy w);
  Alcotest.(check int) "episode count kept" 1 (Watchdog.stalls w);
  (* Silence again: a second, distinct episode. *)
  Watchdog.check w;
  Watchdog.check w;
  Watchdog.check w;
  Alcotest.(check bool) "stalled again" false (Watchdog.healthy w);
  Alcotest.(check int) "two episodes" 2 (Watchdog.stalls w);
  (* Completion clears the flag for good: completed shards never
     stall, however stale their last beat. *)
  Progress.complete p ~shard:0 ~seconds:1.0 [];
  Watchdog.check w;
  Watchdog.check w;
  Watchdog.check w;
  Watchdog.check w;
  Alcotest.(check bool) "healthy after completion" true
    (Watchdog.healthy w);
  Alcotest.(check int) "episodes frozen" 2 (Watchdog.stalls w)

let test_watchdog_pending_never_stalls () =
  let clock = Clock.ticker ~step_ns:1_000_000_000L in
  let p = Progress.create ~clock ~name:"wd" ~ids:[| "a" |] () in
  let w = Watchdog.create ~deadline_s:1.0 ~registry:(Metrics.create ()) p in
  for _ = 1 to 50 do Watchdog.check w done;
  Alcotest.(check bool) "pending shard never stalls" true
    (Watchdog.healthy w);
  Alcotest.(check int) "no episodes" 0 (Watchdog.stalls w)

(* ------------------------------------------------------------------ *)
(* Hub handler (no sockets)                                            *)

let test_handle_endpoints () =
  let hub = Telemetry.create () in
  let get target = Telemetry.handle hub ~meth:"GET" ~target in
  let code, _, body = get "/healthz" in
  Alcotest.(check int) "healthz" 200 code;
  Alcotest.(check string) "ok body" "ok\n" body;
  let code, ctype, body = get "/metrics" in
  Alcotest.(check int) "metrics" 200 code;
  Alcotest.(check bool) "prometheus content type" true
    (Helpers.contains ctype "version=0.0.4");
  Alcotest.(check bool) "build info present" true
    (Helpers.contains body "elastic_build_info{");
  Alcotest.(check bool) "request counter present" true
    (Helpers.contains body "elastic_telemetry_requests_total");
  let code, _, body = get "/status" in
  Alcotest.(check int) "status" 200 code;
  (match Json.parse body with
   | Ok j ->
     Alcotest.(check bool) "schema" true
       (Json.member "schema" j
        = Some (Json.Str "elastic-speculation/status/v1"));
     Alcotest.(check bool) "idle source" true
       (Json.member "source" j = Some (Json.Str "idle"))
   | Error m -> Alcotest.failf "status not JSON: %s" m);
  let code, _, _ = get "/spans.jsonl" in
  Alcotest.(check int) "spans" 200 code;
  let code, _, _ = get "/nope" in
  Alcotest.(check int) "404" 404 code;
  let code, _, _ = get "/status?pretty=1" in
  Alcotest.(check int) "query string ignored" 200 code;
  let code, _, _ = Telemetry.handle hub ~meth:"POST" ~target:"/metrics" in
  Alcotest.(check int) "405" 405 code

let int_field j k =
  match Json.member k j with
  | Some (Json.Int n) -> n
  | _ -> Alcotest.failf "status field %S missing" k

(* Runner integration: progress published during a real (tiny) run,
   status counts summing to the shard total, watchdog quiet. *)
let test_handle_live_campaign () =
  let tasks =
    List.init 6 (fun i ->
        { Runner.id = Fmt.str "t/%d" i; Runner.work = (fun _ -> []) })
  in
  let ids =
    Array.of_list (List.map (fun (t : Runner.task) -> t.Runner.id) tasks)
  in
  let p = Progress.create ~name:"tiny" ~ids () in
  let hub = Telemetry.create () in
  Telemetry.set_progress hub (Some p);
  let r =
    Runner.run ~workers:2 ~sleep:(fun _ -> ())
      ~registry:(Telemetry.registry hub) ~progress:p ~name:"tiny" tasks
  in
  Alcotest.(check int) "all completed" 6 r.Runner.r_completed;
  let _, _, body = Telemetry.handle hub ~meth:"GET" ~target:"/status" in
  let j =
    match Json.parse body with
    | Ok j -> j
    | Error m -> Alcotest.failf "status not JSON: %s" m
  in
  Alcotest.(check int) "shards" 6 (int_field j "shards");
  Alcotest.(check int) "completed" 6 (int_field j "completed");
  Alcotest.(check int) "sum invariant" (int_field j "shards")
    (int_field j "pending" + int_field j "running"
     + int_field j "completed" + int_field j "failed");
  Alcotest.(check bool) "live source" true
    (Json.member "source" j = Some (Json.Str "live"));
  let code, _, _ = Telemetry.handle hub ~meth:"GET" ~target:"/healthz" in
  Alcotest.(check int) "healthy after the run" 200 code;
  (* A progress plane whose width disagrees with the task list must be
     rejected up front, not half-published. *)
  (try
     ignore
       (Runner.run ~workers:1 ~sleep:(fun _ -> ()) ~progress:p
          ~name:"short"
          [ { Runner.id = "only"; Runner.work = (fun _ -> []) } ]);
     Alcotest.fail "shard-count mismatch accepted"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Socket server end to end                                            *)

let http_get ~port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
       Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
       let req = Fmt.str "GET %s HTTP/1.1\r\n\r\n" path in
       let _ =
         Unix.write sock (Bytes.unsafe_of_string req) 0 (String.length req)
       in
       let buf = Buffer.create 1024 in
       let chunk = Bytes.create 1024 in
       let rec drain () =
         let k = Unix.read sock chunk 0 (Bytes.length chunk) in
         if k > 0 then begin
           Buffer.add_subbytes buf chunk 0 k;
           drain ()
         end
       in
       drain ();
       Buffer.contents buf)

let test_server_end_to_end () =
  let hub = Telemetry.create () in
  let port =
    match Telemetry.start ~port:0 hub with
    | Ok p -> p
    | Error m -> Alcotest.failf "start: %s" m
  in
  Alcotest.(check bool) "ephemeral port" true (port > 0);
  Alcotest.(check bool) "port observable" true
    (Telemetry.port hub = Some port);
  (match Telemetry.start ~port:0 hub with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "double start accepted");
  let r = http_get ~port "/healthz" in
  Alcotest.(check bool) "200 over the wire" true
    (Helpers.contains r "HTTP/1.1 200 OK");
  Alcotest.(check bool) "body over the wire" true (Helpers.contains r "ok");
  let r = http_get ~port "/metrics" in
  Alcotest.(check bool) "metrics over the wire" true
    (Helpers.contains r "elastic_build_info");
  let r = http_get ~port "/nope" in
  Alcotest.(check bool) "404 over the wire" true
    (Helpers.contains r "HTTP/1.1 404");
  (* Protocol garbage gets 400, not a dropped connection. *)
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let junk = "BOGUS\r\n\r\n" in
  let _ = Unix.write sock (Bytes.unsafe_of_string junk) 0 (String.length junk) in
  let b = Bytes.create 256 in
  let k = Unix.read sock b 0 256 in
  Unix.close sock;
  Alcotest.(check bool) "400 over the wire" true
    (Helpers.contains (Bytes.sub_string b 0 (max k 0)) "HTTP/1.1 400");
  Telemetry.stop hub;
  Alcotest.(check bool) "no port after stop" true (Telemetry.port hub = None);
  (* stop is idempotent, and the port is free again. *)
  Telemetry.stop hub;
  match Telemetry.start ~port hub with
  | Ok p ->
    Alcotest.(check int) "rebind same port" port p;
    Telemetry.stop hub
  | Error m -> Alcotest.failf "rebind after stop: %s" m

(* ------------------------------------------------------------------ *)
(* Shell surface                                                       *)

let exec s line =
  match Shell.execute s line with
  | Ok out -> out
  | Error m -> Alcotest.failf "command %S failed: %s" line m

let expect_error s line =
  match Shell.execute s line with
  | Ok out -> Alcotest.failf "command %S unexpectedly succeeded: %s" line out
  | Error m -> m

let test_shell_serve () =
  let s = Shell.create () in
  let out = exec s "serve 0" in
  Alcotest.(check bool) "announces URL" true
    (Helpers.contains out "http://127.0.0.1:");
  let m = expect_error s "serve 0" in
  Alcotest.(check bool) "second serve refused" true
    (Helpers.contains m "already");
  Alcotest.(check string) "stop" "telemetry server stopped"
    (exec s "serve stop");
  let m = expect_error s "serve stop" in
  Alcotest.(check bool) "stop without server" true
    (Helpers.contains m "no telemetry server");
  let m = expect_error s "serve 70000" in
  Alcotest.(check bool) "port range checked" true
    (Helpers.contains m "0..65535")

let test_shell_campaign_serve () =
  let s = Shell.create () in
  let _ = exec s "load rs-alarmed" in
  let m =
    expect_error s "campaign flips src.out0->op_fork.in0 4 42 --serve 0"
  in
  Alcotest.(check bool) "--serve needs --par" true
    (Helpers.contains m "--par");
  let out =
    exec s "campaign flips src.out0->op_fork.in0 4 42 --par 2 --serve 0"
  in
  Alcotest.(check bool) "campaign completed" true
    (Helpers.contains out "4 completed");
  Alcotest.(check bool) "ephemeral server reported" true
    (Helpers.contains out "telemetry: served http://127.0.0.1:");
  (* With a session server up, the campaign publishes there and --serve
     is a conflict. *)
  let _ = exec s "serve 0" in
  let m =
    expect_error s "campaign flips src.out0->op_fork.in0 4 42 --par 2 \
                    --serve 0"
  in
  Alcotest.(check bool) "--serve conflicts with serve" true
    (Helpers.contains m "already");
  let out = exec s "campaign flips src.out0->op_fork.in0 4 42 --par 2" in
  Alcotest.(check bool) "campaign under session server" true
    (Helpers.contains out "4 completed");
  let _ = exec s "serve stop" in
  ()

let test_shell_runner_status_json () =
  let s = Shell.create () in
  let _ = exec s "load rs-alarmed" in
  let file = Filename.temp_file "telemetry_status" ".jsonl" in
  let _ =
    exec s
      (Fmt.str
         "campaign flips src.out0->op_fork.in0 5 42 --par 1 --checkpoint %s"
         file)
  in
  let out = exec s (Fmt.str "runner status %s --json" file) in
  Sys.remove file;
  let j =
    match Json.parse out with
    | Ok j -> j
    | Error m -> Alcotest.failf "--json output not JSON: %s" m
  in
  Alcotest.(check bool) "schema" true
    (Json.member "schema" j
     = Some (Json.Str "elastic-speculation/status/v1"));
  Alcotest.(check bool) "checkpoint source" true
    (Json.member "source" j = Some (Json.Str "checkpoint"));
  Alcotest.(check int) "all checkpointed" 5 (int_field j "completed");
  Alcotest.(check int) "sum invariant" (int_field j "shards")
    (int_field j "pending" + int_field j "running"
     + int_field j "completed" + int_field j "failed")

let suite =
  [ Alcotest.test_case "http: request parsing" `Quick test_http_parse;
    Alcotest.test_case "http: response rendering" `Quick
      test_http_response ]
  @ qcheck_http
  @ [ Alcotest.test_case "watchdog: stall, recover, episode counting"
        `Quick test_watchdog_stall_recover;
      Alcotest.test_case "watchdog: pending shards never stall" `Quick
        test_watchdog_pending_never_stalls;
      Alcotest.test_case "hub: endpoint dispatch" `Quick
        test_handle_endpoints;
      Alcotest.test_case "hub: live campaign status invariants" `Quick
        test_handle_live_campaign;
      Alcotest.test_case "server: end to end on an ephemeral port"
        `Quick test_server_end_to_end;
      Alcotest.test_case "shell: serve / serve stop" `Quick
        test_shell_serve;
      Alcotest.test_case "shell: campaign --serve" `Quick
        test_shell_campaign_serve;
      Alcotest.test_case "shell: runner status --json" `Quick
        test_shell_runner_status_json ]
