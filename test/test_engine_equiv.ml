open Elastic_kernel
open Elastic_netlist
open Elastic_sim
open Elastic_core
open Elastic_datapath
open Elastic_trace
open Elastic_metrics
open Helpers

(* Differential testing of the three evaluation backends: the reference
   fixpoint, the levelized scheduler and the flat-arena evaluator.  On
   every design — the paper's figures and examples, random pipelines,
   mux diamonds and word-width datapaths, with and without fault
   injection — all modes must produce bit-identical signal traces, sink
   streams, statistics counters, rendered trace event streams, metrics
   snapshots and final register state.

   The one sanctioned divergence: the reference fixpoint re-evaluates
   every node every pass, so its eval counters (node evals, settle
   passes, convergence retries) exceed the scheduled backends'.  Those
   metric families are filtered from the reference comparison only; the
   levelized/arena comparison is byte-exact over the full render. *)

let violation_keys eng =
  List.map
    (fun (ch, v) -> (ch, v.Protocol.property))
    (Engine.violations eng)

let sinks_of net =
  List.filter_map
    (fun (n : Netlist.node) ->
       match n.Netlist.kind with
       | Netlist.Sink _ -> Some n.Netlist.id
       | Netlist.Source _ | Netlist.Buffer _ | Netlist.Func _
       | Netlist.Fork _ | Netlist.Mux _ | Netlist.Shared _
       | Netlist.Varlat _ -> None)
    (Netlist.nodes net)

(* Metric families whose values depend on how many times nodes were
   evaluated — the only quantities the reference fixpoint is allowed to
   differ on. *)
let eval_cost_family name =
  Helpers.contains name "node_evals"
  || Helpers.contains name "settle_passes"
  || Helpers.contains name "convergence_retry"

let render_samples ?(keep = fun _ -> true) samples =
  Prometheus.render
    (List.filter (fun (s : Metrics.sample) -> keep s.Metrics.m_name) samples)

type harnessed = {
  h_mode : Engine.eval_mode;
  h_eng : Engine.t;
  h_tracer : Tracer.t;
  h_sampler : Sampler.t;
  h_step : unit -> unit;
}

(* Run all three modes in lockstep, comparing every channel's resolved
   signal on every cycle, then the cumulative observations, the
   rendered trace event stream and the metrics snapshot.  Fault plans
   are stateful, so each engine gets its own identical plan.  If one
   mode raises, the others must raise the same error on the same
   cycle.  Engines run on deterministic tick clocks, so even the
   settle-seconds gauges must agree byte-for-byte. *)
let run_trio ~name ?(cycles = 200) ?faults net =
  let make mode =
    let eng =
      Engine.create ~mode ~clock:(Clock.ticker ~step_ns:100L) net
    in
    let tracer = Tracer.attach ~capacity:1_000_000 eng in
    let sampler = Sampler.create eng in
    Engine.set_observer eng (Some (Sampler.observe sampler));
    let step =
      match faults with
      | None -> fun () -> Engine.step eng
      | Some fs ->
        let plan = Elastic_fault.Fault.plan net fs in
        Engine.set_injector eng (Some (Elastic_fault.Fault.injector plan));
        fun () ->
          Engine.step eng ~choices:(fun nid ->
              Elastic_fault.Fault.choices plan ~cycle:(Engine.cycle eng)
                nid);
          Elastic_fault.Fault.observe plan eng
    in
    { h_mode = mode; h_eng = eng; h_tracer = tracer; h_sampler = sampler;
      h_step = step }
  in
  let lev = make Engine.Levelized in
  let others = [ make Engine.Reference; make Engine.Arena ] in
  let chans = Netlist.channels net in
  let safe h =
    try
      h.h_step ();
      None
    with Engine.Simulation_error e -> Some (Engine.error_to_string e)
  in
  let rec loop cyc =
    if cyc > cycles then false
    else
      match safe lev with
      | None ->
        List.iter
          (fun o ->
             match safe o with
             | Some b ->
               Alcotest.failf "%s: cycle %d: only %s raised: %s" name cyc
                 (Engine.mode_name o.h_mode) b
             | None ->
               List.iter
                 (fun (c : Netlist.channel) ->
                    let sl = Engine.signal lev.h_eng c.Netlist.ch_id
                    and so = Engine.signal o.h_eng c.Netlist.ch_id in
                    if not (Signal.equal sl so) then
                      Alcotest.failf
                        "%s: cycle %d, channel %s: levelized %a but %s %a"
                        name cyc c.Netlist.ch_name Signal.pp sl
                        (Engine.mode_name o.h_mode) Signal.pp so)
                 chans)
          others;
        loop (cyc + 1)
      | Some a ->
        List.iter
          (fun o ->
             match safe o with
             | Some b ->
               Alcotest.(check string)
                 (Fmt.str "%s: %s fails identically at cycle %d" name
                    (Engine.mode_name o.h_mode) cyc)
                 a b
             | None ->
               Alcotest.failf "%s: cycle %d: only levelized raised: %s"
                 name cyc a)
          others;
        true
  in
  let crashed = loop 1 in
  if not crashed then
    List.iter
      (fun o ->
         let mode = Engine.mode_name o.h_mode in
         let el = lev.h_eng and eo = o.h_eng in
         List.iter
           (fun (c : Netlist.channel) ->
              let id = c.Netlist.ch_id in
              Alcotest.(check int)
                (Fmt.str "%s: %s: delivered on %s" name mode
                   c.Netlist.ch_name)
                (Engine.delivered el id) (Engine.delivered eo id);
              Alcotest.(check int)
                (Fmt.str "%s: %s: killed on %s" name mode c.Netlist.ch_name)
                (Engine.killed el id) (Engine.killed eo id);
              Alcotest.(check (triple int int int))
                (Fmt.str "%s: %s: activity on %s" name mode
                   c.Netlist.ch_name)
                (Engine.activity el id) (Engine.activity eo id))
           chans;
         List.iter
           (fun snk ->
              let entries eng =
                List.map
                  (fun (e : Transfer.entry) ->
                     (e.Transfer.cycle, e.Transfer.value))
                  (Transfer.entries (Engine.sink_stream eng snk))
              in
              Alcotest.(check (list (pair int value)))
                (Fmt.str "%s: %s: sink stream" name mode)
                (entries el) (entries eo))
           (sinks_of net);
         Alcotest.(check (list (pair string string)))
           (Fmt.str "%s: %s: protocol violations" name mode)
           (violation_keys el) (violation_keys eo);
         Alcotest.(check string)
           (Fmt.str "%s: %s: final register state" name mode)
           (Engine.state_key el) (Engine.state_key eo);
         (* The rendered event stream is backend-independent: compare
            the full JSONL text byte-for-byte. *)
         Alcotest.(check string)
           (Fmt.str "%s: %s: trace event stream" name mode)
           (Jsonl.to_string net (Tracer.events lev.h_tracer))
           (Jsonl.to_string net (Tracer.events o.h_tracer));
         let keep =
           match o.h_mode with
           | Engine.Reference -> fun n -> not (eval_cost_family n)
           | Engine.Levelized | Engine.Arena -> fun _ -> true
         in
         Alcotest.(check string)
           (Fmt.str "%s: %s: metrics snapshot" name mode)
           (render_samples ~keep (Sampler.sample lev.h_sampler el))
           (render_samples ~keep (Sampler.sample o.h_sampler eo)))
      others

(* --- the paper's designs ------------------------------------------- *)

let design_cases =
  let case name mk =
    Alcotest.test_case name `Quick (fun () -> run_trio ~name (mk ()))
  in
  [ case "fig1a" (fun () -> (Figures.fig1a ()).Figures.net);
    case "fig1b" (fun () -> (Figures.fig1b ()).Figures.net);
    case "fig1c" (fun () -> (Figures.fig1c ()).Figures.net);
    case "fig1d" (fun () -> (Figures.fig1d ()).Figures.net);
    case "table1" (fun () -> (Figures.table1 ()).Figures.t1_net);
    case "vl_stalling" (fun () ->
        let ops = Alu.operands ~error_rate_pct:10 ~seed:7 100 in
        (Examples.vl_stalling ~ops).Examples.d_net);
    case "vl_speculative" (fun () ->
        let ops = Alu.operands ~error_rate_pct:10 ~seed:7 100 in
        (Examples.vl_speculative ~ops).Examples.d_net);
    case "rs_nonspeculative" (fun () ->
        let ops = Examples.rs_ops ~error_rate_pct:10 ~seed:5 100 in
        (Examples.rs_nonspeculative ~ops).Examples.d_net);
    case "rs_speculative" (fun () ->
        let ops = Examples.rs_ops ~error_rate_pct:10 ~seed:5 100 in
        (Examples.rs_speculative ~ops).Examples.d_net);
    case "rs_speculative_alarmed" (fun () ->
        let ops = Examples.rs_ops ~error_rate_pct:10 ~seed:5 100 in
        (fst (Examples.rs_speculative_alarmed ~ops)).Examples.d_net);
    case "vl_speculative all-error" (fun () ->
        (* every operation takes the slow path: the recovery machinery
           (replay, anti-token kills) is exercised on each token *)
        let ops = Alu.operands ~error_rate_pct:100 ~seed:3 60 in
        (Examples.vl_speculative ~ops).Examples.d_net);
    case "vl_stalling error-free" (fun () ->
        let ops = Alu.operands ~error_rate_pct:0 ~seed:3 60 in
        (Examples.vl_stalling ~ops).Examples.d_net);
    case "pc_loop" (fun () -> (Examples.pc_loop ()).Examples.pl_net) ]

(* --- degenerate structures ------------------------------------------ *)

(* The zero-node netlist and the smallest populated one: the arena's
   index arithmetic must survive empty arrays and single-element
   buffers. *)
let degenerate_cases =
  let case name mk =
    Alcotest.test_case name `Quick (fun () ->
        run_trio ~name ~cycles:50 (mk ()))
  in
  [ case "zero-node netlist" (fun () -> Netlist.empty);
    case "single channel source->sink" (fun () ->
        let b = builder () in
        let s = src_stream b ~name:"src" [ 1; 2; 3 ] in
        let k = sink b ~name:"snk" () in
        let _ = conn b (s, Out 0) (k, In 0) in
        b.net);
    case "init-token drain order" (fun () ->
        (* pre-seeded buffers: the arena must read the shared register
           state, not reconstruct it *)
        let b = builder () in
        let s = src_stream b ~name:"src" [ 10; 11; 12 ] in
        let e1 = eb b ~name:"e1" ~init:[ Value.Int 1; Value.Int 2 ] () in
        let e2 = eb0 b ~name:"e2" ~init:[ Value.Int 3 ] () in
        let k = sink_pattern b ~name:"snk" [| true; false; false |] in
        let _ = conn b (s, Out 0) (e1, In 0) in
        let _ = conn b (e1, Out 0) (e2, In 0) in
        let _ = conn b (e2, Out 0) (k, In 0) in
        b.net) ]

(* --- the same designs under fault injection ------------------------- *)

let first_channel net = (List.hd (Netlist.channels net)).Netlist.ch_id

let fault_cases =
  let open Elastic_fault in
  let case name mk_net mk_faults =
    Alcotest.test_case (name ^ " under faults") `Quick (fun () ->
        let net = mk_net () in
        run_trio ~name ~cycles:120 ~faults:(mk_faults net) net)
  in
  [ case "rs_speculative" (fun () ->
        let ops = Examples.rs_ops ~error_rate_pct:5 ~seed:5 60 in
        (Examples.rs_speculative ~ops).Examples.d_net)
      (fun net ->
         let ch = first_channel net in
         [ Fault.flip_bit ~channel:ch ~cycle:10 3;
           Fault.drop_token ~channel:ch ~cycle:30;
           Fault.stuck_stall ~channel:ch ~cycle:50 ~duration:3 ]);
    case "fig1d" (fun () -> (Figures.fig1d ()).Figures.net)
      (fun net ->
         let ch = first_channel net in
         Fault.control_glitch ~channel:ch ~cycle:25
         @ [ Fault.duplicate_token ~channel:ch ~cycle:60 ]);
    case "table1" (fun () -> (Figures.table1 ()).Figures.t1_net)
      (fun net ->
         let ch = first_channel net in
         [ Fault.duplicate_token ~channel:ch ~cycle:15;
           Fault.flip_bit ~channel:ch ~cycle:40 0;
           Fault.drop_token ~channel:ch ~cycle:70 ]) ]

(* --- random structures ---------------------------------------------- *)

let pipe_equiv =
  let open QCheck in
  Test.make ~name:"qcheck: all modes agree on random pipelines"
    ~count:120
    (make ~print:Test_sim_property.print_pipe Test_sim_property.gen_pipe)
    (fun p ->
       let net, _, _, _ = Test_sim_property.build_pipe p in
       run_trio ~name:"pipe" net;
       true)

type diamond = {
  d_ways : int;
  d_early : bool;
  d_sel : int list;  (* select stream, reduced mod d_ways *)
  d_buf : Netlist.buffer_kind;
  d_stall : int;
  d_seed : int;
}

let gen_diamond =
  let open QCheck.Gen in
  let* d_ways = int_range 2 4 in
  let* d_early = bool in
  let* d_sel = list_size (int_range 5 40) (int_bound 3) in
  let* d_buf = oneofl [ Netlist.Eb; Netlist.Eb0 ] in
  let* d_stall = int_bound 80 in
  let* d_seed = int_bound 10000 in
  return { d_ways; d_early; d_sel; d_buf; d_stall; d_seed }

let print_diamond d =
  Fmt.str "ways=%d early=%b buf=%s stall=%d%% seed=%d sel=[%a]" d.d_ways
    d.d_early
    (Netlist.buffer_kind_name d.d_buf)
    d.d_stall d.d_seed
    Fmt.(list ~sep:nop int)
    (List.map (fun s -> s mod d.d_ways) d.d_sel)

(* A multi-way mux diamond: every arm is buffered, so an early mux
   steers anti-tokens into each arm it did not pick — with up to three
   unselected arms carrying anti-tokens in flight at once. *)
let build_diamond d =
  let b = builder () in
  let sel =
    add b ~name:"sel"
      (Source (Stream (ints (List.map (fun s -> s mod d.d_ways) d.d_sel))))
  in
  let m = add b ~name:"mux" (Mux { ways = d.d_ways; early = d.d_early }) in
  let k =
    add b ~name:"snk"
      (Sink (Random_stall { pct = d.d_stall; seed = d.d_seed }))
  in
  let _ = conn b (sel, Out 0) (m, Sel) in
  for w = 0 to d.d_ways - 1 do
    let s =
      add b ~name:(Fmt.str "s%d" w)
        (Source (Counter { start = 100 * w; step = 1 }))
    in
    let e =
      add b ~name:(Fmt.str "arm%d" w) (Buffer { buffer = d.d_buf; init = [] })
    in
    let _ = conn b (s, Out 0) (e, In 0) in
    let _ = conn b (e, Out 0) (m, In w) in
    ()
  done;
  let _ = conn b (m, Out 0) (k, In 0) in
  b.net

let diamond_equiv =
  let open QCheck in
  Test.make ~name:"qcheck: all modes agree on random mux diamonds"
    ~count:120
    (make ~print:print_diamond gen_diamond)
    (fun d ->
       run_trio ~name:"diamond" (build_diamond d);
       true)

(* --- word-width datapaths ------------------------------------------- *)

type word_pipe = {
  w_width : int;  (* 1 / 32 / 63 / 64 — the Bigarray boundary cases *)
  w_vals : int64 list;
  w_stages : int;
  w_stall : int;
  w_seed : int;
}

let mask_to_width width v =
  if width >= 64 then v
  else Int64.logand v (Int64.sub (Int64.shift_left 1L width) 1L)

let gen_word_pipe =
  let open QCheck.Gen in
  let* w_width = oneofl [ 1; 32; 63; 64 ] in
  let edge =
    oneofl
      [ 0L; 1L; Int64.minus_one; Int64.max_int; Int64.min_int;
        0xDEAD_BEEF_CAFE_F00DL ]
  in
  let* w_vals =
    list_size (int_range 4 24)
      (oneof [ edge; map Int64.of_int (int_bound 1_000_000) ])
  in
  let* w_stages = int_range 1 3 in
  let* w_stall = int_bound 70 in
  let* w_seed = int_bound 10000 in
  return
    { w_width; w_vals = List.map (mask_to_width w_width) w_vals;
      w_stages; w_stall; w_seed }

let print_word_pipe w =
  Fmt.str "width=%d stages=%d stall=%d%% seed=%d vals=[%a]" w.w_width
    w.w_stages w.w_stall w.w_seed
    Fmt.(list ~sep:semi (fun ppf v -> pf ppf "%Lx" v))
    w.w_vals

(* Word payloads ride the arena's Bigarray data plane; an int64
   rotate keeps every stage's payload width-exact. *)
let build_word_pipe w =
  let b = builder () in
  let s =
    add b ~name:"src"
      (Source (Stream (List.map (fun v -> Value.Word v) w.w_vals)))
  in
  let rot =
    Func.make ~name:"rot1" ~arity:1 ~delay:1.0 ~area:8.0 (function
      | [ v ] ->
        let x = Value.to_word v in
        let r =
          Int64.logor (Int64.shift_left x 1)
            (Int64.shift_right_logical x 63)
        in
        Value.Word (mask_to_width w.w_width r)
      | _ -> assert false)
  in
  let k =
    add b ~name:"snk"
      (Sink (Random_stall { pct = w.w_stall; seed = w.w_seed }))
  in
  let prev = ref s in
  for i = 0 to w.w_stages - 1 do
    let f = add b ~name:(Fmt.str "rot%d" i) (Func rot) in
    let e = add b ~name:(Fmt.str "eb%d" i) (Buffer { buffer = Eb; init = [] }) in
    let _ = conn b ~width:w.w_width (!prev, Out 0) (f, In 0) in
    let _ = conn b ~width:w.w_width (f, Out 0) (e, In 0) in
    prev := e
  done;
  let _ = conn b ~width:w.w_width (!prev, Out 0) (k, In 0) in
  b.net

let word_pipe_equiv =
  let open QCheck in
  Test.make ~name:"qcheck: all modes agree on word-width pipelines"
    ~count:100
    (make ~print:print_word_pipe gen_word_pipe)
    (fun w ->
       run_trio ~name:"word pipe" (build_word_pipe w);
       true)

(* --- shared modules under every scheduler --------------------------- *)

type shared_spec = {
  sh_ways : int;
  sh_sched : Elastic_sched.Scheduler.spec;
  sh_rates : int list;  (* per-way source offer rate *)
  sh_stall : int;
  sh_seed : int;
}

let gen_shared =
  let open QCheck.Gen in
  let open Elastic_sched in
  let* sh_ways = int_range 2 3 in
  let* sh_sched =
    (* the two-bit counter is a binary predictor *)
    oneofl
      (if sh_ways = 2 then
         [ Scheduler.Static 0; Scheduler.Toggle; Scheduler.Sticky;
           Scheduler.Two_bit; Scheduler.Round_robin ]
       else
         [ Scheduler.Static 0; Scheduler.Toggle; Scheduler.Sticky;
           Scheduler.Round_robin ])
  in
  let* sh_rates = list_repeat sh_ways (int_range 20 100) in
  let* sh_stall = int_bound 60 in
  let* sh_seed = int_bound 10000 in
  return { sh_ways; sh_sched; sh_rates; sh_stall; sh_seed }

let print_shared s =
  Fmt.str "ways=%d sched=%s rates=[%a] stall=%d%% seed=%d" s.sh_ways
    (Elastic_sched.Scheduler.spec_name s.sh_sched)
    Fmt.(list ~sep:comma int)
    s.sh_rates s.sh_stall s.sh_seed

let build_shared s =
  let b = builder () in
  let m =
    add b ~name:"shared"
      (Shared
         { ways = s.sh_ways; f = Func.inc ~step:1 (); sched = s.sh_sched;
           hinted = false })
  in
  List.iteri
    (fun w pct ->
       let src =
         add b ~name:(Fmt.str "s%d" w)
           (Source (Random_rate { pct; seed = s.sh_seed + w }))
       in
       let e =
         add b ~name:(Fmt.str "in%d" w) (Buffer { buffer = Eb; init = [] })
       in
       let k =
         add b ~name:(Fmt.str "k%d" w)
           (Sink (Random_stall { pct = s.sh_stall; seed = s.sh_seed + 31 + w }))
       in
       let _ = conn b (src, Out 0) (e, In 0) in
       let _ = conn b (e, Out 0) (m, In w) in
       let _ = conn b (m, Out w) (k, In 0) in
       ())
    s.sh_rates;
  b.net

let shared_equiv =
  let open QCheck in
  Test.make ~name:"qcheck: all modes agree on random shared modules"
    ~count:100
    (make ~print:print_shared gen_shared)
    (fun s ->
       run_trio ~name:"shared" (build_shared s);
       true)

let faulted_pipe_equiv =
  let open QCheck in
  Test.make
    ~name:"qcheck: all modes agree on faulted random pipelines"
    ~count:60
    (make ~print:Test_sim_property.print_pipe Test_sim_property.gen_pipe)
    (fun p ->
       let net, _, src_out, _ = Test_sim_property.build_pipe p in
       let open Elastic_fault in
       let faults =
         [ Fault.flip_bit ~channel:src_out ~cycle:(5 + (p.Test_sim_property.seed mod 40)) 1;
           Fault.drop_token ~channel:src_out
             ~cycle:(10 + (p.Test_sim_property.seed mod 30));
           Fault.stuck_stall ~channel:src_out
             ~cycle:(20 + (p.Test_sim_property.seed mod 20))
             ~duration:2 ]
       in
       run_trio ~name:"faulted pipe" ~faults net;
       true)

(* --- convergence-failure diagnostics -------------------------------- *)

(* With the pass budget forced to zero, the reference fixpoint's very
   first (always-productive) pass trips the non-convergence error, which
   must name the channels that were still changing. *)
let convergence_error_names_channels () =
  let b = builder () in
  let s = src_stream b ~name:"src" [ 1; 2; 3 ] in
  let e = eb b ~name:"buf" () in
  let k = sink b ~name:"snk" () in
  let _ = conn b (s, Out 0) (e, In 0) in
  let _ = conn b (e, Out 0) (k, In 0) in
  let eng = Engine.create ~mode:Engine.Reference ~max_passes:0 b.net in
  match Engine.step eng with
  | () -> Alcotest.fail "expected a non-convergence error"
  | exception Engine.Simulation_error err ->
    if not (contains err.Engine.err_msg "did not converge") then
      Alcotest.failf "unexpected message: %s" err.Engine.err_msg;
    Alcotest.(check bool) "a channel is identified" true
      (err.Engine.err_channel <> None);
    let named =
      List.filter
        (fun (c : Netlist.channel) ->
           contains err.Engine.err_msg c.Netlist.ch_name)
        (Netlist.channels b.net)
    in
    if named = [] then
      Alcotest.failf "no channel named in: %s" err.Engine.err_msg

let suite =
  design_cases @ degenerate_cases @ fault_cases
  @ List.map QCheck_alcotest.to_alcotest
      [ pipe_equiv; diamond_equiv; word_pipe_equiv; shared_equiv;
        faulted_pipe_equiv ]
  @ [ Alcotest.test_case "non-convergence error names the channels" `Quick
        convergence_error_names_channels ]
