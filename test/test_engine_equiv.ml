open Elastic_kernel
open Elastic_netlist
open Elastic_sim
open Elastic_core
open Elastic_datapath
open Helpers

(* Differential testing of the levelized scheduler (the default
   evaluation mode) against the reference fixpoint it replaced: on every
   design — the paper's figures and examples, random pipelines and mux
   diamonds, with and without fault injection — both modes must produce
   bit-identical signal traces, sink streams, statistics counters and
   final register state. *)

let violation_keys eng =
  List.map
    (fun (ch, v) -> (ch, v.Protocol.property))
    (Engine.violations eng)

let sinks_of net =
  List.filter_map
    (fun (n : Netlist.node) ->
       match n.Netlist.kind with
       | Netlist.Sink _ -> Some n.Netlist.id
       | Netlist.Source _ | Netlist.Buffer _ | Netlist.Func _
       | Netlist.Fork _ | Netlist.Mux _ | Netlist.Shared _
       | Netlist.Varlat _ -> None)
    (Netlist.nodes net)

(* Run both modes in lockstep, comparing every channel's resolved signal
   on every cycle, then the cumulative observations.  Fault plans are
   stateful, so each engine gets its own identical plan.  If one mode
   raises, the other must raise the same error on the same cycle. *)
let run_pair ~name ?(cycles = 200) ?faults net =
  let make mode =
    let eng = Engine.create ~mode net in
    let step =
      match faults with
      | None -> fun () -> Engine.step eng
      | Some fs ->
        let plan = Elastic_fault.Fault.plan net fs in
        Engine.set_injector eng (Some (Elastic_fault.Fault.injector plan));
        fun () ->
          Engine.step eng ~choices:(fun nid ->
              Elastic_fault.Fault.choices plan ~cycle:(Engine.cycle eng)
                nid);
          Elastic_fault.Fault.observe plan eng
    in
    (eng, step)
  in
  let el, stepl = make Engine.Levelized in
  let er, stepr = make Engine.Reference in
  let chans = Netlist.channels net in
  let safe step =
    try
      step ();
      None
    with Engine.Simulation_error e -> Some (Engine.error_to_string e)
  in
  let rec loop cyc =
    if cyc > cycles then false
    else
      match (safe stepl, safe stepr) with
      | None, None ->
        List.iter
          (fun (c : Netlist.channel) ->
             let sl = Engine.signal el c.Netlist.ch_id
             and sr = Engine.signal er c.Netlist.ch_id in
             if not (Signal.equal sl sr) then
               Alcotest.failf
                 "%s: cycle %d, channel %s: levelized %a but reference %a"
                 name cyc c.Netlist.ch_name Signal.pp sl Signal.pp sr)
          chans;
        loop (cyc + 1)
      | Some a, Some b ->
        Alcotest.(check string)
          (Fmt.str "%s: identical failure at cycle %d" name cyc)
          b a;
        true
      | Some a, None ->
        Alcotest.failf "%s: cycle %d: only levelized raised: %s" name cyc a
      | None, Some b ->
        Alcotest.failf "%s: cycle %d: only reference raised: %s" name cyc b
  in
  let crashed = loop 1 in
  if not crashed then begin
    List.iter
      (fun (c : Netlist.channel) ->
         let id = c.Netlist.ch_id in
         Alcotest.(check int)
           (Fmt.str "%s: delivered on %s" name c.Netlist.ch_name)
           (Engine.delivered er id) (Engine.delivered el id);
         Alcotest.(check int)
           (Fmt.str "%s: killed on %s" name c.Netlist.ch_name)
           (Engine.killed er id) (Engine.killed el id);
         Alcotest.(check (triple int int int))
           (Fmt.str "%s: activity on %s" name c.Netlist.ch_name)
           (Engine.activity er id) (Engine.activity el id))
      chans;
    List.iter
      (fun snk ->
         let entries eng =
           List.map
             (fun (e : Transfer.entry) -> (e.Transfer.cycle, e.Transfer.value))
             (Transfer.entries (Engine.sink_stream eng snk))
         in
         Alcotest.(check (list (pair int value)))
           (Fmt.str "%s: sink stream" name)
           (entries er) (entries el))
      (sinks_of net);
    Alcotest.(check (list (pair string string)))
      (Fmt.str "%s: protocol violations" name)
      (violation_keys er) (violation_keys el);
    Alcotest.(check string)
      (Fmt.str "%s: final register state" name)
      (Engine.state_key er) (Engine.state_key el)
  end

(* --- the paper's designs ------------------------------------------- *)

let design_cases =
  let case name mk =
    Alcotest.test_case name `Quick (fun () -> run_pair ~name (mk ()))
  in
  [ case "fig1a" (fun () -> (Figures.fig1a ()).Figures.net);
    case "fig1b" (fun () -> (Figures.fig1b ()).Figures.net);
    case "fig1c" (fun () -> (Figures.fig1c ()).Figures.net);
    case "fig1d" (fun () -> (Figures.fig1d ()).Figures.net);
    case "table1" (fun () -> (Figures.table1 ()).Figures.t1_net);
    case "vl_stalling" (fun () ->
        let ops = Alu.operands ~error_rate_pct:10 ~seed:7 100 in
        (Examples.vl_stalling ~ops).Examples.d_net);
    case "vl_speculative" (fun () ->
        let ops = Alu.operands ~error_rate_pct:10 ~seed:7 100 in
        (Examples.vl_speculative ~ops).Examples.d_net);
    case "rs_nonspeculative" (fun () ->
        let ops = Examples.rs_ops ~error_rate_pct:10 ~seed:5 100 in
        (Examples.rs_nonspeculative ~ops).Examples.d_net);
    case "rs_speculative" (fun () ->
        let ops = Examples.rs_ops ~error_rate_pct:10 ~seed:5 100 in
        (Examples.rs_speculative ~ops).Examples.d_net);
    case "pc_loop" (fun () -> (Examples.pc_loop ()).Examples.pl_net) ]

(* --- the same designs under fault injection ------------------------- *)

let first_channel net = (List.hd (Netlist.channels net)).Netlist.ch_id

let fault_cases =
  let open Elastic_fault in
  let case name mk_net mk_faults =
    Alcotest.test_case (name ^ " under faults") `Quick (fun () ->
        let net = mk_net () in
        run_pair ~name ~cycles:120 ~faults:(mk_faults net) net)
  in
  [ case "rs_speculative" (fun () ->
        let ops = Examples.rs_ops ~error_rate_pct:5 ~seed:5 60 in
        (Examples.rs_speculative ~ops).Examples.d_net)
      (fun net ->
         let ch = first_channel net in
         [ Fault.flip_bit ~channel:ch ~cycle:10 3;
           Fault.drop_token ~channel:ch ~cycle:30;
           Fault.stuck_stall ~channel:ch ~cycle:50 ~duration:3 ]);
    case "fig1d" (fun () -> (Figures.fig1d ()).Figures.net)
      (fun net ->
         let ch = first_channel net in
         Fault.control_glitch ~channel:ch ~cycle:25
         @ [ Fault.duplicate_token ~channel:ch ~cycle:60 ]) ]

(* --- random structures ---------------------------------------------- *)

let pipe_equiv =
  let open QCheck in
  Test.make ~name:"qcheck: levelized = reference on random pipelines"
    ~count:120
    (make ~print:Test_sim_property.print_pipe Test_sim_property.gen_pipe)
    (fun p ->
       let net, _, _, _ = Test_sim_property.build_pipe p in
       run_pair ~name:"pipe" net;
       true)

type diamond = {
  d_early : bool;
  d_sel : int list;  (* 0/1 select stream *)
  d_buf : Netlist.buffer_kind;
  d_stall : int;
  d_seed : int;
}

let gen_diamond =
  let open QCheck.Gen in
  let* d_early = bool in
  let* d_sel = list_size (int_range 5 40) (int_bound 1) in
  let* d_buf = oneofl [ Netlist.Eb; Netlist.Eb0 ] in
  let* d_stall = int_bound 80 in
  let* d_seed = int_bound 10000 in
  return { d_early; d_sel; d_buf; d_stall; d_seed }

let print_diamond d =
  Fmt.str "early=%b buf=%s stall=%d%% seed=%d sel=[%a]" d.d_early
    (Netlist.buffer_kind_name d.d_buf)
    d.d_stall d.d_seed
    Fmt.(list ~sep:nop int)
    d.d_sel

(* A mux diamond: one buffered input arm, so an early mux steers
   anti-tokens into the arm it did not pick. *)
let build_diamond d =
  let b = builder () in
  let sel = add b ~name:"sel" (Source (Stream (ints d.d_sel))) in
  let s0 = add b ~name:"s0" (Source (Counter { start = 0; step = 1 })) in
  let s1 = add b ~name:"s1" (Source (Counter { start = 100; step = 1 })) in
  let e = add b ~name:"arm" (Buffer { buffer = d.d_buf; init = [] }) in
  let m = add b ~name:"mux" (Mux { ways = 2; early = d.d_early }) in
  let k =
    add b ~name:"snk"
      (Sink (Random_stall { pct = d.d_stall; seed = d.d_seed }))
  in
  let _ = conn b (sel, Out 0) (m, Sel) in
  let _ = conn b (s0, Out 0) (e, In 0) in
  let _ = conn b (e, Out 0) (m, In 0) in
  let _ = conn b (s1, Out 0) (m, In 1) in
  let _ = conn b (m, Out 0) (k, In 0) in
  b.net

let diamond_equiv =
  let open QCheck in
  Test.make ~name:"qcheck: levelized = reference on random mux diamonds"
    ~count:120
    (make ~print:print_diamond gen_diamond)
    (fun d ->
       run_pair ~name:"diamond" (build_diamond d);
       true)

let faulted_pipe_equiv =
  let open QCheck in
  Test.make
    ~name:"qcheck: levelized = reference on faulted random pipelines"
    ~count:60
    (make ~print:Test_sim_property.print_pipe Test_sim_property.gen_pipe)
    (fun p ->
       let net, _, src_out, _ = Test_sim_property.build_pipe p in
       let open Elastic_fault in
       let faults =
         [ Fault.flip_bit ~channel:src_out ~cycle:(5 + (p.Test_sim_property.seed mod 40)) 1;
           Fault.drop_token ~channel:src_out
             ~cycle:(10 + (p.Test_sim_property.seed mod 30));
           Fault.stuck_stall ~channel:src_out
             ~cycle:(20 + (p.Test_sim_property.seed mod 20))
             ~duration:2 ]
       in
       run_pair ~name:"faulted pipe" ~faults net;
       true)

(* --- convergence-failure diagnostics -------------------------------- *)

(* With the pass budget forced to zero, the reference fixpoint's very
   first (always-productive) pass trips the non-convergence error, which
   must name the channels that were still changing. *)
let convergence_error_names_channels () =
  let b = builder () in
  let s = src_stream b ~name:"src" [ 1; 2; 3 ] in
  let e = eb b ~name:"buf" () in
  let k = sink b ~name:"snk" () in
  let _ = conn b (s, Out 0) (e, In 0) in
  let _ = conn b (e, Out 0) (k, In 0) in
  let eng = Engine.create ~mode:Engine.Reference ~max_passes:0 b.net in
  match Engine.step eng with
  | () -> Alcotest.fail "expected a non-convergence error"
  | exception Engine.Simulation_error err ->
    if not (contains err.Engine.err_msg "did not converge") then
      Alcotest.failf "unexpected message: %s" err.Engine.err_msg;
    Alcotest.(check bool) "a channel is identified" true
      (err.Engine.err_channel <> None);
    let named =
      List.filter
        (fun (c : Netlist.channel) ->
           contains err.Engine.err_msg c.Netlist.ch_name)
        (Netlist.channels b.net)
    in
    if named = [] then
      Alcotest.failf "no channel named in: %s" err.Engine.err_msg

let suite =
  design_cases @ fault_cases
  @ List.map QCheck_alcotest.to_alcotest
      [ pipe_equiv; diamond_equiv; faulted_pipe_equiv ]
  @ [ Alcotest.test_case "non-convergence error names the channels" `Quick
        convergence_error_names_channels ]
