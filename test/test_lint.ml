open Elastic_kernel
open Elastic_netlist
open Elastic_sched
open Elastic_core
open Elastic_lint
open Helpers

let codes (report : Lint.report) =
  List.sort_uniq compare
    (List.map (fun (d : Diagnostic.t) -> d.Diagnostic.code) report.Lint.diags)

let render_diags ds =
  String.concat "; " (List.map Diagnostic.to_string ds)

(* ------------------------------------------------------------------ *)
(* Corpus: every bundled design must be error- and warning-free (infos
   are opportunities, not problems — fig1a legitimately reports I200).  *)

let corpus () =
  let ops = Elastic_datapath.Alu.operands ~error_rate_pct:10 ~seed:1 60 in
  let rs = Examples.rs_ops ~error_rate_pct:10 ~seed:1 60 in
  [ ("fig1a", (Figures.fig1a ()).Figures.net);
    ("fig1b", (Figures.fig1b ()).Figures.net);
    ("fig1c", (Figures.fig1c ()).Figures.net);
    ("fig1d", (Figures.fig1d ()).Figures.net);
    ("table1", (Figures.table1 ()).Figures.t1_net);
    ("vl-stalling", (Examples.vl_stalling ~ops).Examples.d_net);
    ("vl-speculative", (Examples.vl_speculative ~ops).Examples.d_net);
    ("rs-nonspec", (Examples.rs_nonspeculative ~ops:rs).Examples.d_net);
    ("rs-spec", (Examples.rs_speculative ~ops:rs).Examples.d_net);
    ("rs-alarmed",
     (fst (Examples.rs_speculative_alarmed ~ops:rs)).Examples.d_net) ]

let corpus_suite =
  [ Alcotest.test_case "no false positives on the bundled designs" `Quick
      (fun () ->
         List.iter
           (fun (name, net) ->
              let report = Lint.run net in
              Alcotest.(check string)
                (name ^ " errors") ""
                (render_diags (Lint.errors report));
              Alcotest.(check string)
                (name ^ " warnings") ""
                (render_diags (Lint.warnings report)))
           (corpus ()));
    Alcotest.test_case "the figures report their speculation structure"
      `Quick (fun () ->
          let lint name = Lint.run (List.assoc name (corpus ())) in
          Alcotest.(check (list string)) "fig1a" [ "I200" ]
            (codes (lint "fig1a"));
          Alcotest.(check (list string)) "fig1c" [ "I201" ]
            (codes (lint "fig1c"));
          Alcotest.(check (list string)) "fig1d" [ "I201"; "I202" ]
            (codes (lint "fig1d")));
    Alcotest.test_case "plain-EB recovery buffers trigger W104" `Quick
      (fun () ->
         (* The §4.1 bottleneck configuration: anti-tokens crawl back
            through Lb=1 buffers. *)
         let ops = Elastic_datapath.Alu.operands ~error_rate_pct:10 ~seed:1 60 in
         let net =
           (Examples.vl_speculative_with ~recovery:Netlist.Eb ~ops)
             .Examples.d_net
         in
         let report = Lint.run net in
         Alcotest.(check bool) "W104 fires" true
           (List.mem "W104" (codes report));
         Alcotest.(check string) "still no errors" ""
           (render_diags (Lint.errors report))) ]

(* ------------------------------------------------------------------ *)
(* Mutations: breaking exactly one invariant triggers exactly one rule. *)

let mutation_suite =
  [ Alcotest.test_case "the mutation base design is lint-clean" `Quick
      (fun () ->
         let net, _, _, _, _, _ = Mutate.base () in
         Alcotest.(check (list string)) "codes" [] (codes (Lint.run net)));
    Alcotest.test_case "every mutation triggers exactly its rule" `Quick
      (fun () ->
         List.iter
           (fun (m : Mutate.t) ->
              let report = Lint.run (m.Mutate.m_net ()) in
              Alcotest.(check (list string))
                (Fmt.str "%s (%s)" m.Mutate.m_name m.Mutate.m_describe)
                [ m.Mutate.m_code ] (codes report))
           Mutate.catalogue);
    Alcotest.test_case "one mutation per registry rule" `Quick (fun () ->
        Alcotest.(check (list string)) "codes"
          (List.sort compare
             (List.map (fun (r : Lint.rule) -> r.Lint.code) Lint.registry))
          (List.sort compare
             (List.map (fun (m : Mutate.t) -> m.Mutate.m_code)
                Mutate.catalogue)));
    Alcotest.test_case "seeded sampling is reproducible" `Quick (fun () ->
        let names l = List.map (fun (m : Mutate.t) -> m.Mutate.m_name) l in
        Alcotest.(check (list string)) "same seed, same campaign"
          (names (Mutate.random ~seed:42 ~count:10))
          (names (Mutate.random ~seed:42 ~count:10)));
    Alcotest.test_case "structural errors gate the graph rules" `Quick
      (fun () ->
         (* A net that is both structurally broken and cyclic: only the
            structural codes may appear. *)
         let m102 =
           List.find
             (fun (m : Mutate.t) -> m.Mutate.m_code = "E102")
             Mutate.catalogue
         in
         let net = m102.Mutate.m_net () in
         let net =
           match Netlist.channels net with
           | c :: _ -> Netlist.remove_channel net c.Netlist.ch_id
           | [] -> assert false
         in
         let report = Lint.run net in
         Alcotest.(check bool) "gated" true report.Lint.gated;
         Alcotest.(check (list string)) "structural only" [ "E001" ]
           (codes report));
    Alcotest.test_case "only/disable select rules by code or slug" `Quick
      (fun () ->
         let m =
           List.find
             (fun (m : Mutate.t) -> m.Mutate.m_code = "W104")
             Mutate.catalogue
         in
         let net = m.Mutate.m_net () in
         Alcotest.(check (list string)) "only by slug" [ "W104" ]
           (codes (Lint.run ~only:[ "antitoken-through-eb" ] net));
         Alcotest.(check (list string)) "disabled" []
           (codes (Lint.run ~disable:[ "W104" ] net))) ]

(* ------------------------------------------------------------------ *)
(* Transform prechecks: illegal applications fail with a typed code.   *)

let expect_reject code (f : unit -> unit) =
  match f () with
  | () -> Alcotest.failf "expected a %s rejection" code
  | exception Diagnostic.Reject d ->
    Alcotest.(check string) "rule code" code d.Diagnostic.code

(* src -> inc -> EB(100) -> dbl -> sink *)
let fix () =
  let b = builder () in
  let s = src_counter b () in
  let f = add b ~name:"inc" (Func (Func.inc ~step:1 ())) in
  let e = eb b ~name:"mid" ~init:[ Value.Int 100 ] () in
  let g = add b ~name:"dbl" (Func (Func.inc ~step:2 ())) in
  let k = sink b () in
  let _ = conn b (s, Out 0) (f, In 0) in
  let c2 = conn b (f, Out 0) (e, In 0) in
  let _ = conn b (e, Out 0) (g, In 0) in
  let _ = conn b (g, Out 0) (k, In 0) in
  (b.net, f, e, g, c2)

let mux_to_sink () =
  let b = builder () in
  let sel = src_counter b () in
  let s0 = src_counter b () in
  let s1 = src_counter b () in
  let m = add b ~name:"m" (Mux { ways = 2; early = false }) in
  let k = sink b () in
  let _ = conn b (sel, Out 0) (m, Sel) in
  let _ = conn b (s0, Out 0) (m, In 0) in
  let _ = conn b (s1, Out 0) (m, In 1) in
  let _ = conn b (m, Out 0) (k, In 0) in
  (b.net, m)

let precheck_suite =
  [ Alcotest.test_case "E301: fifo depth < 1" `Quick (fun () ->
        let net, _, _, _, c2 = fix () in
        expect_reject "E301" (fun () ->
            ignore (Transform.insert_fifo net ~channel:c2 ~depth:0)));
    Alcotest.test_case "E302: removing a full buffer" `Quick (fun () ->
        let net, _, e, _, _ = fix () in
        expect_reject "E302" (fun () ->
            ignore (Transform.remove_buffer net e)));
    Alcotest.test_case "E303: conversion drops tokens" `Quick (fun () ->
        let b = builder () in
        let s = src_counter b () in
        let e = eb b ~init:[ Value.Int 1; Value.Int 2 ] () in
        let k = sink b () in
        let _ = conn b (s, Out 0) (e, In 0) in
        let _ = conn b (e, Out 0) (k, In 0) in
        expect_reject "E303" (fun () ->
            ignore (Transform.convert_buffer b.net e Eb0)));
    Alcotest.test_case "E304: retime_forward without input buffers" `Quick
      (fun () ->
         let net, f, _, _, _ = fix () in
         expect_reject "E304" (fun () ->
             ignore (Transform.retime_forward net ~through:f)));
    Alcotest.test_case "E305: retime_backward without an output buffer"
      `Quick (fun () ->
          let net, _, _, g, _ = fix () in
          expect_reject "E305" (fun () ->
              ignore (Transform.retime_backward net ~through:g)));
    Alcotest.test_case "E306: shannon needs a unary block after the mux"
      `Quick (fun () ->
          let net, m = mux_to_sink () in
          expect_reject "E306" (fun () ->
              ignore (Transform.shannon net ~mux:m)));
    Alcotest.test_case "E307: early evaluation of a non-mux" `Quick
      (fun () ->
         let net, f, _, _, _ = fix () in
         expect_reject "E307" (fun () ->
             ignore (Transform.early_evaluation net ~mux:f)));
    Alcotest.test_case "E308: share needs two identical unary blocks"
      `Quick (fun () ->
          let net, f, _, g, _ = fix () in
          expect_reject "E308" (fun () ->
              ignore
                (Transform.share net ~blocks:[ f ] ~sched:Scheduler.Sticky));
          expect_reject "E308" (fun () ->
              ignore
                (Transform.share net ~blocks:[ f; g ]
                   ~sched:Scheduler.Sticky)));
    Alcotest.test_case "prechecks are pure (netlist unchanged on reject)"
      `Quick (fun () ->
          let net, _, e, _, _ = fix () in
          (try ignore (Transform.remove_buffer net e)
           with Diagnostic.Reject _ -> ());
          Netlist.validate_exn net;
          match (Netlist.node net e).Netlist.kind with
          | Buffer { init = [ Value.Int 100 ]; _ } -> ()
          | _ -> Alcotest.fail "buffer changed by a rejected transform") ]

(* ------------------------------------------------------------------ *)
(* Fix-its: machine-applicable suggestions actually repair the design. *)

let mutated code =
  (List.find (fun (m : Mutate.t) -> m.Mutate.m_code = code)
     Mutate.catalogue)
    .Mutate.m_net ()

let fixit_suite =
  [ Alcotest.test_case "E101 fix-it: eb0 over capacity becomes an eb"
      `Quick (fun () ->
          let b = builder () in
          let s = src_counter b () in
          let e = eb0 b ~init:[ Value.Int 1; Value.Int 2 ] () in
          let k = sink b () in
          let _ = conn b (s, Out 0) (e, In 0) in
          let _ = conn b (e, Out 0) (k, In 0) in
          let report = Lint.run b.net in
          Alcotest.(check (list string)) "found" [ "E101" ] (codes report);
          let net', n = Lint.apply_fixes b.net report in
          Alcotest.(check int) "one fix" 1 n;
          Alcotest.(check (list string)) "clean after fix" []
            (codes (Lint.run net')));
    Alcotest.test_case
      "E102 fix-it inserts a bubble; E103 fix-it seeds a token" `Quick
      (fun () ->
         (* Fixing the combinational cycle yields a token-free one; the
            second fix makes the loop live — rule by rule to clean. *)
         let net = mutated "E102" in
         let report = Lint.run net in
         let net, n = Lint.apply_fixes net report in
         Alcotest.(check int) "bubble inserted" 1 n;
         let report = Lint.run net in
         Alcotest.(check (list string)) "now token-free" [ "E103" ]
           (codes report);
         let net, n = Lint.apply_fixes net report in
         Alcotest.(check int) "token seeded" 1 n;
         Alcotest.(check (list string)) "clean" [] (codes (Lint.run net)));
    Alcotest.test_case "W104 fix-it converts the recovery buffer to eb0"
      `Quick (fun () ->
          let net = mutated "W104" in
          let report = Lint.run net in
          let net', n = Lint.apply_fixes net report in
          Alcotest.(check int) "one fix" 1 n;
          Alcotest.(check (list string)) "clean" []
            (codes (Lint.run net'))) ]

(* ------------------------------------------------------------------ *)
(* Differential: lint-clean random netlists are accepted by Explore.   *)

type shape = Pipe of int list | Diamond of { early : bool; buf : int }

let build_shape = function
  | Pipe stages ->
    let b = builder () in
    let s = src_stream b [ 1; 2; 3 ] in
    let prev =
      List.fold_left
        (fun prev sel ->
           let n =
             match sel with
             | 0 -> add b (Func (Func.inc ~step:1 ()))
             | 1 -> eb b ~init:[ Value.Int 9 ] ()
             | _ -> eb0 b ()
           in
           let _ = conn b (prev, Out 0) (n, In 0) in
           n)
        s stages
    in
    let k = sink b () in
    let _ = conn b (prev, Out 0) (k, In 0) in
    b.net
  | Diamond { early; buf } ->
    let b = builder () in
    (* Same length as the data streams: a plain mux joins sel with both
       inputs, so a leftover select token would pend forever. *)
    let sel = src_stream b [ 0; 1; 1 ] in
    let s0 = src_stream b [ 1; 2; 3 ] in
    let s1 = src_stream b [ 4; 5; 6 ] in
    let m = add b (Mux { ways = 2; early }) in
    let k = sink b () in
    let _ = conn b (sel, Out 0) (m, Sel) in
    let _ = conn b (s0, Out 0) (m, In 0) in
    let _ = conn b (s1, Out 0) (m, In 1) in
    let tail =
      match buf with
      | 0 -> m
      | 1 ->
        let e = eb b () in
        let _ = conn b (m, Out 0) (e, In 0) in
        e
      | _ ->
        let e = eb0 b () in
        let _ = conn b (m, Out 0) (e, In 0) in
        e
    in
    let _ = conn b (tail, Out 0) (k, In 0) in
    b.net

let print_shape = function
  | Pipe stages ->
    Fmt.str "pipe [%a]" Fmt.(list ~sep:comma int) stages
  | Diamond { early; buf } -> Fmt.str "diamond early=%b buf=%d" early buf

let gen_shape =
  QCheck.Gen.(
    oneof
      [ map (fun l -> Pipe l) (list_size (int_range 0 6) (int_range 0 2));
        map2 (fun early buf -> Diamond { early; buf }) bool (int_range 0 2)
      ])

let differential_props =
  let open QCheck in
  [ Test.make
      ~name:"qcheck: lint-clean random netlists are accepted by Explore"
      ~count:40
      (make ~print:print_shape gen_shape)
      (fun shape ->
         let net = build_shape shape in
         let report = Lint.run net in
         Lint.errors report = []
         && Lint.warnings report = []
         &&
         let o = Elastic_check.Explore.explore net in
         o.Elastic_check.Explore.complete
         && o.Elastic_check.Explore.protocol_violations = []
         && o.Elastic_check.Explore.deadlock_states = []) ]

(* ------------------------------------------------------------------ *)
(* Engine and Explore carry the static diagnosis.                      *)

let integration_suite =
  [ Alcotest.test_case "Engine.create tags structural failures with E001"
      `Quick (fun () ->
          let b = builder () in
          let s = src_counter b () in
          let f = add b (Func (Func.inc ~step:1 ())) in
          let _ = conn b (s, Out 0) (f, In 0) in
          match Elastic_sim.Engine.create b.net with
          | _ -> Alcotest.fail "expected a structural failure"
          | exception Elastic_sim.Engine.Simulation_error e ->
            Alcotest.(check (option string)) "code" (Some "E001")
              e.Elastic_sim.Engine.err_code);
    Alcotest.test_case "runtime combinational cycles are tagged E102"
      `Quick (fun () ->
          let net = mutated "E102" in
          match
            let eng = Elastic_sim.Engine.create net in
            Elastic_sim.Engine.run eng 2
          with
          | () -> Alcotest.fail "expected a combinational-cycle failure"
          | exception Elastic_sim.Engine.Simulation_error e ->
            Alcotest.(check (option string)) "code" (Some "E102")
              e.Elastic_sim.Engine.err_code);
    Alcotest.test_case "engine-quoted codes exist in the lint registry"
      `Quick (fun () ->
          (* engine.ml cannot depend on the lint library, so it quotes
             rule codes as strings; keep them honest. *)
          List.iter
            (fun code ->
               match Lint.find_rule code with
               | Some r -> Alcotest.(check string) code code r.Lint.code
               | None -> Alcotest.failf "code %s not in the registry" code)
            [ "E001"; "E002"; "E003"; "E004"; "E102" ]);
    Alcotest.test_case "Explore hints at the static cause of a deadlock"
      `Quick (fun () ->
          (* join whose second input loops through an empty buffer:
             statically a token-free cycle (E103), dynamically a
             deadlock. *)
          let b = builder () in
          let s = src_stream b [ 1 ] in
          let j = add b (Func (Func.add_int ~arity:2 ())) in
          let e = eb b () in
          let fk = add b (Fork 2) in
          let k = sink b () in
          let _ = conn b (s, Out 0) (j, In 0) in
          let _ = conn b (e, Out 0) (j, In 1) in
          let _ = conn b (j, Out 0) (fk, In 0) in
          let _ = conn b (fk, Out 0) (e, In 0) in
          let _ = conn b (fk, Out 1) (k, In 0) in
          let o = Elastic_check.Explore.explore b.net in
          Alcotest.(check bool) "hints include E103" true
            (List.exists
               (fun h -> Helpers.contains h "E103")
               o.Elastic_check.Explore.static_hints);
          Alcotest.(check bool) "explore finds the deadlock" true
            (o.Elastic_check.Explore.deadlock_states <> []));
    Alcotest.test_case "clean designs explore with no hints" `Quick
      (fun () ->
         let net = build_shape (Pipe [ 0; 1 ]) in
         let o = Elastic_check.Explore.explore net in
         Alcotest.(check (list string)) "no hints" []
           o.Elastic_check.Explore.static_hints) ]

(* ------------------------------------------------------------------ *)
(* Shell command and JSONL report.                                     *)

let exec s line =
  match Shell.execute s line with
  | Ok out -> out
  | Error m -> Alcotest.failf "command %S failed: %s" line m

let expect_error s line =
  match Shell.execute s line with
  | Ok out -> Alcotest.failf "command %S unexpectedly succeeded: %s" line out
  | Error m -> m

let shell_suite =
  [ Alcotest.test_case "lint needs a design" `Quick (fun () ->
        let s = Shell.create () in
        let m = expect_error s "lint" in
        Alcotest.(check bool) "mentions load" true
          (Helpers.contains m "load"));
    Alcotest.test_case "lint reports fig1a's speculation candidate" `Quick
      (fun () ->
         let s = Shell.create () in
         let _ = exec s "load fig1a" in
         let out = exec s "lint" in
         Alcotest.(check bool) "I200" true (Helpers.contains out "I200"));
    Alcotest.test_case "single-rule runs by code and slug" `Quick (fun () ->
        let s = Shell.create () in
        let _ = exec s "load fig1a" in
        Alcotest.(check bool) "by code" true
          (Helpers.contains (exec s "lint E103") "clean");
        Alcotest.(check bool) "by slug" true
          (Helpers.contains (exec s "lint token-free-cycle") "clean");
        let m = expect_error s "lint no-such-rule" in
        Alcotest.(check bool) "unknown rule" true
          (Helpers.contains m "unknown lint rule"));
    Alcotest.test_case "lint --fix has nothing to do on a clean design"
      `Quick (fun () ->
          let s = Shell.create () in
          let _ = exec s "load fig1a" in
          let m = expect_error s "lint --fix" in
          Alcotest.(check bool) "no fixes" true
            (Helpers.contains m "no machine-applicable fixes"));
    Alcotest.test_case "rejected transforms surface the rule code" `Quick
      (fun () ->
         let s = Shell.create () in
         let _ = exec s "load fig1a" in
         let m = expect_error s "shannon out" in
         Alcotest.(check bool) "E306 in the error" true
           (Helpers.contains m "E306"));
    Alcotest.test_case "lint jsonl writes the v1 schema" `Quick (fun () ->
        let s = Shell.create () in
        let _ = exec s "load fig1d" in
        let path = Filename.temp_file "lint" ".jsonl" in
        let _ = exec s (Fmt.str "lint jsonl %s" path) in
        let ic = open_in path in
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        close_in ic;
        Sys.remove path;
        let lines = List.rev !lines in
        let open Elastic_metrics.Json in
        let parse_exn line =
          match parse line with
          | Ok j -> j
          | Error e -> Alcotest.failf "unparseable JSONL line %S: %s" line e
        in
        match lines with
        | header :: diags ->
          let h = parse_exn header in
          Alcotest.(check string) "schema" "elastic-speculation/lint/v1"
            (match member "schema" h with Some (Str s) -> s | _ -> "?");
          Alcotest.(check string) "design" "fig1d"
            (match member "design" h with Some (Str s) -> s | _ -> "?");
          Alcotest.(check int) "one line per diagnostic"
            (match member "infos" h with Some (Int n) -> n | _ -> -1)
            (List.length diags);
          List.iter
            (fun line ->
               match member "code" (parse_exn line) with
               | Some (Str _) -> ()
               | _ -> Alcotest.fail "diagnostic line without a code")
            diags
        | [] -> Alcotest.fail "empty JSONL report") ]

(* ------------------------------------------------------------------ *)

let suite =
  corpus_suite @ mutation_suite @ precheck_suite @ fixit_suite
  @ integration_suite @ shell_suite
  @ List.map QCheck_alcotest.to_alcotest differential_props
