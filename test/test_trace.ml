open Elastic_kernel
open Elastic_sched
open Elastic_netlist
open Elastic_core
open Elastic_datapath
open Elastic_trace
open Helpers

(* The observability layer (lib/trace): golden VCD for the Table 1
   system, counter reconstruction from the event stream, stall
   attribution against the marked-graph critical cycle, speculation
   timelines, the shell surface and the zero-overhead guard for the
   observer-disabled hot path. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let table1_net () = (Figures.table1 ()).Figures.t1_net

let traced_run ?(capacity = 1_000_000) ?mode net cycles =
  let eng = Elastic_sim.Engine.create ?mode net in
  let tr = Tracer.attach ~capacity eng in
  Elastic_sim.Engine.run eng cycles;
  (eng, tr)

(* --- golden VCD (Table 1 system, byte-exact) ----------------------- *)

let test_vcd_header_golden () =
  let expected = read_file "table1.vcd.expected" in
  let header = Vcd.header (table1_net ()) in
  Alcotest.(check bool) "header is a prefix of the golden dump" true
    (String.length header <= String.length expected
     && String.equal (String.sub expected 0 (String.length header)) header);
  Alcotest.(check bool) "header is deterministic (no wall clock)" true
    (Helpers.contains header "(deterministic)")

let test_vcd_contents_golden () =
  let net = table1_net () in
  let eng = Elastic_sim.Engine.create net in
  let r = Vcd.create net in
  Elastic_sim.Engine.set_observer eng (Some (Vcd.observe r));
  Elastic_sim.Engine.run eng 8;
  Alcotest.(check string) "first 8 cycles byte-exact"
    (read_file "table1.vcd.expected")
    (Vcd.contents r)

(* Structural well-formedness, standing in for an external viewer: every
   value change references a declared identifier code, timestamps are
   strictly increasing, and vectors are binary. *)
let test_vcd_well_formed () =
  let net = table1_net () in
  let eng = Elastic_sim.Engine.create net in
  let r = Vcd.create net in
  Elastic_sim.Engine.set_observer eng (Some (Vcd.observe r));
  Elastic_sim.Engine.run eng 40;
  let lines = String.split_on_char '\n' (Vcd.contents r) in
  let ids = Hashtbl.create 64 in
  let in_defs = ref true in
  let last_ts = ref (-1) in
  List.iter
    (fun line ->
       let words =
         String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
       in
       match words with
       | [ "$var"; "wire"; _; id; _; "$end" ] -> Hashtbl.replace ids id ()
       | [ "$enddefinitions"; "$end" ] -> in_defs := false
       | _ when !in_defs -> ()
       | [] | [ "$dumpvars" ] | [ "$end" ] -> ()
       | [ ts ] when String.length ts > 1 && ts.[0] = '#' ->
         let t = int_of_string (String.sub ts 1 (String.length ts - 1)) in
         Alcotest.(check bool) "timestamps increase" true (t > !last_ts);
         last_ts := t
       | [ bits; id ] when String.length bits > 1 && bits.[0] = 'b' ->
         Alcotest.(check bool) ("declared vector id " ^ id) true
           (Hashtbl.mem ids id);
         String.iter
           (fun c ->
              Alcotest.(check bool) "binary digit" true
                (c = '0' || c = '1' || c = 'x'))
           (String.sub bits 1 (String.length bits - 1))
       | [ change ] when String.length change >= 2 ->
         let id = String.sub change 1 (String.length change - 1) in
         Alcotest.(check bool) "scalar value" true
           (change.[0] = '0' || change.[0] = '1' || change.[0] = 'x');
         Alcotest.(check bool) ("declared scalar id " ^ id) true
           (Hashtbl.mem ids id)
       | _ -> Alcotest.failf "unrecognized VCD line %S" line)
    lines;
  Alcotest.(check int) "final timestamp is the cycle count" 40 !last_ts

(* --- event fold reconstructs the engine counters ------------------- *)

let check_reconstruction ?mode net cycles =
  let eng, tr = traced_run ?mode net cycles in
  if Tracer.dropped tr > 0 then
    Alcotest.failf "ring dropped %d events; raise the capacity"
      (Tracer.dropped tr);
  let counts = Event.counts (Tracer.events tr) in
  let stats = Elastic_sim.Stats.collect eng in
  List.iter2
    (fun (c : Netlist.channel) (cs : Elastic_sim.Stats.channel_stats) ->
       let id = c.Netlist.ch_id in
       let where = Fmt.str "channel %s" c.Netlist.ch_name in
       Alcotest.(check int) (where ^ " delivered")
         cs.Elastic_sim.Stats.cs_delivered (Event.delivered counts id);
       Alcotest.(check int) (where ^ " killed")
         cs.Elastic_sim.Stats.cs_killed (Event.killed counts id);
       Alcotest.(check int) (where ^ " retry")
         cs.Elastic_sim.Stats.cs_retry_cycles (Event.retries counts id);
       Alcotest.(check int) (where ^ " anti")
         cs.Elastic_sim.Stats.cs_anti_cycles (Event.antis counts id))
    (Netlist.channels net) stats.Elastic_sim.Stats.channels;
  List.iter
    (fun (nid, sch) ->
       Alcotest.(check int) "scheduler serves" (Scheduler.serves sch)
         (Event.serves counts nid);
       Alcotest.(check int) "scheduler mispredictions"
         (Scheduler.mispredictions sch)
         (Event.mispredictions counts nid))
    (Elastic_sim.Engine.schedulers eng)

let test_reconstruction_fixed () =
  List.iter
    (fun mode ->
       check_reconstruction ~mode (table1_net ()) 60;
       let ops = Alu.operands ~error_rate_pct:10 ~seed:7 60 in
       check_reconstruction ~mode (Examples.vl_speculative ~ops).Examples.d_net
         150;
       let ops = Examples.rs_ops ~error_rate_pct:10 ~seed:7 60 in
       check_reconstruction ~mode (Examples.rs_speculative ~ops).Examples.d_net
         150)
    [ Elastic_sim.Engine.Levelized; Elastic_sim.Engine.Reference ]

type recon_spec = {
  rs_design : int;
  rs_param : int;
  rs_seed : int;
  rs_cycles : int;
  rs_levelized : bool;
}

let gen_recon =
  let open QCheck.Gen in
  let* rs_design = int_bound 2 in
  let* rs_param = int_bound 100 in
  let* rs_seed = int_bound 1000 in
  let* rs_cycles = int_range 5 120 in
  let* rs_levelized = bool in
  return { rs_design; rs_param; rs_seed; rs_cycles; rs_levelized }

let print_recon r =
  Fmt.str "design=%d param=%d seed=%d cycles=%d mode=%s" r.rs_design
    r.rs_param r.rs_seed r.rs_cycles
    (if r.rs_levelized then "levelized" else "reference")

let recon_net r =
  match r.rs_design with
  | 0 ->
    (Figures.fig1d
       ~sched:
         (Scheduler.Noisy_oracle
            { sel = Figures.default_params.Figures.sel;
              accuracy_pct = max 1 r.rs_param;
              seed = r.rs_seed })
       ())
      .Figures.net
  | 1 ->
    let ops =
      Alu.operands ~error_rate_pct:(r.rs_param mod 50) ~seed:r.rs_seed 40
    in
    (Examples.vl_speculative ~ops).Examples.d_net
  | _ ->
    let ops =
      Examples.rs_ops ~error_rate_pct:(r.rs_param mod 50) ~seed:r.rs_seed 40
    in
    (Examples.rs_speculative ~ops).Examples.d_net

let reconstruction_prop =
  QCheck.Test.make ~name:"qcheck: event fold reconstructs Stats.collect"
    ~count:60
    (QCheck.make ~print:print_recon gen_recon)
    (fun r ->
       let mode =
         if r.rs_levelized then Elastic_sim.Engine.Levelized
         else Elastic_sim.Engine.Reference
       in
       check_reconstruction ~mode (recon_net r) r.rs_cycles;
       true)

(* --- occupancy events chain consistently --------------------------- *)

let test_occupancy_chain () =
  (* A stalling sink makes the buffer fill and drain, so occupancy
     actually moves (the Table 1 loop sits in a steady state and never
     changes occupancy after reset). *)
  let b = builder () in
  let s0 = src_counter b ~name:"src" () in
  let e = eb b ~name:"buf" () in
  let k = sink_pattern b ~name:"out" [| false; true; true |] in
  let _ = conn b (s0, Out 0) (e, In 0) in
  let _ = conn b (e, Out 0) (k, In 0) in
  let _, tr = traced_run b.net 60 in
  let last = Hashtbl.create 8 in
  let seen = ref 0 in
  List.iter
    (fun (e : Event.t) ->
       match e.Event.ev_subject, e.Event.ev_kind with
       | Event.Node nid, Event.Occupancy { before; after } ->
         incr seen;
         (match Hashtbl.find_opt last nid with
          | Some prev ->
            Alcotest.(check int) "occupancy chains" prev before
          | None -> ());
         Alcotest.(check bool) "occupancy changed" true (before <> after);
         Hashtbl.replace last nid after
       | _ -> ())
    (Tracer.events tr);
  Alcotest.(check bool) "saw occupancy changes" true (!seen > 0)

(* --- stall attribution vs the marked graph ------------------------- *)

(* The Table 1 system has a token-bearing critical cycle through the
   early-evaluation mux; the dynamically attributed bottleneck must lie
   on it (acceptance criterion of the attribution pass). *)
let test_attribution_table1 () =
  let eng = run_net ~cycles:200 (table1_net ()) in
  let at = Attribution.analyze eng in
  Alcotest.(check bool) "critical cycle found" true
    (at.Attribution.at_critical <> None);
  (match at.Attribution.at_root with
   | None -> Alcotest.fail "no bottleneck attributed"
   | Some root ->
     Alcotest.(check bool) "root has retries" true
       (root.Attribution.al_retry > 0));
  Alcotest.(check bool) "root lies on the critical cycle" true
    at.Attribution.at_root_on_critical

(* The §5.1 variable-latency designs are feed-forward: the marked graph
   has no token-bearing cycle, and the attribution agrees by blaming the
   variable-latency stage (6(a)) / the shared speculative stage (6(b))
   intrinsically rather than a loop. *)
let test_attribution_vl () =
  let ops = Alu.operands ~error_rate_pct:10 ~seed:1 200 in
  let check_d net what =
    Alcotest.(check bool) "feed-forward: no critical cycle" true
      (Elastic_perf.Marked_graph.critical_cycle net = None);
    let eng = run_net ~cycles:400 net in
    let at = Attribution.analyze eng in
    (match at.Attribution.at_cause with
     | Attribution.Intrinsic got ->
       Alcotest.(check string) "intrinsic staller" what got
     | Attribution.Loop -> Alcotest.fail "unexpected loop cause"
     | Attribution.No_stall -> Alcotest.fail "expected stalls")
  in
  check_d (Examples.vl_stalling ~ops).Examples.d_net
    "variable-latency stage";
  let ops = Alu.operands ~error_rate_pct:10 ~seed:1 200 in
  check_d (Examples.vl_speculative ~ops).Examples.d_net
    "shared-module arbitration"

let test_attribution_no_stall () =
  let h = Figures.fig1d () in
  let eng = run_net ~cycles:200 h.Figures.net in
  let at = Attribution.analyze eng in
  Alcotest.(check bool) "source-limited run has no root" true
    (at.Attribution.at_root = None
     && at.Attribution.at_cause = Attribution.No_stall)

(* --- speculation timelines ----------------------------------------- *)

(* Golden values behind the BENCH_E5/E6 "speculation" fields (quick
   bench parameters: n = 100 ops, 2n cycles).  The §5.2 claim is that
   every misprediction costs exactly one replay cycle. *)
let test_timeline_bench_golden () =
  let tl_of net cycles =
    let _, tr = traced_run net cycles in
    match Timeline.analyze (Tracer.events tr) with
    | [ tl ] -> tl
    | tls -> Alcotest.failf "expected 1 scheduler, got %d" (List.length tls)
  in
  let ops = Alu.operands ~error_rate_pct:5 ~seed:42 100 in
  let e5 = tl_of (Examples.vl_speculative ~ops).Examples.d_net 200 in
  Alcotest.(check int) "E5 serves" 105 e5.Timeline.tl_serves;
  Alcotest.(check int) "E5 squashes" 5 e5.Timeline.tl_squashes;
  Alcotest.(check int) "E5 replays" 5 e5.Timeline.tl_replays;
  Alcotest.(check (list int)) "E5 squash penalties all 1" [ 1; 1; 1; 1; 1 ]
    e5.Timeline.tl_penalties;
  let ops = Examples.rs_ops ~error_rate_pct:5 ~seed:5 100 in
  let e6 = tl_of (Examples.rs_speculative ~ops).Examples.d_net 200 in
  Alcotest.(check int) "E6 serves" 108 e6.Timeline.tl_serves;
  Alcotest.(check int) "E6 squashes" 8 e6.Timeline.tl_squashes;
  Alcotest.(check int) "E6 max penalty" 1 e6.Timeline.tl_max_penalty;
  Alcotest.(check (float 1e-9)) "E6 mean penalty" 1.0
    e6.Timeline.tl_mean_penalty;
  Alcotest.(check bool) "E6 accuracy in (0,1)" true
    (e6.Timeline.tl_accuracy > 0.0 && e6.Timeline.tl_accuracy < 1.0)

let test_timeline_windows () =
  let ops = Examples.rs_ops ~error_rate_pct:10 ~seed:3 150 in
  let _, tr = traced_run (Examples.rs_speculative ~ops).Examples.d_net 300 in
  match Timeline.analyze ~window:50 (Tracer.events tr) with
  | [ tl ] ->
    Alcotest.(check bool) "several windows" true
      (List.length tl.Timeline.tl_accuracy_over_time >= 3);
    List.iter
      (fun (_, acc) ->
         Alcotest.(check bool) "window accuracy in [0,1]" true
           (acc >= 0.0 && acc <= 1.0))
      tl.Timeline.tl_accuracy_over_time;
    Alcotest.(check bool) "replays bounded by squashes" true
      (tl.Timeline.tl_replays <= tl.Timeline.tl_squashes
       && tl.Timeline.tl_replays > 0)
  | tls -> Alcotest.failf "expected 1 scheduler, got %d" (List.length tls)

(* --- JSONL export -------------------------------------------------- *)

let test_jsonl () =
  let net = table1_net () in
  let _, tr = traced_run net 20 in
  let evs = Tracer.events tr in
  let text = Jsonl.to_string net evs in
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one line per event plus meta"
    (List.length evs + 1) (List.length lines);
  Alcotest.(check bool) "meta line carries the schema" true
    (Helpers.contains (List.hd lines) "elastic-speculation/trace/v1");
  List.iter
    (fun l ->
       Alcotest.(check bool) "line is an object" true
         (l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  List.iter2
    (fun l (e : Event.t) ->
       Alcotest.(check bool) "cycle field" true
         (Helpers.contains l (Fmt.str "{\"c\":%d," e.Event.ev_cycle)))
    (List.tl lines) evs

(* --- zero overhead when tracing is off ----------------------------- *)

(* The observer-disabled branch must not allocate: two identical runs
   allocate exactly the same number of minor words, and installing an
   empty observer changes nothing (the hook costs one branch). *)
let test_zero_overhead () =
  let words observer =
    let eng = Elastic_sim.Engine.create ~monitor:false (table1_net ()) in
    (match observer with
     | None -> ()
     | Some f -> Elastic_sim.Engine.set_observer eng (Some f));
    Elastic_sim.Engine.run eng 10;
    let before = Gc.minor_words () in
    Elastic_sim.Engine.run eng 200;
    Gc.minor_words () -. before
  in
  let w1 = words None in
  let w2 = words None in
  Alcotest.(check (float 0.0)) "identical runs allocate identically" w1 w2;
  let w3 = words (Some (fun _ -> ())) in
  Alcotest.(check (float 0.0)) "empty observer adds no allocation" w1 w3;
  let eng = Elastic_sim.Engine.create ~monitor:false (table1_net ()) in
  let tr = Tracer.attach eng in
  Elastic_sim.Engine.run eng 10;
  let before = Gc.minor_words () in
  Elastic_sim.Engine.run eng 200;
  let w4 = Gc.minor_words () -. before in
  Alcotest.(check bool) "the tracer itself does allocate" true (w4 > w1);
  ignore tr

(* --- traced fault campaigns (lib/fault observer hook) -------------- *)

let test_recovery_observer () =
  let open Elastic_fault in
  let ops = Examples.rs_ops ~error_rate_pct:0 ~seed:1 40 in
  let d = Examples.rs_speculative ~ops in
  let net = d.Examples.d_net in
  let src = Option.get (Netlist.find_node net "src") in
  let bus =
    match Netlist.outgoing net src.Netlist.id with
    | c :: _ -> c.Netlist.ch_id
    | [] -> Alcotest.fail "source has no output"
  in
  let captured = ref None in
  let report =
    Recovery.check ~cycles:100 ~settle:30 net
      ~observer:(fun eng -> captured := Some (Tracer.attach eng))
      ~faults:[ Fault.flip_bit ~channel:bus ~cycle:5 3 ]
  in
  ignore report;
  match !captured with
  | None -> Alcotest.fail "observer was not installed"
  | Some tr ->
    let injects =
      List.filter
        (fun (e : Event.t) ->
           e.Event.ev_kind = Event.Inject
           && e.Event.ev_subject = Event.Chan bus)
        (Tracer.events tr)
    in
    Alcotest.(check int) "one inject event on the faulted channel" 1
      (List.length injects);
    Alcotest.(check int) "stamped with the fault cycle" 5
      (List.hd injects).Event.ev_cycle

(* --- shell surface ------------------------------------------------- *)

let exec s line =
  match Shell.execute s line with
  | Ok out -> out
  | Error m -> Alcotest.failf "command %S failed: %s" line m

let expect_error s line =
  match Shell.execute s line with
  | Ok out -> Alcotest.failf "command %S unexpectedly succeeded: %s" line out
  | Error m -> m

let test_shell_trace_commands () =
  let s = Shell.create () in
  let _ = exec s "load table1" in
  let _ = exec s "trace on" in
  let _ = exec s "throughput 40" in
  let dump = exec s "trace dump 12" in
  Alcotest.(check bool) "dump has a header" true
    (Helpers.contains dump "events recorded");
  Alcotest.(check bool) "dump shows stalls" true
    (Helpers.contains dump "stall");
  let off = exec s "trace off" in
  Alcotest.(check bool) "off keeps the last trace" true
    (Helpers.contains off "dumpable");
  let dump2 = exec s "trace dump 3" in
  Alcotest.(check bool) "dump still works after off" true
    (Helpers.contains dump2 "events recorded");
  (* The numeric Table-1-style trace is still there. *)
  let table = exec s "trace 5" in
  Alcotest.(check bool) "table trace renders channels" true
    (Helpers.contains table "->")

let test_shell_trace_dump_requires_run () =
  let s = Shell.create () in
  let _ = exec s "load table1" in
  let m = expect_error s "trace dump" in
  Alcotest.(check bool) "explains how to record" true
    (Helpers.contains m "trace on")

let test_shell_vcd () =
  let s = Shell.create () in
  let _ = exec s "load table1" in
  let path = Filename.temp_file "elastic_trace" ".vcd" in
  let out = exec s (Fmt.str "vcd %s 10" path) in
  Alcotest.(check bool) "reports the write" true
    (Helpers.contains out "wrote");
  let text = read_file path in
  Sys.remove path;
  Alcotest.(check bool) "starts with $date" true
    (String.length text > 5 && String.sub text 0 5 = "$date");
  Alcotest.(check bool) "has definitions" true
    (Helpers.contains text "$enddefinitions $end");
  Alcotest.(check bool) "dumps the first cycle" true
    (Helpers.contains text "#0")

let test_shell_attribute_and_timeline () =
  let s = Shell.create () in
  let _ = exec s "load table1" in
  let at = exec s "attribute 100" in
  Alcotest.(check bool) "names a bottleneck" true
    (Helpers.contains at "bottleneck:");
  Alcotest.(check bool) "cross-checks the critical cycle" true
    (Helpers.contains at "critical cycle");
  Alcotest.(check bool) "agreement reported" true
    (Helpers.contains at "lies on the critical cycle");
  let tl = exec s "timeline 100" in
  Alcotest.(check bool) "shows the scheduler" true
    (Helpers.contains tl "scheduler");
  Alcotest.(check bool) "shows the penalty stats" true
    (Helpers.contains tl "replay penalty")

let test_shell_help_mentions_trace () =
  let s = Shell.create () in
  let out = exec s "help" in
  List.iter
    (fun cmd ->
       Alcotest.(check bool) cmd true (Helpers.contains out cmd))
    [ "trace on"; "trace dump"; "vcd"; "attribute"; "timeline";
      "invocation only" ]

(* --- simulation errors carry recent trace events ------------------- *)

(* A function block that raises mid-run: the engine reports a
   node-invariant error, and with tracing on the shell report includes
   the last events on the node's channels (satellite: deadlock diagnosis
   without a rerun). *)
let test_shell_error_report_includes_trace () =
  let bomb =
    Func.make ~name:"trace_test_bomb" ~arity:1 ~delay:1.0 ~area:1.0
      (function
        | [ v ] -> if Value.to_int v = 13 then invalid_arg "boom" else v
        | _ -> assert false)
  in
  Library.register bomb;
  let b = builder () in
  let s0 = src_stream b ~name:"src" [ 1; 2; 3; 13; 4 ] in
  let f = add b ~name:"bomb" (Func bomb) in
  let k = sink b ~name:"out" () in
  let _ = conn b (s0, Out 0) (f, In 0) in
  let _ = conn b (f, Out 0) (k, In 0) in
  let path = Filename.temp_file "elastic_bomb" ".enl" in
  Serial.save path b.net;
  let s = Shell.create () in
  let _ = exec s (Fmt.str "open %s" path) in
  Sys.remove path;
  (* Untraced: the base provenance message only. *)
  let bare = expect_error s "throughput 50" in
  Alcotest.(check bool) "bare report has provenance" true
    (Helpers.contains bare "node invariant violated");
  Alcotest.(check bool) "bare report has no events" false
    (Helpers.contains bare "last traced events");
  (* Traced: the same error now carries the channel history. *)
  let _ = exec s "trace on" in
  let m = expect_error s "throughput 50" in
  Alcotest.(check bool) "enriched report has provenance" true
    (Helpers.contains m "node invariant violated");
  Alcotest.(check bool) "enriched report lists events" true
    (Helpers.contains m "last traced events");
  Alcotest.(check bool) "events include earlier transfers" true
    (Helpers.contains m "transfer")

let suite =
  [ Alcotest.test_case "golden VCD header (table1)" `Quick
      test_vcd_header_golden;
    Alcotest.test_case "golden VCD first 8 cycles (table1)" `Quick
      test_vcd_contents_golden;
    Alcotest.test_case "VCD is structurally well-formed" `Quick
      test_vcd_well_formed;
    Alcotest.test_case "event fold reconstructs counters (both modes)"
      `Quick test_reconstruction_fixed;
    QCheck_alcotest.to_alcotest reconstruction_prop;
    Alcotest.test_case "occupancy events chain" `Quick test_occupancy_chain;
    Alcotest.test_case "attribution agrees with marked graph (table1)"
      `Quick test_attribution_table1;
    Alcotest.test_case "attribution names the stage (Sec. 5.1)" `Quick
      test_attribution_vl;
    Alcotest.test_case "attribution reports source-limited runs" `Quick
      test_attribution_no_stall;
    Alcotest.test_case "timeline matches bench goldens (E5/E6)" `Quick
      test_timeline_bench_golden;
    Alcotest.test_case "timeline windows and replay bounds" `Quick
      test_timeline_windows;
    Alcotest.test_case "JSONL export schema" `Quick test_jsonl;
    Alcotest.test_case "tracing off has zero overhead" `Quick
      test_zero_overhead;
    Alcotest.test_case "recovery checks can observe the faulted run"
      `Quick test_recovery_observer;
    Alcotest.test_case "shell: trace on/off/dump" `Quick
      test_shell_trace_commands;
    Alcotest.test_case "shell: trace dump needs a recorded run" `Quick
      test_shell_trace_dump_requires_run;
    Alcotest.test_case "shell: vcd export" `Quick test_shell_vcd;
    Alcotest.test_case "shell: attribute and timeline" `Quick
      test_shell_attribute_and_timeline;
    Alcotest.test_case "shell: help lists the trace commands" `Quick
      test_shell_help_mentions_trace;
    Alcotest.test_case "shell: errors carry recent trace events" `Quick
      test_shell_error_report_includes_trace ]
