open Elastic_datapath

let words =
  [ 0L; 1L; -1L; 0xDEADBEEFL; 0x0123456789ABCDEFL; Int64.min_int;
    Int64.max_int; 0x8000000000000001L ]

let secded_suite =
  [ Alcotest.test_case "clean codewords decode to No_error" `Quick
      (fun () ->
         List.iter
           (fun w ->
              match Secded.decode (Secded.encode w) with
              | Secded.No_error -> ()
              | Secded.Corrected _ | Secded.Double_error ->
                Alcotest.failf "0x%Lx not clean" w)
           words);
    Alcotest.test_case "every single-bit error is corrected" `Quick
      (fun () ->
         List.iter
           (fun w ->
              let cw = Secded.encode w in
              for bit = 0 to 71 do
                match Secded.decode (Secded.flip_bit cw bit) with
                | Secded.Corrected d ->
                  if not (Int64.equal d w) then
                    Alcotest.failf "0x%Lx bit %d: corrected to 0x%Lx" w bit d
                | Secded.No_error ->
                  Alcotest.failf "0x%Lx bit %d: error not seen" w bit
                | Secded.Double_error ->
                  Alcotest.failf "0x%Lx bit %d: declared double" w bit
              done)
           words);
    Alcotest.test_case "every double-bit error is detected, not corrupted"
      `Quick (fun () ->
        let w = 0xCAFEBABE12345678L in
        let cw = Secded.encode w in
        for i = 0 to 71 do
          for j = i + 1 to 71 do
            match Secded.decode (Secded.flip_bit (Secded.flip_bit cw i) j) with
            | Secded.Double_error -> ()
            | Secded.No_error ->
              Alcotest.failf "bits %d,%d: missed double error" i j
            | Secded.Corrected d ->
              (* Miscorrection must never silently return wrong data as
                 right: the SECDED guarantee is detection, so a Corrected
                 verdict here is a failure. *)
              Alcotest.failf "bits %d,%d: miscorrected to 0x%Lx" i j d
          done
        done);
    Alcotest.test_case "flip_bit is an involution and validates range"
      `Quick (fun () ->
        let cw = Secded.encode 42L in
        for bit = 0 to 71 do
          Alcotest.(check bool) "involution" true
            (Secded.equal_codeword cw
               (Secded.flip_bit (Secded.flip_bit cw bit) bit))
        done;
        Alcotest.check_raises "range"
          (Invalid_argument "Secded.flip_bit: index out of range") (fun () ->
            ignore (Secded.flip_bit cw 72))) ]

(* The netlist-facing wrapper used by the §5.2 designs: the corrector
   Func must surface err=2 on a double error (passing the uncorrected
   data through, never a miscorrection) and err=1 with repaired data on
   a single error — the signal the resilient adder's alarm logic keys
   on. *)
let corrector_func_suite =
  let open Elastic_kernel in
  let open Elastic_netlist in
  let cor = Secded.corrector_func () in
  let cw_value (cw : Secded.codeword) =
    Value.Tuple [ Value.Word cw.Secded.data; Value.Int cw.Secded.check ]
  in
  [ Alcotest.test_case "corrector func reports err=1 and repairs singles"
      `Quick (fun () ->
        List.iter
          (fun w ->
             let cw = Secded.encode w in
             for bit = 0 to 71 do
               match Func.apply cor [ cw_value (Secded.flip_bit cw bit) ] with
               | Value.Tuple [ Value.Word d; Value.Int 1 ] ->
                 if not (Int64.equal d w) then
                   Alcotest.failf "0x%Lx bit %d: repaired to 0x%Lx" w bit d
               | v -> Alcotest.failf "0x%Lx bit %d: %a" w bit Value.pp v
             done)
          [ 0L; -1L; 0xDEADBEEFL ]);
    Alcotest.test_case "corrector func reports err=2 on every double"
      `Quick (fun () ->
        let w = 0xCAFEBABE12345678L in
        let cw = Secded.encode w in
        for i = 0 to 71 do
          for j = i + 1 to 71 do
            let hit = Secded.flip_bit (Secded.flip_bit cw i) j in
            match Func.apply cor [ cw_value hit ] with
            | Value.Tuple [ Value.Word d; Value.Int 2 ] ->
              (* Uncorrected data passes through untouched: downstream
                 logic sees the raw (known-bad) word plus the alarm. *)
              if not (Int64.equal d hit.Secded.data) then
                Alcotest.failf "bits %d,%d: data rewritten to 0x%Lx" i j d
            | v -> Alcotest.failf "bits %d,%d: %a" i j Value.pp v
          done
        done);
    Alcotest.test_case "corrector func is clean on intact codewords"
      `Quick (fun () ->
        List.iter
          (fun w ->
             match Func.apply cor [ cw_value (Secded.encode w) ] with
             | Value.Tuple [ Value.Word d; Value.Int 0 ] ->
               Alcotest.(check bool) "data" true (Int64.equal d w)
             | v -> Alcotest.failf "0x%Lx: %a" w Value.pp v)
          words);
    Alcotest.test_case "corrector func rejects non-codeword payloads"
      `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Func.apply cor [ Value.Int 3 ]);
             false
           with Invalid_argument _ -> true)) ]

let qcheck_secded =
  let open QCheck in
  [ QCheck_alcotest.to_alcotest
      (Test.make ~name:"qcheck: random single flips always corrected"
         ~count:500
         (pair int64 (int_bound 71))
         (fun (w, bit) ->
            match Secded.decode (Secded.flip_bit (Secded.encode w) bit) with
            | Secded.Corrected d -> Int64.equal d w
            | Secded.No_error | Secded.Double_error -> false));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"qcheck: encode produces 8 check bits" ~count:200
         int64 (fun w ->
           let cw = Secded.encode w in
           cw.Secded.check >= 0 && cw.Secded.check < 256)) ]

let alu_suite =
  [ Alcotest.test_case "approx equals exact on logic ops" `Quick (fun () ->
        List.iter
          (fun op ->
             for a = 0 to 255 do
               let b = (a * 37) land 0xFF in
               Alcotest.(check int) "logic"
                 (Alu.exact op a b) (Alu.approx op a b)
             done)
          [ Alu.And; Alu.Or; Alu.Xor ]);
    Alcotest.test_case "approx add wrong exactly on nibble carry" `Quick
      (fun () ->
         for a = 0 to 255 do
           for b = 0 to 255 do
             let carry_crosses = (a land 0xF) + (b land 0xF) >= 16 in
             let correct = Alu.approx_correct Alu.Add a b in
             if carry_crosses = correct then
               Alcotest.failf "a=%d b=%d: carry=%b correct=%b" a b
                 carry_crosses correct
           done
         done);
    Alcotest.test_case "operand generator hits the requested error rate"
      `Quick (fun () ->
        List.iter
          (fun pct ->
             let ops = Alu.operands ~error_rate_pct:pct ~seed:3 2000 in
             let errs =
               List.length
                 (List.filter
                    (fun (op, a, b) -> not (Alu.approx_correct op a b))
                    ops)
             in
             let measured = 100 * errs / 2000 in
             Alcotest.(check bool)
               (Fmt.str "pct %d measured %d" pct measured)
               true
               (abs (measured - pct) <= 4))
          [ 0; 5; 20; 50 ]);
    Alcotest.test_case "exact add/sub wrap mod 256" `Quick (fun () ->
        Alcotest.(check int) "add" 4 (Alu.exact Alu.Add 250 10);
        Alcotest.(check int) "sub" 246 (Alu.exact Alu.Sub 0 10)) ]

let qcheck_alu =
  let open QCheck in
  let byte = int_bound 255 in
  [ QCheck_alcotest.to_alcotest
      (Test.make ~name:"qcheck: approx_correct <=> approx = exact"
         ~count:1000
         (pair byte byte)
         (fun (a, b) ->
            List.for_all
              (fun op ->
                 Alu.approx_correct op a b = (Alu.approx op a b = Alu.exact op a b))
              [ Alu.Add; Alu.Sub; Alu.And; Alu.Or; Alu.Xor ])) ]

let suite =
  secded_suite @ corrector_func_suite @ qcheck_secded @ alu_suite
  @ qcheck_alu
