open Elastic_kernel
open Elastic_sched
open Elastic_netlist
open Elastic_sim
open Helpers

(* Property-based tests of the simulator's global invariants: token
   conservation, order preservation and protocol cleanliness on random
   structures, environments and transformation sequences. *)

(* --- random linear pipelines -------------------------------------- *)

type pipe_spec = {
  stages : (Netlist.buffer_kind * int) list;  (* kind, init count *)
  src_pct : int;
  sink_pct : int;
  seed : int;
}

let gen_pipe =
  let open QCheck.Gen in
  let stage =
    pair (oneofl [ Netlist.Eb; Netlist.Eb0 ]) (int_bound 2) >|= fun (k, n) ->
    (k, match k with Netlist.Eb -> min n 2 | Netlist.Eb0 -> min n 1)
  in
  let* stages = list_size (int_range 1 5) stage in
  let* src_pct = int_range 10 100 in
  let* sink_pct = int_bound 90 in
  let* seed = int_bound 10000 in
  return { stages; src_pct; sink_pct; seed }

let print_pipe p =
  Fmt.str "stages=[%a] src=%d%% stall=%d%% seed=%d"
    Fmt.(
      list ~sep:comma (fun ppf (k, n) ->
          pf ppf "%s:%d" (Netlist.buffer_kind_name k) n))
    p.stages p.src_pct p.sink_pct p.seed

let build_pipe p =
  let b = builder () in
  let s = add b (Source (Random_rate { pct = p.src_pct; seed = p.seed })) in
  let k =
    add b (Sink (Random_stall { pct = p.sink_pct; seed = p.seed + 17 }))
  in
  (* Distinct negative init tokens so they can be identified downstream;
     tokens of the most-downstream buffer drain first. *)
  let counter = ref 0 in
  let prev, inits =
    List.fold_left
      (fun (prev, inits) (kind, n) ->
         let init =
           List.init n (fun _ ->
               decr counter;
               Value.Int !counter)
         in
         let e = add b (Buffer { buffer = kind; init }) in
         let _ = conn b (prev, Out 0) (e, In 0) in
         (e, init :: inits))
      (s, []) p.stages
  in
  let _ = conn b (prev, Out 0) (k, In 0) in
  let src_out =
    match Netlist.channel_at b.net s (Out 0) with
    | Some c -> c.Netlist.ch_id
    | None -> assert false
  in
  (* Expected: downstream inits first (each buffer's own tokens oldest
     first), then the source's 0,1,2,... *)
  let expected_prefix = List.concat inits in
  (b.net, k, src_out, expected_prefix)

let pipeline_props =
  let open QCheck in
  [ Test.make ~name:"qcheck: pipelines deliver in order without loss"
      ~count:250 (make ~print:print_pipe gen_pipe) (fun p ->
        let net, k, src_out, expected_prefix = build_pipe p in
        let eng = Engine.create net in
        Engine.run eng 150;
        (* Protocol safety only: with adversarial random stalls, tokens
           may legitimately wait longer than the liveness watchdog. *)
        if safety_violations eng <> [] then false
        else begin
          let got = Transfer.values (Engine.sink_stream eng k) in
          let npre = List.length expected_prefix in
          let pre = List.filteri (fun i _ -> i < npre) got in
          let rest = List.filteri (fun i _ -> i >= npre) got in
          (* inits first, then consecutive source values *)
          List.for_all2 Value.equal pre
            (List.filteri (fun i _ -> i < List.length pre) expected_prefix)
          && List.for_all2
               (fun v i -> Value.equal v (Value.Int i))
               rest
               (List.init (List.length rest) (fun i -> i))
          (* conservation: everything the source emitted is either
             delivered or still stored *)
          && Engine.delivered eng src_out
             = List.length rest + (Engine.stored_tokens eng - (npre - List.length pre))
        end) ]

(* --- random fork trees --------------------------------------------- *)

let fork_props =
  let open QCheck in
  [ Test.make ~name:"qcheck: eager fork delivers everywhere despite skew"
      ~count:150
      (make
         ~print:(fun (n, a, b, c) -> Fmt.str "n=%d stalls=(%d,%d,%d)" n a b c)
         QCheck.Gen.(
           quad (int_range 2 3) (int_bound 80) (int_bound 80) (int_bound 80)))
      (fun (branches, p0, p1, p2) ->
         let b = builder () in
         let s = src_stream b [ 1; 2; 3; 4; 5 ] in
         let f = add b (Fork branches) in
         let _ = conn b (s, Out 0) (f, In 0) in
         let stalls = [| p0; p1; p2 |] in
         let sinks =
           List.init branches (fun i ->
               let k =
                 add b (Sink (Random_stall { pct = stalls.(i); seed = i + 3 }))
               in
               let _ = conn b (f, Out i) (k, In 0) in
               k)
         in
         let eng = Engine.create b.net in
         Engine.run eng 200;
         safety_violations eng = []
         && List.for_all
              (fun k ->
                 List.equal Value.equal (ints [ 1; 2; 3; 4; 5 ])
                   (Transfer.values (Engine.sink_stream eng k)))
              sinks) ]

(* --- early mux against its reference semantics ---------------------- *)

let emux_props =
  let open QCheck in
  [ Test.make
      ~name:"qcheck: early mux equals the reference select semantics"
      ~count:200
      (make
         ~print:(fun (sels, stall) ->
           Fmt.str "sel=[%a] stall=%d%%" Fmt.(list ~sep:comma int) sels stall)
         QCheck.Gen.(
           pair (list_size (int_range 1 10) (int_bound 1)) (int_bound 70)))
      (fun (sels, stall) ->
         let b = builder () in
         let sel = src_stream b sels in
         let s0 = add b (Source (Counter { start = 0; step = 2 })) in
         let s1 = add b (Source (Counter { start = 1; step = 2 })) in
         let m = add b (Mux { ways = 2; early = true }) in
         let k = add b (Sink (Random_stall { pct = stall; seed = 5 })) in
         let _ = conn b (sel, Out 0) (m, Sel) in
         let _ = conn b (s0, Out 0) (m, In 0) in
         let _ = conn b (s1, Out 0) (m, In 1) in
         let _ = conn b (m, Out 0) (k, In 0) in
         let eng = Engine.create b.net in
         Engine.run eng 120;
         let expected =
           List.mapi (fun i s -> Value.Int ((2 * i) + s)) sels
         in
         (* The select stream is finite, so the data inputs legitimately
            stall forever once it ends: ignore the liveness watchdog and
            check only safety properties. *)
         safety_violations eng = []
         && List.equal Value.equal expected
              (Transfer.values (Engine.sink_stream eng k))) ]

(* --- token/anti-token accounting under adversarial environments ----- *)

(* Early-evaluation muxes emit anti-tokens into the non-selected branch;
   under random offer/stall patterns the signed bookkeeping must stay
   bounded every cycle: a buffer never stores more tokens (or owes more
   anti-tokens) than its capacity, kill counters only grow, the mux never
   delivers more results than selects it consumed, and the protocol
   monitors stay silent throughout. *)

let antitoken_props =
  let open QCheck in
  [ Test.make
      ~name:"qcheck: anti-token accounting stays bounded every cycle"
      ~count:150
      (make
         ~print:(fun (sels, p0, p1, stall) ->
           Fmt.str "sel=[%a] rates=(%d,%d) stall=%d%%"
             Fmt.(list ~sep:comma int)
             sels p0 p1 stall)
         QCheck.Gen.(
           quad
             (list_size (int_range 3 12) (int_bound 1))
             (int_range 20 100) (int_range 20 100) (int_bound 70)))
      (fun (sels, p0, p1, stall) ->
         let b = builder () in
         let sel = src_stream b sels in
         let s0 = add b (Source (Random_rate { pct = p0; seed = 31 })) in
         let s1 = add b (Source (Random_rate { pct = p1; seed = 37 })) in
         (* EBs on the data branches give the anti-tokens somewhere to
            park (negative occupancy). *)
         let e0 = eb b () in
         let e1 = eb b () in
         let m = add b (Mux { ways = 2; early = true }) in
         let k = add b (Sink (Random_stall { pct = stall; seed = 41 })) in
         let c_sel = conn b (sel, Out 0) (m, Sel) in
         let _ = conn b (s0, Out 0) (e0, In 0) in
         let _ = conn b (s1, Out 0) (e1, In 0) in
         let _ = conn b (e0, Out 0) (m, In 0) in
         let _ = conn b (e1, Out 0) (m, In 1) in
         let c_out = conn b (m, Out 0) (k, In 0) in
         let capacity = function
           | Netlist.Eb -> 2
           | Netlist.Eb0 -> 1
         in
         let cap_of =
           let tbl = Hashtbl.create 8 in
           List.iter
             (fun (n : Netlist.node) ->
                match n.Netlist.kind with
                | Netlist.Buffer { buffer; _ } ->
                  Hashtbl.replace tbl n.Netlist.id (capacity buffer)
                | _ -> ())
             (Netlist.nodes b.net);
           fun id -> Hashtbl.find_opt tbl id
         in
         let eng = Engine.create b.net in
         let killed_before = Hashtbl.create 16 in
         let ok = ref true in
         for _ = 1 to 200 do
           Engine.step eng;
           (* Occupancy bounded by capacity, in both directions. *)
           List.iter
             (fun (id, occ) ->
                match cap_of id with
                | Some cap -> if abs occ > cap then ok := false
                | None -> ())
             (Engine.occupancies eng);
           (* Cancellation counters are cumulative: never negative, never
              decreasing. *)
           List.iter
             (fun (c : Netlist.channel) ->
                let k = Engine.killed eng c.Netlist.ch_id in
                let prev =
                  Option.value ~default:0
                    (Hashtbl.find_opt killed_before c.Netlist.ch_id)
                in
                if k < prev || k < 0 then ok := false;
                Hashtbl.replace killed_before c.Netlist.ch_id k)
             (Netlist.channels b.net);
           (* Every delivered result consumed exactly one select token. *)
           if Engine.delivered eng c_out > Engine.delivered eng c_sel then
             ok := false
         done;
         !ok && safety_violations eng = []) ]

(* --- speculation correctness under random select patterns ----------- *)

let speculation_props =
  let open QCheck in
  [ Test.make
      ~name:
        "qcheck: fig1d transfer-equivalent to fig1a for random patterns"
      ~count:80
      (make
         ~print:(fun (sels, acc) ->
           Fmt.str "sel=[%a] acc=%d" Fmt.(list ~sep:comma int) sels acc)
         QCheck.Gen.(
           pair
             (list_size (int_range 2 8) (int_bound 1))
             (int_range 0 100)))
      (fun (sels, accuracy_pct) ->
         let params =
           { Elastic_core.Figures.default_params with
             Elastic_core.Figures.sel = Array.of_list sels }
         in
         let a = Elastic_core.Figures.fig1a ~params () in
         let d =
           Elastic_core.Figures.fig1d ~params
             ~sched:
               (Scheduler.Noisy_oracle
                  { sel = Array.of_list sels; accuracy_pct; seed = 23 })
             ()
         in
         match
           Elastic_core.Equiv.check ~cycles:120
             a.Elastic_core.Figures.net d.Elastic_core.Figures.net
         with
         | Ok _ -> true
         | Error _ -> false) ]

(* --- random transformation sequences preserve equivalence ----------- *)

type xform = Bubble of int | Buf0 of int | Retime_back

let gen_xforms =
  QCheck.Gen.(
    list_size (int_range 1 4)
      (oneof
         [ (int_bound 100 >|= fun i -> Bubble i);
           (int_bound 100 >|= fun i -> Buf0 i); return Retime_back ]))

let print_xforms xs =
  String.concat ";"
    (List.map
       (function
         | Bubble i -> Fmt.str "bubble@%d" i
         | Buf0 i -> Fmt.str "eb0@%d" i
         | Retime_back -> "retime")
       xs)

let apply_xform net x =
  let channels = Netlist.channels net in
  let nth i = List.nth channels (i mod List.length channels) in
  match x with
  | Bubble i ->
    fst
      (Elastic_core.Transform.insert_bubble net
         ~channel:(nth i).Netlist.ch_id)
  | Buf0 i ->
    fst
      (Elastic_core.Transform.insert_buffer net
         ~channel:(nth i).Netlist.ch_id ~buffer:Netlist.Eb0 ~init:[])
  | Retime_back -> (
      (* Move an empty output buffer backwards across a function block
         when the structure allows it; otherwise skip. *)
      let candidate =
        List.find_opt
          (fun (n : Netlist.node) ->
             match n.Netlist.kind with
             | Netlist.Func _ -> (
                 match Netlist.channel_at net n.Netlist.id (Out 0) with
                 | Some c -> (
                     match
                       (Netlist.node net c.Netlist.dst.Netlist.ep_node)
                         .Netlist.kind
                     with
                     | Netlist.Buffer { init = []; _ } -> true
                     | _ -> false)
                 | None -> false)
             | _ -> false)
          (Netlist.nodes net)
      in
      match candidate with
      | Some f ->
        fst (Elastic_core.Transform.retime_backward net ~through:f.Netlist.id)
      | None -> net)

let transform_props =
  let open QCheck in
  [ Test.make
      ~name:"qcheck: random latency transformations preserve equivalence"
      ~count:120
      (make ~print:print_xforms gen_xforms)
      (fun xs ->
         let b = builder () in
         let s = src_counter b () in
         let f = add b (Func (Func.inc ~step:3 ())) in
         let e = eb b ~init:[ Value.Int 7 ] () in
         let g = add b (Func (Func.inc ~step:1 ())) in
         let k = sink b () in
         let _ = conn b (s, Out 0) (f, In 0) in
         let _ = conn b (f, Out 0) (e, In 0) in
         let _ = conn b (e, Out 0) (g, In 0) in
         let _ = conn b (g, Out 0) (k, In 0) in
         let reference = b.net in
         let transformed = List.fold_left apply_xform reference xs in
         Netlist.validate transformed = []
         &&
         match Elastic_core.Equiv.check ~cycles:100 reference transformed with
         | Ok _ -> true
         | Error _ -> false) ]

(* --- refinement: shared module composed with an EB behaves like an
   EB for each of its users (the paper's Sec. 4.2 refinement claim) ---- *)

let refinement_props =
  let open QCheck in
  [ Test.make
      ~name:"qcheck: shared+EB refines an EB per user (no loss/cross-talk)"
      ~count:60
      (make
         ~print:(fun (p0, p1, st0, st1) ->
           Fmt.str "rates=(%d,%d) stalls=(%d,%d)" p0 p1 st0 st1)
         QCheck.Gen.(
           quad (int_range 20 100) (int_range 20 100) (int_bound 60)
             (int_bound 60)))
      (fun (p0, p1, st0, st1) ->
         let b = builder () in
         let s0 = add b (Source (Random_rate { pct = p0; seed = 2 })) in
         let s1 = add b (Source (Random_rate { pct = p1; seed = 4 })) in
         let f = Func.identity ~delay:1.0 ~area:1.0 () in
         (* Round-robin satisfies leads-to unconditionally.  Sticky does
            not in this context: it only corrects on output retries, which
            a plain two-user composition never produces — the starvation
            is demonstrated in the test below. *)
         let sched = Scheduler.Round_robin in
         let sh = add b (Shared { ways = 2; f; sched; hinted = false }) in
         let e0 = eb b () in
         let e1 = eb b () in
         let k0 = add b (Sink (Random_stall { pct = st0; seed = 6 })) in
         let k1 = add b (Sink (Random_stall { pct = st1; seed = 8 })) in
         let _ = conn b (s0, Out 0) (sh, In 0) in
         let _ = conn b (s1, Out 0) (sh, In 1) in
         let _ = conn b (sh, Out 0) (e0, In 0) in
         let _ = conn b (sh, Out 1) (e1, In 0) in
         let _ = conn b (e0, Out 0) (k0, In 0) in
         let _ = conn b (e1, Out 0) (k1, In 0) in
         let eng = Engine.create b.net in
         Engine.run eng 250;
         (* Each user sees exactly its own stream, in order, no loss:
            observationally an elastic buffer (with variable latency). *)
         let ok_stream k =
           let got = Transfer.values (Engine.sink_stream eng k) in
           List.for_all2
             (fun v i -> Value.equal v (Value.Int i))
             got
             (List.init (List.length got) (fun i -> i))
         in
         safety_violations eng = []
         && Engine.starvation_violations eng = []
         && ok_stream k0 && ok_stream k1) ]

(* --- serialization round-trips random pipelines --------------------- *)

let serial_props =
  let open QCheck in
  [ Test.make ~name:"qcheck: random pipelines round-trip through Serial"
      ~count:150 (make ~print:print_pipe gen_pipe) (fun p ->
        let net, _, _, _ = build_pipe p in
        match
          Elastic_netlist.Serial.parse (Elastic_netlist.Serial.to_string net)
        with
        | Error _ -> false
        | Ok net' ->
          Elastic_netlist.Serial.to_string net
          = Elastic_netlist.Serial.to_string net') ]

let sticky_needs_feedback =
  [ Alcotest.test_case
      "sticky scheduler starves without mux feedback (4.1.1 subtlety)"
      `Quick (fun () ->
        (* Sticky corrects only on a retry of the predicted output; two
           independent consumers never produce one, so the non-predicted
           user waits forever — leads-to violated. *)
        let b = builder () in
        let s0 = add b (Source (Random_rate { pct = 90; seed = 2 })) in
        let s1 = add b (Source (Random_rate { pct = 90; seed = 4 })) in
        let f = Func.identity ~delay:1.0 ~area:1.0 () in
        let sh =
          add b (Shared { ways = 2; f; sched = Scheduler.Sticky;
                          hinted = false })
        in
        let k0 = sink b ~name:"k0" () in
        let k1 = sink b ~name:"k1" () in
        let _ = conn b (s0, Out 0) (sh, In 0) in
        let _ = conn b (s1, Out 0) (sh, In 1) in
        let _ = conn b (sh, Out 0) (k0, In 0) in
        let _ = conn b (sh, Out 1) (k1, In 0) in
        let eng = Engine.create b.net in
        Engine.run eng 200;
        Alcotest.(check bool) "starves" true
          (Engine.starvation_violations eng <> [])) ]

let suite =
  List.map QCheck_alcotest.to_alcotest
    (pipeline_props @ fork_props @ emux_props @ antitoken_props
     @ speculation_props @ transform_props @ refinement_props
     @ serial_props)
  @ sticky_needs_feedback
