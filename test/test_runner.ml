open Elastic_kernel
open Elastic_netlist
open Elastic_sim
open Elastic_core
open Elastic_fault
open Elastic_metrics
open Elastic_runner

(* The supervised campaign runner (lib/runner): seeded backoff,
   checkpoint round-trips and corruption handling, crash isolation,
   retry classification, wall-clock deadlines, kill/resume, and the
   crash-recovery equivalence property — interrupted + resumed runs
   merge byte-identically to an uninterrupted sequential run. *)

(* No test below actually sleeps: every Runner.run call injects a
   recording stub. *)
let no_sleep = ref []

let sleep_stub d = no_sleep := d :: !no_sleep

(* --- backoff ------------------------------------------------------- *)

let test_backoff_deterministic () =
  let p = Backoff.default in
  let seq seed =
    let rng = Rng.create ~seed in
    List.init 6 (fun i -> Backoff.delay p ~rng ~attempt:(i + 1))
  in
  Alcotest.(check bool) "same seed, same schedule" true (seq 7 = seq 7);
  Alcotest.(check bool) "all non-negative" true
    (List.for_all (fun d -> d >= 0.0) (seq 13))

let test_backoff_growth_and_cap () =
  let p = Backoff.v ~base:0.1 ~factor:2.0 ~max_delay:0.5 ~jitter_pct:0 in
  let rng = Rng.create ~seed:1 in
  let d k = Backoff.delay p ~rng ~attempt:k in
  Alcotest.(check (float 1e-9)) "attempt 1" 0.1 (d 1);
  Alcotest.(check (float 1e-9)) "attempt 2" 0.2 (d 2);
  Alcotest.(check (float 1e-9)) "attempt 3" 0.4 (d 3);
  Alcotest.(check (float 1e-9)) "attempt 4 capped" 0.5 (d 4);
  Alcotest.(check (float 1e-9)) "attempt 10 capped" 0.5 (d 10)

let test_backoff_jitter_bounded () =
  let p = Backoff.v ~base:1.0 ~factor:1.0 ~max_delay:1.0 ~jitter_pct:25 in
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 200 do
    let d = Backoff.delay p ~rng ~attempt:1 in
    if d < 0.75 -. 1e-9 || d > 1.25 +. 1e-9 then
      Alcotest.failf "jittered delay %g outside [0.75, 1.25]" d
  done

let test_backoff_validation () =
  Alcotest.check_raises "base" (Invalid_argument "Backoff.v: base must be positive")
    (fun () ->
       ignore (Backoff.v ~base:0.0 ~factor:2.0 ~max_delay:1.0 ~jitter_pct:0));
  Alcotest.check_raises "jitter"
    (Invalid_argument "Backoff.v: jitter_pct outside [0, 100]") (fun () ->
        ignore (Backoff.v ~base:0.1 ~factor:2.0 ~max_delay:1.0 ~jitter_pct:101))

(* --- checkpoint files ---------------------------------------------- *)

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Fmt.str "elastic_runner_test_%d_%s" (Unix.getpid ()) name)

let sample_fixture () =
  let reg = Metrics.create () in
  Metrics.Counter.add (Metrics.counter reg "a_total") 3;
  Metrics.Gauge.set (Metrics.gauge reg "g") 0.1;
  let h = Metrics.histogram reg ~labels:[ ("k", "v") ] "h" in
  List.iter (Histogram.observe h) [ 1; 2; 300 ];
  Metrics.snapshot reg

let test_checkpoint_roundtrip () =
  let path = tmp_path "roundtrip.jsonl" in
  let header =
    { Checkpoint.campaign = "camp"; command = Some "campaign flips";
      shards = 4; seed = 9 }
  in
  let e i =
    { Checkpoint.e_id = Fmt.str "camp/%04d" i; e_index = i; e_attempts = 1;
      e_seconds = 0.25; e_samples = sample_fixture () }
  in
  Checkpoint.write ~path header [ e 0 ];
  Checkpoint.append ~path (e 2);
  (match Checkpoint.load path with
   | Error msg -> Alcotest.failf "load: %s" msg
   | Ok cp ->
     Alcotest.(check bool) "header" true (cp.Checkpoint.header = header);
     Alcotest.(check int) "entries" 2 (List.length cp.Checkpoint.entries);
     Alcotest.(check bool) "not truncated" false cp.Checkpoint.truncated;
     let loaded = (List.nth cp.Checkpoint.entries 1).Checkpoint.e_samples in
     Alcotest.(check bool) "samples bit-identical" true
       (loaded = sample_fixture ());
     Alcotest.(check string) "prometheus render identical"
       (Prometheus.render (sample_fixture ()))
       (Prometheus.render loaded));
  Sys.remove path

let test_checkpoint_truncated_tail () =
  let path = tmp_path "truncated.jsonl" in
  let header =
    { Checkpoint.campaign = "camp"; command = None; shards = 3; seed = 1 }
  in
  let e =
    { Checkpoint.e_id = "camp/0000"; e_index = 0; e_attempts = 2;
      e_seconds = 0.5; e_samples = sample_fixture () }
  in
  Checkpoint.write ~path header [ e ];
  (* Simulate a kill mid-append: a partial line with no newline. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"shard\":\"camp/0001\",\"index\":1,\"atte";
  close_out oc;
  (match Checkpoint.load path with
   | Error msg -> Alcotest.failf "load: %s" msg
   | Ok cp ->
     Alcotest.(check int) "kept the complete entry" 1
       (List.length cp.Checkpoint.entries);
     Alcotest.(check bool) "flagged truncated" true cp.Checkpoint.truncated);
  Sys.remove path

let test_checkpoint_corrupt_interior () =
  let path = tmp_path "corrupt.jsonl" in
  let header =
    { Checkpoint.campaign = "camp"; command = None; shards = 3; seed = 1 }
  in
  Checkpoint.write ~path header [];
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"shard\": 42}\n";  (* complete but malformed line *)
  output_string oc "also not json\n";
  close_out oc;
  (match Checkpoint.load path with
   | Ok _ -> Alcotest.fail "corrupt interior line must not load"
   | Error msg ->
     Alcotest.(check bool) "names the line" true
       (Helpers.contains msg "line 2"));
  Sys.remove path

let test_checkpoint_bad_schema () =
  let path = tmp_path "schema.jsonl" in
  let oc = open_out path in
  output_string oc "{\"schema\":\"other/v9\"}\n";
  close_out oc;
  (match Checkpoint.load path with
   | Ok _ -> Alcotest.fail "foreign schema must not load"
   | Error msg ->
     Alcotest.(check bool) "names the schema" true
       (Helpers.contains msg "other/v9"));
  Sys.remove path;
  match Checkpoint.load (tmp_path "does_not_exist.jsonl") with
  | Ok _ -> Alcotest.fail "missing file must not load"
  | Error _ -> ()

(* --- runner: supervision basics ------------------------------------ *)

let counting_task ?(fail_attempts = 0) ?(exn = Runner.Killed "chaos") id v =
  let seen = ref 0 in
  { Runner.id;
    work =
      (fun (ctx : Runner.ctx) ->
         ignore ctx;
         incr seen;
         if !seen <= fail_attempts then raise exn;
         let reg = Metrics.create () in
         Metrics.Counter.add (Metrics.counter reg "work_total") v;
         Metrics.snapshot reg) }

let completed_ids r =
  List.filter_map
    (fun (sh : Runner.shard) ->
       match sh.Runner.sh_status with
       | Runner.Completed _ -> Some sh.Runner.sh_id
       | _ -> None)
    r.Runner.r_shards

let work_total r =
  match Metrics.find r.Runner.r_merged "work_total" with
  | Some (Metrics.Counter c) -> c
  | _ -> Alcotest.fail "work_total missing from merged snapshot"

let test_runner_completes_and_merges () =
  let tasks = List.init 5 (fun i -> counting_task (Fmt.str "t%d" i) (i + 1)) in
  let r = Runner.run ~workers:1 ~sleep:sleep_stub ~name:"basic" tasks in
  Alcotest.(check int) "completed" 5 r.Runner.r_completed;
  Alcotest.(check int) "failed" 0 r.Runner.r_failed;
  Alcotest.(check int) "merged counter adds" 15 (work_total r);
  Alcotest.(check bool) "not stopped" false r.Runner.r_stopped

let test_runner_crash_isolation () =
  let boom =
    { Runner.id = "boom";
      work = (fun _ -> failwith "deterministic crash") }
  in
  let tasks =
    [ counting_task "a" 1; boom; counting_task "b" 2 ]
  in
  let r = Runner.run ~workers:1 ~sleep:sleep_stub ~name:"iso" tasks in
  Alcotest.(check int) "siblings completed" 2 r.Runner.r_completed;
  Alcotest.(check int) "one failed" 1 r.Runner.r_failed;
  Alcotest.(check (list string)) "the right ones" [ "a"; "b" ]
    (completed_ids r);
  match
    List.find (fun (sh : Runner.shard) -> sh.Runner.sh_id = "boom")
      r.Runner.r_shards
  with
  | { sh_status = Runner.Failed f; sh_attempts; _ } ->
    Alcotest.(check bool) "permanent" true (f.f_class = Runner.Permanent);
    Alcotest.(check int) "no retries for deterministic failures" 1
      sh_attempts;
    Alcotest.(check bool) "provenance" true
      (Helpers.contains f.f_exn "deterministic crash")
  | _ -> Alcotest.fail "boom shard not Failed"

let test_runner_transient_retry () =
  (* Fails twice with Killed (transient), succeeds on attempt 3. *)
  no_sleep := [];
  let tasks = [ counting_task ~fail_attempts:2 "flaky" 7 ] in
  let r =
    Runner.run ~workers:1 ~max_attempts:3 ~sleep:sleep_stub ~name:"retry"
      tasks
  in
  Alcotest.(check int) "completed after retries" 1 r.Runner.r_completed;
  Alcotest.(check int) "merged value intact" 7 (work_total r);
  (match r.Runner.r_shards with
   | [ sh ] -> Alcotest.(check int) "attempts" 3 sh.Runner.sh_attempts
   | _ -> Alcotest.fail "one shard expected");
  Alcotest.(check int) "retries counted" 2 r.Runner.r_workers.(0).w_retries;
  Alcotest.(check int) "backed off twice" 2 (List.length !no_sleep)

let test_runner_retry_exhaustion () =
  let tasks = [ counting_task ~fail_attempts:99 "dead" 1 ] in
  let r =
    Runner.run ~workers:1 ~max_attempts:3 ~sleep:sleep_stub ~name:"exh"
      tasks
  in
  Alcotest.(check int) "failed" 1 r.Runner.r_failed;
  match r.Runner.r_shards with
  | [ { sh_status = Runner.Failed f; sh_attempts; _ } ] ->
    Alcotest.(check int) "attempts bounded" 3 sh_attempts;
    Alcotest.(check bool) "classified transient" true
      (f.f_class = Runner.Transient)
  | _ -> Alcotest.fail "shard not Failed"

let test_runner_classify_override () =
  let tasks = [ counting_task ~fail_attempts:99 ~exn:Exit "x" 1 ] in
  let classify = function Exit -> Runner.Permanent | _ -> Runner.Transient in
  let r =
    Runner.run ~workers:1 ~max_attempts:5 ~classify ~sleep:sleep_stub
      ~name:"cls" tasks
  in
  match r.Runner.r_shards with
  | [ { sh_attempts = 1; sh_status = Runner.Failed _; _ } ] -> ()
  | _ -> Alcotest.fail "override must stop retries"

let test_runner_shard_deadline () =
  (* Every clock reading advances 1 ms; a 1 us shard budget trips the
     first check_deadline of every attempt. *)
  let clock = Clock.ticker ~step_ns:1_000_000L in
  let hungry =
    { Runner.id = "hungry";
      work = (fun ctx -> ctx.Runner.check_deadline (); Alcotest.fail
                 "deadline should have fired") }
  in
  let r =
    Runner.run ~workers:1 ~max_attempts:2 ~clock ~shard_deadline:1e-6
      ~sleep:sleep_stub ~name:"dl" [ hungry ]
  in
  Alcotest.(check int) "failed" 1 r.Runner.r_failed;
  Alcotest.(check int) "timeouts observed" 2 r.Runner.r_workers.(0).w_timeouts;
  match r.Runner.r_shards with
  | [ { sh_status = Runner.Failed f; _ } ] ->
    Alcotest.(check bool) "transient (worth retrying elsewhere)" true
      (f.f_class = Runner.Transient);
    Alcotest.(check bool) "names the budget" true
      (Helpers.contains f.f_exn "wall-clock budget")
  | _ -> Alcotest.fail "shard not Failed"

let test_runner_campaign_deadline () =
  (* Campaign budget of 3.5 ms with a 1 ms-per-reading clock: the take
     loop burns one reading per dispatch, so later shards never start. *)
  let clock = Clock.ticker ~step_ns:1_000_000L in
  let tasks = List.init 8 (fun i -> counting_task (Fmt.str "t%d" i) 1) in
  let r =
    Runner.run ~workers:1 ~clock ~campaign_deadline:0.0035
      ~sleep:sleep_stub ~name:"cdl" tasks
  in
  Alcotest.(check bool) "stopped early" true r.Runner.r_stopped;
  Alcotest.(check bool) "some shards not run" true (r.Runner.r_not_run > 0);
  Alcotest.(check int) "accounted" 8
    (r.Runner.r_completed + r.Runner.r_failed + r.Runner.r_not_run)

let test_runner_duplicate_ids () =
  Alcotest.check_raises "duplicate ids rejected"
    (Invalid_argument "Runner.run: duplicate task id \"dup\"") (fun () ->
        ignore
          (Runner.run ~workers:1 ~sleep:sleep_stub ~name:"dup"
             [ counting_task "dup" 1; counting_task "dup" 2 ]))

(* --- checkpoint / resume ------------------------------------------- *)

let test_runner_stop_and_resume () =
  let path = tmp_path "resume.jsonl" in
  let mk () = List.init 6 (fun i -> counting_task (Fmt.str "t%d" i) (i + 1)) in
  let full =
    Runner.run ~workers:1 ~sleep:sleep_stub ~name:"res" (mk ())
  in
  (* Kill after 2 completions, checkpointing as we go. *)
  let killed =
    Runner.run ~workers:1 ~sleep:sleep_stub ~checkpoint:path ~stop_after:2
      ~command:"campaign flips --par 1" ~name:"res" (mk ())
  in
  Alcotest.(check bool) "stopped" true killed.Runner.r_stopped;
  Alcotest.(check int) "partial completions" 2 killed.Runner.r_completed;
  Alcotest.(check int) "rest not run" 4 killed.Runner.r_not_run;
  let cp =
    match Checkpoint.load path with
    | Ok cp -> cp
    | Error m -> Alcotest.failf "checkpoint load: %s" m
  in
  Alcotest.(check int) "checkpointed shards" 2
    (List.length cp.Checkpoint.entries);
  Alcotest.(check (option string)) "resume command stored"
    (Some "campaign flips --par 1") cp.Checkpoint.header.Checkpoint.command;
  (* Resume: adopts the 2 checkpointed shards, computes only the rest. *)
  let resumed =
    Runner.run ~workers:1 ~sleep:sleep_stub ~checkpoint:path ~resume:cp
      ~name:"res" (mk ())
  in
  Alcotest.(check int) "all completed" 6 resumed.Runner.r_completed;
  Alcotest.(check int) "adopted shards" 2 resumed.Runner.r_resumed;
  let recomputed =
    List.filter (fun (sh : Runner.shard) -> sh.Runner.sh_attempts > 0)
      resumed.Runner.r_shards
  in
  Alcotest.(check int) "only 4 recomputed" 4 (List.length recomputed);
  (* The headline equivalence: identical merged snapshot, byte-identical
     rendering. *)
  Alcotest.(check bool) "merged snapshot identical" true
    (resumed.Runner.r_merged = full.Runner.r_merged);
  Alcotest.(check string) "prometheus bytes identical"
    (Prometheus.render full.Runner.r_merged)
    (Prometheus.render resumed.Runner.r_merged);
  (* The rewritten checkpoint carries the adopted entries forward. *)
  (match Checkpoint.load path with
   | Ok cp2 ->
     Alcotest.(check int) "final checkpoint complete" 6
       (List.length cp2.Checkpoint.entries)
   | Error m -> Alcotest.failf "reload: %s" m);
  Sys.remove path

let test_runner_health_metrics () =
  let reg = Metrics.create () in
  let tasks = [ counting_task ~fail_attempts:1 "t0" 1; counting_task "t1" 1 ] in
  let _ =
    Runner.run ~workers:1 ~registry:reg ~sleep:sleep_stub ~name:"health"
      tasks
  in
  let samples = Metrics.snapshot reg in
  (match Metrics.find ~labels:[ ("worker", "0") ] samples
           "elastic_runner_tasks_total"
   with
   | Some (Metrics.Counter c) -> Alcotest.(check int) "attempts" 3 c
   | _ -> Alcotest.fail "tasks_total missing");
  match Metrics.find ~labels:[ ("worker", "0") ] samples
          "elastic_runner_retries_total"
  with
  | Some (Metrics.Counter c) -> Alcotest.(check int) "retries" 1 c
  | _ -> Alcotest.fail "retries_total missing"

(* --- campaign workload: equivalence with the sequential runner ------ *)

let alarmed () =
  let ops = Examples.rs_ops ~error_rate_pct:0 ~seed:11 40 in
  Examples.rs_speculative_alarmed ~ops

let rs_alarms alarm = [ (alarm, fun v -> Value.to_int v >= 2) ]

let src_channel net =
  let src =
    match Netlist.find_node net "src" with
    | Some n -> n
    | None -> Alcotest.fail "no node named src"
  in
  match
    List.find_opt
      (fun (c : Netlist.channel) ->
         c.Netlist.src.Netlist.ep_node = src.Netlist.id)
      (Netlist.channels net)
  with
  | Some c -> c.Netlist.ch_id
  | None -> Alcotest.fail "no channel out of src"

let campaign_fixture ~seed ~count =
  let d, alarm = alarmed () in
  let net = d.Examples.d_net in
  let scenarios =
    Campaign.random_bitflips ~net ~channel:(src_channel net) ~seed ~count
      ~from_cycle:2 ~to_cycle:40 ~bit_hi:144 ()
  in
  (net, rs_alarms alarm, scenarios)

let test_workload_matches_sequential_campaign () =
  let net, alarms, scenarios = campaign_fixture ~seed:42 ~count:10 in
  let seq = Campaign.run ~cycles:90 net ~alarms ~scenarios in
  let tasks =
    Workload.of_campaign ~cycles:90 ~alarms ~name:"secded" net ~scenarios
  in
  let r = Runner.run ~workers:1 ~sleep:sleep_stub ~name:"secded" tasks in
  Alcotest.(check int) "all shards completed" 10 r.Runner.r_completed;
  Alcotest.(check bool) "histograms agree" true
    (Workload.classification_histogram r.Runner.r_merged
     = seq.Campaign.histogram)

let qcheck_equivalence =
  QCheck.Test.make ~count:6
    ~name:"chaos: kill + resume == uninterrupted, at any worker count"
    QCheck.(triple (int_bound 999) (int_bound 2) (int_bound 6))
    (fun (seed, wexp, kill_at) ->
       let workers = 1 lsl wexp in
       let net, alarms, scenarios =
         campaign_fixture ~seed:(seed + 1) ~count:8
       in
       let tasks () =
         Workload.of_campaign ~cycles:90 ~alarms ~name:"eq" net ~scenarios
       in
       let full =
         Runner.run ~workers:1 ~sleep:sleep_stub ~name:"eq" (tasks ())
       in
       let path =
         tmp_path (Fmt.str "eq_%d_%d_%d.jsonl" seed workers kill_at)
       in
       (* Interrupted run: killed after [kill_at + 1] completions... *)
       let _killed =
         Runner.run ~workers ~sleep:sleep_stub ~checkpoint:path
           ~stop_after:(kill_at + 1) ~name:"eq" (tasks ())
       in
       let cp =
         match Checkpoint.load path with
         | Ok cp -> cp
         | Error m -> QCheck.Test.fail_reportf "checkpoint: %s" m
       in
       (* ... then resumed at a (possibly different) worker count. *)
       let resumed =
         Runner.run ~workers:(max 1 (workers / 2)) ~sleep:sleep_stub
           ~resume:cp ~name:"eq" (tasks ())
       in
       Sys.remove path;
       resumed.Runner.r_completed = 8
       && resumed.Runner.r_merged = full.Runner.r_merged
       && String.equal
            (Prometheus.render full.Runner.r_merged)
            (Prometheus.render resumed.Runner.r_merged)
       && Workload.classification_histogram resumed.Runner.r_merged
          = Workload.classification_histogram full.Runner.r_merged)

(* --- engine cycle budgets (E110) ----------------------------------- *)

let test_engine_max_cycles () =
  let d, _ = alarmed () in
  let eng = Engine.create ~max_cycles:5 d.Examples.d_net in
  for _ = 1 to 5 do
    ignore (Engine.step eng)
  done;
  (match Engine.step eng with
   | _ -> Alcotest.fail "cycle budget should have fired"
   | exception Engine.Simulation_error e ->
     Alcotest.(check (option string)) "typed code" (Some "E110")
       e.Engine.err_code;
     Alcotest.(check int) "at the budget" 5 e.Engine.err_cycle;
     Alcotest.(check bool) "message names max_cycles" true
       (Helpers.contains e.Engine.err_msg "max_cycles"));
  Alcotest.check_raises "negative budget rejected"
    (Invalid_argument "Engine.create: negative max_cycles") (fun () ->
        ignore (Engine.create ~max_cycles:(-1) d.Examples.d_net))

let test_engine_settle_budget_code () =
  let d, _ = alarmed () in
  let eng =
    Engine.create ~mode:Engine.Reference ~max_passes:0 d.Examples.d_net
  in
  match Engine.step eng with
  | _ -> Alcotest.fail "zero settle budget should not converge"
  | exception Engine.Simulation_error e ->
    Alcotest.(check (option string)) "settle timeout is typed E110"
      (Some "E110") e.Engine.err_code

let suite =
  [ Alcotest.test_case "backoff is seed-deterministic" `Quick
      test_backoff_deterministic;
    Alcotest.test_case "backoff grows and caps" `Quick
      test_backoff_growth_and_cap;
    Alcotest.test_case "backoff jitter stays in band" `Quick
      test_backoff_jitter_bounded;
    Alcotest.test_case "backoff validates its policy" `Quick
      test_backoff_validation;
    Alcotest.test_case "checkpoint write/append/load round-trip" `Quick
      test_checkpoint_roundtrip;
    Alcotest.test_case "checkpoint tolerates a truncated tail" `Quick
      test_checkpoint_truncated_tail;
    Alcotest.test_case "corrupt interior line is a hard error" `Quick
      test_checkpoint_corrupt_interior;
    Alcotest.test_case "foreign schema and missing file are errors" `Quick
      test_checkpoint_bad_schema;
    Alcotest.test_case "tasks complete and counters merge" `Quick
      test_runner_completes_and_merges;
    Alcotest.test_case "a crashing shard is isolated with provenance"
      `Quick test_runner_crash_isolation;
    Alcotest.test_case "transient failures retry with backoff" `Quick
      test_runner_transient_retry;
    Alcotest.test_case "retries are bounded" `Quick
      test_runner_retry_exhaustion;
    Alcotest.test_case "classification override is honoured" `Quick
      test_runner_classify_override;
    Alcotest.test_case "shard wall-clock deadline -> typed failure" `Quick
      test_runner_shard_deadline;
    Alcotest.test_case "campaign deadline stops dispatch" `Quick
      test_runner_campaign_deadline;
    Alcotest.test_case "duplicate task ids are rejected" `Quick
      test_runner_duplicate_ids;
    Alcotest.test_case "kill, checkpoint, resume: identical merge" `Quick
      test_runner_stop_and_resume;
    Alcotest.test_case "runner health metrics per worker" `Quick
      test_runner_health_metrics;
    Alcotest.test_case "runner campaign == sequential campaign" `Quick
      test_workload_matches_sequential_campaign;
    QCheck_alcotest.to_alcotest qcheck_equivalence;
    Alcotest.test_case "max_cycles raises typed E110" `Quick
      test_engine_max_cycles;
    Alcotest.test_case "settle exhaustion is typed E110" `Quick
      test_engine_settle_budget_code ]
