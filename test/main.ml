let () =
  Alcotest.run "elastic-speculation"
    [ ("kernel.value", Test_kernel.value_suite);
      ("kernel.signal", Test_kernel.signal_suite);
      ("kernel.transfer", Test_kernel.transfer_suite);
      ("kernel.protocol", Test_kernel.protocol_suite);
      ("sched", Test_sched.suite);
      ("netlist", Test_netlist.suite);
      ("sim.basic", Test_sim_basic.suite);
      ("core.figures", Test_figures.suite);
      ("datapath", Test_datapath.suite);
      ("core.examples", Test_examples.suite);
      ("check", Test_check.suite);
      ("core.transform", Test_transform.suite);
      ("check.flow", Test_flow.suite);
      ("perf", Test_perf.suite);
      ("emitters", Test_emitters.suite);
      ("shell", Test_shell.suite);
      ("sim.property", Test_sim_property.suite);
      ("sim.equiv", Test_engine_equiv.suite);
      ("sim.arena", Test_arena.suite);
      ("golden", Test_golden.suite);
      ("trace", Test_trace.suite);
      ("sim.more", Test_sim_more.suite);
      ("fault", Test_fault.suite);
      ("serial", Test_serial.suite);
      ("metrics", Test_metrics.suite);
      ("blif.cosim", Test_blif_cosim.suite);
      ("lint", Test_lint.suite);
      ("runner", Test_runner.suite);
      ("obs", Test_obs.suite);
      ("telemetry", Test_telemetry.suite) ]
