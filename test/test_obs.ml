open Elastic_core
open Elastic_metrics
open Elastic_runner
module Span = Elastic_obs.Span
module Recorder = Elastic_obs.Recorder
module Collector = Elastic_obs.Collector
module Export = Elastic_obs.Export

(* The span layer (lib/obs): ring recorder accounting, export shapes,
   the qcheck integrity property — per-worker ledgers stay well nested
   and reconcile with the runner's retry bookkeeping under injected
   kills, timeouts and kill/resume — and the zero-overhead guard on the
   engine's settle loop. *)

let sleep_stub _ = ()

let tmp_path name = Filename.concat (Filename.get_temp_dir_name ()) name

(* --- recorder basics ----------------------------------------------- *)

let test_recorder_ring () =
  let r =
    Recorder.create ~capacity:4
      ~clock:(Elastic_sim.Clock.ticker ~step_ns:10L)
      ()
  in
  for i = 1 to 6 do
    let sc = Recorder.enter r Span.Attempt (Fmt.str "a%d" i) in
    Recorder.leave r sc
  done;
  Alcotest.(check int) "recorded counts everything" 6 (Recorder.recorded r);
  Alcotest.(check int) "overflow is reported, not silent" 2
    (Recorder.dropped r);
  let names = List.map (fun s -> s.Span.sp_name) (Recorder.spans r) in
  Alcotest.(check (list string)) "ring keeps the newest, oldest first"
    [ "a3"; "a4"; "a5"; "a6" ] names;
  let durs = List.map Span.duration_ns (Recorder.spans r) in
  Alcotest.(check bool) "ticker durations are exact" true
    (List.for_all (fun d -> d = 10L) durs)

let test_recorder_attrs_and_emit () =
  let r =
    Recorder.create ~clock:(Elastic_sim.Clock.ticker ~step_ns:5L) ()
  in
  let sc =
    Recorder.enter r Span.Shard "s" ~attrs:[ ("worker", Span.Int 3) ]
  in
  Recorder.add_attr sc "status" (Span.Str "ok");
  Recorder.leave r sc;
  (* Synthesized child: no clock reads, caller-supplied interval. *)
  Recorder.emit r ~parent:(Recorder.id sc) Span.Settle "settle"
    ~start_ns:6L ~end_ns:9L;
  match Recorder.spans r with
  | [ shard; settle ] ->
    Alcotest.(check bool) "attrs arrive in insertion order" true
      (List.map fst shard.Span.sp_attrs = [ "worker"; "status" ]);
    Alcotest.(check int) "emit keeps parentage" shard.Span.sp_id
      settle.Span.sp_parent;
    Alcotest.(check bool) "emit takes the given interval" true
      (settle.Span.sp_start_ns = 6L && Span.duration_ns settle = 3L)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

(* --- exports -------------------------------------------------------- *)

let synthetic_ledger () =
  let c =
    Collector.create ~clock:(Elastic_sim.Clock.ticker ~step_ns:100L)
      ~trace:42 ()
  in
  Collector.prepare c ~tracks:2;
  let r0 = Collector.track c 0 and r1 = Collector.track c 1 in
  let camp = Recorder.enter r0 Span.Campaign "camp" in
  let sh = Recorder.enter r1 ~parent:(Recorder.id camp) Span.Shard "s0" in
  Recorder.leave r1 sh;
  Recorder.leave r0 camp;
  c

let test_export_jsonl () =
  let c = synthetic_ledger () in
  let lines =
    String.split_on_char '\n'
      (String.trim (Export.jsonl ~campaign:"camp" (Collector.spans c)))
  in
  Alcotest.(check int) "header + one line per span" 3 (List.length lines);
  (match Json.parse (List.hd lines) with
   | Ok j ->
     Alcotest.(check (option string)) "versioned schema"
       (Some "elastic-speculation/spans/v1")
       (match Json.member "schema" j with
        | Some (Json.Str s) -> Some s
        | _ -> None)
   | Error m -> Alcotest.failf "header does not parse: %s" m);
  List.iter
    (fun l ->
       match Json.parse l with
       | Ok _ -> ()
       | Error m -> Alcotest.failf "line %S does not parse: %s" l m)
    lines

let test_export_chrome_monotone () =
  let c = synthetic_ledger () in
  match Export.chrome_json (Collector.spans c) with
  | Json.Obj fields -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (Json.List evs) ->
        let xs =
          List.filter_map
            (fun ev ->
               match (Json.member "ph" ev, Json.member "ts" ev) with
               | Some (Json.Str "X"), Some (Json.Int ts) -> Some ts
               | _ -> None)
            evs
        in
        Alcotest.(check int) "one X event per span" 2 (List.length xs);
        Alcotest.(check bool) "timestamps are monotone in file order" true
          (List.sort compare xs = xs)
      | _ -> Alcotest.fail "no traceEvents array")
  | _ -> Alcotest.fail "chrome export is not an object"

let test_export_folded () =
  let c = synthetic_ledger () in
  let folded = Export.folded (Collector.spans c) in
  Alcotest.(check bool) "stacks are kind paths" true
    (List.for_all
       (fun l ->
          String.length l = 0
          || String.length l >= 8
             && String.equal (String.sub l 0 8) "campaign")
       (String.split_on_char '\n' folded));
  Alcotest.(check bool) "shard self time excludes nothing here" true
    (List.exists
       (fun l ->
          match String.index_opt l ' ' with
          | Some i -> String.equal (String.sub l 0 i) "campaign;shard"
          | None -> false)
       (String.split_on_char '\n' folded))

(* --- span integrity under chaos (qcheck) ---------------------------- *)

let sample_work () =
  let reg = Metrics.create () in
  Metrics.Counter.inc
    (Metrics.counter reg ~help:"work units" "obs_test_work_total");
  Metrics.snapshot reg

(* A campaign whose first attempts are selectively killed or timed out —
   both Transient, so the runner retries them with backoff. *)
let chaotic_tasks ~count ~kill_mod ~timeout_mod () =
  List.init count (fun i ->
      { Runner.id = Fmt.str "t/%04d" i;
        work =
          (fun (ctx : Runner.ctx) ->
             ctx.Runner.check_deadline ();
             if ctx.Runner.attempt = 1 && i mod 5 = kill_mod then
               raise (Runner.Killed "obs test: injected kill");
             if ctx.Runner.attempt = 1 && i mod 7 = timeout_mod then
               raise (Runner.Deadline_exceeded "obs test: injected timeout");
             sample_work ()) })

let contains (a : Span.t) (b : Span.t) =
  Int64.compare a.Span.sp_start_ns b.Span.sp_start_ns <= 0
  && Int64.compare b.Span.sp_end_ns a.Span.sp_end_ns <= 0

let disjoint (a : Span.t) (b : Span.t) =
  Int64.compare a.Span.sp_end_ns b.Span.sp_start_ns <= 0
  || Int64.compare b.Span.sp_end_ns a.Span.sp_start_ns <= 0

(* Well-nestedness of one ledger: same-track spans pairwise nest or do
   not touch, and every child lies inside its parent (which may live on
   another track: shards hang off the track-0 campaign root). *)
let check_ledger spans =
  let arr = Array.of_list spans in
  let by_id = Hashtbl.create 64 in
  Array.iter (fun s -> Hashtbl.replace by_id s.Span.sp_id s) arr;
  Array.iteri
    (fun i a ->
       Array.iteri
         (fun j b ->
            if i < j && a.Span.sp_track = b.Span.sp_track
               && not (contains a b || contains b a || disjoint a b)
            then
              QCheck.Test.fail_reportf
                "track %d: spans %d and %d overlap without nesting"
                a.Span.sp_track a.Span.sp_id b.Span.sp_id)
         arr)
    arr;
  Array.iter
    (fun s ->
       if s.Span.sp_parent <> Span.no_parent then
         match Hashtbl.find_opt by_id s.Span.sp_parent with
         | None ->
           QCheck.Test.fail_reportf "span %d: dangling parent %d"
             s.Span.sp_id s.Span.sp_parent
         | Some p ->
           if not (contains p s) then
             QCheck.Test.fail_reportf
               "span %d escapes its parent %d" s.Span.sp_id p.Span.sp_id)
    arr

let count_kind k spans =
  List.length (List.filter (fun s -> s.Span.sp_kind = k) spans)

(* Reconcile a ledger against the report it was recorded for. *)
let check_accounting (r : Runner.report) spans =
  let stat f = Array.fold_left (fun acc w -> acc + f w) 0 r.Runner.r_workers in
  let attempts_started = stat (fun w -> w.Runner.w_tasks) in
  let retries = stat (fun w -> w.Runner.w_retries) in
  if count_kind Span.Attempt spans <> attempts_started then
    QCheck.Test.fail_reportf "attempt spans %d <> attempts started %d"
      (count_kind Span.Attempt spans) attempts_started;
  if count_kind Span.Backoff_sleep spans <> retries then
    QCheck.Test.fail_reportf "backoff spans %d <> retries %d"
      (count_kind Span.Backoff_sleep spans) retries;
  let executed =
    List.length
      (List.filter
         (fun (sh : Runner.shard) ->
            sh.Runner.sh_worker >= 0 && not sh.Runner.sh_resumed)
         r.Runner.r_shards)
  in
  if count_kind Span.Shard spans <> executed then
    QCheck.Test.fail_reportf "shard spans %d <> executed shards %d"
      (count_kind Span.Shard spans) executed;
  if count_kind Span.Campaign spans <> 1 then
    QCheck.Test.fail_reportf "expected exactly one campaign root";
  (* Per executed shard: its attempt spans match the report's count. *)
  let shard_span_id = Hashtbl.create 16 in
  List.iter
    (fun (s : Span.t) ->
       if s.Span.sp_kind = Span.Shard then
         Hashtbl.replace shard_span_id s.Span.sp_name s.Span.sp_id)
    spans;
  List.iter
    (fun (sh : Runner.shard) ->
       match Hashtbl.find_opt shard_span_id sh.Runner.sh_id with
       | None -> ()
       | Some id ->
         let under =
           List.length
             (List.filter
                (fun (s : Span.t) ->
                   s.Span.sp_kind = Span.Attempt && s.Span.sp_parent = id)
                spans)
         in
         if under <> sh.Runner.sh_attempts then
           QCheck.Test.fail_reportf
             "shard %s: %d attempt spans, report says %d attempts"
             sh.Runner.sh_id under sh.Runner.sh_attempts)
    r.Runner.r_shards

let qcheck_span_integrity =
  QCheck.Test.make ~count:8
    ~name:
      "spans: well-nested and retry-consistent under kills, timeouts and \
       resume"
    QCheck.(triple (int_bound 999) (int_bound 2) (int_bound 4))
    (fun (seed, wexp, kill_mod) ->
       let workers = 1 lsl wexp in
       let count = 12 in
       let timeout_mod = (kill_mod + 3) mod 7 in
       let tasks () = chaotic_tasks ~count ~kill_mod ~timeout_mod () in
       (* Uninterrupted run. *)
       let c = Collector.create () in
       let r =
         Runner.run ~workers ~seed ~sleep:sleep_stub ~obs:c ~name:"obs"
           (tasks ())
       in
       check_ledger (Collector.spans c);
       check_accounting r (Collector.spans c);
       (* Kill mid-run with a checkpoint, then resume: both ledgers must
          hold on their own, and the resumed one must skip the adopted
          shards. *)
       let path = tmp_path (Fmt.str "obs_%d_%d_%d.jsonl" seed wexp kill_mod) in
       let ck = Collector.create () in
       let killed =
         Runner.run ~workers ~seed ~sleep:sleep_stub ~obs:ck
           ~checkpoint:path ~stop_after:(count / 2) ~name:"obs" (tasks ())
       in
       check_ledger (Collector.spans ck);
       check_accounting killed (Collector.spans ck);
       let cp =
         match Checkpoint.load path with
         | Ok cp -> cp
         | Error m -> QCheck.Test.fail_reportf "checkpoint: %s" m
       in
       let cr = Collector.create () in
       let resumed =
         Runner.run ~workers ~seed ~sleep:sleep_stub ~obs:cr ~resume:cp
           ~name:"obs" (tasks ())
       in
       Sys.remove path;
       check_ledger (Collector.spans cr);
       check_accounting resumed (Collector.spans cr);
       resumed.Runner.r_completed = count
       && count_kind Span.Checkpoint_write (Collector.spans ck)
          = killed.Runner.r_completed - killed.Runner.r_resumed)

(* --- zero-overhead guard ------------------------------------------- *)

(* With no recorder attached anywhere, the engine's hot paths must look
   exactly as they did before the span layer existed: Engine.create
   brackets construction with 2 clock reads, each settled cycle adds
   exactly 2, and the settle loop's per-cycle allocation is unchanged
   between identical runs (nothing span-shaped is being built). *)
let test_settle_zero_overhead () =
  let net = (Figures.table1 ()).Figures.t1_net in
  let reads = ref 0 in
  let tick = Elastic_sim.Clock.ticker ~step_ns:1_000L in
  let clock () =
    incr reads;
    tick ()
  in
  let eng = Elastic_sim.Engine.create ~clock net in
  Alcotest.(check int) "create reads the clock exactly twice" 2 !reads;
  Elastic_sim.Engine.run eng 50;
  Alcotest.(check int) "two reads per settled cycle, none extra" 102 !reads;
  let alloc_of_run () =
    let e = Elastic_sim.Engine.create ~clock:tick net in
    Elastic_sim.Engine.run e 10;
    let before = Gc.minor_words () in
    Elastic_sim.Engine.run e 40;
    Gc.minor_words () -. before
  in
  let a1 = alloc_of_run () in
  let a2 = alloc_of_run () in
  Alcotest.(check (float 0.0)) "per-cycle allocation is reproducible" a1 a2

let suite =
  [ Alcotest.test_case "recorder: ring keeps newest, counts drops" `Quick
      test_recorder_ring;
    Alcotest.test_case "recorder: attrs and synthesized emit" `Quick
      test_recorder_attrs_and_emit;
    Alcotest.test_case "export: versioned JSONL ledger" `Quick
      test_export_jsonl;
    Alcotest.test_case "export: Chrome trace is monotone" `Quick
      test_export_chrome_monotone;
    Alcotest.test_case "export: collapsed stacks by kind path" `Quick
      test_export_folded;
    QCheck_alcotest.to_alcotest qcheck_span_integrity;
    Alcotest.test_case "spans off: settle loop pays nothing" `Quick
      test_settle_zero_overhead ]
