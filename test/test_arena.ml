open Elastic_netlist
open Elastic_sim
open Elastic_core
open Elastic_datapath
open Elastic_trace
open Elastic_metrics
open Helpers

(* The flat-arena evaluation backend (lib/sim/arena.ml): mode selection
   plumbing, byte-exact golden artefacts under [Arena], error parity
   with the record backends, and the settle loop's allocation guard.
   Cross-backend trace/metrics equivalence over whole designs lives in
   {!Test_engine_equiv}; these are the arena-specific contracts. *)

(* --- mode selection -------------------------------------------------- *)

let test_mode_names () =
  List.iter
    (fun m ->
       Alcotest.(check (option string))
         (Engine.mode_name m)
         (Some (Engine.mode_name m))
         (Option.map Engine.mode_name
            (Engine.mode_of_string (Engine.mode_name m))))
    [ Engine.Levelized; Engine.Reference; Engine.Arena ];
  Alcotest.(check bool) "parsing is case-insensitive" true
    (Engine.mode_of_string "ARENA" = Some Engine.Arena);
  Alcotest.(check bool) "junk is rejected" true
    (Engine.mode_of_string "fastest" = None)

let tiny_net () =
  let b = builder () in
  let s = src_stream b ~name:"src" [ 1; 2; 3 ] in
  let k = sink b ~name:"snk" () in
  let _ = conn b (s, Out 0) (k, In 0) in
  b.net

(* [ELASTIC_EVAL_MODE] picks the default backend; an explicit [~mode]
   always wins; unknown values fall back to levelized instead of
   failing every engine creation. *)
let test_env_default () =
  let with_env v f =
    let old = Sys.getenv_opt "ELASTIC_EVAL_MODE" in
    Unix.putenv "ELASTIC_EVAL_MODE" v;
    Fun.protect
      ~finally:(fun () ->
          Unix.putenv "ELASTIC_EVAL_MODE" (Option.value old ~default:""))
      f
  in
  let net = tiny_net () in
  with_env "arena" (fun () ->
      Alcotest.(check string) "env default" "arena"
        (Engine.mode_name (Engine.mode (Engine.create net)));
      Alcotest.(check string) "explicit mode wins" "reference"
        (Engine.mode_name
           (Engine.mode (Engine.create ~mode:Engine.Reference net))));
  with_env "warp-speed" (fun () ->
      Alcotest.(check string) "unknown value falls back" "levelized"
        (Engine.mode_name (Engine.mode (Engine.create net))))

(* --- error parity ---------------------------------------------------- *)

let modes = [ Engine.Levelized; Engine.Reference; Engine.Arena ]

let rendered_error f =
  match f () with
  | () -> Alcotest.fail "expected a simulation error"
  | exception Engine.Simulation_error e ->
    (e.Engine.err_code, Engine.error_to_string e)

(* E110 (cycle budget): the error is raised before the backend runs,
   but its rendering flows through the same provenance plumbing — all
   three modes must produce the identical string. *)
let test_e110_parity () =
  let net = tiny_net () in
  let errors =
    List.map
      (fun mode ->
         rendered_error (fun () ->
             let eng = Engine.create ~mode ~max_cycles:4 net in
             Engine.run eng 10))
      modes
  in
  List.iter
    (fun (code, msg) ->
       Alcotest.(check (option string)) "typed E110" (Some "E110") code;
       Alcotest.(check string) "same rendering" (snd (List.hd errors)) msg)
    errors

(* E102 (combinational cycle): the undetermined-channel sweep must name
   the same channels in the same order in every mode — the arena
   recovers them from its packed codes rather than the wire records. *)
let test_e102_parity () =
  let net =
    (List.find
       (fun (m : Elastic_lint.Mutate.t) -> m.Elastic_lint.Mutate.m_code = "E102")
       Elastic_lint.Mutate.catalogue)
      .Elastic_lint.Mutate.m_net ()
  in
  let errors =
    List.map
      (fun mode ->
         rendered_error (fun () ->
             let eng = Engine.create ~mode net in
             Engine.run eng 2))
      modes
  in
  List.iter
    (fun (code, msg) ->
       Alcotest.(check (option string)) "typed E102" (Some "E102") code;
       Alcotest.(check bool) "names an undetermined channel" true
         (Helpers.contains msg "undetermined channels:");
       Alcotest.(check string) "same rendering" (snd (List.hd errors)) msg)
    errors

(* A mux whose select stream goes out of range mid-run: the per-node
   [Invalid_argument] must surface as the same invariant error — node
   provenance included — from the packed evaluator as from the record
   backends.  (The arena recovers the node from its last-eval cursor.) *)
let test_invariant_parity () =
  let build () =
    let b = builder () in
    let sel = src_stream b ~name:"sel" [ 0; 1; 7 ] in
    let s0 = src_counter b ~name:"s0" () in
    let s1 = src_counter b ~name:"s1" () in
    let m = add b ~name:"mux" (Mux { ways = 2; early = false }) in
    let k = sink b ~name:"snk" () in
    let _ = conn b (sel, Out 0) (m, Sel) in
    let _ = conn b (s0, Out 0) (m, In 0) in
    let _ = conn b (s1, Out 0) (m, In 1) in
    let _ = conn b (m, Out 0) (k, In 0) in
    b.net
  in
  let errors =
    List.map
      (fun mode ->
         rendered_error (fun () ->
             let eng = Engine.create ~mode (build ()) in
             Engine.run eng 20))
      modes
  in
  List.iter
    (fun (_, msg) ->
       Alcotest.(check bool) "names the out-of-range select" true
         (Helpers.contains msg "select: index 7 out of range");
       Alcotest.(check string) "same rendering" (snd (List.hd errors)) msg)
    errors

(* --- observability parity -------------------------------------------- *)

(* The arena batches its eval accounting ([Profile.add_evals] once per
   settle); totals, per-node counters and the pass histogram must still
   agree with the levelized backend's one-note_eval-per-eval stream. *)
let test_profile_parity () =
  let ops = Examples.rs_ops ~error_rate_pct:10 ~seed:5 100 in
  let net = (Examples.rs_speculative ~ops).Examples.d_net in
  let profile mode =
    let eng = Engine.create ~mode net in
    Engine.run eng 150;
    Engine.profile eng
  in
  let pl = profile Engine.Levelized and pa = profile Engine.Arena in
  Alcotest.(check int) "total evals" (Profile.evals pl) (Profile.evals pa);
  Alcotest.(check int) "max passes" (Profile.max_passes pl)
    (Profile.max_passes pa);
  Alcotest.(check (list (pair int int))) "pass histogram"
    (Profile.pass_histogram pl) (Profile.pass_histogram pa);
  Alcotest.(check (list (pair int int))) "busiest nodes"
    (Profile.top_nodes pl 10) (Profile.top_nodes pa 10);
  let sum_nodes p =
    List.fold_left (fun acc (_, c) -> acc + c) 0 (Profile.top_nodes p 10_000)
  in
  Alcotest.(check int) "arena evals = sum of per-node counters"
    (Profile.evals pa) (sum_nodes pa)

(* Injected-channel reporting flows through the same override plumbing
   in every backend. *)
let test_injected_parity () =
  let ops = Examples.rs_ops ~error_rate_pct:5 ~seed:5 60 in
  let net = (Examples.rs_speculative ~ops).Examples.d_net in
  let ch = (List.hd (Netlist.channels net)).Netlist.ch_id in
  let injected mode =
    let open Elastic_fault in
    let plan =
      Fault.plan net
        [ Fault.flip_bit ~channel:ch ~cycle:5 1;
          Fault.stuck_stall ~channel:ch ~cycle:12 ~duration:4 ]
    in
    let eng = Engine.create ~mode net in
    Engine.set_injector eng (Some (Fault.injector plan));
    let log = ref [] in
    for _ = 1 to 30 do
      Engine.step eng ~choices:(fun nid ->
          Fault.choices plan ~cycle:(Engine.cycle eng) nid);
      Fault.observe plan eng;
      log := Engine.injected eng :: !log
    done;
    List.rev !log
  in
  Alcotest.(check (list (list int))) "per-cycle injected channels"
    (injected Engine.Levelized) (injected Engine.Arena)

(* Two arena runs of the same design are bit-identical end to end —
   the preallocated buffers carry no state across [create]. *)
let test_arena_determinism () =
  let mk () =
    let ops = Examples.rs_ops ~error_rate_pct:10 ~seed:5 80 in
    let eng =
      Engine.create ~mode:Engine.Arena
        (Examples.rs_speculative ~ops).Examples.d_net
    in
    Engine.run eng 120;
    Engine.state_key eng
  in
  Alcotest.(check string) "state keys agree" (mk ()) (mk ())

(* --- golden artefacts under the arena backend ------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_vcd_golden_arena () =
  let net = (Figures.table1 ()).Figures.t1_net in
  let eng = Engine.create ~mode:Engine.Arena net in
  let r = Vcd.create net in
  Engine.set_observer eng (Some (Vcd.observe r));
  Engine.run eng 8;
  Alcotest.(check string) "table1 VCD byte-exact under arena"
    (read_file "table1.vcd.expected")
    (Vcd.contents r)

(* The E5/E6 experiment designs, rendered to Prometheus text off a
   deterministic tick clock: levelized and arena snapshots must be
   byte-identical — including the settle-seconds gauges, because both
   backends read the clock exactly twice per cycle. *)
let prom_render mode net =
  let eng = Engine.create ~mode ~clock:(Clock.ticker ~step_ns:100L) net in
  let sampler = Sampler.create eng in
  Engine.set_observer eng (Some (Sampler.observe sampler));
  Engine.run eng 150;
  Prometheus.render (Sampler.sample sampler eng)

let test_prom_golden name net =
  Alcotest.(check string)
    (name ^ ": prometheus render identical under arena")
    (prom_render Engine.Levelized net)
    (prom_render Engine.Arena net)

let test_prom_golden_e5 () =
  test_prom_golden "E5 vl_speculative"
    (Examples.vl_speculative
       ~ops:(Alu.operands ~error_rate_pct:10 ~seed:7 100)).Examples.d_net

let test_prom_golden_e6 () =
  test_prom_golden "E6 rs_speculative"
    (Examples.rs_speculative
       ~ops:(Examples.rs_ops ~error_rate_pct:10 ~seed:5 100)).Examples.d_net

(* --- allocation guard ------------------------------------------------ *)

(* The arena settle loop must not allocate: on a control-only pipeline
   every word allocated per cycle comes from the engine's fixed
   bookkeeping (resolved-signal snapshots, observers), which the
   levelized backend shares.  Allocation counts are deterministic, so
   the bounds are exact machine-independent regression guards. *)
let words_per_cycle mode net =
  let eng = Engine.create ~mode net in
  Engine.run eng 200;
  let w0 = Gc.minor_words () in
  Engine.run eng 2000;
  let w1 = Gc.minor_words () in
  (w1 -. w0) /. 2000.

let test_settle_allocation_guard () =
  let b = builder () in
  let s = src_stream b ~name:"src" (List.init 64 (fun i -> i)) in
  let e1 = eb b ~name:"e1" () in
  let e2 = eb0 b ~name:"e2" () in
  let k = sink b ~name:"snk" () in
  let _ = conn b (s, Out 0) (e1, In 0) in
  let _ = conn b (e1, Out 0) (e2, In 0) in
  let _ = conn b (e2, Out 0) (k, In 0) in
  let arena = words_per_cycle Engine.Arena b.net in
  let lev = words_per_cycle Engine.Levelized b.net in
  if arena > 180.0 then
    Alcotest.failf
      "arena allocates %.1f words/cycle on a control-only pipeline \
       (budget 180): the settle loop has started allocating" arena;
  if arena > lev -. 20.0 then
    Alcotest.failf
      "arena (%.1f words/cycle) no longer allocates less than levelized \
       (%.1f): the flat settle path has regressed" arena lev

let suite =
  [ Alcotest.test_case "mode names round-trip" `Quick test_mode_names;
    Alcotest.test_case "ELASTIC_EVAL_MODE picks the default backend"
      `Quick test_env_default;
    Alcotest.test_case "E110 renders identically in all modes" `Quick
      test_e110_parity;
    Alcotest.test_case "E102 renders identically in all modes" `Quick
      test_e102_parity;
    Alcotest.test_case "invariant errors render identically in all modes"
      `Quick test_invariant_parity;
    Alcotest.test_case "profile agrees with levelized" `Quick
      test_profile_parity;
    Alcotest.test_case "injected channels agree with levelized" `Quick
      test_injected_parity;
    Alcotest.test_case "arena runs are deterministic" `Quick
      test_arena_determinism;
    Alcotest.test_case "golden VCD is byte-exact under arena" `Quick
      test_vcd_golden_arena;
    Alcotest.test_case "E5 prometheus render matches levelized" `Quick
      test_prom_golden_e5;
    Alcotest.test_case "E6 prometheus render matches levelized" `Quick
      test_prom_golden_e6;
    Alcotest.test_case "arena settle loop does not allocate" `Quick
      test_settle_allocation_guard ]
