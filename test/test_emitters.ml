open Elastic_netlist
open Elastic_core
open Helpers

(* Structural checks on the export backends: the generated text is meant
   for external tools (synthesis, NuSMV), so the tests verify shape —
   every node instantiated, every channel declared, balanced blocks,
   every protocol property present. *)

let count_sub hay needle =
  let ln = String.length needle and lh = String.length hay in
  let rec go i acc =
    if i + ln > lh then acc
    else if String.sub hay i ln = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let verilog_suite =
  [ Alcotest.test_case "prelude defines all control primitives" `Quick
      (fun () ->
         List.iter
           (fun m ->
              Alcotest.(check bool) m true
                (contains Verilog.prelude ("module " ^ m)))
           [ "eb "; "eb0 "; "join_ctrl "; "fork_ctrl "; "emux_ctrl ";
             "shared_ctrl " ]);
    Alcotest.test_case "prelude modules are balanced" `Quick (fun () ->
        Alcotest.(check int) "module/endmodule"
          (count_sub Verilog.prelude "\nmodule ")
          (count_sub Verilog.prelude "endmodule"));
    Alcotest.test_case "fig1d top instantiates every primitive" `Quick
      (fun () ->
         let h = Figures.fig1d () in
         let v = Verilog.to_string ~top:"fig1d" h.Figures.net in
         Alcotest.(check bool) "top module" true
           (contains v "module fig1d");
         Alcotest.(check bool) "eb instance" true (contains v "eb #(");
         Alcotest.(check bool) "emux instance" true
           (contains v "emux_ctrl #(");
         Alcotest.(check bool) "shared instance" true
           (contains v "shared_ctrl #(");
         Alcotest.(check bool) "fork instance" true
           (contains v "fork_ctrl #("));
    Alcotest.test_case "every channel becomes a wire bundle" `Quick
      (fun () ->
         let h = Figures.fig1a () in
         let v = Verilog.to_string ~top:"t" h.Figures.net in
         List.iter
           (fun (c : Netlist.channel) ->
              Alcotest.(check bool)
                (Fmt.str "wires for channel %d" c.Netlist.ch_id)
                true
                (contains v (Fmt.str "ch%d_vp" c.Netlist.ch_id)))
           (Netlist.channels h.Figures.net));
    Alcotest.test_case "multi-way mux binds the full select bus" `Quick
      (fun () ->
         (* golden output for the >2-way select binding: the controller
            gets a SELW-bit select and the datapath compares the whole
            bus, not bit 0. *)
         let b = builder () in
         let sel = src_stream b [ 0; 1; 2 ] in
         let m = add b ~name:"m" (Mux { ways = 3; early = true }) in
         let k = sink b () in
         let _ = conn b (sel, Out 0) (m, Sel) in
         List.iteri
           (fun j s -> ignore (conn b (s, Out 0) (m, In j)))
           [ src_stream b [ 1 ]; src_stream b [ 2 ]; src_stream b [ 3 ] ];
         let _ = conn b (m, Out 0) (k, In 0) in
         let v = Verilog.to_string ~top:"m3" b.net in
         Alcotest.(check bool) "2-bit controller select" true
           (contains v "emux_ctrl #(.N(3), .SELW(2))");
         Alcotest.(check bool) "select bus sliced to SELW bits" true
           (contains v "_d[1:0])");
         Alcotest.(check bool) "datapath compares the full select" true
           (contains v "_d[1:0] == 2'd0) ?");
         Alcotest.(check bool) "priority chain covers way 1" true
           (contains v "_d[1:0] == 2'd1) ?");
         Alcotest.(check bool) "no leftover FIXME" false (contains v "FIXME"));
    Alcotest.test_case "2-way mux keeps the single-bit select form" `Quick
      (fun () ->
         let h = Figures.fig1a () in
         let v = Verilog.to_string ~top:"t" h.Figures.net in
         Alcotest.(check bool) "bit-0 ternary" true
           (contains v "_d[0] ? "));
    Alcotest.test_case "save writes a file" `Quick (fun () ->
        let h = Figures.fig1a () in
        let path = Filename.temp_file "elastic" ".v" in
        Verilog.save path ~top:"t" h.Figures.net;
        let ic = open_in path in
        let size = in_channel_length ic in
        close_in ic;
        Sys.remove path;
        Alcotest.(check bool) "non-empty" true (size > 1000)) ]

let smv_suite =
  [ Alcotest.test_case "model has the expected sections" `Quick (fun () ->
        let h = Figures.fig1d () in
        let m = Smv.to_string h.Figures.net in
        List.iter
          (fun sec ->
             Alcotest.(check bool) sec true (contains m sec))
          [ "MODULE main"; "VAR"; "IVAR"; "DEFINE"; "ASSIGN"; "FAIRNESS";
            "LTLSPEC" ]);
    Alcotest.test_case "four property families per channel" `Quick
      (fun () ->
         let b = builder () in
         let s = src_counter b () in
         let e = eb b () in
         let k = sink b () in
         let _ = conn b (s, Out 0) (e, In 0) in
         let _ = conn b (e, Out 0) (k, In 0) in
         let m = Smv.to_string b.net in
         (* 2 channels x (retry+ + retry- + 2 invariants + liveness). *)
         Alcotest.(check int) "LTLSPEC count" 10 (count_sub m "LTLSPEC"));
    Alcotest.test_case "shared outputs skip forward persistence" `Quick
      (fun () ->
         let h = Figures.fig1d () in
         let m = Smv.to_string h.Figures.net in
         let shared =
           match
             List.find_opt
               (fun (n : Netlist.node) ->
                  match n.Netlist.kind with
                  | Netlist.Shared _ -> true
                  | _ -> false)
               (Netlist.nodes h.Figures.net)
           with
           | Some n -> n
           | None -> Alcotest.fail "no shared module"
         in
         List.iter
           (fun (c : Netlist.channel) ->
              let retry_plus =
                Fmt.str "LTLSPEC G ((vp_%d & sp_%d" c.Netlist.ch_id
                  c.Netlist.ch_id
              in
              Alcotest.(check bool)
                (Fmt.str "no retry+ for %s" c.Netlist.ch_name)
                false (contains m retry_plus))
           (Netlist.outgoing h.Figures.net shared.Netlist.id));
    Alcotest.test_case "nondeterministic scheduler gets fairness" `Quick
      (fun () ->
         let h = Figures.fig1d () in
         let m = Smv.to_string h.Figures.net in
         Alcotest.(check bool) "fairness on predictions" true
           (contains m "FAIRNESS pred_"));
    Alcotest.test_case "save writes a file" `Quick (fun () ->
        let h = Figures.table1 () in
        let path = Filename.temp_file "elastic" ".smv" in
        Smv.save path h.Figures.t1_net;
        let ic = open_in path in
        let size = in_channel_length ic in
        close_in ic;
        Sys.remove path;
        Alcotest.(check bool) "non-empty" true (size > 500)) ]

let dot_suite =
  [ Alcotest.test_case "dot output is a digraph with all edges" `Quick
      (fun () ->
         let h = Figures.fig1d () in
         let d = Dot.to_string h.Figures.net in
         Alcotest.(check bool) "digraph" true (contains d "digraph");
         Alcotest.(check int) "edge per channel"
           (Netlist.channel_count h.Figures.net)
           (count_sub d " -> ")) ]

let blif_suite =
  [ Alcotest.test_case "blif model has inputs, outputs and latches" `Quick
      (fun () ->
         let h = Figures.fig1d () in
         let b = Blif.to_string ~model:"fig1d" h.Figures.net in
         Alcotest.(check bool) "model" true (contains b ".model fig1d");
         Alcotest.(check bool) "inputs" true (contains b ".inputs");
         Alcotest.(check bool) "selval input" true (contains b "selval_");
         Alcotest.(check bool) "pred input" true (contains b "pred_");
         Alcotest.(check bool) "latches" true (count_sub b ".latch" > 4);
         Alcotest.(check bool) "gates" true (count_sub b ".names" > 20);
         Alcotest.(check bool) "terminated" true (contains b ".end"));
    Alcotest.test_case "blif exposes every channel's control bits" `Quick
      (fun () ->
         let h = Figures.fig1a () in
         let b = Blif.to_string ~model:"m" h.Figures.net in
         List.iter
           (fun (c : Netlist.channel) ->
              Alcotest.(check bool)
                (Fmt.str "vp_%d listed" c.Netlist.ch_id)
                true
                (contains b (Fmt.str "vp_%d" c.Netlist.ch_id)))
           (Netlist.channels h.Figures.net));
    Alcotest.test_case "blif EB occupancy is a 5-state one-hot" `Quick
      (fun () ->
         let b = builder () in
         let s = src_counter b () in
         let e = eb b ~name:"thebuf" ~init:[ Elastic_kernel.Value.Int 1 ] () in
         let k = sink b () in
         let _ = conn b (s, Out 0) (e, In 0) in
         let _ = conn b (e, Out 0) (k, In 0) in
         let t = Blif.to_string ~model:"m" b.net in
         Alcotest.(check int) "five latches + source retry" 6
           (count_sub t ".latch");
         (* initial token: one-hot state 3 set, others clear *)
         Alcotest.(check bool) "init state" true
           (contains t "thebuf_s3 re clk 1"));
    Alcotest.test_case "blif rejects wide multiplexors" `Quick (fun () ->
        let b = builder () in
        let sel = src_counter b () in
        let ss = List.init 3 (fun _ -> src_counter b ()) in
        let m = add b (Mux { ways = 3; early = true }) in
        let k = sink b () in
        let _ = conn b (sel, Out 0) (m, Sel) in
        List.iteri (fun i s -> ignore (conn b (s, Out 0) (m, In i))) ss;
        let _ = conn b (m, Out 0) (k, In 0) in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Blif.to_string ~model:"m" b.net);
             false
           with Invalid_argument _ -> true)) ]

let base_suite = verilog_suite @ smv_suite @ dot_suite @ blif_suite

(* Every instantiated module must be defined in the same output: the
   generated RTL is self-contained. *)
let self_contained_suite =
  [ Alcotest.test_case "generated Verilog is self-contained" `Quick
      (fun () ->
        let designs =
          [ ("fig1d", (Figures.fig1d ~sched:Elastic_sched.Scheduler.Sticky ()).Figures.net);
            ("table1", (Figures.table1 ()).Figures.t1_net);
            ("vl",
             (Examples.vl_stalling
                ~ops:(Elastic_datapath.Alu.operands ~error_rate_pct:5 ~seed:1 4))
               .Examples.d_net) ]
        in
        List.iter
          (fun (name, net) ->
             let v = Verilog.to_string ~top:name net in
             (* Collect instantiated module names: tokens followed by
                " #(" or " u_..." at line starts. *)
             let defined = ref [] in
             String.split_on_char '\n' v
             |> List.iter (fun line ->
                 let line = String.trim line in
                 if String.length line > 7 && String.sub line 0 7 = "module "
                 then
                   let rest = String.sub line 7 (String.length line - 7) in
                   let stop = ref 0 in
                   while
                     !stop < String.length rest
                     && rest.[!stop] <> ' '
                     && rest.[!stop] <> '('
                     && rest.[!stop] <> '#'
                   do
                     incr stop
                   done;
                   defined := String.sub rest 0 !stop :: !defined);
             List.iter
               (fun m ->
                  if contains v (m ^ " #(") || contains v ("  " ^ m ^ " u_")
                  then
                    Alcotest.(check bool)
                      (Fmt.str "%s: module %s defined" name m)
                      true
                      (List.mem m !defined))
               [ "eb"; "eb0"; "join_ctrl"; "fork_ctrl"; "emux_ctrl";
                 "shared_ctrl"; "varlat_ctrl"; "sched_static";
                 "sched_toggle"; "sched_sticky"; "sched_round_robin" ])
          designs);
    Alcotest.test_case "sticky scheduler is instantiated in RTL" `Quick
      (fun () ->
        let h = Figures.fig1d ~sched:Elastic_sched.Scheduler.Sticky () in
        let v = Verilog.to_string ~top:"t" h.Figures.net in
        Alcotest.(check bool) "sched_sticky instance" true
          (contains v "sched_sticky #(")) ]

let suite = base_suite @ self_contained_suite
