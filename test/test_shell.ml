open Elastic_netlist
open Elastic_core

let exec s line =
  match Shell.execute s line with
  | Ok out -> out
  | Error m -> Alcotest.failf "command %S failed: %s" line m

let expect_error s line =
  match Shell.execute s line with
  | Ok out -> Alcotest.failf "command %S unexpectedly succeeded: %s" line out
  | Error m -> m

let suite =
  [ Alcotest.test_case "help lists the commands" `Quick (fun () ->
        let s = Shell.create () in
        let out = exec s "help" in
        List.iter
          (fun cmd ->
             Alcotest.(check bool) cmd true (Helpers.contains out cmd))
          [ "load"; "speculate"; "throughput"; "verilog"; "undo" ]);
    Alcotest.test_case "commands require a loaded design" `Quick (fun () ->
        let s = Shell.create () in
        let m = expect_error s "throughput" in
        Alcotest.(check bool) "mentions load" true (Helpers.contains m "load"));
    Alcotest.test_case "load + candidates + speculate" `Quick (fun () ->
        let s = Shell.create () in
        let _ = exec s "load fig1a" in
        let c = exec s "candidates" in
        Alcotest.(check bool) "one candidate" true
          (Helpers.contains c "mux");
        let out = exec s "speculate" in
        Alcotest.(check bool) "applied" true
          (Helpers.contains out "speculation applied"));
    Alcotest.test_case "throughput report shows the sink" `Quick (fun () ->
        let s = Shell.create () in
        let _ = exec s "load fig1a" in
        let out = exec s "throughput 100" in
        Alcotest.(check bool) "sink line" true
          (Helpers.contains out "out:"));
    Alcotest.test_case "undo and redo traverse history" `Quick (fun () ->
        let s = Shell.create () in
        let shared_count () =
          List.length
            (List.filter
               (fun (n : Netlist.node) ->
                  match n.Netlist.kind with
                  | Netlist.Shared _ -> true
                  | _ -> false)
               (Netlist.nodes (Option.get (Shell.current s))))
        in
        let _ = exec s "load fig1a" in
        Alcotest.(check int) "no shared module yet" 0 (shared_count ());
        let _ = exec s "speculate" in
        Alcotest.(check int) "shared module present" 1 (shared_count ());
        let _ = exec s "undo" in
        Alcotest.(check int) "back" 0 (shared_count ());
        let _ = exec s "redo" in
        Alcotest.(check int) "forward" 1 (shared_count ()));
    Alcotest.test_case "failed transformations leave the design intact"
      `Quick (fun () ->
        let s = Shell.create () in
        let _ = exec s "load fig1a" in
        let before = Netlist.node_count (Option.get (Shell.current s)) in
        let _ = expect_error s "shannon out" in
        Alcotest.(check int) "unchanged" before
          (Netlist.node_count (Option.get (Shell.current s)));
        let _ = expect_error s "undo" in
        ());
    Alcotest.test_case "unknown designs and commands are reported" `Quick
      (fun () ->
        let s = Shell.create () in
        let m = expect_error s "load nonsense" in
        Alcotest.(check bool) "lists designs" true
          (Helpers.contains m "fig1a");
        let m = expect_error s "frobnicate" in
        Alcotest.(check bool) "suggests help" true
          (Helpers.contains m "help"));
    Alcotest.test_case "the Section 2 script reproduces the walk-through"
      `Quick (fun () ->
        let s = Shell.create () in
        match
          Shell.run_script s
            [ "# Section 2 of the paper, as a script";
              "load fig1a"; "bound"; "cycletime"; "speculate"; "bound";
              "area"; "verify" ]
        with
        | Ok outputs ->
          let all = String.concat "\n" outputs in
          Alcotest.(check bool) "verified" true
            (Helpers.contains all "VERIFIED"
             || Helpers.contains all "states")
        | Error m -> Alcotest.fail m);
    Alcotest.test_case "scripts stop at the first error" `Quick (fun () ->
        let s = Shell.create () in
        match Shell.run_script s [ "load fig1a"; "bogus"; "area" ] with
        | Ok _ -> Alcotest.fail "should have failed"
        | Error m -> Alcotest.(check bool) "names the line" true
            (Helpers.contains m "bogus"));
    Alcotest.test_case "script errors carry the 1-based line number"
      `Quick (fun () ->
        let s = Shell.create () in
        match
          Shell.run_script s [ "load fig1a"; "bogus command here"; "area" ]
        with
        | Ok _ -> Alcotest.fail "should have failed"
        | Error m ->
          Alcotest.(check bool) "line number" true
            (Helpers.contains m "line 2"));
    Alcotest.test_case "execute never raises on malformed input" `Quick
      (fun () ->
        let s = Shell.create () in
        let _ = exec s "load rs-alarmed" in
        (* Bad arities, non-numeric arguments and junk channels must all
           come back as [Error _], keeping an interactive session alive. *)
        List.iter
          (fun line -> ignore (expect_error s line))
          [ "inject"; "inject chan"; "inject chan flip";
            "inject nosuchchannel flip 5 3"; "inject chan flip five three";
            "campaign flips"; "campaign flips nosuchchannel 10 42";
            "campaign storm many seeds"; "inject src.out0->op_fork.in0 warp 3" ]);
    Alcotest.test_case "inject classifies a single-bit operand upset"
      `Quick (fun () ->
        let s = Shell.create () in
        let _ = exec s "load rs-alarmed" in
        let out = exec s "inject src.out0->op_fork.in0 flip 10 17" in
        Alcotest.(check bool) "corrected" true
          (Helpers.contains out "corrected");
        Alcotest.(check bool) "provenance" true
          (Helpers.contains out "channel src.out0->op_fork.in0"));
    Alcotest.test_case "campaign summarizes seeded fault runs" `Quick
      (fun () ->
        let s = Shell.create () in
        let _ = exec s "load rs-alarmed" in
        let out = exec s "campaign flips src.out0->op_fork.in0 6 42" in
        Alcotest.(check bool) "counts scenarios" true
          (Helpers.contains out "6 fault scenarios");
        (* Same seed, same summary: campaigns are reproducible. *)
        let again = exec s "campaign flips src.out0->op_fork.in0 6 42" in
        Alcotest.(check string) "deterministic" out again);
    Alcotest.test_case "stats and trace commands render" `Quick
      (fun () ->
        let s = Shell.create () in
        let _ = exec s "load table1" in
        let st = exec s "stats 20" in
        Alcotest.(check bool) "has channel column" true
          (Helpers.contains st "channel");
        let tr = exec s "trace 7" in
        Alcotest.(check bool) "trace shows anti-tokens" true
          (Helpers.contains tr "-");
        Alcotest.(check bool) "trace shows tokens" true
          (Helpers.contains tr "A"));
    Alcotest.test_case "exports write files from the shell" `Quick
      (fun () ->
        let s = Shell.create () in
        let _ = exec s "load fig1d" in
        let dir = Filename.temp_file "elastic" "" in
        Sys.remove dir;
        let v = dir ^ ".v" and smv = dir ^ ".smv" and dot = dir ^ ".dot" in
        let _ = exec s ("verilog " ^ v) in
        let _ = exec s ("smv " ^ smv) in
        let _ = exec s ("dot " ^ dot) in
        List.iter
          (fun f ->
             Alcotest.(check bool) f true (Sys.file_exists f);
             Sys.remove f)
          [ v; smv; dot ]);
    (* Every dispatched command must appear in the help text, and the
       dispatcher must recognize it — the surface cannot drift. *)
    Alcotest.test_case "help covers every dispatched command" `Quick
      (fun () ->
        List.iter
          (fun cmd ->
             Alcotest.(check bool) ("help mentions " ^ cmd) true
               (Helpers.contains Shell.help cmd);
             let s = Shell.create () in
             match Shell.execute s cmd with
             | Ok _ -> ()
             | Error m ->
               Alcotest.(check bool)
                 (Fmt.str "%S is dispatched (got %S)" cmd m)
                 false
                 (Helpers.contains m "unknown command"))
          Shell.commands);
    Alcotest.test_case "metrics renders a Prometheus snapshot" `Quick
      (fun () ->
        let s = Shell.create () in
        let _ = exec s "load rs-spec" in
        let out = exec s "metrics 120" in
        List.iter
          (fun needle ->
             Alcotest.(check bool) needle true (Helpers.contains out needle))
          [ "# TYPE elastic_engine_cycles_total counter";
            "elastic_engine_cycles_total 120";
            "elastic_sched_serves_total";
            "elastic_sched_replay_penalty_cycles_bucket";
            "le=\"+Inf\"" ];
        let file = Filename.temp_file "metrics" ".jsonl" in
        let _ = exec s ("metrics jsonl " ^ file ^ " 100 25") in
        let ic = open_in file in
        let lines = ref 0 in
        (try
           while true do
             ignore (input_line ic);
             incr lines
           done
         with End_of_file -> ());
        close_in ic;
        Sys.remove file;
        Alcotest.(check int) "4 windows of 25" 4 !lines);
    Alcotest.test_case "watch renders dashboard frames" `Quick (fun () ->
        let s = Shell.create () in
        let _ = exec s "load rs-spec" in
        let out = exec s "watch 100 50" in
        List.iter
          (fun needle ->
             Alcotest.(check bool) needle true (Helpers.contains out needle))
          [ "cycle 50"; "cycle 100"; "sink"; "sched"; "replay p50/p99";
            "watched 100 cycles" ]);
    Alcotest.test_case "campaign --par matches the sequential campaign"
      `Quick (fun () ->
        let s = Shell.create () in
        let _ = exec s "load rs-alarmed" in
        let seq = exec s "campaign flips src.out0->op_fork.in0 6 42" in
        let par =
          exec s "campaign flips src.out0->op_fork.in0 6 42 --par 2"
        in
        Alcotest.(check bool) "all shards completed" true
          (Helpers.contains par "6 shards — 6 completed");
        (* The sequential summary's per-class counts reappear in the
           runner's merged histogram. *)
        List.iter
          (fun cls ->
             if Helpers.contains seq (cls ^ ":") then
               Alcotest.(check bool) ("histogram has " ^ cls) true
                 (Helpers.contains par cls))
          [ "masked"; "corrected"; "detected" ];
        Alcotest.(check bool) "bad par rejected" true
          (Helpers.contains
             (expect_error s
                "campaign flips src.out0->op_fork.in0 6 42 --par 0")
             "--par");
        Alcotest.(check bool) "checkpoint needs par" true
          (Helpers.contains
             (expect_error s
                "campaign flips src.out0->op_fork.in0 6 42 --checkpoint x")
             "--par"));
    Alcotest.test_case "runner status and resume from a checkpoint" `Quick
      (fun () ->
        let s = Shell.create () in
        let _ = exec s "load rs-alarmed" in
        let file = Filename.temp_file "shell_runner" ".jsonl" in
        let cmd =
          Fmt.str "campaign flips src.out0->op_fork.in0 5 42 --par 1 \
                   --checkpoint %s"
            file
        in
        let first = exec s cmd in
        Alcotest.(check bool) "completed" true
          (Helpers.contains first "5 shards — 5 completed");
        let status = exec s (Fmt.str "runner status %s" file) in
        Alcotest.(check bool) "status counts shards" true
          (Helpers.contains status "5/5 shards checkpointed");
        let resumed = exec s (Fmt.str "runner resume %s" file) in
        Alcotest.(check bool) "everything adopted" true
          (Helpers.contains resumed "(5 resumed)");
        Sys.remove file;
        let m = expect_error s (Fmt.str "runner status %s" file) in
        Alcotest.(check bool) "missing checkpoint is an error" true
          (String.length m > 0));
    Alcotest.test_case "on-error continue keeps scripts going" `Quick
      (fun () ->
        let s = Shell.create () in
        (match
           Shell.run_script s
             [ "on-error continue"; "load fig1a"; "bogus"; "area" ]
         with
         | Ok outputs ->
           let all = String.concat "\n" outputs in
           Alcotest.(check bool) "failure reported with its line" true
             (Helpers.contains all "error: line 3");
           Alcotest.(check bool) "later lines still ran" true
             (Helpers.contains all "gate equivalents")
         | Error m -> Alcotest.failf "script aborted: %s" m);
        (* on-error abort restores the stop-at-first-error default. *)
        let s2 = Shell.create () in
        match
          Shell.run_script s2
            [ "on-error continue"; "on-error abort"; "load fig1a"; "bogus" ]
        with
        | Ok _ -> Alcotest.fail "abort mode should stop the script"
        | Error m ->
          Alcotest.(check bool) "line provenance" true
            (Helpers.contains m "line 4"));
    Alcotest.test_case "mode command selects the engine backend" `Quick
      (fun () ->
        let s = Shell.create () in
        (* Bare [mode] reports the default before any override is set. *)
        let shown = exec s "mode" in
        Alcotest.(check bool) "shows a backend name" true
          (Helpers.contains shown "levelized"
           || Helpers.contains shown "arena"
           || Helpers.contains shown "reference");
        let set = exec s "mode arena" in
        Alcotest.(check bool) "confirms arena" true
          (Helpers.contains set "arena");
        Alcotest.(check string) "sticky" "mode: arena" (exec s "mode");
        (* Simulation commands run on the selected backend. *)
        let _ = exec s "load fig1a" in
        let out = exec s "throughput 100" in
        Alcotest.(check bool) "throughput still reports the sink" true
          (Helpers.contains out "out:"));
    Alcotest.test_case "mode arena matches levelized reports" `Quick
      (fun () ->
        let report mode =
          let s = Shell.create () in
          let _ = exec s ("mode " ^ mode) in
          let _ = exec s "load rs-spec" in
          (exec s "throughput 200", exec s "stats 200")
        in
        let thr_l, stats_l = report "levelized" in
        let thr_a, stats_a = report "arena" in
        Alcotest.(check string) "throughput identical" thr_l thr_a;
        Alcotest.(check string) "stats identical" stats_l stats_a);
    Alcotest.test_case "bare mode reflects the engine env default" `Quick
      (fun () ->
        let with_env v f =
          let prev = Sys.getenv_opt "ELASTIC_EVAL_MODE" in
          Unix.putenv "ELASTIC_EVAL_MODE" v;
          Fun.protect
            ~finally:(fun () ->
              Unix.putenv "ELASTIC_EVAL_MODE"
                (Option.value ~default:"" prev))
            f
        in
        with_env "arena" (fun () ->
            let s = Shell.create () in
            Alcotest.(check string) "env default shown" "mode: arena"
              (exec s "mode");
            (* An explicit selection still beats the environment. *)
            let _ = exec s "mode levelized" in
            Alcotest.(check string) "override wins" "mode: levelized"
              (exec s "mode")));
    Alcotest.test_case "mode rejects unknown backends" `Quick (fun () ->
        let s = Shell.create () in
        let m = expect_error s "mode warp-speed" in
        Alcotest.(check bool) "names the bad mode" true
          (Helpers.contains m "warp-speed");
        Alcotest.(check bool) "lists the choices" true
          (Helpers.contains m "arena");
        (* A failed [mode] leaves the previous selection in place. *)
        let _ = exec s "mode reference" in
        let _ = expect_error s "mode bogus" in
        Alcotest.(check string) "selection survives" "mode: reference"
          (exec s "mode")) ]
