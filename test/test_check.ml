open Elastic_kernel
open Elastic_sched
open Elastic_netlist
open Elastic_check
open Helpers

(* Controller zoo: small closed systems with fully nondeterministic
   environments, explored exhaustively (the paper's NuSMV step). *)

let nsrc b ?name vs = add b ?name (Source (Nondet vs))

let nsink b ?name () = add b ?name (Sink (Random_stall { pct = 50; seed = 1 }))

let explore_clean ?config name net =
  let o = Explore.explore ?config net in
  if not (Explore.clean o) then
    Alcotest.failf "%s: %a@.%a" name Explore.pp_outcome o
      Fmt.(list ~sep:(any "@.") string)
      (o.Explore.protocol_violations
       @ o.Explore.deadlock_states @ o.Explore.starving_channels);
  o

let pipeline_of mk_buffer =
  let b = builder () in
  let s = nsrc b [ Value.Int 0; Value.Int 1 ] in
  let e = mk_buffer b in
  let k = nsink b () in
  let _ = conn b (s, Out 0) (e, In 0) in
  let _ = conn b (e, Out 0) (k, In 0) in
  b.net

let suite =
  [ Alcotest.test_case "EB(Lf=1,Lb=1,C=2) is protocol clean and live"
      `Quick (fun () ->
        let o = explore_clean "eb" (pipeline_of (fun b -> eb b ())) in
        Alcotest.(check bool) "nontrivial state space" true
          (o.Explore.explored > 4));
    Alcotest.test_case "EB0(Lf=1,Lb=0,C=1) is protocol clean and live"
      `Quick (fun () ->
        ignore (explore_clean "eb0" (pipeline_of (fun b -> eb0 b ()))));
    Alcotest.test_case "EB chain with initial token verified" `Quick
      (fun () ->
         let b = builder () in
         let s = nsrc b [ Value.Int 7 ] in
         let e1 = eb b ~init:[ Value.Int 3 ] () in
         let e2 = eb0 b () in
         let e3 = eb b () in
         let k = nsink b () in
         let _ = conn b (s, Out 0) (e1, In 0) in
         let _ = conn b (e1, Out 0) (e2, In 0) in
         let _ = conn b (e2, Out 0) (e3, In 0) in
         let _ = conn b (e3, Out 0) (k, In 0) in
         ignore (explore_clean "chain" b.net));
    Alcotest.test_case "fork/join diamond verified" `Quick (fun () ->
        let b = builder () in
        let s = nsrc b [ Value.Int 1; Value.Int 2 ] in
        let f = add b (Fork 2) in
        let e1 = eb b () in
        let e2 = eb b () in
        let j = add b (Func (Func.add_int ~arity:2 ())) in
        let k = nsink b () in
        let _ = conn b (s, Out 0) (f, In 0) in
        let _ = conn b (f, Out 0) (e1, In 0) in
        let _ = conn b (f, Out 1) (e2, In 0) in
        let _ = conn b (e1, Out 0) (j, In 0) in
        let _ = conn b (e2, Out 0) (j, In 1) in
        let _ = conn b (j, Out 0) (k, In 0) in
        ignore (explore_clean "diamond" b.net));
    Alcotest.test_case "early mux with anti-token counterflow verified"
      `Quick (fun () ->
        let b = builder () in
        let sel = nsrc b ~name:"sel" [ Value.Int 0; Value.Int 1 ] in
        let s0 = nsrc b ~name:"d0" [ Value.Int 10 ] in
        let s1 = nsrc b ~name:"d1" [ Value.Int 20 ] in
        let e0 = eb b () in
        let m = add b (Mux { ways = 2; early = true }) in
        let k = nsink b () in
        let _ = conn b (sel, Out 0) (m, Sel) in
        let _ = conn b (s0, Out 0) (e0, In 0) in
        let _ = conn b (e0, Out 0) (m, In 0) in
        let _ = conn b (s1, Out 0) (m, In 1) in
        let _ = conn b (m, Out 0) (k, In 0) in
        let o = explore_clean "early-mux" b.net in
        Alcotest.(check bool) "explores both selections" true
          (o.Explore.explored > 8));
    Alcotest.test_case "zero-token join cycle is reported as deadlock"
      `Quick (fun () ->
        let b = builder () in
        let sa = nsrc b [ Value.Int 1 ] in
        let sb = nsrc b [ Value.Int 2 ] in
        let j1 = add b (Func (Func.add_int ~arity:2 ())) in
        let j2 = add b (Func (Func.add_int ~arity:2 ())) in
        let e12 = eb b () in
        let e21 = eb b () in
        let _ = conn b (sa, Out 0) (j1, In 0) in
        let _ = conn b (e21, Out 0) (j1, In 1) in
        let _ = conn b (j1, Out 0) (e12, In 0) in
        let _ = conn b (sb, Out 0) (j2, In 0) in
        let _ = conn b (e12, Out 0) (j2, In 1) in
        let _ = conn b (j2, Out 0) (e21, In 0) in
        let o = Explore.explore b.net in
        Alcotest.(check bool) "deadlock found" true
          (o.Explore.deadlock_states <> []
           || o.Explore.starving_channels <> []);
        if o.Explore.deadlock_states <> [] then
          Alcotest.(check bool) "counterexample rendered" true
            (o.Explore.counterexample <> []));
    Alcotest.test_case "hinted replay stage verified exhaustively" `Quick
      (fun () ->
        (* Miniature of the Sec. 5 replay template: the hint stream
           drives a hinted shared module; fast path channel 0, slow path
           channel 1 through an EB; select comes from the hint via an EB.
           Data cycles 0/1 so the state stays finite; err(v) = v. *)
        let b = builder () in
        let s = nsrc b [ Value.Int 0; Value.Int 1 ] in
        let fork = add b (Fork 3) in
        let idf = Func.identity ~delay:1.0 ~area:1.0 () in
        let ffast = add b ~name:"fast" (Func idf) in
        let fslow = add b ~name:"slow" (Func idf) in
        let ferr = add b ~name:"errf" (Func idf) in
        let err_fork = add b (Fork 2) in
        let ebx = eb b ~name:"EBx" () in
        let ebe = eb b ~name:"EBe" () in
        let sh =
          add b
            (Shared
               { ways = 2; f = idf; sched = Scheduler.Hinted_replay;
                 hinted = true })
        in
        let eb0r = eb0 b ~name:"EB0r" () in
        let eb1r = eb0 b ~name:"EB1r" () in
        let m = add b (Mux { ways = 2; early = true }) in
        let k = nsink b () in
        let _ = conn b (s, Out 0) (fork, In 0) in
        let _ = conn b (fork, Out 0) (ffast, In 0) in
        let _ = conn b (fork, Out 1) (fslow, In 0) in
        let _ = conn b (fork, Out 2) (ferr, In 0) in
        let _ = conn b (ffast, Out 0) (sh, In 0) in
        let _ = conn b (fslow, Out 0) (ebx, In 0) in
        let _ = conn b (ebx, Out 0) (sh, In 1) in
        let _ = conn b (ferr, Out 0) (err_fork, In 0) in
        let _ = conn b (err_fork, Out 0) (ebe, In 0) in
        let _ = conn b (ebe, Out 0) (m, Sel) in
        let _ = conn b (err_fork, Out 1) (sh, Sel) in
        let _ = conn b (sh, Out 0) (eb0r, In 0) in
        let _ = conn b (eb0r, Out 0) (m, In 0) in
        let _ = conn b (sh, Out 1) (eb1r, In 0) in
        let _ = conn b (eb1r, Out 0) (m, In 1) in
        let _ = conn b (m, Out 0) (k, In 0) in
        ignore (explore_clean "hinted-replay" b.net));
    Alcotest.test_case
      "speculation loop: progress always reachable for some scheduler"
      `Quick (fun () ->
        (* External scheduler = universal quantification over prediction
           sequences; cleanliness shows no reachable state is stuck for
           every scheduler, i.e. a leads-to-compliant scheduler can always
           proceed (the paper's refinement argument). *)
        let b = builder () in
        let s0 = nsrc b ~name:"in0" [ Value.Int 0 ] in
        let s1 = nsrc b ~name:"in1" [ Value.Int 1 ] in
        let f = Func.make ~name:"F" ~arity:1 ~delay:1.0 ~area:1.0
            (function [ v ] -> v | _ -> assert false)
        in
        let sh =
          add b (Shared { ways = 2; f; sched = Scheduler.External;
                          hinted = false })
        in
        let m = add b (Mux { ways = 2; early = true }) in
        let e = eb b ~init:[ Value.Int 0 ] () in
        let fk = add b (Fork 2) in
        let g = add b
            (Func
               (Func.make ~name:"G" ~arity:1 ~delay:1.0 ~area:1.0 (function
                  | [ v ] -> Value.Int (1 - Value.to_int v)
                  | _ -> assert false)))
        in
        let k = nsink b () in
        let _ = conn b (s0, Out 0) (sh, In 0) in
        let _ = conn b (s1, Out 0) (sh, In 1) in
        let _ = conn b (sh, Out 0) (m, In 0) in
        let _ = conn b (sh, Out 1) (m, In 1) in
        let _ = conn b (m, Out 0) (e, In 0) in
        let _ = conn b (e, Out 0) (fk, In 0) in
        let _ = conn b (fk, Out 0) (g, In 0) in
        let _ = conn b (g, Out 0) (m, Sel) in
        let _ = conn b (fk, Out 1) (k, In 0) in
        ignore (explore_clean "speculation-loop" b.net));
    Alcotest.test_case
      "same loop with a static scheduler starves (leads-to violated)"
      `Quick (fun () ->
        let b = builder () in
        let s0 = nsrc b ~name:"in0" [ Value.Int 0 ] in
        let s1 = nsrc b ~name:"in1" [ Value.Int 1 ] in
        let f = Func.make ~name:"F" ~arity:1 ~delay:1.0 ~area:1.0
            (function [ v ] -> v | _ -> assert false)
        in
        let sh =
          add b (Shared { ways = 2; f; sched = Scheduler.Static 0;
                          hinted = false })
        in
        let m = add b (Mux { ways = 2; early = true }) in
        let e = eb b ~init:[ Value.Int 0 ] () in
        let fk = add b (Fork 2) in
        let g = add b
            (Func
               (Func.make ~name:"G" ~arity:1 ~delay:1.0 ~area:1.0 (function
                  | [ v ] -> Value.Int (1 - Value.to_int v)
                  | _ -> assert false)))
        in
        let k = nsink b () in
        let _ = conn b (s0, Out 0) (sh, In 0) in
        let _ = conn b (s1, Out 0) (sh, In 1) in
        let _ = conn b (sh, Out 0) (m, In 0) in
        let _ = conn b (sh, Out 1) (m, In 1) in
        let _ = conn b (m, Out 0) (e, In 0) in
        let _ = conn b (e, Out 0) (fk, In 0) in
        let _ = conn b (fk, Out 0) (g, In 0) in
        let _ = conn b (g, Out 0) (m, Sel) in
        let _ = conn b (fk, Out 1) (k, In 0) in
        let o = Explore.explore b.net in
        Alcotest.(check bool) "starving channel found" true
          (o.Explore.starving_channels <> []));
    Alcotest.test_case "sticky scheduler loop verified clean" `Quick
      (fun () ->
        let b = builder () in
        let s0 = nsrc b ~name:"in0" [ Value.Int 0 ] in
        let s1 = nsrc b ~name:"in1" [ Value.Int 1 ] in
        let f = Func.make ~name:"F" ~arity:1 ~delay:1.0 ~area:1.0
            (function [ v ] -> v | _ -> assert false)
        in
        let sh =
          add b (Shared { ways = 2; f; sched = Scheduler.Sticky;
                          hinted = false })
        in
        let m = add b (Mux { ways = 2; early = true }) in
        let e = eb b ~init:[ Value.Int 0 ] () in
        let fk = add b (Fork 2) in
        let g = add b
            (Func
               (Func.make ~name:"G" ~arity:1 ~delay:1.0 ~area:1.0 (function
                  | [ v ] -> Value.Int (1 - Value.to_int v)
                  | _ -> assert false)))
        in
        let k = nsink b () in
        let _ = conn b (s0, Out 0) (sh, In 0) in
        let _ = conn b (s1, Out 0) (sh, In 1) in
        let _ = conn b (sh, Out 0) (m, In 0) in
        let _ = conn b (sh, Out 1) (m, In 1) in
        let _ = conn b (m, Out 0) (e, In 0) in
        let _ = conn b (e, Out 0) (fk, In 0) in
        let _ = conn b (fk, Out 0) (g, In 0) in
        let _ = conn b (g, Out 0) (m, Sel) in
        let _ = conn b (fk, Out 1) (k, In 0) in
        ignore (explore_clean "sticky-loop" b.net));
    Alcotest.test_case "state cap marks the outcome incomplete" `Quick
      (fun () ->
        let net = pipeline_of (fun b -> eb b ()) in
        let config =
          { Explore.default_config with Explore.max_states = 3 }
        in
        let o = Explore.explore ~config net in
        Alcotest.(check bool) "incomplete" false o.Explore.complete;
        (* Incomplete exploration draws no liveness conclusions. *)
        Alcotest.(check (list string)) "no deadlock claims" []
          o.Explore.deadlock_states);
    Alcotest.test_case "choice explosion is rejected with a clear error"
      `Quick (fun () ->
        let b = builder () in
        let rec add_pipes n =
          if n > 0 then begin
            let s = nsrc b [ Value.Int n ] in
            let k = nsink b () in
            let _ = conn b (s, Out 0) (k, In 0) in
            add_pipes (n - 1)
          end
        in
        add_pipes 4;
        (* 4 sources x 4 sinks = 2^8 combinations > 64. *)
        Alcotest.(check bool) "raises" true
          (try
             ignore (Explore.explore b.net);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case
      "exploration is deterministic and evaluation-mode independent"
      `Quick (fun () ->
        let mk () =
          let b = builder () in
          let sel = nsrc b ~name:"sel" [ Value.Int 0; Value.Int 1 ] in
          let s0 = nsrc b ~name:"d0" [ Value.Int 10 ] in
          let s1 = nsrc b ~name:"d1" [ Value.Int 20 ] in
          let e0 = eb b () in
          let m = add b (Mux { ways = 2; early = true }) in
          let k = nsink b () in
          let _ = conn b (sel, Out 0) (m, Sel) in
          let _ = conn b (s0, Out 0) (e0, In 0) in
          let _ = conn b (e0, Out 0) (m, In 0) in
          let _ = conn b (s1, Out 0) (m, In 1) in
          let _ = conn b (m, Out 0) (k, In 0) in
          b.net
        in
        let fingerprint (o : Explore.outcome) =
          (o.Explore.explored, o.Explore.transitions, o.Explore.complete,
           o.Explore.protocol_violations, o.Explore.deadlock_states,
           o.Explore.starving_channels)
        in
        let a = fingerprint (Explore.explore (mk ())) in
        let b' = fingerprint (Explore.explore (mk ())) in
        if a <> b' then Alcotest.fail "two runs differ";
        let r =
          fingerprint
            (Explore.explore ~mode:Elastic_sim.Engine.Reference (mk ()))
        in
        if a <> r then
          Alcotest.fail "levelized and reference exploration differ") ]
