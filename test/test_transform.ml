open Elastic_kernel
open Elastic_sched
open Elastic_netlist
open Elastic_core
open Helpers

(* Fixture: src -> F(+1) -> EB(100) -> G(x2) -> sink, with handles. *)
let fixture () =
  let b = builder () in
  let s = src_stream b [ 1; 2; 3; 4; 5; 6 ] in
  let f = add b ~name:"inc" (Func (Func.inc ~step:1 ())) in
  let e = eb b ~name:"mid" ~init:[ Value.Int 100 ] () in
  let g =
    add b ~name:"dbl"
      (Func
         (Func.make ~name:"dbl" ~arity:1 ~delay:1.0 ~area:1.0 (function
            | [ v ] -> Value.Int (2 * Value.to_int v)
            | _ -> assert false)))
  in
  let k = sink b () in
  let c1 = conn b (s, Out 0) (f, In 0) in
  let c2 = conn b (f, Out 0) (e, In 0) in
  let c3 = conn b (e, Out 0) (g, In 0) in
  let c4 = conn b (g, Out 0) (k, In 0) in
  (b.net, s, f, e, g, k, (c1, c2, c3, c4))

let expect_sink net k expected =
  let eng = run_net ~cycles:40 net in
  check_no_violations eng;
  Alcotest.(check (list value)) "stream" (ints expected) (sink_values eng k)

let baseline = [ 200; 4; 6; 8; 10; 12; 14 ]

let base_suite =
  [ Alcotest.test_case "fixture baseline" `Quick (fun () ->
        let net, _, _, _, _, k, _ = fixture () in
        expect_sink net k baseline);
    Alcotest.test_case "insert_buffer preserves the stream" `Quick
      (fun () ->
         let net, _, _, _, _, k, (c1, _, _, c4) = fixture () in
         let net, _ =
           Transform.insert_buffer net ~channel:c1 ~buffer:Eb0 ~init:[]
         in
         let net, _ = Transform.insert_bubble net ~channel:c4 in
         Netlist.validate_exn net;
         expect_sink net k baseline);
    Alcotest.test_case "insert_fifo chains buffers, stream preserved"
      `Quick (fun () ->
        let net, _, _, _, _, k, (_, c2, _, _) = fixture () in
        let net, bufs = Transform.insert_fifo net ~channel:c2 ~depth:4 in
        Alcotest.(check int) "four buffers" 4 (List.length bufs);
        Netlist.validate_exn net;
        expect_sink net k baseline;
        Alcotest.(check bool) "depth 0 rejected" true
          (try
             ignore (Transform.insert_fifo net ~channel:c2 ~depth:0);
             false
           with Invalid_argument _ | Diagnostic.Reject _ -> true));
    Alcotest.test_case "insert then remove buffer is the identity" `Quick
      (fun () ->
         let net, _, _, _, _, k, (_, c2, _, _) = fixture () in
         let net, b = Transform.insert_bubble net ~channel:c2 in
         let net = Transform.remove_buffer net b in
         Netlist.validate_exn net;
         expect_sink net k baseline);
    Alcotest.test_case "remove_buffer refuses a full buffer" `Quick
      (fun () ->
         let net, _, _, e, _, _, _ = fixture () in
         Alcotest.(check bool) "raises" true
           (try
              ignore (Transform.remove_buffer net e);
              false
            with Invalid_argument _ | Diagnostic.Reject _ -> true));
    Alcotest.test_case "convert_buffer keeps tokens, changes kind" `Quick
      (fun () ->
         let net, _, _, e, _, k, _ = fixture () in
         let net = Transform.convert_buffer net e Eb0 in
         (match (Netlist.node net e).Netlist.kind with
          | Buffer { buffer = Eb0; init = [ Value.Int 100 ] } -> ()
          | _ -> Alcotest.fail "kind not converted");
         expect_sink net k baseline);
    Alcotest.test_case "convert_buffer checks capacity" `Quick (fun () ->
        let b = builder () in
        let s = src_counter b () in
        let e = eb b ~init:[ Value.Int 1; Value.Int 2 ] () in
        let k = sink b () in
        let _ = conn b (s, Out 0) (e, In 0) in
        let _ = conn b (e, Out 0) (k, In 0) in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Transform.convert_buffer b.net e Eb0);
             false
           with Invalid_argument _ | Diagnostic.Reject _ -> true));
    Alcotest.test_case "retime_forward recomputes the moved token" `Quick
      (fun () ->
         (* Move the EB(100) token across G: the new output buffer must
            hold G(100) = 200 and the behavior is unchanged. *)
         let net, _, _, e, g, k, _ = fixture () in
         let net, nb = Transform.retime_forward net ~through:g in
         (match (Netlist.node net nb).Netlist.kind with
          | Buffer { init = [ Value.Int 200 ]; _ } -> ()
          | _ -> Alcotest.fail "moved token not recomputed");
         (match (Netlist.node net e).Netlist.kind with
          | Buffer { init = []; _ } -> ()
          | _ -> Alcotest.fail "source buffer not emptied");
         expect_sink net k baseline);
    Alcotest.test_case "retime_forward needs tokens on every input" `Quick
      (fun () ->
         let net, _, f, _, _, _, _ = fixture () in
         (* f's input comes straight from the source, not a buffer. *)
         Alcotest.(check bool) "raises" true
           (try
              ignore (Transform.retime_forward net ~through:f);
              false
            with Invalid_argument _ | Diagnostic.Reject _ -> true));
    Alcotest.test_case "retime_backward moves an empty buffer" `Quick
      (fun () ->
         let net, _, _, _, g, k, _ = fixture () in
         let net, ob = Transform.insert_bubble net
             ~channel:(match Netlist.channel_at net g (Out 0) with
                       | Some c -> c.Netlist.ch_id
                       | None -> assert false)
         in
         ignore ob;
         let net, new_bufs = Transform.retime_backward net ~through:g in
         Alcotest.(check int) "one per input" 1 (List.length new_bufs);
         Netlist.validate_exn net;
         expect_sink net k baseline);
    Alcotest.test_case "shannon rewires the structure" `Quick (fun () ->
        let h = Figures.fig1a () in
        let net, copies = Transform.shannon h.Figures.net ~mux:h.Figures.mux in
        Alcotest.(check int) "two copies" 2 (List.length copies);
        (* The mux output now feeds the EB directly. *)
        (match Netlist.channel_at net h.Figures.mux (Out 0) with
         | Some c ->
           Alcotest.(check int) "mux -> EB" h.Figures.eb
             c.Netlist.dst.Netlist.ep_node
         | None -> Alcotest.fail "mux output unconnected");
        (* Each copy feeds a mux data input. *)
        List.iter
          (fun fi ->
             match Netlist.channel_at net fi (Out 0) with
             | Some c ->
               Alcotest.(check int) "copy -> mux" h.Figures.mux
                 c.Netlist.dst.Netlist.ep_node
             | None -> Alcotest.fail "copy unconnected")
          copies;
        Netlist.validate_exn net);
    Alcotest.test_case "shannon requires a unary block" `Quick (fun () ->
        let b = builder () in
        let sel = src_stream b [ 0; 1 ] in
        let s0 = src_counter b () in
        let s1 = src_counter b () in
        let s2 = src_counter b () in
        let m = add b (Mux { ways = 2; early = false }) in
        let f2 = add b (Func (Func.add_int ~arity:2 ())) in
        let k = sink b () in
        let _ = conn b (sel, Out 0) (m, Sel) in
        let _ = conn b (s0, Out 0) (m, In 0) in
        let _ = conn b (s1, Out 0) (m, In 1) in
        let _ = conn b (m, Out 0) (f2, In 0) in
        let _ = conn b (s2, Out 0) (f2, In 1) in
        let _ = conn b (f2, Out 0) (k, In 0) in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Transform.shannon b.net ~mux:m);
             false
           with Invalid_argument _ | Diagnostic.Reject _ -> true));
    Alcotest.test_case "share rejects mismatched blocks" `Quick (fun () ->
        let b = builder () in
        let s0 = src_counter b () in
        let s1 = src_counter b () in
        let f0 = add b (Func (Func.inc ~step:1 ())) in
        let f1 = add b (Func (Func.inc ~step:2 ())) in
        let k0 = sink b ~name:"k0" () in
        let k1 = sink b ~name:"k1" () in
        let _ = conn b (s0, Out 0) (f0, In 0) in
        let _ = conn b (s1, Out 0) (f1, In 0) in
        let _ = conn b (f0, Out 0) (k0, In 0) in
        let _ = conn b (f1, Out 0) (k1, In 0) in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Transform.share b.net ~blocks:[ f0; f1 ]
                  ~sched:Scheduler.Sticky);
             false
           with Invalid_argument _ | Diagnostic.Reject _ -> true));
    Alcotest.test_case "share requires at least two blocks" `Quick
      (fun () ->
         let net, _, f, _, _, _, _ = fixture () in
         Alcotest.(check bool) "raises" true
           (try
              ignore
                (Transform.share net ~blocks:[ f ] ~sched:Scheduler.Sticky);
              false
            with Invalid_argument _ | Diagnostic.Reject _ -> true));
    Alcotest.test_case
      "full speculation recipe = shannon; early; share (structure)" `Quick
      (fun () ->
        let h = Figures.fig1a () in
        let r =
          Speculation.speculate h.Figures.net ~mux:h.Figures.mux
            ~sched:Scheduler.Sticky
        in
        (match (Netlist.node r.Speculation.net r.Speculation.mux).Netlist.kind
         with
         | Mux { early = true; ways = 2 } -> ()
         | _ -> Alcotest.fail "mux not early");
        (match
           (Netlist.node r.Speculation.net r.Speculation.shared).Netlist.kind
         with
         | Shared { ways = 2; sched = Scheduler.Sticky; _ } -> ()
         | _ -> Alcotest.fail "shared module wrong");
        Netlist.validate_exn r.Speculation.net);
    Alcotest.test_case "speculate_auto equals speculate on the only
candidate" `Quick (fun () ->
        let h = Figures.fig1a () in
        let r = Speculation.speculate_auto h.Figures.net
            ~sched:Scheduler.Sticky in
        Alcotest.(check int) "same mux" h.Figures.mux r.Speculation.mux);
    Alcotest.test_case "speculate_auto raises without candidates" `Quick
      (fun () ->
        let net, _, _, _, _, _, _ = fixture () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Speculation.speculate_auto net ~sched:Scheduler.Sticky);
             false
           with Invalid_argument _ | Diagnostic.Reject _ -> true)) ]

(* Two independent decision loops in one design: the recipe composes. *)
let double_speculation =
  [ Alcotest.test_case "speculation applies to two muxes independently"
      `Quick (fun () ->
        let mk_loop b tag sel_flip =
          let src0 =
            add b ~name:(tag ^ "_in0")
              (Source (Counter { start = 0; step = 2 }))
          in
          let src1 =
            add b ~name:(tag ^ "_in1")
              (Source (Counter { start = 1; step = 2 }))
          in
          let m = add b ~name:(tag ^ "_mux") (Mux { ways = 2; early = false }) in
          let f =
            add b ~name:(tag ^ "_F")
              (Func
                 (Func.make ~name:(tag ^ "F") ~arity:1 ~delay:5.0 ~area:10.0
                    (function [ v ] -> v | _ -> assert false)))
          in
          let e =
            eb b ~name:(tag ^ "_eb") ~init:[ Value.Int (-2) ] ()
          in
          let fk = add b ~name:(tag ^ "_fork") (Fork 2) in
          let g =
            add b ~name:(tag ^ "_G")
              (Func
                 (Func.make ~name:(tag ^ "G") ~arity:1 ~delay:4.0 ~area:10.0
                    (function
                      | [ v ] ->
                        let i = (Value.to_int v asr 1) + 1 in
                        Value.Int ((i + sel_flip) mod 2)
                      | _ -> assert false)))
          in
          let k = sink b ~name:(tag ^ "_out") () in
          let _ = conn b (src0, Out 0) (m, In 0) in
          let _ = conn b (src1, Out 0) (m, In 1) in
          let _ = conn b (m, Out 0) (f, In 0) in
          let _ = conn b (f, Out 0) (e, In 0) in
          let _ = conn b (e, Out 0) (fk, In 0) in
          let _ = conn b (fk, Out 0) (g, In 0) in
          let _ = conn b (g, Out 0) (m, Sel) in
          let _ = conn b (fk, Out 1) (k, In 0) in
          m
        in
        let b = builder () in
        let m1 = mk_loop b "a" 0 in
        let m2 = mk_loop b "b" 1 in
        let reference = b.net in
        (match Speculation.candidates reference with
         | [ _; _ ] -> ()
         | l -> Alcotest.failf "expected 2 candidates, got %d" (List.length l));
        let r1 =
          Speculation.speculate reference ~mux:m1 ~sched:Scheduler.Sticky
        in
        let r2 =
          Speculation.speculate r1.Speculation.net ~mux:m2
            ~sched:Scheduler.Toggle
        in
        Netlist.validate_exn r2.Speculation.net;
        match Equiv.check ~cycles:200 reference r2.Speculation.net with
        | Ok _ -> ()
        | Error m -> Alcotest.fail m) ]

(* Sharing of k blocks: the paper's footnote 1 says the 2-way story
   generalizes; exercise the full recipe at 3 ways. *)
let three_way_speculation =
  [ Alcotest.test_case "the recipe works on a 3-way multiplexor" `Quick
      (fun () ->
        let b = builder () in
        let srcs =
          List.init 3 (fun i ->
              add b ~name:(Fmt.str "in%d" i)
                (Source (Counter { start = i; step = 3 })))
        in
        let m = add b ~name:"m3" (Mux { ways = 3; early = false }) in
        let f =
          add b ~name:"F3"
            (Func
               (Func.make ~name:"F3" ~arity:1 ~delay:5.0 ~area:30.0
                  (function [ v ] -> v | _ -> assert false)))
        in
        let e = eb b ~init:[ Value.Int (-3) ] () in
        let fk = add b (Fork 2) in
        let g =
          add b ~name:"G3"
            (Func
               (Func.make ~name:"G3" ~arity:1 ~delay:4.0 ~area:30.0
                  (function
                    | [ v ] -> Value.Int (((Value.to_int v / 3) + 1) mod 3)
                    | _ -> assert false)))
        in
        let k = sink b () in
        List.iteri (fun i s -> ignore (conn b (s, Out 0) (m, In i))) srcs;
        let _ = conn b (m, Out 0) (f, In 0) in
        let _ = conn b (f, Out 0) (e, In 0) in
        let _ = conn b (e, Out 0) (fk, In 0) in
        let _ = conn b (fk, Out 0) (g, In 0) in
        let _ = conn b (g, Out 0) (m, Sel) in
        let _ = conn b (fk, Out 1) (k, In 0) in
        let reference = b.net in
        let r =
          Speculation.speculate reference ~mux:m ~sched:Scheduler.Round_robin
        in
        (match (Netlist.node r.Speculation.net r.Speculation.shared).Netlist.kind
         with
         | Shared { ways = 3; _ } -> ()
         | _ -> Alcotest.fail "expected a 3-way shared module");
        (match Equiv.check ~cycles:200 reference r.Speculation.net with
         | Ok _ -> ()
         | Error msg -> Alcotest.fail msg);
        (* Round-robin happens to match the cyclic select: full rate. *)
        let eng = run_net ~cycles:200 r.Speculation.net in
        check_no_violations eng;
        Alcotest.(check bool) "decent throughput" true
          (Elastic_sim.Engine.throughput eng k > 0.5)) ]

let suite = base_suite @ double_speculation @ three_way_speculation
