open Elastic_kernel
open Elastic_sched
open Elastic_netlist
open Elastic_datapath
open Elastic_core
open Elastic_check
open Helpers

(* The static flow-equivalence prover: certificate verification
   (Flow.verify), direct structural mode (Flow.equiv_static), the
   E4xx refutations, and the guarantee that a rejected transformation
   (E301-E308) leaves both the netlist and the certificate chain
   exactly as they were. *)

let code_of (d : Diagnostic.t) = d.Diagnostic.code

let check_proved name source derived cert =
  match Flow.verify ~design:name ~source ~derived cert with
  | Ok p ->
    Alcotest.(check int)
      (name ^ ": proof covers every step")
      (Cert.length cert) p.Flow.p_steps;
    p
  | Error d -> Alcotest.fail (name ^ ": refuted: " ^ Diagnostic.to_string d)

let check_refuted name ~code source derived cert =
  match Flow.verify ~design:name ~source ~derived cert with
  | Ok _ -> Alcotest.fail (name ^ ": expected " ^ code ^ ", got a proof")
  | Error d -> Alcotest.(check string) (name ^ ": code") code (code_of d)

(* Fixture: src -> inc -> EB(100) -> dbl -> sink, plus a detached
   src -> EB(1,2) -> sink lane whose buffer overflows an Eb0. *)
let fixture () =
  let b = builder () in
  let s = src_stream b [ 1; 2; 3; 4; 5; 6 ] in
  let f = add b ~name:"inc" (Func (Func.inc ~step:1 ())) in
  let e = eb b ~name:"mid" ~init:[ Value.Int 100 ] () in
  let g =
    add b ~name:"dbl"
      (Func
         (Func.make ~name:"dbl" ~arity:1 ~delay:1.0 ~area:1.0 (function
            | [ v ] -> Value.Int (2 * Value.to_int v)
            | _ -> assert false)))
  in
  let k = sink b () in
  let c1 = conn b (s, Out 0) (f, In 0) in
  let _ = conn b (f, Out 0) (e, In 0) in
  let _ = conn b (e, Out 0) (g, In 0) in
  let c4 = conn b (g, Out 0) (k, In 0) in
  let s2 = src_counter b () in
  let fat = eb b ~name:"fat" ~init:[ Value.Int 1; Value.Int 2 ] () in
  let k2 = sink b () in
  let _ = conn b (s2, Out 0) (fat, In 0) in
  let _ = conn b (fat, Out 0) (k2, In 0) in
  (b.net, f, e, g, fat, (c1, c4))

(* ------------------------------------------------------------------ *)
(* Bundled derivations. *)

let bundled_suite =
  [ Alcotest.test_case "every bundled chain verifies statically" `Quick
      (fun () ->
         List.iter
           (fun (c : Derivations.chain) ->
              match Derivations.verify c with
              | Ok p ->
                Alcotest.(check int)
                  (c.Derivations.c_name ^ ": steps")
                  (Cert.length c.Derivations.c_cert)
                  p.Flow.p_steps
              | Error d ->
                Alcotest.fail
                  (c.Derivations.c_name ^ ": " ^ Diagnostic.to_string d))
           (Derivations.all ~ops:6 ())) ]

(* ------------------------------------------------------------------ *)
(* E301-E308: a rejected application records nothing and the already
   certified prefix still proves. *)

let reject_case name ~code op =
  Alcotest.test_case
    (Fmt.str "%s reject (%s) leaves chain and netlist untouched" code name)
    `Quick
    (fun () ->
       let net0, f, e, g, fat, (c1, _c4) = fixture () in
       let cert = Cert.create () in
       (* Certified prefix on the source channel: it must survive the
          rejected application below.  (Not on the sink feed — an empty
          buffer there would make retime_backward legal.) *)
       let net, _ = Transform.insert_bubble ~cert net0 ~channel:c1 in
       Alcotest.(check int) "one step before" 1 (Cert.recorded cert);
       (match op ~cert net (f, e, g, fat, c1) with
        | (_ : Netlist.t) ->
          Alcotest.fail (name ^ ": expected Diagnostic.Reject " ^ code)
        | exception Diagnostic.Reject d ->
          Alcotest.(check string) "code" code (code_of d));
       Alcotest.(check int) "still one step" 1 (Cert.recorded cert);
       (* The prefix certificate still proves source -> net: nothing
          about the rejected application leaked into either. *)
       ignore
         (check_proved name net0 net (Cert.certificate cert) : Flow.proof))

let reject_suite =
  [ reject_case "insert_fifo depth 0" ~code:"E301"
      (fun ~cert net (_, _, _, _, c1) ->
         fst (Transform.insert_fifo ~cert net ~channel:c1 ~depth:0));
    reject_case "remove_buffer with a token" ~code:"E302"
      (fun ~cert net (_, e, _, _, _) -> Transform.remove_buffer ~cert net e);
    reject_case "convert_buffer over capacity" ~code:"E303"
      (fun ~cert net (_, _, _, fat, _) ->
         Transform.convert_buffer ~cert net fat Eb0);
    reject_case "retime_forward without input buffers" ~code:"E304"
      (fun ~cert net (f, _, _, _, _) ->
         fst (Transform.retime_forward ~cert net ~through:f));
    reject_case "retime_backward without an empty output buffer"
      ~code:"E305"
      (fun ~cert net (_, _, g, _, _) ->
         fst (Transform.retime_backward ~cert net ~through:g));
    reject_case "shannon on a non-mux" ~code:"E306"
      (fun ~cert net (f, _, _, _, _) ->
         fst (Transform.shannon ~cert net ~mux:f));
    reject_case "early_evaluation on a non-mux" ~code:"E307"
      (fun ~cert net (f, _, _, _, _) ->
         Transform.early_evaluation ~cert net ~mux:f);
    reject_case "share of distinct functions" ~code:"E308"
      (fun ~cert net (f, _, g, _, _) ->
         fst
           (Transform.share ~cert net ~blocks:[ f; g ]
              ~sched:Scheduler.Round_robin)) ]

(* ------------------------------------------------------------------ *)
(* Forged / mismatched certificates and the E4xx refutations. *)

let forged_step kind ~before ~after =
  { Cert.kind; lemma = Cert.lemma_of kind; conditions = [];
    added_nodes = []; removed_nodes = []; before; after }

let refutation_suite =
  [ Alcotest.test_case "E401: empty certificate, differing netlists"
      `Quick
      (fun () ->
         let src = (Figures.fig1a ()).Figures.net in
         let dst = (Figures.fig1b ()).Figures.net in
         check_refuted "empty-cert" ~code:"E401" src dst
           { Cert.steps = [] });
    Alcotest.test_case "E401: chain does not start at the claimed source"
      `Quick
      (fun () ->
         let cert = Cert.create () in
         let dst = (Figures.fig1b ~cert ()).Figures.net in
         let wrong_src = (Figures.fig1c ()).Figures.net in
         check_refuted "wrong-source" ~code:"E401" wrong_src dst
           (Cert.certificate cert));
    Alcotest.test_case "E402: forged step with a failing side condition"
      `Quick
      (fun () ->
         let net, _, e, _, _, _ = fixture () in
         (* "mid" holds a token, so removing it has no lemma. *)
         let step =
           forged_step (Cert.Remove_buffer { node = e }) ~before:net
             ~after:net
         in
         check_refuted "forged-remove" ~code:"E402" net net
           { Cert.steps = [ step ] });
    Alcotest.test_case "E403: recorded result disagrees with the replay"
      `Quick
      (fun () ->
         let net, _, _, _, _, (c1, _) = fixture () in
         (* Claim a bubble insertion that allegedly changed nothing. *)
         let step =
           forged_step (Cert.Bubble { channel = c1 }) ~before:net ~after:net
         in
         check_refuted "forged-bubble" ~code:"E403" net net
           { Cert.steps = [ step ] });
    Alcotest.test_case "E403: final replica differs from claimed derived"
      `Quick
      (fun () ->
         let cert = Cert.create () in
         let src = (Figures.fig1a ()).Figures.net in
         ignore (Figures.fig1b ~cert () : Figures.handles);
         (* The chain is honest but the claim [derived = source] is not. *)
         check_refuted "wrong-derived" ~code:"E403" src src
           (Cert.certificate cert));
    Alcotest.test_case
      "E405: Eb0 -> Eb conversion on the anti-token path voids the lemma"
      `Quick
      (fun () ->
         let d =
           Examples.vl_speculative
             ~ops:(Alu.operands ~error_rate_pct:25 ~seed:1 6)
         in
         let net = d.Examples.d_net in
         let b =
           match Netlist.find_node net "EB0r" with
           | Some n -> n.Netlist.id
           | None -> Alcotest.fail "no EB0r recovery buffer"
         in
         let cert = Cert.create () in
         let slow = Transform.convert_buffer ~cert net b Eb in
         (match
            Flow.verify ~design:"crawl" ~source:net ~derived:slow
              (Cert.certificate cert)
          with
          | Ok _ -> Alcotest.fail "expected E405, got a proof"
          | Error d ->
            Alcotest.(check string) "code" "E405" (code_of d);
            Alcotest.(check bool) "names the W104 rule" true
              (contains (Diagnostic.to_string d) "W104"))) ]

(* ------------------------------------------------------------------ *)
(* Direct structural mode and the JSONL report. *)

let structural_suite =
  [ Alcotest.test_case "equiv_static proves buffer-insertion slack" `Quick
      (fun () ->
         let net, _, _, _, _, (c1, c4) = fixture () in
         let slack, _ = Transform.insert_bubble net ~channel:c1 in
         let slack, _ =
           Transform.insert_fifo slack ~channel:c4 ~depth:2
         in
         match Flow.equiv_static ~design:"slack" net slack with
         | Ok p ->
           Alcotest.(check bool) "structural mode" true
             (p.Flow.p_mode = `Structural);
           Alcotest.(check int) "three buffers spliced" 3 p.Flow.p_steps
         | Error d -> Alcotest.fail (Diagnostic.to_string d));
    Alcotest.test_case "E404: a token-holding insertion is not slack"
      `Quick
      (fun () ->
         let net, _, _, _, _, (c1, _) = fixture () in
         let changed, _ =
           Transform.insert_buffer net ~channel:c1 ~buffer:Eb
             ~init:[ Value.Int 7 ]
         in
         match Flow.equiv_static ~design:"token" net changed with
         | Ok _ -> Alcotest.fail "expected E404"
         | Error d -> Alcotest.(check string) "code" "E404" (code_of d));
    Alcotest.test_case "jsonl report carries the proof/v1 schema" `Quick
      (fun () ->
         let cert = Cert.create () in
         let src = (Figures.fig1a ()).Figures.net in
         let dst = (Figures.fig1b ~cert ()).Figures.net in
         let c = Cert.certificate cert in
         let out =
           Flow.jsonl ~design:"fig1b" ~cert:c
             (Flow.verify ~design:"fig1b" ~source:src ~derived:dst c)
         in
         Alcotest.(check bool) "schema tag" true
           (contains out "elastic-speculation/proof/v1");
         Alcotest.(check bool) "proved" true (contains out "proved");
         Alcotest.(check bool) "lemma named" true
           (contains out "bubble-insertion");
         let lines =
           List.filter
             (fun l -> String.trim l <> "")
             (String.split_on_char '\n' out)
         in
         Alcotest.(check int) "header + one line per step"
           (1 + Cert.length c) (List.length lines));
    Alcotest.test_case "jsonl report names the refuting diagnostic" `Quick
      (fun () ->
         let src = (Figures.fig1a ()).Figures.net in
         let dst = (Figures.fig1b ()).Figures.net in
         let out =
           Flow.jsonl ~design:"bad"
             (Flow.verify ~design:"bad" ~source:src ~derived:dst
                { Cert.steps = [] })
         in
         Alcotest.(check bool) "refuted" true (contains out "refuted");
         Alcotest.(check bool) "code" true (contains out "E401")) ]

(* ------------------------------------------------------------------ *)
(* Random legal chains.  Rejected attempts must leave the chain
   untouched; whatever survives must verify. *)

let attempt cert netref f =
  let before = Cert.recorded cert in
  try netref := f !netref
  with Diagnostic.Reject _ ->
    Alcotest.(check int) "reject leaves the chain untouched" before
      (Cert.recorded cert)

(* Speculation recipe prefixes on Fig. 1(a), padded with slack on the
   sink feed (never on the mux arms: an Eb bubble there would create
   the W104 anti-token crawl once the mux evaluates early, and the
   verifier would rightly void the lemma). *)
type spec_case = {
  s_pre : int;  (* bubbles on the sink feed first *)
  s_stages : int;  (* 0-3: shannon, + early-eval, + share *)
  s_fifo : int;  (* FIFO depth appended after, 0 = none *)
  s_convert : bool;  (* convert the first inserted buffer to Eb0 *)
}

let gen_spec =
  let open QCheck.Gen in
  let* s_pre = int_bound 2 in
  let* s_stages = int_bound 3 in
  let* s_fifo = int_bound 2 in
  let* s_convert = QCheck.Gen.bool in
  return { s_pre; s_stages; s_fifo; s_convert }

let print_spec c =
  Fmt.str "pre=%d stages=%d fifo=%d convert=%b" c.s_pre c.s_stages c.s_fifo
    c.s_convert

let run_spec c =
  let h = Figures.fig1a () in
  let cert = Cert.create () in
  let net = ref h.Figures.net in
  let inserted = ref [] in
  let sink_feed () =
    match Netlist.channel_at !net h.Figures.sink (In 0) with
    | Some ch -> ch.Netlist.ch_id
    | None -> Alcotest.fail "no sink feed"
  in
  for _ = 1 to c.s_pre do
    let n, b = Transform.insert_bubble ~cert !net ~channel:(sink_feed ()) in
    net := n;
    inserted := !inserted @ [ b ]
  done;
  let copies = ref [] in
  if c.s_stages >= 1 then begin
    let n, cs = Transform.shannon ~cert !net ~mux:h.Figures.mux in
    net := n;
    copies := cs
  end;
  if c.s_stages >= 2 then
    net := Transform.early_evaluation ~cert !net ~mux:h.Figures.mux;
  if c.s_stages >= 3 then begin
    let sched =
      Scheduler.Noisy_oracle
        { sel = Figures.default_params.Figures.sel; accuracy_pct = 100;
          seed = 1 }
    in
    let n, _ = Transform.share ~cert !net ~blocks:!copies ~sched in
    net := n
  end;
  if c.s_fifo > 0 then begin
    let n, bs =
      Transform.insert_fifo ~cert !net ~channel:(sink_feed ())
        ~depth:c.s_fifo
    in
    net := n;
    inserted := !inserted @ bs
  end;
  (if c.s_convert then
     match !inserted with
     | b :: _ -> net := Transform.convert_buffer ~cert !net b Eb0
     | [] -> ());
  let certificate = Cert.certificate cert in
  ignore
    (check_proved (print_spec c) h.Figures.net !net certificate
     : Flow.proof);
  true

(* Random retiming chains on a linear pipeline with one token buffer:
   the token is retimed forward a random distance, then a bubble is
   pushed backward through the tail (which legally rejects when the
   token already sits on the last channel). *)
type ret_case = {
  r_len : int;  (* pipeline function blocks, 2-4 *)
  r_moves : int;  (* forward retimes, reduced mod r_len *)
  r_tail : bool;  (* bubble + backward retime at the end *)
  r_tok : int;  (* value of the retimed token *)
}

let gen_ret =
  let open QCheck.Gen in
  let* r_len = int_range 2 4 in
  let* r_moves = int_bound 6 in
  let* r_tail = QCheck.Gen.bool in
  let* r_tok = int_bound 1000 in
  return { r_len; r_moves; r_tail; r_tok }

let print_ret c =
  Fmt.str "len=%d moves=%d tail=%b tok=%d" c.r_len c.r_moves c.r_tail
    c.r_tok

let run_ret c =
  let b = builder () in
  let s = src_counter b () in
  let fs =
    List.init c.r_len (fun i ->
        add b ~name:(Fmt.str "f%d" i) (Func (Func.inc ~step:(i + 1) ())))
  in
  let k = sink b () in
  let tok = eb b ~name:"tok" ~init:[ Value.Int c.r_tok ] () in
  let f0 = List.hd fs in
  let _ = conn b (s, Out 0) (f0, In 0) in
  let _ = conn b (f0, Out 0) (tok, In 0) in
  let rec link prev = function
    | [] -> ignore (conn b (prev, Out 0) (k, In 0))
    | f :: rest ->
      ignore (conn b (prev, Out 0) (f, In 0));
      link f rest
  in
  link tok (List.tl fs);
  let source = b.net in
  let cert = Cert.create () in
  let net = ref source in
  let moves = c.r_moves mod c.r_len in
  List.iteri
    (fun i f ->
       if i >= 1 && i <= moves then
         attempt cert net (fun n ->
             fst (Transform.retime_forward ~cert n ~through:f)))
    fs;
  let last = List.nth fs (c.r_len - 1) in
  if c.r_tail then begin
    let feed =
      match Netlist.channel_at !net k (In 0) with
      | Some ch -> ch.Netlist.ch_id
      | None -> Alcotest.fail "no sink feed"
    in
    attempt cert net (fun n ->
        fst (Transform.insert_bubble ~cert n ~channel:feed));
    attempt cert net (fun n ->
        fst (Transform.retime_backward ~cert n ~through:last))
  end;
  ignore
    (check_proved (print_ret c) source !net (Cert.certificate cert)
     : Flow.proof);
  true

let qcheck_suite =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"qcheck: random speculation chains yield valid certificates"
         ~count:60
         (QCheck.make ~print:print_spec gen_spec)
         run_spec);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"qcheck: random retiming chains yield valid certificates"
         ~count:60
         (QCheck.make ~print:print_ret gen_ret)
         run_ret) ]

let suite =
  bundled_suite @ reject_suite @ refutation_suite @ structural_suite
  @ qcheck_suite
