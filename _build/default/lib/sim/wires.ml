open Elastic_kernel

type wire = {
  mutable v_plus : bool option;
  mutable s_plus : bool option;
  mutable v_minus : bool option;
  mutable s_minus : bool option;
  mutable data : Value.t option;
  id : int;
}

type t = { wires : wire array; mutable progress : bool }

let create n =
  { wires =
      Array.init n (fun id ->
          { v_plus = None; s_plus = None; v_minus = None; s_minus = None;
            data = None; id });
    progress = false }

let wire t i = t.wires.(i)

let reset t =
  Array.iter
    (fun w ->
       w.v_plus <- None;
       w.s_plus <- None;
       w.v_minus <- None;
       w.s_minus <- None;
       w.data <- None)
    t.wires;
  t.progress <- false

let progress t = t.progress

let clear_progress t = t.progress <- false

let unknown_count t =
  Array.fold_left
    (fun acc w ->
       let u o = if o = None then 1 else 0 in
       acc + u w.v_plus + u w.s_plus + u w.v_minus + u w.s_minus)
    0 t.wires

let v_plus w = w.v_plus

let s_plus w = w.s_plus

let v_minus w = w.v_minus

let s_minus w = w.s_minus

let data w = w.data

let set_bit t w field_name get set b =
  match get w with
  | None ->
    set w (Some b);
    t.progress <- true
  | Some b' ->
    if b' <> b then
      failwith
        (Fmt.str "Wires: conflicting write to %s of channel wire %d"
           field_name w.id)

let set_v_plus t w b =
  set_bit t w "V+" (fun w -> w.v_plus) (fun w v -> w.v_plus <- v) b

let set_s_plus t w b =
  set_bit t w "S+" (fun w -> w.s_plus) (fun w v -> w.s_plus <- v) b

let set_v_minus t w b =
  set_bit t w "V-" (fun w -> w.v_minus) (fun w v -> w.v_minus <- v) b

let set_s_minus t w b =
  set_bit t w "S-" (fun w -> w.s_minus) (fun w v -> w.s_minus <- v) b

let set_data t w v =
  match w.data with
  | None ->
    w.data <- Some v;
    t.progress <- true
  | Some v' ->
    if not (Value.equal v v') then
      failwith
        (Fmt.str "Wires: conflicting data write to channel wire %d" w.id)

let to_signal w =
  let b o = Option.value o ~default:false in
  let v_plus = b w.v_plus in
  { Signal.v_plus; s_plus = b w.s_plus; v_minus = b w.v_minus;
    s_minus = b w.s_minus; data = (if v_plus then w.data else None) }
