(** Post-simulation statistics: per-channel utilization and per-scheduler
    prediction quality — the numbers a designer reads when deciding where
    to apply the paper's transformations (a persistently-stalled channel
    on a decision loop is exactly a speculation candidate). *)

type channel_stats = {
  cs_name : string;
  cs_delivered : int;  (** Tokens delivered. *)
  cs_killed : int;  (** Token/anti-token cancellations. *)
  cs_valid_cycles : int;  (** Cycles with a token offered. *)
  cs_retry_cycles : int;  (** Cycles with a token stalled. *)
  cs_anti_cycles : int;  (** Cycles with an anti-token present. *)
  cs_utilization : float;  (** Delivered per simulated cycle. *)
  cs_stall_ratio : float;  (** Retry cycles per valid cycle. *)
}

type scheduler_stats = {
  ss_name : string;
  ss_serves : int;
  ss_mispredictions : int;
}

type t = {
  cycles : int;
  channels : channel_stats list;
  schedulers : scheduler_stats list;
}

(** Snapshot the engine's counters. *)
val collect : Engine.t -> t

(** Channels sorted by stall ratio, worst first — speculation candidates
    tend to surface at the top. *)
val most_stalled : t -> channel_stats list

val pp : Format.formatter -> t -> unit
