open Elastic_sched
open Elastic_netlist

type channel_stats = {
  cs_name : string;
  cs_delivered : int;
  cs_killed : int;
  cs_valid_cycles : int;
  cs_retry_cycles : int;
  cs_anti_cycles : int;
  cs_utilization : float;
  cs_stall_ratio : float;
}

type scheduler_stats = {
  ss_name : string;
  ss_serves : int;
  ss_mispredictions : int;
}

type t = {
  cycles : int;
  channels : channel_stats list;
  schedulers : scheduler_stats list;
}

let collect eng =
  let net = Engine.netlist eng in
  let cycles = Engine.cycle eng in
  let fcycles = float_of_int (max cycles 1) in
  let channels =
    List.map
      (fun (c : Netlist.channel) ->
         let valid, retry, anti = Engine.activity eng c.Netlist.ch_id in
         let delivered = Engine.delivered eng c.Netlist.ch_id in
         { cs_name = c.Netlist.ch_name;
           cs_delivered = delivered;
           cs_killed = Engine.killed eng c.Netlist.ch_id;
           cs_valid_cycles = valid;
           cs_retry_cycles = retry;
           cs_anti_cycles = anti;
           cs_utilization = float_of_int delivered /. fcycles;
           cs_stall_ratio =
             (if valid = 0 then 0.0
              else float_of_int retry /. float_of_int valid) })
      (Netlist.channels net)
  in
  let schedulers =
    List.map
      (fun (nid, sched) ->
         { ss_name = (Netlist.node net nid).Netlist.name;
           ss_serves = Scheduler.serves sched;
           ss_mispredictions = Scheduler.mispredictions sched })
      (Engine.schedulers eng)
  in
  { cycles; channels; schedulers }

let most_stalled t =
  List.sort
    (fun a b -> Float.compare b.cs_stall_ratio a.cs_stall_ratio)
    t.channels

let pp ppf t =
  Fmt.pf ppf "%d cycles@." t.cycles;
  Fmt.pf ppf "%-32s %9s %6s %6s %6s %6s@." "channel" "delivered" "kill"
    "util" "stall" "anti";
  List.iter
    (fun c ->
       Fmt.pf ppf "%-32s %9d %6d %6.3f %6.3f %6d@." c.cs_name c.cs_delivered
         c.cs_killed c.cs_utilization c.cs_stall_ratio c.cs_anti_cycles)
    t.channels;
  List.iter
    (fun s ->
       Fmt.pf ppf "scheduler %s: %d serves, %d mispredictions@." s.ss_name
         s.ss_serves s.ss_mispredictions)
    t.schedulers
