open Elastic_kernel

(** Per-cycle channel wire values with three-valued (unknown) logic.

    During the combinational phase of a cycle each control bit of each
    channel starts unknown and is written at most once by the driving
    node.  The fixed-point engine repeatedly evaluates nodes until no new
    wire becomes known; writing two different values to one wire is a
    simulator bug and raises. *)

type wire

type t

(** [create n] makes a store for [n] channels (dense indices). *)
val create : int -> t

val wire : t -> int -> wire

(** Forget all values (start of a new cycle). *)
val reset : t -> unit

(** Has any wire been written since the flag was last cleared? *)
val progress : t -> bool

val clear_progress : t -> unit

(** Number of control bits still unknown (data excluded). *)
val unknown_count : t -> int

(** {1 Reading} *)

val v_plus : wire -> bool option

val s_plus : wire -> bool option

val v_minus : wire -> bool option

val s_minus : wire -> bool option

(** Data is meaningful only when [v_plus = Some true]. *)
val data : wire -> Value.t option

(** {1 Writing}  @raise Failure on conflicting writes. *)

val set_v_plus : t -> wire -> bool -> unit

val set_s_plus : t -> wire -> bool -> unit

val set_v_minus : t -> wire -> bool -> unit

val set_s_minus : t -> wire -> bool -> unit

val set_data : t -> wire -> Value.t -> unit

(** Fully-resolved signals of a wire after the fixed point; unknown bits
    default to false (they can only remain unknown if the engine already
    reported an error). *)
val to_signal : wire -> Signal.t
