open Elastic_kernel
open Elastic_sched
open Elastic_netlist

(** Runtime semantics of one netlist node.

    Each node is evaluated as a monotone function over partially-known
    channel wires ({!eval} may be called repeatedly within a cycle until a
    fixed point is reached) and then clocked once with the resolved
    signals and the channel boundary events of the cycle ({!clock}).

    The implemented controllers follow the paper:
    - standard EB: Fig. 2(a)/Fig. 3 with [Lf = 1], [Lb = 1], [C = 2];
    - zero-backward-latency EB: Fig. 5 with [Lf = 1], [Lb = 0], [C = 1];
    - early-evaluation multiplexor with anti-token emission (§2, §4.1);
    - shared module with speculation scheduler: Fig. 4(b);
    - eager fork, lazy join, environment sources/sinks. *)

(** External resolution of one nondeterministic decision (used by the
    model checker to replace random sources/sinks/schedulers). *)
type choice =
  | Offer of bool  (** Source: offer a token this cycle? *)
  | Stall of bool  (** Sink: assert stop this cycle? *)
  | Predict of int  (** Shared-module scheduler decision. *)

type t

(** [create node ~ins ~sel ~outs] builds the runtime instance; wire arrays
    must follow port numbering ([ins.(i)] is port [In i], etc.). *)
val create :
  Netlist.node -> ins:Wires.wire array -> sel:Wires.wire option ->
  outs:Wires.wire array -> t

val node : t -> Netlist.node

(** Does this instance consume a nondeterministic choice each cycle? *)
val is_nondet : t -> bool

(** The shared-module scheduler, if this node has one. *)
val scheduler : t -> Scheduler.t option

(** Start-of-cycle hook: environment nodes decide what to offer/accept.
    [choice] overrides the node's own (pseudo-random or scripted)
    behaviour. *)
val begin_cycle : t -> choice:choice option -> unit

(** One monotone evaluation pass; writes whatever wire values have become
    determined. *)
val eval : Wires.t -> t -> unit

(** Clock edge.  [ins]/[sel]/[outs] carry, per port, the resolved channel
    signals and the boundary events of the elapsed cycle. *)
val clock :
  t ->
  ins:(Signal.t * Signal.events) array ->
  sel:(Signal.t * Signal.events) option ->
  outs:(Signal.t * Signal.events) array ->
  unit

(** {1 State snapshots (for the model checker)} *)

(** Marshalable register state of a node. *)
type snap

val snapshot : t -> snap

val restore : t -> snap -> unit

val snap_equal : snap -> snap -> bool

val pp_snap : Format.formatter -> snap -> unit

(** {1 Introspection} *)

(** Signed token count of a buffer node ([tokens >= 0], anti-tokens
    [< 0]); [None] for non-buffer nodes. *)
val buffer_occupancy : t -> int option

(** Tokens currently stored anywhere in the node (buffers only). *)
val stored_values : t -> Value.t list
