lib/sim/rng.ml:
