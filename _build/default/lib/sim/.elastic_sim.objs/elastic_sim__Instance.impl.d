lib/sim/instance.ml: Array Bool Elastic_kernel Elastic_netlist Elastic_sched Fmt Func List Netlist Option Rng Scheduler Signal Value Wires
