lib/sim/wires.mli: Elastic_kernel Signal Value
