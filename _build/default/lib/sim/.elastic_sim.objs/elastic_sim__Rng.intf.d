lib/sim/rng.mli:
