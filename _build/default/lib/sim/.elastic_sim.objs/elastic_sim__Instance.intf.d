lib/sim/instance.mli: Elastic_kernel Elastic_netlist Elastic_sched Format Netlist Scheduler Signal Value Wires
