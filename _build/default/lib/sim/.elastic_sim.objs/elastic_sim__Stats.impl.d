lib/sim/stats.ml: Elastic_netlist Elastic_sched Engine Float Fmt List Netlist Scheduler
