lib/sim/wires.ml: Array Elastic_kernel Fmt Option Signal Value
