lib/sim/engine.ml: Array Elastic_kernel Elastic_netlist Fmt Hashtbl Instance List Netlist Option Protocol Signal String Transfer Wires
