lib/sim/engine.mli: Elastic_kernel Elastic_netlist Elastic_sched Format Instance Netlist Protocol Scheduler Signal Transfer
