type t = { mutable s : int }

let create ~seed = { s = (seed lxor 0x2545F491) land 0x3FFFFFFF }

let next t =
  t.s <- ((t.s * 1103515245) + 12345) land 0x3FFFFFFF;
  t.s

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  next t mod bound

let percent t pct = int t 100 < pct

let state t = t.s

let set_state t s = t.s <- s
