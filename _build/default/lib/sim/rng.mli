(** Small deterministic linear-congruential generator.

    Simulation runs must be reproducible across machines and runs, so
    random sources, sinks and schedulers use this generator rather than
    the global [Random] state. *)

type t

val create : seed:int -> t

(** Uniform integer in [0, bound). *)
val int : t -> int -> int

(** [percent t pct] is true with probability [pct]/100. *)
val percent : t -> int -> bool

(** Current internal state (for checkpointing in the model checker). *)
val state : t -> int

val set_state : t -> int -> unit
