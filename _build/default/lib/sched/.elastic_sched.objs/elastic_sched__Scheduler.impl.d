lib/sched/scheduler.ml: Array Bool Fmt List
