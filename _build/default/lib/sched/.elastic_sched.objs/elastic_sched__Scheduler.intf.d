lib/sched/scheduler.mli: Format
