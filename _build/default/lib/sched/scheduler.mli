(** Schedulers for shared elastic modules (§4.1.1).

    A scheduler predicts, at each clock cycle, which input channel of a
    shared module may use the shared resource — implicitly predicting the
    select signal of the downstream early-evaluation multiplexor.  The
    prediction read by {!predict} must depend only on registered state;
    the observation of the cycle's outcome is applied at the clock edge by
    {!observe}.

    For liveness, a scheduler must satisfy the leads-to constraint (1) of
    the paper: every token arriving at the shared module is eventually
    served or killed.  All schedulers here guarantee it by eventually
    switching to any persistently-stalled valid channel. *)

(** What a scheduler can see of one elapsed cycle. *)
type observation = {
  in_valid : bool array;  (** V+ at each shared-module input. *)
  out_valid : bool array;  (** V+ driven on each shared-module output. *)
  out_stop : bool array;
      (** S+ seen on each output: a valid-and-stopped predicted output is
          the misprediction signal described in §2. *)
  out_kill : bool array;
      (** V- arriving at each output (an anti-token racing backwards:
          evidence the channel was {e not} needed). *)
  served : int option;
      (** Channel whose token actually traversed the shared module and was
          accepted downstream this cycle. *)
  hint : int option;
      (** Value of the hint token consumed this cycle, when the shared
          module has a hint input (e.g. the error detector's outcome wired
          straight into the scheduler, as §5.1/§5.2 prescribe). *)
}

(** Prediction strategy specification — a declarative description so that
    netlists stay comparable and printable. *)
type spec =
  | Static of int  (** Always predict the same channel. *)
  | Toggle  (** Alternate channels every cycle (Table 1's scheduler). *)
  | Sticky
      (** Keep the current prediction until a retry on the predicted
          output reveals a misprediction, then move to the next channel. *)
  | Two_bit
      (** Two-bit saturating counter between two channels, trained by
          serve/retry outcomes (2-way only). *)
  | Round_robin  (** Advance to the next channel after every serve. *)
  | Scripted of int array
      (** Fixed prediction per cycle (wraps around); used to reproduce
          Table 1 exactly. *)
  | Noisy_oracle of { sel : int array; accuracy_pct : int; seed : int }
      (** Knows the true select stream for each successive transfer and
          predicts it correctly with probability [accuracy_pct]/100; after
          a detected misprediction it corrects itself.  Models an
          arbitrary predictor of a given accuracy. *)
  | External
      (** Prediction is forced from outside with {!force}; used by the
          model checker to quantify over all schedulers. *)
  | Prefer of int
      (** Speculate on a home channel (e.g. "no error will be found",
          §5.1/§5.2): predict the home channel until a retry reveals a
          misprediction, deviate to the next channel for a single serve
          (the replay), then return home. *)
  | Hinted_replay
      (** Always speculate on channel 0; a non-zero hint token (the error
          detector's verdict on the operation just served) switches to
          channel 1 for exactly one replay serve, then returns home.  This
          is the scheduler of the paper's variable-latency and resilient
          designs, which "must only listen to the outcome" of the
          detector. *)
  | Gshare of { history_bits : int }
      (** Branch-predictor-style two-level scheduler (2-way only): a
          global history register XOR-indexes a table of two-bit
          counters, trained by serves and detected mispredictions — the
          "state-of-the-art branch prediction" end of the spectrum
          §4.1.1 mentions.  [history_bits] in [1, 10]. *)

val pp_spec : Format.formatter -> spec -> unit

val spec_name : spec -> string

(** A running scheduler instance. *)
type t

(** [make ~ways spec] instantiates a scheduler for a [ways]-input shared
    module.  @raise Invalid_argument if the spec cannot serve [ways]
    channels (e.g. [Static i] with [i >= ways]). *)
val make : ways:int -> spec -> t

(** Current prediction, a channel index in [0, ways). *)
val predict : t -> int

(** Clock edge: record the cycle's outcome. *)
val observe : t -> observation -> unit

(** [force t c] overrides the prediction (meaningful for [External]
    schedulers; allowed on any). *)
val force : t -> int -> unit

(** Mispredictions detected so far (retries seen on the predicted
    output). *)
val mispredictions : t -> int

(** Tokens served so far. *)
val serves : t -> int

(** Internal state encoded as ints — used by the model checker to include
    the scheduler in the system state. *)
val state : t -> int list

(** Behaviourally relevant part of the state: statistics counters are
    excluded so that exhaustive exploration merges equivalent states. *)
val key : t -> int list

val set_state : t -> int list -> unit

val spec : t -> spec

val ways : t -> int
