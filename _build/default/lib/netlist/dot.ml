let node_attrs (n : Netlist.node) =
  match n.Netlist.kind with
  | Netlist.Source _ -> "shape=invtriangle,style=filled,fillcolor=lightblue"
  | Netlist.Sink _ -> "shape=triangle,style=filled,fillcolor=lightblue"
  | Netlist.Buffer { init; _ } ->
    if init = [] then "shape=box,style=dashed"
    else "shape=box,style=filled,fillcolor=gold"
  | Netlist.Func _ -> "shape=ellipse"
  | Netlist.Fork _ -> "shape=point,width=0.15"
  | Netlist.Mux { early; _ } ->
    if early then "shape=trapezium,style=filled,fillcolor=palegreen"
    else "shape=trapezium"
  | Netlist.Shared _ -> "shape=doubleoctagon,style=filled,fillcolor=salmon"
  | Netlist.Varlat _ -> "shape=component,style=filled,fillcolor=khaki"

let label (n : Netlist.node) =
  match n.Netlist.kind with
  | Netlist.Buffer { buffer; init } ->
    Fmt.str "%s\\n%s:%d" n.Netlist.name
      (Netlist.buffer_kind_name buffer)
      (List.length init)
  | Netlist.Source _ | Netlist.Sink _ | Netlist.Func _ | Netlist.Fork _
  | Netlist.Mux _ | Netlist.Shared _ | Netlist.Varlat _ ->
    Fmt.str "%s\\n%s" n.Netlist.name (Netlist.kind_name n.Netlist.kind)

let emit ppf t =
  Fmt.pf ppf "digraph elastic {@.  rankdir=LR;@.";
  List.iter
    (fun (n : Netlist.node) ->
       Fmt.pf ppf "  n%d [label=\"%s\",%s];@." n.Netlist.id (label n)
         (node_attrs n))
    (Netlist.nodes t);
  List.iter
    (fun (c : Netlist.channel) ->
       Fmt.pf ppf "  n%d -> n%d [label=\"%a>%a\"];@." c.Netlist.src.ep_node
         c.Netlist.dst.ep_node Netlist.pp_port c.Netlist.src.ep_port
         Netlist.pp_port c.Netlist.dst.ep_port)
    (Netlist.channels t);
  Fmt.pf ppf "}@."

let to_string t = Fmt.str "%a" emit t

let save path t =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  emit ppf t;
  Format.pp_print_flush ppf ();
  close_out oc
