(** NuSMV model export for controller verification (§4.2).

    The paper verifies all elastic controllers with NuSMV; this emitter
    produces an equivalent flat SMV model of the {e control} network —
    data is abstracted away, so the multiplexor select and the scheduler
    become nondeterministic inputs (a sound over-approximation for the
    control properties).  The model carries the four channel properties of
    §3.1 as [LTLSPEC]s per channel:

    - Retry+ : [G ((vp & sp) -> X vp)]
    - Retry- : [G ((vm & sm) -> X vm)]
    - Liveness: [G F ((vp & !sp) | (vm & !sm))]
    - Invariant: [G !(vp & sm_eff) & G !(vm & sp_eff)]

    The generated file is self-contained NuSMV input; this repository also
    checks the same properties natively with [Elastic_check.Explore]. *)

val emit : Format.formatter -> Netlist.t -> unit

val to_string : Netlist.t -> string

val save : string -> Netlist.t -> unit
