(** Graphviz export of elastic netlists (the paper's toolkit lets the user
    "visualize the modified graph"). *)

(** [emit ppf t] writes a [dot] digraph.  Buffers are drawn as boxes
    annotated with their token count, functional blocks as ellipses,
    multiplexors as trapezia and shared modules as double octagons. *)
val emit : Format.formatter -> Netlist.t -> unit

val to_string : Netlist.t -> string

(** [save path t] writes the graph to a file. *)
val save : string -> Netlist.t -> unit
