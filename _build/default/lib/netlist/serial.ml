open Elastic_kernel
open Elastic_sched

(* Tokens are space-separated; names and string payloads are URI-style
   escaped so that a token never contains a space, parenthesis or
   comma. *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       match c with
       | '%' | ' ' | '(' | ')' | ',' | '\n' | '\t' ->
         Buffer.add_string buf (Fmt.str "%%%02X" (Char.code c))
       | _ -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        Buffer.add_char buf
          (Char.chr (int_of_string ("0x" ^ String.sub s (i + 1) 2)));
        go (i + 3)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Values                                                               *)

let rec write_value v =
  match v with
  | Value.Unit -> "u"
  | Value.Bool b -> if b then "b1" else "b0"
  | Value.Int i -> Fmt.str "i%d" i
  | Value.Word w -> Fmt.str "w%Ld" w
  | Value.Str s -> "s" ^ escape s
  | Value.Tuple vs ->
    Fmt.str "(%s)" (String.concat "," (List.map write_value vs))

exception Parse of string

let fail fmt = Fmt.kstr (fun m -> raise (Parse m)) fmt

(* Parse one value starting at position [i]; returns (value, next). *)
let rec parse_value s i =
  let n = String.length s in
  if i >= n then fail "empty value"
  else
    match s.[i] with
    | 'u' -> (Value.Unit, i + 1)
    | 'b' ->
      if i + 1 < n && s.[i + 1] = '1' then (Value.Bool true, i + 2)
      else (Value.Bool false, i + 2)
    | 'i' | 'w' | 's' ->
      let stop = ref (i + 1) in
      while !stop < n && s.[!stop] <> ',' && s.[!stop] <> ')' do
        incr stop
      done;
      let body = String.sub s (i + 1) (!stop - i - 1) in
      let v =
        match s.[i] with
        | 'i' ->
          (match int_of_string_opt body with
           | Some x -> Value.Int x
           | None -> fail "bad int %S" body)
        | 'w' ->
          (match Int64.of_string_opt body with
           | Some x -> Value.Word x
           | None -> fail "bad word %S" body)
        | _ -> Value.Str (unescape body)
      in
      (v, !stop)
    | '(' ->
      let rec elements acc j =
        if j >= n then fail "unterminated tuple"
        else if s.[j] = ')' then (List.rev acc, j + 1)
        else
          let v, j' = parse_value s j in
          if j' < n && s.[j'] = ',' then elements (v :: acc) (j' + 1)
          else if j' < n && s.[j'] = ')' then (List.rev (v :: acc), j' + 1)
          else fail "malformed tuple at %d" j'
      in
      if i + 1 < n && s.[i + 1] = ')' then (Value.Tuple [], i + 2)
      else
        let vs, j = elements [] (i + 1) in
        (Value.Tuple vs, j)
    | c -> fail "unexpected value character %C" c

let value_of_token tok =
  let v, stop = parse_value tok 0 in
  if stop <> String.length tok then fail "trailing garbage in value %S" tok
  else v

(* ------------------------------------------------------------------ *)
(* Scheduler specs                                                      *)

let write_sched = function
  | Scheduler.Static i -> Fmt.str "static:%d" i
  | Scheduler.Toggle -> "toggle"
  | Scheduler.Sticky -> "sticky"
  | Scheduler.Two_bit -> "two-bit"
  | Scheduler.Round_robin -> "round-robin"
  | Scheduler.Scripted a ->
    Fmt.str "scripted:%s"
      (String.concat "" (List.map string_of_int (Array.to_list a)))
  | Scheduler.Noisy_oracle { sel; accuracy_pct; seed } ->
    Fmt.str "oracle:%d:%d:%s" accuracy_pct seed
      (String.concat "" (List.map string_of_int (Array.to_list sel)))
  | Scheduler.External -> "external"
  | Scheduler.Prefer i -> Fmt.str "prefer:%d" i
  | Scheduler.Hinted_replay -> "hinted-replay"
  | Scheduler.Gshare { history_bits } -> Fmt.str "gshare:%d" history_bits

let digits s =
  Array.init (String.length s) (fun i ->
      match s.[i] with
      | '0' .. '9' -> Char.code s.[i] - Char.code '0'
      | c -> fail "bad digit %C in scheduler script" c)

let parse_sched tok =
  match String.split_on_char ':' tok with
  | [ "toggle" ] -> Scheduler.Toggle
  | [ "sticky" ] -> Scheduler.Sticky
  | [ "two-bit" ] -> Scheduler.Two_bit
  | [ "round-robin" ] -> Scheduler.Round_robin
  | [ "external" ] -> Scheduler.External
  | [ "hinted-replay" ] -> Scheduler.Hinted_replay
  | [ "static"; i ] -> Scheduler.Static (int_of_string i)
  | [ "prefer"; i ] -> Scheduler.Prefer (int_of_string i)
  | [ "gshare"; k ] -> Scheduler.Gshare { history_bits = int_of_string k }
  | [ "scripted"; d ] -> Scheduler.Scripted (digits d)
  | [ "oracle"; acc; seed; d ] ->
    Scheduler.Noisy_oracle
      { sel = digits d; accuracy_pct = int_of_string acc;
        seed = int_of_string seed }
  | _ -> fail "unknown scheduler spec %S" tok

(* ------------------------------------------------------------------ *)
(* Ports                                                                *)

let write_port = function
  | Netlist.Sel -> "sel"
  | Netlist.In i -> Fmt.str "in%d" i
  | Netlist.Out i -> Fmt.str "out%d" i

let parse_port tok =
  if String.equal tok "sel" then Netlist.Sel
  else
    let num prefix =
      let lp = String.length prefix in
      if String.length tok > lp && String.sub tok 0 lp = prefix then
        int_of_string_opt (String.sub tok lp (String.length tok - lp))
      else None
    in
    match num "in", num "out" with
    | Some i, _ -> Netlist.In i
    | _, Some i -> Netlist.Out i
    | None, None -> fail "bad port %S" tok

(* ------------------------------------------------------------------ *)
(* Writing                                                              *)

let write_func (f : Func.t) =
  Fmt.str "%s %d %.17g %.17g" (escape f.Func.name) f.Func.arity f.Func.delay
    f.Func.area

let write_kind = function
  | Netlist.Source (Netlist.Stream vs) ->
    "source stream " ^ String.concat " " (List.map write_value vs)
  | Netlist.Source (Netlist.Counter { start; step }) ->
    Fmt.str "source counter %d %d" start step
  | Netlist.Source (Netlist.Random_rate { pct; seed }) ->
    Fmt.str "source random %d %d" pct seed
  | Netlist.Source (Netlist.Nondet vs) ->
    "source nondet " ^ String.concat " " (List.map write_value vs)
  | Netlist.Sink Netlist.Always_ready -> "sink ready"
  | Netlist.Sink (Netlist.Stall_pattern p) ->
    "sink pattern "
    ^ String.concat ""
        (List.map (fun b -> if b then "1" else "0") (Array.to_list p))
  | Netlist.Sink (Netlist.Random_stall { pct; seed }) ->
    Fmt.str "sink random %d %d" pct seed
  | Netlist.Buffer { buffer; init } ->
    Fmt.str "buffer %s%s"
      (Netlist.buffer_kind_name buffer)
      (String.concat ""
         (List.map (fun v -> " " ^ write_value v) init))
  | Netlist.Func f -> "func " ^ write_func f
  | Netlist.Fork n -> Fmt.str "fork %d" n
  | Netlist.Mux { ways; early } ->
    Fmt.str "mux %d %s" ways (if early then "early" else "plain")
  | Netlist.Shared { ways; f; sched; hinted } ->
    Fmt.str "shared %d %s %s %s" ways
      (if hinted then "hinted" else "plain")
      (write_sched sched) (write_func f)
  | Netlist.Varlat { fast; slow; err } ->
    Fmt.str "varlat %s %s %s" (write_func fast) (write_func slow)
      (write_func err)

let write ppf net =
  Fmt.pf ppf "elastic-netlist v1@.";
  List.iter
    (fun (n : Netlist.node) ->
       Fmt.pf ppf "node %d %s %s@." n.Netlist.id (escape n.Netlist.name)
         (write_kind n.Netlist.kind))
    (Netlist.nodes net);
  List.iter
    (fun (c : Netlist.channel) ->
       Fmt.pf ppf "chan %s %d %s %d %s %d@."
         (escape c.Netlist.ch_name)
         c.Netlist.src.Netlist.ep_node
         (write_port c.Netlist.src.Netlist.ep_port)
         c.Netlist.dst.Netlist.ep_node
         (write_port c.Netlist.dst.Netlist.ep_port)
         c.Netlist.width)
    (Netlist.channels net)

let to_string net = Fmt.str "%a" write net

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)

let parse_func = function
  | name :: arity :: delay :: area :: rest ->
    let f =
      match
        Library.resolve ~name:(unescape name)
          ~arity:(int_of_string arity)
          ~delay:(float_of_string delay) ~area:(float_of_string area)
      with
      | Ok f -> f
      | Error m -> fail "%s" m
    in
    (f, rest)
  | _ -> fail "truncated function spec"

let parse_kind words =
  match words with
  | "source" :: "stream" :: vs ->
    Netlist.Source (Netlist.Stream (List.map value_of_token vs))
  | [ "source"; "counter"; start; step ] ->
    Netlist.Source
      (Netlist.Counter
         { start = int_of_string start; step = int_of_string step })
  | [ "source"; "random"; pct; seed ] ->
    Netlist.Source
      (Netlist.Random_rate
         { pct = int_of_string pct; seed = int_of_string seed })
  | "source" :: "nondet" :: vs ->
    Netlist.Source (Netlist.Nondet (List.map value_of_token vs))
  | [ "sink"; "ready" ] -> Netlist.Sink Netlist.Always_ready
  | [ "sink"; "pattern"; bits ] ->
    Netlist.Sink
      (Netlist.Stall_pattern
         (Array.init (String.length bits) (fun i -> bits.[i] = '1')))
  | [ "sink"; "random"; pct; seed ] ->
    Netlist.Sink
      (Netlist.Random_stall
         { pct = int_of_string pct; seed = int_of_string seed })
  | "buffer" :: kind :: vs ->
    let buffer =
      match kind with
      | "eb" -> Netlist.Eb
      | "eb0" -> Netlist.Eb0
      | _ -> fail "unknown buffer kind %S" kind
    in
    Netlist.Buffer { buffer; init = List.map value_of_token vs }
  | "func" :: rest ->
    let f, extra = parse_func rest in
    if extra <> [] then fail "trailing tokens after func";
    Netlist.Func f
  | [ "fork"; n ] -> Netlist.Fork (int_of_string n)
  | [ "mux"; ways; mode ] ->
    Netlist.Mux
      { ways = int_of_string ways;
        early =
          (match mode with
           | "early" -> true
           | "plain" -> false
           | _ -> fail "bad mux mode %S" mode) }
  | "shared" :: ways :: hinted :: sched :: rest ->
    let f, extra = parse_func rest in
    if extra <> [] then fail "trailing tokens after shared";
    Netlist.Shared
      { ways = int_of_string ways;
        hinted =
          (match hinted with
           | "hinted" -> true
           | "plain" -> false
           | _ -> fail "bad shared mode %S" hinted);
        sched = parse_sched sched; f }
  | "varlat" :: rest ->
    let fast, rest = parse_func rest in
    let slow, rest = parse_func rest in
    let err, rest = parse_func rest in
    if rest <> [] then fail "trailing tokens after varlat";
    Netlist.Varlat { fast; slow; err }
  | w :: _ -> fail "unknown node kind %S" w
  | [] -> fail "empty node kind"

let parse text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  try
    match lines with
    | [] -> Error "empty file"
    | header :: rest ->
      if not (String.equal header "elastic-netlist v1") then
        fail "bad header %S" header;
      let id_map = Hashtbl.create 16 in
      let net =
        List.fold_left
          (fun net line ->
             let words =
               String.split_on_char ' ' line
               |> List.filter (fun w -> w <> "")
             in
             match words with
             | "node" :: id :: name :: kind_words ->
               let kind = parse_kind kind_words in
               let id = int_of_string id in
               if Hashtbl.mem id_map id then fail "duplicate node id %d" id;
               let net, fresh =
                 Netlist.add_node ~name:(unescape name) net kind
               in
               Hashtbl.replace id_map id fresh;
               net
             | [ "chan"; name; src; sport; dst; dport; width ] ->
               let resolve id =
                 match Hashtbl.find_opt id_map (int_of_string id) with
                 | Some n -> n
                 | None -> fail "channel references unknown node %s" id
               in
               let net, _ =
                 Netlist.connect ~name:(unescape name)
                   ~width:(int_of_string width) net
                   (resolve src, parse_port sport)
                   (resolve dst, parse_port dport)
               in
               net
             | w :: _ -> fail "unknown line kind %S" w
             | [] -> net)
          Netlist.empty rest
      in
      (match Netlist.validate net with
       | [] -> Ok net
       | ps -> Error ("loaded netlist invalid: " ^ String.concat "; " ps))
  with
  | Parse m -> Error m
  | Failure m -> Error m
  | Invalid_argument m -> Error m

let save path net =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  write ppf net;
  Format.pp_print_flush ppf ();
  close_out oc

let load path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    parse text
