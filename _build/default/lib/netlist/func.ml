(* Bring the SELF kernel modules (Value, Signal, ...) into scope. *)
open Elastic_kernel

type t = {
  name : string;
  arity : int;
  eval : Value.t list -> Value.t;
  delay : float;
  area : float;
}

let make ~name ~arity ~delay ~area eval =
  if arity < 0 then invalid_arg "Func.make: negative arity";
  if delay < 0.0 || area < 0.0 then
    invalid_arg "Func.make: negative delay or area";
  { name; arity; eval; delay; area }

let apply f vs =
  let n = List.length vs in
  if n <> f.arity then
    invalid_arg
      (Fmt.str "Func.apply %s: expected %d arguments, got %d" f.name f.arity
         n);
  f.eval vs

let identity ?(delay = 0.0) ?(area = 0.0) () =
  make ~name:"id" ~arity:1 ~delay ~area (function
    | [ v ] -> v
    | _ -> assert false)

let const ?(delay = 0.0) ?(area = 0.0) v =
  make ~name:(Fmt.str "const(%a)" Value.pp v) ~arity:1 ~delay ~area
    (fun _ -> v)

let add_int ?(delay = 4.0) ?(area = 40.0) ~arity () =
  make ~name:"add" ~arity ~delay ~area (fun vs ->
      Value.Int (List.fold_left (fun acc v -> acc + Value.to_int v) 0 vs))

let inc ?(delay = 2.0) ?(area = 12.0) ~step () =
  make ~name:(Fmt.str "inc%+d" step) ~arity:1 ~delay ~area (function
    | [ v ] -> Value.Int (Value.to_int v + step)
    | _ -> assert false)

let select ?(delay = 1.0) ?(area = 10.0) ~ways () =
  make ~name:(Fmt.str "select%d" ways) ~arity:(ways + 1) ~delay ~area
    (function
    | sel :: data ->
      let i = Value.to_int sel in
      if i < 0 || i >= List.length data then
        invalid_arg (Fmt.str "select: index %d out of range" i)
      else List.nth data i
    | [] -> assert false)

let pp ppf f =
  Fmt.pf ppf "%s/%d (delay %.1f, area %.1f)" f.name f.arity f.delay f.area
