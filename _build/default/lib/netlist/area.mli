(** Gate-equivalent area model for elastic netlists.

    The paper reports {e relative} area overheads of speculation (12 % for
    the variable-latency ALU, 36 % for the SECDED stage).  This model
    assigns gate-equivalent costs to every primitive so those relative
    comparisons can be reproduced; the constants are documented here and
    can be overridden. *)

type params = {
  latch_per_bit : float;  (** One transparent latch (Fig. 2(a) EB). *)
  flop_per_bit : float;  (** One flip-flop (Fig. 5 EB). *)
  eb_control : float;  (** Handshake controller of a standard EB. *)
  eb0_control : float;  (** Controller of the zero-backward-latency EB. *)
  fork_control_per_branch : float;
  mux_per_bit_per_way : float;  (** Datapath mux cost. *)
  mux_control : float;  (** Plain join-mux controller. *)
  early_mux_control_per_way : float;
      (** Extra anti-token controller cost of an early-evaluation mux. *)
  shared_control_per_way : float;  (** Fig. 4(b) controller. *)
  scheduler : float;
  varlat_control : float;  (** Stalling controller of a Fig. 6(a) unit. *)
}

val default : params

(** Area of a single node; channel widths are taken from the attached
    channels (the widest one for multi-channel primitives). *)
val node_area : ?params:params -> Netlist.t -> Netlist.node -> float

(** Total area of the netlist in gate equivalents. *)
val total : ?params:params -> Netlist.t -> float

(** Per-node breakdown, largest first. *)
val breakdown : ?params:params -> Netlist.t -> (string * float) list
