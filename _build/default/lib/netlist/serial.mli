(** Text serialization of elastic netlists.

    The paper's toolkit operates on "an abstract netlist representing an
    elastic system as a collection of modules and FIFOs connected by
    elastic channels"; this module reads and writes that representation as
    a line-oriented text format (extension [.enl]):

    {v
    elastic-netlist v1
    node 0 in0 source counter 0 2
    node 2 mux mux 2 early
    node 3 F func F 1 5.0 80.0
    chan 0 in0>mux 0 out0 2 in0 8
    v}

    Functional blocks serialize by name/arity/delay/area and are
    reconstructed through {!Library}, so custom blocks must be registered
    before {!load}.  Identifiers are renumbered on load; structure, names,
    initial tokens and widths round-trip exactly. *)

val write : Format.formatter -> Netlist.t -> unit

val to_string : Netlist.t -> string

(** [parse text] rebuilds the netlist; [Error] carries the offending line
    and reason. *)
val parse : string -> (Netlist.t, string) result

val save : string -> Netlist.t -> unit

val load : string -> (Netlist.t, string) result
