type params = {
  latch_per_bit : float;
  flop_per_bit : float;
  eb_control : float;
  eb0_control : float;
  fork_control_per_branch : float;
  mux_per_bit_per_way : float;
  mux_control : float;
  early_mux_control_per_way : float;
  shared_control_per_way : float;
  scheduler : float;
  varlat_control : float;
}

let default =
  { latch_per_bit = 3.0; flop_per_bit = 6.0; eb_control = 12.0;
    eb0_control = 10.0; fork_control_per_branch = 4.0;
    mux_per_bit_per_way = 2.5; mux_control = 4.0;
    early_mux_control_per_way = 7.0; shared_control_per_way = 9.0;
    scheduler = 20.0; varlat_control = 18.0 }

(* Width of the widest channel touching the node; primitives are sized for
   their datapath. *)
let node_width t (n : Netlist.node) =
  let ws =
    List.map
      (fun c -> c.Netlist.width)
      (Netlist.incoming t n.Netlist.id @ Netlist.outgoing t n.Netlist.id)
  in
  List.fold_left max 1 ws

let node_area ?(params = default) t (n : Netlist.node) =
  let w = float_of_int (node_width t n) in
  match n.Netlist.kind with
  | Netlist.Source _ | Netlist.Sink _ -> 0.0
  | Netlist.Buffer { buffer = Netlist.Eb; _ } ->
    (* Two transparent latches per bit (Fig. 2(a)) plus the controller. *)
    (2.0 *. w *. params.latch_per_bit) +. params.eb_control
  | Netlist.Buffer { buffer = Netlist.Eb0; _ } ->
    (* One flip-flop rank per bit (Fig. 5) plus its controller. *)
    (w *. params.flop_per_bit) +. params.eb0_control
  | Netlist.Func f -> f.Func.area
  | Netlist.Fork k -> float_of_int k *. params.fork_control_per_branch
  | Netlist.Mux { ways; early } ->
    let datapath =
      w *. params.mux_per_bit_per_way *. float_of_int (ways - 1)
    in
    let control =
      if early then
        params.mux_control
        +. (params.early_mux_control_per_way *. float_of_int ways)
      else params.mux_control
    in
    datapath +. control
  | Netlist.Shared { ways; f; _ } ->
    (* One copy of f, the input selection mux, the Fig. 4(b) controller and
       the scheduler. *)
    f.Func.area
    +. (w *. params.mux_per_bit_per_way *. float_of_int (ways - 1))
    +. (params.shared_control_per_way *. float_of_int ways)
    +. params.scheduler
  | Netlist.Varlat { fast; slow; err } ->
    (* Both function copies, the detector, the stage register and the
       stalling controller. *)
    fast.Func.area +. slow.Func.area +. err.Func.area
    +. (w *. params.flop_per_bit) +. params.varlat_control

let total ?(params = default) t =
  List.fold_left (fun acc n -> acc +. node_area ~params t n) 0.0
    (Netlist.nodes t)

let breakdown ?(params = default) t =
  Netlist.nodes t
  |> List.map (fun n -> (n.Netlist.name, node_area ~params t n))
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
