(** BLIF export of the elastic control network.

    The paper's toolkit can emit "a blif model for logic synthesis with
    SIS"; this module does the same for the {e control} layer: every
    channel's [(V+, S+, V-, S-)] bits become nets, controller state
    (EB occupancy counters, fork done/pending bits, anti-token queues)
    becomes [.latch]es with one-hot encodings, and the controller
    equations become [.names] gates.

    Data is abstracted exactly as in the {!Smv} export: multiplexor
    select values, shared-module predictions, variable-latency outcome
    bits and the environment's offer/stall decisions are primary inputs.
    Multiplexors and shared modules must be 2-way (one select bit).

    The result is acceptable to SIS/ABC-style tools for logic
    optimization of the distributed controllers. *)

(** [emit ppf ~model net] writes one [.model].
    @raise Invalid_argument on multiplexors or shared modules with more
    than two ways. *)
val emit : Format.formatter -> model:string -> Netlist.t -> unit

val to_string : model:string -> Netlist.t -> string

val save : string -> model:string -> Netlist.t -> unit
