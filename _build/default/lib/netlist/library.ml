let table : (string, Func.t) Hashtbl.t = Hashtbl.create 32

type resolver =
  name:string -> arity:int -> delay:float -> area:float -> Func.t option

let resolvers : resolver list ref = ref []

let register f = Hashtbl.replace table f.Func.name f

let register_resolver r = resolvers := !resolvers @ [ r ]

(* The standard function families of {!Func}. *)
let builtin ~name ~arity ~delay ~area =
  ignore delay;
  ignore area;
  if String.equal name "id" && arity = 1 then Some (Func.identity ())
  else if String.equal name "add" then Some (Func.add_int ~arity ())
  else
    match
      if String.length name > 3 && String.sub name 0 3 = "inc" then
        int_of_string_opt (String.sub name 3 (String.length name - 3))
      else None
    with
    | Some step -> Some (Func.inc ~step ())
    | None ->
      (match
         if String.length name > 6 && String.sub name 0 6 = "select" then
           int_of_string_opt (String.sub name 6 (String.length name - 6))
         else None
       with
       | Some ways when ways >= 1 && arity = ways + 1 ->
         Some (Func.select ~ways ())
       | Some _ | None -> None)

let () = register_resolver builtin

let resolve ~name ~arity ~delay ~area =
  let restore f = { f with Func.delay; area } in
  match Hashtbl.find_opt table name with
  | Some f when f.Func.arity = arity -> Ok (restore f)
  | Some f ->
    Error
      (Fmt.str "function %s registered with arity %d, file says %d" name
         f.Func.arity arity)
  | None ->
    let rec try_resolvers = function
      | [] ->
        Error
          (Fmt.str
             "unknown function %S: register it with Library.register \
              before loading"
             name)
      | r :: rest ->
        (match r ~name ~arity ~delay ~area with
         | Some f when f.Func.arity = arity -> Ok (restore f)
         | Some _ | None -> try_resolvers rest)
    in
    try_resolvers !resolvers
